#!/bin/sh
# Build, test and run every bench + example; the one-button check.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do "$b" --benchmark_min_time=0.01; done
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "===== $e ====="
  "$e"
done

# Sanitizer pass: rebuild with ASan+UBSan and drive the differential
# fuzzer for ~30 seconds (see docs/ROBUSTNESS.md).
echo "===== sanitizer fuzz smoke ====="
cmake -B build-asan -G Ninja -DTRACESAFE_SANITIZE=ON
cmake --build build-asan --target fuzz_harness test_budget test_shrink
./build-asan/tests/test_budget
./build-asan/tests/test_shrink
./build-asan/examples/fuzz_harness --programs 2000 --deadline-ms 30000 \
  --seed 1 --query-deadline-ms 50
./build-asan/examples/fuzz_harness --programs 200 --deadline-ms 30000 \
  --inject --inject-every 1 --expect-failures --no-thin-air --seed 2 \
  --repro-dir build-asan/fuzz_repros
