#!/bin/sh
# Build, test and run every bench + example; the one-button check.
set -e
cd "$(dirname "$0")/.."
# Release: the bench numbers merged into BENCH_results.json must come
# from an optimised build (merge_bench_json.py refuses debug inputs).
cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build
ctest --test-dir build --output-on-failure

# Benches: each binary writes its google-benchmark JSON next to the
# console output; the merge script folds them into BENCH_results.json
# (ns/op per benchmark plus oracle-vs-reduced speedups — the PR's
# acceptance metric lives in the "speedups" section).
mkdir -p build/bench_json
for b in build/bench/bench_*; do
  n=$(basename "$b")
  "$b" --benchmark_min_time=0.01 --benchmark_repetitions=3 \
    --benchmark_out="build/bench_json/$n.json" --benchmark_out_format=json
done
python3 scripts/merge_bench_json.py BENCH_results.json build/bench_json/*.json

# Opt-in perf-regression gate: set TRACESAFE_BENCH_BASELINE to a previous
# BENCH_results.json to fail the run when any (family, engine, workers)
# configuration got more than TRACESAFE_BENCH_TOLERANCE percent slower
# (default 10). Off by default: bench timings on shared CI hosts are too
# noisy to block every run on.
if [ -n "${TRACESAFE_BENCH_BASELINE:-}" ]; then
  echo "===== bench regression check ====="
  python3 scripts/check_bench_regression.py \
    "$TRACESAFE_BENCH_BASELINE" BENCH_results.json \
    --tolerance "${TRACESAFE_BENCH_TOLERANCE:-10}"
fi

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "===== $e ====="
  "$e"
done

# Sanitizer pass: rebuild with ASan+UBSan and drive the differential
# fuzzer for ~30 seconds (see docs/ROBUSTNESS.md).
echo "===== sanitizer fuzz smoke ====="
cmake -B build-asan -G Ninja -DTRACESAFE_SANITIZE=ON
cmake --build build-asan --target fuzz_harness test_budget test_shrink
./build-asan/tests/test_budget
./build-asan/tests/test_shrink
./build-asan/examples/fuzz_harness --programs 2000 --deadline-ms 30000 \
  --seed 1 --query-deadline-ms 50
./build-asan/examples/fuzz_harness --programs 200 --deadline-ms 30000 \
  --inject --inject-every 1 --expect-failures --no-thin-air --seed 2 \
  --repro-dir build-asan/fuzz_repros

# Daemon stage under ASan: wire-protocol corruption matrix, the full
# in-process server suite (admission, idempotency, degradation, injected
# transport faults), and the kill -9/resume chaos smoke against a real
# ASan-built tracesafed (see docs/PROTOCOL.md and docs/ROBUSTNESS.md).
echo "===== sanitizer daemon smoke ====="
cmake --build build-asan --target test_protocol test_daemon \
  test_daemon_chaos tracesafed
./build-asan/tests/test_protocol
./build-asan/tests/test_daemon
./build-asan/tests/test_daemon_chaos

# Racelog stage under ASan: the log-format/engine suite (torn tails,
# flipped CRCs, injected detect faults) plus an end-to-end generate+scan
# through the CLI — the writer, CRC framing, and both engines touch every
# byte they produce (see docs/TRACELOG.md).
echo "===== sanitizer racelog smoke ====="
cmake --build build-asan --target test_racelog racelog_scan
./build-asan/tests/test_racelog
./build-asan/examples/racelog_scan --gen mixed --events 200000 \
  --out build-asan/racelog_smoke.tsrl
./build-asan/examples/racelog_scan --shards 4 \
  build-asan/racelog_smoke.tsrl && rc=0 || rc=$?
[ "$rc" -eq 1 ] || { echo "expected races in the mixed log (rc=$rc)"; exit 1; }

# ThreadSanitizer pass: rebuild with TSan and drive the parallel engine —
# pool + interning unit tests, the POR-vs-oracle equivalence suites (SC
# enumeration and the TSO/PSO buffered engine), and a parallel fuzz
# campaign (see docs/PERFORMANCE.md).
echo "===== thread sanitizer parallel smoke ====="
cmake -B build-tsan -G Ninja -DTRACESAFE_TSAN=ON
cmake --build build-tsan --target \
  test_threadpool test_intern test_parallel_enumerate test_tso_parallel \
  test_racelog_differential fuzz_harness
./build-tsan/tests/test_threadpool
./build-tsan/tests/test_intern
./build-tsan/tests/test_parallel_enumerate
./build-tsan/tests/test_tso_parallel
# The racelog differential suite drives the pooled shard pipeline (worker
# tasks + interned clock snapshots) on every trace — the racelog TSan
# surface.
./build-tsan/tests/test_racelog_differential
./build-tsan/examples/fuzz_harness --programs 100 --deadline-ms 60000 \
  --seed 3 --no-thin-air --query-deadline-ms 50 --jobs 4 --semantic

# UBSan pass: undefined-behaviour checking over the robustness stack —
# fault injection, degradation, journal resume, and a chaos campaign
# (random fault plan + mid-run cancel + resume; see docs/ROBUSTNESS.md).
echo "===== ubsan robustness smoke ====="
cmake -B build-ubsan -G Ninja -DTRACESAFE_UBSAN=ON
cmake --build build-ubsan --target \
  test_failure test_degrade test_resume test_behaviour_cache fuzz_harness
./build-ubsan/tests/test_failure
./build-ubsan/tests/test_degrade
./build-ubsan/tests/test_resume
./build-ubsan/tests/test_behaviour_cache
./build-ubsan/examples/fuzz_harness --chaos --chaos-rounds 2 \
  --programs 40 --seed 4 --no-thin-air --query-deadline-ms 50
