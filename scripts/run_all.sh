#!/bin/sh
# Build, test and run every bench + example; the one-button check.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do "$b" --benchmark_min_time=0.01; done
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "===== $e ====="
  "$e"
done
