#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs into one BENCH_results.json.

Usage: merge_bench_json.py [--allow-debug] OUT.json IN1.json [IN2.json ...]

Each input is one bench binary's --benchmark_out file. The merged record
keeps, per benchmark, the wall time in ns/op plus the engine configuration
parsed from the benchmark name:

  *_oracle        the seed sequential exhaustive engine (no POR)
  *_nopor         the interned engine with sleep sets disabled
  *_por           the interned engine with sleep-set POR
  *_epoch         the racelog streaming detector's epoch engine (its
                  *_oracle sibling is the full-vector-clock engine)
  *_wN            N search workers (absent: 1)
  *_sN            N address shards (racelog; folded into workers, the
                  configuration's parallel width)
  daemon_*        daemon throughput benches (engine "daemon")

google-benchmark appends slash-separated qualifiers to the registered
name — numeric args (`bench/4`), time selectors (`.../real_time`) and
thread counts (`.../threads:4`). These are parsed off before the engine
suffixes: `threads:N` sets the worker count, time selectors are dropped,
and numeric args stay part of the family, so
`daemon_query_warm_c4/real_time/threads:4` lands as family
`daemon_query_warm_c4`, engine `daemon`, workers 4.

For every (bench, query) family that has both an `_oracle` row and a
`_por*_w8` row, a speedup entry oracle/por_w8 is emitted — the PR's
acceptance metric (>= 4x on the race and behaviour queries). Families
with an `_oracle` row and an `_epoch` row (the racelog detector) get the
same treatment: the entry records the epoch engine's speedup over the
full-vector-clock baseline.

Rows that report items_per_second (the daemon throughput benches set
items = queries) are additionally surfaced under a `daemon` section as a
queries/sec family, keyed by benchmark name. Rows that also report
bytes_per_second (the racelog benches: bytes = log bytes scanned, items
= events) are surfaced under a `racelog` section as MB/s + events/sec,
the family check_bench_regression.py gates on throughput.

Every row (and the host record) is stamped with the current git revision
so two result files can be diffed against known trees. Inputs recorded
from a debug build are refused unless --allow-debug is given — debug
numbers silently merged into a baseline make every later comparison lie.
"""

import json
import os
import re
import subprocess
import sys

TIME_SELECTORS = {"real_time", "manual_time", "process_time", "cpu_time"}


def parse_name(name):
    """Extract (family, engine, por, workers) from a benchmark name."""
    parts = name.split("/")
    base = parts[0]
    args = []
    workers = None
    for q in parts[1:]:
        if q in TIME_SELECTORS:
            continue
        if q.startswith("threads:"):
            workers = int(q.split(":", 1)[1])
            continue
        args.append(q)
    m = re.search(r"_[ws](\d+)$", base)
    if m:
        if workers is None:
            workers = int(m.group(1))
        base = base[: m.start()]
    if base.endswith("_oracle"):
        engine, por = "oracle", False
        base = base[: -len("_oracle")]
    elif base.endswith("_nopor"):
        engine, por = "interned", False
        base = base[: -len("_nopor")]
    elif base.endswith("_por"):
        engine, por = "interned", True
        base = base[: -len("_por")]
    elif base.endswith("_epoch"):
        engine, por = "epoch", False
        base = base[: -len("_epoch")]
    elif base.startswith("daemon_"):
        engine, por = "daemon", False
    else:
        engine, por = "unknown", False
    family = "/".join([base] + args)
    return family, engine, por, workers if workers is not None else 1


def git_revision():
    """Short revision of the tree this script lives in ("unknown" when the
    repo state cannot be read — merging still succeeds)."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        out = subprocess.run(
            ["git", "-C", repo, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except OSError:
        return "unknown"


def to_ns(t, unit):
    return t * {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1)


def main(argv):
    allow_debug = False
    args = []
    for a in argv[1:]:
        if a == "--allow-debug":
            allow_debug = True
        else:
            args.append(a)
    if len(args) < 2:
        sys.stderr.write(__doc__)
        return 2
    out_path, inputs = args[0], args[1:]
    revision = git_revision()

    rows = []
    context = {}
    for path in inputs:
        with open(path) as f:
            doc = json.load(f)
        context = doc.get("context", context)
        # Prefer the binary's own report of how the code under test was
        # compiled (TRACESAFE_BENCH_MAIN adds it); library_build_type only
        # describes the installed benchmark library.
        ctx = doc.get("context", {})
        build_type = ctx.get("tracesafe_build_type",
                             ctx.get("library_build_type", ""))
        if build_type == "debug":
            msg = (f"{path}: recorded from a debug build; its timings are "
                   "not comparable to release numbers")
            if not allow_debug:
                sys.stderr.write(
                    f"error: {msg}. Re-run the benches from a release "
                    "build, or pass --allow-debug to merge anyway.\n")
                return 3
            sys.stderr.write(f"warning: {msg} (merged anyway).\n")
        source = doc.get("context", {}).get("executable", path)
        source = source.rsplit("/", 1)[-1]
        for b in doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            family, engine, por, workers = parse_name(b["name"])
            row = {
                "bench": source,
                "name": b["name"],
                "family": family,
                "engine": engine,
                "por": por,
                "workers": workers,
                "ns_per_op": to_ns(b["real_time"], b.get("time_unit", "ns")),
                "iterations": b.get("iterations", 0),
                "revision": revision,
            }
            if "items_per_second" in b:
                row["items_per_second"] = b["items_per_second"]
            if "bytes_per_second" in b:
                row["bytes_per_second"] = b["bytes_per_second"]
            rows.append(row)

    # Speedups: seed oracle vs the reduced engine at its widest run. With
    # --benchmark_repetitions each configuration has several rows; take the
    # minimum ns/op per configuration (best-of-N, the standard way to shave
    # scheduler noise off wall-clock comparisons on a shared host).
    speedups = {}
    by_family = {}
    for r in rows:
        by_family.setdefault(r["family"], []).append(r)
    for family, rs in sorted(by_family.items()):
        oracle = [r for r in rs if r["engine"] == "oracle"]
        # The reduced side is the sleep-set POR engine where one exists,
        # else the racelog epoch engine (vs its full-vector-clock oracle).
        por = [r for r in rs if r["engine"] == "interned" and r["por"]]
        reduced = por or [r for r in rs if r["engine"] == "epoch"]
        if not oracle or not reduced:
            continue
        oracle_ns = min(r["ns_per_op"] for r in oracle)
        if por:
            # Search engines: widest run, the multicore convention.
            widest_w = max(r["workers"] for r in reduced)
            reduced_ns = min(
                r["ns_per_op"] for r in reduced if r["workers"] == widest_w
            )
        else:
            # Racelog epoch rows: best configuration outright — shard
            # width trades against routing overhead per host, and on a
            # 1-core host the widest run would be the *worst* one.
            best = min(reduced, key=lambda r: r["ns_per_op"])
            widest_w = best["workers"]
            reduced_ns = best["ns_per_op"]
        speedups[family] = {
            "oracle_ns_per_op": oracle_ns,
            "reduced_ns_per_op": reduced_ns,
            "reduced_workers": widest_w,
            "speedup": oracle_ns / reduced_ns if reduced_ns else 0.0,
        }

    # Daemon throughput family: queries/sec for every row that counted its
    # items (best-of-N across repetitions, as above).
    daemon = {}
    for r in rows:
        if r["name"].startswith("daemon_") and "items_per_second" in r:
            key = r["name"]
            qps = r["items_per_second"]
            if key not in daemon or qps > daemon[key]["queries_per_second"]:
                daemon[key] = {"queries_per_second": qps,
                               "ns_per_op": r["ns_per_op"]}

    # Racelog throughput family: MB/s of log bytes scanned and events/sec
    # for every streaming-detector row (best-of-N across repetitions).
    racelog = {}
    for r in rows:
        if r["name"].startswith("racelog_") and "bytes_per_second" in r:
            key = r["name"]
            mbs = r["bytes_per_second"] / 1e6
            if key not in racelog or mbs > racelog[key]["mb_per_second"]:
                racelog[key] = {
                    "mb_per_second": mbs,
                    "events_per_second": r.get("items_per_second", 0.0),
                    "ns_per_op": r["ns_per_op"],
                }

    merged = {
        "schema": "tracesafe-bench-results-v1",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("tracesafe_build_type",
                                      context.get("library_build_type")),
            "revision": revision,
        },
        "benchmarks": rows,
        "speedups": speedups,
        "daemon": daemon,
        "racelog": racelog,
    }
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path}: {len(rows)} benchmarks, {len(speedups)} speedups")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
