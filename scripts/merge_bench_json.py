#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs into one BENCH_results.json.

Usage: merge_bench_json.py OUT.json IN1.json [IN2.json ...]

Each input is one bench binary's --benchmark_out file. The merged record
keeps, per benchmark, the wall time in ns/op plus the engine configuration
parsed from the benchmark name:

  *_oracle        the seed sequential exhaustive engine (no POR)
  *_nopor         the interned engine with sleep sets disabled
  *_por           the interned engine with sleep-set POR
  *_wN            N search workers (absent: 1)

For every (bench, query) family that has both an `_oracle` row and a
`_por*_w8` row, a speedup entry oracle/por_w8 is emitted — the PR's
acceptance metric (>= 4x on the race and behaviour queries).

Rows that report items_per_second (the daemon throughput benches set
items = queries) are additionally surfaced under a `daemon` section as a
queries/sec family, keyed by benchmark name.
"""

import json
import re
import sys


def parse_name(name):
    """Extract (family, engine, por, workers) from a benchmark name."""
    workers = 1
    m = re.search(r"_w(\d+)$", name)
    if m:
        workers = int(m.group(1))
        name = name[: m.start()]
    if name.endswith("_oracle"):
        engine, por = "oracle", False
        family = name[: -len("_oracle")]
    elif name.endswith("_nopor"):
        engine, por = "interned", False
        family = name[: -len("_nopor")]
    elif name.endswith("_por"):
        engine, por = "interned", True
        family = name[: -len("_por")]
    else:
        engine, por = "unknown", False
        family = name
    return family, engine, por, workers


def to_ns(t, unit):
    return t * {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1)


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    out_path, inputs = argv[1], argv[2:]

    rows = []
    context = {}
    for path in inputs:
        with open(path) as f:
            doc = json.load(f)
        context = doc.get("context", context)
        source = doc.get("context", {}).get("executable", path)
        source = source.rsplit("/", 1)[-1]
        for b in doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            family, engine, por, workers = parse_name(b["name"])
            row = {
                "bench": source,
                "name": b["name"],
                "family": family,
                "engine": engine,
                "por": por,
                "workers": workers,
                "ns_per_op": to_ns(b["real_time"], b.get("time_unit", "ns")),
                "iterations": b.get("iterations", 0),
            }
            if "items_per_second" in b:
                row["items_per_second"] = b["items_per_second"]
            rows.append(row)

    # Speedups: seed oracle vs the reduced engine at its widest run. With
    # --benchmark_repetitions each configuration has several rows; take the
    # minimum ns/op per configuration (best-of-N, the standard way to shave
    # scheduler noise off wall-clock comparisons on a shared host).
    speedups = {}
    by_family = {}
    for r in rows:
        by_family.setdefault(r["family"], []).append(r)
    for family, rs in sorted(by_family.items()):
        oracle = [r for r in rs if r["engine"] == "oracle"]
        por = [r for r in rs if r["engine"] == "interned" and r["por"]]
        if not oracle or not por:
            continue
        widest_w = max(r["workers"] for r in por)
        oracle_ns = min(r["ns_per_op"] for r in oracle)
        reduced_ns = min(
            r["ns_per_op"] for r in por if r["workers"] == widest_w
        )
        speedups[family] = {
            "oracle_ns_per_op": oracle_ns,
            "reduced_ns_per_op": reduced_ns,
            "reduced_workers": widest_w,
            "speedup": oracle_ns / reduced_ns if reduced_ns else 0.0,
        }

    # Daemon throughput family: queries/sec for every row that counted its
    # items (best-of-N across repetitions, as above).
    daemon = {}
    for r in rows:
        if r["name"].startswith("daemon_") and "items_per_second" in r:
            key = r["name"]
            qps = r["items_per_second"]
            if key not in daemon or qps > daemon[key]["queries_per_second"]:
                daemon[key] = {"queries_per_second": qps,
                               "ns_per_op": r["ns_per_op"]}

    merged = {
        "schema": "tracesafe-bench-results-v1",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("library_build_type"),
        },
        "benchmarks": rows,
        "speedups": speedups,
        "daemon": daemon,
    }
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path}: {len(rows)} benchmarks, {len(speedups)} speedups")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
