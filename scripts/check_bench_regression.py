#!/usr/bin/env python3
"""Diff two merged BENCH_results.json files per family, with a tolerance.

Usage: check_bench_regression.py BASELINE.json CURRENT.json
           [--tolerance PCT] [--throughput-tolerance PCT]
           [--families REGEX]

Rows are grouped by (family, engine, por, workers) — the configuration
key merge_bench_json.py parses out of the benchmark names — and each
group is reduced to its best (minimum) ns/op, the same best-of-N rule
the merge script uses for its speedup section. A configuration present
in both files whose current best is more than PCT percent slower than
the baseline best is a regression; the script lists every comparison,
flags regressions, and exits 1 if any were found (2 on usage errors).

Configurations whose rows carry bytes_per_second (the racelog streaming
benches) are compared on throughput instead: best = maximum MB/s, and a
drop of more than --throughput-tolerance percent (default 15) fails.
Throughput rows scan fixed inputs, so MB/s is the quantity the family
advertises and ns/op would double-count input-size changes.

Configurations present on only one side are listed as added/removed but
are never failures: benches come and go with the code under test.

Comparing numbers recorded on different hosts, build types or revisions
is usually meaningless; mismatches in the host records are printed as
warnings so a surprising verdict can be traced to its cause.
"""

import argparse
import json
import re
import sys


def config_key(row):
    return (row["family"], row["engine"],
            bool(row.get("por")), int(row.get("workers", 1)))


def best_by_config(doc, pattern):
    """Per configuration: best (minimum) ns/op and, for rows that carry
    it, best (maximum) bytes/sec."""
    best = {}
    for row in doc.get("benchmarks", []):
        if pattern and not pattern.search(row["family"]):
            continue
        key = config_key(row)
        ns = float(row["ns_per_op"])
        bps = float(row["bytes_per_second"]) \
            if "bytes_per_second" in row else None
        if key not in best:
            best[key] = {"ns": ns, "bps": bps}
        else:
            best[key]["ns"] = min(best[key]["ns"], ns)
            if bps is not None:
                prev = best[key]["bps"]
                best[key]["bps"] = bps if prev is None else max(prev, bps)
    return best


def fmt_key(key):
    family, engine, por, workers = key
    tag = engine + ("+por" if por else "")
    return f"{family} [{tag} w{workers}]"


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f}us"
    return f"{ns:.0f}ns"


def main(argv):
    ap = argparse.ArgumentParser(
        description="per-family bench regression check")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=10.0,
                    help="allowed slowdown in percent (default 10)")
    ap.add_argument("--throughput-tolerance", type=float, default=15.0,
                    help="allowed throughput drop in percent for rows "
                         "reporting bytes/sec (default 15)")
    ap.add_argument("--families", default=None,
                    help="only check families matching this regex")
    args = ap.parse_args(argv[1:])

    try:
        with open(args.baseline) as f:
            base_doc = json.load(f)
        with open(args.current) as f:
            cur_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"error: {e}\n")
        return 2

    pattern = re.compile(args.families) if args.families else None
    base = best_by_config(base_doc, pattern)
    cur = best_by_config(cur_doc, pattern)

    for field in ("build_type", "num_cpus", "revision"):
        b = base_doc.get("host", {}).get(field)
        c = cur_doc.get("host", {}).get(field)
        if b is not None and c is not None and b != c:
            sys.stderr.write(
                f"warning: host {field} differs: "
                f"baseline={b} current={c}\n")

    regressions = []
    improved = 0
    for key in sorted(base.keys() & cur.keys()):
        bb, cc = base[key], cur[key]
        if bb["bps"] is not None and cc["bps"] is not None:
            # Throughput configuration: compare MB/s, higher is better.
            b, c = bb["bps"], cc["bps"]
            delta = (b - c) / b * 100.0 if b else 0.0
            tol = args.throughput_tolerance
            shown = (f"{fmt_key(key)}: {b / 1e6:.1f}MB/s -> "
                     f"{c / 1e6:.1f}MB/s ({-delta:+.1f}%)")
        else:
            b, c = bb["ns"], cc["ns"]
            delta = (c - b) / b * 100.0 if b else 0.0
            tol = args.tolerance
            shown = (f"{fmt_key(key)}: {fmt_ns(b)} -> {fmt_ns(c)} "
                     f"({delta:+.1f}%)")
        mark = " "
        if delta > tol:
            mark = "!"
            regressions.append((key, shown))
        elif delta < 0:
            mark = "+"
            improved += 1
        print(f"{mark} {shown}")
    for key in sorted(base.keys() - cur.keys()):
        print(f"- {fmt_key(key)}: removed "
              f"(baseline {fmt_ns(base[key]['ns'])})")
    for key in sorted(cur.keys() - base.keys()):
        print(f"* {fmt_key(key)}: added ({fmt_ns(cur[key]['ns'])})")

    shared = len(base.keys() & cur.keys())
    print(f"\n{shared} configurations compared, {improved} improved, "
          f"{len(regressions)} regressed (tolerance {args.tolerance:.1f}%)")
    if regressions:
        print("regressions:")
        for _key, shown in regressions:
            print(f"  {shown}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
