//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the experiment benches: every bench binary first
/// prints the qualitative reproduction row(s) for its paper artefact
/// (claim -> measured verdict), then runs its timed benchmarks. The rows
/// are what EXPERIMENTS.md records.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_BENCH_BENCHUTIL_H
#define TRACESAFE_BENCH_BENCHUTIL_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace tracesafe::benchutil {

inline int Failures = 0;

/// Prints one claim row and tracks failures for the process exit code.
inline void claim(const std::string &What, bool ExpectedMatchesMeasured) {
  std::printf("  [%s] %s\n", ExpectedMatchesMeasured ? "ok" : "MISMATCH",
              What.c_str());
  if (!ExpectedMatchesMeasured)
    ++Failures;
}

inline void header(const std::string &Experiment, const std::string &Paper) {
  std::printf("==== %s — %s ====\n", Experiment.c_str(), Paper.c_str());
}

/// How *this* binary was compiled. google-benchmark's own
/// `library_build_type` context field describes the installed benchmark
/// library, not the code under test — on a host whose libbenchmark was
/// built without NDEBUG every run would look "debug" no matter how the
/// engines were compiled. The merge script keys its debug-refusal on
/// this custom field instead.
inline const char *buildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Standard bench main: print claims, then run benchmarks.
#define TRACESAFE_BENCH_MAIN(CLAIMS_FN)                                       \
  int main(int argc, char **argv) {                                           \
    CLAIMS_FN();                                                               \
    ::benchmark::AddCustomContext("tracesafe_build_type",                     \
                                  ::tracesafe::benchutil::buildType());       \
    ::benchmark::Initialize(&argc, argv);                                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))                 \
      return 1;                                                                \
    ::benchmark::RunSpecifiedBenchmarks();                                    \
    ::benchmark::Shutdown();                                                  \
    return ::tracesafe::benchutil::Failures == 0 ? 0 : 2;                     \
  }

} // namespace tracesafe::benchutil

#endif // TRACESAFE_BENCH_BENCHUTIL_H
