//===----------------------------------------------------------------------===//
///
/// \file
/// E9 — Fig 10 syntactic eliminations. Verifies Lemma 4 / Theorem 3 for
/// each rule on a representative program (the rule application is a
/// semantic elimination; DRF + behaviours preserved on DRF inputs), and
/// measures site discovery and application.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "opt/DataflowOpt.h"
#include "opt/Pipeline.h"
#include "opt/Rewrite.h"
#include "semantics/Elimination.h"
#include "verify/Checks.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

struct RuleExample {
  RuleKind Rule;
  const char *Source;
};

const RuleExample Examples[] = {
    {RuleKind::ERaR,
     "thread { lock m; r1 := x; skip; r2 := x; print r2; unlock m; }"},
    {RuleKind::ERaW,
     "thread { lock m; x := 5; skip; r2 := x; print r2; unlock m; }"},
    {RuleKind::EWaR,
     "thread { lock m; r1 := x; skip; x := r1; unlock m; }"},
    {RuleKind::EWbW,
     "thread { lock m; x := 1; skip; x := 2; unlock m; }"},
    {RuleKind::EIr, "thread { lock m; r1 := x; r1 := 3; unlock m; }"},
};

void claims() {
  header("E9 / Fig 10", "syntactic eliminations are semantic eliminations");
  for (const RuleExample &Ex : Examples) {
    Program P = parseOrDie(Ex.Source);
    std::vector<RewriteSite> Sites;
    for (const RewriteSite &S : findRewriteSites(P))
      if (S.Rule == Ex.Rule)
        Sites.push_back(S);
    if (Sites.empty()) {
      claim(ruleName(Ex.Rule) + ": site found", false);
      continue;
    }
    Program T = applyRewrite(P, Sites.front());
    std::vector<Value> D = defaultDomainFor(P, 2);
    TransformCheckResult R =
        checkElimination(programTraceset(P, D), programTraceset(T, D));
    claim(ruleName(Ex.Rule) + ": semantic elimination (Lemma 4)",
          R.Verdict == CheckVerdict::Holds);
    DrfGuaranteeReport G = checkDrfGuarantee(P, T);
    claim(ruleName(Ex.Rule) + ": DRF guarantee (Theorem 3)",
          G.OriginalDrf && G.holds());
  }
  // §2.1's dataflow claim: the analysis-based CSE/constprop/dead-store
  // pass is a chain of semantic eliminations.
  Program P = parseOrDie(
      "thread { lock m; x := 1; x := 2; r1 := x; r2 := x; x := r2; "
      "print r2; unlock m; }");
  std::vector<Program> ChainPrograms;
  DataflowOptReport Report;
  Program Out = runDataflowOpt(P, &Report, &ChainPrograms);
  std::vector<Value> D = defaultDomainFor(P, 2);
  bool AllSteps = true;
  Traceset Prev = programTraceset(ChainPrograms.front(), D);
  for (size_t K = 1; K < ChainPrograms.size(); ++K) {
    Traceset Next = programTraceset(ChainPrograms[K], D);
    AllSteps &= checkElimination(Prev, Next).Verdict == CheckVerdict::Holds;
    Prev = std::move(Next);
  }
  claim("dataflow CSE/constprop/dead-store pass: " +
            std::to_string(Report.total()) +
            " rewrites, every step a semantic elimination (§2.1)",
        Report.total() > 0 && AllSteps);
  claim("dataflow pass upholds the DRF guarantee",
        checkDrfGuarantee(P, Out).holds());
}

void benchSiteDiscovery(benchmark::State &State) {
  // A long straight-line block full of elimination opportunities.
  std::string Src = "thread { lock m; ";
  for (int I = 0; I < State.range(0); ++I)
    Src += "x := " + std::to_string(I) + "; r1 := x; ";
  Src += "unlock m; }";
  Program P = parseOrDie(Src);
  size_t Sites = 0;
  for (auto _ : State) {
    Sites = findRewriteSites(P, RuleSet::eliminationsOnly()).size();
    benchmark::DoNotOptimize(Sites);
  }
  State.counters["sites"] = static_cast<double>(Sites);
}
BENCHMARK(benchSiteDiscovery)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void benchApplyRewrite(benchmark::State &State) {
  Program P = parseOrDie(Examples[0].Source);
  RewriteSite Site = findRewriteSites(P, RuleSet::eliminationsOnly())[0];
  for (auto _ : State) {
    Program T = applyRewrite(P, Site);
    benchmark::DoNotOptimize(T.threadCount());
  }
}
BENCHMARK(benchApplyRewrite);

/// Ablation: the single-sweep dataflow pass vs. the quadratic
/// rewrite-site fixpoint, on a long block of forwarding opportunities.
std::string longBlock(int N) {
  std::string Src = "thread { lock m; ";
  for (int I = 0; I < N; ++I)
    Src += "x := " + std::to_string(I) + "; r1 := x; ";
  Src += "unlock m; }";
  return Src;
}

void benchDataflowPass(benchmark::State &State) {
  Program P = parseOrDie(longBlock(static_cast<int>(State.range(0))));
  size_t Rewrites = 0;
  for (auto _ : State) {
    DataflowOptReport Report;
    Program Out = runDataflowOpt(P, &Report);
    Rewrites = Report.total();
    benchmark::DoNotOptimize(Out.threadCount());
  }
  State.counters["rewrites"] = static_cast<double>(Rewrites);
}
BENCHMARK(benchDataflowPass)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void benchGreedyRuleFixpoint(benchmark::State &State) {
  Program P = parseOrDie(longBlock(static_cast<int>(State.range(0))));
  size_t Steps = 0;
  for (auto _ : State) {
    TransformChain Chain =
        greedyChain(P, RuleSet::eliminationsOnly(), 256);
    Steps = Chain.Steps.size();
    benchmark::DoNotOptimize(Chain.Result.threadCount());
  }
  State.counters["rewrites"] = static_cast<double>(Steps);
}
BENCHMARK(benchGreedyRuleFixpoint)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void benchLemma4Verification(benchmark::State &State) {
  const RuleExample &Ex = Examples[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(Ex.Source);
  RewriteSite Site;
  for (const RewriteSite &S : findRewriteSites(P))
    if (S.Rule == Ex.Rule)
      Site = S;
  Program T = applyRewrite(P, Site);
  std::vector<Value> D = defaultDomainFor(P, 2);
  Traceset TP = programTraceset(P, D);
  Traceset TT = programTraceset(T, D);
  for (auto _ : State) {
    TransformCheckResult R = checkElimination(TP, TT);
    benchmark::DoNotOptimize(R.Verdict);
  }
  State.SetLabel(ruleName(Ex.Rule));
}
BENCHMARK(benchLemma4Verification)->DenseRange(0, 4);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
