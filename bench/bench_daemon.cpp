//===----------------------------------------------------------------------===//
///
/// \file
/// tracesafed throughput benches: queries/sec through the full daemon
/// stack — wire protocol, admission control, budget clamp, scheduling on
/// the shared pool — against an in-process server on a unix socket.
///
/// `daemon_query_warm` is the overhead floor (the BehaviourCache answers
/// the engine work, so the row is protocol + admission + scheduling);
/// `daemon_query_cold` includes a full exploration per query;
/// `daemon_batch32_warm` amortises round trips over a pipelined batch;
/// the `_c4` row drives four concurrent client connections. Each row sets
/// items_per_second = queries/sec for scripts/merge_bench_json.py, which
/// surfaces them as the `daemon` throughput family in BENCH_results.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "daemon/Client.h"
#include "daemon/Server.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace tracesafe;
using namespace tracesafe::daemon;

namespace {

const char *WarmSource = "thread { x := 1; r0 := x; print r0; }\n"
                         "thread { x := 0; r1 := x; }\n";

/// Wall-clock-free ceiling: the rows measure work, not deadline jitter.
const BudgetSpec BenchCeiling{/*DeadlineMs=*/0, /*MaxVisited=*/500'000,
                              /*MaxMemoryBytes=*/256ULL << 20};

/// One in-process daemon shared by every benchmark in this binary.
struct BenchServer {
  ServerOptions Opts;
  CancelToken Stop;
  ServerStats Stats;
  std::thread Thread;

  void start() {
    Opts.SocketPath = (std::filesystem::temp_directory_path() /
                       ("tracesafed_bench_" + std::to_string(::getpid()) +
                        ".sock"))
                          .string();
    Opts.QuotaCeiling = BenchCeiling;
    Opts.QueueCap = 256;
    Opts.Stop = &Stop;
    Thread = std::thread([this] { runServer(Opts, &Stats); });
    for (int I = 0; I < 500; ++I) {
      int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                    Opts.SocketPath.c_str());
      bool Up = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                          sizeof(Addr)) == 0;
      ::close(Fd);
      if (Up)
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  void stop() {
    Stop.request();
    if (Thread.joinable())
      Thread.join();
    std::remove(Opts.SocketPath.c_str());
  }
};

BenchServer Server;

DaemonClient makeClient(const std::string &Tag) {
  static std::atomic<unsigned> Counter{0};
  ClientOptions CO;
  CO.SocketPath = Server.Opts.SocketPath;
  CO.Name = "bench-" + Tag + "-" + std::to_string(Counter.fetch_add(1));
  return DaemonClient(CO);
}

QueryRequest warmQuery() {
  QueryRequest Q;
  Q.Kind = QueryKind::ProgramDrf;
  Q.Program = WarmSource;
  return Q;
}

/// Distinct program text per call: a fresh location name defeats the
/// BehaviourCache, so every query pays a full exploration.
QueryRequest coldQuery() {
  static std::atomic<uint64_t> Counter{0};
  uint64_t N = Counter.fetch_add(1);
  std::string Loc = "c" + std::to_string(N);
  QueryRequest Q;
  Q.Kind = QueryKind::ProgramDrf;
  Q.Program = "thread { " + Loc + " := 1; r0 := " + Loc +
              "; print r0; }\nthread { " + Loc + " := 0; }\n";
  return Q;
}

void daemon_query_warm(benchmark::State &State) {
  DaemonClient Client = makeClient("warm");
  QueryRequest Q = warmQuery();
  for (auto _ : State) {
    QueryResponse R = Client.call(Q);
    benchmark::DoNotOptimize(R.Visited);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(daemon_query_warm)->UseRealTime()->Unit(benchmark::kMicrosecond);

void daemon_query_warm_c4(benchmark::State &State) {
  // Four concurrent connections hammering the admission path; aggregate
  // items/sec is the daemon's multi-client throughput.
  DaemonClient Client = makeClient("warm-c4");
  QueryRequest Q = warmQuery();
  for (auto _ : State) {
    QueryResponse R = Client.call(Q);
    benchmark::DoNotOptimize(R.Visited);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(daemon_query_warm_c4)->Threads(4)->UseRealTime()->Unit(benchmark::kMicrosecond);

void daemon_query_cold(benchmark::State &State) {
  DaemonClient Client = makeClient("cold");
  for (auto _ : State) {
    QueryResponse R = Client.call(coldQuery());
    benchmark::DoNotOptimize(R.Visited);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(daemon_query_cold)->UseRealTime()->Unit(benchmark::kMicrosecond);

void daemon_batch32_warm(benchmark::State &State) {
  DaemonClient Client = makeClient("batch");
  std::vector<QueryRequest> Qs(32, warmQuery());
  for (auto _ : State) {
    std::vector<QueryResponse> Rs = Client.callBatch(Qs);
    benchmark::DoNotOptimize(Rs.size());
  }
  State.SetItemsProcessed(State.iterations() * 32);
}
BENCHMARK(daemon_batch32_warm)->UseRealTime()->Unit(benchmark::kMicrosecond);

void claims() {
  using tracesafe::benchutil::claim;
  tracesafe::benchutil::header(
      "tracesafed throughput",
      "daemonised verification with admission control");
  Server.start();
  DaemonClient Client = makeClient("claims");
  QueryResponse Remote = Client.call(warmQuery());
  QueryResponse Local = evaluateQuery(warmQuery(), BenchCeiling);
  claim("remote verdict bytes match the in-process evaluator",
        Remote.str() == Local.str());
  claim("warm query is answered Ok (admission not saturated)",
        Remote.Status == ResponseStatus::Ok);
}

} // namespace

int main(int argc, char **argv) {
  claims();
  ::benchmark::AddCustomContext("tracesafe_build_type",
                                ::tracesafe::benchutil::buildType());
  ::benchmark::Initialize(&argc, argv);
  int Rc = 1;
  if (!::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    Rc = ::tracesafe::benchutil::Failures == 0 ? 0 : 2;
  }
  Server.stop(); // before exit: the listener thread must join
  return Rc;
}
