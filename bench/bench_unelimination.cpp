//===----------------------------------------------------------------------===//
///
/// \file
/// E7 — Fig 5 / Lemma 1. The unelimination construction on the paper's
/// example and the Lemma-1 property over all executions of the eliminated
/// program; measures the construction.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "semantics/Unelimination.h"
#include "semantics/Unordering.h"
#include "trace/Enumerate.h"

#include <map>
#include <memory>

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

Program fig5Original() {
  return parseOrDie(R"(
volatile v;
thread { v := 1; y := 1; }
thread { r1 := x; r2 := v; print r2; }
)");
}

Program fig5Eliminated() {
  return parseOrDie(R"(
volatile v;
thread { y := 1; }
thread { r2 := v; print r2; }
)");
}

Interleaving fig5Execution() {
  SymbolId Y = Symbol::intern("y"), V = Symbol::intern("v");
  return Interleaving({{0, Action::mkStart(0)},
                       {1, Action::mkStart(1)},
                       {0, Action::mkWrite(Y, 1)},
                       {1, Action::mkRead(V, 0, true)},
                       {1, Action::mkExternal(0)}});
}

void claims() {
  header("E7 / Fig 5", "unelimination construction (Lemma 1)");
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(fig5Original(), D);
  Traceset TT = programTraceset(fig5Eliminated(), D);
  claim("the eliminated traceset is an elimination of the original",
        checkElimination(TO, TT).Verdict == CheckVerdict::Holds);
  UneliminationResult R = findUnelimination(TO, fig5Execution());
  claim("an unelimination of Fig 5's execution exists",
        R.Verdict == CheckVerdict::Holds);
  claim("it satisfies conditions (i)-(iv)",
        R.Verdict == CheckVerdict::Holds &&
            isUneliminationFunction(fig5Execution(), R.I, R.F));
  claim("its instance is an execution of the original (DRF case)",
        R.Verdict == CheckVerdict::Holds &&
            R.I.instance().isExecutionOf(TO));
  // Lemma 1 over every execution of the eliminated program.
  size_t Total = 0, Ok = 0;
  forEachExecution(TT, [&](const Interleaving &IPrime) {
    ++Total;
    UneliminationResult U = findUnelimination(TO, IPrime);
    Ok += U.Verdict == CheckVerdict::Holds &&
          U.I.instance().isExecutionOf(TO);
    return true;
  });
  claim("Lemma 1 property on all " + std::to_string(Total) +
            " executions of the eliminated traceset",
        Total > 0 && Ok == Total);

  // The reordering proof's other device: unorder an execution of a
  // transformed program into T-bar, uneliminate into T, land on an
  // execution of T — the complete §5 pipeline.
  Program RO = parseOrDie(
      "thread { lock m; print 1; unlock m; x := 1; } "
      "thread { lock m; print 2; unlock m; }");
  Program RT = parseOrDie(
      "thread { lock m; print 1; x := 1; unlock m; } "
      "thread { lock m; print 2; unlock m; }");
  Traceset TRO = programTraceset(RO, D);
  Traceset TRT = programTraceset(RT, D);
  auto Memo = std::make_shared<std::map<Trace, bool>>();
  auto Oracle = [&TRO, Memo](const Trace &Tr) {
    auto It = Memo->find(Tr);
    if (It != Memo->end())
      return It->second;
    bool In = findEliminationWitness(TRO, Tr).has_value();
    Memo->emplace(Tr, In);
    return In;
  };
  size_t PTotal = 0, POk = 0;
  forEachMaximalExecution(TRT, [&](const Interleaving &IPrime) {
    ++PTotal;
    UnorderingResult UR = findUnordering(IPrime, Oracle);
    if (UR.Verdict != CheckVerdict::Holds)
      return true;
    UneliminationResult UE =
        findUnelimination(TRO, applyUnordering(IPrime, UR.F));
    POk += UE.Verdict == CheckVerdict::Holds &&
           UE.I.instance().isExecutionOf(TRO);
    return true;
  });
  claim("§5 proof pipeline (unorder, then uneliminate) on all " +
            std::to_string(PTotal) + " executions of an R-UW transform",
        PTotal > 0 && POk == PTotal);
}

void benchUneliminationConstruction(benchmark::State &State) {
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(fig5Original(), D);
  Interleaving IPrime = fig5Execution();
  for (auto _ : State) {
    UneliminationResult R = findUnelimination(TO, IPrime);
    benchmark::DoNotOptimize(R.Verdict);
  }
}
BENCHMARK(benchUneliminationConstruction);

void benchUneliminationSweep(benchmark::State &State) {
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(fig5Original(), D);
  Traceset TT = programTraceset(fig5Eliminated(), D);
  for (auto _ : State) {
    size_t Count = 0;
    forEachExecution(TT, [&](const Interleaving &IPrime) {
      UneliminationResult R = findUnelimination(TO, IPrime);
      Count += R.Verdict == CheckVerdict::Holds;
      return true;
    });
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(benchUneliminationSweep);

void benchFunctionValidation(benchmark::State &State) {
  std::vector<Value> D = {0, 1};
  Traceset TO = programTraceset(fig5Original(), D);
  Interleaving IPrime = fig5Execution();
  UneliminationResult R = findUnelimination(TO, IPrime);
  for (auto _ : State)
    benchmark::DoNotOptimize(isUneliminationFunction(IPrime, R.I, R.F));
}
BENCHMARK(benchFunctionValidation);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
