//===----------------------------------------------------------------------===//
///
/// \file
/// E8 — Fig 6-8 infrastructure: parser round-trips, small-step throughput,
/// traceset-vs-direct-executor agreement, and the |domain|^reads ablation
/// from DESIGN.md decision 1.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "trace/Enumerate.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

const char *Workload = R"(
volatile flag;
thread {
  data := 1;
  data2 := 2;
  flag := 1;
}
thread {
  r1 := flag;
  if (r1 == 1) { r2 := data; r3 := data2; print r2; print r3; }
  else { print 0; }
}
)";

void claims() {
  header("E8 / Fig 6-8", "language infrastructure");
  Program P = parseOrDie(Workload);
  ParseResult Back = parseProgram(printProgram(P));
  claim("printer/parser round-trip", Back && P.equals(*Back.Prog));
  std::vector<Value> D = defaultDomainFor(P, 2);
  std::set<Behaviour> FromTraceset =
      collectBehaviours(programTraceset(P, D));
  std::set<Behaviour> FromDirect = programBehaviours(P);
  claim("traceset executions agree with the direct SC executor",
        FromTraceset == FromDirect);
  claim("the message-passing workload is DRF (volatile flag)",
        isProgramDrf(P));
}

void benchParse(benchmark::State &State) {
  for (auto _ : State) {
    ParseResult R = parseProgram(Workload);
    benchmark::DoNotOptimize(R.Prog->threadCount());
  }
}
BENCHMARK(benchParse);

void benchPrint(benchmark::State &State) {
  Program P = parseOrDie(Workload);
  for (auto _ : State)
    benchmark::DoNotOptimize(printProgram(P).size());
}
BENCHMARK(benchPrint);

void benchSmallStepThroughput(benchmark::State &State) {
  Program P = parseOrDie("thread { while (r9 == 0) { r1 := 1; r2 := r1; "
                         "skip; } }");
  LangContext Ctx(P, {0});
  size_t Steps = 0;
  for (auto _ : State) {
    ThreadState S = initialThreadState(P, 0);
    for (int I = 0; I < 256 && !S.done(); ++I) {
      std::vector<Step> Next = possibleSteps(S, Ctx);
      S = std::move(Next[0].Next);
      ++Steps;
    }
    benchmark::DoNotOptimize(S.done());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}
BENCHMARK(benchSmallStepThroughput);

/// Ablation: traceset size and generation time vs |domain| (decision 1).
void benchDomainAblation(benchmark::State &State) {
  Program P = parseOrDie("thread { r1 := x; r2 := x; r3 := y; print r1; }");
  std::vector<Value> D;
  for (Value V = 0; V < State.range(0); ++V)
    D.push_back(V);
  size_t Traces = 0;
  for (auto _ : State) {
    Traceset T = programTraceset(P, D);
    Traces = T.size();
    benchmark::DoNotOptimize(Traces);
  }
  State.counters["traces"] = static_cast<double>(Traces);
}
BENCHMARK(benchDomainAblation)->DenseRange(1, 6);

/// Ablation: direct executor vs traceset enumeration (decision 3).
void benchDirectExecutor(benchmark::State &State) {
  Program P = parseOrDie(Workload);
  for (auto _ : State)
    benchmark::DoNotOptimize(programBehaviours(P).size());
}
BENCHMARK(benchDirectExecutor);

void benchTracesetExecutor(benchmark::State &State) {
  Program P = parseOrDie(Workload);
  std::vector<Value> D = defaultDomainFor(P, 2);
  for (auto _ : State) {
    Traceset T = programTraceset(P, D);
    benchmark::DoNotOptimize(collectBehaviours(T).size());
  }
}
BENCHMARK(benchTracesetExecutor);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
