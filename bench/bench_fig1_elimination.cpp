//===----------------------------------------------------------------------===//
///
/// \file
/// E2 — Fig 1 (elimination example). Reproduces the figure's claims and
/// measures the cost of traceset generation, behaviour enumeration and the
/// semantic elimination check.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "semantics/Elimination.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

const char *Fig1Original = R"(
thread { x := 2; y := 1; x := 1; }
thread { r1 := y; print r1; r1 := x; r2 := x; print r2; }
)";

const char *Fig1Transformed = R"(
thread { y := 1; x := 1; }
thread { r1 := y; print r1; r1 := x; r2 := r1; print r2; }
)";

void claims() {
  header("E2 / Fig 1", "overwritten-write + redundant-read elimination");
  Program O = parseOrDie(Fig1Original);
  Program T = parseOrDie(Fig1Transformed);
  std::set<Behaviour> BO = programBehaviours(O);
  std::set<Behaviour> BT = programBehaviours(T);
  claim("original cannot output 1 then 0", BO.count({1, 0}) == 0);
  claim("transformed can output 1 then 0", BT.count({1, 0}) == 1);
  claim("both programs are racy (no DRF violation)",
        !isProgramDrf(O) && !isProgramDrf(T));
  std::vector<Value> D = defaultDomainFor(O, 3);
  TransformCheckResult R =
      checkElimination(programTraceset(O, D), programTraceset(T, D));
  claim("transformed traceset IS a semantic elimination of the original",
        R.Verdict == CheckVerdict::Holds);
}

void benchTracesetGeneration(benchmark::State &State) {
  Program O = parseOrDie(Fig1Original);
  std::vector<Value> D = defaultDomainFor(O, static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    Traceset T = programTraceset(O, D);
    benchmark::DoNotOptimize(T.size());
  }
  State.counters["domain"] = static_cast<double>(D.size());
  Traceset T = programTraceset(O, D);
  State.counters["traces"] = static_cast<double>(T.size());
}
BENCHMARK(benchTracesetGeneration)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void benchBehaviours(benchmark::State &State) {
  Program O = parseOrDie(Fig1Original);
  for (auto _ : State) {
    std::set<Behaviour> B = programBehaviours(O);
    benchmark::DoNotOptimize(B.size());
  }
}
BENCHMARK(benchBehaviours);

void benchEliminationCheck(benchmark::State &State) {
  Program O = parseOrDie(Fig1Original);
  Program T = parseOrDie(Fig1Transformed);
  std::vector<Value> D =
      defaultDomainFor(O, static_cast<size_t>(State.range(0)));
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  for (auto _ : State) {
    TransformCheckResult R = checkElimination(TO, TT);
    benchmark::DoNotOptimize(R.Verdict);
  }
  State.counters["traces_checked"] = static_cast<double>(
      checkElimination(TO, TT).TracesChecked);
}
BENCHMARK(benchEliminationCheck)->Arg(3)->Arg(4);

void benchRaceDetection(benchmark::State &State) {
  Program O = parseOrDie(Fig1Original);
  for (auto _ : State) {
    ProgramRaceReport R = findProgramRace(O);
    benchmark::DoNotOptimize(R.HasRace);
  }
}
BENCHMARK(benchRaceDetection);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
