//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming race-detector throughput benches over synthetic TSRL logs.
///
/// Three workload mixes (racelog/Synth.h) at 1M-50M events:
///  - `racelog_racefree_epoch`: private-ownership traffic, the epoch
///    engine's same-epoch fast path — the single-thread MB/s headline.
///  - `racelog_mixed_epoch` / `_s8`: lock-protected cross-thread traffic
///    plus a racy pool, inline vs 8 address shards.
///  - `racelog_mixed_oracle`: the same mix through the full-vector-clock
///    oracle engine — the baseline the epoch optimisation is measured
///    against (its writes scan an O(threads) read clock the epoch engine
///    replaces with one compare).
///  - `racelog_lockheavy_epoch`: acquire/release-dominated traffic, the
///    clock-join and interning path.
///  - `racelog_mixed128_*`: the mixed workload at 128 threads, where the
///    oracle's per-write scan is at full width — the epoch-vs-oracle
///    speedup headline.
///
/// Every row sets bytes_per_second (log bytes scanned) and
/// items_per_second (events); scripts/merge_bench_json.py surfaces them
/// as the `racelog` throughput family and
/// scripts/check_bench_regression.py fails on >15% throughput drops.
/// The up-front claims are semantic only — the engines must agree on
/// every mix — never timing thresholds.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "racelog/Detect.h"
#include "racelog/Synth.h"

#include <string>
#include <vector>

using namespace tracesafe;
using namespace tracesafe::racelog;

namespace {

/// Synthetic logs are deterministic; generate each size once and share it
/// across iterations of every row that scans it.
const std::string &logFor(int Kind, uint64_t Events) {
  struct Key {
    int Kind;
    uint64_t Events;
    std::string Log;
  };
  static std::vector<Key> Cache;
  for (const Key &K : Cache)
    if (K.Kind == Kind && K.Events == Events)
      return K.Log;
  SynthOptions O;
  O.Events = Events;
  O.Threads = Kind == 3 ? 128 : 8; // kind 3: wide mixed — the oracle's
                                   // O(threads) write scan at full width
  Cache.push_back({Kind, Events,
                   Kind == 0   ? makeRaceFreeLog(O)
                   : Kind == 2 ? makeLockHeavyLog(O)
                               : makeMixedLog(O)});
  return Cache.back().Log;
}

void scanRow(benchmark::State &State, int Kind, bool Epochs,
             unsigned Shards) {
  const std::string &Log = logFor(Kind, static_cast<uint64_t>(State.range(0)));
  RaceLogOptions O;
  O.Epochs = Epochs;
  O.Shards = Shards;
  uint64_t Events = 0;
  for (auto _ : State) {
    RaceLogReport R = scanRaceLog(Log, O);
    benchmark::DoNotOptimize(R.Stats.RacyLocations);
    Events = R.Stats.Events;
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Log.size()));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Events));
}

void racelog_racefree_epoch(benchmark::State &S) { scanRow(S, 0, true, 1); }
void racelog_mixed_epoch(benchmark::State &S) { scanRow(S, 1, true, 1); }
void racelog_mixed_epoch_s8(benchmark::State &S) { scanRow(S, 1, true, 8); }
void racelog_mixed_oracle(benchmark::State &S) { scanRow(S, 1, false, 1); }
void racelog_lockheavy_epoch(benchmark::State &S) { scanRow(S, 2, true, 1); }
void racelog_mixed128_epoch(benchmark::State &S) { scanRow(S, 3, true, 1); }
void racelog_mixed128_oracle(benchmark::State &S) { scanRow(S, 3, false, 1); }

BENCHMARK(racelog_racefree_epoch)
    ->Arg(1 << 20)
    ->Arg(8 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(racelog_mixed_epoch)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(racelog_mixed_epoch_s8)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(racelog_mixed_oracle)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(racelog_lockheavy_epoch)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(racelog_mixed128_epoch)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(racelog_mixed128_oracle)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void claims() {
  using benchutil::claim;
  benchutil::header("racelog streaming detector",
                    "FastTrack-style epochs vs full vector clocks");
  // Semantic claims only: the rows above are timing, these are verdicts.
  for (int Kind = 0; Kind < 4; ++Kind) {
    const std::string &Log = logFor(Kind, 1 << 18);
    RaceLogOptions Epoch;
    RaceLogOptions Oracle;
    Oracle.Epochs = false;
    RaceLogOptions Sharded;
    Sharded.Shards = 8;
    RaceLogReport RE = scanRaceLog(Log, Epoch);
    RaceLogReport RO = scanRaceLog(Log, Oracle);
    RaceLogReport RS = scanRaceLog(Log, Sharded);
    const char *Name = Kind == 0   ? "race-free"
                       : Kind == 1 ? "mixed"
                       : Kind == 2 ? "lock-heavy"
                                   : "wide-mixed";
    bool ExpectRacy = Kind == 1 || Kind == 3;
    claim(std::string(Name) + " mix: epoch engine verdict is " +
              (ExpectRacy ? "racy" : "race-free"),
          RE.Races.empty() != ExpectRacy);
    claim(std::string(Name) +
              " mix: oracle agrees with the epoch engine race-by-race",
          RO.Stats.RacyLocations == RE.Stats.RacyLocations &&
              RO.Races.size() == RE.Races.size());
    claim(std::string(Name) + " mix: 8-shard scan is bit-identical",
          RS.Races == RE.Races &&
              RS.Stats.RacyLocations == RE.Stats.RacyLocations);
  }
}

} // namespace

TRACESAFE_BENCH_MAIN(claims)
