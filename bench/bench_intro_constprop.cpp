//===----------------------------------------------------------------------===//
///
/// \file
/// E1 — the §1 introduction example. Sequential consistency never prints
/// 1; gcc-4.1.2-style constant propagation makes the program print 1; with
/// volatile flags the program is DRF and the propagation violates the DRF
/// guarantee. Measures the behaviour analysis of the motivating program.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "opt/Unsafe.h"
#include "verify/Checks.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

const char *IntroRacy = R"(
thread {
  data := 1;
  flagReq := 1;
  r1 := flagResp;
  if (r1 == 1) { r2 := data; print r2; } else { skip; }
}
thread {
  r3 := flagReq;
  if (r3 == 1) { data := 2; flagResp := 1; } else { skip; }
}
)";

const char *IntroVolatile = R"(
volatile flagReq, flagResp;
thread {
  data := 1;
  flagReq := 1;
  r1 := flagResp;
  if (r1 == 1) { r2 := data; print r2; } else { skip; }
}
thread {
  r3 := flagReq;
  if (r3 == 1) { data := 2; flagResp := 1; } else { skip; }
}
)";

void claims() {
  header("E1 / §1", "introduction example (request/response)");
  Program Racy = parseOrDie(IntroRacy);
  Program Volatile = parseOrDie(IntroVolatile);
  claim("the program cannot print 1 in any interleaving",
        programBehaviours(Racy).count({1}) == 0 &&
            programBehaviours(Volatile).count({1}) == 0);
  claim("it can print 2 (the intended handshake)",
        programBehaviours(Volatile).count({2}) == 1);
  claim("plain flags: racy; volatile flags: DRF (§3)",
        !isProgramDrf(Racy) && isProgramDrf(Volatile));
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(Volatile);
  claim("constant propagation finds the data:=1 -> print data site",
        !Sites.empty());
  if (!Sites.empty()) {
    Program T = applyUnsafeConstProp(Volatile, Sites.front());
    claim("the optimised DRF program CAN print 1 (new behaviour)",
          programCanOutput(T, 1));
    DrfGuaranteeReport G = checkDrfGuarantee(Volatile, T);
    claim("the DRF guarantee flags the violation", !G.holds());
  }
}

void benchBehaviourAnalysis(benchmark::State &State) {
  Program P = parseOrDie(IntroVolatile);
  for (auto _ : State)
    benchmark::DoNotOptimize(programBehaviours(P).size());
}
BENCHMARK(benchBehaviourAnalysis);

void benchDrfCheck(benchmark::State &State) {
  Program P = parseOrDie(IntroVolatile);
  for (auto _ : State)
    benchmark::DoNotOptimize(findProgramRace(P).HasRace);
}
BENCHMARK(benchDrfCheck);

void benchConstPropPipeline(benchmark::State &State) {
  Program P = parseOrDie(IntroVolatile);
  for (auto _ : State) {
    std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
    Program T = applyUnsafeConstProp(P, Sites.front());
    benchmark::DoNotOptimize(T.threadCount());
  }
}
BENCHMARK(benchConstPropPipeline);

void benchGuaranteeEndToEnd(benchmark::State &State) {
  Program P = parseOrDie(IntroVolatile);
  Program T = applyUnsafeConstProp(P, findUnsafeConstProp(P).front());
  for (auto _ : State) {
    DrfGuaranteeReport G = checkDrfGuarantee(P, T);
    benchmark::DoNotOptimize(G.holds());
  }
}
BENCHMARK(benchGuaranteeEndToEnd);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
