//===----------------------------------------------------------------------===//
///
/// \file
/// E5 — Fig 4 and the §4 worked de-permutation. Verifies the explicit
/// function f = {(0,0),(1,2),(2,1),(3,3)} against T-bar for every prefix
/// length, then measures how the de-permutation search scales with trace
/// length and with the amount of reordering.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "semantics/Reordering.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }

/// T-bar from §4: the Fig 2 original traceset plus [S(0), W[x=1]] obtained
/// by irrelevant-read elimination. (Thread ids follow the §4 text: thread 0
/// is the printing thread there; we keep the paper's pairing by using one
/// thread.)
Traceset tBar() {
  Traceset T({0, 1});
  for (Value V : {0, 1}) {
    T.insert(Trace{Action::mkStart(0), Action::mkRead(Y(), V),
                   Action::mkWrite(X(), 1), Action::mkExternal(V)});
  }
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X(), 1)});
  return T;
}

void claims() {
  header("E5 / Fig 4", "de-permutation of prefixes");
  Trace TPrime{Action::mkStart(0), Action::mkWrite(X(), 1),
               Action::mkRead(Y(), 1), Action::mkExternal(1)};
  Permutation F = {0, 2, 1, 3};
  claim("f is a reordering function for t'",
        isReorderingFunction(TPrime, F));
  Traceset T = tBar();
  bool AllPrefixes = true;
  for (size_t N = 0; N <= TPrime.size(); ++N)
    AllPrefixes &= T.contains(depermutePrefix(TPrime, F, N));
  claim("f.<n(t') lies in T-bar for every n = 0..4", AllPrefixes);
  auto Contains = [&T](const Trace &Tr) { return T.contains(Tr); };
  std::optional<Permutation> Found = findDepermutation(TPrime, Contains);
  claim("the search finds a de-permuting function", Found.has_value());
}

/// A chain of N independent writes, transformed by rotating the first
/// write to the end — the search must move one element across N-1 others.
void benchSearchScaling(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Traceset T({0});
  Trace Orig{Action::mkStart(0)};
  for (size_t I = 0; I < N; ++I)
    Orig.push_back(Action::mkWrite(
        Symbol::intern("loc" + std::to_string(I)), 1));
  T.insert(Orig);
  // Also insert all prefixes of the rotated trace's de-permutations: the
  // rotation needs prefixes without the first write; add the suffix-only
  // traces.
  Trace NoFirst{Action::mkStart(0)};
  for (size_t I = 1; I < N; ++I)
    NoFirst.push_back(Orig[1 + I]); // W1 .. W_{N-1}, skipping W0.
  // (Prefixes come from the redundant-last-write elimination in the full
  // checker; here we hand them to the oracle directly.)
  for (size_t I = 1; I < N; ++I)
    T.insert(NoFirst.prefix(1 + I));
  Trace TPrime{Action::mkStart(0)};
  for (size_t I = 1; I < N; ++I)
    TPrime.push_back(Orig[1 + I]);
  TPrime.push_back(Orig[1]);
  auto Contains = [&T](const Trace &Tr) { return T.contains(Tr); };
  bool Found = false;
  for (auto _ : State) {
    std::optional<Permutation> F = findDepermutation(TPrime, Contains);
    Found = F.has_value();
    benchmark::DoNotOptimize(F);
  }
  State.counters["found"] = Found;
  State.counters["trace_len"] = static_cast<double>(TPrime.size());
}
BENCHMARK(benchSearchScaling)->DenseRange(3, 9, 2);

void benchReorderingFunctionCheck(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Trace T{Action::mkStart(0)};
  for (size_t I = 0; I < N; ++I)
    T.push_back(
        Action::mkWrite(Symbol::intern("loc" + std::to_string(I)), 1));
  Permutation F = identityPermutation(T.size());
  std::reverse(F.begin() + 1, F.end()); // Maximal reordering.
  for (auto _ : State)
    benchmark::DoNotOptimize(isReorderingFunction(T, F));
}
BENCHMARK(benchReorderingFunctionCheck)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
