//===----------------------------------------------------------------------===//
///
/// \file
/// E3 — Fig 2 (reordering example). Pure reordering fails, elimination
/// followed by reordering holds; measures the de-permutation search and
/// the composite checker.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "semantics/Reordering.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

const char *Fig2Original = R"(
thread { r1 := x; y := r1; }
thread { r2 := y; x := 1; print r2; }
)";

const char *Fig2Transformed = R"(
thread { r1 := x; y := r1; }
thread { x := 1; r2 := y; print r2; }
)";

void claims() {
  header("E3 / Fig 2", "read-write reordering");
  Program O = parseOrDie(Fig2Original);
  Program T = parseOrDie(Fig2Transformed);
  claim("original cannot print 1",
        programBehaviours(O).count({1}) == 0);
  claim("transformed can print 1",
        programBehaviours(T).count({1}) == 1);
  std::vector<Value> D = defaultDomainFor(O, 2);
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  claim("pure reordering FAILS (the [S,W[x=1]] prefix has no witness, §4)",
        checkReordering(TO, TT).Verdict == CheckVerdict::Fails);
  claim("elimination-then-reordering HOLDS (wildcard-read trick, §4)",
        checkEliminationThenReordering(TO, TT).Verdict ==
            CheckVerdict::Holds);
}

void benchPureReorderingCheck(benchmark::State &State) {
  Program O = parseOrDie(Fig2Original);
  Program T = parseOrDie(Fig2Transformed);
  std::vector<Value> D = defaultDomainFor(O, 2);
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  for (auto _ : State) {
    TransformCheckResult R = checkReordering(TO, TT);
    benchmark::DoNotOptimize(R.Verdict);
  }
}
BENCHMARK(benchPureReorderingCheck);

void benchCompositeCheck(benchmark::State &State) {
  Program O = parseOrDie(Fig2Original);
  Program T = parseOrDie(Fig2Transformed);
  std::vector<Value> D =
      defaultDomainFor(O, static_cast<size_t>(State.range(0)));
  Traceset TO = programTraceset(O, D);
  Traceset TT = programTraceset(T, D);
  for (auto _ : State) {
    TransformCheckResult R = checkEliminationThenReordering(TO, TT);
    benchmark::DoNotOptimize(R.Verdict);
  }
}
BENCHMARK(benchCompositeCheck)->Arg(2)->Arg(3)->Arg(4);

void benchBehaviourDiff(benchmark::State &State) {
  Program O = parseOrDie(Fig2Original);
  Program T = parseOrDie(Fig2Transformed);
  for (auto _ : State) {
    std::set<Behaviour> BO = programBehaviours(O);
    std::set<Behaviour> BT = programBehaviours(T);
    size_t NewCount = 0;
    for (const Behaviour &B : BT)
      NewCount += BO.count(B) == 0;
    benchmark::DoNotOptimize(NewCount);
  }
}
BENCHMARK(benchBehaviourDiff);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
