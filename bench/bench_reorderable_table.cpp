//===----------------------------------------------------------------------===//
///
/// \file
/// E6 — the §4 reorderability table. Recomputes the 5x5 matrix from the
/// predicate and checks it cell-by-cell against the paper, then measures
/// the predicate.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "semantics/Reorderable.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

void claims() {
  header("E6 / §4 table", "a reorderable-with b");
  const char *Expected[5][5] = {
      {"x!=y", "x!=y", "yes", "no", "yes"},
      {"x!=y", "yes", "yes", "no", "yes"},
      {"no", "no", "no", "no", "no"},
      {"yes", "yes", "no", "no", "no"},
      {"yes", "yes", "no", "no", "no"},
  };
  auto Table = computeReorderTable();
  std::printf("  %-9s", "a \\ b");
  for (size_t Col = 0; Col < 5; ++Col)
    std::printf("%-9s", ReorderTableLabels[Col]);
  std::printf("\n");
  bool AllMatch = true;
  for (size_t Row = 0; Row < 5; ++Row) {
    std::printf("  %-9s", ReorderTableLabels[Row]);
    for (size_t Col = 0; Col < 5; ++Col) {
      std::printf("%-9s", Table[Row][Col].c_str());
      AllMatch &= Table[Row][Col] == Expected[Row][Col];
    }
    std::printf("\n");
  }
  claim("all 25 cells match the paper's table", AllMatch);
  claim("roach-motel asymmetry: W reorderable with later Acq",
        reorderableWith(Action::mkWrite(Symbol::intern("x"), 1),
                        Action::mkLock(Symbol::intern("m"))));
  claim("...but Acq reorderable with nothing",
        !reorderableWith(Action::mkLock(Symbol::intern("m")),
                         Action::mkWrite(Symbol::intern("x"), 1)));
}

void benchPredicate(benchmark::State &State) {
  SymbolId X = Symbol::intern("x"), Y = Symbol::intern("y"),
           M = Symbol::intern("m");
  std::vector<Action> Actions = {
      Action::mkWrite(X, 1),       Action::mkWrite(Y, 1),
      Action::mkRead(X, 0),        Action::mkRead(Y, 0),
      Action::mkLock(M),           Action::mkUnlock(M),
      Action::mkExternal(1),       Action::mkWrite(X, 1, true),
      Action::mkRead(X, 0, true),
  };
  for (auto _ : State) {
    size_t Yes = 0;
    for (const Action &A : Actions)
      for (const Action &B : Actions)
        Yes += reorderableWith(A, B);
    benchmark::DoNotOptimize(Yes);
  }
}
BENCHMARK(benchPredicate);

void benchTableRecomputation(benchmark::State &State) {
  for (auto _ : State) {
    auto Table = computeReorderTable();
    benchmark::DoNotOptimize(Table[0][0].size());
  }
}
BENCHMARK(benchTableRecomputation);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
