//===----------------------------------------------------------------------===//
///
/// \file
/// E12 — the DRF guarantee at scale (Theorems 1-4). Runs the theorem
/// harness over seeded random DRF programs and measures how verification
/// cost scales with program size and chain length.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "verify/ProgramGen.h"
#include "verify/Theorems.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

void claims() {
  header("E12 / Theorems 1-4", "DRF guarantee on random chains");
  size_t Cases = 0, Held = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    for (GenDiscipline D :
         {GenDiscipline::LockDiscipline, GenDiscipline::VolatileLocations}) {
      GenOptions Options;
      Options.Discipline = D;
      Options.MaxStmtsPerThread = 4;
      Rng R(Seed);
      Program P = generateProgram(R, Options);
      TransformChain Chain = randomChain(P, RuleSet::all(), 3, R);
      TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
      ++Cases;
      Held += Report.allHold();
    }
  }
  claim("all " + std::to_string(Cases) +
            " random DRF cases uphold Theorems 1-5 and Lemmas 4/5",
        Held == Cases);
}

/// Picks the first seed whose generated program admits a non-empty chain,
/// so the scaling numbers always include per-step semantic verification.
std::pair<Program, TransformChain> caseWithChain(GenOptions Options,
                                                 size_t MaxSteps) {
  std::pair<Program, TransformChain> Best;
  size_t BestLen = 0;
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    Rng Gen(Seed);
    Program P = generateProgram(Gen, Options);
    Rng ChainRng(Seed + 1000);
    TransformChain Chain = randomChain(P, RuleSet::all(), MaxSteps, ChainRng);
    if (Chain.Steps.size() >= MaxSteps)
      return {std::move(P), std::move(Chain)};
    if (Chain.Steps.size() >= BestLen) {
      BestLen = Chain.Steps.size();
      Best = {std::move(P), std::move(Chain)};
    }
  }
  return Best;
}

void benchHarnessVsProgramSize(benchmark::State &State) {
  GenOptions Options;
  Options.Discipline = GenDiscipline::LockDiscipline;
  Options.MinStmtsPerThread = static_cast<unsigned>(State.range(0));
  Options.MaxStmtsPerThread = static_cast<unsigned>(State.range(0));
  auto [P, Chain] = caseWithChain(Options, 2);
  for (auto _ : State) {
    TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
    benchmark::DoNotOptimize(Report.allHold());
  }
  State.counters["chain_len"] = static_cast<double>(Chain.Steps.size());
}
BENCHMARK(benchHarnessVsProgramSize)->Arg(2)->Arg(4)->Arg(6);

void benchHarnessVsChainLength(benchmark::State &State) {
  GenOptions Options;
  Options.Discipline = GenDiscipline::LockDiscipline;
  Options.MaxStmtsPerThread = 5;
  auto [P, Chain] =
      caseWithChain(Options, static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
    benchmark::DoNotOptimize(Report.allHold());
  }
  State.counters["chain_len"] = static_cast<double>(Chain.Steps.size());
}
BENCHMARK(benchHarnessVsChainLength)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void benchEndToEndWithoutSemantics(benchmark::State &State) {
  // Ablation: behaviour/DRF checks only (no per-step traceset checks).
  GenOptions Options;
  Options.Discipline = GenDiscipline::LockDiscipline;
  Rng Gen(15);
  Program P = generateProgram(Gen, Options);
  Rng ChainRng(16);
  TransformChain Chain = randomChain(P, RuleSet::all(), 4, ChainRng);
  TheoremCheckOptions TOpts;
  TOpts.VerifySemanticSteps = false;
  for (auto _ : State) {
    TheoremCaseReport Report = checkTheoremsOnChain(P, Chain, TOpts);
    benchmark::DoNotOptimize(Report.allHold());
  }
}
BENCHMARK(benchEndToEndWithoutSemantics);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
