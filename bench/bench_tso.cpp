//===----------------------------------------------------------------------===//
///
/// \file
/// E13 — §8: TSO explained by transformations. The litmus battery on SC
/// and TSO, the explanation check, and machine throughput.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "tso/Litmus.h"
#include "tso/PsoMachine.h"
#include "tso/TsoExplain.h"

#include <chrono>

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

TsoLimits tsoEngine(unsigned Workers, bool Oracle, bool Por = true) {
  TsoLimits L;
  L.Workers = Workers;
  L.ExhaustiveOracle = Oracle;
  L.UseReduction = Por;
  return L;
}

/// Interleaving-heavy TSO workload: three threads on disjoint locations,
/// so every cross-thread pair of steps and drains commutes. The worst
/// case for the seed machine (each interleaving order re-arrives at each
/// product state) and the best case for store-buffer sleep sets. The
/// sweep benches and the speedup claim run on this.
Program sweepProgram() {
  return parseOrDie(R"(
thread { a := 1; a := 2; a := 3; r0 := a; print r0; }
thread { b := 1; b := 2; b := 3; r1 := b; print r1; }
thread { c := 1; c := 2; c := 3; r2 := c; print r2; }
thread { d := 1; d := 2; d := 3; r3 := d; print r3; }
)");
}

/// Median-of-3 wall time of one query run.
template <typename Fn> double secondsFor(Fn &&F) {
  double Best = 1e100;
  for (int I = 0; I < 3; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

void claims() {
  header("E13 / §8", "TSO (and PSO) as safe transformations");
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    bool ScHas = T.observedIn(programBehaviours(P));
    bool TsoHas = T.observedIn(tsoBehaviours(P));
    bool PsoHas = T.observedIn(psoBehaviours(P));
    claim(T.Name + ": SC " + (T.ScAllows ? "allows" : "forbids") +
              " the asked outcome",
          ScHas == T.ScAllows);
    claim(T.Name + ": TSO " + (T.TsoAllows ? "allows" : "forbids") + " it",
          TsoHas == T.TsoAllows);
    claim(T.Name + ": PSO " + (T.PsoAllows ? "allows" : "forbids") + " it",
          PsoHas == T.PsoAllows);
    TsoExplainResult E = explainTsoByTransformations(P, 3);
    claim(T.Name + ": every TSO behaviour reached by W->R reordering + "
                   "RaW elimination",
          E.Explained && !E.Truncated);
    bool UnionTruncated = false;
    std::set<Behaviour> Union =
        reachableScBehaviours(P, 3, {}, {}, &UnionTruncated);
    bool PsoExplained = !UnionTruncated;
    for (const Behaviour &B : psoBehaviours(P))
      PsoExplained &= Union.count(B) != 0;
    claim(T.Name + ": PSO behaviours also explained (adds R-WW, §8 "
                   "conjecture)",
          PsoExplained);
  }

  // Parallel interned engine: verdict parity with the seed machine, the
  // store-buffer POR state-count reduction, and the speedup bar.
  Program Sweep = sweepProgram();
  std::set<Behaviour> Want = tsoBehaviours(Sweep, tsoEngine(1, true));
  claim("interned TSO engine behaviour set == seed machine",
        tsoBehaviours(Sweep, tsoEngine(8, false)) == Want);
  claim("interned PSO engine behaviour set == seed machine",
        psoBehaviours(Sweep, tsoEngine(8, false)) ==
            psoBehaviours(Sweep, tsoEngine(1, true)));

  ExecStats Por, NoPor;
  tsoBehaviours(Sweep, tsoEngine(1, false, /*Por=*/true), &Por);
  tsoBehaviours(Sweep, tsoEngine(1, false, /*Por=*/false), &NoPor);
  std::printf("  store-buffer POR: %llu states vs %llu unreduced (%.1fx "
              "fewer)\n",
              static_cast<unsigned long long>(Por.Visited),
              static_cast<unsigned long long>(NoPor.Visited),
              Por.Visited ? static_cast<double>(NoPor.Visited) /
                                static_cast<double>(Por.Visited)
                          : 0.0);
  claim("sleep-set POR prunes store-buffer states",
        Por.Visited < NoPor.Visited);

  // Speedup over the seed machine at 8 workers. The speedup is
  // algorithmic (interned states + sleep sets over the seed's
  // std::set-memoised recursion), so it holds even on a single-core
  // host; extra cores raise it further. The acceptance number (>= 3x)
  // is read from BENCH_results.json's speedups section, which compares
  // best-of-N benchmark repetitions; this in-binary claim uses a
  // conservative 2x bar so host noise cannot flip a one-shot run.
  double Oracle = secondsFor([&] { tsoBehaviours(Sweep, tsoEngine(1, true)); });
  double Por8 = secondsFor([&] { tsoBehaviours(Sweep, tsoEngine(8, false)); });
  std::printf("  TSO behaviours: oracle %.1fms, interned(8w) %.1fms (%.1fx)\n",
              Oracle * 1e3, Por8 * 1e3, Oracle / Por8);
  claim("TSO behaviours >= 2x faster than seed machine at 8 workers",
        Oracle / Por8 >= 2.0);
}

void benchTsoMachine(benchmark::State &State) {
  const LitmusTest &T = litmusTests()[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(T.Source);
  for (auto _ : State)
    benchmark::DoNotOptimize(tsoBehaviours(P).size());
  State.SetLabel(T.Name);
}
BENCHMARK(benchTsoMachine)->DenseRange(0, 7);

void benchPsoMachine(benchmark::State &State) {
  const LitmusTest &T = litmusTests()[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(T.Source);
  for (auto _ : State)
    benchmark::DoNotOptimize(psoBehaviours(P).size());
  State.SetLabel(T.Name);
}
BENCHMARK(benchPsoMachine)->DenseRange(0, 7);

void benchScBaseline(benchmark::State &State) {
  const LitmusTest &T = litmusTests()[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(T.Source);
  for (auto _ : State)
    benchmark::DoNotOptimize(programBehaviours(P).size());
  State.SetLabel(T.Name);
}
BENCHMARK(benchScBaseline)->DenseRange(0, 7);

void benchExplanationSearch(benchmark::State &State) {
  Program P = parseOrDie(litmusTests()[0].Source); // SB.
  size_t Programs = 0;
  for (auto _ : State) {
    TsoExplainResult E = explainTsoByTransformations(
        P, static_cast<size_t>(State.range(0)));
    Programs = E.ProgramsExplored;
    benchmark::DoNotOptimize(E.Explained);
  }
  State.counters["programs"] = static_cast<double>(Programs);
}
BENCHMARK(benchExplanationSearch)->Arg(1)->Arg(2)->Arg(3);

// Worker/POR sweep on the interleaving-heavy workload. Names encode the
// engine configuration for scripts/merge_bench_json.py: `_oracle` is the
// seed sequential machine, `_nopor` the interned engine without
// reduction, `_por` the full engine, `_wN` the worker count.

void BM_tso_sweep_oracle(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(tsoBehaviours(P, tsoEngine(1, true)).size());
}
BENCHMARK(BM_tso_sweep_oracle)->Unit(benchmark::kMillisecond);

void BM_tso_sweep_nopor_w1(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        tsoBehaviours(P, tsoEngine(1, false, /*Por=*/false)).size());
}
BENCHMARK(BM_tso_sweep_nopor_w1)->Unit(benchmark::kMillisecond);

void BM_tso_sweep_por_w1(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(tsoBehaviours(P, tsoEngine(1, false)).size());
}
BENCHMARK(BM_tso_sweep_por_w1)->Unit(benchmark::kMillisecond);

void BM_tso_sweep_por_w2(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(tsoBehaviours(P, tsoEngine(2, false)).size());
}
BENCHMARK(BM_tso_sweep_por_w2)->Unit(benchmark::kMillisecond);

void BM_tso_sweep_por_w8(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(tsoBehaviours(P, tsoEngine(8, false)).size());
}
BENCHMARK(BM_tso_sweep_por_w8)->Unit(benchmark::kMillisecond);

void BM_pso_sweep_oracle(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(psoBehaviours(P, tsoEngine(1, true)).size());
}
BENCHMARK(BM_pso_sweep_oracle)->Unit(benchmark::kMillisecond);

void BM_pso_sweep_por_w1(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(psoBehaviours(P, tsoEngine(1, false)).size());
}
BENCHMARK(BM_pso_sweep_por_w1)->Unit(benchmark::kMillisecond);

void BM_pso_sweep_por_w8(benchmark::State &State) {
  Program P = sweepProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(psoBehaviours(P, tsoEngine(8, false)).size());
}
BENCHMARK(BM_pso_sweep_por_w8)->Unit(benchmark::kMillisecond);

void benchBufferBoundAblation(benchmark::State &State) {
  Program P = parseOrDie(litmusTests()[5].Source); // SB+RFI.
  TsoLimits Limits;
  Limits.MaxBufferedStores = static_cast<size_t>(State.range(0));
  size_t Behaviours = 0;
  for (auto _ : State) {
    Behaviours = tsoBehaviours(P, Limits).size();
    benchmark::DoNotOptimize(Behaviours);
  }
  State.counters["behaviours"] = static_cast<double>(Behaviours);
}
BENCHMARK(benchBufferBoundAblation)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
