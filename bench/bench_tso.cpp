//===----------------------------------------------------------------------===//
///
/// \file
/// E13 — §8: TSO explained by transformations. The litmus battery on SC
/// and TSO, the explanation check, and machine throughput.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "tso/Litmus.h"
#include "tso/PsoMachine.h"
#include "tso/TsoExplain.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

void claims() {
  header("E13 / §8", "TSO (and PSO) as safe transformations");
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    bool ScHas = T.observedIn(programBehaviours(P));
    bool TsoHas = T.observedIn(tsoBehaviours(P));
    bool PsoHas = T.observedIn(psoBehaviours(P));
    claim(T.Name + ": SC " + (T.ScAllows ? "allows" : "forbids") +
              " the asked outcome",
          ScHas == T.ScAllows);
    claim(T.Name + ": TSO " + (T.TsoAllows ? "allows" : "forbids") + " it",
          TsoHas == T.TsoAllows);
    claim(T.Name + ": PSO " + (T.PsoAllows ? "allows" : "forbids") + " it",
          PsoHas == T.PsoAllows);
    TsoExplainResult E = explainTsoByTransformations(P, 3);
    claim(T.Name + ": every TSO behaviour reached by W->R reordering + "
                   "RaW elimination",
          E.Explained && !E.Truncated);
    bool UnionTruncated = false;
    std::set<Behaviour> Union =
        reachableScBehaviours(P, 3, {}, {}, &UnionTruncated);
    bool PsoExplained = !UnionTruncated;
    for (const Behaviour &B : psoBehaviours(P))
      PsoExplained &= Union.count(B) != 0;
    claim(T.Name + ": PSO behaviours also explained (adds R-WW, §8 "
                   "conjecture)",
          PsoExplained);
  }
}

void benchTsoMachine(benchmark::State &State) {
  const LitmusTest &T = litmusTests()[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(T.Source);
  for (auto _ : State)
    benchmark::DoNotOptimize(tsoBehaviours(P).size());
  State.SetLabel(T.Name);
}
BENCHMARK(benchTsoMachine)->DenseRange(0, 7);

void benchPsoMachine(benchmark::State &State) {
  const LitmusTest &T = litmusTests()[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(T.Source);
  for (auto _ : State)
    benchmark::DoNotOptimize(psoBehaviours(P).size());
  State.SetLabel(T.Name);
}
BENCHMARK(benchPsoMachine)->DenseRange(0, 7);

void benchScBaseline(benchmark::State &State) {
  const LitmusTest &T = litmusTests()[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(T.Source);
  for (auto _ : State)
    benchmark::DoNotOptimize(programBehaviours(P).size());
  State.SetLabel(T.Name);
}
BENCHMARK(benchScBaseline)->DenseRange(0, 7);

void benchExplanationSearch(benchmark::State &State) {
  Program P = parseOrDie(litmusTests()[0].Source); // SB.
  size_t Programs = 0;
  for (auto _ : State) {
    TsoExplainResult E = explainTsoByTransformations(
        P, static_cast<size_t>(State.range(0)));
    Programs = E.ProgramsExplored;
    benchmark::DoNotOptimize(E.Explained);
  }
  State.counters["programs"] = static_cast<double>(Programs);
}
BENCHMARK(benchExplanationSearch)->Arg(1)->Arg(2)->Arg(3);

void benchBufferBoundAblation(benchmark::State &State) {
  Program P = parseOrDie(litmusTests()[5].Source); // SB+RFI.
  TsoLimits Limits;
  Limits.MaxBufferedStores = static_cast<size_t>(State.range(0));
  size_t Behaviours = 0;
  for (auto _ : State) {
    Behaviours = tsoBehaviours(P, Limits).size();
    benchmark::DoNotOptimize(Behaviours);
  }
  State.counters["behaviours"] = static_cast<double>(Behaviours);
}
BENCHMARK(benchBufferBoundAblation)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
