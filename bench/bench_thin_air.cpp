//===----------------------------------------------------------------------===//
///
/// \file
/// E11 — §5's out-of-thin-air guarantee (Lemmas 2/3, Theorem 5). The 42
/// example, origin preservation under rule chains, and the audit cost.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "opt/Pipeline.h"
#include "verify/Checks.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

const char *CopyExchange = R"(
thread { r2 := y; x := r2; print r2; }
thread { r1 := x; y := r1; }
)";

void claims() {
  header("E11 / §5", "out-of-thin-air guarantee");
  Program P = parseOrDie(CopyExchange);
  claim("the §5 program does not contain 42", !P.containsConstant(42));
  ThinAirReport R = checkThinAir(P, P, 42);
  claim("no execution reads/writes/outputs 42 (Lemma 3)", R.holds());
  claim("[[P]] has no origin for 42 (Lemma 6)", !R.OrigHasOrigin);
  // Theorem 5 over exhaustive 1- and 2-step rule chains.
  size_t Chains = 0, Ok = 0;
  for (const RewriteSite &S1 :
       findRewriteSites(P, RuleSet::withExtensions())) {
    Program P1 = applyRewrite(P, S1);
    ++Chains;
    Ok += checkThinAir(P, P1, 42).holds();
    for (const RewriteSite &S2 :
         findRewriteSites(P1, RuleSet::withExtensions())) {
      Program P2 = applyRewrite(P1, S2);
      ++Chains;
      Ok += checkThinAir(P, P2, 42).holds();
    }
  }
  claim("Theorem 5 on all " + std::to_string(Chains) +
            " exhaustive 1/2-step chains",
        Chains > 0 && Ok == Chains);
}

void benchOriginScan(benchmark::State &State) {
  Program P = parseOrDie(CopyExchange);
  std::vector<Value> D = defaultDomainFor(P);
  D.push_back(42);
  Traceset T = programTraceset(P, D);
  for (auto _ : State)
    benchmark::DoNotOptimize(T.hasOriginFor(42));
  State.counters["traces"] = static_cast<double>(T.size());
}
BENCHMARK(benchOriginScan);

void benchThinAirAudit(benchmark::State &State) {
  Program P = parseOrDie(CopyExchange);
  for (auto _ : State) {
    ThinAirReport R = checkThinAir(P, P, 42);
    benchmark::DoNotOptimize(R.holds());
  }
}
BENCHMARK(benchThinAirAudit);

void benchAuditUnderChains(benchmark::State &State) {
  Program P = parseOrDie(CopyExchange);
  Rng R(7);
  TransformChain Chain = randomChain(P, RuleSet::withExtensions(),
                                     static_cast<size_t>(State.range(0)), R);
  for (auto _ : State) {
    ThinAirReport Rep = checkThinAir(P, Chain.Result, 42);
    benchmark::DoNotOptimize(Rep.holds());
  }
  State.counters["chain_len"] = static_cast<double>(Chain.Steps.size());
}
BENCHMARK(benchAuditUnderChains)->Arg(1)->Arg(2)->Arg(4);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
