//===----------------------------------------------------------------------===//
///
/// \file
/// E10 — Fig 11 syntactic reorderings. Verifies Lemma 5 / Theorem 4 for
/// each rule (the application is a reordering of an elimination of the
/// original traceset; DRF guarantee holds end to end), and measures the
/// composite checker per rule.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "opt/Rewrite.h"
#include "semantics/Reordering.h"
#include "verify/Checks.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

struct RuleExample {
  RuleKind Rule;
  const char *Source;
};

/// DRF hosts for each reordering rule (single-threaded or lock/volatile
/// protected so the Theorem 4 claim is non-vacuous).
const RuleExample Examples[] = {
    {RuleKind::RRR, "thread { r1 := x; r2 := y; print r1; print r2; }"},
    {RuleKind::RWW, "thread { x := 1; y := 2; }"},
    {RuleKind::RWR, "thread { x := 1; r2 := y; print r2; }"},
    {RuleKind::RRW, "thread { r1 := x; y := 2; print r1; }"},
    {RuleKind::RWL, "thread { x := 1; lock m; r1 := x; unlock m; }"},
    {RuleKind::RRL, "thread { r1 := x; lock m; print r1; unlock m; }"},
    {RuleKind::RUW, "thread { lock m; r1 := x; unlock m; x := 1; }"},
    {RuleKind::RUR, "thread { lock m; x := 1; unlock m; r1 := x; }"},
    {RuleKind::RXR, "thread { print r1; r2 := x; print r2; }"},
    {RuleKind::RXW, "thread { print r1; x := 1; }"},
};

void claims() {
  header("E10 / Fig 11",
         "syntactic reorderings are elimination-then-reordering");
  for (const RuleExample &Ex : Examples) {
    Program P = parseOrDie(Ex.Source);
    std::vector<RewriteSite> Sites;
    for (const RewriteSite &S : findRewriteSites(P))
      if (S.Rule == Ex.Rule)
        Sites.push_back(S);
    if (Sites.empty()) {
      claim(ruleName(Ex.Rule) + ": site found", false);
      continue;
    }
    Program T = applyRewrite(P, Sites.front());
    std::vector<Value> D = defaultDomainFor(P, 2);
    TransformCheckResult R = checkEliminationThenReordering(
        programTraceset(P, D), programTraceset(T, D));
    claim(ruleName(Ex.Rule) + ": elimination+reordering (Lemma 5)",
          R.Verdict == CheckVerdict::Holds);
    DrfGuaranteeReport G = checkDrfGuarantee(P, T);
    claim(ruleName(Ex.Rule) + ": DRF guarantee (Theorem 4)",
          G.OriginalDrf && G.holds());
  }
}

void benchLemma5Verification(benchmark::State &State) {
  const RuleExample &Ex = Examples[static_cast<size_t>(State.range(0))];
  Program P = parseOrDie(Ex.Source);
  RewriteSite Site;
  bool Found = false;
  for (const RewriteSite &S : findRewriteSites(P))
    if (S.Rule == Ex.Rule && !Found) {
      Site = S;
      Found = true;
    }
  Program T = applyRewrite(P, Site);
  std::vector<Value> D = defaultDomainFor(P, 2);
  Traceset TP = programTraceset(P, D);
  Traceset TT = programTraceset(T, D);
  for (auto _ : State) {
    TransformCheckResult R = checkEliminationThenReordering(TP, TT);
    benchmark::DoNotOptimize(R.Verdict);
  }
  State.SetLabel(ruleName(Ex.Rule));
}
BENCHMARK(benchLemma5Verification)->DenseRange(0, 9);

void benchReorderSiteDiscovery(benchmark::State &State) {
  std::string Src = "thread { ";
  for (int I = 0; I < State.range(0); ++I)
    Src += "x" + std::to_string(I) + " := 1; r" + std::to_string(I) +
           " := y" + std::to_string(I) + "; ";
  Src += "}";
  Program P = parseOrDie(Src);
  size_t Sites = 0;
  for (auto _ : State) {
    Sites = findRewriteSites(P, RuleSet::reorderingsOnly()).size();
    benchmark::DoNotOptimize(Sites);
  }
  State.counters["sites"] = static_cast<double>(Sites);
}
BENCHMARK(benchReorderSiteDiscovery)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
