//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel exploration engine benches: the seed's exhaustive sequential
/// enumerator (ExhaustiveOracle) against the reduced engine (hash-consed
/// interned states + sleep-set POR) at several worker counts, on the two
/// memoised workhorse queries — behaviour collection and adjacent-race
/// search.
///
/// The headline claim is the PR's acceptance bar: the reduced engine at 8
/// workers is at least 4x faster than the seed engine on the
/// interleaving-heavy tracesets (the speedup is algorithmic — sleep sets
/// prune redundant arrivals and interning replaces lexicographic
/// std::set compares — so it holds even on a single-core host).
///
/// Bench names encode the engine configuration for BENCH_results.json
/// (scripts/merge_bench_json.py): `_oracle` is the seed engine, `_nopor`
/// the interned engine without reduction, `_por` the full engine, and a
/// `_wN` suffix gives the worker count.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "support/Symbol.h"
#include "trace/Enumerate.h"
#include "verify/BehaviourCache.h"

#include <chrono>

using namespace tracesafe;

namespace {

/// N threads, each a single straight-line trace of K writes to its own
/// location. Fully independent across threads: the worst case for the
/// exhaustive enumerator (every interleaving order re-arrives at every
/// product state) and the best case for sleep sets.
Traceset independentWriters(unsigned Threads, unsigned Writes) {
  Traceset T({0, 1});
  for (ThreadId Tid = 0; Tid < Threads; ++Tid) {
    SymbolId Loc = Symbol::intern("ind" + std::to_string(Tid));
    Trace Tr{Action::mkStart(Tid)};
    for (unsigned I = 0; I < Writes; ++I)
      Tr.push_back(Action::mkWrite(Loc, I % 2));
    T.insert(Tr);
  }
  return T;
}

/// Like independentWriters but the last action of every thread hits one
/// shared location, so a race exists and the race query has real work in
/// both the clean prefix and the conflicting tail.
Traceset sharedTailWriters(unsigned Threads, unsigned Writes) {
  Traceset T({0, 1});
  SymbolId Shared = Symbol::intern("shared_tail");
  for (ThreadId Tid = 0; Tid < Threads; ++Tid) {
    SymbolId Loc = Symbol::intern("pfx" + std::to_string(Tid));
    Trace Tr{Action::mkStart(Tid)};
    for (unsigned I = 0; I + 1 < Writes; ++I)
      Tr.push_back(Action::mkWrite(Loc, I % 2));
    Tr.push_back(Action::mkWrite(Shared, Tid % 2));
    T.insert(Tr);
  }
  return T;
}

/// Reader/writer mix over a small shared state with prints: value
/// branching in the reads and a non-trivial behaviour set.
Traceset readersAndWriters(unsigned Readers) {
  Traceset T({0, 1});
  SymbolId X = Symbol::intern("rw_x");
  T.insert(Trace{Action::mkStart(0), Action::mkWrite(X, 1),
                 Action::mkWrite(X, 0)});
  for (ThreadId Tid = 1; Tid <= Readers; ++Tid) {
    SymbolId Loc = Symbol::intern("rw_l" + std::to_string(Tid));
    for (Value V : {0, 1})
      T.insert(Trace{Action::mkStart(Tid), Action::mkWrite(Loc, 1),
                     Action::mkRead(X, V), Action::mkExternal(V)});
  }
  return T;
}

EnumerationLimits engine(unsigned Workers, bool Oracle, bool Por = true) {
  EnumerationLimits L;
  L.Workers = Workers;
  L.ExhaustiveOracle = Oracle;
  L.SleepSets = Por;
  return L;
}

// --- timed claims -----------------------------------------------------------

/// Median-of-3 wall time of one query run.
template <typename Fn> double secondsFor(Fn &&F) {
  double Best = 1e100;
  for (int I = 0; I < 3; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

void claims() {
  benchutil::header("parallel exploration engine",
                    "work-stealing + sleep-set POR + interning");

  Traceset Ind = independentWriters(4, 10);
  Traceset Tail = sharedTailWriters(4, 10);
  Traceset BigTail = sharedTailWriters(5, 9);
  Traceset Rw = readersAndWriters(3);

  // Verdict parity first: a fast wrong engine is worthless.
  std::set<Behaviour> WantB = collectBehaviours(Rw, engine(1, true));
  benchutil::claim("reduced engine behaviour set == seed oracle",
                   collectBehaviours(Rw, engine(8, false)) == WantB);
  bool WantRace = findAdjacentRace(Tail, engine(1, true)).HasRace;
  benchutil::claim("reduced engine race verdict == seed oracle (racy set)",
                   findAdjacentRace(Tail, engine(8, false)).HasRace ==
                       WantRace);
  benchutil::claim("seed oracle finds the shared-tail race", WantRace);
  benchutil::claim(
      "reduced engine proves the independent set race-free",
      !findAdjacentRace(Ind, engine(8, false)).HasRace &&
          !findAdjacentRace(Ind, engine(1, true)).HasRace);

  // The acceptance bar: >= 4x on both memoised queries at 8 workers.
  double RaceOracle =
      secondsFor([&] { findAdjacentRace(Ind, engine(1, true)); });
  double RacePor8 =
      secondsFor([&] { findAdjacentRace(Ind, engine(8, false)); });
  double BehOracle =
      secondsFor([&] { collectBehaviours(BigTail, engine(1, true)); });
  double BehPor8 =
      secondsFor([&] { collectBehaviours(BigTail, engine(8, false)); });
  std::printf("  race query:      oracle %.1fms, reduced(8w) %.1fms (%.1fx)\n",
              RaceOracle * 1e3, RacePor8 * 1e3, RaceOracle / RacePor8);
  std::printf("  behaviour query: oracle %.1fms, reduced(8w) %.1fms (%.1fx)\n",
              BehOracle * 1e3, BehPor8 * 1e3, BehOracle / BehPor8);
  benchutil::claim("race query >= 4x faster than seed engine at 8 workers",
                   RaceOracle / RacePor8 >= 4.0);
  benchutil::claim(
      "behaviour query >= 4x faster than seed engine at 8 workers",
      BehOracle / BehPor8 >= 4.0);

  // Source sets layered on sleep sets: same answers, fewer arrivals on
  // independence-heavy tracesets.
  EnumerationLimits Src = engine(1, false);
  EnumerationLimits NoSrc = engine(1, false);
  NoSrc.SourceSets = false;
  EnumerationStats WithSrc, WithoutSrc;
  std::set<Behaviour> SrcB = collectBehaviours(Ind, Src, &WithSrc);
  std::set<Behaviour> NoSrcB = collectBehaviours(Ind, NoSrc, &WithoutSrc);
  std::printf("  source sets: %llu states vs %llu sleep-sets-only\n",
              static_cast<unsigned long long>(WithSrc.Visited),
              static_cast<unsigned long long>(WithoutSrc.Visited));
  benchutil::claim("source sets preserve the behaviour set", SrcB == NoSrcB);
  benchutil::claim("source sets do not explore more than sleep sets alone",
                   WithSrc.Visited <= WithoutSrc.Visited);

  // Cross-query cache: a warm hit replays only budget charges.
  Program CacheP = parseOrDie(
      "thread { x := 1; y := 1; r0 := y; r1 := x; print r0; print r1; }\n"
      "thread { y := 2; x := 2; r2 := x; r3 := y; print r2; print r3; }\n");
  BehaviourCache Cache;
  std::vector<Value> Domain{0, 1};
  ExploreLimits EL;
  double Cold = secondsFor([&] {
    Cache.clear();
    Cache.tracesetFor(CacheP, Domain, EL);
  });
  Cache.clear();
  Cache.tracesetFor(CacheP, Domain, EL);
  double Warm = secondsFor([&] { Cache.tracesetFor(CacheP, Domain, EL); });
  std::printf("  behaviour cache: cold %.2fms, warm hit %.3fms (%.0fx)\n",
              Cold * 1e3, Warm * 1e3, Warm > 0 ? Cold / Warm : 0.0);
  benchutil::claim("warm cache hit beats recomputation", Warm < Cold);
}

// --- timed benchmarks -------------------------------------------------------

void BM_race_independent_oracle(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(findAdjacentRace(T, engine(1, true)).HasRace);
}
BENCHMARK(BM_race_independent_oracle)->Unit(benchmark::kMillisecond);

void BM_race_independent_nopor_w1(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(
        findAdjacentRace(T, engine(1, false, /*Por=*/false)).HasRace);
}
BENCHMARK(BM_race_independent_nopor_w1)->Unit(benchmark::kMillisecond);

void BM_race_independent_por_w1(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(findAdjacentRace(T, engine(1, false)).HasRace);
}
BENCHMARK(BM_race_independent_por_w1)->Unit(benchmark::kMillisecond);

void BM_race_independent_por_w2(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(findAdjacentRace(T, engine(2, false)).HasRace);
}
BENCHMARK(BM_race_independent_por_w2)->Unit(benchmark::kMillisecond);

void BM_race_independent_por_w8(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(findAdjacentRace(T, engine(8, false)).HasRace);
}
BENCHMARK(BM_race_independent_por_w8)->Unit(benchmark::kMillisecond);

void BM_behaviours_sharedtail_oracle(benchmark::State &S) {
  Traceset T = sharedTailWriters(5, 9);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(1, true)).size());
}
BENCHMARK(BM_behaviours_sharedtail_oracle)->Unit(benchmark::kMillisecond);

void BM_behaviours_sharedtail_por_w1(benchmark::State &S) {
  Traceset T = sharedTailWriters(5, 9);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(1, false)).size());
}
BENCHMARK(BM_behaviours_sharedtail_por_w1)->Unit(benchmark::kMillisecond);

void BM_behaviours_sharedtail_por_w8(benchmark::State &S) {
  Traceset T = sharedTailWriters(5, 9);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(8, false)).size());
}
BENCHMARK(BM_behaviours_sharedtail_por_w8)->Unit(benchmark::kMillisecond);

// Source-set sweep on the independence-heavy traceset (best case for the
// grouping: fully disjoint thread footprints).

void BM_behaviours_independent_oracle(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(1, true)).size());
}
BENCHMARK(BM_behaviours_independent_oracle)->Unit(benchmark::kMillisecond);

void BM_behaviours_independent_nopor_w1(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(
        collectBehaviours(T, engine(1, false, /*Por=*/false)).size());
}
BENCHMARK(BM_behaviours_independent_nopor_w1)->Unit(benchmark::kMillisecond);

void BM_behaviours_independent_por_w1(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(1, false)).size());
}
BENCHMARK(BM_behaviours_independent_por_w1)->Unit(benchmark::kMillisecond);

void BM_behaviours_independent_por_w8(benchmark::State &S) {
  Traceset T = independentWriters(4, 10);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(8, false)).size());
}
BENCHMARK(BM_behaviours_independent_por_w8)->Unit(benchmark::kMillisecond);

void BM_behaviours_readers_oracle(benchmark::State &S) {
  Traceset T = readersAndWriters(5);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(1, true)).size());
}
BENCHMARK(BM_behaviours_readers_oracle)->Unit(benchmark::kMillisecond);

void BM_behaviours_readers_por_w8(benchmark::State &S) {
  Traceset T = readersAndWriters(5);
  for (auto _ : S)
    benchmark::DoNotOptimize(collectBehaviours(T, engine(8, false)).size());
}
BENCHMARK(BM_behaviours_readers_por_w8)->Unit(benchmark::kMillisecond);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
