//===----------------------------------------------------------------------===//
///
/// \file
/// E4 — Fig 3 (irrelevant read introduction). The introduction step is the
/// unsound one; the subsequent cross-acquire elimination is individually
/// safe; the combination gives a DRF program a new behaviour.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "opt/Unsafe.h"
#include "semantics/Reordering.h"

using namespace tracesafe;
using namespace tracesafe::benchutil;

namespace {

const char *StageA = R"(
thread { lock m; x := 1; r3 := y; print r3; unlock m; }
thread { lock m; y := 1; r4 := x; print r4; unlock m; }
)";

const char *StageC = R"(
thread { r1 := y; lock m; x := 1; print r1; unlock m; }
thread { r2 := x; lock m; y := 1; print r2; unlock m; }
)";

Program stageB() {
  Program A = parseOrDie(StageA);
  ListPath T0, T1;
  T0.Tid = 0;
  T1.Tid = 1;
  Program B =
      introduceRead(A, T0, 0, Symbol::intern("r1"), Symbol::intern("y"));
  return introduceRead(B, T1, 0, Symbol::intern("r2"), Symbol::intern("x"));
}

void claims() {
  header("E4 / Fig 3", "irrelevant read introduction");
  Program A = parseOrDie(StageA);
  Program B = stageB();
  Program C = parseOrDie(StageC);
  claim("(a) is data race free", isProgramDrf(A));
  claim("(a) cannot print two zeros",
        programBehaviours(A).count({0, 0}) == 0);
  std::vector<Value> D = defaultDomainFor(A, 2);
  Traceset TA = programTraceset(A, D);
  Traceset TB = programTraceset(B, D);
  Traceset TC = programTraceset(C, D);
  claim("(a)->(b) read introduction is NOT an elimination",
        checkElimination(TA, TB).Verdict == CheckVerdict::Fails);
  claim("(a)->(b) nor an elimination+reordering",
        checkEliminationThenReordering(TA, TB).Verdict ==
            CheckVerdict::Fails);
  claim("(b) is racy", !isProgramDrf(B));
  claim("(b)->(c) cross-acquire read elimination IS an elimination",
        checkElimination(TB, TC).Verdict == CheckVerdict::Holds);
  claim("(c) prints two zeros under SC",
        programBehaviours(C).count({0, 0}) == 1);
}

void benchIntroduceRead(benchmark::State &State) {
  Program A = parseOrDie(StageA);
  ListPath T0;
  T0.Tid = 0;
  for (auto _ : State) {
    Program B = introduceRead(A, T0, 0, Symbol::intern("r1"),
                              Symbol::intern("y"));
    benchmark::DoNotOptimize(B.threadCount());
  }
}
BENCHMARK(benchIntroduceRead);

void benchIntroductionRefutation(benchmark::State &State) {
  // How long does it take the checker to *refute* the introduction?
  Program A = parseOrDie(StageA);
  Program B = stageB();
  std::vector<Value> D = defaultDomainFor(A, 2);
  Traceset TA = programTraceset(A, D);
  Traceset TB = programTraceset(B, D);
  for (auto _ : State) {
    TransformCheckResult R = checkElimination(TA, TB);
    benchmark::DoNotOptimize(R.Verdict);
  }
}
BENCHMARK(benchIntroductionRefutation);

void benchCrossAcquireElimination(benchmark::State &State) {
  Program B = stageB();
  Program C = parseOrDie(StageC);
  std::vector<Value> D = defaultDomainFor(B, 2);
  Traceset TB = programTraceset(B, D);
  Traceset TC = programTraceset(C, D);
  for (auto _ : State) {
    TransformCheckResult R = checkElimination(TB, TC);
    benchmark::DoNotOptimize(R.Verdict);
  }
}
BENCHMARK(benchCrossAcquireElimination);

} // namespace

TRACESAFE_BENCH_MAIN(claims)
