//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header: the whole TraceSafe public API.
///
/// TraceSafe is an executable model of Ševčík's PLDI 2011 "Safe
/// Optimisations for Shared-Memory Concurrent Programs": trace semantics,
/// the semantic elimination/reordering transformations and their decision
/// procedures, the simple concurrent language with the Fig 10/11 syntactic
/// rules, the verification harness for the DRF and out-of-thin-air
/// guarantees, and the TSO/PSO machines of the §8 extension.
///
/// Typical entry points:
///  - parseProgram / printProgram               (lang/Parser.h, Printer.h)
///  - programBehaviours / isProgramDrf          (lang/ProgramExec.h)
///  - programTraceset                           (lang/Explore.h)
///  - checkElimination / checkReordering /
///    checkEliminationThenReordering            (semantics/*.h)
///  - findRewriteSites / applyRewrite           (opt/Rewrite.h)
///  - checkDrfGuarantee / checkThinAir          (verify/Checks.h)
///  - checkTheoremsOnChain                      (verify/Theorems.h)
///  - tsoBehaviours / explainTsoByTransformations (tso/*.h)
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACESAFE_H
#define TRACESAFE_TRACESAFE_H

#include "lang/Ast.h"
#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "lang/SmallStep.h"
#include "opt/Pipeline.h"
#include "opt/Rewrite.h"
#include "opt/Unsafe.h"
#include "semantics/Eliminable.h"
#include "semantics/Elimination.h"
#include "semantics/Reorderable.h"
#include "semantics/Reordering.h"
#include "semantics/Unelimination.h"
#include "support/Rng.h"
#include "support/Symbol.h"
#include "trace/Action.h"
#include "trace/Enumerate.h"
#include "trace/HappensBefore.h"
#include "trace/Interleaving.h"
#include "trace/Trace.h"
#include "trace/Traceset.h"
#include "tso/Litmus.h"
#include "tso/PsoMachine.h"
#include "tso/TsoExplain.h"
#include "tso/TsoMachine.h"
#include "verify/Checks.h"
#include "verify/ProgramGen.h"
#include "verify/Theorems.h"

#endif // TRACESAFE_TRACESAFE_H
