//===----------------------------------------------------------------------===//
///
/// \file
/// The tracesafe binary event-log format ("TSRL"; see docs/TRACELOG.md).
///
/// A log is one observed execution of an arbitrarily large concurrent
/// program: a 16-byte file header followed by CRC-checked blocks of fixed
/// 16-byte little-endian event records (read, write, lock acquire/release,
/// fork, join). The framing mirrors the robustness contract of the fuzz
/// journal and the daemon protocol: a crashed or truncated recorder leaves
/// a valid prefix plus at most one torn block, and the reader accepts
/// exactly that prefix — a flipped bit fails the block CRC, a torn tail
/// fails the length check, and garbage never parses as events.
///
/// The CRC is the standard reflected CRC-32 (the zlib/PNG polynomial, same
/// check value as the daemon frames) but computed slice-by-8 here: the
/// byte-at-a-time table walk the daemon uses would cap ingest well below
/// the streaming detector's >= 500 MB/s target.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_RACELOG_LOG_H
#define TRACESAFE_RACELOG_LOG_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace tracesafe {
namespace racelog {

/// "TSRL" / "TSRB" as little-endian u32s.
constexpr uint32_t FileMagic = 0x4C525354;
constexpr uint32_t BlockMagic = 0x42525354;
constexpr uint8_t FormatVersion = 1;
constexpr size_t FileHeaderSize = 16;
constexpr size_t BlockHeaderSize = 16;
constexpr size_t EventRecordSize = 16;
/// Upper bound on one block's payload, so a corrupt length field is
/// rejected without a huge allocation or a runaway CRC pass.
constexpr uint32_t MaxBlockPayload = 4u << 20;
/// Writer default: 4096 events -> 64 KiB payloads, large enough to
/// amortise the per-block header + CRC to well under 1%.
constexpr size_t DefaultEventsPerBlock = 4096;

/// The six event kinds. On the wire an op byte outside [Read, Join] (or a
/// nonzero flags byte) marks the block — and everything after it — as
/// unusable tail even when the CRC matches.
enum class Op : uint8_t {
  Read = 1,    ///< data read of Addr by Tid
  Write = 2,   ///< data write of Addr by Tid
  Acquire = 3, ///< lock acquire; Addr is the lock id
  Release = 4, ///< lock release; Addr is the lock id
  Fork = 5,    ///< Tid forks thread Aux
  Join = 6,    ///< Tid joins thread Aux
};

const char *opName(Op O);

/// One decoded event. The wire record is exactly 16 little-endian bytes:
/// u8 op, u8 flags (must be 0), u16 tid, u32 aux (fork/join target tid,
/// else 0), u64 addr (data address or lock id).
struct LogEvent {
  Op Kind = Op::Read;
  uint32_t Tid = 0;    ///< issuing thread; < MaxTids
  uint32_t Target = 0; ///< fork/join target tid; < MaxTids
  uint64_t Addr = 0;   ///< data address (Read/Write) or lock id
};

/// Thread ids are 16 bits on the wire; the detector packs (tid, clock)
/// epochs into one u64 on the strength of this bound.
constexpr uint32_t MaxTids = 1u << 16;

/// CRC32 (reflected, polynomial 0xEDB88320; crc32("123456789") ==
/// 0xCBF43926 — interoperable with daemon::crc32), slice-by-8.
uint32_t crc32(const void *Data, size_t Len);

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

/// Appends events into an in-memory log image. Blocks are emitted as they
/// fill; finish() flushes the final partial block and hands the bytes
/// over. The writer never produces a torn block — torn tails come from
/// crashed recorders and truncated copies, which is what the reader's
/// valid-prefix rule is for.
class LogWriter {
public:
  explicit LogWriter(size_t EventsPerBlock = DefaultEventsPerBlock);

  void append(const LogEvent &E);
  void append(Op Kind, uint32_t Tid, uint64_t Addr, uint32_t Target = 0) {
    append(LogEvent{Kind, Tid, Target, Addr});
  }

  uint64_t events() const { return Events; }

  /// Flushes the pending block and returns the complete log bytes. The
  /// writer is spent afterwards.
  std::string finish();

private:
  void flushBlock();

  std::string Out;
  std::string Pending; ///< record bytes of the open block
  size_t EventsPerBlock;
  uint64_t Events = 0;
};

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

/// Block-wise cursor over an in-memory log image with valid-prefix
/// semantics. Construction validates the file header; nextPayload() hands
/// out consecutive CRC-checked block payloads (raw 16-byte records) and
/// stops at the first unusable block, recording why and how many bytes
/// were dropped. A log that is nothing but a valid header is a valid
/// empty log; a file too short for the header, or with the wrong magic or
/// version, is not a log at all (ok() == false).
class BlockCursor {
public:
  explicit BlockCursor(std::string_view Bytes);

  /// False when the file header is unusable (error() says why). No
  /// payloads are produced.
  bool ok() const { return HeaderOk; }
  const std::string &error() const { return Error; }

  /// The next block's record bytes ({} at the end of the valid prefix).
  /// The view aliases the log image.
  std::string_view nextPayload();

  /// True once the cursor stopped before the end of the image: the
  /// remaining droppedBytes() are a torn or corrupt tail, and tailError()
  /// says what was wrong with its first block.
  bool tornTail() const { return Torn; }
  uint64_t droppedBytes() const { return Torn ? Bytes.size() - Pos : 0; }
  const std::string &tailError() const { return Error; }

  uint64_t blocks() const { return Blocks; }

private:
  std::string_view Bytes;
  size_t Pos = 0;
  uint64_t Blocks = 0;
  bool HeaderOk = false;
  bool Torn = false;
  bool Done = false;
  std::string Error;
};

//===----------------------------------------------------------------------===//
// Record codec
//===----------------------------------------------------------------------===//

/// Encodes \p E as its 16 wire bytes at \p Out.
void encodeEvent(const LogEvent &E, char *Out);

/// Decodes the 16 bytes at \p In. False on an invalid record (bad op,
/// nonzero flags, out-of-range fork/join target) — the caller treats the
/// whole containing block as unusable tail. Inline: the scanners call
/// this once per record, and an out-of-line call here costs as much as
/// the decode itself.
inline bool decodeEvent(const char *In, LogEvent &E) {
  uint8_t OpByte = static_cast<uint8_t>(In[0]);
  uint8_t Flags = static_cast<uint8_t>(In[1]);
  if (OpByte < static_cast<uint8_t>(Op::Read) ||
      OpByte > static_cast<uint8_t>(Op::Join) || Flags != 0)
    return false;
  E.Kind = static_cast<Op>(OpByte);
  uint16_t Tid;
  __builtin_memcpy(&Tid, In + 2, 2);
  E.Tid = Tid;
  uint32_t Aux;
  __builtin_memcpy(&Aux, In + 4, 4);
  bool IsForkJoin = E.Kind == Op::Fork || E.Kind == Op::Join;
  if (IsForkJoin ? Aux >= MaxTids : Aux != 0)
    return false;
  E.Target = IsForkJoin ? Aux : 0;
  __builtin_memcpy(&E.Addr, In + 8, 8);
  return true;
}

/// Convenience: decode an entire log image into \p Out (appending).
/// Returns false only when the header is unusable; a torn tail still
/// returns true with the valid prefix decoded.
struct DecodedLog {
  std::string Error;  ///< non-empty when the header was unusable
  bool TornTail = false;
  uint64_t DroppedBytes = 0;
  uint64_t Blocks = 0;
};
bool decodeLog(std::string_view Bytes, std::vector<LogEvent> &Out,
               DecodedLog *Info = nullptr);

} // namespace racelog
} // namespace tracesafe

#endif // TRACESAFE_RACELOG_LOG_H
