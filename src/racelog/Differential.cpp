#include "racelog/Differential.h"

#include "trace/HappensBefore.h"
#include "trace/Interleaving.h"

#include <algorithm>
#include <map>

using namespace tracesafe;
using namespace tracesafe::racelog;

DifferentialCase racelog::makeDifferentialCase(const Interleaving &I,
                                               size_t EventsPerBlock) {
  DifferentialCase Out;
  LogWriter W(EventsPerBlock);
  // Log index of each interleaving position (~0 = no log representation).
  std::vector<uint64_t> LogIdx(I.size(), ~0ULL);
  uint64_t Next = 0;
  for (size_t P = 0; P < I.size(); ++P) {
    const Event &E = I[P];
    const Action &A = E.Act;
    switch (A.kind()) {
    case ActionKind::Start:
    case ActionKind::External:
      continue;
    case ActionKind::Read:
      if (A.isVolatileAccess())
        W.append(Op::Acquire, E.Tid, volatileLockId(A.location()));
      else
        W.append(Op::Read, E.Tid, dataAddr(A.location()));
      break;
    case ActionKind::Write:
      if (A.isVolatileAccess())
        W.append(Op::Release, E.Tid, volatileLockId(A.location()));
      else
        W.append(Op::Write, E.Tid, dataAddr(A.location()));
      break;
    case ActionKind::Lock:
      W.append(Op::Acquire, E.Tid, monitorLockId(A.monitor()));
      break;
    case ActionKind::Unlock:
      W.append(Op::Release, E.Tid, monitorLockId(A.monitor()));
      break;
    }
    LogIdx[P] = Next++;
  }
  Out.Events = Next;
  Out.Log = W.finish();

  // Ground truth from the quadratic §3 order: a position J races iff some
  // earlier conflicting position is unordered with it; per location keep
  // the earliest such J (what a streaming detector must report).
  HappensBefore HB(I);
  std::map<uint64_t, uint64_t> FirstRace; // addr -> log index
  for (size_t J = 0; J < I.size(); ++J) {
    if (!I[J].Act.isNormalAccess())
      continue;
    for (size_t K = 0; K < J; ++K) {
      if (!I[K].Act.conflictsWith(I[J].Act) || HB.ordered(K, J))
        continue;
      uint64_t Addr = dataAddr(I[J].Act.location());
      auto [It, New] = FirstRace.emplace(Addr, LogIdx[J]);
      if (!New)
        It->second = std::min(It->second, LogIdx[J]);
      break;
    }
  }
  for (const auto &[Addr, Idx] : FirstRace)
    Out.Races.push_back({Addr, Idx});
  std::sort(Out.Races.begin(), Out.Races.end(),
            [](const ExpectedRace &A, const ExpectedRace &B) {
              return A.EventIndex < B.EventIndex;
            });
  return Out;
}
