#include "racelog/Log.h"

using namespace tracesafe;
using namespace tracesafe::racelog;

//===----------------------------------------------------------------------===//
// CRC32, slice-by-8
//===----------------------------------------------------------------------===//

namespace {

/// Eight derived tables: table 0 is the classic byte-at-a-time table, and
/// T[k][b] extends T[k-1][b] by one zero byte, so eight input bytes fold
/// into eight independent table reads per iteration instead of eight
/// serially dependent ones. Same polynomial and check value as the
/// daemon's CRC — only the walk differs.
struct Crc32Slice8 {
  uint32_t T[8][256];
  Crc32Slice8() {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[0][I] = C;
    }
    for (int K = 1; K < 8; ++K)
      for (uint32_t I = 0; I < 256; ++I)
        T[K][I] = T[0][T[K - 1][I] & 0xFF] ^ (T[K - 1][I] >> 8);
  }
};

const Crc32Slice8 &crcTables() {
  static Crc32Slice8 Tables;
  return Tables;
}

uint32_t loadU32(const char *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return V;
}

void storeU32(char *P, uint32_t V) { std::memcpy(P, &V, 4); }

} // namespace

uint32_t racelog::crc32(const void *Data, size_t Len) {
  const Crc32Slice8 &Tb = crcTables();
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  while (Len >= 8) {
    uint32_t Lo, Hi;
    std::memcpy(&Lo, P, 4);
    std::memcpy(&Hi, P + 4, 4);
    Lo ^= C;
    C = Tb.T[7][Lo & 0xFF] ^ Tb.T[6][(Lo >> 8) & 0xFF] ^
        Tb.T[5][(Lo >> 16) & 0xFF] ^ Tb.T[4][Lo >> 24] ^
        Tb.T[3][Hi & 0xFF] ^ Tb.T[2][(Hi >> 8) & 0xFF] ^
        Tb.T[1][(Hi >> 16) & 0xFF] ^ Tb.T[0][Hi >> 24];
    P += 8;
    Len -= 8;
  }
  while (Len--)
    C = Tb.T[0][(C ^ *P++) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

const char *racelog::opName(Op O) {
  switch (O) {
  case Op::Read:
    return "read";
  case Op::Write:
    return "write";
  case Op::Acquire:
    return "acquire";
  case Op::Release:
    return "release";
  case Op::Fork:
    return "fork";
  case Op::Join:
    return "join";
  }
  return "invalid";
}

//===----------------------------------------------------------------------===//
// Record codec
//===----------------------------------------------------------------------===//

void racelog::encodeEvent(const LogEvent &E, char *Out) {
  Out[0] = static_cast<char>(E.Kind);
  Out[1] = 0; // flags, reserved
  uint16_t Tid = static_cast<uint16_t>(E.Tid);
  std::memcpy(Out + 2, &Tid, 2);
  uint32_t Aux = E.Target;
  std::memcpy(Out + 4, &Aux, 4);
  std::memcpy(Out + 8, &E.Addr, 8);
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

LogWriter::LogWriter(size_t PerBlock)
    : EventsPerBlock(PerBlock ? PerBlock : DefaultEventsPerBlock) {
  Out.resize(FileHeaderSize, 0);
  storeU32(Out.data(), FileMagic);
  Out[4] = static_cast<char>(FormatVersion);
  Pending.reserve(EventsPerBlock * EventRecordSize);
}

void LogWriter::append(const LogEvent &E) {
  char Rec[EventRecordSize];
  encodeEvent(E, Rec);
  Pending.append(Rec, EventRecordSize);
  ++Events;
  if (Pending.size() >= EventsPerBlock * EventRecordSize)
    flushBlock();
}

void LogWriter::flushBlock() {
  if (Pending.empty())
    return;
  char Hdr[BlockHeaderSize] = {};
  storeU32(Hdr, BlockMagic);
  storeU32(Hdr + 4, static_cast<uint32_t>(Pending.size()));
  storeU32(Hdr + 8,
           static_cast<uint32_t>(Pending.size() / EventRecordSize));
  storeU32(Hdr + 12, crc32(Pending.data(), Pending.size()));
  Out.append(Hdr, BlockHeaderSize);
  Out += Pending;
  Pending.clear();
}

std::string LogWriter::finish() {
  flushBlock();
  return std::move(Out);
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

BlockCursor::BlockCursor(std::string_view Bytes) : Bytes(Bytes) {
  if (Bytes.size() < FileHeaderSize) {
    Error = Bytes.empty() ? "empty file (no header)"
                          : "short file header";
    return;
  }
  if (loadU32(Bytes.data()) != FileMagic) {
    Error = "bad file magic (not a TSRL log)";
    return;
  }
  if (static_cast<uint8_t>(Bytes[4]) != FormatVersion) {
    Error = "unsupported format version";
    return;
  }
  HeaderOk = true;
  Pos = FileHeaderSize;
}

std::string_view BlockCursor::nextPayload() {
  if (!HeaderOk || Done)
    return {};
  if (Pos == Bytes.size()) {
    Done = true;
    return {};
  }
  auto tear = [&](const char *Why) -> std::string_view {
    Done = Torn = true;
    Error = Why;
    return {};
  };
  if (Bytes.size() - Pos < BlockHeaderSize)
    return tear("torn block header");
  const char *Hdr = Bytes.data() + Pos;
  if (loadU32(Hdr) != BlockMagic)
    return tear("bad block magic");
  uint32_t Len = loadU32(Hdr + 4);
  uint32_t Count = loadU32(Hdr + 8);
  if (Len == 0 || Len > MaxBlockPayload || Len % EventRecordSize != 0 ||
      Count != Len / EventRecordSize)
    return tear("bad block length");
  if (Bytes.size() - Pos - BlockHeaderSize < Len)
    return tear("torn block payload");
  std::string_view Payload = Bytes.substr(Pos + BlockHeaderSize, Len);
  if (crc32(Payload.data(), Payload.size()) != loadU32(Hdr + 12))
    return tear("block crc mismatch");
  Pos += BlockHeaderSize + Len;
  ++Blocks;
  return Payload;
}

bool racelog::decodeLog(std::string_view Bytes, std::vector<LogEvent> &Out,
                        DecodedLog *Info) {
  BlockCursor Cur(Bytes);
  DecodedLog Local;
  DecodedLog &D = Info ? *Info : Local;
  if (!Cur.ok()) {
    D.Error = Cur.error();
    return false;
  }
  for (std::string_view P = Cur.nextPayload(); !P.empty();
       P = Cur.nextPayload()) {
    size_t Kept = Out.size();
    bool Bad = false;
    for (size_t Off = 0; Off < P.size(); Off += EventRecordSize) {
      LogEvent E;
      if (!decodeEvent(P.data() + Off, E)) {
        Bad = true;
        break;
      }
      Out.push_back(E);
    }
    if (Bad) {
      // A CRC-valid block with an invalid record: the recorder wrote
      // something this reader does not understand. Drop the whole block
      // and everything after it (valid-prefix rule, record granularity).
      Out.resize(Kept);
      D.TornTail = true;
      D.DroppedBytes = Bytes.size() - (P.data() - Bytes.data()) +
                       BlockHeaderSize;
      D.Blocks = Cur.blocks() - 1;
      return true;
    }
    D.Blocks = Cur.blocks();
  }
  if (Cur.tornTail()) {
    D.TornTail = true;
    D.DroppedBytes = Cur.droppedBytes();
  }
  return true;
}
