//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming happens-before race detection over binary event logs.
///
/// scanRaceLog ingests a TSRL log (racelog/Log.h) and answers the paper's
/// §3 happens-before race question for the *observed* execution: is there
/// a pair of conflicting accesses unordered by program order + release/
/// acquire synchronisation? This is the production-scale counterpart of
/// the enumerative checker in trace/HappensBefore.cpp — one trace of an
/// arbitrarily large program instead of every trace of a tiny one — and
/// the two are differentially tested against each other on every
/// interleaving the enumerator can produce (tests/test_racelog_
/// differential.cpp).
///
/// Two engines share the per-variable state machine:
///  - the epoch engine (default; FastTrack-style): the last write and, in
///    the common case, the last read are scalar (tid, clock) epochs; a
///    full read vector clock is allocated only once a variable is read
///    concurrently. O(1) per access on race-free same-thread runs.
///  - the full-vector-clock oracle (Options.Epochs = false; DJIT+-style):
///    every variable carries a whole read vector clock and every write
///    scans it. The simple engine the epoch optimisation is checked
///    against — same racy-location set, same first racy event per
///    location, by the FastTrack equivalence argument (docs/
///    PERFORMANCE.md).
///
/// Sharding: with Options.Shards > 1 the scan runs as a pipeline —
/// synchronisation events update the live thread clocks sequentially (in
/// log order), accesses are stamped with their thread's current clock
/// (interned once per sync step into an InternPool, the PR-7 lock-free
/// discipline) and routed by address hash to per-shard detectors, which
/// the window barrier runs on the shared ThreadPool. Every address lives
/// in exactly one shard and its accesses arrive in log order, so the
/// racy-location set and the first racy event per location are identical
/// for every shard count and worker width.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_RACELOG_DETECT_H
#define TRACESAFE_RACELOG_DETECT_H

#include "racelog/Log.h"
#include "support/Budget.h"

#include <string>
#include <string_view>
#include <vector>

namespace tracesafe {
namespace racelog {

struct RaceLogOptions {
  /// Address shards for the detect stage (rounded up to a power of two,
  /// clamped to [1, 64]). 1 = the inline single-table fast path.
  unsigned Shards = 1;
  /// 1 = everything in the calling thread (shards processed in order);
  /// anything else = per-shard detection tasks on the shared ThreadPool.
  /// Verdicts are identical for every width.
  unsigned Workers = 1;
  /// False selects the full-vector-clock oracle engine.
  bool Epochs = true;
  /// Pipeline window: accesses routed between two shard barriers. Bounds
  /// the routed-queue memory, does not affect results.
  size_t WindowEvents = 1 << 16;
  /// Cap on reported RaceRecords (the racy-location *count* in Stats is
  /// always exact). Races are reported first-per-location in log order.
  size_t MaxRaces = 64;
  /// Optional shared query budget. One visit is charged per ingested
  /// event (identically for every engine/shard configuration, so a
  /// query's Visited is deterministic); state-table and clock-arena
  /// growth charge real byte sizes.
  Budget *Shared = nullptr;
};

/// The first race on one location: the earliest access to Addr that is
/// unordered with some prior conflicting access.
struct RaceRecord {
  uint64_t Addr = 0;
  uint64_t EventIndex = 0; ///< log index (0-based) of the racing access
  uint32_t Tid = 0;        ///< thread of the racing access
  uint32_t PrevTid = 0;    ///< thread of the prior conflicting access
  bool Write = false;      ///< the racing access is a write
  bool PrevWrite = false;  ///< the prior access was a write

  friend bool operator==(const RaceRecord &, const RaceRecord &) = default;
};

struct RaceLogStats {
  uint64_t Events = 0;      ///< events ingested (== budget visits charged)
  uint64_t Blocks = 0;
  uint64_t PayloadBytes = 0;///< record bytes scanned
  uint64_t Threads = 0;     ///< distinct tids seen
  uint64_t RacyLocations = 0; ///< exact count of racy addresses
  uint64_t ReadShares = 0;  ///< epoch engine: reads spilled to full clocks
  bool TornTail = false;    ///< a torn/corrupt tail was dropped
  uint64_t DroppedBytes = 0;
  bool Truncated = false;
  TruncationReason Reason = TruncationReason::None;
};

struct RaceLogReport {
  /// False when the file header is unusable (not a log at all — distinct
  /// from a torn tail, which still yields a verdict on the valid prefix).
  bool FormatOk = true;
  std::string FormatError;
  /// First race per racy location, sorted by EventIndex, capped at
  /// Options.MaxRaces.
  std::vector<RaceRecord> Races;
  RaceLogStats Stats;

  /// Refuted = races found (definitive even under truncation); Proved =
  /// the *complete* log scanned race-free; Unknown = unusable header,
  /// truncated scan, or a torn tail (a race-free valid prefix proves
  /// nothing about the events the recorder lost).
  VerdictKind verdict() const {
    if (!Races.empty())
      return VerdictKind::Refuted;
    if (!FormatOk || Stats.Truncated || Stats.TornTail)
      return VerdictKind::Unknown;
    return VerdictKind::Proved;
  }

  /// One-line summary ("race-free events=..." / "races=... first=...").
  std::string str() const;
};

/// Scans \p LogBytes (a whole TSRL log image). Never throws: engine
/// faults — including the FaultSite::RaceDetect injection point, probed
/// once per block — are contained as Unknown(EngineFault), mirroring the
/// enumeration engines' robustness contract.
RaceLogReport scanRaceLog(std::string_view LogBytes,
                          const RaceLogOptions &Options = {});

} // namespace racelog
} // namespace tracesafe

#endif // TRACESAFE_RACELOG_DETECT_H
