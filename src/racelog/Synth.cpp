#include "racelog/Synth.h"

#include "racelog/Log.h"
#include "support/Rng.h"

#include <algorithm>

using namespace tracesafe;
using namespace tracesafe::racelog;

namespace {

uint32_t clampThreads(uint32_t T) {
  return std::clamp(T, 1u, MaxTids - 1);
}

uint32_t clampLocations(uint32_t L) { return std::max(L, 1u); }

} // namespace

std::string racelog::makeRaceFreeLog(const SynthOptions &O) {
  const uint32_t Threads = clampThreads(O.Threads);
  const uint32_t Locations = clampLocations(O.Locations);
  Rng R(O.Seed);
  LogWriter W;
  // Runs of one thread touching its private range: realistic recorder
  // output (threads are scheduled in slices) and the detector's same-
  // thread fast path territory.
  constexpr uint64_t Run = 64;
  while (W.events() < O.Events) {
    uint32_t T = static_cast<uint32_t>(R.below(Threads));
    uint64_t Base = (static_cast<uint64_t>(T) + 1) << 32;
    for (uint64_t I = 0; I < Run; ++I) {
      uint64_t Addr = Base + R.below(Locations);
      W.append(R.chance(3, 4) ? Op::Read : Op::Write, T, Addr);
    }
  }
  return W.finish();
}

std::string racelog::makeMixedLog(const SynthOptions &O) {
  const uint32_t Threads = clampThreads(O.Threads);
  const uint32_t Locations = clampLocations(O.Locations);
  const uint32_t NumLocks = std::max(Locations / 64, 1u);
  const uint32_t RacyPool = std::max(Locations / 16, 1u);
  Rng R(O.Seed * 0x9E3779B97F4A7C15ULL + 1);
  LogWriter W;
  constexpr uint64_t Burst = 16;
  while (W.events() < O.Events) {
    uint32_t T = static_cast<uint32_t>(R.below(Threads));
    if (R.chance(9, 10)) {
      // Lock-protected shared burst: pick a lock, access only addresses
      // associated with it. Race-free, but every address is handed
      // between threads through the lock clock — cross-thread reads and
      // writes, the expensive case for full read vector clocks.
      uint64_t Lock = R.below(NumLocks);
      W.append(Op::Acquire, T, Lock << 1);
      for (uint64_t I = 0; I < Burst; ++I) {
        uint64_t Addr = (1ULL << 40) + Lock + NumLocks * R.below(64);
        W.append(R.chance(3, 10) ? Op::Read : Op::Write, T, Addr);
      }
      W.append(Op::Release, T, Lock << 1);
    } else {
      // Unprotected burst over the racy pool.
      for (uint64_t I = 0; I < Burst; ++I) {
        uint64_t Addr = (1ULL << 41) + R.below(RacyPool);
        W.append(R.chance(1, 2) ? Op::Read : Op::Write, T, Addr);
      }
    }
  }
  return W.finish();
}

std::string racelog::makeLockHeavyLog(const SynthOptions &O) {
  const uint32_t Threads = clampThreads(O.Threads);
  const uint32_t Locations = clampLocations(O.Locations);
  const uint32_t NumLocks = std::max(Locations / 4, 1u);
  Rng R(O.Seed * 0x2545F4914F6CDD1DULL + 2);
  LogWriter W;
  while (W.events() < O.Events) {
    uint32_t T = static_cast<uint32_t>(R.below(Threads));
    uint64_t Lock = R.below(NumLocks);
    W.append(Op::Acquire, T, Lock << 1);
    // Two protected accesses per critical section: half of all events are
    // synchronisation, the stress case for the sequential clock pass.
    for (int I = 0; I < 2; ++I) {
      uint64_t Addr = (1ULL << 40) + Lock * 4 + R.below(4);
      W.append(R.chance(1, 2) ? Op::Read : Op::Write, T, Addr);
    }
    W.append(Op::Release, T, Lock << 1);
  }
  return W.finish();
}
