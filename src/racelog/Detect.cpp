#include "racelog/Detect.h"

#include "support/Failure.h"
#include "support/Intern.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <unordered_map>

using namespace tracesafe;
using namespace tracesafe::racelog;

//===----------------------------------------------------------------------===//
// Epochs and clocks
//===----------------------------------------------------------------------===//

namespace {

/// An epoch packs (tid, clock) into one u64: tid in the top 16 bits (wire
/// tids are u16), clock below. Clocks count releases/forks/joins of one
/// thread, so they stay far under 2^48. Epoch 0 means "none": a live
/// thread's clock starts at 1.
using Epoch = uint64_t;
constexpr uint64_t ClkMask = (1ULL << 48) - 1;

inline Epoch mkEpoch(uint32_t Tid, uint64_t Clk) {
  return (static_cast<uint64_t>(Tid) << 48) | Clk;
}
inline uint32_t epochTid(Epoch E) { return static_cast<uint32_t>(E >> 48); }
inline uint64_t epochClk(Epoch E) { return E & ClkMask; }

inline uint64_t mixAddr(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Read-only view of one thread's vector clock at the moment of an
/// access. Entries past the stored length are zero (the thread had not
/// heard of those tids yet).
struct ClockRef {
  const uint64_t *C = nullptr;
  size_t N = 0;
  uint64_t of(uint32_t T) const { return T < N ? C[T] : 0; }
};

/// Bump-pointer arena for clock storage (read-clock spills). Chunks never
/// move or shrink, spans are handed out zeroed, and real chunk sizes are
/// charged to the shared budget.
class ClockArena {
public:
  explicit ClockArena(Budget *B) : B(B) {}

  uint64_t *alloc(size_t N) {
    if (N > Cap - Used) {
      size_t M = std::max<size_t>(N, size_t(1) << 15);
      Chunks.push_back(std::make_unique<uint64_t[]>(M)); // value-init: zeroed
      Cap = M;
      Used = 0;
      if (B)
        B->chargeBytes(M * sizeof(uint64_t));
    }
    uint64_t *P = Chunks.back().get() + Used;
    Used += N;
    return P;
  }

private:
  std::vector<std::unique_ptr<uint64_t[]>> Chunks;
  size_t Cap = 0, Used = 0;
  Budget *B;
};

//===----------------------------------------------------------------------===//
// Per-shard variable state
//===----------------------------------------------------------------------===//

constexpr uint32_t NoSpill = ~0u;
constexpr uint32_t FlagUsed = 1;
constexpr uint32_t FlagRacy = 2;

/// One variable's detector state, inline in the open-addressing table so
/// the race-free fast path (probe, compare two epochs) touches one cache
/// line. 32 bytes.
struct Slot {
  uint64_t Addr = 0;
  Epoch W = 0;        ///< last-write epoch (0 = never written)
  Epoch R = 0;        ///< exclusive-read epoch (0 = none / spilled)
  uint32_t Spill = 0; ///< read-clock spill index (valid when FlagUsed set
                      ///< it; NoSpill = epochs only)
  uint32_t Flags = 0;
};

struct SpillVC {
  uint64_t *Clk = nullptr;
  uint32_t Len = 0;
};

/// The FastTrack / DJIT+ state machine for the addresses of one shard.
/// Accesses must arrive in log order per address; the caller guarantees
/// this (either the inline scan, or shard routing which preserves it).
class ShardState {
public:
  ShardState(Budget *B, bool Epochs, size_t MaxRaces)
      : Arena(B), B(B), Epochs(Epochs), MaxRaces(MaxRaces) {
    Table.resize(1u << 12);
    Mask = Table.size() - 1;
  }

  void access(uint64_t Addr, bool IsWrite, uint32_t Tid, Epoch E,
              ClockRef C, uint64_t EventIndex) {
    Slot &V = lookup(Addr);
    if (V.Flags & FlagRacy)
      return; // location already reported racy; nothing new to learn
    uint64_t Clk = epochClk(E);
    auto race = [&](uint32_t PrevTid, bool PrevWrite) {
      V.Flags |= FlagRacy;
      ++RacyLocations;
      if (Races.size() < MaxRaces)
        Races.push_back(
            {Addr, EventIndex, Tid, PrevTid, IsWrite, PrevWrite});
    };
    if (!IsWrite) {
      if (Epochs && V.R == E)
        return; // read same epoch: the dominant same-thread fast path
      if (V.W && epochClk(V.W) > C.of(epochTid(V.W)))
        return race(epochTid(V.W), /*PrevWrite=*/true);
      if (!Epochs) {
        // Oracle engine: the read clock is always a full vector.
        SpillVC &S = vcFor(V, Tid + 1);
        S.Clk[Tid] = Clk;
        return;
      }
      if (V.Spill != NoSpill) {
        SpillVC &S = vcFor(V, Tid + 1);
        S.Clk[Tid] = Clk;
        return;
      }
      if (!V.R || epochTid(V.R) == Tid ||
          epochClk(V.R) <= C.of(epochTid(V.R))) {
        // Exclusive read: same thread, or the previous read happens-
        // before this one (replacing it is sound by transitivity — any
        // later access ordered after this read is ordered after the
        // replaced one too).
        V.R = E;
        return;
      }
      // Two concurrent readers: spill to a full read clock (the rare
      // FastTrack promotion).
      ++ReadShares;
      uint32_t U = epochTid(V.R);
      uint64_t UClk = epochClk(V.R);
      V.R = 0;
      SpillVC &S = vcFor(V, std::max(U, Tid) + 1);
      S.Clk[U] = UClk;
      S.Clk[Tid] = Clk;
      return;
    }
    // Write.
    if (Epochs && V.W == E)
      return; // write same epoch: no release by Tid since the last write,
              // so no other thread can have ordered an access after it
    if (V.W && epochClk(V.W) > C.of(epochTid(V.W)))
      return race(epochTid(V.W), /*PrevWrite=*/true);
    if (V.Spill != NoSpill) {
      SpillVC &S = Spills[V.Spill];
      for (uint32_t U = 0; U < S.Len; ++U)
        if (S.Clk[U] > C.of(U))
          return race(U, /*PrevWrite=*/false);
      if (Epochs)
        V.Spill = NoSpill; // reads all ordered: back to epoch mode
      else
        std::fill_n(S.Clk, S.Len, 0); // oracle keeps the vector
    } else if (V.R && epochClk(V.R) > C.of(epochTid(V.R)))
      return race(epochTid(V.R), /*PrevWrite=*/false);
    V.W = E;
    V.R = 0;
  }

  /// Hints the cache that \p Addr's slot is about to be probed. Issued a
  /// few events ahead of access() so the (random-address) table miss
  /// overlaps the decode of the intervening events instead of stalling
  /// the state machine. Purely a hint: a pointer staled by a concurrent
  /// grow() is still safe to prefetch.
  void prefetch(uint64_t Addr) const {
    __builtin_prefetch(&Table[mixAddr(Addr) & Mask], 1, 3);
  }

  std::vector<RaceRecord> Races; ///< first race per location, log order
  uint64_t RacyLocations = 0;
  uint64_t ReadShares = 0;

private:
  Slot &lookup(uint64_t Addr) {
    size_t I = mixAddr(Addr) & Mask;
    for (;;) {
      Slot &V = Table[I];
      if (V.Flags & FlagUsed) {
        if (V.Addr == Addr)
          return V;
      } else {
        if ((Size + 1) * 10 >= Table.size() * 7) {
          grow();
          return lookup(Addr);
        }
        V.Addr = Addr;
        V.Flags = FlagUsed;
        V.Spill = NoSpill;
        ++Size;
        return V;
      }
      I = (I + 1) & Mask;
    }
  }

  void grow() {
    std::vector<Slot> Old(Table.size() * 2);
    Old.swap(Table);
    Mask = Table.size() - 1;
    if (B)
      B->chargeBytes(Table.size() * sizeof(Slot));
    for (Slot &V : Old) {
      if (!(V.Flags & FlagUsed))
        continue;
      size_t I = mixAddr(V.Addr) & Mask;
      while (Table[I].Flags & FlagUsed)
        I = (I + 1) & Mask;
      Table[I] = V;
    }
  }

  /// The read-clock spill of \p V, present and at least \p MinLen long.
  SpillVC &vcFor(Slot &V, uint32_t MinLen) {
    MinLen = (MinLen + 7u) & ~7u; // round up: tids cluster, avoid regrowth
    if (V.Spill == NoSpill) {
      V.Spill = static_cast<uint32_t>(Spills.size());
      Spills.push_back({Arena.alloc(MinLen), MinLen});
      return Spills.back();
    }
    SpillVC &S = Spills[V.Spill];
    if (S.Len < MinLen) {
      uint64_t *N = Arena.alloc(MinLen);
      std::copy_n(S.Clk, S.Len, N);
      S.Clk = N;
      S.Len = MinLen;
    }
    return S;
  }

  std::vector<Slot> Table;
  size_t Mask = 0, Size = 0;
  std::vector<SpillVC> Spills;
  ClockArena Arena;
  Budget *B;
  bool Epochs;
  size_t MaxRaces;
};

//===----------------------------------------------------------------------===//
// Live thread clocks (the sequential synchronisation pass)
//===----------------------------------------------------------------------===//

struct LiveClocks {
  std::vector<std::vector<uint64_t>> C; ///< per-tid vector clocks
  std::vector<Epoch> Cur;               ///< cached current epoch per tid
  uint64_t Threads = 0;

  bool known(uint32_t T) const { return T < C.size() && !C[T].empty(); }

  void ensure(uint32_t T) {
    if (known(T))
      return;
    if (T >= C.size()) {
      C.resize(T + 1);
      Cur.resize(T + 1, 0);
    }
    C[T].resize(T + 1, 0);
    C[T][T] = 1;
    Cur[T] = mkEpoch(T, 1);
    ++Threads;
  }

  void tick(uint32_t T) {
    uint64_t Clk = ++C[T][T];
    Cur[T] = mkEpoch(T, Clk);
  }

  ClockRef ref(uint32_t T) const { return {C[T].data(), C[T].size()}; }

  /// Dst |_|= Src. Returns true when Dst changed.
  static bool joinInto(std::vector<uint64_t> &Dst,
                       const std::vector<uint64_t> &Src) {
    if (Src.size() > Dst.size())
      Dst.resize(Src.size(), 0);
    bool Changed = false;
    for (size_t I = 0; I < Src.size(); ++I)
      if (Src[I] > Dst[I]) {
        Dst[I] = Src[I];
        Changed = true;
      }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// The scan pipeline
//===----------------------------------------------------------------------===//

unsigned normalisedShards(unsigned Requested) {
  unsigned N = std::clamp(Requested, 1u, 64u);
  unsigned P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

/// An access routed to its shard: everything the per-shard state machine
/// needs, with the issuing thread's clock referenced by interned snapshot
/// id (clocks only change at synchronisation events, so one snapshot
/// covers a whole run of accesses).
struct Routed {
  uint64_t Addr;
  Epoch E;
  uint64_t EventIndex;
  uint32_t Snap;
  uint8_t IsWrite;
};

RaceLogReport scanImpl(std::string_view Bytes, const RaceLogOptions &O) {
  RaceLogReport Rep;
  BlockCursor Cur(Bytes);
  if (!Cur.ok()) {
    Rep.FormatOk = false;
    Rep.FormatError = Cur.error();
    return Rep;
  }

  const unsigned NShards = normalisedShards(O.Shards);
  const bool Inline = NShards == 1;
  const bool Pooled = !Inline && O.Workers != 1;
  const unsigned ShardShift = 64 - __builtin_ctz(NShards);

  Budget *B = O.Shared;
  Budget::Scope Charge(B);

  LiveClocks TC;
  std::unordered_map<uint64_t, std::vector<uint64_t>> Locks;

  std::vector<std::unique_ptr<ShardState>> Shards;
  Shards.reserve(NShards);
  for (unsigned I = 0; I < NShards; ++I)
    Shards.push_back(
        std::make_unique<ShardState>(B, O.Epochs, O.MaxRaces));

  // Sharded-mode machinery: clock snapshots interned once per sync step
  // (lock-free lookups from the shard tasks), per-shard routed queues,
  // and a window barrier bounding their memory.
  InternPool Snaps(0, B);
  std::vector<uint32_t> SnapId; // per tid; ~0u = stale
  std::vector<std::vector<Routed>> Queues(NShards);
  size_t WindowFill = 0;
  const size_t Window = std::max<size_t>(O.WindowEvents, 1024);

  auto invalidate = [&](uint32_t T) {
    if (T < SnapId.size())
      SnapId[T] = ~0u;
  };
  auto snapOf = [&](uint32_t T) {
    if (T >= SnapId.size())
      SnapId.resize(T + 1, ~0u);
    if (SnapId[T] == ~0u)
      SnapId[T] = Snaps.intern(TC.C[T].data(), TC.C[T].size()).Id;
    return SnapId[T];
  };
  auto flushWindow = [&] {
    auto runShard = [&](unsigned S) {
      ShardState &St = *Shards[S];
      const std::vector<Routed> &Q = Queues[S];
      for (size_t I = 0; I != Q.size(); ++I) {
        if (I + 8 < Q.size())
          St.prefetch(Q[I + 8].Addr);
        const Routed &R = Q[I];
        auto [Ptr, Len] = Snaps.view(R.Snap);
        St.access(R.Addr, R.IsWrite != 0, epochTid(R.E), R.E,
                  ClockRef{Ptr, Len}, R.EventIndex);
      }
      Queues[S].clear();
    };
    if (!Pooled) {
      for (unsigned S = 0; S < NShards; ++S)
        runShard(S);
    } else {
      ThreadPool::TaskGroup G(ThreadPool::shared());
      for (unsigned S = 0; S < NShards; ++S)
        G.spawn([&runShard, S] { runShard(S); });
      G.wait();
      if (std::exception_ptr E = G.takeException())
        std::rethrow_exception(E);
    }
    WindowFill = 0;
  };

  uint64_t EventIndex = 0;
  bool Stop = false;
  // How far ahead of the state machine slot lines are prefetched. Eight
  // records (~300ns of decode work at current speeds) is enough to hide
  // an L3 miss without evicting lines before they are used.
  constexpr size_t PrefetchDist = 8 * EventRecordSize;
  for (std::string_view P = Cur.nextPayload(); !P.empty() && !Stop;
       P = Cur.nextPayload()) {
    // The injectable failure point of the detect loop: probed once per
    // block, so hit counters replay exactly from (plan, log).
    faultThrowInjected(FaultSite::RaceDetect);
    const char *Ptr = P.data();
    const char *End = Ptr + P.size();
    // Validate every record up front: a CRC-valid block containing a
    // record this reader does not understand is dropped *whole*, together
    // with everything after it — the same block-granularity valid-prefix
    // rule decodeLog applies (clock updates cannot be unwound, so
    // validation must precede application). decodeEvent is inline and the
    // decoded fields are dead here, so this pass compiles down to just
    // the validity checks over the (cache-hot) payload.
    bool BlockOk = true;
    for (const char *V = Ptr; V != End; V += EventRecordSize) {
      LogEvent E;
      if (!decodeEvent(V, E)) {
        BlockOk = false;
        break;
      }
    }
    if (!BlockOk) {
      Rep.Stats.TornTail = true;
      Rep.Stats.DroppedBytes = static_cast<uint64_t>(
          Bytes.data() + Bytes.size() - Ptr + BlockHeaderSize);
      break;
    }
    ++Rep.Stats.Blocks;
    Rep.Stats.PayloadBytes += P.size();
    for (; Ptr != End; Ptr += EventRecordSize) {
      LogEvent E;
      decodeEvent(Ptr, E);
      if (Inline && End - Ptr > static_cast<ptrdiff_t>(PrefetchDist)) {
        // Peek at the raw record a few slots ahead (the payload is
        // already validated) and warm its table line.
        const char *F = Ptr + PrefetchDist;
        if (static_cast<uint8_t>(F[0]) <= static_cast<uint8_t>(Op::Write)) {
          uint64_t A;
          __builtin_memcpy(&A, F + 8, 8);
          Shards[0]->prefetch(A);
        }
      }
      if (!Charge.charge()) {
        Rep.Stats.Truncated = true;
        Rep.Stats.Reason = B ? B->reason() : TruncationReason::StateCap;
        Stop = true;
        break;
      }
      ++Rep.Stats.Events;
      uint64_t Idx = EventIndex++;
      switch (E.Kind) {
      case Op::Read:
      case Op::Write: {
        if (!TC.known(E.Tid))
          TC.ensure(E.Tid);
        bool W = E.Kind == Op::Write;
        if (Inline) {
          Shards[0]->access(E.Addr, W, E.Tid, TC.Cur[E.Tid],
                            TC.ref(E.Tid), Idx);
        } else {
          uint32_t S = snapOf(E.Tid);
          unsigned Sh =
              static_cast<unsigned>(mixAddr(E.Addr) >> ShardShift);
          Queues[Sh].push_back(
              {E.Addr, TC.Cur[E.Tid], Idx, S, W ? uint8_t(1) : uint8_t(0)});
          if (++WindowFill >= Window)
            flushWindow();
        }
        break;
      }
      case Op::Acquire: {
        TC.ensure(E.Tid);
        auto It = Locks.find(E.Addr);
        if (It != Locks.end() &&
            LiveClocks::joinInto(TC.C[E.Tid], It->second))
          invalidate(E.Tid);
        break;
      }
      case Op::Release: {
        TC.ensure(E.Tid);
        // Join (not overwrite): this repo's §3 happens-before relates
        // *any* earlier release to a later acquire of the same lock id —
        // volatile accesses are modelled as lock ids too, with no mutual
        // exclusion — so the lock clock accumulates every releaser.
        // Equivalent to the classic overwrite for well-nested monitors.
        LiveClocks::joinInto(Locks[E.Addr], TC.C[E.Tid]);
        TC.tick(E.Tid);
        invalidate(E.Tid);
        break;
      }
      case Op::Fork: {
        TC.ensure(E.Tid);
        TC.ensure(E.Target);
        if (LiveClocks::joinInto(TC.C[E.Target], TC.C[E.Tid]))
          invalidate(E.Target);
        TC.tick(E.Tid);
        invalidate(E.Tid);
        break;
      }
      case Op::Join: {
        TC.ensure(E.Tid);
        TC.ensure(E.Target);
        if (LiveClocks::joinInto(TC.C[E.Tid], TC.C[E.Target]))
          invalidate(E.Tid);
        TC.tick(E.Target);
        invalidate(E.Target);
        break;
      }
      }
    }
  }
  if (!Inline)
    flushWindow();
  Charge.settle();

  if (Cur.tornTail()) {
    Rep.Stats.TornTail = true;
    Rep.Stats.DroppedBytes = Cur.droppedBytes();
  }
  Rep.Stats.Threads = TC.Threads;

  std::vector<RaceRecord> All;
  for (auto &S : Shards) {
    All.insert(All.end(), S->Races.begin(), S->Races.end());
    Rep.Stats.RacyLocations += S->RacyLocations;
    Rep.Stats.ReadShares += S->ReadShares;
  }
  std::sort(All.begin(), All.end(),
            [](const RaceRecord &A, const RaceRecord &B) {
              return A.EventIndex < B.EventIndex;
            });
  if (All.size() > O.MaxRaces)
    All.resize(O.MaxRaces);
  Rep.Races = std::move(All);
  return Rep;
}

} // namespace

RaceLogReport racelog::scanRaceLog(std::string_view LogBytes,
                                   const RaceLogOptions &Options) {
  try {
    return scanImpl(LogBytes, Options);
  } catch (...) {
    // Containment: a faulting scan (injected or genuine) is an Unknown
    // query, never a crash and never a fabricated verdict.
    if (Options.Shared)
      Options.Shared->poison(TruncationReason::EngineFault);
    RaceLogReport Rep;
    Rep.Stats.Truncated = true;
    Rep.Stats.Reason = TruncationReason::EngineFault;
    return Rep;
  }
}

std::string RaceLogReport::str() const {
  if (!FormatOk)
    return "bad-log: " + FormatError;
  std::string Out;
  if (Races.empty()) {
    Out = Stats.Truncated ? "undecided" : "race-free";
  } else {
    char Buf[128];
    const RaceRecord &F = Races.front();
    std::snprintf(Buf, sizeof(Buf),
                  "races: locations=%llu first=[addr=0x%llx event=%llu "
                  "%s(t%u) vs %s(t%u)]",
                  static_cast<unsigned long long>(Stats.RacyLocations),
                  static_cast<unsigned long long>(F.Addr),
                  static_cast<unsigned long long>(F.EventIndex),
                  F.PrevWrite ? "write" : "read", F.PrevTid,
                  F.Write ? "write" : "read", F.Tid);
    Out = Buf;
  }
  Out += " events=" + std::to_string(Stats.Events) +
         " threads=" + std::to_string(Stats.Threads);
  if (Stats.TornTail)
    Out += " torn-tail dropped=" + std::to_string(Stats.DroppedBytes);
  if (Stats.Truncated)
    Out += std::string(" truncated=") + truncationReasonName(Stats.Reason);
  return Out;
}
