//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic TSRL workloads for benchmarks, tests and the
/// racelog_scan demo mode.
///
/// Three mixes, all seeded (same options -> byte-identical log):
///  - race-free: every thread owns a private address range and accesses it
///    in runs — the epoch engine's same-epoch fast path dominates, which
///    is what the single-thread MB/s headline measures.
///  - mixed: cross-thread traffic. Most bursts are properly lock-protected
///    accesses to shared addresses (race-free but forcing clock joins and
///    cross-thread read hand-offs — the oracle engine pays an O(threads)
///    read-clock scan per write here, the epoch engine does not), plus a
///    small unprotected pool that genuinely races.
///  - lock-heavy: short bursts, each bracketed by acquire/release on one
///    of many locks; synchronisation-dominated and race-free.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_RACELOG_SYNTH_H
#define TRACESAFE_RACELOG_SYNTH_H

#include <cstdint>
#include <string>

namespace tracesafe {
namespace racelog {

struct SynthOptions {
  uint64_t Events = 1 << 20; ///< approximate; generators round to bursts
  uint32_t Threads = 8;      ///< clamped to [1, MaxTids)
  uint32_t Locations = 1u << 14; ///< distinct data addresses (per scope)
  uint64_t Seed = 1;
};

/// Private-ownership mix: race-free by address disjointness, no locks.
std::string makeRaceFreeLog(const SynthOptions &O);

/// Shared mix: ~90% lock-protected cross-thread bursts + ~10% unprotected
/// bursts over a small racy pool. Contains real races.
std::string makeMixedLog(const SynthOptions &O);

/// Lock-bracketed mix: every access protected, ~half of all events are
/// acquire/release. Race-free.
std::string makeLockHeavyLog(const SynthOptions &O);

} // namespace racelog
} // namespace tracesafe

#endif // TRACESAFE_RACELOG_SYNTH_H
