//===----------------------------------------------------------------------===//
///
/// \file
/// Bridge between the enumerative trace world (trace/) and the streaming
/// detector: turn an Interleaving into a TSRL event log, and compute the
/// ground-truth races of that interleaving straight from the §3
/// happens-before order (trace/HappensBefore.h).
///
/// The mapping follows the paper's synchronisation terminology: a lock of
/// monitor m is an Acquire of lock id 2m, an unlock a Release of 2m; a
/// volatile read of location l is an Acquire of lock id 2l+1, a volatile
/// write a Release of 2l+1 (volatiles synchronise like locks but have no
/// conflicting data accesses, exactly as isReleaseAcquirePair /
/// conflictsWith define). Normal reads/writes map to data events at the
/// location id; Start and External actions have no log representation.
/// There are no fork/join events — the paper's threads are static and its
/// happens-before has no thread-creation edges.
///
/// With that mapping, the detector's happens-before over the log is
/// *exactly* the paper's happens-before over the interleaving, so the
/// differential test (tests/test_racelog_differential.cpp) asserts strict
/// equality: same racy locations, same first racing event per location.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_RACELOG_DIFFERENTIAL_H
#define TRACESAFE_RACELOG_DIFFERENTIAL_H

#include "racelog/Log.h"
#include "support/Symbol.h"

#include <string>
#include <vector>

namespace tracesafe {

class Interleaving;

namespace racelog {

/// Address mapping (shared with tests so assertions use the same terms).
inline uint64_t dataAddr(SymbolId Loc) { return Loc; }
inline uint64_t monitorLockId(SymbolId Mon) {
  return static_cast<uint64_t>(Mon) << 1;
}
inline uint64_t volatileLockId(SymbolId Loc) {
  return (static_cast<uint64_t>(Loc) << 1) | 1;
}

/// Ground truth for one racy location: the log index of the earliest
/// access that is unordered with some prior conflicting access — the same
/// "first race per location" the streaming detector reports.
struct ExpectedRace {
  uint64_t Addr = 0;
  uint64_t EventIndex = 0;

  friend bool operator==(const ExpectedRace &, const ExpectedRace &) =
      default;
};

struct DifferentialCase {
  std::string Log;      ///< TSRL image of the interleaving
  uint64_t Events = 0;  ///< log events emitted (actions minus Start/External)
  /// Expected races per the enumerative HappensBefore, sorted by
  /// EventIndex (one entry per racy location).
  std::vector<ExpectedRace> Races;
};

/// Encodes \p I as a log and computes its expected races from
/// trace/HappensBefore. \p EventsPerBlock is forwarded to the writer
/// (small values exercise multi-block logs in tests).
DifferentialCase makeDifferentialCase(const Interleaving &I,
                                      size_t EventsPerBlock =
                                          DefaultEventsPerBlock);

} // namespace racelog
} // namespace tracesafe

#endif // TRACESAFE_RACELOG_DIFFERENTIAL_H
