//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic reordering transformation (§4) as a decision procedure.
///
/// A bijection f on dom(t') is a *reordering function* for t' if for all
/// i < j, f(j) < f(i) implies t'_j is reorderable with t'_i. The
/// de-permutation of length n, f.<n(t'), takes the first n elements of t'
/// and lists them in the order of their f-images (the paper's "apply the
/// permutation to a prefix of t', leaving out from t what is not in the
/// prefix"). f de-permutes t' into a set of traces T if it is a reordering
/// function for t' and f.<n(t') is in T for *every* n — the per-prefix
/// condition is what licenses roach-motel reorderings.
///
/// T' is a reordering of T iff every trace of T' has a de-permuting
/// function into T. The checker backtracks over target positions in source
/// order, pruning with the pairwise reorderability constraint and the
/// prefix-membership condition (which only depends on the assigned prefix).
///
/// checkEliminationThenReordering combines the two transformations exactly
/// as the paper's syntactic reordering lemma (Lemma 5) requires: membership
/// in the intermediate set T-bar is answered by the elimination-witness
/// oracle.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SEMANTICS_REORDERING_H
#define TRACESAFE_SEMANTICS_REORDERING_H

#include "semantics/Elimination.h"
#include "support/Permutation.h"
#include "trace/Traceset.h"

#include <functional>
#include <optional>

namespace tracesafe {

/// True iff \p F (a bijection on dom(T)) satisfies the pairwise
/// reorderability constraint for \p T.
bool isReorderingFunction(const Trace &T, const Permutation &F);

/// f.<n(t'): the first \p N elements of \p TPrime arranged by their
/// f-images. N defaults to the whole trace.
Trace depermutePrefix(const Trace &TPrime, const Permutation &F, size_t N);
Trace depermute(const Trace &TPrime, const Permutation &F);

/// Bounds for the de-permutation search.
struct ReorderingSearchLimits {
  uint64_t MaxNodesPerTrace = 5'000'000;
};

/// Searches for a function de-permuting \p TPrime into the trace set given
/// by the membership oracle \p Contains. Sets \p *Truncated on limit hits.
std::optional<Permutation>
findDepermutation(const Trace &TPrime,
                  const std::function<bool(const Trace &)> &Contains,
                  const ReorderingSearchLimits &Limits = {},
                  bool *Truncated = nullptr);

/// §4: is \p Transformed a reordering of \p Orig?
TransformCheckResult
checkReordering(const Traceset &Orig, const Traceset &Transformed,
                const ReorderingSearchLimits &Limits = {});

/// Lemma 5 shape: is \p Transformed a reordering of some elimination of
/// \p Orig? Membership in the intermediate set is decided by
/// findEliminationWitness (memoised per queried trace).
TransformCheckResult checkEliminationThenReordering(
    const Traceset &Orig, const Traceset &Transformed,
    const EliminationSearchLimits &ElimLimits = {},
    const ReorderingSearchLimits &ReorderLimits = {});

} // namespace tracesafe

#endif // TRACESAFE_SEMANTICS_REORDERING_H
