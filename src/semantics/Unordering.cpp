#include "semantics/Unordering.h"

#include "semantics/Reorderable.h"
#include "semantics/Reordering.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace tracesafe;

namespace {

/// Positions of thread \p Tid in \p I, in order.
std::vector<size_t> threadPositions(const Interleaving &I, ThreadId Tid) {
  std::vector<size_t> Out;
  for (size_t K = 0; K < I.size(); ++K)
    if (I[K].Tid == Tid)
      Out.push_back(K);
  return Out;
}

bool isSyncOrExternal(const Action &A) {
  return A.isSynchronisation() || A.isExternal();
}

/// Extracts the thread-internal permutation induced by the global matching
/// \p F on the positions \p Pos of one thread: internal source k maps to
/// the rank of F[Pos[k]] among the F-images of the thread.
Permutation restrictToThread(const std::vector<size_t> &F,
                             const std::vector<size_t> &Pos) {
  std::vector<std::pair<size_t, size_t>> Images; // (global target, k)
  for (size_t K = 0; K < Pos.size(); ++K)
    Images.emplace_back(F[Pos[K]], K);
  std::sort(Images.begin(), Images.end());
  Permutation FThread(Pos.size());
  for (size_t Rank = 0; Rank < Images.size(); ++Rank)
    FThread[Images[Rank].second] = Rank;
  return FThread;
}

} // namespace

bool tracesafe::isUnorderingFunction(
    const Interleaving &IPrime, const std::vector<size_t> &F,
    const std::function<bool(const Trace &)> &Contains) {
  if (F.size() != IPrime.size() || !isPermutation(F))
    return false;
  for (size_t I = 0; I < F.size(); ++I)
    for (size_t J = I + 1; J < F.size(); ++J) {
      // (i) same-thread pairs that are not reorderable keep their order.
      if (IPrime[I].Tid == IPrime[J].Tid &&
          !reorderableWith(IPrime[J].Act, IPrime[I].Act) && F[I] >= F[J])
        return false;
      // (ii) synchronisation/external actions keep their order.
      if (isSyncOrExternal(IPrime[I].Act) && isSyncOrExternal(IPrime[J].Act) &&
          F[I] >= F[J])
        return false;
    }
  // (iii) each thread's restriction de-permutes its trace into T.
  for (ThreadId Tid : IPrime.threads()) {
    std::vector<size_t> Pos = threadPositions(IPrime, Tid);
    Trace TPrime = IPrime.traceOf(Tid);
    Permutation FThread = restrictToThread(F, Pos);
    if (!isReorderingFunction(TPrime, FThread))
      return false;
    for (size_t N = 0; N <= TPrime.size(); ++N)
      if (!Contains(depermutePrefix(TPrime, FThread, N)))
        return false;
  }
  return true;
}

Interleaving tracesafe::applyUnordering(const Interleaving &IPrime,
                                        const std::vector<size_t> &F) {
  assert(F.size() == IPrime.size() && isPermutation(F) &&
         "unordering must be a bijection");
  std::vector<Event> Out(IPrime.size(), Event{0, Action::mkStart(0)});
  for (size_t I = 0; I < F.size(); ++I)
    Out[F[I]] = IPrime[I];
  return Interleaving(std::move(Out));
}

UnorderingResult tracesafe::findUnordering(
    const Interleaving &IPrime,
    const std::function<bool(const Trace &)> &Contains,
    const ReorderingSearchLimits &Limits) {
  UnorderingResult Result;

  // Step 1: per-thread de-permutations.
  struct ThreadPlan {
    ThreadId Tid;
    std::vector<size_t> Pos;  ///< I' positions.
    Trace TPrime;             ///< Thread trace in I'.
    Permutation F;            ///< De-permutation of TPrime.
    Trace Depermuted;         ///< depermute(TPrime, F).
    std::vector<size_t> SourceAt; ///< SourceAt[q] = internal source of slot q.
  };
  std::vector<ThreadPlan> Plans;
  for (ThreadId Tid : IPrime.threads()) {
    ThreadPlan Plan;
    Plan.Tid = Tid;
    Plan.Pos = threadPositions(IPrime, Tid);
    Plan.TPrime = IPrime.traceOf(Tid);
    bool Truncated = false;
    std::optional<Permutation> F =
        findDepermutation(Plan.TPrime, Contains, Limits, &Truncated);
    if (!F) {
      Result.Verdict = Truncated ? CheckVerdict::Unknown : CheckVerdict::Fails;
      return Result;
    }
    Plan.F = *F;
    Plan.Depermuted = depermute(Plan.TPrime, Plan.F);
    Plan.SourceAt = invertPermutation(Plan.F);
    Plans.push_back(std::move(Plan));
  }

  // Step 2: greedy merge of the de-permuted thread traces, emitting
  // synchronisation/external actions in their I' order. Per-thread
  // de-permutations never invert two sync/external actions (nothing is
  // reorderable with them in the required direction), so the globally
  // next one is always some thread's earliest remaining sync action and
  // the merge cannot deadlock.
  std::vector<size_t> SyncOrder; // I' positions of sync/ext, in order.
  for (size_t K = 0; K < IPrime.size(); ++K)
    if (isSyncOrExternal(IPrime[K].Act))
      SyncOrder.push_back(K);

  std::vector<size_t> Next(Plans.size(), 0); // Cursor into Depermuted.
  std::vector<size_t> F(IPrime.size(), 0);
  size_t Emitted = 0, SyncEmitted = 0;
  while (Emitted < IPrime.size()) {
    bool Progress = false;
    for (size_t P = 0; P < Plans.size() && !Progress; ++P) {
      ThreadPlan &Plan = Plans[P];
      if (Next[P] == Plan.Depermuted.size())
        continue;
      size_t Slot = Next[P];
      size_t InternalSource = Plan.SourceAt[Slot];
      size_t GlobalSource = Plan.Pos[InternalSource];
      const Action &A = Plan.Depermuted[Slot];
      if (isSyncOrExternal(A)) {
        if (SyncEmitted >= SyncOrder.size() ||
            SyncOrder[SyncEmitted] != GlobalSource)
          continue; // Not globally next yet.
        ++SyncEmitted;
      }
      F[GlobalSource] = Emitted++;
      ++Next[P];
      Progress = true;
    }
    if (!Progress) {
      // Should be impossible (see the merge argument above); report
      // honestly rather than asserting in release builds.
      Result.Verdict = CheckVerdict::Fails;
      return Result;
    }
  }

  if (!isUnorderingFunction(IPrime, F, Contains)) {
    Result.Verdict = CheckVerdict::Fails;
    return Result;
  }
  Result.Verdict = CheckVerdict::Holds;
  Result.F = std::move(F);
  return Result;
}
