#include "semantics/Elimination.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace tracesafe;

std::string tracesafe::checkVerdictName(CheckVerdict V) {
  switch (V) {
  case CheckVerdict::Holds:
    return "holds";
  case CheckVerdict::Fails:
    return "fails";
  case CheckVerdict::Unknown:
    return "unknown";
  }
  return "<invalid>";
}

bool tracesafe::isEliminationOfTrace(const Trace &T, const Trace &TPrime,
                                     bool ProperOnly) {
  size_t N = T.size(), M = TPrime.size();
  if (M > N)
    return false;
  std::vector<char> Elim(N);
  for (size_t I = 0; I < N; ++I)
    Elim[I] = ProperOnly ? isProperlyEliminable(T, I) : isEliminable(T, I);
  // Can[i][j]: T[i..) can produce TPrime[j..) by keeping matches and
  // dropping eliminable indices. Filled back to front.
  std::vector<std::vector<char>> Can(N + 1, std::vector<char>(M + 1, 0));
  Can[N][M] = 1;
  for (size_t I = N; I-- > 0;) {
    // j == M: the remaining suffix must be entirely eliminable.
    Can[I][M] = Elim[I] && Can[I + 1][M];
    for (size_t J = M; J-- > 0;) {
      bool Keep = T[I] == TPrime[J] && Can[I + 1][J + 1];
      bool Drop = Elim[I] && Can[I + 1][J];
      Can[I][J] = Keep || Drop;
    }
  }
  return Can[0][0];
}

namespace {

/// Backtracking search for an elimination witness (see header).
class WitnessSearch {
public:
  WitnessSearch(const Traceset &Orig, const Trace &TPrime,
                const EliminationSearchLimits &Limits, bool ProperOnly)
      : Orig(Orig), TPrime(TPrime), Limits(Limits), ProperOnly(ProperOnly) {
    Instances.push_back(Trace());
  }

  std::optional<Trace> run(bool *Truncated, std::vector<size_t> *DroppedOut) {
    bool Found = dfs(0, 0);
    if (Truncated)
      *Truncated = Hit;
    if (!Found)
      return std::nullopt;
    if (DroppedOut) {
      *DroppedOut = Dropped;
      std::sort(DroppedOut->begin(), DroppedOut->end());
    }
    return Witness;
  }

private:
  /// A dropped (inserted) action is worth trying only if some Definition-1
  /// case could ever justify it. Acquires (locks, volatile reads) and start
  /// actions are never eliminable.
  bool possiblyEliminableKind(const Action &A) const {
    if (A.isStart() || A.isLock())
      return false;
    if (A.isRead() && A.isVolatileAccess())
      return false;
    if (ProperOnly && (A.isUnlock() || A.isExternal() ||
                       (A.isWrite() && A.isVolatileAccess())))
      return false; // Cases 6-8 are excluded; releases/externals need them.
    return true;
  }

  /// Actions that extend *every* current instance inside Orig.
  std::vector<Action> commonSuccessors() const {
    std::vector<Action> Common = Orig.successors(Instances[0]);
    for (size_t K = 1; K < Instances.size() && !Common.empty(); ++K) {
      std::vector<Action> Next = Orig.successors(Instances[K]);
      std::vector<Action> Merged;
      std::set_intersection(Common.begin(), Common.end(), Next.begin(),
                            Next.end(), std::back_inserter(Merged));
      Common = std::move(Merged);
    }
    return Common;
  }

  /// Extends every instance with \p A (concrete) or with all domain values
  /// (wildcard read). Returns false if some extension leaves Orig or the
  /// instance cap is hit.
  bool pushAction(const Action &A) {
    std::vector<Trace> Next;
    for (const Trace &Inst : Instances) {
      if (A.isWildcard()) {
        for (Value V : Orig.domain()) {
          Trace E = Inst;
          E.push_back(A.instantiate(V));
          if (!Orig.contains(E))
            return false;
          Next.push_back(std::move(E));
        }
      } else {
        Trace E = Inst;
        E.push_back(A);
        if (!Orig.contains(E))
          return false;
        Next.push_back(std::move(E));
      }
    }
    if (Next.size() > Limits.MaxInstances) {
      Hit = true;
      return false;
    }
    InstanceStack.push_back(std::move(Instances));
    Instances = std::move(Next);
    Witness.push_back(A);
    return true;
  }

  void popAction() {
    Witness.pop_back();
    Instances = std::move(InstanceStack.back());
    InstanceStack.pop_back();
  }

  /// All dropped indices eliminable in the final witness?
  bool droppedAllEliminable(const std::vector<size_t> &Dropped) const {
    for (size_t I : Dropped) {
      bool Ok = ProperOnly ? isProperlyEliminable(Witness, I)
                           : isEliminable(Witness, I);
      if (!Ok)
        return false;
    }
    return true;
  }

  bool dfs(size_t J, size_t Extra) {
    if (++Nodes > Limits.MaxNodesPerTrace) {
      Hit = true;
      return false;
    }
    if (J == TPrime.size() && droppedAllEliminable(Dropped))
      return true;
    // Move 1: keep the next action of TPrime.
    if (J < TPrime.size() && pushAction(TPrime[J])) {
      if (dfs(J + 1, Extra))
        return true;
      popAction();
    }
    // Move 2: insert an action to be eliminated.
    if (Extra >= Limits.MaxExtra)
      return false;
    std::vector<Action> Cands = commonSuccessors();
    // Wildcard-read candidates: a location all of whose domain reads are
    // common successors.
    std::vector<Action> Wild;
    for (const Action &A : Cands) {
      if (!A.isRead() || A.isVolatileAccess())
        continue;
      size_t Count = 0;
      for (const Action &B : Cands)
        if (B.isRead() && !B.isVolatileAccess() &&
            B.location() == A.location())
          ++Count;
      if (Count == Orig.domain().size()) {
        Action W = Action::mkWildcardRead(A.location());
        if (std::find(Wild.begin(), Wild.end(), W) == Wild.end())
          Wild.push_back(W);
      }
    }
    // Prefer wildcard inserts (more general; they subsume the concrete
    // irrelevant-read case), then concrete ones.
    for (const Action &W : Wild) {
      if (!pushAction(W))
        continue;
      Dropped.push_back(Witness.size() - 1);
      if (dfs(J, Extra + 1))
        return true;
      Dropped.pop_back();
      popAction();
    }
    for (const Action &A : Cands) {
      if (!possiblyEliminableKind(A))
        continue;
      if (!pushAction(A))
        continue;
      Dropped.push_back(Witness.size() - 1);
      if (dfs(J, Extra + 1))
        return true;
      Dropped.pop_back();
      popAction();
    }
    return false;
  }

  const Traceset &Orig;
  const Trace &TPrime;
  EliminationSearchLimits Limits;
  bool ProperOnly;

  Trace Witness;
  std::vector<size_t> Dropped;
  std::vector<Trace> Instances;
  std::vector<std::vector<Trace>> InstanceStack;
  uint64_t Nodes = 0;
  bool Hit = false;
};

} // namespace

std::optional<Trace> tracesafe::findEliminationWitness(
    const Traceset &Orig, const Trace &TPrime,
    const EliminationSearchLimits &Limits, bool *Truncated, bool ProperOnly,
    std::vector<size_t> *DroppedOut) {
  WitnessSearch S(Orig, TPrime, Limits, ProperOnly);
  bool Hit = false;
  std::optional<Trace> W = S.run(&Hit, DroppedOut);
  // The witness must belong-to Orig, so its length is bounded by the
  // longest trace in Orig; the insertion budget therefore makes the search
  // complete iff it covers maxTraceLength - |t'|. A failed search under a
  // smaller budget is inconclusive, not a refutation.
  if (!W && !Hit &&
      Limits.MaxExtra + TPrime.size() < Orig.maxTraceLength())
    Hit = true;
  if (Truncated)
    *Truncated = Hit;
  return W;
}

TransformCheckResult
tracesafe::checkElimination(const Traceset &Orig, const Traceset &Transformed,
                            const EliminationSearchLimits &Limits,
                            bool ProperOnly) {
  TransformCheckResult Result;
  for (const Trace &TPrime : Transformed.traces()) {
    ++Result.TracesChecked;
    bool Truncated = false;
    std::optional<Trace> W =
        findEliminationWitness(Orig, TPrime, Limits, &Truncated, ProperOnly);
    if (W)
      continue;
    Result.Verdict = Truncated ? CheckVerdict::Unknown : CheckVerdict::Fails;
    Result.Counterexample = TPrime;
    return Result;
  }
  return Result;
}
