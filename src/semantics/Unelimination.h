//===----------------------------------------------------------------------===//
///
/// \file
/// The unelimination construction of Lemma 1 (§5, Fig 5).
///
/// Given an execution I' of an eliminated traceset T', Lemma 1 asserts the
/// existence of a wildcard interleaving I belonging-to the original traceset
/// T and an *unelimination function* f: a complete matching from I' to I
/// such that
///   (i)   f preserves the program order of each thread,
///   (ii)  f preserves the relative order of synchronisation and external
///         actions of I',
///   (iii) every synchronisation or external action *introduced* by the
///         unelimination (an index of I outside rng(f)) comes after all
///         images of I' synchronisation/external actions, and
///   (iv)  every introduced index is eliminable in I.
///
/// We implement the lemma as a search: per-thread elimination witnesses are
/// obtained from the elimination checker, then a backtracking interleaver
/// looks for a linearisation satisfying (i)-(iii) plus the interleaving
/// well-formedness conditions (mutual exclusion, entry points). Condition
/// (iv) holds by construction of the witnesses.
///
/// The paper's follow-up property — the instance of any unelimination of a
/// race-free-prefixed execution is itself an execution of T with the same
/// behaviour — is what the tests and the E7 bench check on top of this.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SEMANTICS_UNELIMINATION_H
#define TRACESAFE_SEMANTICS_UNELIMINATION_H

#include "semantics/Elimination.h"
#include "trace/Interleaving.h"

#include <optional>

namespace tracesafe {

/// Result of an unelimination search.
struct UneliminationResult {
  /// Verdict: Holds = unelimination found; Fails = provably none under the
  /// given witnesses; Unknown = search truncated.
  CheckVerdict Verdict = CheckVerdict::Fails;
  /// The uneliminated wildcard interleaving I.
  Interleaving I;
  /// The unelimination function: F[i] = index in I of the image of I'_i.
  std::vector<size_t> F;
};

/// Searches for an unelimination of \p IPrime (an execution of an
/// elimination of \p Orig) into \p Orig.
UneliminationResult
findUnelimination(const Traceset &Orig, const Interleaving &IPrime,
                  const EliminationSearchLimits &Limits = {});

/// Checks that \p F is an unelimination function from \p IPrime to \p I
/// (conditions (i)-(iv) above plus the matching property).
bool isUneliminationFunction(const Interleaving &IPrime, const Interleaving &I,
                             const std::vector<size_t> &F);

} // namespace tracesafe

#endif // TRACESAFE_SEMANTICS_UNELIMINATION_H
