#include "semantics/Unelimination.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace tracesafe;

bool tracesafe::isUneliminationFunction(const Interleaving &IPrime,
                                        const Interleaving &I,
                                        const std::vector<size_t> &F) {
  if (F.size() != IPrime.size())
    return false;
  std::vector<bool> InRange(I.size(), false);
  for (size_t K = 0; K < F.size(); ++K) {
    if (F[K] >= I.size() || InRange[F[K]])
      return false; // Not injective into dom(I).
    InRange[F[K]] = true;
    // Matching: I'_k = I_{F[k]} (thread and action).
    if (IPrime[K].Tid != I[F[K]].Tid || IPrime[K].Act != I[F[K]].Act)
      return false;
  }
  for (size_t A = 0; A < F.size(); ++A)
    for (size_t B = A + 1; B < F.size(); ++B) {
      // (i) program order per thread.
      if (IPrime[A].Tid == IPrime[B].Tid && F[A] >= F[B])
        return false;
      // (ii) synchronisation/external order.
      bool SyncA = IPrime[A].Act.isSynchronisation() ||
                   IPrime[A].Act.isExternal();
      bool SyncB = IPrime[B].Act.isSynchronisation() ||
                   IPrime[B].Act.isExternal();
      if (SyncA && SyncB && F[A] >= F[B])
        return false;
    }
  // (iii) introduced sync/external after all image sync/external.
  for (size_t J = 0; J < I.size(); ++J) {
    if (InRange[J])
      continue;
    if (!I[J].Act.isSynchronisation() && !I[J].Act.isExternal())
      continue;
    for (size_t K = 0; K < F.size(); ++K) {
      bool SyncK = IPrime[K].Act.isSynchronisation() ||
                   IPrime[K].Act.isExternal();
      if (SyncK && F[K] > J)
        return false;
    }
  }
  // (iv) introduced indices eliminable in their thread's trace of I.
  std::map<ThreadId, Trace> Traces;
  std::map<ThreadId, std::vector<size_t>> PosInTrace; // I index -> trace idx
  std::vector<size_t> TraceIdx(I.size(), 0);
  std::map<ThreadId, size_t> Counter;
  for (size_t J = 0; J < I.size(); ++J) {
    Traces[I[J].Tid].push_back(I[J].Act);
    TraceIdx[J] = Counter[I[J].Tid]++;
  }
  for (size_t J = 0; J < I.size(); ++J)
    if (!InRange[J] && !isEliminable(Traces[I[J].Tid], TraceIdx[J]))
      return false;
  return true;
}

namespace {

/// Per-thread material for the interleaving search.
struct ThreadPlan {
  ThreadId Tid = 0;
  Trace Witness;                 ///< Uneliminated (wildcard) trace t_tau.
  std::vector<bool> IsDropped;   ///< Per witness index.
  std::vector<size_t> KeptToIPrime; ///< k-th kept index -> I' position.
};

class Interleaver {
public:
  Interleaver(std::vector<ThreadPlan> Plans,
              std::vector<size_t> KeptSyncOrder, const Interleaving &IPrime)
      : Plans(std::move(Plans)), KeptSyncOrder(std::move(KeptSyncOrder)),
        IPrime(IPrime) {
    Pos.assign(this->Plans.size(), 0);
    KeptDone.assign(this->Plans.size(), 0);
  }

  bool run(Interleaving &OutI, std::vector<size_t> &OutF) {
    if (!dfs())
      return false;
    OutI = Interleaving(Events);
    OutF.assign(IPrime.size(), 0);
    for (size_t J = 0; J < FInverse.size(); ++J)
      if (FInverse[J] != SIZE_MAX)
        OutF[FInverse[J]] = J;
    return true;
  }

private:
  size_t totalRemaining() const {
    size_t N = 0;
    for (size_t P = 0; P < Plans.size(); ++P)
      N += Plans[P].Witness.size() - Pos[P];
    return N;
  }

  bool dfs() {
    if (totalRemaining() == 0)
      return true;
    for (size_t P = 0; P < Plans.size(); ++P) {
      ThreadPlan &Plan = Plans[P];
      if (Pos[P] == Plan.Witness.size())
        continue;
      size_t W = Pos[P];
      const Action &A = Plan.Witness[W];
      bool Sync = A.isSynchronisation() || A.isExternal();
      bool IsDropped = Plan.IsDropped[W];
      // (ii): a kept sync/external action must be the globally next one.
      if (!IsDropped && Sync) {
        size_t IPrimePos = Plan.KeptToIPrime[KeptDone[P]];
        if (SyncEmitted >= KeptSyncOrder.size() ||
            KeptSyncOrder[SyncEmitted] != IPrimePos)
          continue;
      }
      // (iii): a dropped sync/external action must wait for all kept ones.
      if (IsDropped && Sync && SyncEmitted < KeptSyncOrder.size())
        continue;
      // Mutual exclusion.
      if (A.isLock()) {
        auto It = Locks.find(A.monitor());
        if (It != Locks.end() && It->second.second > 0 &&
            It->second.first != Plan.Tid)
          continue;
      }
      // Apply.
      Events.push_back(Event{Plan.Tid, A});
      FInverse.push_back(IsDropped ? SIZE_MAX : Plan.KeptToIPrime[KeptDone[P]]);
      ++Pos[P];
      size_t SavedKept = KeptDone[P];
      if (!IsDropped)
        ++KeptDone[P];
      size_t SavedSync = SyncEmitted;
      if (!IsDropped && Sync)
        ++SyncEmitted;
      std::optional<std::pair<ThreadId, int>> SavedLock;
      if (A.isLock() || A.isUnlock()) {
        auto &Slot = Locks[A.monitor()];
        SavedLock = Slot;
        Slot = A.isLock()
                   ? std::make_pair(Plan.Tid, Slot.second + 1)
                   : std::make_pair(Slot.first, Slot.second - 1);
      }
      if (dfs())
        return true;
      // Undo.
      if (SavedLock)
        Locks[A.monitor()] = *SavedLock;
      SyncEmitted = SavedSync;
      KeptDone[P] = SavedKept;
      --Pos[P];
      FInverse.pop_back();
      Events.pop_back();
    }
    return false;
  }

  std::vector<ThreadPlan> Plans;
  std::vector<size_t> KeptSyncOrder; ///< I' positions of sync/ext, in order.
  const Interleaving &IPrime;

  std::vector<size_t> Pos;      ///< Next witness index per plan.
  std::vector<size_t> KeptDone; ///< Kept actions emitted per plan.
  size_t SyncEmitted = 0;       ///< Prefix of KeptSyncOrder emitted.
  std::vector<Event> Events;
  std::vector<size_t> FInverse; ///< I index -> I' index (SIZE_MAX dropped).
  std::map<SymbolId, std::pair<ThreadId, int>> Locks;
};

} // namespace

UneliminationResult
tracesafe::findUnelimination(const Traceset &Orig, const Interleaving &IPrime,
                             const EliminationSearchLimits &Limits) {
  UneliminationResult Result;

  // Step 1: per-thread elimination witnesses.
  std::vector<ThreadPlan> Plans;
  for (ThreadId Tid : IPrime.threads()) {
    ThreadPlan Plan;
    Plan.Tid = Tid;
    Trace TPrime = IPrime.traceOf(Tid);
    bool Truncated = false;
    std::vector<size_t> Dropped;
    std::optional<Trace> W = findEliminationWitness(
        Orig, TPrime, Limits, &Truncated, /*ProperOnly=*/false, &Dropped);
    if (!W) {
      Result.Verdict = Truncated ? CheckVerdict::Unknown : CheckVerdict::Fails;
      return Result;
    }
    Plan.Witness = *W;
    Plan.IsDropped.assign(W->size(), false);
    for (size_t D : Dropped)
      Plan.IsDropped[D] = true;
    // Map the k-th kept witness index to the I' position of the k-th action
    // of this thread.
    std::vector<size_t> ThreadPositions;
    for (size_t K = 0; K < IPrime.size(); ++K)
      if (IPrime[K].Tid == Tid)
        ThreadPositions.push_back(K);
    assert(ThreadPositions.size() + Dropped.size() == W->size() &&
           "witness size mismatch");
    Plan.KeptToIPrime = ThreadPositions;
    Plans.push_back(std::move(Plan));
  }

  // Step 2: the I' positions of synchronisation/external actions, in order.
  std::vector<size_t> KeptSyncOrder;
  for (size_t K = 0; K < IPrime.size(); ++K)
    if (IPrime[K].Act.isSynchronisation() || IPrime[K].Act.isExternal())
      KeptSyncOrder.push_back(K);

  // Step 3: interleave.
  Interleaver Merge(std::move(Plans), std::move(KeptSyncOrder), IPrime);
  Interleaving I;
  std::vector<size_t> F;
  if (!Merge.run(I, F)) {
    Result.Verdict = CheckVerdict::Fails;
    return Result;
  }
  Result.Verdict = CheckVerdict::Holds;
  Result.I = std::move(I);
  Result.F = std::move(F);
  return Result;
}
