//===----------------------------------------------------------------------===//
///
/// \file
/// Finite chains of semantic transformations — the composition form of the
/// main result (§5, and the paper's abstract: "any composition of these
/// transformations is sound with respect to the DRF guarantee").
///
/// A chain is T_0 -> T_1 -> ... -> T_n of tracesets with every adjacent
/// pair related by a declared transformation kind. checkChain verifies
/// each link with the corresponding decision procedure, and
/// checkChainConclusion additionally validates the Theorem 1/2 conclusions
/// end to end: if T_0 is data race free then T_n is data race free and
/// behaviours(T_n) are among behaviours(T_0) — computed entirely at the
/// traceset level.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SEMANTICS_COMPOSITION_H
#define TRACESAFE_SEMANTICS_COMPOSITION_H

#include "semantics/Reordering.h"
#include "trace/Enumerate.h"

#include <vector>

namespace tracesafe {

/// What a chain link claims to be.
enum class TransformKind : uint8_t {
  Elimination,
  Reordering,
  EliminationThenReordering,
};

std::string transformKindName(TransformKind K);

/// One verified link.
struct ChainLink {
  TransformKind Kind = TransformKind::Elimination;
  CheckVerdict Verdict = CheckVerdict::Unknown;
};

struct ChainReport {
  std::vector<ChainLink> Links;
  /// Conclusion checks (filled by checkChainConclusion).
  bool OriginalDrf = false;
  bool FinalDrf = false;
  bool BehavioursPreserved = false;
  bool Truncated = false;

  bool linksHold() const {
    for (const ChainLink &L : Links)
      if (L.Verdict != CheckVerdict::Holds)
        return false;
    return true;
  }

  /// Theorem 1/2 composition: vacuous for racy originals.
  bool conclusionHolds() const {
    if (Truncated)
      return false;
    if (!OriginalDrf)
      return true;
    return FinalDrf && BehavioursPreserved;
  }
};

/// Verifies each adjacent pair of \p Chain with the checker selected by
/// \p Kinds (Kinds.size() == Chain.size() - 1).
ChainReport checkChain(const std::vector<Traceset> &Chain,
                       const std::vector<TransformKind> &Kinds,
                       const EliminationSearchLimits &ElimLimits = {},
                       const ReorderingSearchLimits &ReorderLimits = {});

/// checkChain plus the end-to-end DRF/behaviour conclusions at the
/// traceset level.
ChainReport
checkChainConclusion(const std::vector<Traceset> &Chain,
                     const std::vector<TransformKind> &Kinds,
                     const EliminationSearchLimits &ElimLimits = {},
                     const ReorderingSearchLimits &ReorderLimits = {},
                     EnumerationLimits EnumLimits = {});

} // namespace tracesafe

#endif // TRACESAFE_SEMANTICS_COMPOSITION_H
