#include "semantics/Reordering.h"

#include "semantics/Reorderable.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace tracesafe;

bool tracesafe::isReorderingFunction(const Trace &T, const Permutation &F) {
  assert(F.size() == T.size() && isPermutation(F) &&
         "reordering function must be a bijection on dom(t)");
  for (size_t I = 0; I < T.size(); ++I)
    for (size_t J = I + 1; J < T.size(); ++J)
      if (F[J] < F[I] && !reorderableWith(T[J], T[I]))
        return false;
  return true;
}

Trace tracesafe::depermutePrefix(const Trace &TPrime, const Permutation &F,
                                 size_t N) {
  assert(N <= TPrime.size() && F.size() == TPrime.size() &&
         "prefix length out of range");
  std::vector<std::pair<size_t, size_t>> Pairs; // (target, source)
  Pairs.reserve(N);
  for (size_t J = 0; J < N; ++J)
    Pairs.emplace_back(F[J], J);
  std::sort(Pairs.begin(), Pairs.end());
  Trace Out;
  for (const auto &[Target, Source] : Pairs) {
    (void)Target;
    Out.push_back(TPrime[Source]);
  }
  return Out;
}

Trace tracesafe::depermute(const Trace &TPrime, const Permutation &F) {
  return depermutePrefix(TPrime, F, TPrime.size());
}

namespace {

class DepermutationSearch {
public:
  DepermutationSearch(const Trace &TPrime,
                      const std::function<bool(const Trace &)> &Contains,
                      const ReorderingSearchLimits &Limits)
      : TPrime(TPrime), Contains(Contains), Limits(Limits),
        F(TPrime.size(), 0), Used(TPrime.size(), false) {}

  std::optional<Permutation> run(bool *Truncated) {
    bool Found = dfs(0);
    if (Truncated)
      *Truncated = Hit;
    if (Found)
      return F;
    return std::nullopt;
  }

private:
  bool dfs(size_t I) {
    if (++Nodes > Limits.MaxNodesPerTrace) {
      Hit = true;
      return false;
    }
    size_t N = TPrime.size();
    if (I == N)
      return true;
    // Try targets; identity first (most syntactic transformations move few
    // actions, so this finds witnesses quickly).
    for (size_t Offset = 0; Offset < N; ++Offset) {
      size_t Target = (I + Offset) % N;
      if (Used[Target])
        continue;
      // Pairwise reorderability against already-assigned sources.
      // f(I) < f(K) with K < I requires t'_I reorderable with t'_K; the
      // other direction is unconstrained.
      bool Ok = true;
      for (size_t K = 0; K < I && Ok; ++K)
        if (Target < F[K] && !reorderableWith(TPrime[I], TPrime[K]))
          Ok = false;
      if (!Ok)
        continue;
      F[I] = Target;
      Used[Target] = true;
      // Prefix condition for n = I+1 (depends only on F[0..I]).
      if (Contains(depermutePrefix(TPrime, F, I + 1)) && dfs(I + 1))
        return true;
      Used[Target] = false;
    }
    return false;
  }

  const Trace &TPrime;
  const std::function<bool(const Trace &)> &Contains;
  ReorderingSearchLimits Limits;
  Permutation F;
  std::vector<bool> Used;
  uint64_t Nodes = 0;
  bool Hit = false;
};

} // namespace

std::optional<Permutation> tracesafe::findDepermutation(
    const Trace &TPrime, const std::function<bool(const Trace &)> &Contains,
    const ReorderingSearchLimits &Limits, bool *Truncated) {
  DepermutationSearch S(TPrime, Contains, Limits);
  return S.run(Truncated);
}

TransformCheckResult
tracesafe::checkReordering(const Traceset &Orig, const Traceset &Transformed,
                           const ReorderingSearchLimits &Limits) {
  TransformCheckResult Result;
  auto Contains = [&Orig](const Trace &T) { return Orig.contains(T); };
  for (const Trace &TPrime : Transformed.traces()) {
    ++Result.TracesChecked;
    bool Truncated = false;
    std::optional<Permutation> F =
        findDepermutation(TPrime, Contains, Limits, &Truncated);
    if (F)
      continue;
    Result.Verdict = Truncated ? CheckVerdict::Unknown : CheckVerdict::Fails;
    Result.Counterexample = TPrime;
    return Result;
  }
  return Result;
}

TransformCheckResult tracesafe::checkEliminationThenReordering(
    const Traceset &Orig, const Traceset &Transformed,
    const EliminationSearchLimits &ElimLimits,
    const ReorderingSearchLimits &ReorderLimits) {
  TransformCheckResult Result;

  // Membership oracle for the intermediate set T-bar: "is this trace an
  // elimination of some wildcard trace belonging-to Orig?" — memoised, and
  // any truncation taints the final verdict towards Unknown.
  std::map<Trace, bool> Memo;
  bool OracleTruncated = false;
  std::set<Trace> Used; // Accepted members of T-bar, for certification.
  auto InTBar = [&](const Trace &T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    bool Truncated = false;
    bool In = findEliminationWitness(Orig, T, ElimLimits, &Truncated)
                  .has_value();
    OracleTruncated |= (Truncated && !In);
    Memo.emplace(T, In);
    return In;
  };
  auto Contains = [&](const Trace &T) {
    if (!InTBar(T))
      return false;
    Used.insert(T);
    return true;
  };

  for (const Trace &TPrime : Transformed.traces()) {
    ++Result.TracesChecked;
    bool Truncated = false;
    std::optional<Permutation> F =
        findDepermutation(TPrime, Contains, ReorderLimits, &Truncated);
    if (F)
      continue;
    Result.Verdict = (Truncated || OracleTruncated) ? CheckVerdict::Unknown
                                                    : CheckVerdict::Fails;
    Result.Counterexample = TPrime;
    return Result;
  }

  // Certification: the paper requires T-bar to be a *prefix-closed* set all
  // of whose members are eliminations of wildcard traces belonging-to Orig.
  // The de-permuted prefixes we used are members by construction; we close
  // them under prefixes and re-check membership of every prefix. (Another
  // choice of T-bar might work when this fails, so a failure here is
  // Unknown, not Fails.)
  for (const Trace &T : Used) {
    for (size_t N = 0; N < T.size(); ++N) {
      Trace P = T.prefix(N);
      if (!InTBar(P)) {
        Result.Verdict = CheckVerdict::Unknown;
        Result.Counterexample = P;
        return Result;
      }
    }
  }
  if (OracleTruncated)
    Result.Verdict = CheckVerdict::Unknown;
  return Result;
}
