//===----------------------------------------------------------------------===//
///
/// \file
/// The reorderability predicate and its §4 summary table.
///
/// a is reorderable with b iff
///   (i)  a is a non-volatile memory access, and b is a non-conflicting
///        non-volatile memory access, an acquire, or an external action; or
///   (ii) b is a non-volatile memory access, and a is a non-conflicting
///        non-volatile memory access, a release, or an external action.
///
/// The predicate is deliberately asymmetric: a write may move across a later
/// acquire (roach-motel: the access moves *into* the critical section) but
/// an acquire may never move across anything.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SEMANTICS_REORDERABLE_H
#define TRACESAFE_SEMANTICS_REORDERABLE_H

#include "trace/Action.h"

#include <array>
#include <string>

namespace tracesafe {

/// §4 predicate: may action \p A be reordered with (moved after) action
/// \p B? (In a reordering function, t'_j reorderable-with t'_i is required
/// when the function swaps their order.)
bool reorderableWith(const Action &A, const Action &B);

/// Row/column classes of the paper's summary table.
enum class ReorderClass : uint8_t {
  NormalWriteSame,  ///< W[x], paired against same-location column
  NormalWriteDiff,  ///< W[x] vs a different location y
  NormalReadSame,   ///< R[x] same location
  NormalReadDiff,   ///< R[x] different location
  Acquire,          ///< lock or volatile read
  Release,          ///< unlock or volatile write
  External,         ///< X(v)
};

/// The five paper rows/columns: W, R (location-parametric), Acq, Rel, Ext.
inline constexpr std::array<const char *, 5> ReorderTableLabels = {
    "Write", "Read", "Acquire", "Release", "External"};

/// Entry of the reproduced table for row action class \p RowA and column
/// class \p ColB: "yes", "no", or "x!=y" (allowed iff different locations).
/// Row = a, column = b in `a reorderable with b`.
std::string reorderTableEntry(size_t Row, size_t Col);

/// The table the paper prints, as expected by the tests/bench: computed by
/// evaluating reorderableWith on representative actions, *not* hard-coded.
std::array<std::array<std::string, 5>, 5> computeReorderTable();

} // namespace tracesafe

#endif // TRACESAFE_SEMANTICS_REORDERABLE_H
