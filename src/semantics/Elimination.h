//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic elimination transformation (§4) as a decision procedure.
///
/// Trace level: t' is an elimination of wildcard trace t iff t' = t|S for
/// some index set S with every dropped index eliminable in t (Definition 1).
/// Proper eliminations restrict to cases 1-5.
///
/// Traceset level: T' is an elimination of T iff every trace of T' is an
/// elimination of some wildcard trace that belongs-to T. The wildcard trace
/// is existentially quantified, so the checker performs a bounded backtracking
/// search: it builds a candidate wildcard trace action by action, keeping the
/// set of all of its concrete instances (each of which must stay inside T),
/// and either matches the next action of t' or inserts an action to be
/// eliminated. Verdicts are three-valued — a truncated search answers
/// Unknown, never a wrong Yes/No.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SEMANTICS_ELIMINATION_H
#define TRACESAFE_SEMANTICS_ELIMINATION_H

#include "semantics/Eliminable.h"
#include "trace/Traceset.h"

#include <cstdint>
#include <optional>

namespace tracesafe {

/// Three-valued verdict of the transformation checkers.
enum class CheckVerdict : uint8_t {
  Holds,
  Fails,
  Unknown, ///< Search truncated by limits.
};

std::string checkVerdictName(CheckVerdict V);

/// Trace-level check: is \p TPrime an elimination of \p T (a wildcard
/// trace)? \p ProperOnly restricts dropped indices to cases 1-5.
bool isEliminationOfTrace(const Trace &T, const Trace &TPrime,
                          bool ProperOnly = false);

/// Bounds for the wildcard-witness search.
struct EliminationSearchLimits {
  /// Maximum number of eliminated (inserted) actions in the witness.
  size_t MaxExtra = 6;
  /// Cap on the instance-set size (grows by |domain| per wildcard).
  size_t MaxInstances = 4096;
  /// Cap on search nodes per trace of T'.
  uint64_t MaxNodesPerTrace = 2'000'000;
};

/// Searches for a wildcard trace t that belongs-to \p Orig such that
/// \p TPrime is an elimination of t. Returns the witness if found;
/// sets \p *Truncated if the search hit a limit (in which case a nullopt
/// answer means Unknown, not No). When \p DroppedOut is non-null it
/// receives the (sorted) eliminated indices of the witness — the
/// complement of the kept set S with t' = t|S.
std::optional<Trace>
findEliminationWitness(const Traceset &Orig, const Trace &TPrime,
                       const EliminationSearchLimits &Limits = {},
                       bool *Truncated = nullptr, bool ProperOnly = false,
                       std::vector<size_t> *DroppedOut = nullptr);

/// Result of a traceset-level check.
struct TransformCheckResult {
  CheckVerdict Verdict = CheckVerdict::Holds;
  /// When Fails/Unknown: the trace of the transformed set with no witness.
  Trace Counterexample;
  uint64_t TracesChecked = 0;
};

/// §4: is \p Transformed an elimination of \p Orig?
TransformCheckResult
checkElimination(const Traceset &Orig, const Traceset &Transformed,
                 const EliminationSearchLimits &Limits = {},
                 bool ProperOnly = false);

} // namespace tracesafe

#endif // TRACESAFE_SEMANTICS_ELIMINATION_H
