#include "semantics/Reorderable.h"

using namespace tracesafe;

bool tracesafe::reorderableWith(const Action &A, const Action &B) {
  bool NonConflicting = !A.conflictsWith(B);
  // (i) a normal access; b normal non-conflicting access, acquire, or
  // external.
  if (A.isNormalAccess()) {
    if (B.isNormalAccess() && NonConflicting)
      return true;
    if (B.isAcquire() || B.isExternal())
      return true;
  }
  // (ii) b normal access; a normal non-conflicting access, release, or
  // external.
  if (B.isNormalAccess()) {
    if (A.isNormalAccess() && NonConflicting)
      return true;
    if (A.isRelease() || A.isExternal())
      return true;
  }
  return false;
}

namespace {

/// Representative actions for the table. Row/column index order matches
/// ReorderTableLabels: Write, Read, Acquire, Release, External.
Action representative(size_t Idx, SymbolId Loc, SymbolId Mon) {
  switch (Idx) {
  case 0:
    return Action::mkWrite(Loc, 1);
  case 1:
    return Action::mkRead(Loc, 1);
  case 2:
    return Action::mkLock(Mon);
  case 3:
    return Action::mkUnlock(Mon);
  default:
    return Action::mkExternal(1);
  }
}

} // namespace

std::array<std::array<std::string, 5>, 5> tracesafe::computeReorderTable() {
  SymbolId X = Symbol::intern("x");
  SymbolId Y = Symbol::intern("y");
  SymbolId M = Symbol::intern("m");
  std::array<std::array<std::string, 5>, 5> Table;
  for (size_t Row = 0; Row < 5; ++Row) {
    for (size_t Col = 0; Col < 5; ++Col) {
      Action A = representative(Row, X, M);
      Action BSame = representative(Col, X, M);
      Action BDiff = representative(Col, Y, M);
      bool Same = reorderableWith(A, BSame);
      bool Diff = reorderableWith(A, BDiff);
      if (Same == Diff)
        Table[Row][Col] = Same ? "yes" : "no";
      else
        Table[Row][Col] = Diff ? "x!=y" : "x==y";
    }
  }
  return Table;
}

std::string tracesafe::reorderTableEntry(size_t Row, size_t Col) {
  return computeReorderTable()[Row][Col];
}
