//===----------------------------------------------------------------------===//
///
/// \file
/// Eliminable indices of a wildcard trace — Definition 1 of the paper (§4).
///
/// The eight cases. For the redundancy cases the "justifier" index j must
/// not be separated from i by a release-acquire pair (two distinct actions
/// r < a strictly between them, r a release, a an acquire) nor by writes
/// (cases 1, 2) or any other access (cases 4, 5) to the location.
///
/// Note on case 5 (overwritten write): the overwritten — i.e. *earlier* —
/// write is the eliminable one; the justifying overwriting write comes
/// later. This orientation is fixed by the paper's worked example (index 6,
/// W[x=2], is eliminable in [..., W[x=2], W[x=1], U[m]]).
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SEMANTICS_ELIMINABLE_H
#define TRACESAFE_SEMANTICS_ELIMINABLE_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace tracesafe {

/// The cases of Definition 1 (numbering matches the paper).
enum class EliminableKind : uint8_t {
  RedundantReadAfterRead = 1,
  RedundantReadAfterWrite = 2,
  IrrelevantRead = 3,
  RedundantWriteAfterRead = 4,
  OverwrittenWrite = 5,
  RedundantLastWrite = 6,
  RedundantRelease = 7,
  RedundantExternal = 8,
};

/// Human-readable name ("redundant read after read", ...).
std::string eliminableKindName(EliminableKind K);

/// All Definition-1 cases that apply to index \p I of wildcard trace \p T.
std::vector<EliminableKind> eliminableKinds(const Trace &T, size_t I);

/// Index \p I is eliminable: some case applies.
bool isEliminable(const Trace &T, size_t I);

/// §6.1: properly eliminable = cases 1-5 only (no last-action
/// eliminations); proper eliminations compose under trace concatenation,
/// which is what makes the syntactic rules compositional.
bool isProperlyEliminable(const Trace &T, size_t I);

} // namespace tracesafe

#endif // TRACESAFE_SEMANTICS_ELIMINABLE_H
