#include "semantics/Composition.h"

#include <cassert>

using namespace tracesafe;

std::string tracesafe::transformKindName(TransformKind K) {
  switch (K) {
  case TransformKind::Elimination:
    return "elimination";
  case TransformKind::Reordering:
    return "reordering";
  case TransformKind::EliminationThenReordering:
    return "elimination+reordering";
  }
  return "<invalid>";
}

ChainReport tracesafe::checkChain(const std::vector<Traceset> &Chain,
                                  const std::vector<TransformKind> &Kinds,
                                  const EliminationSearchLimits &ElimLimits,
                                  const ReorderingSearchLimits &ReorderLimits) {
  assert(Chain.size() >= 1 && Kinds.size() + 1 == Chain.size() &&
         "one kind per adjacent pair");
  ChainReport Report;
  for (size_t K = 0; K < Kinds.size(); ++K) {
    ChainLink Link;
    Link.Kind = Kinds[K];
    switch (Kinds[K]) {
    case TransformKind::Elimination:
      Link.Verdict =
          checkElimination(Chain[K], Chain[K + 1], ElimLimits).Verdict;
      break;
    case TransformKind::Reordering:
      Link.Verdict =
          checkReordering(Chain[K], Chain[K + 1], ReorderLimits).Verdict;
      break;
    case TransformKind::EliminationThenReordering:
      Link.Verdict = checkEliminationThenReordering(Chain[K], Chain[K + 1],
                                                    ElimLimits, ReorderLimits)
                         .Verdict;
      break;
    }
    Report.Links.push_back(Link);
  }
  return Report;
}

ChainReport tracesafe::checkChainConclusion(
    const std::vector<Traceset> &Chain, const std::vector<TransformKind> &Kinds,
    const EliminationSearchLimits &ElimLimits,
    const ReorderingSearchLimits &ReorderLimits,
    EnumerationLimits EnumLimits) {
  ChainReport Report = checkChain(Chain, Kinds, ElimLimits, ReorderLimits);

  RaceReport First = findAdjacentRace(Chain.front(), EnumLimits);
  RaceReport Last = findAdjacentRace(Chain.back(), EnumLimits);
  Report.OriginalDrf = !First.HasRace;
  Report.FinalDrf = !Last.HasRace;
  Report.Truncated |= First.Stats.Truncated || Last.Stats.Truncated;

  EnumerationStats SA, SB;
  std::set<Behaviour> Base = collectBehaviours(Chain.front(), EnumLimits, &SA);
  std::set<Behaviour> Final = collectBehaviours(Chain.back(), EnumLimits, &SB);
  Report.Truncated |= SA.Truncated || SB.Truncated;
  Report.BehavioursPreserved = true;
  for (const Behaviour &B : Final)
    if (!Base.count(B)) {
      Report.BehavioursPreserved = false;
      break;
    }
  return Report;
}
