//===----------------------------------------------------------------------===//
///
/// \file
/// Unordering functions (§5) — the proof device of the reordering safety
/// theorem, as an executable construction.
///
/// Given a traceset T and an interleaving I' of a reordering of T, a
/// complete matching f : dom(I') -> dom(I') is an *unordering* from I' to
/// T when
///   (i)   for i < j with T(I'_i) = T(I'_j): if A(I'_j) is not reorderable
///         with A(I'_i) then f(i) < f(j) (program order may only be
///         permuted where the reorderability predicate allows),
///   (ii)  synchronisation and external actions keep their relative order,
///   (iii) restricted to each thread, f de-permutes the thread's trace of
///         I' into T.
///
/// The §5 induction then shows: if T is data race free and I' is an
/// execution, the unordered interleaving f.(I') is an execution of T. The
/// tests and the E5 bench exercise exactly that property.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SEMANTICS_UNORDERING_H
#define TRACESAFE_SEMANTICS_UNORDERING_H

#include "semantics/Reordering.h"
#include "support/Permutation.h"
#include "trace/Interleaving.h"

#include <functional>
#include <optional>

namespace tracesafe {

/// Checks conditions (i)-(iii) for \p F against the membership oracle
/// \p Contains (typically Traceset::contains of the original set, or the
/// elimination-closure oracle for composite transformations).
bool isUnorderingFunction(const Interleaving &IPrime,
                          const std::vector<size_t> &F,
                          const std::function<bool(const Trace &)> &Contains);

/// Applies \p F to \p IPrime: element i moves to position F[i].
Interleaving applyUnordering(const Interleaving &IPrime,
                             const std::vector<size_t> &F);

struct UnorderingResult {
  CheckVerdict Verdict = CheckVerdict::Fails;
  std::vector<size_t> F; ///< The unordering function (valid when Holds).
};

/// Searches for an unordering from \p IPrime into the traceset given by
/// \p Contains: per-thread de-permutations are found first, then merged
/// into a global matching that preserves the synchronisation/external
/// order of I'.
UnorderingResult
findUnordering(const Interleaving &IPrime,
               const std::function<bool(const Trace &)> &Contains,
               const ReorderingSearchLimits &Limits = {});

} // namespace tracesafe

#endif // TRACESAFE_SEMANTICS_UNORDERING_H
