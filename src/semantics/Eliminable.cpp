#include "semantics/Eliminable.h"

#include <cassert>

using namespace tracesafe;

std::string tracesafe::eliminableKindName(EliminableKind K) {
  switch (K) {
  case EliminableKind::RedundantReadAfterRead:
    return "redundant read after read";
  case EliminableKind::RedundantReadAfterWrite:
    return "redundant read after write";
  case EliminableKind::IrrelevantRead:
    return "irrelevant read";
  case EliminableKind::RedundantWriteAfterRead:
    return "redundant write after read";
  case EliminableKind::OverwrittenWrite:
    return "overwritten write";
  case EliminableKind::RedundantLastWrite:
    return "redundant last write";
  case EliminableKind::RedundantRelease:
    return "redundant release";
  case EliminableKind::RedundantExternal:
    return "redundant external action";
  }
  return "<invalid>";
}

namespace {

/// No write to \p Loc strictly between \p Lo and \p Hi.
bool noWriteBetween(const Trace &T, SymbolId Loc, size_t Lo, size_t Hi) {
  for (size_t K = Lo + 1; K < Hi; ++K)
    if (T[K].isWrite() && T[K].location() == Loc)
      return false;
  return true;
}

/// No access (read or write) to \p Loc strictly between \p Lo and \p Hi.
bool noAccessBetween(const Trace &T, SymbolId Loc, size_t Lo, size_t Hi) {
  for (size_t K = Lo + 1; K < Hi; ++K)
    if (T[K].isMemoryAccess() && T[K].location() == Loc)
      return false;
  return true;
}

bool caseRedundantReadAfterRead(const Trace &T, size_t I) {
  const Action &A = T[I];
  if (!A.isRead() || A.isWildcard() || A.isVolatileAccess())
    return false;
  for (size_t J = 0; J < I; ++J) {
    if (T[J] != A)
      continue;
    if (!T.hasReleaseAcquirePairBetween(J, I) &&
        noWriteBetween(T, A.location(), J, I))
      return true;
  }
  return false;
}

bool caseRedundantReadAfterWrite(const Trace &T, size_t I) {
  const Action &A = T[I];
  if (!A.isRead() || A.isWildcard() || A.isVolatileAccess())
    return false;
  for (size_t J = 0; J < I; ++J) {
    if (!T[J].isWrite() || T[J].location() != A.location() ||
        T[J].value() != A.value())
      continue;
    // "No write to l between j and i": T[J] itself is at j, the window is
    // strictly between.
    if (!T.hasReleaseAcquirePairBetween(J, I) &&
        noWriteBetween(T, A.location(), J, I))
      return true;
  }
  return false;
}

bool caseIrrelevantRead(const Trace &T, size_t I) {
  const Action &A = T[I];
  return A.isRead() && A.isWildcard() && !A.isVolatileAccess();
}

bool caseRedundantWriteAfterRead(const Trace &T, size_t I) {
  const Action &A = T[I];
  if (!A.isWrite() || A.isVolatileAccess())
    return false;
  for (size_t J = 0; J < I; ++J) {
    if (!T[J].isRead() || T[J].isWildcard() ||
        T[J].location() != A.location() || T[J].value() != A.value())
      continue;
    if (!T.hasReleaseAcquirePairBetween(J, I) &&
        noAccessBetween(T, A.location(), J, I))
      return true;
  }
  return false;
}

bool caseOverwrittenWrite(const Trace &T, size_t I) {
  const Action &A = T[I];
  if (!A.isWrite() || A.isVolatileAccess())
    return false;
  for (size_t J = I + 1; J < T.size(); ++J) {
    if (!T[J].isWrite() || T[J].location() != A.location())
      continue;
    if (!T.hasReleaseAcquirePairBetween(I, J) &&
        noAccessBetween(T, A.location(), I, J))
      return true;
    // The nearest later write is the only candidate: anything beyond it has
    // an intervening access (that write itself).
    return false;
  }
  return false;
}

bool caseRedundantLastWrite(const Trace &T, size_t I) {
  const Action &A = T[I];
  if (!A.isWrite() || A.isVolatileAccess())
    return false;
  for (size_t K = I + 1; K < T.size(); ++K) {
    if (T[K].isRelease())
      return false;
    if (T[K].isMemoryAccess() && T[K].location() == A.location())
      return false;
  }
  return true;
}

bool caseRedundantRelease(const Trace &T, size_t I) {
  if (!T[I].isRelease())
    return false;
  for (size_t K = I + 1; K < T.size(); ++K)
    if (T[K].isSynchronisation() || T[K].isExternal())
      return false;
  return true;
}

bool caseRedundantExternal(const Trace &T, size_t I) {
  if (!T[I].isExternal())
    return false;
  for (size_t K = I + 1; K < T.size(); ++K)
    if (T[K].isSynchronisation() || T[K].isExternal())
      return false;
  return true;
}

} // namespace

std::vector<EliminableKind> tracesafe::eliminableKinds(const Trace &T,
                                                       size_t I) {
  assert(I < T.size() && "index out of range");
  std::vector<EliminableKind> Out;
  if (caseRedundantReadAfterRead(T, I))
    Out.push_back(EliminableKind::RedundantReadAfterRead);
  if (caseRedundantReadAfterWrite(T, I))
    Out.push_back(EliminableKind::RedundantReadAfterWrite);
  if (caseIrrelevantRead(T, I))
    Out.push_back(EliminableKind::IrrelevantRead);
  if (caseRedundantWriteAfterRead(T, I))
    Out.push_back(EliminableKind::RedundantWriteAfterRead);
  if (caseOverwrittenWrite(T, I))
    Out.push_back(EliminableKind::OverwrittenWrite);
  if (caseRedundantLastWrite(T, I))
    Out.push_back(EliminableKind::RedundantLastWrite);
  if (caseRedundantRelease(T, I))
    Out.push_back(EliminableKind::RedundantRelease);
  if (caseRedundantExternal(T, I))
    Out.push_back(EliminableKind::RedundantExternal);
  return Out;
}

bool tracesafe::isEliminable(const Trace &T, size_t I) {
  return !eliminableKinds(T, I).empty();
}

bool tracesafe::isProperlyEliminable(const Trace &T, size_t I) {
  for (EliminableKind K : eliminableKinds(T, I))
    if (static_cast<int>(K) <= 5)
      return true;
  return false;
}
