#include "tso/TsoMachine.h"
#include "lang/Explore.h"
#include "tso/BufferedEngine.h"

#include <cassert>
#include <deque>

using namespace tracesafe;

namespace {

using StoreBuffer = std::deque<std::pair<SymbolId, Value>>;

struct TsoState {
  std::vector<ThreadState> Threads;
  std::vector<StoreBuffer> Buffers;
  std::map<SymbolId, Value> Memory;
  std::map<SymbolId, std::pair<ThreadId, int>> Locks;

  friend auto operator<=>(const TsoState &, const TsoState &) = default;
};

class TsoExplorer {
public:
  TsoExplorer(const Program &P, TsoLimits Limits)
      : Ctx(P, Limits.InputDomain.empty() ? defaultDomainFor(P)
                                          : Limits.InputDomain),
        Limits(Limits) {
    for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid) {
      bool Trunc = false;
      State.Threads.push_back(
          silentClosure(initialThreadState(P, Tid), Ctx,
                        Limits.MaxSilentRun, &Trunc));
      Stats.Truncated |= Trunc;
    }
    State.Buffers.assign(P.threadCount(), StoreBuffer{});
    ActionsDone.assign(P.threadCount(), 0);
  }

  std::set<Behaviour> run() {
    Behaviours.insert(Behaviour{});
    dfs(Behaviour{});
    return Behaviours;
  }

  ExecStats Stats;

private:
  /// Value thread \p Tid reads from \p Loc: own buffer (newest first),
  /// else memory.
  Value readValue(ThreadId Tid, SymbolId Loc) const {
    const StoreBuffer &B = State.Buffers[Tid];
    for (auto It = B.rbegin(); It != B.rend(); ++It)
      if (It->first == Loc)
        return It->second;
    auto It = State.Memory.find(Loc);
    return It == State.Memory.end() ? DefaultValue : It->second;
  }

  void dfs(const Behaviour &BehSoFar) {
    if (++Stats.Visited > Limits.MaxVisited) {
      Stats.Truncated = true;
      return;
    }
    if (!Seen.insert(std::make_tuple(State, ActionsDone, BehSoFar)).second)
      return;

    // Drain steps: the oldest entry of any non-empty buffer. The recursion
    // below reassigns State wholesale, so save/restore a full copy rather
    // than holding references across the call.
    for (ThreadId Tid = 0; Tid < State.Threads.size(); ++Tid) {
      if (State.Buffers[Tid].empty())
        continue;
      TsoState Saved = State;
      auto Entry = State.Buffers[Tid].front();
      State.Buffers[Tid].pop_front();
      State.Memory[Entry.first] = Entry.second;
      dfs(BehSoFar);
      State = std::move(Saved);
    }

    // Instruction steps.
    for (ThreadId Tid = 0; Tid < State.Threads.size(); ++Tid) {
      const ThreadState &S = State.Threads[Tid];
      if (S.done())
        continue;
      if (ActionsDone[Tid] >= Limits.MaxActionsPerThread) {
        Stats.Truncated = true;
        continue;
      }
      std::vector<Step> Steps = possibleStepsWithMemory(
          S, Ctx, [&](SymbolId Loc) { return readValue(Tid, Loc); });
      assert(!Steps.empty() && Steps[0].Act &&
             "closed thread must have pending actions");
      for (Step &PendingStep : Steps) {
      const Action &A = *PendingStep.Act;
      StoreBuffer &B = State.Buffers[Tid];

      // Enabledness under TSO.
      if (A.isWrite() && !A.isVolatileAccess() &&
          B.size() >= Limits.MaxBufferedStores)
        continue; // Must drain first.
      bool NeedsFence = A.isSynchronisation(); // volatile R/W, lock, unlock.
      if (NeedsFence && !B.empty())
        continue; // Fence: drain first.
      if (A.isLock()) {
        auto It = State.Locks.find(A.monitor());
        if (It != State.Locks.end() && It->second.second > 0 &&
            It->second.first != Tid)
          continue;
      }

      // Apply.
      TsoState Saved = State;
      std::vector<size_t> SavedDone = ActionsDone;
      bool Trunc = false;
      State.Threads[Tid] =
          silentClosure(PendingStep.Next, Ctx, Limits.MaxSilentRun, &Trunc);
      Stats.Truncated |= Trunc;
      ++ActionsDone[Tid];
      Behaviour NextBeh = BehSoFar;
      if (A.isWrite()) {
        if (A.isVolatileAccess())
          State.Memory[A.location()] = A.value();
        else
          State.Buffers[Tid].emplace_back(A.location(), A.value());
      } else if (A.isLock()) {
        auto &Slot = State.Locks[A.monitor()];
        Slot = {Tid, Slot.second + 1};
      } else if (A.isUnlock()) {
        auto It = State.Locks.find(A.monitor());
        assert(It != State.Locks.end() && It->second.first == Tid);
        if (--It->second.second == 0)
          State.Locks.erase(It);
      } else if (A.isExternal()) {
        NextBeh.push_back(A.value());
        Behaviours.insert(NextBeh);
      }
      dfs(NextBeh);
      State = std::move(Saved);
      ActionsDone = std::move(SavedDone);
      }
    }
  }

  LangContext Ctx;
  TsoLimits Limits;
  TsoState State;
  std::vector<size_t> ActionsDone;
  std::set<Behaviour> Behaviours;
  std::set<std::tuple<TsoState, std::vector<size_t>, Behaviour>> Seen;
};

} // namespace

std::set<Behaviour> tracesafe::tsoBehaviours(const Program &P,
                                             TsoLimits Limits,
                                             ExecStats *Stats) {
  if (!Limits.ExhaustiveOracle)
    return bufferedBehaviours(P, Limits, BufferModel::Tso, Stats);
  TsoExplorer E(P, Limits);
  std::set<Behaviour> Out = E.run();
  if (Stats)
    *Stats = E.Stats;
  return Out;
}

std::set<Behaviour> tracesafe::tsoOnlyBehaviours(const Program &P,
                                                 TsoLimits Limits,
                                                 ExecStats *Stats) {
  ExecStats TsoStats, ScStats;
  std::set<Behaviour> Tso = tsoBehaviours(P, Limits, &TsoStats);
  ExecLimits ScLimits;
  ScLimits.MaxActionsPerThread = Limits.MaxActionsPerThread;
  ScLimits.MaxSilentRun = Limits.MaxSilentRun;
  ScLimits.MaxVisited = Limits.MaxVisited;
  ScLimits.Shared = Limits.Shared;
  std::set<Behaviour> Sc = programBehaviours(P, ScLimits, &ScStats);
  if (Stats) {
    Stats->Visited = TsoStats.Visited + ScStats.Visited;
    Stats->Truncated = TsoStats.Truncated || ScStats.Truncated;
    Stats->Reason = mergeReason(TsoStats.Reason, ScStats.Reason);
  }
  std::set<Behaviour> Out;
  for (const Behaviour &B : Tso)
    if (!Sc.count(B))
      Out.insert(B);
  return Out;
}
