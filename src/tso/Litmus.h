//===----------------------------------------------------------------------===//
///
/// \file
/// Standard memory-model litmus tests, in the paper's language.
///
/// Each test records the source, the canonical relaxed outcome(s) asked
/// about, and whether SC / TSO / PSO allow the phenomenon. Multi-reader
/// tests (IRIW, WRC) encode their witness with per-thread conditional
/// prints of distinct tags, so the observable behaviour is unambiguous;
/// the phenomenon is observable iff *any* of the listed behaviours occurs.
///
/// These drive the E13 experiment: the TSO/PSO-only outcomes must be
/// reachable through the paper's safe transformations (W->R and W->W
/// reordering plus read-after-write elimination), and the forbidden ones
/// must stay unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TSO_LITMUS_H
#define TRACESAFE_TSO_LITMUS_H

#include "lang/Ast.h"
#include "trace/Interleaving.h"

#include <set>
#include <string>
#include <vector>

namespace tracesafe {

struct LitmusTest {
  std::string Name;
  std::string Source;
  /// The phenomenon is observed iff any of these behaviours occurs.
  std::vector<Behaviour> AskedOutcomes;
  /// Does sequential consistency allow it?
  bool ScAllows;
  /// Does TSO allow it?
  bool TsoAllows;
  /// Does PSO (per-location buffers, W->W relaxation) allow it?
  bool PsoAllows;

  /// True iff some asked outcome is in \p Behaviours.
  bool observedIn(const std::set<Behaviour> &Behaviours) const {
    for (const Behaviour &B : AskedOutcomes)
      if (Behaviours.count(B))
        return true;
    return false;
  }
};

/// The battery: SB (store buffering), SB+vol (fenced), MP (message
/// passing), LB (load buffering), CoRR (read-read coherence), SB+RFI
/// (store forwarding), IRIW (independent reads of independent writes),
/// WRC (write-to-read causality).
const std::vector<LitmusTest> &litmusTests();

} // namespace tracesafe

#endif // TRACESAFE_TSO_LITMUS_H
