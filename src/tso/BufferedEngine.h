//===----------------------------------------------------------------------===//
///
/// \file
/// The interned, sleep-set-reduced, work-stealing search over the
/// store-buffer machines (TSO and PSO).
///
/// This is the relaxed-memory counterpart of the parallel SC engine in
/// trace/Enumerate.cpp: machine states (thread configurations, FIFO
/// buffers, memory, locks, behaviour tail) are hash-consed in an
/// InternPool with real-byte Budget charging, the search forks subtrees
/// to the work-stealing ThreadPool behind an adaptive fork-depth gate,
/// and sleep-set POR prunes commuting schedules of buffer drains and
/// non-conflicting accesses. Behaviour sets are identical to the
/// sequential explorers (TsoMachine.cpp / PsoMachine.cpp) for every
/// worker count — the equivalence tests assert it on the litmus corpus
/// and on randomised programs.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TSO_BUFFEREDENGINE_H
#define TRACESAFE_TSO_BUFFEREDENGINE_H

#include "tso/TsoMachine.h"

namespace tracesafe {

/// Which store-buffer semantics the engine runs: one FIFO buffer per
/// thread (TSO) or one FIFO buffer per (thread, location) pair (PSO).
enum class BufferModel { Tso, Pso };

/// The set of observable behaviours of \p P on the \p Model machine,
/// computed by the interned parallel engine. Drop-in equal to the
/// sequential explorers; tsoBehaviours/psoBehaviours dispatch here unless
/// TsoLimits::ExhaustiveOracle is set.
std::set<Behaviour> bufferedBehaviours(const Program &P,
                                       const TsoLimits &Limits,
                                       BufferModel Model,
                                       ExecStats *Stats = nullptr);

} // namespace tracesafe

#endif // TRACESAFE_TSO_BUFFEREDENGINE_H
