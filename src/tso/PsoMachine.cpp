#include "tso/PsoMachine.h"
#include "lang/Explore.h"
#include "tso/BufferedEngine.h"

#include <cassert>
#include <deque>

using namespace tracesafe;

namespace {

/// Per-thread, per-location FIFO store buffers.
using PsoBuffers = std::map<SymbolId, std::deque<Value>>;

struct PsoState {
  std::vector<ThreadState> Threads;
  std::vector<PsoBuffers> Buffers;
  std::map<SymbolId, Value> Memory;
  std::map<SymbolId, std::pair<ThreadId, int>> Locks;

  friend auto operator<=>(const PsoState &, const PsoState &) = default;
};

class PsoExplorer {
public:
  PsoExplorer(const Program &P, TsoLimits Limits)
      : Ctx(P, Limits.InputDomain.empty() ? defaultDomainFor(P)
                                          : Limits.InputDomain),
        Limits(Limits) {
    for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid) {
      bool Trunc = false;
      State.Threads.push_back(
          silentClosure(initialThreadState(P, Tid), Ctx,
                        Limits.MaxSilentRun, &Trunc));
      Stats.Truncated |= Trunc;
    }
    State.Buffers.assign(P.threadCount(), PsoBuffers{});
    ActionsDone.assign(P.threadCount(), 0);
  }

  std::set<Behaviour> run() {
    Behaviours.insert(Behaviour{});
    dfs(Behaviour{});
    return Behaviours;
  }

  ExecStats Stats;

private:
  Value readValue(ThreadId Tid, SymbolId Loc) const {
    auto It = State.Buffers[Tid].find(Loc);
    if (It != State.Buffers[Tid].end() && !It->second.empty())
      return It->second.back(); // Newest own store wins.
    auto MemIt = State.Memory.find(Loc);
    return MemIt == State.Memory.end() ? DefaultValue : MemIt->second;
  }

  bool buffersEmpty(ThreadId Tid) const {
    for (const auto &[Loc, Q] : State.Buffers[Tid])
      if (!Q.empty())
        return false;
    return true;
  }

  size_t bufferedCount(ThreadId Tid) const {
    size_t N = 0;
    for (const auto &[Loc, Q] : State.Buffers[Tid])
      N += Q.size();
    return N;
  }

  void dfs(const Behaviour &BehSoFar) {
    if (++Stats.Visited > Limits.MaxVisited) {
      Stats.Truncated = true;
      return;
    }
    if (!Seen.insert(std::make_tuple(State, ActionsDone, BehSoFar)).second)
      return;

    // Drain steps: the oldest entry of any per-location buffer. This is
    // where PSO differs from TSO — drains of different locations commute.
    for (ThreadId Tid = 0; Tid < State.Threads.size(); ++Tid) {
      // Collect first: the recursion reassigns State, which would
      // invalidate iterators into its maps.
      std::vector<SymbolId> Pending;
      for (const auto &[Loc, Q] : State.Buffers[Tid])
        if (!Q.empty())
          Pending.push_back(Loc);
      for (SymbolId Loc : Pending) {
        PsoState Saved = State;
        Value V = State.Buffers[Tid][Loc].front();
        State.Buffers[Tid][Loc].pop_front();
        State.Memory[Loc] = V;
        dfs(BehSoFar);
        State = std::move(Saved);
      }
    }

    // Instruction steps.
    for (ThreadId Tid = 0; Tid < State.Threads.size(); ++Tid) {
      const ThreadState &S = State.Threads[Tid];
      if (S.done())
        continue;
      if (ActionsDone[Tid] >= Limits.MaxActionsPerThread) {
        Stats.Truncated = true;
        continue;
      }
      std::vector<Step> Steps = possibleStepsWithMemory(
          S, Ctx, [&](SymbolId Loc) { return readValue(Tid, Loc); });
      assert(!Steps.empty() && Steps[0].Act &&
             "closed thread must have pending actions");
      for (Step &PendingStep : Steps) {
      const Action &A = *PendingStep.Act;

      if (A.isWrite() && !A.isVolatileAccess() &&
          bufferedCount(Tid) >= Limits.MaxBufferedStores)
        continue;
      if (A.isSynchronisation() && !buffersEmpty(Tid))
        continue; // Fence.
      if (A.isLock()) {
        auto It = State.Locks.find(A.monitor());
        if (It != State.Locks.end() && It->second.second > 0 &&
            It->second.first != Tid)
          continue;
      }

      PsoState Saved = State;
      std::vector<size_t> SavedDone = ActionsDone;
      bool Trunc = false;
      State.Threads[Tid] =
          silentClosure(PendingStep.Next, Ctx, Limits.MaxSilentRun, &Trunc);
      Stats.Truncated |= Trunc;
      ++ActionsDone[Tid];
      Behaviour NextBeh = BehSoFar;
      if (A.isWrite()) {
        if (A.isVolatileAccess())
          State.Memory[A.location()] = A.value();
        else
          State.Buffers[Tid][A.location()].push_back(A.value());
      } else if (A.isLock()) {
        auto &Slot = State.Locks[A.monitor()];
        Slot = {Tid, Slot.second + 1};
      } else if (A.isUnlock()) {
        auto It = State.Locks.find(A.monitor());
        assert(It != State.Locks.end() && It->second.first == Tid);
        if (--It->second.second == 0)
          State.Locks.erase(It);
      } else if (A.isExternal()) {
        NextBeh.push_back(A.value());
        Behaviours.insert(NextBeh);
      }
      dfs(NextBeh);
      State = std::move(Saved);
      ActionsDone = std::move(SavedDone);
      }
    }
  }

  LangContext Ctx;
  TsoLimits Limits;
  PsoState State;
  std::vector<size_t> ActionsDone;
  std::set<Behaviour> Behaviours;
  std::set<std::tuple<PsoState, std::vector<size_t>, Behaviour>> Seen;
};

} // namespace

std::set<Behaviour> tracesafe::psoBehaviours(const Program &P,
                                             TsoLimits Limits,
                                             ExecStats *Stats) {
  if (!Limits.ExhaustiveOracle)
    return bufferedBehaviours(P, Limits, BufferModel::Pso, Stats);
  PsoExplorer E(P, Limits);
  std::set<Behaviour> Out = E.run();
  if (Stats)
    *Stats = E.Stats;
  return Out;
}

std::set<Behaviour> tracesafe::psoOnlyBehaviours(const Program &P,
                                                 TsoLimits Limits,
                                                 ExecStats *Stats) {
  ExecStats PsoStats, ScStats;
  std::set<Behaviour> Pso = psoBehaviours(P, Limits, &PsoStats);
  ExecLimits ScLimits;
  ScLimits.MaxActionsPerThread = Limits.MaxActionsPerThread;
  ScLimits.MaxSilentRun = Limits.MaxSilentRun;
  ScLimits.MaxVisited = Limits.MaxVisited;
  ScLimits.Shared = Limits.Shared;
  std::set<Behaviour> Sc = programBehaviours(P, ScLimits, &ScStats);
  if (Stats) {
    Stats->Visited = PsoStats.Visited + ScStats.Visited;
    Stats->Truncated = PsoStats.Truncated || ScStats.Truncated;
    Stats->Reason = mergeReason(PsoStats.Reason, ScStats.Reason);
  }
  std::set<Behaviour> Out;
  for (const Behaviour &B : Pso)
    if (!Sc.count(B))
      Out.insert(B);
  return Out;
}
