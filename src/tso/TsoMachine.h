//===----------------------------------------------------------------------===//
///
/// \file
/// An x86-/SPARC-TSO-style operational machine for the language (paper §8).
///
/// The paper's conclusion reports that the Sun TSO memory model can be
/// explained by the semantic transformations (write-read reordering plus
/// read-after-write elimination). This module provides the other side of
/// that statement: an exhaustive store-buffer semantics whose behaviours
/// the explanation must cover.
///
/// Machine model:
///  - each thread has a FIFO store buffer of (location, value) pairs;
///  - a non-volatile write enters the buffer; the oldest entry of any
///    buffer may non-deterministically drain to memory at any time;
///  - a non-volatile read takes the newest matching entry of the thread's
///    own buffer (store-to-load forwarding), else memory;
///  - volatile accesses and lock/unlock act as fences: they require the
///    thread's buffer to be empty (this is exactly the fencing a DRF-sound
///    compiler emits for synchronisation operations);
///  - external actions do not interact with memory.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TSO_TSOMACHINE_H
#define TRACESAFE_TSO_TSOMACHINE_H

#include "lang/ProgramExec.h"

namespace tracesafe {

struct TsoLimits {
  /// Values the environment may supply to `input` statements; empty means
  /// "use defaultDomainFor(P)".
  std::vector<Value> InputDomain{};
  size_t MaxActionsPerThread = 64;
  size_t MaxSilentRun = 512;
  size_t MaxBufferedStores = 8;
  uint64_t MaxVisited = 50'000'000;
  /// Search workers: 1 = sequential in the calling thread; 0 = the shared
  /// work-stealing pool at its default width (TRACESAFE_WORKERS or
  /// hardware concurrency); N > 1 = exactly N-wide forking on an owned
  /// pool. Behaviour sets are identical for every width.
  unsigned Workers = 1;
  /// Sleep-set partial-order reduction over store-buffer transitions
  /// (see tso/BufferedEngine.cpp for the independence relation). Sound:
  /// results are identical with and without; the switch exists for the
  /// cross-check tests and the POR state-count benchmarks.
  bool UseReduction = true;
  /// Run the seed's sequential std::set-memoised explorer instead of the
  /// interned engine. Cross-check oracle: equivalence tests assert
  /// identical behaviour sets between the two.
  bool ExhaustiveOracle = false;
  /// Optional shared query budget (deadline / visit / memory caps across
  /// every engine of one query). Non-owning; may be null. Only the
  /// interned engine charges it.
  Budget *Shared = nullptr;
};

/// The set of observable behaviours of \p P on the TSO machine.
/// Prefix-closed; always a superset of programBehaviours(P) (the machine
/// can drain every buffer immediately, which simulates SC).
std::set<Behaviour> tsoBehaviours(const Program &P, TsoLimits Limits = {},
                                  ExecStats *Stats = nullptr);

/// Behaviours the TSO machine exhibits that SC does not.
std::set<Behaviour> tsoOnlyBehaviours(const Program &P,
                                      TsoLimits Limits = {},
                                      ExecStats *Stats = nullptr);

} // namespace tracesafe

#endif // TRACESAFE_TSO_TSOMACHINE_H
