#include "tso/BufferedEngine.h"

#include "lang/Explore.h"
#include "support/Failure.h"
#include "support/ForkPolicy.h"
#include "support/Intern.h"
#include "support/ThreadPool.h"
#include "trace/ActionWord.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

using namespace tracesafe;

//===----------------------------------------------------------------------===//
// Engine structure
//
// Mirrors trace/Enumerate.cpp's ReducedQuery, transplanted to machine
// states. Thread configurations (continuation + registers + monitor
// depths) are not word-encodable, so they get dense ids from a
// mutex-guarded side map; everything else of a state — buffers, memory,
// locks, actions-done counters and the behaviour tail — is encoded as a
// length-prefixed span of words and interned. The memo granularity is
// exactly the sequential explorers' (State, ActionsDone, BehSoFar) tuple.
//
// Transitions are of two kinds:
//  - drain(T) / drain(T, L): commit the oldest entry of a (per-location,
//    for PSO) store buffer to memory;
//  - instruction steps from possibleStepsWithMemory, with the machine's
//    enabledness rules (buffer cap for non-volatile writes; empty own
//    buffer for synchronisation actions; monitor mutual exclusion).
//
// Independence relation for the sleep sets. Every event touches at most
// one shared-memory location:
//  - drain(T, L) *writes* memory at L;
//  - a read of L (any volatility, even when it would forward from the own
//    buffer) *reads* memory at L — conservative, but forwarding depends
//    on the own buffer only, and same-thread pairs are always dependent;
//  - a volatile write of L *writes* memory at L;
//  - a non-volatile write has NO memory footprint: it only appends to the
//    issuing thread's buffer.
// Two events of different threads are dependent iff both are external
// (behaviour order is observable), they lock/unlock the same monitor, or
// their memory footprints overlap on a location with a write on either
// side. Everything else commutes and neither side can enable or disable
// the other: in particular cross-thread drains to different locations
// commute, and a drain commutes with another thread's fence (a fence only
// requires the *own* buffer to be empty).
//===----------------------------------------------------------------------===//

namespace {

using StoreBuffer = std::deque<std::pair<SymbolId, Value>>;
using PsoBuffers = std::map<SymbolId, std::deque<Value>>;

/// Dense ids for thread configurations. std::map keeps references stable
/// and needs only ThreadState's operator<=>; the search holds the lock
/// for one tree comparison path per lookup, which profiles far below the
/// interning and step-generation costs.
class ConfigIds {
public:
  explicit ConfigIds(Budget *Shared) : Shared(Shared) {}

  uint32_t id(const ThreadState &S) {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] =
        Map.try_emplace(S, static_cast<uint32_t>(Map.size()));
    if (Inserted && Shared)
      Shared->chargeBytes(sizeof(ThreadState) + 8 * sizeof(void *));
    return It->second;
  }

private:
  std::mutex M;
  std::map<ThreadState, uint32_t> Map;
  Budget *Shared;
};

/// One machine transition, as the sleep sets see it.
struct BufEvent {
  ThreadId Tid = 0;
  bool IsDrain = false;
  SymbolId Loc = 0;           ///< drained location (IsDrain only)
  Value Val = 0;              ///< drained value (IsDrain only)
  std::optional<Action> Act;  ///< instruction action (!IsDrain)
};

/// Memory-write footprint of an event (see file comment).
bool memWrite(const BufEvent &E, SymbolId &Loc) {
  if (E.IsDrain) {
    Loc = E.Loc;
    return true;
  }
  if (E.Act->isWrite() && E.Act->isVolatileAccess()) {
    Loc = E.Act->location();
    return true;
  }
  return false;
}

/// Memory-read footprint of an event.
bool memRead(const BufEvent &E, SymbolId &Loc) {
  if (!E.IsDrain && E.Act->isRead()) {
    Loc = E.Act->location();
    return true;
  }
  return false;
}

bool independentEvents(const BufEvent &X, const BufEvent &Y) {
  if (X.Tid == Y.Tid)
    return false;
  if (!X.IsDrain && !Y.IsDrain) {
    const Action &A = *X.Act;
    const Action &B = *Y.Act;
    if (A.isExternal() && B.isExternal())
      return false;
    if ((A.isLock() || A.isUnlock()) && (B.isLock() || B.isUnlock()) &&
        A.monitor() == B.monitor())
      return false;
  }
  SymbolId WX = 0, WY = 0, RX = 0, RY = 0;
  bool XW = memWrite(X, WX), YW = memWrite(Y, WY);
  bool XR = memRead(X, RX), YR = memRead(Y, RY);
  if (XW && YW && WX == WY)
    return false;
  if (XW && YR && WX == RY)
    return false;
  if (XR && YW && RX == WY)
    return false;
  return true;
}

struct SleepElem {
  uint32_t Id;
  BufEvent Ev;
};

bool sleepContains(const std::vector<SleepElem> &Sleep, uint32_t Id) {
  auto It = std::lower_bound(
      Sleep.begin(), Sleep.end(), Id,
      [](const SleepElem &S, uint32_t V) { return S.Id < V; });
  return It != Sleep.end() && It->Id == Id;
}

/// Mutable global machine state. Copyable: every explored edge builds the
/// child as one copy (the sequential explorers save/restore full copies
/// per edge too), which doubles as the hand-off unit for forked subtrees.
struct BufNode {
  std::vector<ThreadState> Threads;
  std::vector<uint32_t> ConfigIdv;   ///< dense config id per thread
  std::vector<StoreBuffer> Tso;      ///< Model == Tso
  std::vector<PsoBuffers> Pso;       ///< Model == Pso
  std::vector<uint64_t> ActionsDone;
  std::map<SymbolId, Value> Memory;
  std::map<SymbolId, std::pair<ThreadId, int>> Locks;
  Behaviour Beh;                     ///< behaviour so far
  std::vector<SleepElem> Sleep;      ///< sorted by Id
};

/// A transition out of a node: the event plus, for instruction steps, the
/// successor thread configuration computed by possibleStepsWithMemory.
struct Transition {
  BufEvent Ev;
  std::optional<Step> Instr;
};

class BufferedSearch {
public:
  BufferedSearch(const Program &P, const TsoLimits &Limits,
                 BufferModel Model)
      : P(P),
        Ctx(P, Limits.InputDomain.empty() ? defaultDomainFor(P)
                                          : Limits.InputDomain),
        Limits(Limits), Model(Model), Parallel(Limits.Workers != 1),
        Structs(Parallel ? 6 : 0, Limits.Shared),
        Sigs(Parallel ? 6 : 0, Limits.Shared),
        Configs(Limits.Shared),
        Forks(Limits.Workers ? Limits.Workers
                             : ThreadPool::defaultWorkerCount()) {
    if (Limits.UseReduction)
      Memo = std::make_unique<SleepMemo>(Parallel ? 6 : 0, Sigs,
                                         Limits.Shared);
  }

  std::set<Behaviour> run() {
    BufNode Root;
    size_t NT = P.threadCount();
    bool Trunc = false;
    for (ThreadId Tid = 0; Tid < NT; ++Tid) {
      bool T1 = false;
      Root.Threads.push_back(silentClosure(initialThreadState(P, Tid), Ctx,
                                           Limits.MaxSilentRun, &T1));
      Trunc |= T1;
    }
    if (Trunc)
      truncate(TruncationReason::SilentLoop);
    if (Model == BufferModel::Tso)
      Root.Tso.assign(NT, StoreBuffer{});
    else
      Root.Pso.assign(NT, PsoBuffers{});
    Root.ActionsDone.assign(NT, 0);
    try {
      // The config-id side map is the engine's first allocation; a budget
      // or injected failure can land here, before any search frame's
      // containment is on the stack.
      for (const ThreadState &S : Root.Threads)
        Root.ConfigIdv.push_back(Configs.id(S));
    } catch (...) {
      engineFault();
      finishStats();
      return std::move(Behaviours);
    }
    Behaviours.insert(Behaviour{});
    if (!Parallel) {
      // Sequential engine: an allocation failure (real or injected)
      // inside the pools unwinds to here and becomes a truncated result.
      try {
        search(Root, 0);
      } catch (...) {
        engineFault();
      }
    } else {
      if (Limits.Workers > 1)
        Owned = std::make_unique<ThreadPool>(Limits.Workers);
      Pool = Owned ? Owned.get() : &ThreadPool::shared();
      {
        ThreadPool::TaskGroup G(*Pool);
        Group = &G;
        auto R = std::make_shared<BufNode>(std::move(Root));
        G.spawn([this, R] { search(*R, 0); });
        G.wait();
        // A throwing search frame is captured by the group and the rest
        // drained; the result is incomplete, so it must read truncated.
        if (G.faulted()) {
          G.takeException();
          engineFault();
        }
      }
      Group = nullptr;
    }
    finishStats();
    return std::move(Behaviours);
  }

  ExecStats Stats;

private:
  void finishStats() {
    std::lock_guard<std::mutex> Lock(ResM);
    Stats.Visited = VisitedCount.load(std::memory_order_relaxed);
  }

  void truncate(TruncationReason R) {
    std::lock_guard<std::mutex> Lock(ResM);
    Stats.truncate(R);
  }

  /// Marks the query faulted: truncate with EngineFault and poison the
  /// shared budget so sibling engines of the same query unwind too.
  void engineFault() {
    truncate(TruncationReason::EngineFault);
    StopFlag.store(true, std::memory_order_relaxed);
    if (Limits.Shared)
      Limits.Shared->poison(TruncationReason::EngineFault);
  }

  /// Value thread \p Tid reads from \p Loc: own buffer (newest matching
  /// entry), else memory.
  Value readValue(const BufNode &N, ThreadId Tid, SymbolId Loc) const {
    if (Model == BufferModel::Tso) {
      const StoreBuffer &B = N.Tso[Tid];
      for (auto It = B.rbegin(); It != B.rend(); ++It)
        if (It->first == Loc)
          return It->second;
    } else {
      auto It = N.Pso[Tid].find(Loc);
      if (It != N.Pso[Tid].end() && !It->second.empty())
        return It->second.back();
    }
    auto MIt = N.Memory.find(Loc);
    return MIt == N.Memory.end() ? DefaultValue : MIt->second;
  }

  bool buffersEmpty(const BufNode &N, ThreadId Tid) const {
    if (Model == BufferModel::Tso)
      return N.Tso[Tid].empty();
    for (const auto &[Loc, Q] : N.Pso[Tid])
      if (!Q.empty())
        return false;
    return true;
  }

  size_t bufferedCount(const BufNode &N, ThreadId Tid) const {
    if (Model == BufferModel::Tso)
      return N.Tso[Tid].size();
    size_t Count = 0;
    for (const auto &[Loc, Q] : N.Pso[Tid])
      Count += Q.size();
    return Count;
  }

  /// Every transition out of \p N, in deterministic (kind, thread,
  /// location/step) order: drains first, then instruction steps.
  std::vector<Transition> transitionsOf(const BufNode &N) {
    std::vector<Transition> Out;
    size_t NT = N.Threads.size();
    for (ThreadId Tid = 0; Tid < NT; ++Tid) {
      if (Model == BufferModel::Tso) {
        if (N.Tso[Tid].empty())
          continue;
        BufEvent Ev;
        Ev.Tid = Tid;
        Ev.IsDrain = true;
        Ev.Loc = N.Tso[Tid].front().first;
        Ev.Val = N.Tso[Tid].front().second;
        Out.push_back({std::move(Ev), std::nullopt});
      } else {
        for (const auto &[Loc, Q] : N.Pso[Tid]) {
          if (Q.empty())
            continue;
          BufEvent Ev;
          Ev.Tid = Tid;
          Ev.IsDrain = true;
          Ev.Loc = Loc;
          Ev.Val = Q.front();
          Out.push_back({std::move(Ev), std::nullopt});
        }
      }
    }
    for (ThreadId Tid = 0; Tid < NT; ++Tid) {
      const ThreadState &S = N.Threads[Tid];
      if (S.done())
        continue;
      if (N.ActionsDone[Tid] >= Limits.MaxActionsPerThread) {
        truncate(TruncationReason::DepthCap);
        continue;
      }
      std::vector<Step> Steps = possibleStepsWithMemory(
          S, Ctx, [&](SymbolId Loc) { return readValue(N, Tid, Loc); });
      assert(!Steps.empty() && Steps[0].Act &&
             "closed thread must have pending actions");
      for (Step &PendingStep : Steps) {
        const Action &A = *PendingStep.Act;
        // Enabledness under the store-buffer machine.
        if (A.isWrite() && !A.isVolatileAccess() &&
            bufferedCount(N, Tid) >= Limits.MaxBufferedStores)
          continue; // Must drain first.
        if (A.isSynchronisation() && !buffersEmpty(N, Tid))
          continue; // Fence: drain the own buffer first.
        if (A.isLock()) {
          auto It = N.Locks.find(A.monitor());
          if (It != N.Locks.end() && It->second.second > 0 &&
              It->second.first != Tid)
            continue;
        }
        BufEvent Ev;
        Ev.Tid = Tid;
        Ev.Act = A;
        Out.push_back({std::move(Ev), std::move(PendingStep)});
      }
    }
    return Out;
  }

  /// Applies \p T to \p C (already a private copy). External actions
  /// record the extended behaviour immediately, matching the sequential
  /// explorers (which record before recursing, so memo pruning of the
  /// child never loses a behaviour).
  void applyTo(BufNode &C, const Transition &T) {
    ThreadId Tid = T.Ev.Tid;
    if (T.Ev.IsDrain) {
      // Injected drain failure: unwinds through search() into the
      // engine's containment (sequential catch or the task group).
      faultThrowInjected(FaultSite::BufferedDrain);
      if (Model == BufferModel::Tso) {
        auto Entry = C.Tso[Tid].front();
        C.Tso[Tid].pop_front();
        C.Memory[Entry.first] = Entry.second;
      } else {
        auto It = C.Pso[Tid].find(T.Ev.Loc);
        assert(It != C.Pso[Tid].end() && !It->second.empty());
        Value V = It->second.front();
        It->second.pop_front();
        if (It->second.empty())
          C.Pso[Tid].erase(It);
        C.Memory[T.Ev.Loc] = V;
      }
      return;
    }
    const Action &A = *T.Ev.Act;
    bool Trunc = false;
    C.Threads[Tid] =
        silentClosure(T.Instr->Next, Ctx, Limits.MaxSilentRun, &Trunc);
    if (Trunc)
      truncate(TruncationReason::SilentLoop);
    C.ConfigIdv[Tid] = Configs.id(C.Threads[Tid]);
    ++C.ActionsDone[Tid];
    if (A.isWrite()) {
      if (A.isVolatileAccess())
        C.Memory[A.location()] = A.value();
      else if (Model == BufferModel::Tso)
        C.Tso[Tid].emplace_back(A.location(), A.value());
      else
        C.Pso[Tid][A.location()].push_back(A.value());
    } else if (A.isLock()) {
      auto &Slot = C.Locks[A.monitor()];
      Slot = {Tid, Slot.second + 1};
    } else if (A.isUnlock()) {
      auto It = C.Locks.find(A.monitor());
      assert(It != C.Locks.end() && It->second.first == Tid);
      if (--It->second.second == 0)
        C.Locks.erase(It);
    } else if (A.isExternal()) {
      C.Beh.push_back(A.value());
      std::lock_guard<std::mutex> Lock(ResM);
      Behaviours.insert(C.Beh);
    }
  }

  /// Canonical length-prefixed word encoding of a node: injective by
  /// construction (every variable-length section carries its own count).
  /// Empty PSO queues are skipped — the machine treats an empty queue and
  /// an absent one identically, so merging them only tightens the memo.
  void encodeState(const BufNode &N, std::vector<uint64_t> &Out) const {
    Out.clear();
    size_t NT = N.Threads.size();
    Out.push_back(TagState | NT);
    for (size_t Ti = 0; Ti < NT; ++Ti) {
      Out.push_back(N.ConfigIdv[Ti]);
      Out.push_back(N.ActionsDone[Ti]);
      if (Model == BufferModel::Tso) {
        const StoreBuffer &B = N.Tso[Ti];
        Out.push_back(B.size());
        for (const auto &[Loc, V] : B)
          Out.push_back((static_cast<uint64_t>(Loc) << 32) |
                        static_cast<uint32_t>(V));
      } else {
        size_t NonEmpty = 0;
        for (const auto &[Loc, Q] : N.Pso[Ti])
          if (!Q.empty())
            ++NonEmpty;
        Out.push_back(NonEmpty);
        for (const auto &[Loc, Q] : N.Pso[Ti]) {
          if (Q.empty())
            continue;
          Out.push_back((static_cast<uint64_t>(Loc) << 32) | Q.size());
          for (Value V : Q)
            Out.push_back(static_cast<uint32_t>(V));
        }
      }
    }
    Out.push_back(N.Memory.size());
    for (const auto &[Loc, V] : N.Memory)
      Out.push_back((static_cast<uint64_t>(Loc) << 32) |
                    static_cast<uint32_t>(V));
    size_t NumLocks = 0;
    for (const auto &[Mon, Slot] : N.Locks)
      if (Slot.second > 0)
        ++NumLocks;
    Out.push_back(NumLocks);
    for (const auto &[Mon, Slot] : N.Locks)
      if (Slot.second > 0) {
        Out.push_back((static_cast<uint64_t>(Mon) << 32) |
                      static_cast<uint32_t>(Slot.first));
        Out.push_back(static_cast<uint64_t>(Slot.second));
      }
    Out.push_back(N.Beh.size());
    for (Value V : N.Beh)
      Out.push_back(static_cast<uint32_t>(V));
  }

  uint32_t internEvent(const BufEvent &Ev) {
    uint64_t Hi = TagEvent | Ev.Tid;
    uint64_t Lo;
    if (Ev.IsDrain) {
      Hi |= DrainBit;
      Lo = (static_cast<uint64_t>(Ev.Loc) << 32) |
           static_cast<uint32_t>(Ev.Val);
    } else {
      Lo = actionWord(*Ev.Act);
    }
    uint64_t W[2] = {Hi, Lo};
    return Structs.intern(W, 2).Id;
  }

  void search(BufNode &N, unsigned Depth) {
    if (StopFlag.load(std::memory_order_relaxed))
      return;
    uint64_t V = VisitedCount.fetch_add(1, std::memory_order_relaxed) + 1;
    if (V > Limits.MaxVisited) {
      truncate(TruncationReason::StateCap);
      return;
    }
    if (Limits.Shared && !Limits.Shared->charge()) {
      truncate(Limits.Shared->reason());
      return;
    }
    // Intern the state; prune revisits (subset rule under POR).
    std::vector<uint64_t> Enc;
    encodeState(N, Enc);
    faultThrowBadAlloc(FaultSite::BufferedIntern);
    InternPool::Result State = Structs.intern(Enc.data(), Enc.size());
    if (Memo) {
      Enc.clear();
      for (const SleepElem &S : N.Sleep)
        Enc.push_back(S.Id);
      InternPool::Result Sig = Sigs.intern(Enc.data(), Enc.size());
      if (!Memo->shouldExplore(State.Id, Sig.Id))
        return;
    } else if (!State.Inserted) {
      return;
    }
    std::vector<Transition> Trans = transitionsOf(N);
    std::vector<SleepElem> Done; // earlier explored siblings
    unsigned Degree = 0;
    for (const Transition &T : Trans) {
      if (StopFlag.load(std::memory_order_relaxed))
        return;
      uint32_t EvId = 0;
      if (Memo) {
        EvId = internEvent(T.Ev);
        // Asleep: the sibling branch that explored this event covers
        // every schedule that starts with it here.
        if (sleepContains(N.Sleep, EvId))
          continue;
      }
      ++Degree;
      std::vector<SleepElem> ChildSleep;
      if (Memo) {
        for (const SleepElem &S : N.Sleep)
          if (independentEvents(S.Ev, T.Ev))
            ChildSleep.push_back(S);
        for (const SleepElem &S : Done)
          if (independentEvents(S.Ev, T.Ev))
            ChildSleep.push_back(S);
        std::sort(ChildSleep.begin(), ChildSleep.end(),
                  [](const SleepElem &X, const SleepElem &Y) {
                    return X.Id < Y.Id;
                  });
      }
      if (Group && Forks.shouldFork(*Pool, Depth)) {
        // Injected fork failure: fires before the subtree is handed off,
        // so the child is neither run locally nor leaked.
        faultThrowInjected(FaultSite::BufferedFork);
        // Hand the subtree to an idle worker: one node copy.
        auto Child = std::make_shared<BufNode>(N);
        Child->Sleep = std::move(ChildSleep);
        applyTo(*Child, T);
        Group->spawn([this, Child, Depth] { search(*Child, Depth + 1); });
      } else {
        BufNode Child = N;
        Child.Sleep = std::move(ChildSleep);
        applyTo(Child, T);
        search(Child, Depth + 1);
      }
      if (Memo)
        Done.push_back({EvId, T.Ev});
    }
    if (Group)
      Forks.observe(Degree, *Pool);
  }

  const Program &P;
  LangContext Ctx;
  TsoLimits Limits;
  BufferModel Model;
  bool Parallel;
  InternPool Structs; ///< states and event ids
  InternPool Sigs;    ///< sorted event-id sleep signatures
  ConfigIds Configs;
  ForkPolicy Forks;
  std::unique_ptr<SleepMemo> Memo;
  std::unique_ptr<ThreadPool> Owned;
  ThreadPool *Pool = nullptr;
  ThreadPool::TaskGroup *Group = nullptr;
  std::atomic<uint64_t> VisitedCount{0};
  std::atomic<bool> StopFlag{false};
  std::mutex ResM; ///< guards Behaviours and Stats
  std::set<Behaviour> Behaviours;
};

} // namespace

std::set<Behaviour> tracesafe::bufferedBehaviours(const Program &P,
                                                  const TsoLimits &Limits,
                                                  BufferModel Model,
                                                  ExecStats *Stats) {
  BufferedSearch S(P, Limits, Model);
  std::set<Behaviour> Out = S.run();
  if (Stats)
    *Stats = S.Stats;
  return Out;
}
