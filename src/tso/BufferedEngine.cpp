#include "tso/BufferedEngine.h"

#include "lang/Explore.h"
#include "support/Failure.h"
#include "support/ForkPolicy.h"
#include "support/Intern.h"
#include "support/ThreadPool.h"
#include "trace/ActionWord.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

using namespace tracesafe;

//===----------------------------------------------------------------------===//
// Engine structure
//
// Mirrors trace/Enumerate.cpp's ReducedQuery, transplanted to machine
// states. Thread configurations (continuation + registers + monitor
// depths) are not word-encodable, so they get dense ids from a
// mutex-guarded side map; everything else of a state — buffers, memory,
// locks, actions-done counters and the behaviour tail — is encoded as a
// length-prefixed span of words and interned. The memo granularity is
// exactly the sequential explorers' (State, ActionsDone, BehSoFar) tuple.
//
// Transitions are of two kinds:
//  - drain(T) / drain(T, L): commit the oldest entry of a (per-location,
//    for PSO) store buffer to memory;
//  - instruction steps from possibleStepsWithMemory, with the machine's
//    enabledness rules (buffer cap for non-volatile writes; empty own
//    buffer for synchronisation actions; monitor mutual exclusion).
//
// Independence relation for the sleep sets. Every event touches at most
// one shared-memory location:
//  - drain(T, L) *writes* memory at L;
//  - a read of L (any volatility, even when it would forward from the own
//    buffer) *reads* memory at L — conservative, but forwarding depends
//    on the own buffer only, and same-thread pairs are always dependent;
//  - a volatile write of L *writes* memory at L;
//  - a non-volatile write has NO memory footprint: it only appends to the
//    issuing thread's buffer.
// Two events of different threads are dependent iff both are external
// (behaviour order is observable), they lock/unlock the same monitor, or
// their memory footprints overlap on a location with a write on either
// side. Everything else commutes and neither side can enable or disable
// the other: in particular cross-thread drains to different locations
// commute, and a drain commutes with another thread's fence (a fence only
// requires the *own* buffer to be empty).
//===----------------------------------------------------------------------===//

namespace {

/// Dense ids for thread configurations. std::map keeps references stable
/// and needs only ThreadState's operator<=>; the search holds the lock
/// for one tree comparison path per lookup, which profiles far below the
/// interning and step-generation costs.
class ConfigIds {
public:
  explicit ConfigIds(Budget *Shared) : Shared(Shared) {}

  uint32_t id(const ThreadState &S) {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] =
        Map.try_emplace(S, static_cast<uint32_t>(Map.size()));
    if (Inserted) {
      ById.push_back(&It->first);
      if (Shared)
        Shared->chargeBytes(sizeof(ThreadState) + 8 * sizeof(void *));
    }
    return It->second;
  }

  /// Canonical configuration for a dense id. Map nodes never move or get
  /// erased, so the reference stays valid after the lock is dropped.
  const ThreadState &state(uint32_t Id) {
    std::lock_guard<std::mutex> Lock(M);
    return *ById[Id];
  }

private:
  std::mutex M;
  std::map<ThreadState, uint32_t> Map;
  std::vector<const ThreadState *> ById; ///< id -> map key
  Budget *Shared;
};

/// One machine transition, as the sleep sets see it.
struct BufEvent {
  ThreadId Tid = 0;
  bool IsDrain = false;
  SymbolId Loc = 0;           ///< drained location (IsDrain only)
  Value Val = 0;              ///< drained value (IsDrain only)
  std::optional<Action> Act;  ///< instruction action (!IsDrain)
};

/// Memory-write footprint of an event (see file comment).
bool memWrite(const BufEvent &E, SymbolId &Loc) {
  if (E.IsDrain) {
    Loc = E.Loc;
    return true;
  }
  if (E.Act->isWrite() && E.Act->isVolatileAccess()) {
    Loc = E.Act->location();
    return true;
  }
  return false;
}

/// Memory-read footprint of an event.
bool memRead(const BufEvent &E, SymbolId &Loc) {
  if (!E.IsDrain && E.Act->isRead()) {
    Loc = E.Act->location();
    return true;
  }
  return false;
}

bool independentEvents(const BufEvent &X, const BufEvent &Y) {
  if (X.Tid == Y.Tid)
    return false;
  if (!X.IsDrain && !Y.IsDrain) {
    const Action &A = *X.Act;
    const Action &B = *Y.Act;
    if (A.isExternal() && B.isExternal())
      return false;
    if ((A.isLock() || A.isUnlock()) && (B.isLock() || B.isUnlock()) &&
        A.monitor() == B.monitor())
      return false;
  }
  SymbolId WX = 0, WY = 0, RX = 0, RY = 0;
  bool XW = memWrite(X, WX), YW = memWrite(Y, WY);
  bool XR = memRead(X, RX), YR = memRead(Y, RY);
  if (XW && YW && WX == WY)
    return false;
  if (XW && YR && WX == RY)
    return false;
  if (XR && YW && RX == WY)
    return false;
  return true;
}

struct SleepElem {
  uint32_t Id;
  BufEvent Ev;
};

bool sleepContains(const std::vector<SleepElem> &Sleep, uint32_t Id) {
  auto It = std::lower_bound(
      Sleep.begin(), Sleep.end(), Id,
      [](const SleepElem &S, uint32_t V) { return S.Id < V; });
  return It != Sleep.end() && It->Id == Id;
}

/// Mutable global machine state, struct-of-arrays. The sequential
/// descent mutates one node in place (apply, recurse, undo); a full copy
/// is made only when a subtree is handed to another worker — so the
/// layout is built to make that hand-off copy a handful of contiguous
/// memcpys instead of NT maps and deques of pointers.
///
/// Store buffers live in one fixed-stride array: thread Tid's buffer is
/// Buf[Tid*Cap .. Tid*Cap+BufLen[Tid]), each entry a packed
/// (Loc << 32 | Value) word in FIFO *insertion* order. Occupancy never
/// exceeds Cap = min(MaxBufferedStores, MaxActionsPerThread): the
/// enabledness rule refuses further non-volatile writes at the cap, and
/// a thread cannot buffer more stores than actions it has taken. The one
/// array serves both models — TSO drains the front entry, PSO drains the
/// first entry of a given location (per-location FIFO order is exactly
/// insertion order restricted to that location), and store-to-load
/// forwarding is the last matching entry under either model.
///
/// Memory and locks are flat vectors sorted by symbol, mirroring the old
/// std::map iteration order word for word in the state encoding — the
/// memo granularity is unchanged.
struct BufNode {
  std::vector<uint32_t> ConfigIdv; ///< dense config id per thread
  std::vector<uint64_t> Buf;       ///< NT*Cap packed buffer entries
  std::vector<uint32_t> BufLen;    ///< live entries per thread
  std::vector<uint64_t> ActionsDone;
  std::vector<std::pair<SymbolId, Value>> Memory; ///< sorted by location
  std::vector<std::pair<SymbolId, std::pair<ThreadId, int>>>
      Locks;                    ///< sorted by monitor; depths always > 0
  Behaviour Beh;                ///< behaviour so far
  std::vector<SleepElem> Sleep; ///< sorted by Id
};

constexpr uint64_t packEntry(SymbolId Loc, Value V) {
  return (static_cast<uint64_t>(Loc) << 32) | static_cast<uint32_t>(V);
}
constexpr SymbolId entryLoc(uint64_t E) {
  return static_cast<SymbolId>(E >> 32);
}
constexpr Value entryVal(uint64_t E) {
  return static_cast<Value>(static_cast<uint32_t>(E));
}

/// A transition out of a node: the event plus, for instruction steps, the
/// dense id of the silently-closed successor thread configuration.
struct Transition {
  BufEvent Ev;
  uint32_t NextCfg = 0;     ///< closed successor config (instr steps)
  bool SilentTrunc = false; ///< the closure hit MaxSilentRun
};

/// An action-boundary successor of a thread configuration with the
/// silent closure already applied: the emitted action plus the closed
/// successor's dense id.
struct CachedStep {
  Action Act;
  uint32_t NextCfg;
  bool Trunc; ///< closure hit MaxSilentRun
};

/// Lazily built per-configuration step table. Configurations repeat
/// across the whole search (that is why they get dense ids), and their
/// successors depend on nothing outside the configuration itself — except
/// a load, whose single successor is keyed by the value read. Caching by
/// id turns the per-node step generation (state copies, silent closures,
/// config-map lookups) into table lookups.
struct CfgSteps {
  bool Known = false;
  bool Done = false;
  bool IsLoad = false;
  SymbolId LoadLoc = 0;
  std::vector<CachedStep> Fixed;                     ///< !IsLoad steps
  std::vector<std::pair<Value, CachedStep>> ByValue; ///< IsLoad steps
};

/// Per-task charging and scratch context (same shape as the SC engine's):
/// visit counting and budget charging go through block reservations so
/// the shared atomics stop being a contention point, and the encoding
/// buffers are reused across the task's whole subtree.
struct TaskCtx {
  Budget::Scope Charge;
  CounterScope Visits;
  std::vector<uint64_t> Enc, SigEnc;
  /// Direct-mapped (Hi, Lo) -> interned-id cache for event words. A
  /// subtree re-derives the same few dozen events at every node, so most
  /// lookups hit here and skip the pool probe entirely; a collision just
  /// falls through to the pool and takes over the slot.
  struct EvSlot {
    uint64_t Hi = 0, Lo = 0;
    uint64_t IdPlus1 = 0; ///< 0 = empty
  };
  std::vector<EvSlot> EvCache;
  /// Per-task config-id -> step table (see CfgSteps). Task-local, so no
  /// synchronisation: a worker derives at most one table per
  /// configuration it ever sees.
  std::vector<CfgSteps> Cfg;
  TaskCtx(Budget *Shared, std::atomic<uint64_t> &Counter)
      : Charge(Shared), Visits(Counter), EvCache(256) {}
};

class BufferedSearch {
public:
  BufferedSearch(const Program &P, const TsoLimits &Limits,
                 BufferModel Model)
      : P(P),
        Ctx(P, Limits.InputDomain.empty() ? defaultDomainFor(P)
                                          : Limits.InputDomain),
        Limits(Limits), Model(Model),
        Cap(std::max<size_t>(
            1, std::min(Limits.MaxBufferedStores,
                        Limits.MaxActionsPerThread))),
        Parallel(Limits.Workers != 1),
        Structs(Parallel ? 6 : 0, Limits.Shared),
        Sigs(Parallel ? 6 : 0, Limits.Shared),
        Configs(Limits.Shared),
        Forks(Limits.Workers ? Limits.Workers
                             : ThreadPool::defaultWorkerCount()) {
    if (Limits.UseReduction)
      Memo = std::make_unique<SleepMemo>(Parallel ? 6 : 0, Sigs,
                                         Limits.Shared);
  }

  std::set<Behaviour> run() {
    BufNode Root;
    size_t NT = P.threadCount();
    bool Trunc = false;
    std::vector<ThreadState> Init;
    for (ThreadId Tid = 0; Tid < NT; ++Tid) {
      bool T1 = false;
      Init.push_back(silentClosure(initialThreadState(P, Tid), Ctx,
                                   Limits.MaxSilentRun, &T1));
      Trunc |= T1;
    }
    if (Trunc)
      truncate(TruncationReason::SilentLoop);
    Root.Buf.assign(NT * Cap, 0);
    Root.BufLen.assign(NT, 0);
    Root.ActionsDone.assign(NT, 0);
    try {
      // The config-id side map is the engine's first allocation; a budget
      // or injected failure can land here, before any search frame's
      // containment is on the stack.
      for (const ThreadState &S : Init)
        Root.ConfigIdv.push_back(Configs.id(S));
    } catch (...) {
      engineFault();
      finishStats();
      return std::move(Behaviours);
    }
    Behaviours.insert(Behaviour{});
    if (!Parallel) {
      // Sequential engine: an allocation failure (real or injected)
      // inside the pools unwinds to here and becomes a truncated result.
      try {
        TaskCtx RootCtx(Limits.Shared, VisitedCount);
        search(Root, RootCtx, 0);
      } catch (...) {
        engineFault();
      }
    } else {
      if (Limits.Workers > 1)
        Owned = std::make_unique<ThreadPool>(Limits.Workers);
      Pool = Owned ? Owned.get() : &ThreadPool::shared();
      {
        ThreadPool::TaskGroup G(*Pool);
        Group = &G;
        auto R = std::make_shared<BufNode>(std::move(Root));
        G.spawn([this, R] {
          TaskCtx RootCtx(Limits.Shared, VisitedCount);
          search(*R, RootCtx, 0);
        });
        G.wait();
        // A throwing search frame is captured by the group and the rest
        // drained; the result is incomplete, so it must read truncated.
        if (G.faulted()) {
          G.takeException();
          engineFault();
        }
      }
      Group = nullptr;
    }
    finishStats();
    return std::move(Behaviours);
  }

  ExecStats Stats;

private:
  void finishStats() {
    std::lock_guard<std::mutex> Lock(ResM);
    Stats.Visited = VisitedCount.load(std::memory_order_relaxed);
  }

  void truncate(TruncationReason R) {
    std::lock_guard<std::mutex> Lock(ResM);
    Stats.truncate(R);
  }

  /// Marks the query faulted: truncate with EngineFault and poison the
  /// shared budget so sibling engines of the same query unwind too.
  void engineFault() {
    truncate(TruncationReason::EngineFault);
    StopFlag.store(true, std::memory_order_relaxed);
    if (Limits.Shared)
      Limits.Shared->poison(TruncationReason::EngineFault);
  }

  const uint64_t *bufOf(const BufNode &N, ThreadId Tid) const {
    return N.Buf.data() + static_cast<size_t>(Tid) * Cap;
  }
  uint64_t *bufOf(BufNode &N, ThreadId Tid) const {
    return N.Buf.data() + static_cast<size_t>(Tid) * Cap;
  }

  /// Value in memory at \p Loc (sorted flat vector, DefaultValue when
  /// never written).
  static Value memValue(const BufNode &N, SymbolId Loc) {
    auto It = std::lower_bound(
        N.Memory.begin(), N.Memory.end(), Loc,
        [](const std::pair<SymbolId, Value> &E, SymbolId L) {
          return E.first < L;
        });
    return It != N.Memory.end() && It->first == Loc ? It->second
                                                    : DefaultValue;
  }

  /// One-edge undo record for the in-place descent: exactly what
  /// undoInPlace needs to restore the parent node after the child
  /// subtree returns.
  struct UndoRec {
    ThreadId Tid = 0;
    bool IsDrain = false;
    uint32_t DrainIdx = 0;   ///< buffer position the drained entry left
    uint64_t DrainEntry = 0; ///< the removed packed entry
    uint32_t OldCfg = 0;     ///< pre-step configuration id (instr only)
    enum class Mem : uint8_t { None, Overwrote, Inserted };
    Mem MemKind = Mem::None;
    SymbolId MemLoc = 0;
    Value MemOld = 0;
    bool PoppedStore = false; ///< non-volatile write appended one entry
    enum class Lock : uint8_t {
      None,
      Relocked,    ///< depth bumped on an already-owned monitor
      LockedNew,   ///< fresh monitor entry inserted
      Unlocked,    ///< depth decremented, entry kept
      UnlockedGone ///< depth hit zero, entry erased
    };
    Lock LockKind = Lock::None;
    SymbolId Mon = 0;
    bool PoppedBeh = false;
  };

  static void memStore(BufNode &N, SymbolId Loc, Value V, UndoRec &U) {
    auto It = std::lower_bound(
        N.Memory.begin(), N.Memory.end(), Loc,
        [](const std::pair<SymbolId, Value> &E, SymbolId L) {
          return E.first < L;
        });
    U.MemLoc = Loc;
    if (It != N.Memory.end() && It->first == Loc) {
      U.MemKind = UndoRec::Mem::Overwrote;
      U.MemOld = It->second;
      It->second = V;
    } else {
      U.MemKind = UndoRec::Mem::Inserted;
      N.Memory.insert(It, {Loc, V});
    }
  }

  static void memUndo(BufNode &N, const UndoRec &U) {
    if (U.MemKind == UndoRec::Mem::None)
      return;
    auto It = std::lower_bound(
        N.Memory.begin(), N.Memory.end(), U.MemLoc,
        [](const std::pair<SymbolId, Value> &E, SymbolId L) {
          return E.first < L;
        });
    if (U.MemKind == UndoRec::Mem::Overwrote)
      It->second = U.MemOld;
    else
      N.Memory.erase(It);
  }

  static std::vector<std::pair<SymbolId, std::pair<ThreadId, int>>>::
      const_iterator
      lockFind(const BufNode &N, SymbolId Mon) {
    return std::lower_bound(
        N.Locks.begin(), N.Locks.end(), Mon,
        [](const std::pair<SymbolId, std::pair<ThreadId, int>> &E,
           SymbolId M) { return E.first < M; });
  }
  static std::vector<std::pair<SymbolId, std::pair<ThreadId, int>>>::iterator
  lockFind(BufNode &N, SymbolId Mon) {
    return std::lower_bound(
        N.Locks.begin(), N.Locks.end(), Mon,
        [](const std::pair<SymbolId, std::pair<ThreadId, int>> &E,
           SymbolId M) { return E.first < M; });
  }

  /// Value thread \p Tid reads from \p Loc: own buffer (newest matching
  /// entry — under PSO that is the back of Loc's queue, i.e. the last
  /// inserted entry with that location), else memory.
  Value readValue(const BufNode &N, ThreadId Tid, SymbolId Loc) const {
    const uint64_t *B = bufOf(N, Tid);
    for (uint32_t I = N.BufLen[Tid]; I-- > 0;)
      if (entryLoc(B[I]) == Loc)
        return entryVal(B[I]);
    return memValue(N, Loc);
  }

  bool buffersEmpty(const BufNode &N, ThreadId Tid) const {
    return N.BufLen[Tid] == 0;
  }

  size_t bufferedCount(const BufNode &N, ThreadId Tid) const {
    return N.BufLen[Tid];
  }

  /// The step table for configuration \p C, built on first use.
  CfgSteps &cfgSteps(TaskCtx &TC, uint32_t C) {
    if (C >= TC.Cfg.size())
      TC.Cfg.resize(std::max<size_t>(C + 1, TC.Cfg.size() * 2));
    CfgSteps &E = TC.Cfg[C];
    if (E.Known)
      return E;
    const ThreadState &S = Configs.state(C);
    E.Done = S.done();
    if (!E.Done && S.Cont.back()->kind() == StmtKind::Load) {
      E.IsLoad = true;
      E.LoadLoc = cast<LoadStmt>(*S.Cont.back()).loc();
    } else if (!E.Done) {
      // Everything except a load steps without consulting memory (the
      // callback is never invoked).
      std::vector<Step> Steps = possibleStepsWithMemory(
          S, Ctx, [](SymbolId) { return DefaultValue; });
      assert(!Steps.empty() && Steps[0].Act &&
             "closed thread must have pending actions");
      E.Fixed.reserve(Steps.size());
      for (Step &St : Steps)
        E.Fixed.push_back(closeStep(St));
    }
    E.Known = true;
    return E;
  }

  /// Applies the silent closure to a raw step's successor and interns it.
  CachedStep closeStep(Step &St) {
    bool Trunc = false;
    ThreadState Next = silentClosure(std::move(St.Next), Ctx,
                                     Limits.MaxSilentRun, &Trunc);
    return {*St.Act, Configs.id(Next), Trunc};
  }

  /// The unique step of load configuration \p C reading value \p V.
  const CachedStep &loadStep(CfgSteps &E, uint32_t C, Value V) {
    for (const auto &[Val, CS] : E.ByValue)
      if (Val == V)
        return CS;
    std::vector<Step> Steps = possibleStepsWithMemory(
        Configs.state(C), Ctx, [&](SymbolId) { return V; });
    assert(Steps.size() == 1 && Steps[0].Act &&
           "a load has exactly one successor per value");
    E.ByValue.push_back({V, closeStep(Steps[0])});
    return E.ByValue.back().second;
  }

  /// Every transition out of \p N, in deterministic (kind, thread,
  /// location/step) order: drains first, then instruction steps.
  std::vector<Transition> transitionsOf(const BufNode &N, TaskCtx &TC) {
    std::vector<Transition> Out;
    size_t NT = N.ConfigIdv.size();
    Out.reserve(NT * 2);
    for (ThreadId Tid = 0; Tid < NT; ++Tid) {
      const uint64_t *B = bufOf(N, Tid);
      uint32_t Len = N.BufLen[Tid];
      if (Model == BufferModel::Tso) {
        if (Len == 0)
          continue;
        BufEvent Ev;
        Ev.Tid = Tid;
        Ev.IsDrain = true;
        Ev.Loc = entryLoc(B[0]);
        Ev.Val = entryVal(B[0]);
        Out.push_back({std::move(Ev)});
      } else {
        // One drain per distinct buffered location, ascending; the front
        // of a location's queue is its first entry in insertion order.
        std::pair<SymbolId, Value> FrontsBuf[64];
        std::vector<std::pair<SymbolId, Value>> FrontsHeap;
        std::pair<SymbolId, Value> *Fronts = FrontsBuf;
        if (Len > 64) {
          FrontsHeap.resize(Len);
          Fronts = FrontsHeap.data();
        }
        size_t NumFronts = 0;
        for (uint32_t I = 0; I < Len; ++I) {
          SymbolId Loc = entryLoc(B[I]);
          bool Seen = false;
          for (size_t F = 0; F < NumFronts; ++F)
            if (Fronts[F].first == Loc) {
              Seen = true;
              break;
            }
          if (!Seen)
            Fronts[NumFronts++] = {Loc, entryVal(B[I])};
        }
        std::sort(Fronts, Fronts + NumFronts);
        for (size_t F = 0; F < NumFronts; ++F) {
          BufEvent Ev;
          Ev.Tid = Tid;
          Ev.IsDrain = true;
          Ev.Loc = Fronts[F].first;
          Ev.Val = Fronts[F].second;
          Out.push_back({std::move(Ev)});
        }
      }
    }
    for (ThreadId Tid = 0; Tid < NT; ++Tid) {
      CfgSteps &E = cfgSteps(TC, N.ConfigIdv[Tid]);
      if (E.Done)
        continue;
      if (N.ActionsDone[Tid] >= Limits.MaxActionsPerThread) {
        truncate(TruncationReason::DepthCap);
        continue;
      }
      const CachedStep *One = nullptr;
      if (E.IsLoad)
        One = &loadStep(E, N.ConfigIdv[Tid], readValue(N, Tid, E.LoadLoc));
      size_t Count = E.IsLoad ? 1 : E.Fixed.size();
      for (size_t K = 0; K < Count; ++K) {
        const CachedStep &CS = E.IsLoad ? *One : E.Fixed[K];
        const Action &A = CS.Act;
        // Enabledness under the store-buffer machine.
        if (A.isWrite() && !A.isVolatileAccess() &&
            bufferedCount(N, Tid) >= Limits.MaxBufferedStores)
          continue; // Must drain first.
        if (A.isSynchronisation() && !buffersEmpty(N, Tid))
          continue; // Fence: drain the own buffer first.
        if (A.isLock()) {
          auto It = lockFind(N, A.monitor());
          if (It != N.Locks.end() && It->first == A.monitor() &&
              It->second.second > 0 && It->second.first != Tid)
            continue;
        }
        BufEvent Ev;
        Ev.Tid = Tid;
        Ev.Act = A;
        Out.push_back({std::move(Ev), CS.NextCfg, CS.Trunc});
      }
    }
    return Out;
  }

  /// Applies \p T to \p N, recording in \p U what undoInPlace needs to
  /// restore \p N exactly. External actions record the extended behaviour
  /// immediately, matching the sequential explorers (which record before
  /// recursing, so memo pruning of the child never loses a behaviour).
  void applyInPlace(BufNode &N, const Transition &T, UndoRec &U) {
    ThreadId Tid = T.Ev.Tid;
    U.Tid = Tid;
    if (T.Ev.IsDrain) {
      // Injected drain failure: fires before any mutation and unwinds
      // through search() into the engine's containment (sequential catch
      // or the task group), so the node never needs a partial undo.
      faultThrowInjected(FaultSite::BufferedDrain);
      U.IsDrain = true;
      uint64_t *B = bufOf(N, Tid);
      uint32_t Len = N.BufLen[Tid];
      // TSO commits the front entry; PSO commits the first entry of the
      // drained location. Either way: remove one entry, shift the rest.
      uint32_t I = 0;
      if (Model == BufferModel::Pso)
        while (I < Len && entryLoc(B[I]) != T.Ev.Loc)
          ++I;
      assert(I < Len && entryLoc(B[I]) == T.Ev.Loc);
      U.DrainIdx = I;
      U.DrainEntry = B[I];
      Value V = entryVal(B[I]);
      std::copy(B + I + 1, B + Len, B + I);
      N.BufLen[Tid] = Len - 1;
      memStore(N, T.Ev.Loc, V, U);
      return;
    }
    const Action &A = *T.Ev.Act;
    if (T.SilentTrunc)
      truncate(TruncationReason::SilentLoop);
    U.OldCfg = N.ConfigIdv[Tid];
    N.ConfigIdv[Tid] = T.NextCfg;
    ++N.ActionsDone[Tid];
    if (A.isWrite()) {
      if (A.isVolatileAccess()) {
        memStore(N, A.location(), A.value(), U);
      } else {
        assert(N.BufLen[Tid] < Cap && "enabledness enforces the cap");
        bufOf(N, Tid)[N.BufLen[Tid]++] = packEntry(A.location(), A.value());
        U.PoppedStore = true;
      }
    } else if (A.isLock()) {
      U.Mon = A.monitor();
      auto It = lockFind(N, U.Mon);
      if (It != N.Locks.end() && It->first == U.Mon) {
        // Enabledness admitted the lock, so an existing entry is already
        // owned by Tid (depths in Locks are always > 0).
        It->second = {Tid, It->second.second + 1};
        U.LockKind = UndoRec::Lock::Relocked;
      } else {
        N.Locks.insert(It, {U.Mon, {Tid, 1}});
        U.LockKind = UndoRec::Lock::LockedNew;
      }
    } else if (A.isUnlock()) {
      U.Mon = A.monitor();
      auto It = lockFind(N, U.Mon);
      assert(It != N.Locks.end() && It->first == U.Mon &&
             It->second.first == Tid);
      if (--It->second.second == 0) {
        N.Locks.erase(It);
        U.LockKind = UndoRec::Lock::UnlockedGone;
      } else {
        U.LockKind = UndoRec::Lock::Unlocked;
      }
    } else if (A.isExternal()) {
      N.Beh.push_back(A.value());
      U.PoppedBeh = true;
      std::lock_guard<std::mutex> Lock(ResM);
      Behaviours.insert(N.Beh);
    }
  }

  /// Inverse of applyInPlace.
  void undoInPlace(BufNode &N, UndoRec &U) {
    ThreadId Tid = U.Tid;
    if (U.IsDrain) {
      uint64_t *B = bufOf(N, Tid);
      uint32_t Len = N.BufLen[Tid];
      std::copy_backward(B + U.DrainIdx, B + Len, B + Len + 1);
      B[U.DrainIdx] = U.DrainEntry;
      N.BufLen[Tid] = Len + 1;
      memUndo(N, U);
      return;
    }
    --N.ActionsDone[Tid];
    N.ConfigIdv[Tid] = U.OldCfg;
    if (U.PoppedStore)
      --N.BufLen[Tid];
    memUndo(N, U);
    switch (U.LockKind) {
    case UndoRec::Lock::None:
      break;
    case UndoRec::Lock::Relocked:
      lockFind(N, U.Mon)->second.second -= 1;
      break;
    case UndoRec::Lock::LockedNew:
      N.Locks.erase(lockFind(N, U.Mon));
      break;
    case UndoRec::Lock::Unlocked:
      lockFind(N, U.Mon)->second.second += 1;
      break;
    case UndoRec::Lock::UnlockedGone:
      N.Locks.insert(lockFind(N, U.Mon), {U.Mon, {Tid, 1}});
      break;
    }
    if (U.PoppedBeh)
      N.Beh.pop_back();
  }

  /// Applies \p T to \p C (a private copy on the fork hand-off path);
  /// the undo record is discarded.
  void applyTo(BufNode &C, const Transition &T) {
    UndoRec U;
    applyInPlace(C, T, U);
  }

  /// Canonical length-prefixed word encoding of a node: injective by
  /// construction (every variable-length section carries its own count).
  /// Empty PSO queues are skipped — the machine treats an empty queue and
  /// an absent one identically, so merging them only tightens the memo.
  void encodeState(const BufNode &N, std::vector<uint64_t> &Out) const {
    Out.clear();
    size_t NT = N.ConfigIdv.size();
    Out.push_back(TagState | NT);
    for (size_t Ti = 0; Ti < NT; ++Ti) {
      Out.push_back(N.ConfigIdv[Ti]);
      Out.push_back(N.ActionsDone[Ti]);
      const uint64_t *B = bufOf(N, static_cast<ThreadId>(Ti));
      uint32_t Len = N.BufLen[Ti];
      if (Model == BufferModel::Tso) {
        Out.push_back(Len);
        Out.insert(Out.end(), B, B + Len);
      } else {
        // Per-location queues in ascending location order, each queue
        // front-to-back — word for word the old std::map encoding (the
        // canonical order is what merges nodes whose cross-location
        // insertion interleavings differ but whose queues agree).
        SymbolId Locs[64];
        std::vector<SymbolId> LocsHeap;
        SymbolId *L = Locs;
        size_t NumLocs = 0;
        if (Len > 64) {
          LocsHeap.resize(Len);
          L = LocsHeap.data();
        }
        for (uint32_t I = 0; I < Len; ++I) {
          SymbolId Loc = entryLoc(B[I]);
          bool Seen = false;
          for (size_t F = 0; F < NumLocs; ++F)
            if (L[F] == Loc) {
              Seen = true;
              break;
            }
          if (!Seen)
            L[NumLocs++] = Loc;
        }
        std::sort(L, L + NumLocs);
        Out.push_back(NumLocs);
        for (size_t F = 0; F < NumLocs; ++F) {
          size_t HeadSlot = Out.size();
          Out.push_back(0);
          uint64_t QLen = 0;
          for (uint32_t I = 0; I < Len; ++I)
            if (entryLoc(B[I]) == L[F]) {
              Out.push_back(static_cast<uint32_t>(entryVal(B[I])));
              ++QLen;
            }
          Out[HeadSlot] = (static_cast<uint64_t>(L[F]) << 32) | QLen;
        }
      }
    }
    Out.push_back(N.Memory.size());
    for (const auto &[Loc, V] : N.Memory)
      Out.push_back(packEntry(Loc, V));
    size_t NumLocks = 0;
    for (const auto &[Mon, Slot] : N.Locks)
      if (Slot.second > 0)
        ++NumLocks;
    Out.push_back(NumLocks);
    for (const auto &[Mon, Slot] : N.Locks)
      if (Slot.second > 0) {
        Out.push_back((static_cast<uint64_t>(Mon) << 32) |
                      static_cast<uint32_t>(Slot.first));
        Out.push_back(static_cast<uint64_t>(Slot.second));
      }
    Out.push_back(N.Beh.size());
    for (Value V : N.Beh)
      Out.push_back(static_cast<uint32_t>(V));
  }

  uint32_t internEvent(const BufEvent &Ev, TaskCtx &TC) {
    uint64_t Hi = TagEvent | Ev.Tid;
    uint64_t Lo;
    if (Ev.IsDrain) {
      Hi |= DrainBit;
      Lo = (static_cast<uint64_t>(Ev.Loc) << 32) |
           static_cast<uint32_t>(Ev.Val);
    } else {
      Lo = actionWord(*Ev.Act);
    }
    size_t Slot = ((Hi * 0x9E3779B97F4A7C15ULL) ^
                   (Lo * 0xC2B2AE3D27D4EB4FULL)) >>
                  56; // EvCache holds 256 slots
    TaskCtx::EvSlot &E = TC.EvCache[Slot];
    if (E.IdPlus1 && E.Hi == Hi && E.Lo == Lo)
      return static_cast<uint32_t>(E.IdPlus1 - 1);
    uint64_t W[2] = {Hi, Lo};
    uint32_t Id = Structs.intern(W, 2).Id;
    E = {Hi, Lo, static_cast<uint64_t>(Id) + 1};
    return Id;
  }

  void search(BufNode &N, TaskCtx &TC, unsigned Depth) {
    if (StopFlag.load(std::memory_order_relaxed))
      return;
    uint64_t V = TC.Visits.next();
    if (V > Limits.MaxVisited) {
      truncate(TruncationReason::StateCap);
      return;
    }
    if (Limits.Shared && !TC.Charge.charge()) {
      truncate(Limits.Shared->reason());
      return;
    }
    // Intern the state; prune revisits (subset rule under POR).
    encodeState(N, TC.Enc);
    faultThrowBadAlloc(FaultSite::BufferedIntern);
    InternPool::Result State = Structs.intern(TC.Enc.data(), TC.Enc.size());
    if (Memo) {
      TC.SigEnc.clear();
      for (const SleepElem &S : N.Sleep)
        TC.SigEnc.push_back(S.Id);
      InternPool::Result Sig = Sigs.intern(TC.SigEnc.data(),
                                           TC.SigEnc.size());
      if (!Memo->shouldExplore(State.Id, Sig.Id))
        return;
    } else if (!State.Inserted) {
      return;
    }
    std::vector<Transition> Trans = transitionsOf(N, TC);
    std::vector<SleepElem> Done; // earlier explored siblings
    if (Memo)
      Done.reserve(Trans.size());
    unsigned Degree = 0;
    for (Transition &T : Trans) {
      if (StopFlag.load(std::memory_order_relaxed))
        return;
      uint32_t EvId = 0;
      if (Memo) {
        EvId = internEvent(T.Ev, TC);
        // Asleep: the sibling branch that explored this event covers
        // every schedule that starts with it here.
        if (sleepContains(N.Sleep, EvId))
          continue;
      }
      ++Degree;
      std::vector<SleepElem> ChildSleep;
      if (Memo) {
        ChildSleep.reserve(N.Sleep.size() + Done.size());
        for (const SleepElem &S : N.Sleep)
          if (independentEvents(S.Ev, T.Ev))
            ChildSleep.push_back(S);
        for (const SleepElem &S : Done)
          if (independentEvents(S.Ev, T.Ev))
            ChildSleep.push_back(S);
        std::sort(ChildSleep.begin(), ChildSleep.end(),
                  [](const SleepElem &X, const SleepElem &Y) {
                    return X.Id < Y.Id;
                  });
      }
      if (Group && Forks.shouldFork(*Pool, Depth)) {
        // Injected fork failure: fires before the subtree is handed off,
        // so the child is neither run locally nor leaked.
        faultThrowInjected(FaultSite::BufferedFork);
        // Hand the subtree to an idle worker: one node copy.
        auto Child = std::make_shared<BufNode>(N);
        Child->Sleep = std::move(ChildSleep);
        applyTo(*Child, T);
        Group->spawn([this, Child, Depth] {
          TaskCtx ChildCtx(Limits.Shared, VisitedCount);
          search(*Child, ChildCtx, Depth + 1);
        });
      } else {
        // Descend in place: apply, recurse, undo. The per-edge node copy
        // (NT map-backed ThreadStates plus five vectors) dominated the
        // reduced sweep's profile. A throwing frame abandons the whole
        // query at the root containment, so a node left mid-undo by an
        // exception never escapes.
        UndoRec U;
        std::vector<SleepElem> SavedSleep = std::move(N.Sleep);
        N.Sleep = std::move(ChildSleep);
        applyInPlace(N, T, U);
        search(N, TC, Depth + 1);
        undoInPlace(N, U);
        N.Sleep = std::move(SavedSleep);
      }
      if (Memo)
        Done.push_back({EvId, T.Ev});
    }
    if (Group)
      Forks.observe(Degree, *Pool);
  }

  const Program &P;
  LangContext Ctx;
  TsoLimits Limits;
  BufferModel Model;
  size_t Cap; ///< per-thread buffer stride (see BufNode doc)
  bool Parallel;
  InternPool Structs; ///< states and event ids
  InternPool Sigs;    ///< sorted event-id sleep signatures
  ConfigIds Configs;
  ForkPolicy Forks;
  std::unique_ptr<SleepMemo> Memo;
  std::unique_ptr<ThreadPool> Owned;
  ThreadPool *Pool = nullptr;
  ThreadPool::TaskGroup *Group = nullptr;
  std::atomic<uint64_t> VisitedCount{0};
  std::atomic<bool> StopFlag{false};
  std::mutex ResM; ///< guards Behaviours and Stats
  std::set<Behaviour> Behaviours;
};

} // namespace

std::set<Behaviour> tracesafe::bufferedBehaviours(const Program &P,
                                                  const TsoLimits &Limits,
                                                  BufferModel Model,
                                                  ExecStats *Stats) {
  BufferedSearch S(P, Limits, Model);
  std::set<Behaviour> Out = S.run();
  if (Stats)
    *Stats = S.Stats;
  return Out;
}
