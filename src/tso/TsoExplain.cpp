#include "tso/TsoExplain.h"

#include "lang/Printer.h"

#include <deque>

using namespace tracesafe;

std::set<Behaviour>
tracesafe::reachableScBehaviours(const Program &P, size_t MaxDepth,
                                 const RuleSet &Rules, ExecLimits Limits,
                                 bool *Truncated,
                                 size_t *ProgramsExplored) {
  std::set<Behaviour> Union;
  std::set<std::string> SeenPrograms;
  std::deque<std::pair<Program, size_t>> Queue;
  Queue.emplace_back(P, 0);
  SeenPrograms.insert(printProgram(P));
  size_t Explored = 0;
  bool Trunc = false;
  while (!Queue.empty()) {
    auto [Cur, Depth] = std::move(Queue.front());
    Queue.pop_front();
    ++Explored;
    ExecStats ScStats;
    std::set<Behaviour> Sc = programBehaviours(Cur, Limits, &ScStats);
    Trunc |= ScStats.Truncated;
    Union.insert(Sc.begin(), Sc.end());
    if (Depth == MaxDepth)
      continue;
    for (const RewriteSite &Site : findRewriteSites(Cur, Rules)) {
      Program Next = applyRewrite(Cur, Site);
      if (SeenPrograms.insert(printProgram(Next)).second)
        Queue.emplace_back(std::move(Next), Depth + 1);
    }
  }
  if (Truncated)
    *Truncated = Trunc;
  if (ProgramsExplored)
    *ProgramsExplored = Explored;
  return Union;
}

TsoExplainResult
tracesafe::explainTsoByTransformations(const Program &P, size_t MaxDepth,
                                       const RuleSet &Rules,
                                       TsoLimits Limits) {
  TsoExplainResult Result;
  ExecStats TsoStats;
  std::set<Behaviour> Tso = tsoBehaviours(P, Limits, &TsoStats);
  Result.Truncated |= TsoStats.Truncated;
  Result.TsoBehaviours = Tso.size();

  ExecLimits ScLimits;
  ScLimits.MaxActionsPerThread = Limits.MaxActionsPerThread;
  ScLimits.MaxSilentRun = Limits.MaxSilentRun;
  ScLimits.MaxVisited = Limits.MaxVisited;
  bool UnionTruncated = false;
  std::set<Behaviour> Union = reachableScBehaviours(
      P, MaxDepth, Rules, ScLimits, &UnionTruncated,
      &Result.ProgramsExplored);
  Result.Truncated |= UnionTruncated;
  Result.ScBehaviours = Union.size();

  Result.Explained = true;
  for (const Behaviour &B : Tso) {
    if (Union.count(B))
      continue;
    Result.Explained = false;
    Result.Unexplained = B;
    break;
  }
  return Result;
}
