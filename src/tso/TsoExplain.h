//===----------------------------------------------------------------------===//
///
/// \file
/// "TSO as transformations" — the paper's §8 claim as a checkable
/// statement.
///
/// For a program P, every behaviour of the TSO machine should be a
/// sequentially consistent behaviour of *some* program reachable from P by
/// the paper's safe transformations. The relevant rules are the write-read
/// reordering R-WR (store buffering delays a write past later reads of
/// other locations) and the read-after-write elimination E-RAW
/// (store-to-load forwarding: a read of one's own buffered store).
///
/// explainTsoByTransformations explores the transformation neighbourhood
/// of P breadth-first up to a depth bound, unions the SC behaviours of all
/// reachable programs, and reports any TSO behaviour left unexplained.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TSO_TSOEXPLAIN_H
#define TRACESAFE_TSO_TSOEXPLAIN_H

#include "opt/Rewrite.h"
#include "tso/TsoMachine.h"

namespace tracesafe {

struct TsoExplainResult {
  bool Explained = false;
  Behaviour Unexplained;     ///< Witness when !Explained.
  size_t ProgramsExplored = 0;
  size_t TsoBehaviours = 0;
  size_t ScBehaviours = 0;   ///< Of the union over reachable programs.
  bool Truncated = false;
};

/// The union of the SC behaviours of every program reachable from \p P by
/// at most \p MaxDepth applications of the rules in \p Rules. This is the
/// "explanation set": any hardware behaviour inside it is accounted for by
/// the paper's transformations.
std::set<Behaviour>
reachableScBehaviours(const Program &P, size_t MaxDepth,
                      const RuleSet &Rules = {}, ExecLimits Limits = {},
                      bool *Truncated = nullptr,
                      size_t *ProgramsExplored = nullptr);

/// Checks that every TSO behaviour of \p P is an SC behaviour of some
/// program reachable by at most \p MaxDepth applications of the rules in
/// \p Rules (default: the full safe rule set).
TsoExplainResult
explainTsoByTransformations(const Program &P, size_t MaxDepth = 3,
                            const RuleSet &Rules = {},
                            TsoLimits Limits = {});

} // namespace tracesafe

#endif // TRACESAFE_TSO_TSOEXPLAIN_H
