//===----------------------------------------------------------------------===//
///
/// \file
/// A PSO (partial store order) machine — the paper's §8 conjecture probe.
///
/// The conclusion of the paper reports TSO is explained by the semantic
/// transformations and conjectures "similar results can be achieved for
/// other processor memory models". PSO is the natural next model: store
/// buffers are *per location*, so stores to different locations may drain
/// out of order (the extra relaxation over TSO is W->W reordering, which
/// is exactly the R-WW rule). The E13 bench checks that the PSO-only
/// behaviours of the litmus battery are indeed explained by the rule set.
///
/// Machine model: like TsoMachine, but each thread has one FIFO buffer per
/// location; a drain step commits the oldest entry of any (thread,
/// location) buffer. Reads forward from the own buffer of that location;
/// synchronisation actions require all of the thread's buffers to be
/// empty.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TSO_PSOMACHINE_H
#define TRACESAFE_TSO_PSOMACHINE_H

#include "tso/TsoMachine.h"

namespace tracesafe {

/// The set of observable behaviours of \p P on the PSO machine.
/// A superset of tsoBehaviours(P) (a TSO buffer schedule is a PSO schedule
/// that happens to respect inter-location store order).
std::set<Behaviour> psoBehaviours(const Program &P, TsoLimits Limits = {},
                                  ExecStats *Stats = nullptr);

/// Behaviours PSO exhibits that SC does not.
std::set<Behaviour> psoOnlyBehaviours(const Program &P,
                                      TsoLimits Limits = {},
                                      ExecStats *Stats = nullptr);

} // namespace tracesafe

#endif // TRACESAFE_TSO_PSOMACHINE_H
