#include "tso/Litmus.h"

using namespace tracesafe;

const std::vector<LitmusTest> &tracesafe::litmusTests() {
  static const std::vector<LitmusTest> Tests = {
      {"SB",
       R"(
thread { x := 1; r1 := y; print r1; }
thread { y := 1; r2 := x; print r2; }
)",
       {{0, 0}},
       /*ScAllows=*/false,
       /*TsoAllows=*/true,
       /*PsoAllows=*/true},

      {"SB+vol",
       R"(
volatile x, y;
thread { x := 1; r1 := y; print r1; }
thread { y := 1; r2 := x; print r2; }
)",
       {{0, 0}},
       /*ScAllows=*/false,
       /*TsoAllows=*/false,
       /*PsoAllows=*/false},

      {"MP",
       R"(
thread { x := 1; y := 1; }
thread { r1 := y; r2 := x; print r1; print r2; }
)",
       {{1, 0}},
       /*ScAllows=*/false,
       /*TsoAllows=*/false,
       /*PsoAllows=*/true},

      {"LB",
       R"(
thread { r1 := x; y := 1; print r1; }
thread { r2 := y; x := 1; print r2; }
)",
       {{1, 1}},
       /*ScAllows=*/false,
       /*TsoAllows=*/false,
       /*PsoAllows=*/false},

      {"CoRR",
       R"(
thread { x := 1; }
thread { r1 := x; r2 := x; print r1; print r2; }
)",
       {{1, 0}},
       /*ScAllows=*/false,
       /*TsoAllows=*/false,
       /*PsoAllows=*/false},

      {"SB+RFI",
       R"(
thread { x := 1; r1 := x; r2 := y; print r1; print r2; }
thread { y := 1; r3 := y; r4 := x; print r3; print r4; }
)",
       {{1, 0, 1, 0}},
       /*ScAllows=*/false,
       /*TsoAllows=*/true,
       /*PsoAllows=*/true},

      // IRIW: two writers, two readers that disagree about the order of
      // the independent writes. Reader 2 prints 3 iff it saw x before y;
      // reader 3 prints 4 iff it saw y before x. Both machines here are
      // multi-copy atomic (a drained store is visible to everyone), so
      // like SC they forbid the 3-and-4 outcome.
      {"IRIW",
       R"(
thread { x := 1; }
thread { y := 1; }
thread {
  r1 := x; r2 := y;
  if (r1 == 1) { if (r2 == 0) { print 3; } else { skip; } } else { skip; }
}
thread {
  r3 := y; r4 := x;
  if (r3 == 1) { if (r4 == 0) { print 4; } else { skip; } } else { skip; }
}
)",
       {{3, 4}, {4, 3}},
       /*ScAllows=*/false,
       /*TsoAllows=*/false,
       /*PsoAllows=*/false},

      // WRC: write-to-read causality. Thread 1 forwards thread 0's write;
      // thread 2 must not see the forwarded flag yet miss the original
      // write. Store buffers preserve this (the flag write drains after
      // thread 1 *read* x from memory), so TSO and PSO forbid it like SC.
      {"WRC",
       R"(
thread { x := 1; }
thread {
  r1 := x;
  if (r1 == 1) { y := 1; } else { skip; }
}
thread {
  r2 := y; r3 := x;
  if (r2 == 1) { if (r3 == 0) { print 5; } else { skip; } } else { skip; }
}
)",
       {{5}},
       /*ScAllows=*/false,
       /*TsoAllows=*/false,
       /*PsoAllows=*/false},
  };
  return Tests;
}
