//===----------------------------------------------------------------------===//
///
/// \file
/// tracesafed: the long-lived verification daemon.
///
/// One process serves many clients over a unix-domain socket, keeping the
/// process-global InternPool/BehaviourCache warm across queries. The
/// robustness contract, in order of importance:
///
///  - *Bounded admission.* Queries are admitted under a global in-flight
///    cap and a fair per-client share of it; a request over either limit
///    is answered immediately with a structured Overloaded response,
///    never queued unboundedly. Admitted queries run on the shared
///    work-stealing ThreadPool under a Budget clamped to the server's
///    quota ceiling.
///
///  - *Containment.* Every query task catches everything; a poisoned
///    query degrades to the sequential oracle (Degrade layer) and at
///    worst reports Unknown(EngineFault). The pool, the listener and the
///    other clients never observe the fault.
///
///  - *Durability.* With a journal configured, each admitted request is
///    appended (A record) before it is scheduled and its verdict (V
///    record) when it completes, both flushed. `--resume` replays the
///    journal: completed verdicts are served from the journal without
///    recomputation (and without re-charging any quota) and admitted-but-
///    unfinished requests are recomputed, so a `kill -9` mid-batch
///    resumes to byte-identical merged results.
///
///  - *Idempotency.* Requests are keyed (client name, request id): a
///    retransmitted Submit attaches to the in-flight computation or
///    replays the stored verdict instead of double-charging admission.
///
/// Determinism note: the daemon parallelises *across* queries and runs
/// each query's engines sequentially (Workers=1), so any query under a
/// wall-clock-free budget produces the same verdict bytes in any run —
/// the property the chaos smoke test diffs.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_DAEMON_SERVER_H
#define TRACESAFE_DAEMON_SERVER_H

#include "daemon/Protocol.h"
#include "support/Budget.h"

#include <cstdint>
#include <string>

namespace tracesafe {
namespace daemon {

struct ServerOptions {
  std::string SocketPath;
  /// Append-only journal for crash recovery; empty = no durability.
  std::string JournalPath;
  /// Replay JournalPath on startup (serve completed verdicts, recompute
  /// orphaned admissions).
  bool Resume = false;
  /// Query workers. 0 = the shared pool's default width.
  unsigned Workers = 0;
  /// Global cap on admitted-but-unfinished queries; anything beyond is
  /// answered Overloaded.
  unsigned QueueCap = 64;
  /// Per-client cap on in-flight queries. 0 = fair share, i.e.
  /// max(1, QueueCap / connected clients).
  unsigned PerClientCap = 0;
  /// Field-wise ceiling clamped onto every requested budget (0 =
  /// unbounded field). The default keeps one rogue query from starving
  /// the pool for more than ~10 s.
  BudgetSpec QuotaCeiling{/*DeadlineMs=*/10'000, /*MaxVisited=*/2'000'000,
                          /*MaxMemoryBytes=*/256ULL << 20};
  /// Cooperative shutdown: when requested, the listener drains, in-flight
  /// queries are cancelled (their journal records stay orphaned, so a
  /// restart recomputes them), and runServer returns.
  const CancelToken *Stop = nullptr;
  /// Log one line per lifecycle event to stderr.
  bool Verbose = false;
};

/// Monotonic daemon counters, exposed for tests and the --verbose exit
/// summary.
struct ServerStats {
  uint64_t Connections = 0;  ///< accepted sockets
  uint64_t Admitted = 0;     ///< queries admitted (journal A records)
  uint64_t Completed = 0;    ///< verdicts computed (journal V records)
  uint64_t Overloaded = 0;   ///< requests shed by admission control
  uint64_t BadRequests = 0;  ///< malformed submits
  uint64_t Replayed = 0;     ///< verdicts served from memory or journal
  uint64_t Resumed = 0;      ///< orphaned admissions recomputed on resume
  uint64_t Degraded = 0;     ///< queries answered by the oracle fallback
  uint64_t ProtoErrors = 0;  ///< connections dropped on transport errors
  uint64_t AcceptFaults = 0; ///< injected accept-site faults
};

/// Runs the daemon until Stop is requested (or the listener fails
/// fatally). Returns 0 on clean shutdown. \p Stats, when non-null,
/// receives the final counters.
int runServer(const ServerOptions &Options, ServerStats *Stats = nullptr);

/// Evaluates one query exactly as a daemon worker does — budget clamp,
/// sequential engines, exception containment, oracle degradation — shared
/// by the standalone CLI modes and the chaos test's single-process
/// reference run. \p Ceiling is applied field-wise; \p Cancel may be
/// null.
QueryResponse evaluateQuery(const QueryRequest &Q, const BudgetSpec &Ceiling,
                            const CancelToken *Cancel = nullptr);

/// The field-wise clamp evaluateQuery applies: requested 0 means "use the
/// ceiling"; otherwise the smaller of the two (ceiling 0 = unbounded).
BudgetSpec clampBudget(const BudgetSpec &Requested,
                       const BudgetSpec &Ceiling);

} // namespace daemon
} // namespace tracesafe

#endif // TRACESAFE_DAEMON_SERVER_H
