#include "daemon/Client.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tracesafe;
using namespace tracesafe::daemon;

namespace {

uint64_t xorshift(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

} // namespace

uint64_t daemon::backoffDelayMs(unsigned Attempt, uint64_t BaseMs,
                                uint64_t CapMs, uint64_t &Rng) {
  // Truncated exponential ceiling; shifting past 63 bits would wrap.
  uint64_t Ceil = CapMs;
  if (Attempt < 63) {
    uint64_t Exp = BaseMs << Attempt;
    if ((Exp >> Attempt) == BaseMs && Exp < CapMs)
      Ceil = Exp;
  }
  if (Ceil == 0)
    return 0;
  // Full jitter: uniform in [0, Ceil]. Thundering-herd avoidance matters
  // more than the exact distribution.
  return xorshift(Rng) % (Ceil + 1);
}

DaemonClient::DaemonClient(ClientOptions O)
    : Opts(std::move(O)), NextId(Opts.FirstRequestId),
      Rng(Opts.Seed ? Opts.Seed : 1) {}

DaemonClient::~DaemonClient() { disconnect(); }

void DaemonClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  ReadBuf.clear();
}

void DaemonClient::backoff(unsigned Attempt) {
  ++Counters.Retries;
  uint64_t Ms =
      backoffDelayMs(Attempt, Opts.BackoffBaseMs, Opts.BackoffCapMs, Rng);
  if (Ms)
    std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

void DaemonClient::ensureConnected() {
  if (Fd >= 0)
    return;
  std::string LastError = "no attempts made";
  for (unsigned Attempt = 0; Attempt < Opts.MaxAttempts; ++Attempt) {
    if (Attempt)
      backoff(Attempt - 1);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
      throw ProtocolError("socket path too long: " + Opts.SocketPath);
    std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (S < 0)
      throw ProtocolError(std::string("socket: ") + std::strerror(errno));
    if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      LastError = std::string("connect: ") + std::strerror(errno);
      ::close(S);
      continue;
    }
    Fd = S;
    try {
      Frame Hello;
      Hello.Type = FrameType::Hello;
      Hello.Payload = encodeHello(Opts.Name);
      writeFrame(Fd, Hello);
      Frame Welcome;
      std::string ServerName;
      if (!readFrame(Fd, ReadBuf, Welcome) ||
          Welcome.Type != FrameType::Welcome ||
          !decodeWelcome(Welcome.Payload, ServerName))
        throw ProtocolError("bad welcome");
      ++Counters.Connects;
      return;
    } catch (const ProtocolError &E) {
      LastError = E.what();
      ++Counters.TransportErrors;
      disconnect();
    }
  }
  throw ProtocolError("connect retries exhausted: " + LastError);
}

QueryResponse DaemonClient::call(const QueryRequest &Q) {
  std::vector<QueryResponse> R = callBatch({Q});
  return R.at(0);
}

std::vector<QueryResponse>
DaemonClient::callBatch(const std::vector<QueryRequest> &Qs) {
  // Ids are allocated once, up front: every retransmission below reuses
  // them, which is what makes retries idempotent on the server.
  std::vector<uint64_t> Ids(Qs.size());
  for (size_t I = 0; I < Qs.size(); ++I)
    Ids[I] = NextId++;
  std::unordered_map<uint64_t, size_t> Slot;
  for (size_t I = 0; I < Ids.size(); ++I)
    Slot[Ids[I]] = I;

  std::vector<QueryResponse> Out(Qs.size());
  std::vector<bool> Done(Qs.size(), false);
  size_t Remaining = Qs.size();
  unsigned Attempt = 0;
  while (Remaining) {
    try {
      ensureConnected();
      // (Re)submit everything unanswered, pipelined, then collect. The
      // server answers replays instantly and recomputes nothing.
      for (size_t I = 0; I < Qs.size(); ++I) {
        if (Done[I])
          continue;
        Frame F;
        F.Type = FrameType::Submit;
        F.RequestId = Ids[I];
        F.Payload = encodeSubmit(Qs[I]);
        writeFrame(Fd, F);
      }
      while (Remaining) {
        Frame F;
        if (!readFrame(Fd, ReadBuf, F))
          throw ProtocolError("server closed mid-batch");
        if (F.Type != FrameType::Verdict)
          continue; // Pong or future frame types: ignore.
        auto It = Slot.find(F.RequestId);
        if (It == Slot.end() || Done[It->second])
          continue; // duplicate verdict after a resubmission race
        QueryResponse R;
        if (!decodeResponse(F.Payload, R))
          throw ProtocolError("malformed verdict payload");
        if (R.Status == ResponseStatus::Overloaded &&
            Opts.RetryOverloaded) {
          // Deliberate shedding: back off, then resubmit just this id.
          ++Counters.OverloadedRetries;
          backoff(Attempt < 63 ? Attempt++ : Attempt);
          Frame Again;
          Again.Type = FrameType::Submit;
          Again.RequestId = F.RequestId;
          Again.Payload = encodeSubmit(Qs[It->second]);
          writeFrame(Fd, Again);
          continue;
        }
        Out[It->second] = R;
        Done[It->second] = true;
        --Remaining;
        Attempt = 0; // progress resets the backoff clock
      }
    } catch (const ProtocolError &) {
      ++Counters.TransportErrors;
      disconnect();
      if (++Attempt >= Opts.MaxAttempts)
        throw;
      backoff(Attempt - 1);
    }
  }
  return Out;
}

void DaemonClient::cancel(uint64_t RequestId) {
  if (Fd < 0)
    return;
  try {
    Frame F;
    F.Type = FrameType::Cancel;
    F.RequestId = RequestId;
    writeFrame(Fd, F);
  } catch (const ProtocolError &) {
    ++Counters.TransportErrors;
    disconnect();
  }
}
