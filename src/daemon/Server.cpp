#include "daemon/Server.h"

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "racelog/Detect.h"
#include "support/Failure.h"
#include "support/ThreadPool.h"
#include "trace/Enumerate.h"
#include "verify/BehaviourCache.h"
#include "verify/Checks.h"
#include "verify/Degrade.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tracesafe;
using namespace tracesafe::daemon;

//===----------------------------------------------------------------------===//
// Query evaluation (shared with the standalone CLI modes)
//===----------------------------------------------------------------------===//

BudgetSpec daemon::clampBudget(const BudgetSpec &Requested,
                               const BudgetSpec &Ceiling) {
  auto Clamp = [](uint64_t R, uint64_t C) {
    if (R == 0)
      return C;
    return C == 0 ? R : std::min(R, C);
  };
  BudgetSpec Out;
  Out.DeadlineMs = static_cast<int64_t>(
      Clamp(static_cast<uint64_t>(Requested.DeadlineMs),
            static_cast<uint64_t>(Ceiling.DeadlineMs)));
  Out.MaxVisited = Clamp(Requested.MaxVisited, Ceiling.MaxVisited);
  Out.MaxMemoryBytes =
      Clamp(Requested.MaxMemoryBytes, Ceiling.MaxMemoryBytes);
  return Out;
}

namespace {

VerdictKind outcomeVerdict(GuaranteeOutcome O) {
  switch (O) {
  case GuaranteeOutcome::Holds:
    return VerdictKind::Proved;
  case GuaranteeOutcome::Violated:
    return VerdictKind::Refuted;
  case GuaranteeOutcome::Unknown:
    break;
  }
  return VerdictKind::Unknown;
}

/// Deterministic (set-ordered) rendering of a behaviour set, capped so a
/// pathological program cannot blow up the response frame.
std::string renderBehaviours(const std::set<Behaviour> &S) {
  std::string Out = "behaviours=" + std::to_string(S.size());
  size_t Shown = 0;
  for (const Behaviour &B : S) {
    if (Shown++ == 32) {
      Out += " ...";
      break;
    }
    Out += " [";
    for (size_t I = 0; I < B.size(); ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(B[I]);
    }
    Out += "]";
  }
  return Out;
}

/// One attempt at a query. \p Oracle selects the sequential
/// std::set-memoised engines (the Degrade layer's fallback path, sharing
/// no code with the interned reduced engines) and bypasses the
/// BehaviourCache, so a fault in the primary path cannot recur in the
/// fallback. Engines run Workers=1: the daemon parallelises across
/// queries, and sequential engines keep verdict bytes run-independent.
QueryResponse runKind(QueryKind K, const Program &O, const Program *T2,
                      Budget &B, bool Oracle) {
  QueryResponse R;
  R.Status = ResponseStatus::Ok;
  switch (K) {
  case QueryKind::ProgramDrf:
  case QueryKind::Behaviours: {
    std::vector<Value> Domain = defaultDomainFor(O, 2);
    ExploreLimits XL;
    XL.Shared = &B;
    XL.Workers = 1;
    ExploreStats XS;
    std::shared_ptr<const Traceset> TS =
        Oracle ? std::make_shared<const Traceset>(
                     programTraceset(O, Domain, XL, &XS))
               : BehaviourCache::global().tracesetFor(O, Domain, XL, &XS);
    if (XS.Truncated) {
      R.Kind = VerdictKind::Unknown;
      R.Reason = XS.Reason;
      return R;
    }
    EnumerationLimits EL;
    EL.Shared = &B;
    EL.Workers = 1;
    EL.ExhaustiveOracle = Oracle;
    if (K == QueryKind::ProgramDrf) {
      Verdict<Interleaving> V =
          Oracle ? checkDataRaceFreedom(*TS, EL)
                 : BehaviourCache::global().drfFor(*TS, EL);
      R.Kind = V.Kind;
      R.Reason = V.Reason;
      R.Detail = V.isProved()    ? "data-race-free"
                 : V.isRefuted() ? "race"
                                 : "";
      return R;
    }
    EnumerationStats ES;
    std::set<Behaviour> S =
        Oracle ? collectBehaviours(*TS, EL, &ES)
               : BehaviourCache::global().behavioursFor(*TS, EL, &ES);
    if (ES.Truncated) {
      R.Kind = VerdictKind::Unknown;
      R.Reason = ES.Reason;
      return R;
    }
    R.Kind = VerdictKind::Proved;
    R.Detail = renderBehaviours(S);
    return R;
  }
  case QueryKind::DrfGuarantee: {
    ExecLimits E;
    E.Shared = &B;
    DrfGuaranteeReport Rep = checkDrfGuarantee(O, *T2, E);
    R.Kind = outcomeVerdict(Rep.outcome());
    if (R.Kind == VerdictKind::Unknown)
      R.Reason = Rep.Reason;
    R.Detail = std::string("orig-drf=") + (Rep.OriginalDrf ? "1" : "0") +
               " trans-drf=" + (Rep.TransformedDrf ? "1" : "0") +
               " preserved=" + (Rep.BehavioursPreserved ? "1" : "0");
    return R;
  }
  case QueryKind::ThinAir: {
    Value C = freshConstantFor(O);
    ExecLimits E;
    E.Shared = &B;
    ExploreLimits XL;
    XL.Shared = &B;
    XL.Workers = 1;
    ThinAirReport Rep = checkThinAir(O, *T2, C, E, XL);
    R.Kind = outcomeVerdict(Rep.outcome());
    if (R.Kind == VerdictKind::Unknown)
      R.Reason = Rep.Reason;
    R.Detail = "c=" + std::to_string(C) +
               " outputs=" + (Rep.TransformedOutputs ? "1" : "0") +
               " origin=" + (Rep.TransformedHasOrigin ? "1" : "0");
    return R;
  }
  }
  R.Status = ResponseStatus::BadRequest;
  R.Detail = "unknown query kind";
  return R;
}

/// RaceLog queries bypass the program pipeline entirely: Q.Program is a
/// TSRL log image, scanned by the streaming detector. Primary = epoch
/// engine over 4 address shards; the degraded fallback (EngineFault only,
/// like every other kind) is the full-vector-clock oracle engine inline.
QueryResponse runRaceLog(const std::string &Log, Budget &B, bool Oracle) {
  QueryResponse R;
  R.Status = ResponseStatus::Ok;
  racelog::RaceLogOptions O;
  O.Epochs = !Oracle;
  O.Shards = Oracle ? 1u : 4u;
  O.Workers = 1;
  O.Shared = &B;
  racelog::RaceLogReport Rep = racelog::scanRaceLog(Log, O);
  if (!Rep.FormatOk) {
    R.Status = ResponseStatus::BadRequest;
    R.Detail = "bad log: " + Rep.FormatError;
    return R;
  }
  R.Kind = Rep.verdict();
  if (Rep.Stats.Truncated)
    R.Reason = Rep.Stats.Reason;
  R.Detail = Rep.str();
  return R;
}

} // namespace

QueryResponse daemon::evaluateQuery(const QueryRequest &Q,
                                    const BudgetSpec &Ceiling,
                                    const CancelToken *Cancel) {
  QueryResponse R;
  if (Q.Kind == QueryKind::RaceLog) {
    BudgetSpec Spec = clampBudget(Q.Budget, Ceiling);
    Budget B(Spec, Cancel);
    R = runRaceLog(Q.Program, B, /*Oracle=*/false);
    R.Visited = B.visited();
    if (R.Status == ResponseStatus::Ok && R.Kind == VerdictKind::Unknown &&
        R.Reason == TruncationReason::EngineFault) {
      Budget B2(remainingBudget(Spec, B), Cancel);
      QueryResponse R2 = runRaceLog(Q.Program, B2, /*Oracle=*/true);
      R2.Degraded = true;
      R2.Visited = B.visited() + B2.visited();
      return R2;
    }
    return R;
  }
  ParseResult O = parseProgram(Q.Program);
  if (!O) {
    R.Status = ResponseStatus::BadRequest;
    R.Detail = "parse error (program): " + O.Error;
    return R;
  }
  const bool NeedsPair =
      Q.Kind == QueryKind::DrfGuarantee || Q.Kind == QueryKind::ThinAir;
  ParseResult T;
  if (NeedsPair) {
    T = parseProgram(Q.Transformed);
    if (!T) {
      R.Status = ResponseStatus::BadRequest;
      R.Detail = "parse error (transformed): " + T.Error;
      return R;
    }
  }
  BudgetSpec Spec = clampBudget(Q.Budget, Ceiling);

  // Primary attempt: reduced engines, warm cache. Containment: anything
  // thrown here is this query's problem only.
  Budget B(Spec, Cancel);
  try {
    R = runKind(Q.Kind, *O.Prog, NeedsPair ? &*T.Prog : nullptr, B,
                /*Oracle=*/false);
  } catch (...) {
    B.poison(TruncationReason::EngineFault);
    R = QueryResponse{};
    R.Status = ResponseStatus::Ok;
    R.Kind = VerdictKind::Unknown;
    R.Reason = TruncationReason::EngineFault;
  }
  R.Visited = B.visited();

  // EngineFault (and only EngineFault — cancellation must win, and an
  // exhausted budget would exhaust the leftovers faster) degrades to the
  // sequential oracle under whatever budget the primary left behind.
  if (R.Status == ResponseStatus::Ok && R.Kind == VerdictKind::Unknown &&
      R.Reason == TruncationReason::EngineFault) {
    Budget B2(remainingBudget(Spec, B), Cancel);
    try {
      QueryResponse R2 = runKind(Q.Kind, *O.Prog,
                                 NeedsPair ? &*T.Prog : nullptr, B2,
                                 /*Oracle=*/true);
      R2.Degraded = true;
      R2.Visited = B.visited() + B2.visited();
      return R2;
    } catch (...) {
      R.Detail = "oracle fallback faulted";
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Journal (same line/tab format family as the fuzz campaign journal:
// append-only, whole records flushed under one lock, torn tails ignored
// by the loader)
//===----------------------------------------------------------------------===//

namespace {

std::string escField(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescField(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 >= S.size()) {
      Out += S[I];
      continue;
    }
    switch (S[++I]) {
    case '\\':
      Out += '\\';
      break;
    case 't':
      Out += '\t';
      break;
    case 'n':
      Out += '\n';
      break;
    default: // Unknown escape: keep both chars (forward compatibility).
      Out += '\\';
      Out += S[I];
    }
  }
  return Out;
}

std::vector<std::string> splitTabs(const std::string &Line) {
  std::vector<std::string> Out;
  size_t Begin = 0;
  while (true) {
    size_t Tab = Line.find('\t', Begin);
    if (Tab == std::string::npos) {
      Out.push_back(Line.substr(Begin));
      return Out;
    }
    Out.push_back(Line.substr(Begin, Tab - Begin));
    Begin = Tab + 1;
  }
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End == S.c_str() + S.size();
}

constexpr uint64_t JournalVersion = 1;

/// One client request as the journal sees it: the admission record and,
/// once computed, the verdict.
struct JournalEntry {
  std::string Client;
  uint64_t Id = 0;
  QueryRequest Q;
  QueryResponse Resp;
  bool Done = false;
};

std::string requestKey(const std::string &Client, uint64_t Id) {
  return Client + '\0' + std::to_string(Id);
}

void writeAdmitLine(std::ostream &Os, const JournalEntry &E) {
  Os << "A\t" << escField(E.Client) << '\t' << E.Id << '\t'
     << static_cast<unsigned>(E.Q.Kind) << '\t' << E.Q.Budget.DeadlineMs
     << '\t' << E.Q.Budget.MaxVisited << '\t' << E.Q.Budget.MaxMemoryBytes
     << '\t' << escField(E.Q.Program) << '\t' << escField(E.Q.Transformed)
     << '\n';
}

void writeVerdictLine(std::ostream &Os, const JournalEntry &E) {
  Os << "V\t" << escField(E.Client) << '\t' << E.Id << '\t'
     << static_cast<unsigned>(E.Resp.Status) << '\t'
     << static_cast<unsigned>(E.Resp.Kind) << '\t'
     << static_cast<unsigned>(E.Resp.Reason) << '\t'
     << (E.Resp.Degraded ? 1 : 0) << '\t' << E.Resp.Visited << '\t'
     << escField(E.Resp.Detail) << '\n';
}

/// Loads a daemon journal, tolerating a torn tail and unknown record
/// types: a crashed daemon's journal is, by construction, a valid prefix
/// plus at most one torn line.
std::vector<JournalEntry> loadDaemonJournal(const std::string &Path) {
  std::vector<JournalEntry> Out;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Out;
  std::stringstream Ss;
  Ss << In.rdbuf();
  std::string All = Ss.str();
  std::unordered_map<std::string, size_t> Index;
  size_t Begin = 0;
  while (Begin < All.size()) {
    size_t End = All.find('\n', Begin);
    if (End == std::string::npos)
      break; // torn tail: no terminating newline, ignore
    std::string Line = All.substr(Begin, End - Begin);
    Begin = End + 1;
    std::vector<std::string> T = splitTabs(Line);
    if (T.empty())
      continue;
    if (T[0] == "A" && T.size() == 9) {
      JournalEntry E;
      E.Client = unescField(T[1]);
      uint64_t Kind = 0, Deadline = 0;
      if (!parseU64(T[2], E.Id) || !parseU64(T[3], Kind) ||
          !parseU64(T[4], Deadline) ||
          !parseU64(T[5], E.Q.Budget.MaxVisited) ||
          !parseU64(T[6], E.Q.Budget.MaxMemoryBytes))
        continue;
      if (Kind < static_cast<uint64_t>(QueryKind::ProgramDrf) ||
          Kind > static_cast<uint64_t>(QueryKind::RaceLog))
        continue;
      E.Q.Kind = static_cast<QueryKind>(Kind);
      E.Q.Budget.DeadlineMs = static_cast<int64_t>(Deadline);
      E.Q.Program = unescField(T[7]);
      E.Q.Transformed = unescField(T[8]);
      std::string Key = requestKey(E.Client, E.Id);
      if (Index.count(Key))
        continue; // duplicate admission: first one wins
      Index[Key] = Out.size();
      Out.push_back(std::move(E));
    } else if (T[0] == "V" && T.size() == 9) {
      std::string Client = unescField(T[1]);
      uint64_t Id = 0, Status = 0, Kind = 0, Reason = 0, Degraded = 0,
               Visited = 0;
      if (!parseU64(T[2], Id) || !parseU64(T[3], Status) ||
          !parseU64(T[4], Kind) || !parseU64(T[5], Reason) ||
          !parseU64(T[6], Degraded) || !parseU64(T[7], Visited))
        continue;
      auto It = Index.find(requestKey(Client, Id));
      if (It == Index.end())
        continue; // verdict without admission: ignore
      JournalEntry &E = Out[It->second];
      if (Status < static_cast<uint64_t>(ResponseStatus::Ok) ||
          Status > static_cast<uint64_t>(ResponseStatus::Error) ||
          Kind > static_cast<uint64_t>(VerdictKind::Unknown) ||
          Reason > static_cast<uint64_t>(TruncationReason::EngineFault))
        continue;
      E.Resp.Status = static_cast<ResponseStatus>(Status);
      E.Resp.Kind = static_cast<VerdictKind>(Kind);
      E.Resp.Reason = static_cast<TruncationReason>(Reason);
      E.Resp.Degraded = Degraded != 0;
      E.Resp.Visited = Visited;
      E.Resp.Detail = unescField(T[8]);
      E.Done = true;
    }
    // "H" headers and unknown types: skipped (forward compatibility).
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

struct Connection {
  int Fd = -1;
  std::string Client; ///< set by Hello; guarded by the server mutex
  std::mutex WriteM;
  std::atomic<bool> Open{true};

  void send(const Frame &F) {
    std::lock_guard<std::mutex> Lock(WriteM);
    writeFrame(Fd, F);
  }
};

using ConnPtr = std::shared_ptr<Connection>;

class Server {
public:
  Server(const ServerOptions &Opts, ServerStats &Stats)
      : Opts(Opts), Stats(Stats) {}

  int run();

private:
  struct Request {
    std::string Client;
    uint64_t Id = 0;
    QueryRequest Q;
    QueryResponse Resp;
    bool Done = false;
    CancelToken Cancel;
    std::weak_ptr<Connection> Waiter;
  };
  using ReqPtr = std::shared_ptr<Request>;

  void log(const std::string &Msg) {
    if (Opts.Verbose)
      std::cerr << "[tracesafed] " << Msg << "\n";
  }

  unsigned perClientCapLocked() const {
    if (Opts.PerClientCap)
      return Opts.PerClientCap;
    size_t Clients = std::max<size_t>(1, Connected.size());
    return std::max<unsigned>(
        1, Opts.QueueCap / static_cast<unsigned>(Clients));
  }

  void journalAdmitLocked(const Request &R) {
    if (!Journal.is_open())
      return;
    JournalEntry E;
    E.Client = R.Client;
    E.Id = R.Id;
    E.Q = R.Q;
    writeAdmitLine(Journal, E);
    Journal.flush();
  }

  void journalVerdictLocked(const Request &R) {
    if (!Journal.is_open())
      return;
    JournalEntry E;
    E.Client = R.Client;
    E.Id = R.Id;
    E.Resp = R.Resp;
    writeVerdictLine(Journal, E);
    Journal.flush();
  }

  void runRequest(ReqPtr Req) {
    QueryResponse R;
    try {
      R = evaluateQuery(Req->Q, Opts.QuotaCeiling, &Req->Cancel);
    } catch (...) {
      // evaluateQuery contains everything already; this is the last-ditch
      // belt so a bug in the containment cannot fault the task group.
      R = QueryResponse{};
      R.Status = ResponseStatus::Ok;
      R.Kind = VerdictKind::Unknown;
      R.Reason = TruncationReason::EngineFault;
    }
    ConnPtr W;
    {
      std::lock_guard<std::mutex> Lock(M);
      W = Req->Waiter.lock();
      if (ShuttingDown && R.Reason == TruncationReason::Cancelled) {
        // Shutdown-cancelled: leave the admission orphaned (no verdict
        // record, entry dropped) so a resumed daemon recomputes it
        // instead of serving a Cancelled verdict.
        Requests.erase(requestKey(Req->Client, Req->Id));
      } else {
        Req->Done = true;
        Req->Resp = R;
        ++Stats.Completed;
        if (R.Degraded)
          ++Stats.Degraded;
        journalVerdictLocked(*Req);
      }
      --Inflight;
      auto It = ClientLoad.find(Req->Client);
      if (It != ClientLoad.end() && --It->second == 0)
        ClientLoad.erase(It);
    }
    if (W && W->Open.load(std::memory_order_relaxed)) {
      Frame Out;
      Out.Type = FrameType::Verdict;
      Out.RequestId = Req->Id;
      Out.Payload = encodeResponse(R);
      try {
        W->send(Out);
      } catch (...) {
        // Client gone mid-send: the verdict is journaled; a reconnecting
        // client replays it by request id.
      }
    }
  }

  void handleSubmit(const ConnPtr &C, const Frame &F) {
    if (C->Client.empty())
      throw ProtocolError("submit before hello");
    Frame Out;
    Out.Type = FrameType::Verdict;
    Out.RequestId = F.RequestId;
    QueryRequest Q;
    if (!decodeSubmit(F.Payload, Q)) {
      QueryResponse R;
      R.Status = ResponseStatus::BadRequest;
      R.Detail = "malformed submit payload";
      {
        std::lock_guard<std::mutex> Lock(M);
        ++Stats.BadRequests;
      }
      Out.Payload = encodeResponse(R);
      C->send(Out);
      return;
    }
    ReqPtr Spawn;
    {
      std::lock_guard<std::mutex> Lock(M);
      std::string Key = requestKey(C->Client, F.RequestId);
      auto It = Requests.find(Key);
      if (It != Requests.end()) {
        // Idempotent retry: an in-flight request is re-targeted at this
        // connection; a completed one replays its stored verdict. Neither
        // consumes admission quota again.
        if (!It->second->Done) {
          It->second->Waiter = C;
          return;
        }
        ++Stats.Replayed;
        Out.Payload = encodeResponse(It->second->Resp);
      } else if (ShuttingDown || faultPoint(FaultSite::Admission) ||
                 Inflight >= Opts.QueueCap ||
                 ClientLoad[C->Client] >= perClientCapLocked()) {
        // Bounded admission: shed instead of queueing unboundedly. The
        // Admission fault site makes spurious shedding injectable — a
        // correct client treats Overloaded as retry-after-backoff.
        ++Stats.Overloaded;
        QueryResponse R;
        R.Status = ResponseStatus::Overloaded;
        R.Detail = ShuttingDown ? "shutting down" : "queue full";
        Out.Payload = encodeResponse(R);
      } else {
        auto Req = std::make_shared<Request>();
        Req->Client = C->Client;
        Req->Id = F.RequestId;
        Req->Q = std::move(Q);
        Req->Waiter = C;
        Requests.emplace(std::move(Key), Req);
        ++Inflight;
        ++ClientLoad[C->Client];
        ++Stats.Admitted;
        journalAdmitLocked(*Req);
        Spawn = std::move(Req);
      }
    }
    if (!Out.Payload.empty())
      C->send(Out);
    if (Spawn)
      Group->spawn([this, Spawn] { runRequest(Spawn); });
  }

  void handleCancel(const ConnPtr &C, const Frame &F) {
    if (C->Client.empty())
      throw ProtocolError("cancel before hello");
    std::lock_guard<std::mutex> Lock(M);
    auto It = Requests.find(requestKey(C->Client, F.RequestId));
    if (It != Requests.end() && !It->second->Done)
      It->second->Cancel.request();
  }

  void serveConnection(ConnPtr C) {
    std::string Buf;
    try {
      Frame F;
      while (readFrame(C->Fd, Buf, F)) {
        switch (F.Type) {
        case FrameType::Hello: {
          std::string Name;
          if (!decodeHello(F.Payload, Name) || Name.empty())
            throw ProtocolError("malformed hello");
          {
            std::lock_guard<std::mutex> Lock(M);
            C->Client = Name;
            ++Connected[Name];
          }
          Frame W;
          W.Type = FrameType::Welcome;
          W.Payload = encodeWelcome("tracesafed");
          C->send(W);
          break;
        }
        case FrameType::Submit:
          handleSubmit(C, F);
          break;
        case FrameType::Cancel:
          handleCancel(C, F);
          break;
        case FrameType::Ping: {
          Frame P;
          P.Type = FrameType::Pong;
          P.RequestId = F.RequestId;
          C->send(P);
          break;
        }
        default:
          throw ProtocolError("unexpected frame type");
        }
      }
    } catch (const std::exception &E) {
      std::lock_guard<std::mutex> Lock(M);
      ++Stats.ProtoErrors;
      if (Opts.Verbose)
        std::cerr << "[tracesafed] connection dropped: " << E.what()
                  << "\n";
    }
    C->Open.store(false, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(M);
      if (!C->Client.empty()) {
        auto It = Connected.find(C->Client);
        if (It != Connected.end() && --It->second == 0)
          Connected.erase(It);
      }
    }
    ::close(C->Fd);
  }

  const ServerOptions &Opts;
  ServerStats &Stats;
  std::mutex M;
  std::unordered_map<std::string, ReqPtr> Requests;
  std::unordered_map<std::string, unsigned> ClientLoad; ///< in-flight per client
  std::unordered_map<std::string, unsigned> Connected;  ///< open conns per client
  unsigned Inflight = 0;
  bool ShuttingDown = false;
  std::ofstream Journal;
  ThreadPool::TaskGroup *Group = nullptr;
};

int Server::run() {
  // Durability first: replay the journal before accepting traffic, so a
  // reconnecting client's retries hit stored verdicts, and compact it
  // (completed entries keep their verdicts; orphans keep only their
  // admission and are recomputed below).
  std::vector<ReqPtr> Orphans;
  if (!Opts.JournalPath.empty()) {
    if (Opts.Resume) {
      std::vector<JournalEntry> Entries =
          loadDaemonJournal(Opts.JournalPath);
      std::ofstream Compact(Opts.JournalPath + ".tmp",
                            std::ios::binary | std::ios::trunc);
      Compact << "H\t" << JournalVersion << "\ttracesafed\n";
      for (JournalEntry &E : Entries) {
        writeAdmitLine(Compact, E);
        if (E.Done)
          writeVerdictLine(Compact, E);
        auto Req = std::make_shared<Request>();
        Req->Client = E.Client;
        Req->Id = E.Id;
        Req->Q = std::move(E.Q);
        Req->Resp = std::move(E.Resp);
        Req->Done = E.Done;
        Requests.emplace(requestKey(Req->Client, Req->Id), Req);
        if (!Req->Done)
          Orphans.push_back(std::move(Req));
      }
      Compact.flush();
      if (!Compact) {
        std::cerr << "tracesafed: cannot rewrite journal "
                  << Opts.JournalPath << "\n";
        return 1;
      }
      Compact.close();
      if (std::rename((Opts.JournalPath + ".tmp").c_str(),
                      Opts.JournalPath.c_str()) != 0) {
        std::cerr << "tracesafed: cannot replace journal "
                  << Opts.JournalPath << "\n";
        return 1;
      }
      log("resumed " + std::to_string(Requests.size()) + " entries, " +
          std::to_string(Orphans.size()) + " orphans to recompute");
    }
    Journal.open(Opts.JournalPath, std::ios::binary | std::ios::app);
    if (!Journal) {
      std::cerr << "tracesafed: cannot open journal " << Opts.JournalPath
                << "\n";
      return 1;
    }
    if (!Opts.Resume) {
      Journal << "H\t" << JournalVersion << "\ttracesafed\n";
      Journal.flush();
    }
  }

  // Unix-domain listener.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::cerr << "tracesafed: socket path too long: " << Opts.SocketPath
              << "\n";
    return 1;
  }
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::cerr << "tracesafed: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    std::cerr << "tracesafed: bind/listen " << Opts.SocketPath << ": "
              << std::strerror(errno) << "\n";
    ::close(ListenFd);
    return 1;
  }

  std::unique_ptr<ThreadPool> Owned;
  if (Opts.Workers > 0)
    Owned = std::make_unique<ThreadPool>(Opts.Workers);
  ThreadPool &Pool = Owned ? *Owned : ThreadPool::shared();
  std::vector<std::thread> Readers;
  std::vector<ConnPtr> Conns;
  {
    ThreadPool::TaskGroup G(Pool);
    Group = &G;

    // Recompute orphaned admissions from the resumed journal: the crash
    // interrupted them mid-flight; their (client, id) keys are already
    // registered, so a retrying client attaches as waiter.
    for (ReqPtr &Req : Orphans) {
      std::lock_guard<std::mutex> Lock(M);
      ++Inflight;
      ++ClientLoad[Req->Client];
      ++Stats.Resumed;
      ReqPtr R = Req;
      G.spawn([this, R] { runRequest(R); });
    }
    Orphans.clear();
    log("listening on " + Opts.SocketPath);

    // Accept loop: poll with a short timeout so Stop is observed within
    // ~100ms even with no traffic.
    for (;;) {
      if (Opts.Stop && Opts.Stop->requested())
        break;
      pollfd Pfd{ListenFd, POLLIN, 0};
      int Ready = ::poll(&Pfd, 1, 100);
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        std::cerr << "tracesafed: poll: " << std::strerror(errno) << "\n";
        break;
      }
      if (Ready == 0)
        continue;
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        std::cerr << "tracesafed: accept: " << std::strerror(errno)
                  << "\n";
        break;
      }
      if (faultPoint(FaultSite::Accept)) {
        // Injected accept failure: the peer sees an immediate close and
        // retries through its backoff, like a listen backlog overflow.
        std::lock_guard<std::mutex> Lock(M);
        ++Stats.AcceptFaults;
        ::close(Fd);
        continue;
      }
      auto C = std::make_shared<Connection>();
      C->Fd = Fd;
      {
        std::lock_guard<std::mutex> Lock(M);
        ++Stats.Connections;
      }
      Conns.push_back(C);
      Readers.emplace_back([this, C] { serveConnection(C); });
    }

    // Shutdown: stop admitting, cancel in-flight queries (their journal
    // records stay orphaned for the next --resume), drain the group.
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
    {
      std::lock_guard<std::mutex> Lock(M);
      ShuttingDown = true;
      for (auto &KV : Requests)
        if (!KV.second->Done)
          KV.second->Cancel.request();
    }
    G.wait();
    Group = nullptr;
  }

  // Unblock and join the readers.
  for (ConnPtr &C : Conns)
    ::shutdown(C->Fd, SHUT_RDWR);
  for (std::thread &T : Readers)
    T.join();
  if (Journal.is_open())
    Journal.flush();
  log("clean shutdown: " + std::to_string(Stats.Completed) +
      " completed, " + std::to_string(Stats.Overloaded) + " shed");
  return 0;
}

} // namespace

int daemon::runServer(const ServerOptions &Options, ServerStats *Stats) {
  ServerStats Local;
  Server S(Options, Stats ? *Stats : Local);
  return S.run();
}
