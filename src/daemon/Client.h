//===----------------------------------------------------------------------===//
///
/// \file
/// Client library for the tracesafed daemon.
///
/// The client owns the retry story so callers get at-most-once *charging*
/// with at-least-once *delivery*:
///
///  - Request ids are allocated once per logical query and reused across
///    every retransmission. The server keys admissions on
///    (client name, request id), so a retry after a dropped connection
///    attaches to the in-flight computation or replays the stored verdict
///    — it never double-charges the admission quota.
///
///  - Transport errors (connect failure, torn frame, injected
///    ProtoRead/ProtoWrite fault, daemon restart) tear the connection down
///    and retry after truncated exponential backoff with deterministic
///    jitter (seedable, so tests replay the exact schedule).
///
///  - Overloaded verdicts are the server shedding load on purpose; with
///    RetryOverloaded (the default) they are retried through the same
///    backoff, otherwise surfaced to the caller.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_DAEMON_CLIENT_H
#define TRACESAFE_DAEMON_CLIENT_H

#include "daemon/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tracesafe {
namespace daemon {

struct ClientOptions {
  std::string SocketPath;
  /// Client identity; half of the idempotency key. Two clients sharing a
  /// name share replay state on the server, so make it unique per logical
  /// session.
  std::string Name = "client";
  /// Attempts per operation (connect, or one batch round-trip) before
  /// giving up. Each failure backs off before the next attempt.
  unsigned MaxAttempts = 8;
  /// Truncated exponential backoff: delay ~ U(0, min(Cap, Base * 2^n)).
  uint64_t BackoffBaseMs = 10;
  uint64_t BackoffCapMs = 1000;
  /// Jitter seed; fixed so tests can replay a schedule.
  uint64_t Seed = 1;
  /// Retry Overloaded responses (with backoff) instead of returning them.
  bool RetryOverloaded = true;
  /// First request id handed out; ids increment from here. A client that
  /// resumes an interrupted batch must reuse the original ids to hit the
  /// server's replay path.
  uint64_t FirstRequestId = 1;
};

/// Full jitter over a truncated exponential: delay is uniform in
/// [0, min(Cap, Base << Attempt)]. Pure so the unit test can pin the
/// schedule; \p Rng is any xorshift-style state word, advanced in place.
uint64_t backoffDelayMs(unsigned Attempt, uint64_t BaseMs, uint64_t CapMs,
                        uint64_t &Rng);

class DaemonClient {
public:
  struct Stats {
    uint64_t Connects = 0;          ///< successful connect+hello handshakes
    uint64_t Retries = 0;           ///< backoff sleeps taken
    uint64_t TransportErrors = 0;   ///< connections torn down on error
    uint64_t OverloadedRetries = 0; ///< Overloaded verdicts retried
  };

  explicit DaemonClient(ClientOptions Opts);
  ~DaemonClient();

  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  /// Submits one query and blocks for its verdict, retrying through
  /// reconnects. Throws ProtocolError once MaxAttempts is exhausted.
  QueryResponse call(const QueryRequest &Q);

  /// Submits a batch pipelined on one connection and collects the
  /// verdicts (returned in submission order; the wire order may differ).
  /// On a transport error only the unanswered ids are resubmitted — the
  /// server's idempotency makes the resubmission safe and free.
  std::vector<QueryResponse> callBatch(const std::vector<QueryRequest> &Qs);

  /// Requests cancellation of a previously submitted request id.
  /// Best-effort: a dead connection is simply dropped (the daemon's
  /// per-request deadline still bounds the orphan).
  void cancel(uint64_t RequestId);

  /// Id that the next submitted query will use; exposed so callers can
  /// correlate cancel() targets.
  uint64_t nextRequestId() const { return NextId; }

  const Stats &stats() const { return Counters; }

private:
  void disconnect();
  /// Ensures a connected, greeted socket; retries with backoff. Throws
  /// ProtocolError when attempts are exhausted.
  void ensureConnected();
  void backoff(unsigned Attempt);

  ClientOptions Opts;
  int Fd = -1;
  std::string ReadBuf;
  uint64_t NextId;
  uint64_t Rng;
  Stats Counters;
};

} // namespace daemon
} // namespace tracesafe

#endif // TRACESAFE_DAEMON_CLIENT_H
