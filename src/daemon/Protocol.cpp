#include "daemon/Protocol.h"

#include "support/Failure.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace tracesafe;
using namespace tracesafe::daemon;

//===----------------------------------------------------------------------===//
// CRC32
//===----------------------------------------------------------------------===//

namespace {

struct Crc32Table {
  uint32_t T[256];
  Crc32Table() {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
  }
};

const Crc32Table &crcTable() {
  static Crc32Table Table;
  return Table;
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t getU32(const unsigned char *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

uint64_t getU64(const unsigned char *P) {
  return static_cast<uint64_t>(getU32(P)) |
         (static_cast<uint64_t>(getU32(P + 4)) << 32);
}

} // namespace

uint32_t daemon::crc32(const void *Data, size_t Len) {
  const Crc32Table &Table = crcTable();
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = Table.T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

std::string daemon::encodeFrame(const Frame &F) {
  std::string Out;
  Out.reserve(FrameHeaderSize + F.Payload.size());
  putU32(Out, FrameMagic);
  Out.push_back(static_cast<char>(ProtocolVersion));
  Out.push_back(static_cast<char>(F.Type));
  Out.push_back(0); // flags, reserved
  Out.push_back(0);
  putU64(Out, F.RequestId);
  putU32(Out, static_cast<uint32_t>(F.Payload.size()));
  putU32(Out, crc32(F.Payload.data(), F.Payload.size()));
  Out += F.Payload;
  return Out;
}

const char *daemon::decodeStatusName(DecodeStatus S) {
  switch (S) {
  case DecodeStatus::Ok:
    return "ok";
  case DecodeStatus::NeedMore:
    return "need-more";
  case DecodeStatus::BadMagic:
    return "bad-magic";
  case DecodeStatus::BadVersion:
    return "bad-version";
  case DecodeStatus::BadLength:
    return "bad-length";
  case DecodeStatus::BadCrc:
    return "bad-crc";
  }
  return "invalid";
}

DecodeStatus daemon::decodeFrame(std::string &Buf, Frame &Out) {
  if (Buf.size() < FrameHeaderSize)
    return DecodeStatus::NeedMore;
  const auto *P = reinterpret_cast<const unsigned char *>(Buf.data());
  if (getU32(P) != FrameMagic)
    return DecodeStatus::BadMagic;
  if (P[4] != ProtocolVersion)
    return DecodeStatus::BadVersion;
  uint32_t Len = getU32(P + 16);
  if (Len > MaxFramePayload)
    return DecodeStatus::BadLength;
  if (Buf.size() < FrameHeaderSize + Len)
    return DecodeStatus::NeedMore;
  uint32_t WantCrc = getU32(P + 20);
  if (crc32(Buf.data() + FrameHeaderSize, Len) != WantCrc)
    return DecodeStatus::BadCrc;
  Out.Type = static_cast<FrameType>(P[5]);
  Out.RequestId = getU64(P + 8);
  Out.Payload.assign(Buf, FrameHeaderSize, Len);
  Buf.erase(0, FrameHeaderSize + Len);
  return DecodeStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Payload primitives
//===----------------------------------------------------------------------===//

void daemon::putU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}

void daemon::putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void daemon::putStr(std::string &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out += S;
}

bool PayloadReader::u8(uint8_t &V) {
  if (!Ok || Pos + 1 > Buf.size())
    return Ok = false;
  V = static_cast<uint8_t>(Buf[Pos++]);
  return true;
}

bool PayloadReader::u64(uint64_t &V) {
  if (!Ok || Pos + 8 > Buf.size())
    return Ok = false;
  V = getU64(reinterpret_cast<const unsigned char *>(Buf.data()) + Pos);
  Pos += 8;
  return true;
}

bool PayloadReader::str(std::string &V) {
  if (!Ok || Pos + 4 > Buf.size())
    return Ok = false;
  uint32_t Len =
      getU32(reinterpret_cast<const unsigned char *>(Buf.data()) + Pos);
  Pos += 4;
  if (Len > MaxFramePayload || Pos + Len > Buf.size())
    return Ok = false;
  V.assign(Buf, Pos, Len);
  Pos += Len;
  return true;
}

//===----------------------------------------------------------------------===//
// Query messages
//===----------------------------------------------------------------------===//

const char *daemon::queryKindName(QueryKind K) {
  switch (K) {
  case QueryKind::ProgramDrf:
    return "program-drf";
  case QueryKind::Behaviours:
    return "behaviours";
  case QueryKind::DrfGuarantee:
    return "drf-guarantee";
  case QueryKind::ThinAir:
    return "thin-air";
  case QueryKind::RaceLog:
    return "racelog";
  }
  return "invalid";
}

const char *daemon::responseStatusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::Overloaded:
    return "overloaded";
  case ResponseStatus::BadRequest:
    return "bad-request";
  case ResponseStatus::Error:
    return "error";
  }
  return "invalid";
}

std::string QueryResponse::str() const {
  std::string Out = responseStatusName(Status);
  Out += " ";
  Out += verdictKindName(Kind);
  Out += " ";
  Out += truncationReasonName(Reason);
  if (Degraded)
    Out += " degraded";
  Out += " visited=" + std::to_string(Visited);
  if (!Detail.empty())
    Out += " " + Detail;
  return Out;
}

std::string daemon::encodeHello(const std::string &ClientName) {
  std::string Out;
  putStr(Out, ClientName);
  return Out;
}

bool daemon::decodeHello(const std::string &Payload,
                         std::string &ClientName) {
  PayloadReader R(Payload);
  return R.str(ClientName) && R.done();
}

std::string daemon::encodeWelcome(const std::string &ServerName) {
  std::string Out;
  putU64(Out, ProtocolVersion);
  putStr(Out, ServerName);
  return Out;
}

bool daemon::decodeWelcome(const std::string &Payload,
                           std::string &ServerName) {
  PayloadReader R(Payload);
  uint64_t Version = 0;
  return R.u64(Version) && Version == ProtocolVersion &&
         R.str(ServerName) && R.done();
}

std::string daemon::encodeSubmit(const QueryRequest &Q) {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(Q.Kind));
  putU64(Out, static_cast<uint64_t>(Q.Budget.DeadlineMs));
  putU64(Out, Q.Budget.MaxVisited);
  putU64(Out, Q.Budget.MaxMemoryBytes);
  putStr(Out, Q.Program);
  putStr(Out, Q.Transformed);
  return Out;
}

bool daemon::decodeSubmit(const std::string &Payload, QueryRequest &Q) {
  PayloadReader R(Payload);
  uint8_t Kind = 0;
  uint64_t DeadlineMs = 0;
  if (!R.u8(Kind) || !R.u64(DeadlineMs) || !R.u64(Q.Budget.MaxVisited) ||
      !R.u64(Q.Budget.MaxMemoryBytes) || !R.str(Q.Program) ||
      !R.str(Q.Transformed) || !R.done())
    return false;
  if (Kind < static_cast<uint8_t>(QueryKind::ProgramDrf) ||
      Kind > static_cast<uint8_t>(QueryKind::RaceLog))
    return false;
  Q.Kind = static_cast<QueryKind>(Kind);
  Q.Budget.DeadlineMs = static_cast<int64_t>(DeadlineMs);
  return true;
}

std::string daemon::encodeResponse(const QueryResponse &R) {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(R.Status));
  putU8(Out, static_cast<uint8_t>(R.Kind));
  putU8(Out, static_cast<uint8_t>(R.Reason));
  putU8(Out, R.Degraded ? 1 : 0);
  putU64(Out, R.Visited);
  putStr(Out, R.Detail);
  return Out;
}

bool daemon::decodeResponse(const std::string &Payload, QueryResponse &R) {
  PayloadReader Rd(Payload);
  uint8_t Status = 0, Kind = 0, Reason = 0, Degraded = 0;
  if (!Rd.u8(Status) || !Rd.u8(Kind) || !Rd.u8(Reason) ||
      !Rd.u8(Degraded) || !Rd.u64(R.Visited) || !Rd.str(R.Detail) ||
      !Rd.done())
    return false;
  if (Status < static_cast<uint8_t>(ResponseStatus::Ok) ||
      Status > static_cast<uint8_t>(ResponseStatus::Error))
    return false;
  if (Kind > static_cast<uint8_t>(VerdictKind::Unknown) ||
      Reason > static_cast<uint8_t>(TruncationReason::EngineFault))
    return false;
  R.Status = static_cast<ResponseStatus>(Status);
  R.Kind = static_cast<VerdictKind>(Kind);
  R.Reason = static_cast<TruncationReason>(Reason);
  R.Degraded = Degraded != 0;
  return true;
}

//===----------------------------------------------------------------------===//
// Blocking fd transport
//===----------------------------------------------------------------------===//

void daemon::writeFrame(int Fd, const Frame &F) {
  if (faultPoint(FaultSite::ProtoWrite))
    throw ProtocolError("injected fault at proto-write");
  std::string Bytes = encodeFrame(F);
  size_t Off = 0;
  while (Off < Bytes.size()) {
    // MSG_NOSIGNAL: a peer that died mid-frame must surface as an EPIPE
    // ProtocolError (client retries, server drops the connection) — never
    // as a process-killing SIGPIPE.
    ssize_t N =
        ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throw ProtocolError(std::string("write: ") + std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
}

bool daemon::readFrame(int Fd, std::string &Buf, Frame &Out) {
  for (;;) {
    DecodeStatus S = decodeFrame(Buf, Out);
    if (S == DecodeStatus::Ok)
      return true;
    if (S != DecodeStatus::NeedMore)
      throw ProtocolError(std::string("corrupt frame: ") +
                          decodeStatusName(S));
    if (faultPoint(FaultSite::ProtoRead))
      throw ProtocolError("injected fault at proto-read");
    char Tmp[4096];
    ssize_t N = ::read(Fd, Tmp, sizeof(Tmp));
    if (N == 0) {
      if (Buf.empty())
        return false; // clean EOF at a frame boundary
      throw ProtocolError("eof mid-frame");
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throw ProtocolError(std::string("read: ") + std::strerror(errno));
    }
    Buf.append(Tmp, static_cast<size_t>(N));
  }
}
