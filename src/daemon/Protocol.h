//===----------------------------------------------------------------------===//
///
/// \file
/// Wire protocol of the tracesafed verification daemon.
///
/// Length-prefixed binary frames over a unix-domain stream socket. Every
/// frame carries a fixed little-endian header — magic, protocol version,
/// frame type, request id, payload length, payload CRC32 — followed by
/// the payload bytes. The CRC makes torn or bit-flipped frames detectable
/// at the decoder instead of surfacing as garbage queries: a corrupt
/// stream is a *transport* error (reconnect and retry under idempotent
/// request ids), never a wrong verdict. The format mirrors the journal's
/// robustness contract (see docs/PROTOCOL.md for the byte layout and
/// docs/ROBUSTNESS.md for the recovery semantics).
///
/// The codec is pure (strings in, strings out) so torn/truncated/garbage
/// frames are unit-testable without a socket; the fd helpers layer
/// blocking I/O and the ProtoRead/ProtoWrite fault-injection sites on
/// top.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_DAEMON_PROTOCOL_H
#define TRACESAFE_DAEMON_PROTOCOL_H

#include "support/Budget.h"

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tracesafe {
namespace daemon {

/// "TSFD" on the wire (little-endian u32).
constexpr uint32_t FrameMagic = 0x44465354;
constexpr uint8_t ProtocolVersion = 1;
/// Fixed header size in bytes; see docs/PROTOCOL.md.
constexpr size_t FrameHeaderSize = 24;
/// Upper bound on a single payload: a decoder must be able to reject a
/// corrupt length field without attempting a huge allocation.
constexpr uint32_t MaxFramePayload = 16u << 20;

enum class FrameType : uint8_t {
  Hello = 1,   ///< client -> server: client name
  Welcome = 2, ///< server -> client: version + server name
  Submit = 3,  ///< client -> server: one query (request id in header)
  Verdict = 4, ///< server -> client: response for one request id
  Cancel = 5,  ///< client -> server: cancel the request id in the header
  Ping = 6,    ///< client -> server: liveness probe
  Pong = 7,    ///< server -> client: liveness reply
};

struct Frame {
  FrameType Type = FrameType::Ping;
  uint64_t RequestId = 0;
  std::string Payload;
};

/// CRC32 (reflected, polynomial 0xEDB88320 — the zlib/PNG polynomial).
uint32_t crc32(const void *Data, size_t Len);

/// Serialises header + payload.
std::string encodeFrame(const Frame &F);

enum class DecodeStatus : uint8_t {
  Ok,        ///< one frame decoded and consumed from the buffer
  NeedMore,  ///< the buffer holds a frame prefix; keep reading
  BadMagic,  ///< stream out of sync or not a tracesafed peer
  BadVersion,///< peer speaks a different protocol revision
  BadLength, ///< declared payload length exceeds MaxFramePayload
  BadCrc,    ///< payload bytes do not match their checksum
};

const char *decodeStatusName(DecodeStatus S);

/// Attempts to decode one frame from the front of \p Buf. On Ok the
/// frame's bytes are removed from \p Buf (pipelined frames behind it are
/// kept). Any Bad* status means the stream is unrecoverably corrupt: the
/// connection must be dropped, not resynchronised.
DecodeStatus decodeFrame(std::string &Buf, Frame &Out);

//===----------------------------------------------------------------------===//
// Payload primitives (little-endian u8/u64, u32-length-prefixed strings)
//===----------------------------------------------------------------------===//

void putU8(std::string &Out, uint8_t V);
void putU64(std::string &Out, uint64_t V);
void putStr(std::string &Out, const std::string &S);

/// Bounds-checked cursor over a payload; every getter returns false once
/// the payload is exhausted or malformed (and stays false).
class PayloadReader {
public:
  explicit PayloadReader(const std::string &Buf) : Buf(Buf) {}
  bool u8(uint8_t &V);
  bool u64(uint64_t &V);
  bool str(std::string &V);
  /// True iff every byte was consumed and no getter failed.
  bool done() const { return Ok && Pos == Buf.size(); }

private:
  const std::string &Buf;
  size_t Pos = 0;
  bool Ok = true;
};

//===----------------------------------------------------------------------===//
// Query model
//===----------------------------------------------------------------------===//

enum class QueryKind : uint8_t {
  ProgramDrf = 1,   ///< is Program data race free?
  Behaviours = 2,   ///< enumerate Program's SC behaviours
  DrfGuarantee = 3, ///< DRF guarantee for (Program, Transformed)
  ThinAir = 4,      ///< out-of-thin-air guarantee for the pair
  RaceLog = 5,      ///< streaming HB race scan of a TSRL event log
};

const char *queryKindName(QueryKind K);

struct QueryRequest {
  QueryKind Kind = QueryKind::ProgramDrf;
  /// .tsl source of the original program — except for RaceLog queries,
  /// where this carries the raw TSRL log image (the payload strings are
  /// length-prefixed and binary-safe end to end).
  std::string Program;
  std::string Transformed; ///< .tsl source of the pair queries' second leg
  /// Requested per-query budget; field-wise 0 = "whatever the server's
  /// quota ceiling allows". The server clamps every field to its ceiling.
  BudgetSpec Budget;
};

enum class ResponseStatus : uint8_t {
  Ok = 1,         ///< the query ran; see the verdict fields
  Overloaded = 2, ///< shed by admission control; retry after backoff
  BadRequest = 3, ///< malformed payload or unparseable program
  Error = 4,      ///< transport-level failure injected by the client lib
};

const char *responseStatusName(ResponseStatus S);

struct QueryResponse {
  ResponseStatus Status = ResponseStatus::Error;
  VerdictKind Kind = VerdictKind::Unknown;
  TruncationReason Reason = TruncationReason::None;
  bool Degraded = false; ///< the sequential oracle fallback answered
  uint64_t Visited = 0;  ///< budget visits charged by the query
  std::string Detail;    ///< human-readable outcome / witness summary

  /// Canonical one-line rendering; the chaos test diffs these byte for
  /// byte between a resumed daemon run and a single-process run.
  std::string str() const;
};

std::string encodeHello(const std::string &ClientName);
bool decodeHello(const std::string &Payload, std::string &ClientName);
std::string encodeWelcome(const std::string &ServerName);
bool decodeWelcome(const std::string &Payload, std::string &ServerName);
std::string encodeSubmit(const QueryRequest &Q);
bool decodeSubmit(const std::string &Payload, QueryRequest &Q);
std::string encodeResponse(const QueryResponse &R);
bool decodeResponse(const std::string &Payload, QueryResponse &R);

//===----------------------------------------------------------------------===//
// Blocking fd transport
//===----------------------------------------------------------------------===//

/// Transport-level failure: EOF mid-frame, a socket error, a corrupt
/// frame, or an injected ProtoRead/ProtoWrite fault. The client library
/// maps these to reconnect-and-retry; the server drops the connection.
struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Writes one frame, looping over partial writes. Probes
/// FaultSite::ProtoWrite. Throws ProtocolError on failure.
void writeFrame(int Fd, const Frame &F);

/// Reads one frame into \p Out, buffering partial reads in \p Buf (the
/// caller keeps one buffer per connection). Returns false on a clean EOF
/// at a frame boundary. Probes FaultSite::ProtoRead. Throws ProtocolError
/// on mid-frame EOF, socket errors, or corrupt frames.
bool readFrame(int Fd, std::string &Buf, Frame &Out);

} // namespace daemon
} // namespace tracesafe

#endif // TRACESAFE_DAEMON_PROTOCOL_H
