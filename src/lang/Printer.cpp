#include "lang/Printer.h"

#include "support/Format.h"

using namespace tracesafe;

namespace {

std::string pad(unsigned Indent) { return std::string(Indent, ' '); }

} // namespace

std::string tracesafe::printStmt(const Stmt &S, unsigned Indent) {
  std::string P = pad(Indent);
  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto &A = cast<AssignStmt>(S);
    return P + Symbol::name(A.reg()) + " := " + A.src().str() + ";";
  }
  case StmtKind::Load: {
    const auto &L = cast<LoadStmt>(S);
    return P + Symbol::name(L.reg()) + " := " + Symbol::name(L.loc()) + ";";
  }
  case StmtKind::Store: {
    const auto &St = cast<StoreStmt>(S);
    return P + Symbol::name(St.loc()) + " := " + St.src().str() + ";";
  }
  case StmtKind::Lock:
    return P + "lock " + Symbol::name(cast<LockStmt>(S).monitor()) + ";";
  case StmtKind::Unlock:
    return P + "unlock " + Symbol::name(cast<UnlockStmt>(S).monitor()) + ";";
  case StmtKind::Skip:
    return P + "skip;";
  case StmtKind::Print:
    return P + "print " + cast<PrintStmt>(S).src().str() + ";";
  case StmtKind::Input:
    return P + "input " + Symbol::name(cast<InputStmt>(S).reg()) + ";";
  case StmtKind::Block: {
    const auto &B = cast<BlockStmt>(S);
    std::string Out = P + "{\n";
    Out += printStmtList(B.body(), Indent + 2);
    Out += P + "}";
    return Out;
  }
  case StmtKind::If: {
    const auto &I = cast<IfStmt>(S);
    std::string Out = P + "if (" + I.cond().str() + ")\n";
    Out += printStmt(I.thenStmt(), Indent + 2) + "\n";
    Out += P + "else\n";
    Out += printStmt(I.elseStmt(), Indent + 2);
    return Out;
  }
  case StmtKind::While: {
    const auto &W = cast<WhileStmt>(S);
    std::string Out = P + "while (" + W.cond().str() + ")\n";
    Out += printStmt(W.body(), Indent + 2);
    return Out;
  }
  }
  return P + "<invalid>";
}

std::string tracesafe::printStmtList(const StmtList &L, unsigned Indent) {
  std::string Out;
  for (const StmtPtr &S : L)
    Out += printStmt(*S, Indent) + "\n";
  return Out;
}

std::string tracesafe::printProgram(const Program &P) {
  std::string Out;
  if (!P.volatiles().empty()) {
    std::vector<std::string> Names;
    for (SymbolId V : P.volatiles())
      Names.push_back(Symbol::name(V));
    Out += "volatile " + join(Names, ", ") + ";\n";
  }
  for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid) {
    Out += "thread {\n";
    Out += printStmtList(P.thread(Tid), 2);
    Out += "}\n";
  }
  return Out;
}
