//===----------------------------------------------------------------------===//
///
/// \file
/// Labelled small-step semantics of the language (paper Fig 7 and Fig 8).
///
/// A thread-local configuration is the paper's (sigma, s, C): a monitor
/// nesting map, a register file, and a code fragment. We represent the code
/// fragment as an explicit continuation stack of statement pointers into the
/// (immutable) program AST; the structural rules SEQ/BLOCK/EV-* of Fig 7
/// become stack pushes and pops.
///
/// The only non-determinism in a thread-local step is the value returned by
/// a read (rule READ: v ranges over the whole value domain) — this is
/// exactly what makes the meaning of a code fragment a *set* of traces.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_LANG_SMALLSTEP_H
#define TRACESAFE_LANG_SMALLSTEP_H

#include "lang/Ast.h"

#include <compare>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace tracesafe {

/// Thread-local configuration (sigma, s, C).
struct ThreadState {
  /// sigma: monitor name -> nesting level of locks held by this thread.
  /// Zero entries are erased so equal states compare equal.
  std::map<SymbolId, int> Mon;
  /// s: register file; absent registers read as the default value 0.
  std::map<SymbolId, Value> Regs;
  /// C: continuation; back() is the next statement to execute. Pointers
  /// reference the Program's AST, which must outlive the state.
  std::vector<const Stmt *> Cont;

  bool done() const { return Cont.empty(); }

  friend auto operator<=>(const ThreadState &, const ThreadState &) = default;
};

/// Everything a step needs to know beyond the thread state: which locations
/// are volatile, and the value domain reads range over.
struct LangContext {
  const std::set<SymbolId> *Volatiles;
  std::vector<Value> Domain;

  explicit LangContext(const Program &P,
                       std::vector<Value> Domain = {0, 1})
      : Volatiles(&P.volatiles()), Domain(std::move(Domain)) {}

  bool isVolatile(SymbolId Loc) const { return Volatiles->count(Loc) != 0; }
};

/// One transition: the emitted action (nullopt for the paper's silent tau
/// steps) and the successor configuration.
struct Step {
  std::optional<Action> Act;
  ThreadState Next;
};

/// Initial configuration of thread \p Tid of \p P: sigma and s all-zero,
/// continuation = the thread body.
ThreadState initialThreadState(const Program &P, ThreadId Tid);

/// Val(s, ri): literal value or register content (default 0).
Value evalOperand(const ThreadState &S, const Operand &O);

/// Val(s, T) for conditions.
bool evalCond(const ThreadState &S, const Cond &C);

/// All successor steps of \p S per Fig 7. A configuration with an empty
/// continuation has no steps. Loads yield one step per domain value.
std::vector<Step> possibleSteps(const ThreadState &S, const LangContext &Ctx);

/// Variant used by the direct (sequentially consistent) program executor:
/// loads read the single value \p Memory(loc) instead of branching over the
/// domain. All other rules are identical.
std::vector<Step>
possibleStepsWithMemory(const ThreadState &S, const LangContext &Ctx,
                        const std::function<Value(SymbolId)> &Memory);

/// Runs silent steps until the next step would emit an action, the thread
/// terminates, or \p MaxSilentRun steps have been taken (in which case
/// *Truncated is set). Silent steps are deterministic, so this is a plain
/// loop. Returns the resulting state.
ThreadState silentClosure(ThreadState S, const LangContext &Ctx,
                          size_t MaxSilentRun, bool *Truncated);

} // namespace tracesafe

#endif // TRACESAFE_LANG_SMALLSTEP_H
