#include "lang/Lexer.h"

#include <cctype>

using namespace tracesafe;

std::vector<Token> tracesafe::lex(const std::string &Source) {
  std::vector<Token> Out;
  unsigned Line = 1;
  size_t I = 0, N = Source.size();
  auto Push = [&](TokenKind K, std::string Text = "", Value Num = 0) {
    Out.push_back(Token{K, std::move(Text), Num, Line});
  };
  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Push(TokenKind::Ident, Source.substr(Start, I - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      Push(TokenKind::Number, "",
           static_cast<Value>(std::stol(Source.substr(Start, I - Start))));
      continue;
    }
    if (C == ':' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokenKind::Assign);
      I += 2;
      continue;
    }
    if (C == '=' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokenKind::EqEq);
      I += 2;
      continue;
    }
    if (C == '!' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokenKind::NotEq);
      I += 2;
      continue;
    }
    switch (C) {
    case ';':
      Push(TokenKind::Semi);
      break;
    case ',':
      Push(TokenKind::Comma);
      break;
    case '{':
      Push(TokenKind::LBrace);
      break;
    case '}':
      Push(TokenKind::RBrace);
      break;
    case '(':
      Push(TokenKind::LParen);
      break;
    case ')':
      Push(TokenKind::RParen);
      break;
    default:
      Push(TokenKind::Error,
           std::string("unexpected character '") + C + "' at line " +
               std::to_string(Line));
      Push(TokenKind::EndOfFile);
      return Out;
    }
    ++I;
  }
  Push(TokenKind::EndOfFile);
  return Out;
}
