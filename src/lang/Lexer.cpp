#include "lang/Lexer.h"

#include <cctype>
#include <limits>

using namespace tracesafe;

std::vector<Token> tracesafe::lex(const std::string &Source) {
  std::vector<Token> Out;
  unsigned Line = 1;
  size_t LineStart = 0; // Index of the first character of the current line.
  size_t I = 0, N = Source.size();
  auto Col = [&](size_t At) {
    return static_cast<unsigned>(At - LineStart + 1);
  };
  auto PushAt = [&](size_t At, TokenKind K, std::string Text = "",
                    Value Num = 0) {
    Out.push_back(Token{K, std::move(Text), Num, Line, Col(At)});
  };
  auto Push = [&](TokenKind K, std::string Text = "", Value Num = 0) {
    PushAt(I, K, std::move(Text), Num);
  };
  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      LineStart = I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      PushAt(Start, TokenKind::Ident, Source.substr(Start, I - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      // Accumulate with an explicit overflow check: a literal wider than
      // Value must become a diagnostic, not undefined behaviour or an
      // exception out of the lexer.
      int64_t Acc = 0;
      bool Overflow = false;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I]))) {
        if (!Overflow) {
          Acc = Acc * 10 + (Source[I] - '0');
          if (Acc > std::numeric_limits<Value>::max())
            Overflow = true;
        }
        ++I;
      }
      if (Overflow) {
        PushAt(Start, TokenKind::Error,
               "line " + std::to_string(Line) + ", col " +
                   std::to_string(Col(Start)) +
                   ": integer literal out of range");
        Push(TokenKind::EndOfFile);
        return Out;
      }
      PushAt(Start, TokenKind::Number, "", static_cast<Value>(Acc));
      continue;
    }
    if (C == ':' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokenKind::Assign);
      I += 2;
      continue;
    }
    if (C == '=' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokenKind::EqEq);
      I += 2;
      continue;
    }
    if (C == '!' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokenKind::NotEq);
      I += 2;
      continue;
    }
    switch (C) {
    case ';':
      Push(TokenKind::Semi);
      break;
    case ',':
      Push(TokenKind::Comma);
      break;
    case '{':
      Push(TokenKind::LBrace);
      break;
    case '}':
      Push(TokenKind::RBrace);
      break;
    case '(':
      Push(TokenKind::LParen);
      break;
    case ')':
      Push(TokenKind::RParen);
      break;
    default:
      Push(TokenKind::Error,
           "line " + std::to_string(Line) + ", col " +
               std::to_string(Col(I)) + ": unexpected character '" + C +
               "'");
      Push(TokenKind::EndOfFile);
      return Out;
    }
    ++I;
  }
  Push(TokenKind::EndOfFile);
  return Out;
}
