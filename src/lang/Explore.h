//===----------------------------------------------------------------------===//
///
/// \file
/// Traceset generation: the meaning [[P]] of a program (paper §6).
///
/// The meaning of a code fragment is the set of traces it may issue, where
/// reads non-deterministically return any value of the domain (rule READ).
/// Over a finite value domain and with bounded trace length this set is
/// finite and we compute it by exhaustive DFS. Loop-free programs are
/// explored exactly (their traces are shorter than any sensible bound);
/// loops are truncated at the action bound, which keeps the set
/// prefix-closed — exactly the paper's model of partial executions.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_LANG_EXPLORE_H
#define TRACESAFE_LANG_EXPLORE_H

#include "lang/SmallStep.h"
#include "support/Budget.h"
#include "trace/Traceset.h"

#include <cstdint>

namespace tracesafe {

/// Bounds for thread exploration.
struct ExploreLimits {
  /// Maximum number of actions per trace (excluding the start action).
  size_t MaxActions = 24;
  /// Maximum consecutive silent steps before a thread is declared stuck
  /// (cuts `while (r0 == r0) skip;`).
  size_t MaxSilentRun = 512;
  /// Global cap on explored configurations.
  uint64_t MaxStates = 20'000'000;
  /// Optional shared query budget (deadline / visit / memory caps across
  /// every engine of one query). Non-owning; may be null.
  Budget *Shared = nullptr;
  /// programTraceset workers: 1 = sequential; 0 = the shared work-stealing
  /// pool at its default width; N > 1 = exactly N. Threads are explored
  /// into per-thread tracesets and merged in thread order, so the result
  /// is identical for every width.
  unsigned Workers = 1;
};

struct ExploreStats {
  uint64_t Visited = 0;
  bool Truncated = false;
  /// Why the search was truncated (None when !Truncated).
  TruncationReason Reason = TruncationReason::None;

  void truncate(TruncationReason R) {
    Truncated = true;
    Reason = mergeReason(Reason, R);
  }
  void merge(const ExploreStats &Other) {
    Visited += Other.Visited;
    Truncated |= Other.Truncated;
    Reason = mergeReason(Reason, Other.Reason);
  }
};

/// Adds every trace thread \p Tid of \p P may issue — prefixed with
/// S(Tid) — to \p Out.
ExploreStats exploreThread(const Program &P, ThreadId Tid,
                           const std::vector<Value> &Domain, Traceset &Out,
                           ExploreLimits Limits = {});

/// [[P]]: the union over all threads, with the traceset's value domain set
/// to \p Domain.
Traceset programTraceset(const Program &P, const std::vector<Value> &Domain,
                         ExploreLimits Limits = {},
                         ExploreStats *Stats = nullptr);

/// Picks a value domain large enough for \p P: every constant mentioned by
/// the program plus the default value, padded with fresh values up to at
/// least \p MinSize. Using the constants that actually occur keeps
/// tracesets small without losing any SC behaviour of the program itself
/// (reads can only ever observe written constants or 0); the padding gives
/// wildcard-instantiation room for the transformation checkers.
std::vector<Value> defaultDomainFor(const Program &P, size_t MinSize = 2);

} // namespace tracesafe

#endif // TRACESAFE_LANG_EXPLORE_H
