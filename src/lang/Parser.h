//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the simple concurrent language.
///
/// Concrete syntax (see also Printer.h; printing then parsing is the
/// identity on ASTs):
///
/// \code
///   volatile v, w;          // optional; marks locations volatile
///   thread {                // one section per thread, in entry-point order
///     r1 := x;              // load (identifiers starting with 'r' are
///     x := 1;               //   registers; everything else is a location)
///     x := r1;              // store
///     r1 := 2;              // register := operand
///     r2 := r1;
///     lock m; unlock m;
///     sync m { x := 1; }    // sugar: { lock m; { ... } unlock m; }
///     skip;
///     print r1;  print 0;
///     if (r1 == r2) { ... } else { ... }    // else is mandatory, as in
///     while (r1 != 0) { ... }               //   the paper's grammar
///   }
/// \endcode
///
/// Registers are identifiers beginning with 'r' (the paper's convention in
/// §2); any other identifier on the left of `:=` or the right of a load is
/// a shared-memory location; identifiers after lock/unlock are monitors.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_LANG_PARSER_H
#define TRACESAFE_LANG_PARSER_H

#include "lang/Ast.h"

#include <optional>
#include <string>

namespace tracesafe {

/// Result of a parse: either a program or an error message carrying the
/// offending line and column. Malformed input never crashes the parser:
/// lexer errors (stray characters, out-of-range literals) surface here, and
/// pathologically deep nesting is rejected with a diagnostic instead of
/// overflowing the stack.
struct ParseResult {
  std::optional<Program> Prog;
  std::string Error;

  explicit operator bool() const { return Prog.has_value(); }
};

/// Parses \p Source into a Program.
ParseResult parseProgram(const std::string &Source);

/// Convenience for tests: parses and asserts success (aborts with the error
/// message otherwise).
Program parseOrDie(const std::string &Source);

/// True iff \p Name denotes a register (starts with 'r').
bool isRegisterName(const std::string &Name);

} // namespace tracesafe

#endif // TRACESAFE_LANG_PARSER_H
