#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <cstdio>
#include <cstdlib>

using namespace tracesafe;

bool tracesafe::isRegisterName(const std::string &Name) {
  return !Name.empty() && Name[0] == 'r';
}

namespace {

/// Recursive-descent parser over the token stream. Errors are reported by
/// setting Err and unwinding via null returns (no exceptions, per the
/// coding standards).
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ParseResult run() {
    Program P;
    // Optional volatile declarations.
    while (peekIdent("volatile")) {
      next();
      do {
        Token T = next();
        if (T.Kind != TokenKind::Ident)
          return fail(T, "expected location name in volatile declaration");
        P.markVolatile(T.Text);
      } while (accept(TokenKind::Comma));
      if (!expect(TokenKind::Semi, "';' after volatile declaration"))
        return takeError();
    }
    // Threads.
    while (peekIdent("thread")) {
      next();
      if (!expect(TokenKind::LBrace, "'{' after 'thread'"))
        return takeError();
      StmtList Body = parseStmtListUntilRBrace();
      if (!Err.empty())
        return takeError();
      P.addThread(std::move(Body));
    }
    Token T = peek();
    if (T.Kind != TokenKind::EndOfFile)
      return fail(T, "expected 'thread' or end of input");
    if (P.threadCount() == 0)
      return fail(T, "program has no threads");
    ParseResult R;
    R.Prog = std::move(P);
    return R;
  }

private:
  /// Statement-nesting cap: recursion depth is bounded by the input, so an
  /// adversarial "{{{{..." must become a diagnostic, not a stack overflow.
  static constexpr unsigned MaxNestingDepth = 200;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  unsigned Depth = 0;
  std::string Err;

  const Token &peek() const { return Tokens[Pos]; }
  Token next() { return Tokens[Pos == Tokens.size() - 1 ? Pos : Pos++]; }

  bool peekIdent(const std::string &S) const {
    return peek().Kind == TokenKind::Ident && peek().Text == S;
  }

  bool accept(TokenKind K) {
    if (peek().Kind != K)
      return false;
    next();
    return true;
  }

  bool expect(TokenKind K, const std::string &What) {
    if (accept(K))
      return true;
    error(peek(), "expected " + What);
    return false;
  }

  void error(const Token &T, const std::string &Msg) {
    if (!Err.empty())
      return; // Keep the first error.
    Err = "line " + std::to_string(T.Line) + ", col " +
          std::to_string(T.Col) + ": " + Msg;
  }

  ParseResult fail(const Token &T, const std::string &Msg) {
    error(T, Msg);
    return takeError();
  }

  ParseResult takeError() {
    ParseResult R;
    R.Error = Err.empty() ? "parse error" : Err;
    return R;
  }

  /// Parses statements until the matching '}' (consumed).
  StmtList parseStmtListUntilRBrace() {
    StmtList Out;
    while (Err.empty()) {
      if (accept(TokenKind::RBrace))
        return Out;
      if (peek().Kind == TokenKind::EndOfFile) {
        error(peek(), "unterminated block");
        return Out;
      }
      StmtPtr S = parseStmt();
      if (!S)
        return Out;
      Out.push_back(std::move(S));
    }
    return Out;
  }

  std::optional<Operand> parseOperand() {
    Token T = next();
    if (T.Kind == TokenKind::Number)
      return Operand::imm(T.Num);
    if (T.Kind == TokenKind::Ident && isRegisterName(T.Text))
      return Operand::reg(T.Text);
    error(T, "expected register or integer literal");
    return std::nullopt;
  }

  std::optional<Cond> parseCond() {
    std::optional<Operand> L = parseOperand();
    if (!L)
      return std::nullopt;
    Token Op = next();
    bool IsEq;
    if (Op.Kind == TokenKind::EqEq)
      IsEq = true;
    else if (Op.Kind == TokenKind::NotEq)
      IsEq = false;
    else {
      error(Op, "expected '==' or '!='");
      return std::nullopt;
    }
    std::optional<Operand> R = parseOperand();
    if (!R)
      return std::nullopt;
    return Cond{IsEq, *L, *R};
  }

  StmtPtr parseStmt() {
    if (Depth >= MaxNestingDepth) {
      error(peek(), "statements nested deeper than " +
                        std::to_string(MaxNestingDepth) + " levels");
      return nullptr;
    }
    ++Depth;
    StmtPtr S = parseStmtInner();
    --Depth;
    return S;
  }

  StmtPtr parseStmtInner() {
    Token T = next();
    switch (T.Kind) {
    case TokenKind::LBrace: {
      StmtList Body = parseStmtListUntilRBrace();
      if (!Err.empty())
        return nullptr;
      return std::make_unique<BlockStmt>(std::move(Body));
    }
    case TokenKind::Ident:
      break; // Handled below.
    default:
      error(T, "expected statement");
      return nullptr;
    }

    const std::string &Name = T.Text;
    if (Name == "skip") {
      if (!expect(TokenKind::Semi, "';' after skip"))
        return nullptr;
      return std::make_unique<SkipStmt>();
    }
    if (Name == "sync") {
      // Java-flavoured sugar: `sync m { L }` is
      // `{ lock m; { L } unlock m; }`.
      Token M = next();
      if (M.Kind != TokenKind::Ident) {
        error(M, "expected monitor name after 'sync'");
        return nullptr;
      }
      if (!expect(TokenKind::LBrace, "'{' after sync monitor"))
        return nullptr;
      StmtList Body = parseStmtListUntilRBrace();
      if (!Err.empty())
        return nullptr;
      SymbolId Mon = Symbol::intern(M.Text);
      StmtList Out;
      Out.push_back(std::make_unique<LockStmt>(Mon));
      Out.push_back(std::make_unique<BlockStmt>(std::move(Body)));
      Out.push_back(std::make_unique<UnlockStmt>(Mon));
      return std::make_unique<BlockStmt>(std::move(Out));
    }
    if (Name == "lock" || Name == "unlock") {
      Token M = next();
      if (M.Kind != TokenKind::Ident) {
        error(M, "expected monitor name after '" + Name + "'");
        return nullptr;
      }
      if (!expect(TokenKind::Semi, "';' after " + Name))
        return nullptr;
      SymbolId Mon = Symbol::intern(M.Text);
      if (Name == "lock")
        return std::make_unique<LockStmt>(Mon);
      return std::make_unique<UnlockStmt>(Mon);
    }
    if (Name == "input") {
      Token Rg = next();
      if (Rg.Kind != TokenKind::Ident || !isRegisterName(Rg.Text)) {
        error(Rg, "expected register name after 'input'");
        return nullptr;
      }
      if (!expect(TokenKind::Semi, "';' after input"))
        return nullptr;
      return std::make_unique<InputStmt>(Symbol::intern(Rg.Text));
    }
    if (Name == "print") {
      std::optional<Operand> Src = parseOperand();
      if (!Src)
        return nullptr;
      if (!expect(TokenKind::Semi, "';' after print"))
        return nullptr;
      return std::make_unique<PrintStmt>(*Src);
    }
    if (Name == "if") {
      if (!expect(TokenKind::LParen, "'(' after 'if'"))
        return nullptr;
      std::optional<Cond> C = parseCond();
      if (!C)
        return nullptr;
      if (!expect(TokenKind::RParen, "')' after condition"))
        return nullptr;
      StmtPtr Then = parseStmt();
      if (!Then)
        return nullptr;
      if (!peekIdent("else")) {
        error(peek(), "expected 'else' (the grammar's if always has one)");
        return nullptr;
      }
      next();
      StmtPtr Else = parseStmt();
      if (!Else)
        return nullptr;
      return std::make_unique<IfStmt>(*C, std::move(Then), std::move(Else));
    }
    if (Name == "while") {
      if (!expect(TokenKind::LParen, "'(' after 'while'"))
        return nullptr;
      std::optional<Cond> C = parseCond();
      if (!C)
        return nullptr;
      if (!expect(TokenKind::RParen, "')' after condition"))
        return nullptr;
      StmtPtr Body = parseStmt();
      if (!Body)
        return nullptr;
      return std::make_unique<WhileStmt>(*C, std::move(Body));
    }

    // Assignment forms: `<ident> := ...`.
    if (!expect(TokenKind::Assign, "':=' in assignment"))
      return nullptr;
    if (isRegisterName(Name)) {
      SymbolId Reg = Symbol::intern(Name);
      Token Rhs = peek();
      if (Rhs.Kind == TokenKind::Ident && !isRegisterName(Rhs.Text)) {
        next();
        if (!expect(TokenKind::Semi, "';' after load"))
          return nullptr;
        return std::make_unique<LoadStmt>(Reg, Symbol::intern(Rhs.Text));
      }
      std::optional<Operand> Src = parseOperand();
      if (!Src)
        return nullptr;
      if (!expect(TokenKind::Semi, "';' after assignment"))
        return nullptr;
      return std::make_unique<AssignStmt>(Reg, *Src);
    }
    // Store to a location.
    SymbolId Loc = Symbol::intern(Name);
    std::optional<Operand> Src = parseOperand();
    if (!Src)
      return nullptr;
    if (!expect(TokenKind::Semi, "';' after store"))
      return nullptr;
    return std::make_unique<StoreStmt>(Loc, *Src);
  }
};

} // namespace

ParseResult tracesafe::parseProgram(const std::string &Source) {
  std::vector<Token> Tokens = lex(Source);
  for (const Token &T : Tokens)
    if (T.Kind == TokenKind::Error) {
      ParseResult R;
      R.Error = T.Text;
      return R;
    }
  return Parser(std::move(Tokens)).run();
}

Program tracesafe::parseOrDie(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  if (!R) {
    std::fprintf(stderr, "parseOrDie: %s\nsource:\n%s\n", R.Error.c_str(),
                 Source.c_str());
    std::abort();
  }
  return std::move(*R.Prog);
}
