#include "lang/Explore.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace tracesafe;

namespace {

class ThreadExplorer {
public:
  ThreadExplorer(const LangContext &Ctx, Traceset &Out, ExploreLimits Limits)
      : Ctx(Ctx), Out(Out), Limits(Limits) {}

  ExploreStats run(const Program &P, ThreadId Tid) {
    Current.push_back(Action::mkStart(Tid));
    Out.insert(Current);
    dfs(initialThreadState(P, Tid), Limits.MaxSilentRun);
    return Stats;
  }

private:
  void dfs(const ThreadState &S, size_t SilentBudget) {
    if (++Stats.Visited > Limits.MaxStates) {
      Stats.truncate(TruncationReason::StateCap);
      return;
    }
    // Tracesets retain every explored prefix, so charge the shared budget
    // roughly one trace-node worth of memory per expansion.
    if (Limits.Shared && !Limits.Shared->charge(/*Bytes=*/64)) {
      Stats.truncate(Limits.Shared->reason());
      return;
    }
    if (S.done())
      return;
    for (Step &St : possibleSteps(S, Ctx)) {
      if (!St.Act) {
        if (SilentBudget == 0) {
          Stats.truncate(TruncationReason::SilentLoop);
          continue;
        }
        dfs(St.Next, SilentBudget - 1);
        continue;
      }
      if (Current.size() - 1 >= Limits.MaxActions) {
        Stats.truncate(TruncationReason::DepthCap);
        continue;
      }
      Current.push_back(*St.Act);
      Out.insert(Current);
      dfs(St.Next, Limits.MaxSilentRun);
      Current.pop_back();
    }
  }

  const LangContext &Ctx;
  Traceset &Out;
  ExploreLimits Limits;
  ExploreStats Stats;
  Trace Current;
};

void collectConstants(const Stmt &S, std::set<Value> &Out) {
  auto FromOperand = [&Out](const Operand &O) {
    if (O.IsImm)
      Out.insert(O.Imm);
  };
  switch (S.kind()) {
  case StmtKind::Assign:
    FromOperand(cast<AssignStmt>(S).src());
    break;
  case StmtKind::Store:
    FromOperand(cast<StoreStmt>(S).src());
    break;
  case StmtKind::Print:
    FromOperand(cast<PrintStmt>(S).src());
    break;
  case StmtKind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S).body())
      collectConstants(*Sub, Out);
    break;
  case StmtKind::If: {
    const auto &I = cast<IfStmt>(S);
    FromOperand(I.cond().Lhs);
    FromOperand(I.cond().Rhs);
    collectConstants(I.thenStmt(), Out);
    collectConstants(I.elseStmt(), Out);
    break;
  }
  case StmtKind::While: {
    const auto &W = cast<WhileStmt>(S);
    FromOperand(W.cond().Lhs);
    FromOperand(W.cond().Rhs);
    collectConstants(W.body(), Out);
    break;
  }
  case StmtKind::Load:
  case StmtKind::Lock:
  case StmtKind::Unlock:
  case StmtKind::Skip:
  case StmtKind::Input:
    break;
  }
}

} // namespace

ExploreStats tracesafe::exploreThread(const Program &P, ThreadId Tid,
                                      const std::vector<Value> &Domain,
                                      Traceset &Out, ExploreLimits Limits) {
  LangContext Ctx(P, Domain);
  ThreadExplorer E(Ctx, Out, Limits);
  return E.run(P, Tid);
}

Traceset tracesafe::programTraceset(const Program &P,
                                    const std::vector<Value> &Domain,
                                    ExploreLimits Limits,
                                    ExploreStats *Stats) {
  Traceset Out(Domain);
  ExploreStats Total;
  ThreadId NumThreads = P.threadCount();
  if (Limits.Workers == 1 || NumThreads <= 1) {
    for (ThreadId Tid = 0; Tid < NumThreads; ++Tid) {
      // Exception containment: a failed exploration (allocation failure,
      // injected fault) leaves this thread's traceset partial, which is
      // exactly what a truncated traceset means — callers already refuse
      // to conclude anything definitive from it.
      try {
        Total.merge(exploreThread(P, Tid, Domain, Out, Limits));
      } catch (...) {
        Total.truncate(TruncationReason::EngineFault);
        if (Limits.Shared)
          Limits.Shared->poison(TruncationReason::EngineFault);
        break;
      }
    }
  } else {
    // One task per program thread, each into its own traceset; merging in
    // thread order keeps the result independent of scheduling.
    std::vector<Traceset> Parts(NumThreads, Traceset(Domain));
    std::vector<ExploreStats> PartStats(NumThreads);
    std::unique_ptr<ThreadPool> Owned;
    ThreadPool *Pool = &ThreadPool::shared();
    if (Limits.Workers > 1) {
      Owned = std::make_unique<ThreadPool>(Limits.Workers);
      Pool = Owned.get();
    }
    {
      ThreadPool::TaskGroup G(*Pool);
      for (ThreadId Tid = 0; Tid < NumThreads; ++Tid)
        G.spawn([&P, &Domain, &Parts, &PartStats, Limits, Tid] {
          PartStats[Tid] =
              exploreThread(P, Tid, Domain, Parts[Tid], Limits);
        });
      G.wait();
      // A task that threw left its Parts[Tid] partial and its PartStats
      // default-complete; the merged traceset below is therefore missing
      // whole suffixes and must be marked truncated, not trusted.
      if (G.faulted()) {
        G.takeException();
        Total.truncate(TruncationReason::EngineFault);
        if (Limits.Shared)
          Limits.Shared->poison(TruncationReason::EngineFault);
      }
    }
    for (ThreadId Tid = 0; Tid < NumThreads; ++Tid) {
      Out.merge(Parts[Tid]);
      Total.merge(PartStats[Tid]);
    }
  }
  if (Stats)
    *Stats = Total;
  return Out;
}

std::vector<Value> tracesafe::defaultDomainFor(const Program &P,
                                               size_t MinSize) {
  std::set<Value> Vals;
  Vals.insert(DefaultValue);
  for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid)
    for (const StmtPtr &S : P.thread(Tid))
      collectConstants(*S, Vals);
  Value Fresh = Vals.empty() ? 1 : *Vals.rbegin() + 1;
  while (Vals.size() < MinSize)
    Vals.insert(Fresh++);
  return std::vector<Value>(Vals.begin(), Vals.end());
}
