//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printer for the simple concurrent language.
///
/// The output is re-parseable by the Parser, which the test suite checks by
/// round-tripping every program it touches.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_LANG_PRINTER_H
#define TRACESAFE_LANG_PRINTER_H

#include "lang/Ast.h"

#include <string>

namespace tracesafe {

/// Renders one statement, indented by \p Indent spaces.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a statement list (one statement per line).
std::string printStmtList(const StmtList &L, unsigned Indent = 0);

/// Renders a whole program: volatile declarations, then one
/// `thread { ... }` section per thread.
std::string printProgram(const Program &P);

} // namespace tracesafe

#endif // TRACESAFE_LANG_PRINTER_H
