//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of the simple concurrent language (paper §6, Fig 6).
///
///   ri ::= r | i
///   T  ::= ri == ri | ri != ri
///   S  ::= l := r; | r := l; | r := ri; | lock m; | unlock m; | skip;
///        | print r; | {L} | if (T) S else S | while (T) S
///   L  ::= S | S L
///   P  ::= L || L || ... || L
///
/// Conservative extensions (documented in DESIGN.md): stores and prints
/// accept an operand `ri` (register or literal) where the paper's grammar
/// has a bare register; the examples in the paper (e.g. `x := 1`) already
/// use this sugar.
///
/// The statement hierarchy uses LLVM-style RTTI (a kind discriminator plus
/// classof) rather than dynamic_cast.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_LANG_AST_H
#define TRACESAFE_LANG_AST_H

#include "trace/Action.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace tracesafe {

/// ri ::= r | i — a register name or an integer literal.
struct Operand {
  bool IsImm = true;
  Value Imm = 0;
  SymbolId Reg = 0;

  static Operand imm(Value V) {
    Operand O;
    O.IsImm = true;
    O.Imm = V;
    return O;
  }
  static Operand reg(SymbolId R) {
    Operand O;
    O.IsImm = false;
    O.Reg = R;
    return O;
  }
  static Operand reg(const std::string &Name) {
    return reg(Symbol::intern(Name));
  }

  friend auto operator<=>(const Operand &, const Operand &) = default;

  std::string str() const {
    return IsImm ? std::to_string(Imm) : Symbol::name(Reg);
  }
};

/// T ::= ri == ri | ri != ri.
struct Cond {
  bool IsEq = true;
  Operand Lhs;
  Operand Rhs;

  static Cond eq(Operand L, Operand R) { return Cond{true, L, R}; }
  static Cond ne(Operand L, Operand R) { return Cond{false, L, R}; }

  friend auto operator<=>(const Cond &, const Cond &) = default;

  std::string str() const {
    return Lhs.str() + (IsEq ? " == " : " != ") + Rhs.str();
  }
};

enum class StmtKind : uint8_t {
  Assign, ///< r := ri
  Load,   ///< r := l
  Store,  ///< l := ri
  Lock,   ///< lock m
  Unlock, ///< unlock m
  Skip,   ///< skip
  Print,  ///< print ri
  Input,  ///< input r — external input (X(v) with environment-chosen v)
  Block,  ///< { L }
  If,     ///< if (T) S else S
  While,  ///< while (T) S
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Deep copy of a statement list.
StmtList cloneList(const StmtList &L);
/// Structural equality of statement lists.
bool listEquals(const StmtList &A, const StmtList &B);

/// Base class of all statements.
class Stmt {
public:
  virtual ~Stmt() = default;

  StmtKind kind() const { return Kind; }

  virtual StmtPtr clone() const = 0;

  /// Structural equality (same shape, same symbols, same literals).
  virtual bool equals(const Stmt &Other) const = 0;

  /// Collects every symbol the statement mentions into \p Regs (register
  /// names), \p Locs (shared-memory locations) and \p Mons (monitors).
  /// The union of Regs and Locs is the paper's fv(S) as used by the Fig 10
  /// side conditions.
  virtual void collectSymbols(std::set<SymbolId> &Regs,
                              std::set<SymbolId> &Locs,
                              std::set<SymbolId> &Mons) const = 0;

  /// §6.1: S is sync-free iff it contains no lock or unlock statements and
  /// no accesses to volatile locations.
  bool isSyncFree(const std::set<SymbolId> &Volatiles) const;

  /// True iff the statement mentions any symbol in \p Syms (register,
  /// location or monitor position).
  bool mentionsAny(const std::set<SymbolId> &Syms) const;

protected:
  explicit Stmt(StmtKind K) : Kind(K) {}
  Stmt(const Stmt &) = default;

private:
  StmtKind Kind;
};

/// r := ri.
class AssignStmt : public Stmt {
public:
  AssignStmt(SymbolId Reg, Operand Src)
      : Stmt(StmtKind::Assign), Reg(Reg), Src(Src) {}

  SymbolId reg() const { return Reg; }
  const Operand &src() const { return Src; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

private:
  SymbolId Reg;
  Operand Src;
};

/// r := l.
class LoadStmt : public Stmt {
public:
  LoadStmt(SymbolId Reg, SymbolId Loc)
      : Stmt(StmtKind::Load), Reg(Reg), Loc(Loc) {}

  SymbolId reg() const { return Reg; }
  SymbolId loc() const { return Loc; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Load; }

private:
  SymbolId Reg;
  SymbolId Loc;
};

/// l := ri.
class StoreStmt : public Stmt {
public:
  StoreStmt(SymbolId Loc, Operand Src)
      : Stmt(StmtKind::Store), Loc(Loc), Src(Src) {}

  SymbolId loc() const { return Loc; }
  const Operand &src() const { return Src; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Store; }

private:
  SymbolId Loc;
  Operand Src;
};

/// lock m.
class LockStmt : public Stmt {
public:
  explicit LockStmt(SymbolId Mon) : Stmt(StmtKind::Lock), Mon(Mon) {}

  SymbolId monitor() const { return Mon; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Lock; }

private:
  SymbolId Mon;
};

/// unlock m.
class UnlockStmt : public Stmt {
public:
  explicit UnlockStmt(SymbolId Mon) : Stmt(StmtKind::Unlock), Mon(Mon) {}

  SymbolId monitor() const { return Mon; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Unlock; }

private:
  SymbolId Mon;
};

/// skip.
class SkipStmt : public Stmt {
public:
  SkipStmt() : Stmt(StmtKind::Skip) {}

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Skip; }
};

/// print ri.
class PrintStmt : public Stmt {
public:
  explicit PrintStmt(Operand Src) : Stmt(StmtKind::Print), Src(Src) {}

  const Operand &src() const { return Src; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Print; }

private:
  Operand Src;
};

/// input r — the paper's X(v) as an *input*: an external action whose
/// value is chosen by the environment (any value of the exploration
/// domain) and stored into register r. Externals are observable, so input
/// values appear in behaviours just like printed ones.
class InputStmt : public Stmt {
public:
  explicit InputStmt(SymbolId Reg) : Stmt(StmtKind::Input), Reg(Reg) {}

  SymbolId reg() const { return Reg; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Input; }

private:
  SymbolId Reg;
};

/// { L }.
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(StmtList Body)
      : Stmt(StmtKind::Block), Body(std::move(Body)) {}

  const StmtList &body() const { return Body; }
  StmtList &body() { return Body; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }

private:
  StmtList Body;
};

/// if (T) S else S.
class IfStmt : public Stmt {
public:
  IfStmt(Cond C, StmtPtr Then, StmtPtr Else)
      : Stmt(StmtKind::If), C(C), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Cond &cond() const { return C; }
  const Stmt &thenStmt() const { return *Then; }
  const Stmt &elseStmt() const { return *Else; }
  Stmt &thenStmt() { return *Then; }
  Stmt &elseStmt() { return *Else; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Cond C;
  StmtPtr Then;
  StmtPtr Else;
};

/// while (T) S.
class WhileStmt : public Stmt {
public:
  WhileStmt(Cond C, StmtPtr Body)
      : Stmt(StmtKind::While), C(C), Body(std::move(Body)) {}

  const Cond &cond() const { return C; }
  const Stmt &body() const { return *Body; }
  Stmt &body() { return *Body; }

  StmtPtr clone() const override;
  bool equals(const Stmt &Other) const override;
  void collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                      std::set<SymbolId> &Mons) const override;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  Cond C;
  StmtPtr Body;
};

/// isa/cast/dyn_cast in the LLVM style, specialised to Stmt.
template <typename T> bool isa(const Stmt &S) { return T::classof(&S); }
template <typename T> const T *dyn_cast(const Stmt *S) {
  return S && T::classof(S) ? static_cast<const T *>(S) : nullptr;
}
template <typename T> const T &cast(const Stmt &S) {
  assert(T::classof(&S) && "cast to wrong statement kind");
  return static_cast<const T &>(S);
}

/// P ::= L || ... || L, plus the set of volatile locations (§2: technically
/// part of a program).
class Program {
public:
  Program() = default;
  Program(const Program &Other);
  Program &operator=(const Program &Other);
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  /// Adds a thread body; returns its thread id (= index = entry point).
  ThreadId addThread(StmtList Body);

  size_t threadCount() const { return Threads.size(); }
  const StmtList &thread(ThreadId Tid) const { return Threads[Tid]; }
  StmtList &thread(ThreadId Tid) { return Threads[Tid]; }

  void markVolatile(SymbolId Loc) { Volatiles.insert(Loc); }
  void markVolatile(const std::string &Loc) {
    Volatiles.insert(Symbol::intern(Loc));
  }
  bool isVolatile(SymbolId Loc) const { return Volatiles.count(Loc) != 0; }
  const std::set<SymbolId> &volatiles() const { return Volatiles; }

  bool equals(const Program &Other) const;

  /// All shared-memory locations mentioned anywhere in the program.
  std::set<SymbolId> locations() const;
  /// All registers mentioned anywhere in the program.
  std::set<SymbolId> registers() const;
  /// All monitors mentioned anywhere in the program.
  std::set<SymbolId> monitors() const;

  /// §6.1 / Theorem 5 side condition: true iff the program contains a
  /// statement of the form r := c for constant c = V (the only way the
  /// language can mention a constant that flows into memory or output).
  bool containsConstant(Value V) const;

private:
  std::vector<StmtList> Threads;
  std::set<SymbolId> Volatiles;
};

} // namespace tracesafe

#endif // TRACESAFE_LANG_AST_H
