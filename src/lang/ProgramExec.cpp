#include "lang/ProgramExec.h"

#include "lang/Explore.h"

#include <cassert>

using namespace tracesafe;

namespace {

/// Global SC state: per-thread configurations (kept silently closed, i.e.
/// each thread is either done or about to emit an action), the shared
/// memory, and the global lock table.
struct GlobalState {
  std::vector<ThreadState> Threads;
  std::map<SymbolId, Value> Memory;
  /// Monitor -> (owner, depth); entries with depth 0 are erased.
  std::map<SymbolId, std::pair<ThreadId, int>> Locks;

  friend auto operator<=>(const GlobalState &, const GlobalState &) = default;
};

class Executor {
public:
  Executor(const Program &P, ExecLimits Limits)
      : Ctx(P, Limits.InputDomain.empty() ? defaultDomainFor(P)
                                          : Limits.InputDomain),
        Limits(Limits) {
    State.Threads.reserve(P.threadCount());
    for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid) {
      bool Trunc = false;
      State.Threads.push_back(silentClosure(initialThreadState(P, Tid), Ctx,
                                            Limits.MaxSilentRun, &Trunc));
      if (Trunc)
        Stats.truncate(TruncationReason::SilentLoop);
    }
    ActionsDone.assign(P.threadCount(), 0);
  }

  Value memoryValue(SymbolId Loc) const {
    auto It = State.Memory.find(Loc);
    return It == State.Memory.end() ? DefaultValue : It->second;
  }

  /// The pending action steps of thread \p Tid that are enabled (locks
  /// respect the global lock table). Deterministic statements yield one
  /// step; `input` yields one per domain value.
  std::vector<Step> pendingSteps(ThreadId Tid) {
    const ThreadState &S = State.Threads[Tid];
    if (S.done())
      return {};
    if (ActionsDone[Tid] >= Limits.MaxActionsPerThread) {
      Stats.truncate(TruncationReason::DepthCap);
      return {};
    }
    std::vector<Step> Steps = possibleStepsWithMemory(
        S, Ctx, [this](SymbolId Loc) { return memoryValue(Loc); });
    assert(!Steps.empty() && Steps[0].Act &&
           "silently closed thread must have pending actions");
    std::vector<Step> Enabled;
    for (Step &St : Steps) {
      const Action &A = *St.Act;
      if (A.isLock()) {
        auto It = State.Locks.find(A.monitor());
        if (It != State.Locks.end() && It->second.first != Tid)
          continue; // Monitor held by another thread.
      }
      Enabled.push_back(std::move(St));
    }
    return Enabled;
  }

  /// Applies \p St (an action step of \p Tid), silently closing the thread
  /// afterwards. The DFS saves and restores the whole GlobalState around
  /// this call (states are small).
  void apply(ThreadId Tid, const Step &St) {
    const Action &A = *St.Act;
    bool Trunc = false;
    State.Threads[Tid] =
        silentClosure(St.Next, Ctx, Limits.MaxSilentRun, &Trunc);
    if (Trunc)
      Stats.truncate(TruncationReason::SilentLoop);
    ++ActionsDone[Tid];
    if (A.isWrite())
      State.Memory[A.location()] = A.value();
    if (A.isLock()) {
      auto &Slot = State.Locks[A.monitor()];
      Slot = {Tid, Slot.second + 1};
    }
    if (A.isUnlock()) {
      auto It = State.Locks.find(A.monitor());
      assert(It != State.Locks.end() && It->second.first == Tid &&
             "unlock of unheld monitor must be silent (E-ULK)");
      if (--It->second.second == 0)
        State.Locks.erase(It);
    }
  }

  LangContext Ctx;
  ExecLimits Limits;
  GlobalState State;
  std::vector<size_t> ActionsDone;
  ExecStats Stats;
};

/// Memoised DFS over global states. TailT is the extra future-relevant
/// context included in the memo key: the behaviour so far (behaviour
/// collection) or the previous event (race search). OnStep additionally
/// sees the full action path for witness extraction; the path is *not*
/// part of the key.
template <typename TailT, typename OnStepT>
class MemoDfs {
public:
  MemoDfs(const Program &P, ExecLimits Limits, OnStepT OnStep)
      : Exec(P, Limits), OnStep(OnStep) {}

  void run(TailT Tail) { dfs(std::move(Tail)); }

  Executor Exec;
  OnStepT OnStep;
  std::vector<Event> Path;
  bool StopAll = false;

private:
  struct Key {
    GlobalState State;
    std::vector<size_t> ActionsDone;
    TailT Tail;
    friend auto operator<=>(const Key &, const Key &) = default;
  };

  void dfs(TailT Tail) {
    if (StopAll)
      return;
    if (++Exec.Stats.Visited > Exec.Limits.MaxVisited) {
      Exec.Stats.truncate(TruncationReason::StateCap);
      return;
    }
    // Every expansion may retain a memoised Key (thread states + memory +
    // locks); charge the shared budget a rough per-entry footprint.
    if (Exec.Limits.Shared && !Exec.Limits.Shared->charge(/*Bytes=*/256)) {
      Exec.Stats.truncate(Exec.Limits.Shared->reason());
      return;
    }
    if (!Seen.insert(Key{Exec.State, Exec.ActionsDone, Tail}).second)
      return;
    for (ThreadId Tid = 0; Tid < Exec.State.Threads.size(); ++Tid) {
      if (StopAll)
        return;
      for (const Step &St : Exec.pendingSteps(Tid)) {
        if (StopAll)
          return;
        Path.push_back(Event{Tid, *St.Act});
        TailT NextTail = OnStep(Tail, Path, StopAll);
        if (StopAll)
          return;
        GlobalState Saved = Exec.State;
        std::vector<size_t> SavedDone = Exec.ActionsDone;
        Exec.apply(Tid, St);
        dfs(std::move(NextTail));
        Exec.State = std::move(Saved);
        Exec.ActionsDone = std::move(SavedDone);
        Path.pop_back();
      }
    }
  }

  std::set<Key> Seen;
};

} // namespace

std::set<Behaviour> tracesafe::programBehaviours(const Program &P,
                                                 ExecLimits Limits,
                                                 ExecStats *Stats) {
  std::set<Behaviour> Result;
  Result.insert(Behaviour{});
  auto OnStep = [&](const Behaviour &Tail, const std::vector<Event> &Path,
                    bool &) -> Behaviour {
    const Action &A = Path.back().Act;
    if (!A.isExternal())
      return Tail;
    Behaviour Next = Tail;
    Next.push_back(A.value());
    Result.insert(Next);
    return Next;
  };
  MemoDfs<Behaviour, decltype(OnStep)> Dfs(P, Limits, OnStep);
  // Exception containment: a search that dies mid-way (allocation failure,
  // injected fault) has inserted a prefix-closed subset of the behaviours,
  // which a truncated result already describes — witnesses recorded so far
  // stay definitive, the absence of others does not.
  try {
    Dfs.run(Behaviour{});
  } catch (...) {
    Dfs.Exec.Stats.truncate(TruncationReason::EngineFault);
    if (Limits.Shared)
      Limits.Shared->poison(TruncationReason::EngineFault);
  }
  if (Stats)
    *Stats = Dfs.Exec.Stats;
  return Result;
}

ProgramRaceReport tracesafe::findProgramRace(const Program &P,
                                             ExecLimits Limits) {
  ProgramRaceReport Report;
  // Memo tail: the previous event only — the future's race potential is a
  // function of (state, previous event), so merging on it is sound.
  using Tail = std::optional<Event>;
  auto OnStep = [&](const Tail &Prev, const std::vector<Event> &Path,
                    bool &Stop) -> Tail {
    const Event &E = Path.back();
    if (Prev && Prev->Tid != E.Tid && Prev->Act.conflictsWith(E.Act)) {
      Report.HasRace = true;
      Report.Witness = Interleaving(Path);
      Stop = true;
      return Prev;
    }
    return Tail(E);
  };
  MemoDfs<Tail, decltype(OnStep)> Dfs(P, Limits, OnStep);
  try {
    Dfs.run(Tail{});
  } catch (...) {
    Dfs.Exec.Stats.truncate(TruncationReason::EngineFault);
    if (Limits.Shared)
      Limits.Shared->poison(TruncationReason::EngineFault);
  }
  Report.Stats = Dfs.Exec.Stats;
  return Report;
}

Verdict<Interleaving> tracesafe::checkProgramDrf(const Program &P,
                                                 ExecLimits Limits) {
  ProgramRaceReport R = findProgramRace(P, Limits);
  if (R.HasRace)
    return Verdict<Interleaving>::refuted(R.Witness);
  if (R.Stats.Truncated)
    return Verdict<Interleaving>::unknown(R.Stats.Reason);
  return Verdict<Interleaving>::proved();
}

bool tracesafe::isProgramDrf(const Program &P, ExecLimits Limits) {
  return checkProgramDrf(P, Limits).isProved();
}
