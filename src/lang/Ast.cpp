#include "lang/Ast.h"

using namespace tracesafe;

StmtList tracesafe::cloneList(const StmtList &L) {
  StmtList Out;
  Out.reserve(L.size());
  for (const StmtPtr &S : L)
    Out.push_back(S->clone());
  return Out;
}

bool tracesafe::listEquals(const StmtList &A, const StmtList &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!A[I]->equals(*B[I]))
      return false;
  return true;
}

bool Stmt::isSyncFree(const std::set<SymbolId> &Volatiles) const {
  std::set<SymbolId> Regs, Locs, Mons;
  collectSymbols(Regs, Locs, Mons);
  if (!Mons.empty())
    return false;
  for (SymbolId L : Locs)
    if (Volatiles.count(L))
      return false;
  return true;
}

bool Stmt::mentionsAny(const std::set<SymbolId> &Syms) const {
  std::set<SymbolId> Regs, Locs, Mons;
  collectSymbols(Regs, Locs, Mons);
  for (SymbolId S : Syms)
    if (Regs.count(S) || Locs.count(S) || Mons.count(S))
      return true;
  return false;
}

// --- AssignStmt ---

StmtPtr AssignStmt::clone() const {
  return std::make_unique<AssignStmt>(Reg, Src);
}

bool AssignStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<AssignStmt>(&Other);
  return O && O->Reg == Reg && O->Src == Src;
}

void AssignStmt::collectSymbols(std::set<SymbolId> &Regs,
                                std::set<SymbolId> &Locs,
                                std::set<SymbolId> &Mons) const {
  (void)Locs;
  (void)Mons;
  Regs.insert(Reg);
  if (!Src.IsImm)
    Regs.insert(Src.Reg);
}

// --- LoadStmt ---

StmtPtr LoadStmt::clone() const { return std::make_unique<LoadStmt>(Reg, Loc); }

bool LoadStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<LoadStmt>(&Other);
  return O && O->Reg == Reg && O->Loc == Loc;
}

void LoadStmt::collectSymbols(std::set<SymbolId> &Regs,
                              std::set<SymbolId> &Locs,
                              std::set<SymbolId> &Mons) const {
  (void)Mons;
  Regs.insert(Reg);
  Locs.insert(Loc);
}

// --- StoreStmt ---

StmtPtr StoreStmt::clone() const {
  return std::make_unique<StoreStmt>(Loc, Src);
}

bool StoreStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<StoreStmt>(&Other);
  return O && O->Loc == Loc && O->Src == Src;
}

void StoreStmt::collectSymbols(std::set<SymbolId> &Regs,
                               std::set<SymbolId> &Locs,
                               std::set<SymbolId> &Mons) const {
  (void)Mons;
  Locs.insert(Loc);
  if (!Src.IsImm)
    Regs.insert(Src.Reg);
}

// --- LockStmt / UnlockStmt ---

StmtPtr LockStmt::clone() const { return std::make_unique<LockStmt>(Mon); }

bool LockStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<LockStmt>(&Other);
  return O && O->Mon == Mon;
}

void LockStmt::collectSymbols(std::set<SymbolId> &Regs,
                              std::set<SymbolId> &Locs,
                              std::set<SymbolId> &Mons) const {
  (void)Regs;
  (void)Locs;
  Mons.insert(Mon);
}

StmtPtr UnlockStmt::clone() const { return std::make_unique<UnlockStmt>(Mon); }

bool UnlockStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<UnlockStmt>(&Other);
  return O && O->Mon == Mon;
}

void UnlockStmt::collectSymbols(std::set<SymbolId> &Regs,
                                std::set<SymbolId> &Locs,
                                std::set<SymbolId> &Mons) const {
  (void)Regs;
  (void)Locs;
  Mons.insert(Mon);
}

// --- SkipStmt ---

StmtPtr SkipStmt::clone() const { return std::make_unique<SkipStmt>(); }

bool SkipStmt::equals(const Stmt &Other) const {
  return isa<SkipStmt>(Other);
}

void SkipStmt::collectSymbols(std::set<SymbolId> &, std::set<SymbolId> &,
                              std::set<SymbolId> &) const {}

// --- PrintStmt ---

StmtPtr PrintStmt::clone() const { return std::make_unique<PrintStmt>(Src); }

bool PrintStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<PrintStmt>(&Other);
  return O && O->Src == Src;
}

void PrintStmt::collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &,
                               std::set<SymbolId> &) const {
  if (!Src.IsImm)
    Regs.insert(Src.Reg);
}

// --- InputStmt ---

StmtPtr InputStmt::clone() const { return std::make_unique<InputStmt>(Reg); }

bool InputStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<InputStmt>(&Other);
  return O && O->Reg == Reg;
}

void InputStmt::collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &,
                               std::set<SymbolId> &) const {
  Regs.insert(Reg);
}

// --- BlockStmt ---

StmtPtr BlockStmt::clone() const {
  return std::make_unique<BlockStmt>(cloneList(Body));
}

bool BlockStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<BlockStmt>(&Other);
  return O && listEquals(Body, O->Body);
}

void BlockStmt::collectSymbols(std::set<SymbolId> &Regs,
                               std::set<SymbolId> &Locs,
                               std::set<SymbolId> &Mons) const {
  for (const StmtPtr &S : Body)
    S->collectSymbols(Regs, Locs, Mons);
}

// --- IfStmt ---

namespace {

void collectCond(const Cond &C, std::set<SymbolId> &Regs) {
  if (!C.Lhs.IsImm)
    Regs.insert(C.Lhs.Reg);
  if (!C.Rhs.IsImm)
    Regs.insert(C.Rhs.Reg);
}

} // namespace

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(C, Then->clone(), Else->clone());
}

bool IfStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<IfStmt>(&Other);
  return O && O->C == C && Then->equals(*O->Then) && Else->equals(*O->Else);
}

void IfStmt::collectSymbols(std::set<SymbolId> &Regs, std::set<SymbolId> &Locs,
                            std::set<SymbolId> &Mons) const {
  collectCond(C, Regs);
  Then->collectSymbols(Regs, Locs, Mons);
  Else->collectSymbols(Regs, Locs, Mons);
}

// --- WhileStmt ---

StmtPtr WhileStmt::clone() const {
  return std::make_unique<WhileStmt>(C, Body->clone());
}

bool WhileStmt::equals(const Stmt &Other) const {
  const auto *O = dyn_cast<WhileStmt>(&Other);
  return O && O->C == C && Body->equals(*O->Body);
}

void WhileStmt::collectSymbols(std::set<SymbolId> &Regs,
                               std::set<SymbolId> &Locs,
                               std::set<SymbolId> &Mons) const {
  collectCond(C, Regs);
  Body->collectSymbols(Regs, Locs, Mons);
}

// --- Program ---

Program::Program(const Program &Other) : Volatiles(Other.Volatiles) {
  Threads.reserve(Other.Threads.size());
  for (const StmtList &L : Other.Threads)
    Threads.push_back(cloneList(L));
}

Program &Program::operator=(const Program &Other) {
  if (this == &Other)
    return *this;
  Program Copy(Other);
  *this = std::move(Copy);
  return *this;
}

ThreadId Program::addThread(StmtList Body) {
  Threads.push_back(std::move(Body));
  return static_cast<ThreadId>(Threads.size() - 1);
}

bool Program::equals(const Program &Other) const {
  if (Volatiles != Other.Volatiles || Threads.size() != Other.Threads.size())
    return false;
  for (size_t I = 0; I < Threads.size(); ++I)
    if (!listEquals(Threads[I], Other.Threads[I]))
      return false;
  return true;
}

std::set<SymbolId> Program::locations() const {
  std::set<SymbolId> Regs, Locs, Mons;
  for (const StmtList &L : Threads)
    for (const StmtPtr &S : L)
      S->collectSymbols(Regs, Locs, Mons);
  return Locs;
}

std::set<SymbolId> Program::registers() const {
  std::set<SymbolId> Regs, Locs, Mons;
  for (const StmtList &L : Threads)
    for (const StmtPtr &S : L)
      S->collectSymbols(Regs, Locs, Mons);
  return Regs;
}

std::set<SymbolId> Program::monitors() const {
  std::set<SymbolId> Regs, Locs, Mons;
  for (const StmtList &L : Threads)
    for (const StmtPtr &S : L)
      S->collectSymbols(Regs, Locs, Mons);
  return Mons;
}

namespace {

/// True iff \p S (or any sub-statement) has an immediate operand equal to V
/// in a value-producing position (assign/store/print source).
bool stmtContainsConstant(const Stmt &S, Value V) {
  switch (S.kind()) {
  case StmtKind::Assign:
    return cast<AssignStmt>(S).src().IsImm && cast<AssignStmt>(S).src().Imm == V;
  case StmtKind::Store:
    return cast<StoreStmt>(S).src().IsImm && cast<StoreStmt>(S).src().Imm == V;
  case StmtKind::Print:
    return cast<PrintStmt>(S).src().IsImm && cast<PrintStmt>(S).src().Imm == V;
  case StmtKind::Block: {
    for (const StmtPtr &Sub : cast<BlockStmt>(S).body())
      if (stmtContainsConstant(*Sub, V))
        return true;
    return false;
  }
  case StmtKind::If:
    return stmtContainsConstant(cast<IfStmt>(S).thenStmt(), V) ||
           stmtContainsConstant(cast<IfStmt>(S).elseStmt(), V);
  case StmtKind::While:
    return stmtContainsConstant(cast<WhileStmt>(S).body(), V);
  case StmtKind::Load:
  case StmtKind::Lock:
  case StmtKind::Unlock:
  case StmtKind::Skip:
  case StmtKind::Input:
    return false;
  }
  return false;
}

} // namespace

bool Program::containsConstant(Value V) const {
  for (const StmtList &L : Threads)
    for (const StmtPtr &S : L)
      if (stmtContainsConstant(*S, V))
        return true;
  return false;
}
