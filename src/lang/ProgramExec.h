//===----------------------------------------------------------------------===//
///
/// \file
/// Direct sequentially consistent execution of programs.
///
/// This executes the thread machines of SmallStep.h against a real shared
/// memory, enumerating all SC interleavings. It computes the same behaviour
/// sets and data-race verdicts as going through [[P]] and the traceset
/// execution enumerator (the test suite asserts this agreement on every
/// program it touches), but avoids the |Domain|^reads blow-up of traceset
/// generation, so it is the engine of choice for the verification harness.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_LANG_PROGRAMEXEC_H
#define TRACESAFE_LANG_PROGRAMEXEC_H

#include "lang/SmallStep.h"
#include "support/Budget.h"
#include "trace/Interleaving.h"

#include <cstdint>
#include <set>

namespace tracesafe {

struct ExecLimits {
  /// Values the environment may supply to `input` statements; empty means
  /// "use defaultDomainFor(P)".
  std::vector<Value> InputDomain{};
  /// Maximum actions per thread.
  size_t MaxActionsPerThread = 64;
  /// Maximum consecutive silent steps per thread (cuts silent loops).
  size_t MaxSilentRun = 512;
  /// Global cap on explored states.
  uint64_t MaxVisited = 50'000'000;
  /// Optional shared query budget (deadline / visit / memory caps across
  /// every engine of one query). Non-owning; may be null.
  Budget *Shared = nullptr;
};

struct ExecStats {
  uint64_t Visited = 0;
  bool Truncated = false;
  /// Why the search was truncated (None when !Truncated).
  TruncationReason Reason = TruncationReason::None;

  void truncate(TruncationReason R) {
    Truncated = true;
    Reason = mergeReason(Reason, R);
  }
};

/// The set of observable behaviours of \p P under sequential consistency.
/// Prefix-closed, includes the empty behaviour.
std::set<Behaviour> programBehaviours(const Program &P, ExecLimits Limits = {},
                                      ExecStats *Stats = nullptr);

struct ProgramRaceReport {
  bool HasRace = false;
  /// Witness action interleaving ending in the adjacent conflicting pair.
  Interleaving Witness;
  ExecStats Stats;
};

/// §3 data race search (adjacent conflicting actions of different threads)
/// over the program's SC executions.
ProgramRaceReport findProgramRace(const Program &P, ExecLimits Limits = {});

/// Tri-state DRF query over the program's SC executions: Proved (no race,
/// exhaustive), Refuted (race found, witness attached — definitive even
/// under truncation), or Unknown (search truncated).
Verdict<Interleaving> checkProgramDrf(const Program &P,
                                      ExecLimits Limits = {});

/// Convenience wrapper: true iff the program is *proved* race free. A
/// truncated search returns false (conservative "not proved"), never
/// asserts; use checkProgramDrf to distinguish Refuted from Unknown.
bool isProgramDrf(const Program &P, ExecLimits Limits = {});

} // namespace tracesafe

#endif // TRACESAFE_LANG_PROGRAMEXEC_H
