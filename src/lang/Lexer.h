//===----------------------------------------------------------------------===//
///
/// \file
/// Tokeniser for the concrete syntax of the simple concurrent language.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_LANG_LEXER_H
#define TRACESAFE_LANG_LEXER_H

#include "trace/Action.h"

#include <string>
#include <vector>

namespace tracesafe {

enum class TokenKind : uint8_t {
  Ident,     ///< identifier (location, register, monitor or keyword)
  Number,    ///< integer literal
  Assign,    ///< :=
  Semi,      ///< ;
  Comma,     ///< ,
  LBrace,    ///< {
  RBrace,    ///< }
  LParen,    ///< (
  RParen,    ///< )
  EqEq,      ///< ==
  NotEq,     ///< !=
  EndOfFile, ///< sentinel
  Error,     ///< lexing error; Text holds a message
};

struct Token {
  TokenKind Kind;
  std::string Text; ///< identifier spelling or error message
  Value Num = 0;    ///< for Number
  unsigned Line = 1;
  unsigned Col = 1; ///< 1-based column of the token's first character
};

/// Lexes \p Source. Line comments start with "//". On error the last token
/// is Error (followed by EndOfFile). Never crashes on malformed input:
/// out-of-range integer literals and stray characters become Error tokens
/// with line/column diagnostics.
std::vector<Token> lex(const std::string &Source);

} // namespace tracesafe

#endif // TRACESAFE_LANG_LEXER_H
