#include "lang/SmallStep.h"

#include <cassert>

using namespace tracesafe;

ThreadState tracesafe::initialThreadState(const Program &P, ThreadId Tid) {
  assert(Tid < P.threadCount() && "no such thread");
  ThreadState S;
  const StmtList &Body = P.thread(Tid);
  S.Cont.reserve(Body.size());
  for (auto It = Body.rbegin(); It != Body.rend(); ++It)
    S.Cont.push_back(It->get());
  return S;
}

Value tracesafe::evalOperand(const ThreadState &S, const Operand &O) {
  if (O.IsImm)
    return O.Imm;
  auto It = S.Regs.find(O.Reg);
  return It == S.Regs.end() ? DefaultValue : It->second;
}

bool tracesafe::evalCond(const ThreadState &S, const Cond &C) {
  bool Eq = evalOperand(S, C.Lhs) == evalOperand(S, C.Rhs);
  return C.IsEq ? Eq : !Eq;
}

namespace {

/// Writes \p V into register \p Reg of \p S.
void setReg(ThreadState &S, SymbolId Reg, Value V) { S.Regs[Reg] = V; }

/// Pushes \p Stm onto the continuation of \p S.
void push(ThreadState &S, const Stmt *Stm) { S.Cont.push_back(Stm); }

/// Core of the step function. \p LoadValues lists the values a load may
/// return for a given location; inputs always branch over the context's
/// value domain (the environment may supply anything).
std::vector<Step>
steps(const ThreadState &S, const LangContext &Ctx,
      const std::function<std::vector<Value>(SymbolId)> &LoadValues) {
  std::vector<Step> Out;
  if (S.done())
    return Out;
  const Stmt *Top = S.Cont.back();
  ThreadState Base = S;
  Base.Cont.pop_back();

  switch (Top->kind()) {
  case StmtKind::Assign: { // REGS: silent.
    const auto &A = cast<AssignStmt>(*Top);
    ThreadState N = Base;
    setReg(N, A.reg(), evalOperand(S, A.src()));
    Out.push_back(Step{std::nullopt, std::move(N)});
    break;
  }
  case StmtKind::Load: { // READ: R[x=v] for each possible v.
    const auto &L = cast<LoadStmt>(*Top);
    bool Vol = Ctx.isVolatile(L.loc());
    for (Value V : LoadValues(L.loc())) {
      ThreadState N = Base;
      setReg(N, L.reg(), V);
      Out.push_back(Step{Action::mkRead(L.loc(), V, Vol), std::move(N)});
    }
    break;
  }
  case StmtKind::Store: { // WRITE.
    const auto &St = cast<StoreStmt>(*Top);
    bool Vol = Ctx.isVolatile(St.loc());
    Out.push_back(Step{Action::mkWrite(St.loc(), evalOperand(S, St.src()), Vol),
                       std::move(Base)});
    break;
  }
  case StmtKind::Lock: { // LOCK.
    const auto &L = cast<LockStmt>(*Top);
    ThreadState N = Base;
    ++N.Mon[L.monitor()];
    Out.push_back(Step{Action::mkLock(L.monitor()), std::move(N)});
    break;
  }
  case StmtKind::Unlock: { // ULK / E-ULK.
    const auto &U = cast<UnlockStmt>(*Top);
    auto It = S.Mon.find(U.monitor());
    int Depth = It == S.Mon.end() ? 0 : It->second;
    if (Depth > 0) {
      ThreadState N = Base;
      if (Depth == 1)
        N.Mon.erase(U.monitor());
      else
        N.Mon[U.monitor()] = Depth - 1;
      Out.push_back(Step{Action::mkUnlock(U.monitor()), std::move(N)});
    } else {
      // E-ULK: unlocking a monitor the thread does not hold is a silent
      // no-op; this is what keeps tracesets well locked.
      Out.push_back(Step{std::nullopt, std::move(Base)});
    }
    break;
  }
  case StmtKind::Skip: // SEQ on skip: silent.
    Out.push_back(Step{std::nullopt, std::move(Base)});
    break;
  case StmtKind::Print: { // EXT (output).
    const auto &P = cast<PrintStmt>(*Top);
    Out.push_back(
        Step{Action::mkExternal(evalOperand(S, P.src())), std::move(Base)});
    break;
  }
  case StmtKind::Input: { // EXT (input): X(v) for each domain value.
    const auto &In = cast<InputStmt>(*Top);
    for (Value V : Ctx.Domain) {
      ThreadState N = Base;
      setReg(N, In.reg(), V);
      Out.push_back(Step{Action::mkExternal(V), std::move(N)});
    }
    break;
  }
  case StmtKind::Block: { // BLOCK: silent unfolding.
    const auto &B = cast<BlockStmt>(*Top);
    ThreadState N = Base;
    for (auto It = B.body().rbegin(); It != B.body().rend(); ++It)
      push(N, It->get());
    Out.push_back(Step{std::nullopt, std::move(N)});
    break;
  }
  case StmtKind::If: { // COND-T / COND-F: silent.
    const auto &I = cast<IfStmt>(*Top);
    ThreadState N = Base;
    push(N, evalCond(S, I.cond()) ? &I.thenStmt() : &I.elseStmt());
    Out.push_back(Step{std::nullopt, std::move(N)});
    break;
  }
  case StmtKind::While: { // LOOP-T / LOOP-F: silent.
    const auto &W = cast<WhileStmt>(*Top);
    ThreadState N = Base;
    if (evalCond(S, W.cond())) {
      push(N, Top); // while (T) S again, after...
      push(N, &W.body()); // ...S.
    }
    Out.push_back(Step{std::nullopt, std::move(N)});
    break;
  }
  }
  return Out;
}

} // namespace

std::vector<Step> tracesafe::possibleSteps(const ThreadState &S,
                                           const LangContext &Ctx) {
  return steps(S, Ctx, [&](SymbolId) { return Ctx.Domain; });
}

std::vector<Step> tracesafe::possibleStepsWithMemory(
    const ThreadState &S, const LangContext &Ctx,
    const std::function<Value(SymbolId)> &Memory) {
  return steps(S, Ctx, [&](SymbolId Loc) {
    return std::vector<Value>{Memory(Loc)};
  });
}

ThreadState tracesafe::silentClosure(ThreadState S, const LangContext &Ctx,
                                     size_t MaxSilentRun, bool *Truncated) {
  for (size_t I = 0; I < MaxSilentRun; ++I) {
    if (S.done())
      return S;
    // Peek: a single silent successor means keep going; an action (or a
    // branching read) means we are at an action boundary.
    std::vector<Step> Next = possibleStepsWithMemory(
        S, Ctx, [](SymbolId) { return DefaultValue; });
    assert(!Next.empty() && "non-terminated state must step");
    if (Next.size() != 1 || Next[0].Act.has_value())
      return S;
    S = std::move(Next[0].Next);
  }
  if (Truncated)
    *Truncated = true;
  return S;
}
