#include "support/Budget.h"

#include "support/Failure.h"

using namespace tracesafe;

const char *tracesafe::truncationReasonName(TruncationReason R) {
  switch (R) {
  case TruncationReason::None:
    return "none";
  case TruncationReason::StateCap:
    return "state-cap";
  case TruncationReason::DepthCap:
    return "depth-cap";
  case TruncationReason::SilentLoop:
    return "silent-loop";
  case TruncationReason::MemoryCap:
    return "memory-cap";
  case TruncationReason::Deadline:
    return "deadline";
  case TruncationReason::Cancelled:
    return "cancelled";
  case TruncationReason::EngineFault:
    return "engine-fault";
  }
  return "unknown";
}

bool Budget::checkInterrupts() {
  if (Cancel && Cancel->requested()) {
    exhaust(TruncationReason::Cancelled);
    return false;
  }
  if (Deadline && std::chrono::steady_clock::now() >= *Deadline) {
    exhaust(TruncationReason::Deadline);
    return false;
  }
  if (faultPoint(FaultSite::BudgetCharge)) {
    exhaust(TruncationReason::EngineFault);
    return false;
  }
  return true;
}

const char *tracesafe::verdictKindName(VerdictKind K) {
  switch (K) {
  case VerdictKind::Proved:
    return "proved";
  case VerdictKind::Refuted:
    return "refuted";
  case VerdictKind::Unknown:
    return "unknown";
  }
  return "invalid";
}

BudgetSpec BudgetSpec::scaled(unsigned Factor,
                              const BudgetSpec &Ceiling) const {
  auto Clamp = [](uint64_t V, uint64_t Cap) {
    return Cap && (V == 0 || V > Cap) ? Cap : V;
  };
  BudgetSpec Out;
  Out.DeadlineMs = static_cast<int64_t>(
      Clamp(DeadlineMs <= 0 ? 0 : static_cast<uint64_t>(DeadlineMs) * Factor,
            Ceiling.DeadlineMs <= 0
                ? 0
                : static_cast<uint64_t>(Ceiling.DeadlineMs)));
  Out.MaxVisited = Clamp(MaxVisited ? MaxVisited * Factor : 0,
                         Ceiling.MaxVisited);
  Out.MaxMemoryBytes = Clamp(MaxMemoryBytes ? MaxMemoryBytes * Factor : 0,
                             Ceiling.MaxMemoryBytes);
  return Out;
}

std::string BudgetSpec::str() const {
  std::string Out = "{";
  Out += "deadline=" +
         (DeadlineMs > 0 ? std::to_string(DeadlineMs) + "ms"
                         : std::string("none"));
  Out += ", states=" +
         (MaxVisited ? std::to_string(MaxVisited) : std::string("unlimited"));
  Out += ", mem=" + (MaxMemoryBytes ? std::to_string(MaxMemoryBytes) + "B"
                                    : std::string("unlimited"));
  Out += "}";
  return Out;
}

std::string Budget::describe() const {
  std::string Out = "visited " + std::to_string(Visited) + " states, " +
                    std::to_string(Bytes_) + "B charged, " +
                    std::to_string(elapsedMs()) + "ms elapsed";
  if (exhausted())
    Out += std::string(" (exhausted: ") + truncationReasonName(Exhausted) +
           ")";
  return Out;
}
