//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed interning of word spans, and the sleep-set memo table.
///
/// The parallel enumeration engine encodes every global search state as a
/// short span of uint64 words (per-thread trace ids, memory, lock state,
/// behaviour tail) and interns it: the first occurrence of a span gets a
/// dense uint32 id, later occurrences find the id by hash. Interning
/// replaces the seed engine's std::set<StateKey> memo tables — which
/// copied whole global states per entry and compared them
/// lexicographically — with one precomputed hash, an open-addressing
/// probe, and a word-wise compare on the rare collision.
///
/// The same pool interns trace trie nodes ([parent id, action word], so a
/// thread's current trace id updates in O(1) per step), event ids and
/// sleep-set signatures.
///
/// Memory is charged to the shared query Budget for real: chunked arenas
/// and slot tables report their actual allocation sizes as they grow,
/// replacing the seed's flat per-entry guess (ROADMAP item (e)).
///
/// Concurrency model: lookups — the overwhelmingly common case once the
/// table is warm — are lock-free. Slot tables hold atomic entry indices
/// published with release stores; entries live in chunked storage that
/// never moves, so a probe that hits returns without touching the shard
/// mutex. The mutex guards only insertion, arena growth and rehash.
/// Rehashed tables are retired (not freed) until pool destruction, so a
/// reader racing a grow probes a stale-but-valid table and at worst
/// misses a fresh entry — then falls through to the authoritative locked
/// path. A small thread-local front cache of recently interned spans
/// (keyed by a never-reused pool generation and verified word-for-word
/// against the arena) keeps hot spans from hammering cross-shard cache
/// lines at all. Arena chunks never move, so a span view stays valid for
/// the pool's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_INTERN_H
#define TRACESAFE_SUPPORT_INTERN_H

#include "support/Budget.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace tracesafe {

/// Interns spans of uint64 words into dense uint32 ids.
class InternPool {
public:
  /// \p ShardBits selects 2^ShardBits shards (0 for single-threaded use).
  /// \p Shared, when non-null, is charged the pool's real allocation
  /// sizes; exhaustion never corrupts the pool, it only flags the budget.
  explicit InternPool(unsigned ShardBits = 0, Budget *Shared = nullptr);
  ~InternPool();

  InternPool(const InternPool &) = delete;
  InternPool &operator=(const InternPool &) = delete;

  struct Result {
    uint32_t Id;
    bool Inserted; ///< true on the first occurrence of the span
  };

  /// Interns \p Words[0..N). Idempotent; thread-safe. Warm lookups are
  /// lock-free; only first occurrences take the shard mutex.
  Result intern(const uint64_t *Words, size_t N);

  /// The words of a previously interned span. Lock-free; the pointer
  /// stays valid for the pool's lifetime.
  std::pair<const uint64_t *, uint32_t> view(uint32_t Id) const;

  /// Number of distinct spans interned.
  size_t size() const;

  /// Resident bytes across all shards (arenas + tables).
  uint64_t bytes() const;

  static uint64_t hashWords(const uint64_t *Words, size_t N);

private:
  struct Shard;
  unsigned ShardBits;
  uint64_t Generation; ///< process-unique, never reused (front-cache key)
  std::vector<std::unique_ptr<Shard>> Shards;
  Budget *Shared;
};

/// Sleep-set memo: for each interned state, the sleep sets it has been
/// explored with. The POR search prunes a visit iff a recorded sleep set
/// is a subset of the current one — the recorded visit then explored a
/// superset of the transitions this visit would. Recording with plain
/// "seen before?" instead is the classic unsound shortcut (a first visit
/// with a big sleep set would mask transitions a later visit must take).
///
/// Read-mostly concurrency: the prune answer (false) may be produced
/// lock-free — a record reached through a stale table or an unlinked
/// chain entry still names a genuinely recorded visit, so pruning
/// against it stays sound. The explore/record answer (true) is always
/// re-derived under the shard mutex, keeping check-and-record atomic.
class SleepMemo {
public:
  /// \p ShardBits as for InternPool; \p Sigs is the pool whose ids the
  /// signatures were interned into (sorted event-id spans).
  explicit SleepMemo(unsigned ShardBits, const InternPool &Sigs,
                     Budget *Shared = nullptr);
  ~SleepMemo();

  SleepMemo(const SleepMemo &) = delete;
  SleepMemo &operator=(const SleepMemo &) = delete;

  /// Returns true when the state must be explored with the given sleep
  /// signature (and records it); false when a recorded subset already
  /// covers this visit. Signatures that become dominated by the new one
  /// are dropped. Thread-safe; the check-and-record is atomic per state.
  bool shouldExplore(uint32_t StateId, uint32_t SigId);

  uint64_t bytes() const;

private:
  struct Shard;
  unsigned ShardBits;
  std::vector<std::unique_ptr<Shard>> Shards;
  const InternPool &Sigs;
  Budget *Shared;
};

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_INTERN_H
