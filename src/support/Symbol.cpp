#include "support/Symbol.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

using namespace tracesafe;

namespace {

/// Names live in a deque so the references handed out by Symbol::name stay
/// valid while other threads intern (deque growth never moves elements).
/// The mutex makes interning safe from the parallel engines; ids are dense
/// and stable for the process lifetime as before.
struct Interner {
  std::mutex M;
  std::unordered_map<std::string, SymbolId> Ids;
  std::deque<std::string> Names;
};

Interner &interner() {
  static Interner I;
  return I;
}

} // namespace

SymbolId Symbol::intern(const std::string &Name) {
  Interner &I = interner();
  std::lock_guard<std::mutex> Lock(I.M);
  auto It = I.Ids.find(Name);
  if (It != I.Ids.end())
    return It->second;
  SymbolId Id = static_cast<SymbolId>(I.Names.size());
  I.Names.push_back(Name);
  I.Ids.emplace(Name, Id);
  return Id;
}

const std::string &Symbol::name(SymbolId Id) {
  Interner &I = interner();
  std::lock_guard<std::mutex> Lock(I.M);
  assert(Id < I.Names.size() && "unknown symbol id");
  return I.Names[Id];
}

size_t Symbol::count() {
  Interner &I = interner();
  std::lock_guard<std::mutex> Lock(I.M);
  return I.Names.size();
}
