#include "support/Symbol.h"

#include <cassert>
#include <unordered_map>
#include <vector>

using namespace tracesafe;

namespace {

struct Interner {
  std::unordered_map<std::string, SymbolId> Ids;
  std::vector<std::string> Names;
};

Interner &interner() {
  static Interner I;
  return I;
}

} // namespace

SymbolId Symbol::intern(const std::string &Name) {
  Interner &I = interner();
  auto It = I.Ids.find(Name);
  if (It != I.Ids.end())
    return It->second;
  SymbolId Id = static_cast<SymbolId>(I.Names.size());
  I.Names.push_back(Name);
  I.Ids.emplace(Name, Id);
  return Id;
}

const std::string &Symbol::name(SymbolId Id) {
  Interner &I = interner();
  assert(Id < I.Names.size() && "unknown symbol id");
  return I.Names[Id];
}

size_t Symbol::count() { return interner().Names.size(); }
