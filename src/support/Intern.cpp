#include "support/Intern.h"

#include "support/Failure.h"

#include <cassert>
#include <cstring>

using namespace tracesafe;

namespace {

inline uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

} // namespace

uint64_t InternPool::hashWords(const uint64_t *Words, size_t N) {
  uint64_t H = 0x9E3779B97F4A7C15ULL ^ (static_cast<uint64_t>(N) << 1);
  for (size_t I = 0; I < N; ++I)
    H = mix64(H ^ Words[I]);
  return H;
}

struct InternPool::Shard {
  static constexpr size_t ChunkWords = 1 << 13; // 64 KiB of span storage

  struct Entry {
    const uint64_t *Ptr;
    uint32_t Len;
    uint64_t Hash;
  };

  mutable std::mutex M;
  std::vector<std::unique_ptr<uint64_t[]>> Chunks;
  size_t ChunkUsed = ChunkWords; // full: first intern allocates
  std::vector<Entry> Entries;
  std::vector<uint32_t> Slots; // entry index + 1; 0 = empty
  uint64_t Bytes = 0;

  Shard() : Slots(64, 0) { Bytes += Slots.size() * sizeof(uint32_t); }

  const uint64_t *store(const uint64_t *Words, size_t N, uint64_t &Charged) {
    if (N == 0) { // e.g. the empty sleep-set signature
      static const uint64_t Dummy = 0;
      return &Dummy;
    }
    if (N > ChunkWords - ChunkUsed) {
      size_t Cap = N > ChunkWords ? N : ChunkWords;
      Chunks.push_back(std::make_unique<uint64_t[]>(Cap));
      ChunkUsed = 0;
      Charged += Cap * sizeof(uint64_t);
      Bytes += Cap * sizeof(uint64_t);
      if (Cap > ChunkWords) { // dedicated oversize chunk; retire it
        ChunkUsed = Cap;
        std::memcpy(Chunks.back().get(), Words, N * sizeof(uint64_t));
        return Chunks.back().get();
      }
    }
    uint64_t *Dst = Chunks.back().get() + ChunkUsed;
    std::memcpy(Dst, Words, N * sizeof(uint64_t));
    ChunkUsed += N;
    return Dst;
  }

  /// \p ShardBits must match the probe-start computation in intern():
  /// lookups begin at (Hash >> ShardBits) & Mask, so the rehash must too,
  /// or post-growth probes miss existing entries and intern duplicates.
  void growTable(unsigned ShardBits, uint64_t &Charged) {
    std::vector<uint32_t> Old = std::move(Slots);
    Slots.assign(Old.size() * 2, 0);
    Charged += Slots.size() * sizeof(uint32_t);
    Bytes += Slots.size() * sizeof(uint32_t);
    size_t Mask = Slots.size() - 1;
    for (uint32_t V : Old) {
      if (!V)
        continue;
      size_t I = (Entries[V - 1].Hash >> ShardBits) & Mask;
      while (Slots[I])
        I = (I + 1) & Mask;
      Slots[I] = V;
    }
  }
};

InternPool::InternPool(unsigned ShardBits, Budget *Shared)
    : ShardBits(ShardBits), Shared(Shared) {
  Shards.reserve(1u << ShardBits);
  for (size_t I = 0; I < (1u << ShardBits); ++I)
    Shards.push_back(std::make_unique<Shard>());
}

InternPool::~InternPool() = default;

InternPool::Result InternPool::intern(const uint64_t *Words, size_t N) {
  // Fault-injection site: simulated allocation failure, thrown before any
  // shard state is touched so the pool stays consistent. The engines
  // contain it at their query boundary as Unknown(EngineFault).
  faultThrowBadAlloc(FaultSite::InternAlloc);
  uint64_t Hash = hashWords(Words, N);
  Shard &S = *Shards[Hash & ((1u << ShardBits) - 1)];
  std::lock_guard<std::mutex> Lock(S.M);
  size_t Mask = S.Slots.size() - 1;
  size_t I = (Hash >> ShardBits) & Mask;
  while (uint32_t V = S.Slots[I]) {
    const Shard::Entry &E = S.Entries[V - 1];
    if (E.Hash == Hash && E.Len == N &&
        (N == 0 || std::memcmp(E.Ptr, Words, N * sizeof(uint64_t)) == 0))
      return {(static_cast<uint32_t>(V - 1) << ShardBits) |
                  static_cast<uint32_t>(Hash & ((1u << ShardBits) - 1)),
              false};
    I = (I + 1) & Mask;
  }
  uint64_t Charged = 0;
  const uint64_t *Ptr = S.store(Words, N, Charged);
  size_t OldCap = S.Entries.capacity();
  S.Entries.push_back({Ptr, static_cast<uint32_t>(N), Hash});
  if (S.Entries.capacity() != OldCap) {
    uint64_t Delta =
        (S.Entries.capacity() - OldCap) * sizeof(Shard::Entry);
    Charged += Delta;
    S.Bytes += Delta;
  }
  uint32_t Idx = static_cast<uint32_t>(S.Entries.size() - 1);
  S.Slots[I] = Idx + 1;
  // Grow at ~70% load so probe sequences stay short.
  if (S.Entries.size() * 10 > S.Slots.size() * 7)
    S.growTable(ShardBits, Charged);
  if (Shared && Charged)
    Shared->chargeBytes(Charged);
  return {(Idx << ShardBits) |
              static_cast<uint32_t>(Hash & ((1u << ShardBits) - 1)),
          true};
}

std::pair<const uint64_t *, uint32_t> InternPool::view(uint32_t Id) const {
  const Shard &S = *Shards[Id & ((1u << ShardBits) - 1)];
  std::lock_guard<std::mutex> Lock(S.M);
  const Shard::Entry &E = S.Entries[Id >> ShardBits];
  return {E.Ptr, E.Len};
}

size_t InternPool::size() const {
  size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Entries.size();
  }
  return N;
}

uint64_t InternPool::bytes() const {
  uint64_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Bytes;
  }
  return N;
}

namespace {

/// Both signatures are sorted event-id spans; subset by two-pointer walk.
bool sigSubset(const uint64_t *A, uint32_t An, const uint64_t *B,
               uint32_t Bn) {
  if (An > Bn)
    return false;
  uint32_t J = 0;
  for (uint32_t I = 0; I < An; ++I) {
    while (J < Bn && B[J] < A[I])
      ++J;
    if (J == Bn || B[J] != A[I])
      return false;
    ++J;
  }
  return true;
}

} // namespace

struct SleepMemo::Shard {
  struct Cell {
    uint32_t Key;
    uint32_t Head; ///< record index + 1; 0 = none
  };
  struct Record {
    uint32_t Sig;
    uint32_t Next; ///< record index + 1; 0 = end
  };
  static constexpr uint32_t EmptyKey = 0xFFFFFFFFu;

  std::mutex M;
  std::vector<Cell> Cells;
  std::vector<Record> Records;
  size_t Used = 0;
  uint64_t Bytes = 0;

  Shard() : Cells(64, {EmptyKey, 0}) {
    Bytes += Cells.size() * sizeof(Cell);
  }

  Cell &find(uint32_t Key) {
    size_t Mask = Cells.size() - 1;
    size_t I = mix64(Key) & Mask;
    while (Cells[I].Key != EmptyKey && Cells[I].Key != Key)
      I = (I + 1) & Mask;
    return Cells[I];
  }

  void growTable(uint64_t &Charged) {
    std::vector<Cell> Old = std::move(Cells);
    Cells.assign(Old.size() * 2, {EmptyKey, 0});
    Charged += Cells.size() * sizeof(Cell);
    Bytes += Cells.size() * sizeof(Cell);
    for (const Cell &C : Old)
      if (C.Key != EmptyKey)
        find(C.Key) = C;
  }
};

SleepMemo::SleepMemo(unsigned ShardBits, const InternPool &Sigs,
                     Budget *Shared)
    : ShardBits(ShardBits), Sigs(Sigs), Shared(Shared) {
  Shards.reserve(1u << ShardBits);
  for (size_t I = 0; I < (1u << ShardBits); ++I)
    Shards.push_back(std::make_unique<Shard>());
}

SleepMemo::~SleepMemo() = default;

bool SleepMemo::shouldExplore(uint32_t StateId, uint32_t SigId) {
  Shard &S = *Shards[mix64(StateId) & ((1u << ShardBits) - 1)];
  auto [CurPtr, CurLen] = Sigs.view(SigId);
  std::lock_guard<std::mutex> Lock(S.M);
  uint64_t Charged = 0;
  Shard::Cell &C = S.find(StateId);
  if (C.Key == Shard::EmptyKey) {
    C.Key = StateId;
    ++S.Used;
  } else {
    // Prune iff a recorded sleep set is a subset of the current one: that
    // visit explored every transition this visit would. While walking,
    // unlink records dominated by (strict supersets of) the new set.
    uint32_t *Link = &C.Head;
    while (*Link) {
      Shard::Record &R = S.Records[*Link - 1];
      if (R.Sig == SigId)
        return false;
      auto [RecPtr, RecLen] = Sigs.view(R.Sig);
      if (sigSubset(RecPtr, RecLen, CurPtr, CurLen))
        return false;
      if (sigSubset(CurPtr, CurLen, RecPtr, RecLen))
        *Link = R.Next; // dominated: the new record covers it
      else
        Link = &R.Next;
    }
  }
  size_t OldCap = S.Records.capacity();
  S.Records.push_back({SigId, C.Head});
  if (S.Records.capacity() != OldCap) {
    uint64_t Delta =
        (S.Records.capacity() - OldCap) * sizeof(Shard::Record);
    Charged += Delta;
    S.Bytes += Delta;
  }
  C.Head = static_cast<uint32_t>(S.Records.size());
  if (S.Used * 10 > S.Cells.size() * 7)
    S.growTable(Charged);
  if (Shared && Charged)
    Shared->chargeBytes(Charged);
  return true;
}

uint64_t SleepMemo::bytes() const {
  uint64_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Bytes;
  }
  return N;
}
