#include "support/Intern.h"

#include "support/Failure.h"

#include <array>
#include <bit>
#include <cassert>
#include <cstring>

using namespace tracesafe;

namespace {

inline uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Exponentially sized stable storage: chunk I holds 64<<I items, so 32
/// chunk pointers cover any uint32 index and an item, once written, never
/// moves. Readers locate chunks through atomic pointers; writers allocate
/// under the owner's lock and publish with a release store.
constexpr unsigned StableBaseLog = 6; // first chunk: 64 items
constexpr unsigned StableChunks = 32;

inline unsigned stableChunkOf(uint32_t Idx) {
  return std::bit_width((Idx >> StableBaseLog) + 1) - 1;
}
inline uint32_t stableBaseOf(unsigned Chunk) {
  return (uint32_t{64} << Chunk) - 64;
}
inline size_t stableCapOf(unsigned Chunk) { return size_t{64} << Chunk; }

} // namespace

uint64_t InternPool::hashWords(const uint64_t *Words, size_t N) {
  uint64_t H = 0x9E3779B97F4A7C15ULL ^ (static_cast<uint64_t>(N) << 1);
  for (size_t I = 0; I < N; ++I)
    H = mix64(H ^ Words[I]);
  return H;
}

struct InternPool::Shard {
  static constexpr size_t ChunkWords = 1 << 13; // 64 KiB of span storage

  struct Entry {
    const uint64_t *Ptr;
    uint32_t Len;
    uint64_t Hash;
  };

  /// Open-addressing slot table. Slots hold entry index + 1 (0 = empty)
  /// and are published with release stores, so a lock-free probe that
  /// loads a non-zero slot with acquire ordering sees the entry fully
  /// written. Tables are immutable in size; growth swaps in a bigger one
  /// and retires (but never frees) the old, so a racing reader's probe
  /// stays within valid memory.
  struct Table {
    size_t Mask;
    std::unique_ptr<std::atomic<uint32_t>[]> Slots;
    explicit Table(size_t N) : Mask(N - 1), Slots(new std::atomic<uint32_t>[N]) {
      for (size_t I = 0; I < N; ++I)
        Slots[I].store(0, std::memory_order_relaxed);
    }
    size_t size() const { return Mask + 1; }
  };

  mutable std::mutex M;
  std::atomic<Table *> Live;
  std::vector<std::unique_ptr<Table>> Retired; // all tables, incl. live
  std::array<std::atomic<Entry *>, StableChunks> EntryChunks{};
  std::vector<std::unique_ptr<uint64_t[]>> WordChunks;
  size_t ChunkUsed = ChunkWords; // full: first intern allocates
  std::atomic<uint32_t> Count{0};
  std::atomic<uint64_t> Bytes{0};

  Shard() {
    auto T = std::make_unique<Table>(64);
    Bytes.fetch_add(T->size() * sizeof(std::atomic<uint32_t>),
                    std::memory_order_relaxed);
    Live.store(T.get(), std::memory_order_release);
    Retired.push_back(std::move(T));
  }

  Entry &entryAt(uint32_t Idx) const {
    unsigned C = stableChunkOf(Idx);
    return EntryChunks[C].load(std::memory_order_acquire)[Idx -
                                                          stableBaseOf(C)];
  }

  /// Ensures storage for entry \p Idx exists. Lock held.
  Entry &entrySlotForWrite(uint32_t Idx, uint64_t &Charged) {
    unsigned C = stableChunkOf(Idx);
    Entry *Chunk = EntryChunks[C].load(std::memory_order_relaxed);
    if (!Chunk) {
      Chunk = new Entry[stableCapOf(C)];
      Charged += stableCapOf(C) * sizeof(Entry);
      Bytes.fetch_add(stableCapOf(C) * sizeof(Entry),
                      std::memory_order_relaxed);
      EntryChunks[C].store(Chunk, std::memory_order_release);
    }
    return Chunk[Idx - stableBaseOf(C)];
  }

  const uint64_t *store(const uint64_t *Words, size_t N, uint64_t &Charged) {
    if (N == 0) { // e.g. the empty sleep-set signature
      static const uint64_t Dummy = 0;
      return &Dummy;
    }
    if (N > ChunkWords - ChunkUsed) {
      size_t Cap = N > ChunkWords ? N : ChunkWords;
      WordChunks.push_back(std::make_unique<uint64_t[]>(Cap));
      ChunkUsed = 0;
      Charged += Cap * sizeof(uint64_t);
      Bytes.fetch_add(Cap * sizeof(uint64_t), std::memory_order_relaxed);
      if (Cap > ChunkWords) { // dedicated oversize chunk; retire it
        ChunkUsed = Cap;
        std::memcpy(WordChunks.back().get(), Words, N * sizeof(uint64_t));
        return WordChunks.back().get();
      }
    }
    uint64_t *Dst = WordChunks.back().get() + ChunkUsed;
    std::memcpy(Dst, Words, N * sizeof(uint64_t));
    ChunkUsed += N;
    return Dst;
  }

  /// \p ShardBits must match the probe-start computation in intern():
  /// lookups begin at (Hash >> ShardBits) & Mask, so the rehash must too,
  /// or post-growth probes miss existing entries and intern duplicates.
  /// Lock held; the old table stays retired for racing readers.
  void growTable(unsigned ShardBits, uint64_t &Charged) {
    Table *Old = Live.load(std::memory_order_relaxed);
    auto Next = std::make_unique<Table>(Old->size() * 2);
    Charged += Next->size() * sizeof(std::atomic<uint32_t>);
    Bytes.fetch_add(Next->size() * sizeof(std::atomic<uint32_t>),
                    std::memory_order_relaxed);
    size_t Mask = Next->Mask;
    for (size_t I = 0; I <= Old->Mask; ++I) {
      uint32_t V = Old->Slots[I].load(std::memory_order_relaxed);
      if (!V)
        continue;
      size_t J = (entryAt(V - 1).Hash >> ShardBits) & Mask;
      while (Next->Slots[J].load(std::memory_order_relaxed))
        J = (J + 1) & Mask;
      Next->Slots[J].store(V, std::memory_order_relaxed);
    }
    Live.store(Next.get(), std::memory_order_release);
    Retired.push_back(std::move(Next));
  }

  ~Shard() {
    for (auto &C : EntryChunks)
      delete[] C.load(std::memory_order_relaxed);
  }
};

namespace {

/// Per-thread cache of recently interned spans. One direct-mapped line
/// per low hash byte; entries are validated against the pool by word
/// compare, and the never-reused pool generation makes a line from a
/// dead pool (or a different live one) miss instead of aliasing.
struct FrontCache {
  struct Line {
    uint64_t Hash = 0;
    uint32_t Id = 0;
    uint32_t Len = 0xFFFFFFFFu;
  };
  uint64_t Gen = 0;
  std::array<Line, 256> Lines;
};

thread_local FrontCache TlsFront;

std::atomic<uint64_t> NextGeneration{1};

} // namespace

InternPool::InternPool(unsigned ShardBits, Budget *Shared)
    : ShardBits(ShardBits),
      Generation(NextGeneration.fetch_add(1, std::memory_order_relaxed)),
      Shared(Shared) {
  Shards.reserve(1u << ShardBits);
  for (size_t I = 0; I < (1u << ShardBits); ++I)
    Shards.push_back(std::make_unique<Shard>());
}

InternPool::~InternPool() = default;

InternPool::Result InternPool::intern(const uint64_t *Words, size_t N) {
  // Fault-injection site: simulated allocation failure, thrown before any
  // shard state is touched so the pool stays consistent. The engines
  // contain it at their query boundary as Unknown(EngineFault).
  faultThrowBadAlloc(FaultSite::InternAlloc);
  uint64_t Hash = hashWords(Words, N);

  // Front cache: a hit here touches no shared cache line at all.
  FrontCache &F = TlsFront;
  if (F.Gen != Generation) {
    F.Gen = Generation;
    F.Lines.fill({});
  }
  FrontCache::Line &L = F.Lines[Hash & 0xFF];
  if (L.Hash == Hash && L.Len == N) {
    auto [Ptr, Len] = view(L.Id);
    if (Len == N && (N == 0 || std::memcmp(Ptr, Words, N * 8) == 0))
      return {L.Id, false};
  }

  Shard &S = *Shards[Hash & ((1u << ShardBits) - 1)];

  // Lock-free probe of the live table. A hit is authoritative (slots are
  // published after their entry is fully written); a miss may be stale,
  // so it falls through to the locked path.
  {
    Shard::Table *T = S.Live.load(std::memory_order_acquire);
    size_t Mask = T->Mask;
    size_t I = (Hash >> ShardBits) & Mask;
    while (uint32_t V = T->Slots[I].load(std::memory_order_acquire)) {
      const Shard::Entry &E = S.entryAt(V - 1);
      if (E.Hash == Hash && E.Len == N &&
          (N == 0 || std::memcmp(E.Ptr, Words, N * sizeof(uint64_t)) == 0)) {
        uint32_t Id = ((V - 1) << ShardBits) |
                      static_cast<uint32_t>(Hash & ((1u << ShardBits) - 1));
        L = {Hash, Id, static_cast<uint32_t>(N)};
        return {Id, false};
      }
      I = (I + 1) & Mask;
    }
  }

  std::lock_guard<std::mutex> Lock(S.M);
  Shard::Table *T = S.Live.load(std::memory_order_relaxed);
  size_t Mask = T->Mask;
  size_t I = (Hash >> ShardBits) & Mask;
  while (uint32_t V = T->Slots[I].load(std::memory_order_relaxed)) {
    const Shard::Entry &E = S.entryAt(V - 1);
    if (E.Hash == Hash && E.Len == N &&
        (N == 0 || std::memcmp(E.Ptr, Words, N * sizeof(uint64_t)) == 0)) {
      uint32_t Id = ((V - 1) << ShardBits) |
                    static_cast<uint32_t>(Hash & ((1u << ShardBits) - 1));
      L = {Hash, Id, static_cast<uint32_t>(N)};
      return {Id, false};
    }
    I = (I + 1) & Mask;
  }
  uint64_t Charged = 0;
  const uint64_t *Ptr = S.store(Words, N, Charged);
  uint32_t Idx = S.Count.load(std::memory_order_relaxed);
  Shard::Entry &E = S.entrySlotForWrite(Idx, Charged);
  E = {Ptr, static_cast<uint32_t>(N), Hash};
  // Publish: entry before slot, slot before count.
  T->Slots[I].store(Idx + 1, std::memory_order_release);
  S.Count.store(Idx + 1, std::memory_order_release);
  // Grow at ~70% load so probe sequences stay short.
  if ((Idx + 1) * 10 > T->size() * 7)
    S.growTable(ShardBits, Charged);
  if (Shared && Charged)
    Shared->chargeBytes(Charged);
  uint32_t Id = (Idx << ShardBits) |
                static_cast<uint32_t>(Hash & ((1u << ShardBits) - 1));
  L = {Hash, Id, static_cast<uint32_t>(N)};
  return {Id, true};
}

std::pair<const uint64_t *, uint32_t> InternPool::view(uint32_t Id) const {
  const Shard &S = *Shards[Id & ((1u << ShardBits) - 1)];
  const Shard::Entry &E = S.entryAt(Id >> ShardBits);
  return {E.Ptr, E.Len};
}

size_t InternPool::size() const {
  size_t N = 0;
  for (const auto &S : Shards)
    N += S->Count.load(std::memory_order_acquire);
  return N;
}

uint64_t InternPool::bytes() const {
  uint64_t N = 0;
  for (const auto &S : Shards)
    N += S->Bytes.load(std::memory_order_relaxed);
  return N;
}

namespace {

/// Both signatures are sorted event-id spans; subset by two-pointer walk.
bool sigSubset(const uint64_t *A, uint32_t An, const uint64_t *B,
               uint32_t Bn) {
  if (An > Bn)
    return false;
  uint32_t J = 0;
  for (uint32_t I = 0; I < An; ++I) {
    while (J < Bn && B[J] < A[I])
      ++J;
    if (J == Bn || B[J] != A[I])
      return false;
    ++J;
  }
  return true;
}

} // namespace

struct SleepMemo::Shard {
  /// A cell packs {state key, head record index + 1} into one atomic
  /// word, so lock-free readers see key and chain head consistently.
  static constexpr uint32_t EmptyKey = 0xFFFFFFFFu;
  static uint64_t packCell(uint32_t Key, uint32_t Head) {
    return static_cast<uint64_t>(Head) << 32 | Key;
  }

  struct Record {
    uint32_t Sig;
    std::atomic<uint32_t> Next; ///< record index + 1; 0 = end
  };

  struct Table {
    size_t Mask;
    std::unique_ptr<std::atomic<uint64_t>[]> Cells;
    explicit Table(size_t N)
        : Mask(N - 1), Cells(new std::atomic<uint64_t>[N]) {
      for (size_t I = 0; I < N; ++I)
        Cells[I].store(packCell(EmptyKey, 0), std::memory_order_relaxed);
    }
    size_t size() const { return Mask + 1; }
  };

  std::mutex M;
  std::atomic<Table *> Live;
  std::vector<std::unique_ptr<Table>> Retired;
  std::array<std::atomic<Record *>, StableChunks> RecordChunks{};
  uint32_t RecordCount = 0; // written under lock only
  size_t Used = 0;
  std::atomic<uint64_t> Bytes{0};

  Shard() {
    auto T = std::make_unique<Table>(64);
    Bytes.fetch_add(T->size() * sizeof(std::atomic<uint64_t>),
                    std::memory_order_relaxed);
    Live.store(T.get(), std::memory_order_release);
    Retired.push_back(std::move(T));
  }

  Record &recordAt(uint32_t Idx) const {
    unsigned C = stableChunkOf(Idx);
    return RecordChunks[C].load(std::memory_order_acquire)[Idx -
                                                           stableBaseOf(C)];
  }

  Record &recordSlotForWrite(uint32_t Idx, uint64_t &Charged) {
    unsigned C = stableChunkOf(Idx);
    Record *Chunk = RecordChunks[C].load(std::memory_order_relaxed);
    if (!Chunk) {
      Chunk = new Record[stableCapOf(C)];
      Charged += stableCapOf(C) * sizeof(Record);
      Bytes.fetch_add(stableCapOf(C) * sizeof(Record),
                      std::memory_order_relaxed);
      RecordChunks[C].store(Chunk, std::memory_order_release);
    }
    return Chunk[Idx - stableBaseOf(C)];
  }

  /// Probes \p T for \p Key. Returns the cell index holding the key or an
  /// empty cell (insertion point when probing the live table under lock).
  size_t probe(Table *T, uint32_t Key) const {
    size_t Mask = T->Mask;
    size_t I = mix64(Key) & Mask;
    while (true) {
      uint32_t K = static_cast<uint32_t>(
          T->Cells[I].load(std::memory_order_acquire));
      if (K == EmptyKey || K == Key)
        return I;
      I = (I + 1) & Mask;
    }
  }

  void growTable(uint64_t &Charged) {
    Table *Old = Live.load(std::memory_order_relaxed);
    auto Next = std::make_unique<Table>(Old->size() * 2);
    Charged += Next->size() * sizeof(std::atomic<uint64_t>);
    Bytes.fetch_add(Next->size() * sizeof(std::atomic<uint64_t>),
                    std::memory_order_relaxed);
    for (size_t I = 0; I <= Old->Mask; ++I) {
      uint64_t Cell = Old->Cells[I].load(std::memory_order_relaxed);
      uint32_t Key = static_cast<uint32_t>(Cell);
      if (Key == EmptyKey)
        continue;
      Next->Cells[probe(Next.get(), Key)].store(Cell,
                                                std::memory_order_relaxed);
    }
    Live.store(Next.get(), std::memory_order_release);
    Retired.push_back(std::move(Next));
  }

  ~Shard() {
    for (auto &C : RecordChunks)
      delete[] C.load(std::memory_order_relaxed);
  }
};

SleepMemo::SleepMemo(unsigned ShardBits, const InternPool &Sigs,
                     Budget *Shared)
    : ShardBits(ShardBits), Sigs(Sigs), Shared(Shared) {
  Shards.reserve(1u << ShardBits);
  for (size_t I = 0; I < (1u << ShardBits); ++I)
    Shards.push_back(std::make_unique<Shard>());
}

SleepMemo::~SleepMemo() = default;

bool SleepMemo::shouldExplore(uint32_t StateId, uint32_t SigId) {
  Shard &S = *Shards[mix64(StateId) & ((1u << ShardBits) - 1)];
  auto [CurPtr, CurLen] = Sigs.view(SigId);

  // Lock-free prune check. Only the negative (prune) answer may be
  // produced here: every record ever linked names a visit that really
  // recorded that sleep set, so a subset hit through a stale table or a
  // concurrently unlinked record is still a sound reason to prune. "No
  // subset found" can be stale, so it falls to the locked re-check.
  {
    Shard::Table *T = S.Live.load(std::memory_order_acquire);
    uint64_t Cell =
        T->Cells[S.probe(T, StateId)].load(std::memory_order_acquire);
    if (static_cast<uint32_t>(Cell) == StateId) {
      uint32_t Link = static_cast<uint32_t>(Cell >> 32);
      while (Link) {
        const Shard::Record &R = S.recordAt(Link - 1);
        if (R.Sig == SigId)
          return false;
        auto [RecPtr, RecLen] = Sigs.view(R.Sig);
        if (sigSubset(RecPtr, RecLen, CurPtr, CurLen))
          return false;
        Link = R.Next.load(std::memory_order_acquire);
      }
    }
  }

  std::lock_guard<std::mutex> Lock(S.M);
  uint64_t Charged = 0;
  Shard::Table *T = S.Live.load(std::memory_order_relaxed);
  size_t CellIdx = S.probe(T, StateId);
  uint64_t Cell = T->Cells[CellIdx].load(std::memory_order_relaxed);
  uint32_t Head = 0;
  if (static_cast<uint32_t>(Cell) == Shard::EmptyKey) {
    ++S.Used;
  } else {
    // Prune iff a recorded sleep set is a subset of the current one: that
    // visit explored every transition this visit would. While walking,
    // unlink records dominated by (strict supersets of) the new set.
    Head = static_cast<uint32_t>(Cell >> 32);
    std::atomic<uint32_t> *LinkSlot = nullptr; // null: head lives in Cell
    uint32_t Link = Head;
    while (Link) {
      Shard::Record &R = S.recordAt(Link - 1);
      uint32_t NextLink = R.Next.load(std::memory_order_relaxed);
      if (R.Sig == SigId)
        return false;
      auto [RecPtr, RecLen] = Sigs.view(R.Sig);
      if (sigSubset(RecPtr, RecLen, CurPtr, CurLen))
        return false;
      if (sigSubset(CurPtr, CurLen, RecPtr, RecLen)) {
        // Dominated: the new record covers it. Unlink in place; racing
        // lock-free readers may still traverse the old link, which is
        // harmless (the record stays valid and sound).
        if (LinkSlot)
          LinkSlot->store(NextLink, std::memory_order_release);
        else
          Head = NextLink;
      } else {
        LinkSlot = &R.Next;
      }
      Link = NextLink;
    }
  }
  uint32_t Idx = S.RecordCount;
  Shard::Record &NewRec = S.recordSlotForWrite(Idx, Charged);
  NewRec.Sig = SigId;
  NewRec.Next.store(Head, std::memory_order_relaxed);
  S.RecordCount = Idx + 1;
  // Publish the record before linking it as the cell head.
  T->Cells[CellIdx].store(Shard::packCell(StateId, Idx + 1),
                          std::memory_order_release);
  if (S.Used * 10 > T->size() * 7)
    S.growTable(Charged);
  if (Shared && Charged)
    Shared->chargeBytes(Charged);
  return true;
}

uint64_t SleepMemo::bytes() const {
  uint64_t N = 0;
  for (const auto &S : Shards)
    N += S->Bytes.load(std::memory_order_relaxed);
  return N;
}
