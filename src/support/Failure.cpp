#include "support/Failure.h"

#include <chrono>
#include <new>
#include <thread>

using namespace tracesafe;

namespace {

std::atomic<FaultPlan *> ActivePlan{nullptr};

/// SplitMix64: decorrelates the per-site trigger counts of random plans.
uint64_t mix64(uint64_t Z) {
  Z += 0x9E3779B97F4A7C15ULL;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

} // namespace

const char *tracesafe::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::InternAlloc:
    return "intern-alloc";
  case FaultSite::TaskRun:
    return "task-run";
  case FaultSite::TaskStall:
    return "task-stall";
  case FaultSite::BudgetCharge:
    return "budget-charge";
  case FaultSite::BehaviourCache:
    return "behaviour-cache";
  case FaultSite::BufferedIntern:
    return "buffered-intern";
  case FaultSite::BufferedFork:
    return "buffered-fork";
  case FaultSite::BufferedDrain:
    return "buffered-drain";
  case FaultSite::ProtoRead:
    return "proto-read";
  case FaultSite::ProtoWrite:
    return "proto-write";
  case FaultSite::Accept:
    return "accept";
  case FaultSite::Admission:
    return "admission";
  case FaultSite::RaceDetect:
    return "race-detect";
  case FaultSite::Count_:
    break;
  }
  return "invalid";
}

void FaultPlan::arm(FaultSite S, uint64_t FireAt, uint64_t Repeat,
                    unsigned StallMs) {
  SiteArm &A = Arms[static_cast<size_t>(S)];
  A.FireAt = FireAt;
  A.Repeat = Repeat ? Repeat : 1;
  A.StallMs = StallMs;
}

void FaultPlan::reset() {
  for (size_t I = 0; I < FaultSiteCount; ++I) {
    Arms[I] = SiteArm{};
    Hits[I].store(0, std::memory_order_relaxed);
    Fired[I].store(0, std::memory_order_relaxed);
  }
}

void FaultPlan::randomize(uint64_t Seed) {
  reset();
  // The campaign sites predate the daemon/engine extensions; drawing from
  // this fixed list (in enum order) keeps (seed -> plan) stable for the
  // recorded chaos seeds even as new sites are appended to the enum.
  static constexpr FaultSite CampaignSites[] = {
      FaultSite::InternAlloc, FaultSite::TaskRun, FaultSite::TaskStall,
      FaultSite::BudgetCharge, FaultSite::BehaviourCache};
  constexpr size_t NumCampaignSites =
      sizeof(CampaignSites) / sizeof(CampaignSites[0]);
  uint64_t Z = Seed;
  auto Next = [&Z] { return Z = mix64(Z); };
  // Arm one to three distinct sites. Trigger counts are kept small enough
  // that a short chaos campaign actually reaches them: the intern pools
  // and budgets see thousands of hits per campaign, the task sites tens.
  unsigned Sites = 1 + static_cast<unsigned>(Next() % 3);
  for (unsigned I = 0; I < Sites; ++I) {
    FaultSite S = CampaignSites[Next() % NumCampaignSites];
    uint64_t Repeat = 1 + Next() % 3;
    switch (S) {
    case FaultSite::InternAlloc:
      arm(S, 1 + Next() % 2'000, Repeat);
      break;
    case FaultSite::BudgetCharge:
      // The interrupt check (and thus this site) is probed once per 256
      // budget charges, so a short campaign only reaches O(100) hits.
      arm(S, 1 + Next() % 150, Repeat);
      break;
    case FaultSite::TaskRun:
      arm(S, 1 + Next() % 6, Repeat);
      break;
    case FaultSite::TaskStall: {
      uint64_t FireAt = 1 + Next() % 6;
      arm(S, FireAt, Repeat,
          /*StallMs=*/1 + static_cast<unsigned>(Next() % 20));
      break;
    }
    case FaultSite::BehaviourCache:
      // A fuzz campaign probes the cache a handful of times per program,
      // so the trigger must land within tens of hits.
      arm(S, 1 + Next() % 50, Repeat);
      break;
    default:
      break;
    }
  }
}

void FaultPlan::randomizeDaemon(uint64_t Seed) {
  reset();
  static constexpr FaultSite DaemonSites[] = {
      FaultSite::ProtoRead,      FaultSite::ProtoWrite,
      FaultSite::Accept,         FaultSite::Admission,
      FaultSite::BufferedIntern, FaultSite::BufferedFork,
      FaultSite::BufferedDrain};
  constexpr size_t NumDaemonSites =
      sizeof(DaemonSites) / sizeof(DaemonSites[0]);
  uint64_t Z = mix64(Seed ^ 0xDAE110ULL);
  auto Next = [&Z] { return Z = mix64(Z); };
  unsigned Sites = 1 + static_cast<unsigned>(Next() % 3);
  for (unsigned I = 0; I < Sites; ++I) {
    FaultSite S = DaemonSites[Next() % NumDaemonSites];
    uint64_t Repeat = 1 + Next() % 3;
    switch (S) {
    case FaultSite::ProtoRead:
    case FaultSite::ProtoWrite:
      // A small batch moves tens of frames; land inside it.
      arm(S, 1 + Next() % 20, Repeat);
      break;
    case FaultSite::Accept:
    case FaultSite::Admission:
      // Accepts and admissions are one per connection / request.
      arm(S, 1 + Next() % 6, Repeat);
      break;
    case FaultSite::BufferedIntern:
      // The buffered search interns a state and its events per visit;
      // even a small TSO query racks up thousands of hits.
      arm(S, 1 + Next() % 2'000, Repeat);
      break;
    case FaultSite::BufferedFork:
    case FaultSite::BufferedDrain:
      arm(S, 1 + Next() % 50, Repeat);
      break;
    default:
      break;
    }
  }
}

bool FaultPlan::shouldFire(FaultSite S) {
  size_t I = static_cast<size_t>(S);
  const SiteArm &A = Arms[I];
  if (A.FireAt == 0)
    return false;
  uint64_t Hit = Hits[I].fetch_add(1, std::memory_order_relaxed) + 1;
  // Overflow-safe window test: Repeat may be ~0 ("fire forever").
  if (Hit < A.FireAt || Hit - A.FireAt >= A.Repeat)
    return false;
  Fired[I].fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t FaultPlan::totalFired() const {
  uint64_t N = 0;
  for (const auto &F : Fired)
    N += F.load(std::memory_order_relaxed);
  return N;
}

std::string FaultPlan::describe() const {
  std::string Out;
  for (size_t I = 0; I < FaultSiteCount; ++I) {
    const SiteArm &A = Arms[I];
    if (A.FireAt == 0)
      continue;
    if (!Out.empty())
      Out += ", ";
    Out += std::string(faultSiteName(static_cast<FaultSite>(I))) + "@" +
           std::to_string(A.FireAt) + "x" + std::to_string(A.Repeat);
    if (A.StallMs)
      Out += "(" + std::to_string(A.StallMs) + "ms)";
  }
  return Out.empty() ? "none" : Out;
}

FaultPlan *FaultPlan::install(FaultPlan *Plan) {
  return ActivePlan.exchange(Plan, std::memory_order_acq_rel);
}

FaultPlan *FaultPlan::active() {
  return ActivePlan.load(std::memory_order_acquire);
}

bool tracesafe::faultPoint(FaultSite S) {
  FaultPlan *Plan = FaultPlan::active();
  return Plan && Plan->shouldFire(S);
}

void tracesafe::faultThrowBadAlloc(FaultSite S) {
  if (faultPoint(S))
    throw std::bad_alloc();
}

void tracesafe::faultThrowInjected(FaultSite S) {
  if (faultPoint(S))
    throw InjectedFault(S);
}

void tracesafe::faultMaybeStall(FaultSite S) {
  FaultPlan *Plan = FaultPlan::active();
  if (Plan && Plan->shouldFire(S))
    std::this_thread::sleep_for(std::chrono::milliseconds(Plan->stallMs()));
}
