//===----------------------------------------------------------------------===//
///
/// \file
/// Permutation helpers for the reordering checker.
///
/// A reordering function in the paper is a bijection f : dom(t) -> dom(t)
/// with ordering side conditions. We represent a permutation as a vector P
/// with P[i] = f(i), and provide inversion, application, validity checks and
/// a constrained backtracking enumerator used by the semantic reordering
/// search.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_PERMUTATION_H
#define TRACESAFE_SUPPORT_PERMUTATION_H

#include <cstddef>
#include <functional>
#include <vector>

namespace tracesafe {

/// P[i] = image of index i. Valid iff P is a bijection on {0..n-1}.
using Permutation = std::vector<size_t>;

/// Returns true iff \p P maps {0..n-1} bijectively onto itself.
bool isPermutation(const Permutation &P);

/// Returns the inverse permutation; asserts that \p P is valid.
Permutation invertPermutation(const Permutation &P);

/// Returns the identity permutation on N elements.
Permutation identityPermutation(size_t N);

/// Applies \p P to a sequence of indices {0..n-1}: Result[P[i]] = i is the
/// *position map*; what we return is the reordered index list L with
/// L[P[i]] = i, i.e. which source index lands at each target slot.
std::vector<size_t> sourceAtTarget(const Permutation &P);

/// Enumerates all permutations of {0..N-1} that satisfy \p Admissible at
/// every partial assignment. \p Admissible(P, I) is called with P[0..I]
/// assigned and must return true if the partial assignment can still lead to
/// a valid permutation (it is a pruning predicate, not a final check).
/// \p Visit is called with each complete permutation; returning false stops
/// the enumeration early. Returns false iff stopped early.
bool forEachPermutation(
    size_t N, const std::function<bool(const Permutation &, size_t)> &Admissible,
    const std::function<bool(const Permutation &)> &Visit);

/// Number of inversions of P (pairs i<j with P[i]>P[j]); a cheap measure of
/// how much reordering a permutation performs. Used by benches.
size_t inversionCount(const Permutation &P);

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_PERMUTATION_H
