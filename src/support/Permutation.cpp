#include "support/Permutation.h"

#include <cassert>

using namespace tracesafe;

bool tracesafe::isPermutation(const Permutation &P) {
  std::vector<bool> Seen(P.size(), false);
  for (size_t V : P) {
    if (V >= P.size() || Seen[V])
      return false;
    Seen[V] = true;
  }
  return true;
}

Permutation tracesafe::invertPermutation(const Permutation &P) {
  assert(isPermutation(P) && "invertPermutation requires a bijection");
  Permutation Inv(P.size());
  for (size_t I = 0; I < P.size(); ++I)
    Inv[P[I]] = I;
  return Inv;
}

Permutation tracesafe::identityPermutation(size_t N) {
  Permutation P(N);
  for (size_t I = 0; I < N; ++I)
    P[I] = I;
  return P;
}

std::vector<size_t> tracesafe::sourceAtTarget(const Permutation &P) {
  return invertPermutation(P);
}

namespace {

bool enumerateRec(size_t N, Permutation &P, std::vector<bool> &Used, size_t I,
                  const std::function<bool(const Permutation &, size_t)> &Adm,
                  const std::function<bool(const Permutation &)> &Visit) {
  if (I == N)
    return Visit(P);
  for (size_t V = 0; V < N; ++V) {
    if (Used[V])
      continue;
    P[I] = V;
    Used[V] = true;
    bool Continue = true;
    if (Adm(P, I))
      Continue = enumerateRec(N, P, Used, I + 1, Adm, Visit);
    Used[V] = false;
    if (!Continue)
      return false;
  }
  return true;
}

} // namespace

bool tracesafe::forEachPermutation(
    size_t N, const std::function<bool(const Permutation &, size_t)> &Admissible,
    const std::function<bool(const Permutation &)> &Visit) {
  Permutation P(N, 0);
  std::vector<bool> Used(N, false);
  return enumerateRec(N, P, Used, 0, Admissible, Visit);
}

size_t tracesafe::inversionCount(const Permutation &P) {
  size_t Count = 0;
  for (size_t I = 0; I < P.size(); ++I)
    for (size_t J = I + 1; J < P.size(); ++J)
      if (P[I] > P[J])
        ++Count;
  return Count;
}
