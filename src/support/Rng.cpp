#include "support/Rng.h"

// Rng is header-only; this file anchors the translation unit so the support
// library always has at least one object per header and stays linkable on
// toolchains that dislike empty archives.
