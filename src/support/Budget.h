//===----------------------------------------------------------------------===//
///
/// \file
/// Unified resource budgets and tri-state verdicts for the verification
/// harness.
///
/// Every exhaustive search in the library (traceset generation, execution
/// enumeration, the SC interpreter, the transformation checkers) is
/// exponential in the worst case. A Budget bounds a whole *query* — not one
/// engine — with a wall-clock deadline, a state-visit cap and an
/// approximate memory cap, shared cooperatively by every engine the query
/// touches. When a budget is exhausted the engines stop and report a
/// structured TruncationReason; callers surface the query result as a
/// Verdict whose Unknown state carries that reason, never as a wrong or
/// asserted-away answer.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_BUDGET_H
#define TRACESAFE_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace tracesafe {

/// Why a search stopped early. None means the search ran to completion.
enum class TruncationReason : uint8_t {
  None,
  StateCap,    ///< per-query or per-engine visit cap reached
  DepthCap,    ///< per-trace/per-thread action bound reached
  SilentLoop,  ///< a thread exceeded its silent-step allowance
  MemoryCap,   ///< approximate memory charge exceeded the budget
  Deadline,    ///< wall-clock deadline passed
  Cancelled,   ///< external cancellation (signal, kill, shutdown)
  EngineFault, ///< an engine faulted (exception, injected failure) and the
               ///< query was contained instead of crashing the process
};

/// Printable reason name ("deadline", "state-cap", ...).
const char *truncationReasonName(TruncationReason R);

/// Merges two reasons, preferring the more specific (non-None) one. Used
/// when a query aggregates several engine runs.
inline TruncationReason mergeReason(TruncationReason A, TruncationReason B) {
  return A == TruncationReason::None ? B : A;
}

/// Cooperative cancellation flag. A token is requested exactly once (by a
/// signal handler, a watchdog, or a parent query) and observed by every
/// Budget it is attached to: the next charge() clock check turns into a
/// sticky Cancelled exhaustion, so all engines of the query unwind within
/// one budget check interval. request() is async-signal-safe when
/// std::atomic<bool> is lock-free (it is on every supported target).
class CancelToken {
public:
  void request() { Flag.store(true, std::memory_order_relaxed); }
  bool requested() const { return Flag.load(std::memory_order_relaxed); }
  /// Re-arms the token (between campaign phases; not thread-safe against
  /// concurrent request()).
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Declarative description of a budget. Zero means "unlimited" for every
/// field, so BudgetSpec{} never truncates anything by itself.
struct BudgetSpec {
  /// Wall-clock deadline in milliseconds from the budget's creation.
  int64_t DeadlineMs = 0;
  /// Cap on state visits charged across all engines of the query.
  uint64_t MaxVisited = 0;
  /// Cap on approximate bytes charged (memoisation tables dominate).
  uint64_t MaxMemoryBytes = 0;

  /// Returns this spec scaled by \p Factor and clamped to \p Ceiling
  /// (field-wise; 0 in the ceiling means unbounded). Used by escalation.
  BudgetSpec scaled(unsigned Factor, const BudgetSpec &Ceiling) const;

  std::string str() const;
};

/// A live budget: the mutable counterpart of a BudgetSpec. Engines call
/// charge() once per state expansion; the call is cheap (the clock is only
/// consulted every few hundred charges). A Budget is shared by address —
/// the limit structs of the engines carry a non-owning pointer — so the
/// caps apply to the query as a whole, not per engine. All counters are
/// atomics so one budget can be shared by every worker of a parallel
/// query; exhaustion is a sticky broadcast every worker observes.
class Budget {
public:
  explicit Budget(const BudgetSpec &Spec,
                  const CancelToken *Cancel = nullptr)
      : Spec(Spec), Start(std::chrono::steady_clock::now()),
        Cancel(Cancel) {
    if (Spec.DeadlineMs > 0)
      Deadline = Start + std::chrono::milliseconds(Spec.DeadlineMs);
  }

  /// Charges one state visit plus \p Bytes of approximate memory. Returns
  /// true while the budget has headroom; once it returns false it keeps
  /// returning false (exhaustion is sticky) so deeply recursive searches
  /// unwind promptly.
  bool charge(uint64_t Bytes = 0) {
    if (Exhausted.load(std::memory_order_relaxed) != TruncationReason::None)
      return false;
    uint64_t V = Visited.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t B = Bytes_.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    if (Spec.MaxVisited && V > Spec.MaxVisited) {
      exhaust(TruncationReason::StateCap);
      return false;
    }
    if (Spec.MaxMemoryBytes && B > Spec.MaxMemoryBytes) {
      exhaust(TruncationReason::MemoryCap);
      return false;
    }
    // Consult the clock (and the cancel token, and the fault plan) only
    // every 256 charges: state expansion is far cheaper than a
    // syscall-free clock read, and deadlines are advisory to
    // ~milliseconds anyway. This interval is the cancellation latency
    // bound: a requested token is observed within 256 charges.
    if ((V & 0xFF) == 0 && !checkInterrupts())
      return false;
    return true;
  }

  /// Bulk charge: \p Visits state visits plus \p Bytes of memory in one
  /// call. Used when a cached result is replayed — the cache replays the
  /// recorded cost of the original computation against the current
  /// query's budget, so a cache hit truncates a tight budget exactly
  /// where the recomputation would have (warmth must not change
  /// verdicts). Checks the clock/cancel token unconditionally: bulk
  /// charges are rare.
  bool chargeMany(uint64_t Visits, uint64_t Bytes) {
    if (Exhausted.load(std::memory_order_relaxed) != TruncationReason::None)
      return false;
    uint64_t V = Visited.fetch_add(Visits, std::memory_order_relaxed) +
                 Visits;
    uint64_t B = Bytes_.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    if (Spec.MaxVisited && V > Spec.MaxVisited) {
      exhaust(TruncationReason::StateCap);
      return false;
    }
    if (Spec.MaxMemoryBytes && B > Spec.MaxMemoryBytes) {
      exhaust(TruncationReason::MemoryCap);
      return false;
    }
    return checkInterrupts();
  }

  /// Charges memory only, without consuming a state visit. Used by the
  /// interned-state containers, which charge their real allocation sizes
  /// as they grow rather than a per-entry guess. Container growth is rare
  /// (geometric), so unlike charge() this consults the deadline and the
  /// cancel token on every call — a memory-only growth phase (an
  /// InternPool rehash storm) must not run past the wall clock just
  /// because no state visit was charged.
  bool chargeBytes(uint64_t Bytes) {
    if (Exhausted.load(std::memory_order_relaxed) != TruncationReason::None)
      return false;
    uint64_t B = Bytes_.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    if (Spec.MaxMemoryBytes && B > Spec.MaxMemoryBytes) {
      exhaust(TruncationReason::MemoryCap);
      return false;
    }
    return checkInterrupts();
  }

  /// Marks the budget exhausted with \p R (first writer wins, like any
  /// other exhaustion). Used to broadcast external cancellation and to
  /// contain engine faults: every worker of the query observes the sticky
  /// flag on its next charge and unwinds.
  void poison(TruncationReason R) { exhaust(R); }

  /// Batched charging handle for the hot search loops. A Scope reserves a
  /// block of visit indices from the shared counter with one fetch_add and
  /// hands them out locally, so at 8+ workers the shared cache line stops
  /// being a contention point. The semantics are bit-exact with unbatched
  /// charge(): each charge consumes one global index, the visit-cap check
  /// is per-index (charge #n fails iff n exceeds MaxVisited), the clock /
  /// cancel token / fault plan are consulted at exactly the indices
  /// divisible by 256, and the sticky exhaustion flag is observed on every
  /// charge so cancellation still unwinds within one check interval.
  /// Unconsumed indices are returned at settle()/destruction, so once all
  /// scopes of a query quiesce, visited() equals the exact number of
  /// charges — the warmth-invariance contract the BehaviourCache replay
  /// relies on.
  class Scope {
  public:
    /// \p B may be null (unbudgeted query): charge() then always succeeds.
    explicit Scope(Budget *B) : B(B) {}
    ~Scope() { settle(); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    /// Equivalent to B->charge(Bytes), amortising the shared fetch_add
    /// over Block charges.
    bool charge(uint64_t Bytes = 0) {
      if (!B)
        return true;
      if (B->Exhausted.load(std::memory_order_relaxed) !=
          TruncationReason::None)
        return false;
      if (Used == Cap) {
        Base = B->Visited.fetch_add(Block, std::memory_order_relaxed);
        Used = 0;
        Cap = Block;
      }
      uint64_t V = Base + ++Used;
      if (B->Spec.MaxVisited && V > B->Spec.MaxVisited) {
        B->exhaust(TruncationReason::StateCap);
        return false;
      }
      if (Bytes) {
        uint64_t Bv =
            B->Bytes_.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
        if (B->Spec.MaxMemoryBytes && Bv > B->Spec.MaxMemoryBytes) {
          B->exhaust(TruncationReason::MemoryCap);
          return false;
        }
      }
      if ((V & 0xFF) == 0 && !B->checkInterrupts())
        return false;
      return true;
    }

    /// Returns the unconsumed remainder of the current block to the
    /// shared counter. Call at task boundaries (and implicitly from the
    /// destructor) so visited() is exact at quiescence.
    void settle() {
      if (B && Cap > Used)
        B->Visited.fetch_sub(Cap - Used, std::memory_order_relaxed);
      Base = 0;
      Used = Cap = 0;
    }

  private:
    static constexpr uint32_t Block = 64;
    Budget *B;
    uint64_t Base = 0;
    uint32_t Used = 0;
    uint32_t Cap = 0;
  };

  bool exhausted() const {
    return Exhausted.load(std::memory_order_relaxed) != TruncationReason::None;
  }
  TruncationReason reason() const {
    return Exhausted.load(std::memory_order_relaxed);
  }
  uint64_t visited() const { return Visited.load(std::memory_order_relaxed); }
  uint64_t chargedBytes() const {
    return Bytes_.load(std::memory_order_relaxed);
  }
  const BudgetSpec &spec() const { return Spec; }

  /// Milliseconds since the budget was created.
  int64_t elapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

  /// One-line human-readable usage summary.
  std::string describe() const;

private:
  /// First writer wins; later exhaustion reasons do not overwrite it.
  void exhaust(TruncationReason R) {
    TruncationReason Expected = TruncationReason::None;
    Exhausted.compare_exchange_strong(Expected, R,
                                      std::memory_order_relaxed);
  }

  /// Slow-path check shared by charge()/chargeBytes(): wall-clock
  /// deadline, cooperative cancellation, and the BudgetCharge fault-
  /// injection site. Returns false (after exhausting) when the query must
  /// stop. Out of line so the hot header does not pull in Failure.h.
  bool checkInterrupts();

  BudgetSpec Spec;
  std::chrono::steady_clock::time_point Start;
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  const CancelToken *Cancel = nullptr;
  std::atomic<uint64_t> Visited{0};
  std::atomic<uint64_t> Bytes_{0};
  std::atomic<TruncationReason> Exhausted{TruncationReason::None};
};

/// Block-reserving view over a plain shared atomic tally (the engines'
/// per-query visit counters). Same contention-avoidance idea as
/// Budget::Scope: next() hands out 1-based global indices from a locally
/// reserved block, and settle() (or destruction) returns the unconsumed
/// remainder, so the counter is exact once all scopes quiesce.
class CounterScope {
public:
  explicit CounterScope(std::atomic<uint64_t> &C) : C(C) {}
  ~CounterScope() { settle(); }
  CounterScope(const CounterScope &) = delete;
  CounterScope &operator=(const CounterScope &) = delete;

  uint64_t next() {
    if (Used == Cap) {
      Base = C.fetch_add(Block, std::memory_order_relaxed);
      Used = 0;
      Cap = Block;
    }
    return Base + ++Used;
  }

  void settle() {
    if (Cap > Used)
      C.fetch_sub(Cap - Used, std::memory_order_relaxed);
    Base = 0;
    Used = Cap = 0;
  }

private:
  static constexpr uint32_t Block = 64;
  std::atomic<uint64_t> &C;
  uint64_t Base = 0;
  uint32_t Used = 0;
  uint32_t Cap = 0;
};

/// Tri-state result of a verification query.
enum class VerdictKind : uint8_t {
  Proved,  ///< the property holds; the search was exhaustive
  Refuted, ///< a definitive counterexample was found
  Unknown, ///< the search was truncated before an answer was reached
};

const char *verdictKindName(VerdictKind K);

/// A verdict with an optional counterexample payload. Refuted verdicts are
/// definitive even under truncation (a witness is a witness); Proved
/// verdicts are only produced by exhaustive searches; Unknown carries the
/// truncation reason.
template <typename T> struct Verdict {
  VerdictKind Kind = VerdictKind::Unknown;
  std::optional<T> Witness; ///< populated when Refuted
  TruncationReason Reason = TruncationReason::None;

  static Verdict proved() { return Verdict{VerdictKind::Proved, {}, {}}; }
  static Verdict refuted(T W) {
    return Verdict{VerdictKind::Refuted, std::move(W),
                   TruncationReason::None};
  }
  static Verdict unknown(TruncationReason R) {
    return Verdict{VerdictKind::Unknown, {}, R};
  }

  bool isProved() const { return Kind == VerdictKind::Proved; }
  bool isRefuted() const { return Kind == VerdictKind::Refuted; }
  bool isUnknown() const { return Kind == VerdictKind::Unknown; }
};

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_BUDGET_H
