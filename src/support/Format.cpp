#include "support/Format.h"

using namespace tracesafe;

std::string tracesafe::join(const std::vector<std::string> &Parts,
                            const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string tracesafe::indent(const std::string &Text, unsigned Spaces) {
  std::string Pad(Spaces, ' ');
  std::string Out;
  bool AtLineStart = true;
  for (char C : Text) {
    if (AtLineStart && C != '\n')
      Out += Pad;
    Out += C;
    AtLineStart = (C == '\n');
  }
  return Out;
}
