#include "support/Signal.h"

#include <atomic>
#include <csignal>

using namespace tracesafe;

namespace {

std::atomic<CancelToken *> GToken{nullptr};
std::atomic<bool> GSignalled{false};

extern "C" void tracesafeOnSignal(int Sig) {
  GSignalled.store(true, std::memory_order_relaxed);
  if (CancelToken *T = GToken.load(std::memory_order_relaxed))
    T->request();
  // A second signal kills the process the ordinary way: restore the
  // default disposition so a run stuck past its cancellation check
  // interval stays killable from the terminal.
  std::signal(Sig, SIG_DFL);
}

} // namespace

void tracesafe::installCancelOnSignal(CancelToken &Token) {
  GToken.store(&Token, std::memory_order_relaxed);
  std::signal(SIGINT, tracesafeOnSignal);
  std::signal(SIGTERM, tracesafeOnSignal);
}

const CancelToken *tracesafe::signalToken() {
  return GToken.load(std::memory_order_relaxed);
}

bool tracesafe::signalled() {
  return GSignalled.load(std::memory_order_relaxed);
}
