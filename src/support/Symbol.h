//===----------------------------------------------------------------------===//
///
/// \file
/// Interned symbols for shared-memory locations, monitors and registers.
///
/// The paper ranges over location names l (x, y, z in examples), monitor
/// names m, and register names r. Interning them into small integer ids
/// keeps actions and traces cheap to copy and compare, which matters because
/// tracesets are ordered sets of traces.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_SYMBOL_H
#define TRACESAFE_SUPPORT_SYMBOL_H

#include <cstdint>
#include <string>

namespace tracesafe {

/// An interned identifier. Ids are dense, starting at 0, and stable for the
/// lifetime of the process. The same string always interns to the same id,
/// regardless of whether it is used as a location, monitor or register name;
/// the different name spaces of the language never mix because the grammar
/// separates them syntactically.
using SymbolId = uint32_t;

/// Global symbol interner.
///
/// The interner is a process-wide function-local static (no static
/// constructor), so symbols created in tests, benches and examples all agree.
class Symbol {
public:
  /// Interns \p Name and returns its id. Idempotent.
  static SymbolId intern(const std::string &Name);

  /// Returns the string for an id previously returned by intern().
  static const std::string &name(SymbolId Id);

  /// Number of symbols interned so far.
  static size_t count();
};

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_SYMBOL_H
