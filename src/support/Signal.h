//===----------------------------------------------------------------------===//
///
/// \file
/// Shared SIGINT/SIGTERM handling for the CLI binaries.
///
/// Every long-running example binary follows the same contract: the first
/// SIGINT or SIGTERM requests cooperative cancellation through a
/// CancelToken (so journals are flushed and partial results reported), and
/// the process exits with the conventional 130 once the run has unwound.
/// The handler only flips an atomic flag — async-signal-safe by
/// construction — and a second signal while the first is still unwinding
/// falls back to the default disposition, so a wedged run can still be
/// killed from the terminal.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_SIGNAL_H
#define TRACESAFE_SUPPORT_SIGNAL_H

#include "support/Budget.h"

namespace tracesafe {

/// Exit status for runs interrupted by SIGINT/SIGTERM (128 + SIGINT).
constexpr int ExitInterrupted = 130;

/// Routes SIGINT and SIGTERM to \p Token.request(). The token must
/// outlive the handlers (install from main over a token with static or
/// main-scope storage). Installing a second token replaces the first.
void installCancelOnSignal(CancelToken &Token);

/// The token currently wired to the signal handlers (nullptr when none).
const CancelToken *signalToken();

/// True once a routed signal has been delivered. Binaries poll this (or
/// their token) between phases and return ExitInterrupted after flushing.
bool signalled();

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_SIGNAL_H
