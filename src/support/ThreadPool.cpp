#include "support/ThreadPool.h"

#include "support/Failure.h"

#include <chrono>
#include <cstdlib>
#include <memory>

using namespace tracesafe;

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
/// Lets spawn() push to the local deque and pop() prefer it.
struct WorkerIdentity {
  ThreadPool *Pool = nullptr;
  int Index = -1;
};

thread_local WorkerIdentity CurrentWorker;

} // namespace

unsigned ThreadPool::defaultWorkerCount() {
  if (const char *Env = std::getenv("TRACESAFE_WORKERS")) {
    long N = std::strtol(Env, nullptr, 10);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw > 0 ? Hw : 1;
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool;
  return Pool;
}

ThreadPool::ThreadPool(unsigned WorkerCount) {
  if (WorkerCount == 0)
    WorkerCount = defaultWorkerCount();
  Queues.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepM);
    Stopping.store(true, std::memory_order_relaxed);
  }
  SleepCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::push(Task T) {
  int Self = CurrentWorker.Pool == this ? CurrentWorker.Index : -1;
  // Workers push to their own deque (popped LIFO below); external threads
  // round-robin over the queues so thieves find work anywhere.
  static std::atomic<unsigned> External{0};
  unsigned Target =
      Self >= 0 ? static_cast<unsigned>(Self)
                : External.fetch_add(1, std::memory_order_relaxed) %
                      Queues.size();
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->M);
    Queues[Target]->Q.push_back(std::move(T));
  }
  {
    std::lock_guard<std::mutex> Lock(SleepM);
  }
  SleepCv.notify_one();
}

bool ThreadPool::pop(Task &Out, int Self, TaskGroup *GroupOnly) {
  size_t N = Queues.size();
  // Own queue back first: depth-first locality for recursive searches.
  if (Self >= 0) {
    WorkerQueue &Own = *Queues[static_cast<size_t>(Self)];
    std::lock_guard<std::mutex> Lock(Own.M);
    if (!GroupOnly) {
      if (!Own.Q.empty()) {
        Out = std::move(Own.Q.back());
        Own.Q.pop_back();
        return true;
      }
    } else {
      for (size_t I = Own.Q.size(); I-- > 0;)
        if (Own.Q[I].Group == GroupOnly) {
          Out = std::move(Own.Q[I]);
          Own.Q.erase(Own.Q.begin() + static_cast<ptrdiff_t>(I));
          return true;
        }
    }
  }
  // Steal from the front of the other queues: the oldest task is the
  // shallowest subtree, i.e. the largest chunk of work per steal.
  size_t Start = Self >= 0 ? static_cast<size_t>(Self) + 1 : 0;
  for (size_t K = 0; K < N; ++K) {
    WorkerQueue &Victim = *Queues[(Start + K) % N];
    std::lock_guard<std::mutex> Lock(Victim.M);
    if (GroupOnly) {
      for (size_t I = 0; I < Victim.Q.size(); ++I)
        if (Victim.Q[I].Group == GroupOnly) {
          Out = std::move(Victim.Q[I]);
          Victim.Q.erase(Victim.Q.begin() + static_cast<ptrdiff_t>(I));
          return true;
        }
    } else if (!Victim.Q.empty()) {
      Out = std::move(Victim.Q.front());
      Victim.Q.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(Task &T) {
  // Drain: once a group has faulted, its remaining tasks are retired
  // without running — the query is already lost to Unknown(EngineFault),
  // so the fastest safe thing is to get the pool idle again.
  if (!T.Group || !T.Group->faulted()) {
    try {
      faultMaybeStall(FaultSite::TaskStall);
      faultThrowInjected(FaultSite::TaskRun);
      T.Fn();
    } catch (...) {
      if (T.Group)
        T.Group->noteException(std::current_exception());
      // No group to report to: swallowing would hide a genuine bug, and
      // rethrowing would terminate the worker. Tasks are only ever
      // spawned through groups, so this cannot happen today; keep the
      // containment anyway (the exception is dropped, the pool lives).
    }
  }
  finish(T.Group);
  T.Fn = nullptr;
}

void ThreadPool::finish(TaskGroup *Group) {
  // The decrement must happen under DoneM: wait() re-acquires DoneM after
  // observing Outstanding == 0, so holding the lock across decrement and
  // notify guarantees the waiter cannot return (and the caller destroy the
  // group) while this thread still touches the group's mutex or cv.
  std::lock_guard<std::mutex> Lock(Group->DoneM);
  if (Group->Outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1)
    Group->DoneCv.notify_all();
}

void ThreadPool::workerMain(unsigned Index) {
  CurrentWorker = {this, static_cast<int>(Index)};
  Task T;
  while (true) {
    if (pop(T, static_cast<int>(Index), nullptr)) {
      runTask(T);
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepM);
    if (Stopping.load(std::memory_order_relaxed))
      return;
    // push() publishes the task before taking SleepM, so the only missed
    // wakeup window is between the failed pop and this wait; the short
    // timeout bounds that race to a couple of milliseconds, which is noise
    // against the subtree-sized tasks the engines spawn.
    Idle.fetch_add(1, std::memory_order_relaxed);
    SleepCv.wait_for(Lock, std::chrono::milliseconds(2));
    Idle.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::TaskGroup::spawn(std::function<void()> Fn) {
  Outstanding.fetch_add(1, std::memory_order_relaxed);
  Pool.push(Task{std::move(Fn), this});
}

void ThreadPool::TaskGroup::noteException(std::exception_ptr E) {
  {
    std::lock_guard<std::mutex> Lock(ExcM);
    if (!Exc)
      Exc = std::move(E);
  }
  Faulted.store(true, std::memory_order_release);
}

std::exception_ptr ThreadPool::TaskGroup::takeException() {
  std::lock_guard<std::mutex> Lock(ExcM);
  Faulted.store(false, std::memory_order_release);
  std::exception_ptr Out = std::move(Exc);
  Exc = nullptr;
  return Out;
}

void ThreadPool::TaskGroup::wait() {
  int Self = CurrentWorker.Pool == &Pool ? CurrentWorker.Index : -1;
  Task T;
  while (Outstanding.load(std::memory_order_acquire) > 0) {
    // Help with this group's pending tasks instead of blocking. Restricting
    // to the own group keeps the stack bounded and means a worker that
    // waits inside a task (nested parallel query) can never pick up an
    // unrelated long-running task.
    if (Pool.pop(T, Self, this)) {
      Pool.runTask(T);
      continue;
    }
    // Nothing queued for this group: its remaining tasks are running on
    // other threads. Sleep briefly; finish() notifies on completion.
    std::unique_lock<std::mutex> Lock(DoneM);
    if (Outstanding.load(std::memory_order_acquire) == 0)
      return;
    DoneCv.wait_for(Lock, std::chrono::milliseconds(1));
  }
  // The loop may observe Outstanding == 0 without holding DoneM. The final
  // finish() decrements under DoneM and notifies before unlocking, so one
  // lock acquisition here blocks until that thread is fully done with the
  // group — only then may the caller destroy it.
  std::lock_guard<std::mutex> Lock(DoneM);
}
