//===----------------------------------------------------------------------===//
///
/// \file
/// Work-stealing thread pool for the parallel verification engines.
///
/// The pool owns N worker threads, each with its own task deque. A worker
/// pushes and pops its own deque LIFO (depth-first locality for recursive
/// searches) and steals FIFO from other workers (oldest tasks are the
/// largest subtrees, so a thief grabs the most work per steal). Tasks are
/// grouped into TaskGroups for fork/join: a thread that waits on a group
/// executes the group's pending tasks itself instead of blocking, so
/// nested parallel queries (a fuzz worker running a parallel enumeration)
/// keep every core busy and can never deadlock on pool starvation.
///
/// The pool is deliberately oblivious to what tasks compute: determinism
/// of the parallel engines comes from their merge structure (sets,
/// monotone flags, per-index slots), never from scheduling order.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_THREADPOOL_H
#define TRACESAFE_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tracesafe {

class ThreadPool {
public:
  class TaskGroup;

  /// Creates a pool with \p Workers threads; 0 means defaultWorkerCount().
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const { return static_cast<unsigned>(Queues.size()); }

  /// True when at least one worker is parked with nothing to do — the
  /// parallel searches use this as the "worth forking a subtree?" hint.
  bool hasIdleWorker() const {
    return Idle.load(std::memory_order_relaxed) > 0;
  }

  /// Worker count used by ThreadPool() and the engines' Workers=0 default:
  /// the TRACESAFE_WORKERS environment variable when set and positive,
  /// otherwise std::thread::hardware_concurrency().
  static unsigned defaultWorkerCount();

  /// Lazily constructed process-wide pool with defaultWorkerCount()
  /// workers; shared by the engines so repeated queries do not pay thread
  /// creation. Never destroyed before exit.
  static ThreadPool &shared();

  /// Fork/join scope. Spawned tasks may themselves spawn into the same
  /// group (recursive splitting); wait() returns once every task spawned
  /// so far has finished. The destructor waits.
  ///
  /// Exception containment: a task that throws does not unwind the worker
  /// thread (which would std::terminate the process). The group captures
  /// the *first* exception, marks itself faulted, and *drains* the rest —
  /// remaining tasks of a faulted group are popped and retired without
  /// running — so wait() still returns promptly and the pool stays
  /// reusable for the next query. Callers inspect faulted() /
  /// takeException() after wait() and surface the query as
  /// Unknown(EngineFault); wait() itself never throws. A drained (or
  /// partially run) group's results are by construction incomplete and
  /// must be treated as truncated, never as a completed search.
  class TaskGroup {
  public:
    explicit TaskGroup(ThreadPool &Pool) : Pool(Pool) {}
    ~TaskGroup() { wait(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    void spawn(std::function<void()> Fn);
    void wait();

    /// True once any task of this group has thrown.
    bool faulted() const {
      return Faulted.load(std::memory_order_acquire);
    }
    /// The first captured exception (null if none). Clears the fault so
    /// the group is reusable; call after wait().
    std::exception_ptr takeException();

  private:
    friend class ThreadPool;
    void noteException(std::exception_ptr E);

    ThreadPool &Pool;
    std::atomic<uint64_t> Outstanding{0};
    std::mutex DoneM;
    std::condition_variable DoneCv;
    std::atomic<bool> Faulted{false};
    std::mutex ExcM;          ///< guards Exc
    std::exception_ptr Exc;   ///< first task exception
  };

private:
  struct Task {
    std::function<void()> Fn;
    TaskGroup *Group = nullptr;
  };

  struct WorkerQueue {
    std::mutex M;
    std::deque<Task> Q;
  };

  void workerMain(unsigned Index);
  /// Runs (or, for a faulted group, drains) one task with exception
  /// containment, then retires it.
  void runTask(Task &T);
  void push(Task T);
  /// Pops a task: own queue back first (when \p Self is a worker), then
  /// other queues front. \p GroupOnly restricts to tasks of that group.
  bool pop(Task &Out, int Self, TaskGroup *GroupOnly);
  void finish(TaskGroup *Group);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;
  std::mutex SleepM;
  std::condition_variable SleepCv;
  std::atomic<unsigned> Idle{0};
  std::atomic<bool> Stopping{false};
};

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_THREADPOOL_H
