//===----------------------------------------------------------------------===//
///
/// \file
/// Work-stealing thread pool for the parallel verification engines.
///
/// The pool owns N worker threads, each with its own task deque. A worker
/// pushes and pops its own deque LIFO (depth-first locality for recursive
/// searches) and steals FIFO from other workers (oldest tasks are the
/// largest subtrees, so a thief grabs the most work per steal). Tasks are
/// grouped into TaskGroups for fork/join: a thread that waits on a group
/// executes the group's pending tasks itself instead of blocking, so
/// nested parallel queries (a fuzz worker running a parallel enumeration)
/// keep every core busy and can never deadlock on pool starvation.
///
/// The pool is deliberately oblivious to what tasks compute: determinism
/// of the parallel engines comes from their merge structure (sets,
/// monotone flags, per-index slots), never from scheduling order.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_THREADPOOL_H
#define TRACESAFE_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tracesafe {

class ThreadPool {
public:
  class TaskGroup;

  /// Creates a pool with \p Workers threads; 0 means defaultWorkerCount().
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const { return static_cast<unsigned>(Queues.size()); }

  /// True when at least one worker is parked with nothing to do — the
  /// parallel searches use this as the "worth forking a subtree?" hint.
  bool hasIdleWorker() const {
    return Idle.load(std::memory_order_relaxed) > 0;
  }

  /// Worker count used by ThreadPool() and the engines' Workers=0 default:
  /// the TRACESAFE_WORKERS environment variable when set and positive,
  /// otherwise std::thread::hardware_concurrency().
  static unsigned defaultWorkerCount();

  /// Lazily constructed process-wide pool with defaultWorkerCount()
  /// workers; shared by the engines so repeated queries do not pay thread
  /// creation. Never destroyed before exit.
  static ThreadPool &shared();

  /// Fork/join scope. Spawned tasks may themselves spawn into the same
  /// group (recursive splitting); wait() returns once every task spawned
  /// so far has finished. The destructor waits.
  class TaskGroup {
  public:
    explicit TaskGroup(ThreadPool &Pool) : Pool(Pool) {}
    ~TaskGroup() { wait(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    void spawn(std::function<void()> Fn);
    void wait();

  private:
    friend class ThreadPool;
    ThreadPool &Pool;
    std::atomic<uint64_t> Outstanding{0};
    std::mutex DoneM;
    std::condition_variable DoneCv;
  };

private:
  struct Task {
    std::function<void()> Fn;
    TaskGroup *Group = nullptr;
  };

  struct WorkerQueue {
    std::mutex M;
    std::deque<Task> Q;
  };

  void workerMain(unsigned Index);
  void push(Task T);
  /// Pops a task: own queue back first (when \p Self is a worker), then
  /// other queues front. \p GroupOnly restricts to tasks of that group.
  bool pop(Task &Out, int Self, TaskGroup *GroupOnly);
  void finish(TaskGroup *Group);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;
  std::mutex SleepM;
  std::condition_variable SleepCv;
  std::atomic<unsigned> Idle{0};
  std::atomic<bool> Stopping{false};
};

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_THREADPOOL_H
