//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generator (SplitMix64).
///
/// Used by the random program generator and the property-test harness. All
/// randomised components of the library are seeded explicitly so every test
/// and bench run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_RNG_H
#define TRACESAFE_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace tracesafe {

/// A small, fast, deterministic RNG (SplitMix64). Not cryptographic; plenty
/// for fuzzing program shapes.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_RNG_H
