//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptive fork-depth control for the work-stealing searches.
///
/// The parallel engines fork a subtree to the pool only when an idle
/// worker exists AND the current depth is below a limit. The limit used to
/// be a fixed constant (12): deep enough that fan-out exceeds any pool
/// width, shallow enough that per-fork NodeState copies stay bounded on
/// hosts where idleness is almost always true (a pool wider than the
/// machine). A constant is wrong at both extremes, though — a search with
/// branching factor ~1 (long silent chains, heavy sleep-set pruning) never
/// reaches pool-width parallelism within twelve levels, while a bushy
/// search forks far more subtrees than the pool can drain.
///
/// ForkPolicy replaces the constant with a per-query controller: every
/// expanded node reports its out-degree, and every retune interval the
/// limit is recomputed so that the *expected* fan-out within the limit,
/// branching^limit, is a small multiple of the worker count. A starved
/// pool (still idle at retune time) pushes the limit further down the
/// tree. Fork decisions never affect results — the engines merge into
/// sets and monotone flags — so adaptivity is free of determinism
/// concerns; it only moves work between "inline" and "spawned".
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_FORKPOLICY_H
#define TRACESAFE_SUPPORT_FORKPOLICY_H

#include "support/ThreadPool.h"

#include <atomic>
#include <cmath>
#include <cstdint>

namespace tracesafe {

class ForkPolicy {
public:
  /// \p Workers is the pool width the query runs on (used to size the
  /// fan-out target); Floor/Ceil clamp the adaptive limit.
  explicit ForkPolicy(unsigned Workers, unsigned Floor = 4,
                      unsigned Ceil = 64)
      : Workers(Workers ? Workers : 1), Floor(Floor), Ceil(Ceil) {}

  /// Current fork-depth limit.
  unsigned limit() const { return Limit.load(std::memory_order_relaxed); }

  /// The engines' fork gate: below the adaptive depth limit and a worker
  /// is actually parked. Cheap (two relaxed loads).
  bool shouldFork(const ThreadPool &Pool, unsigned Depth) const {
    return Depth < limit() && Pool.hasIdleWorker();
  }

  /// Reports the out-degree (number of explored transitions) of one
  /// expanded node. Every RetuneInterval observations the limit is
  /// recomputed from the average branching factor; \p Pool supplies the
  /// idleness signal for the starvation nudge.
  void observe(unsigned Degree, const ThreadPool &Pool) {
    DegreeSum.fetch_add(Degree, std::memory_order_relaxed);
    uint64_t N = Observed.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((N & (RetuneInterval - 1)) != 0)
      return;
    // Average branching factor, floored away from 1: a factor at (or
    // below) 1 would ask for an unbounded limit, and sub-1.1 branching is
    // indistinguishable from noise at this sample size anyway.
    double Sum = static_cast<double>(DegreeSum.load(std::memory_order_relaxed));
    double B = Sum / static_cast<double>(N);
    if (B < 1.1)
      B = 1.1;
    // Depth at which expected fan-out reaches ~8 subtrees per worker —
    // enough slack that steals always find work without forking every
    // edge near the root.
    double Target = 8.0 * static_cast<double>(Workers);
    unsigned D = static_cast<unsigned>(std::ceil(std::log(Target) /
                                                 std::log(B)));
    // Starvation nudge: if workers are still parked after a whole retune
    // interval, the gate is too shallow for this tree — push it down.
    if (Pool.hasIdleWorker())
      D += 4;
    if (D < Floor)
      D = Floor;
    if (D > Ceil)
      D = Ceil;
    Limit.store(D, std::memory_order_relaxed);
  }

private:
  /// Power of two; the retune test is a mask.
  static constexpr uint64_t RetuneInterval = 1024;

  unsigned Workers;
  unsigned Floor;
  unsigned Ceil;
  /// Starts at the old fixed constant so short queries behave exactly as
  /// before; only searches that live past a retune interval adapt.
  std::atomic<unsigned> Limit{12};
  std::atomic<uint64_t> DegreeSum{0};
  std::atomic<uint64_t> Observed{0};
};

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_FORKPOLICY_H
