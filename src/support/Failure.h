//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the verification engines.
///
/// The robustness contract — "never a silently wrong answer" — is only
/// testable if faults can be *made to happen on demand*. A FaultPlan arms
/// a small set of well-known failure sites (allocation in the intern
/// pools, task execution in the thread pool, worker stalls, spurious
/// budget exhaustion) with per-site hit counters: the fault fires on the
/// Nth hit of its site and the Plan records how often it fired, so a
/// failing run replays exactly from (plan, seed) in sequential mode.
///
/// Sites are compiled in unconditionally but cost one relaxed atomic load
/// when no plan is installed. Installation is process-global and meant
/// for tests and the fuzz harness's --chaos mode, not for production
/// queries; the plan must outlive every query that can hit a site.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_FAILURE_H
#define TRACESAFE_SUPPORT_FAILURE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tracesafe {

/// The instrumented failure sites.
enum class FaultSite : uint8_t {
  InternAlloc,    ///< InternPool::intern throws std::bad_alloc
  TaskRun,        ///< a ThreadPool task throws before running
  TaskStall,      ///< a ThreadPool task sleeps StallMs before running
  BudgetCharge,   ///< Budget::charge spuriously exhausts with EngineFault
  BehaviourCache, ///< BehaviourCache lookup/insert throws InjectedFault
  BufferedIntern, ///< BufferedEngine state interning throws std::bad_alloc
  BufferedFork,   ///< BufferedEngine subtree handoff throws InjectedFault
  BufferedDrain,  ///< BufferedEngine drain step throws InjectedFault
  ProtoRead,      ///< daemon protocol read fails mid-frame
  ProtoWrite,     ///< daemon protocol write fails mid-frame
  Accept,         ///< daemon accept loop drops an incoming connection
  Admission,      ///< daemon admission control spuriously sheds a request
  RaceDetect,     ///< racelog detect loop throws InjectedFault mid-scan
  Count_,
};

constexpr size_t FaultSiteCount = static_cast<size_t>(FaultSite::Count_);

/// Printable site name ("intern-alloc", "task-run", ...).
const char *faultSiteName(FaultSite S);

/// The exception thrown at TaskRun sites (and usable by tests to tell an
/// injected fault from a genuine engine bug).
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(FaultSite S)
      : std::runtime_error(std::string("injected fault at ") +
                           faultSiteName(S)),
        Site(S) {}
  FaultSite Site;
};

/// A deterministic schedule of failures. Each armed site carries a
/// trigger count (fire on the Nth hit, 1-based), a repeat count (how many
/// consecutive hits fire starting there) and, for stall sites, a stall
/// duration. Hit counters are atomic so the plan is safe to consult from
/// pool workers; exact replay of *which query* faults is guaranteed only
/// for sequential runs (parallel hit order is scheduling-dependent, which
/// is precisely what the chaos mode wants to shake out).
class FaultPlan {
public:
  struct SiteArm {
    uint64_t FireAt = 0;  ///< 1-based hit index; 0 = site disabled
    uint64_t Repeat = 1;  ///< number of consecutive firing hits
    unsigned StallMs = 0; ///< TaskStall only
  };

  FaultPlan() = default;

  /// Arms \p S to fire on hit \p FireAt (1-based) for \p Repeat hits.
  void arm(FaultSite S, uint64_t FireAt, uint64_t Repeat = 1,
           unsigned StallMs = 0);

  /// Re-arms this plan as a seeded random plan for chaos runs: one to
  /// three sites with small trigger counts so faults land inside a short
  /// campaign. In place because the hit counters are atomics (the plan is
  /// neither copyable nor movable); also resets the counters. Draws from
  /// the original engine-side campaign sites only (intern, task, budget,
  /// cache) so chaos plans replay identically across releases that add
  /// new sites; daemon transports arm randomizeDaemon instead.
  void randomize(uint64_t Seed);

  /// Seeded random plan over the daemon sites (protocol read/write,
  /// accept, admission) plus the BufferedEngine search sites, used by
  /// `tracesafed --fault-seed` and the client retry tests. Trigger counts
  /// are tuned so a short daemon batch actually reaches them.
  void randomizeDaemon(uint64_t Seed);

  /// Disarms every site and resets the counters.
  void reset();

  /// Consults (and advances) the hit counter of \p S. True iff the fault
  /// fires on this hit.
  bool shouldFire(FaultSite S);

  /// Stall duration for TaskStall firings.
  unsigned stallMs() const {
    return Arms[static_cast<size_t>(FaultSite::TaskStall)].StallMs;
  }

  uint64_t hits(FaultSite S) const {
    return Hits[static_cast<size_t>(S)].load(std::memory_order_relaxed);
  }
  uint64_t fired(FaultSite S) const {
    return Fired[static_cast<size_t>(S)].load(std::memory_order_relaxed);
  }
  uint64_t totalFired() const;

  /// One-line description of the armed sites ("intern-alloc@3x1, ...").
  std::string describe() const;

  /// Installs \p Plan as the process-global plan consulted by every site
  /// (nullptr uninstalls). The caller keeps ownership; the plan must stay
  /// alive until uninstalled. Returns the previously installed plan.
  static FaultPlan *install(FaultPlan *Plan);
  static FaultPlan *active();

  /// RAII install/uninstall for tests.
  struct Scope {
    explicit Scope(FaultPlan &P) : Prev(install(&P)) {}
    ~Scope() { install(Prev); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
    FaultPlan *Prev;
  };

private:
  std::array<SiteArm, FaultSiteCount> Arms{};
  std::array<std::atomic<uint64_t>, FaultSiteCount> Hits{};
  std::array<std::atomic<uint64_t>, FaultSiteCount> Fired{};
};

/// The hook the instrumented sites call: false (after one relaxed load)
/// when no plan is installed, otherwise the plan's verdict for this hit.
bool faultPoint(FaultSite S);

/// Throwing variants used at the exception sites.
void faultThrowBadAlloc(FaultSite S);  ///< throws std::bad_alloc on fire
void faultThrowInjected(FaultSite S);  ///< throws InjectedFault on fire

/// Sleeps for the active plan's stall duration when the site fires.
void faultMaybeStall(FaultSite S);

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_FAILURE_H
