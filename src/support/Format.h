//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny string-formatting helpers shared by the printing code.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_SUPPORT_FORMAT_H
#define TRACESAFE_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace tracesafe {

/// Joins \p Parts with \p Sep: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Indents every line of \p Text by \p Spaces spaces.
std::string indent(const std::string &Text, unsigned Spaces);

} // namespace tracesafe

#endif // TRACESAFE_SUPPORT_FORMAT_H
