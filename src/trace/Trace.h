//===----------------------------------------------------------------------===//
///
/// \file
/// Traces — finite sequences of memory actions of a single thread (§3).
///
/// A trace may contain wildcard reads, in which case it is a *wildcard
/// trace* (§4); ordinary traces are wildcard traces without wildcards. The
/// class provides the paper's list notation: prefixes (t <= t'), restriction
/// to an index set (t|S), instances of wildcard traces, and the structural
/// well-formedness predicates required of traceset members (properly
/// started, well locked).
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACE_TRACE_H
#define TRACESAFE_TRACE_TRACE_H

#include "trace/Action.h"

#include <compare>
#include <initializer_list>
#include <string>
#include <vector>

namespace tracesafe {

/// A sequence of actions of one thread. Cheap value type over
/// std::vector<Action>; ordered lexicographically so tracesets can be
/// ordered sets (which also makes prefix queries contiguous ranges).
class Trace {
public:
  Trace() = default;
  explicit Trace(std::vector<Action> Actions) : Actions(std::move(Actions)) {}
  Trace(std::initializer_list<Action> Init) : Actions(Init) {}

  size_t size() const { return Actions.size(); }
  bool empty() const { return Actions.empty(); }
  const Action &operator[](size_t I) const { return Actions[I]; }

  std::vector<Action>::const_iterator begin() const { return Actions.begin(); }
  std::vector<Action>::const_iterator end() const { return Actions.end(); }

  void push_back(const Action &A) { Actions.push_back(A); }

  void pop_back() {
    assert(!Actions.empty() && "pop_back on empty trace");
    Actions.pop_back();
  }

  /// Concatenation (the paper's t ++ t').
  Trace concat(const Trace &Other) const;

  /// The prefix of length \p N (N clamped to size()).
  Trace prefix(size_t N) const;

  /// True iff *this = other, i.e. *this is a prefix of \p Other.
  bool isPrefixOf(const Trace &Other) const;

  /// The paper's t|S for a sorted index set \p SortedIndices.
  Trace restrictTo(const std::vector<size_t> &SortedIndices) const;

  /// True iff some element is a wildcard read.
  bool hasWildcards() const;

  /// Indices of all wildcard reads.
  std::vector<size_t> wildcardIndices() const;

  /// True iff \p Concrete can be obtained by replacing every wildcard read
  /// with some concrete value (non-wildcard positions must match exactly).
  bool hasInstance(const Trace &Concrete) const;

  /// All instances over the value \p Domain. For k wildcards this is
  /// |Domain|^k traces; callers bound k.
  std::vector<Trace> instances(const std::vector<Value> &Domain) const;

  /// §3 well-formedness: empty, or the first action is a start action (and
  /// no other action is).
  bool isProperlyStarted() const;

  /// §3 well-formedness: for every monitor m and every prefix, the number of
  /// unlocks of m does not exceed the number of locks of m.
  bool isWellLocked() const;

  /// §4, Definition 1 helper: true iff there exist r, a with
  /// Lo < r < a < Hi such that t_r is a release and t_a is an acquire.
  bool hasReleaseAcquirePairBetween(size_t Lo, size_t Hi) const;

  /// §5: a trace is an origin for value v if it contains a write of v or an
  /// external action with value v that is not preceded by a read of v.
  bool isOriginFor(Value V) const;

  /// "[S(0), R[x=1], W[y=1]]".
  std::string str() const;

  const std::vector<Action> &actions() const { return Actions; }

  friend auto operator<=>(const Trace &, const Trace &) = default;

private:
  std::vector<Action> Actions;
};

} // namespace tracesafe

#endif // TRACESAFE_TRACE_TRACE_H
