#include "trace/Enumerate.h"

#include "trace/HappensBefore.h"

#include <map>
#include <tuple>

using namespace tracesafe;

namespace {

/// Shared DFS machinery over global traceset states.
class Enumerator {
public:
  Enumerator(const Traceset &T, EnumerationLimits Limits)
      : T(T), Limits(Limits) {
    for (ThreadId Tid : T.entryPoints())
      ThreadTraces.emplace(Tid, Trace());
  }

  /// An action of thread Tid is enabled in the current global state when
  /// the extended thread trace stays in T, reads see memory, locks respect
  /// mutual exclusion, and the thread's first action is its own start.
  bool enabled(ThreadId Tid, const Action &A) const {
    const Trace &Cur = ThreadTraces.at(Tid);
    if (Cur.empty() && (!A.isStart() || A.entry() != Tid))
      return false;
    if (A.isRead()) {
      auto It = Memory.find(A.location());
      Value Expected = It == Memory.end() ? DefaultValue : It->second;
      if (A.value() != Expected)
        return false;
    }
    if (A.isLock()) {
      auto It = LockDepth.find(A.monitor());
      if (It != LockDepth.end() && It->second.second > 0 &&
          It->second.first != Tid)
        return false;
    }
    return true;
  }

  /// All (Tid, Action) steps enabled now.
  std::vector<Event> enabledSteps() const {
    std::vector<Event> Out;
    for (const auto &[Tid, Cur] : ThreadTraces)
      for (const Action &A : T.successors(Cur))
        if (enabled(Tid, A))
          Out.push_back(Event{Tid, A});
    return Out;
  }

  void apply(const Event &E) {
    ThreadTraces[E.Tid].push_back(E.Act);
    if (E.Act.isWrite())
      MemoryLog.push_back({E.Act.location(), setMemory(E.Act.location(),
                                                       E.Act.value())});
    if (E.Act.isLock()) {
      auto &Slot = LockDepth[E.Act.monitor()];
      Slot.first = E.Tid;
      ++Slot.second;
    }
    if (E.Act.isUnlock())
      --LockDepth[E.Act.monitor()].second;
    Current.push_back(E);
  }

  void undo(const Event &E) {
    Current.pop_back();
    if (E.Act.isUnlock()) {
      auto &Slot = LockDepth[E.Act.monitor()];
      Slot.first = E.Tid; // Re-owner: the unlocker held it.
      ++Slot.second;
    }
    if (E.Act.isLock())
      --LockDepth[E.Act.monitor()].second;
    if (E.Act.isWrite()) {
      auto [Loc, Old] = MemoryLog.back();
      MemoryLog.pop_back();
      if (Old)
        Memory[Loc] = *Old;
      else
        Memory.erase(Loc);
    }
    // Pop the thread trace.
    Trace &Cur = ThreadTraces[E.Tid];
    Cur = Cur.prefix(Cur.size() - 1);
  }

  /// DFS visiting every execution prefix. Visit=false stops everything.
  bool dfs(const std::function<bool(const Interleaving &)> &Visit,
           bool MaximalOnly, EnumerationStats &Stats) {
    if (++Stats.Visited > Limits.MaxVisited) {
      Stats.truncate(TruncationReason::StateCap);
      return true;
    }
    if (Current.size() >= Limits.MaxEvents) {
      Stats.truncate(TruncationReason::DepthCap);
      return true;
    }
    if (Limits.Shared && !Limits.Shared->charge()) {
      Stats.truncate(Limits.Shared->reason());
      return true;
    }
    std::vector<Event> Steps = enabledSteps();
    if (!MaximalOnly && !Current.empty())
      if (!Visit(Current))
        return false;
    if (MaximalOnly && Steps.empty())
      if (!Visit(Current))
        return false;
    for (const Event &E : Steps) {
      apply(E);
      bool Continue = dfs(Visit, MaximalOnly, Stats);
      undo(E);
      if (!Continue)
        return false;
    }
    return true;
  }

  const Interleaving &current() const { return Current; }

private:
  std::optional<Value> setMemory(SymbolId Loc, Value V) {
    std::optional<Value> Old;
    auto It = Memory.find(Loc);
    if (It != Memory.end())
      Old = It->second;
    Memory[Loc] = V;
    return Old;
  }

  const Traceset &T;
  EnumerationLimits Limits;
  std::map<ThreadId, Trace> ThreadTraces;
  std::map<SymbolId, Value> Memory;
  std::vector<std::pair<SymbolId, std::optional<Value>>> MemoryLog;
  std::map<SymbolId, std::pair<ThreadId, int>> LockDepth;
  Interleaving Current;
};

} // namespace

EnumerationStats tracesafe::forEachExecution(
    const Traceset &T, const std::function<bool(const Interleaving &)> &Visit,
    EnumerationLimits Limits) {
  EnumerationStats Stats;
  Enumerator E(T, Limits);
  E.dfs(Visit, /*MaximalOnly=*/false, Stats);
  return Stats;
}

EnumerationStats tracesafe::forEachMaximalExecution(
    const Traceset &T, const std::function<bool(const Interleaving &)> &Visit,
    EnumerationLimits Limits) {
  EnumerationStats Stats;
  Enumerator E(T, Limits);
  E.dfs(Visit, /*MaximalOnly=*/true, Stats);
  return Stats;
}

namespace {

/// Memoisation key for the behaviour/race searches: the full global state.
/// Per-thread traces determine enabled continuations; memory and locks
/// determine enabledness; the tail component disambiguates what else the
/// future can depend on (behaviour so far, or the previous event for the
/// adjacent-race search).
struct StateKey {
  std::vector<std::pair<ThreadId, Trace>> ThreadTraces;
  std::vector<std::pair<SymbolId, Value>> Memory;
  std::vector<std::pair<SymbolId, std::pair<ThreadId, int>>> Locks;
  std::vector<Event> Tail;

  friend auto operator<=>(const StateKey &, const StateKey &) = default;
};

class MemoSearch {
public:
  MemoSearch(const Traceset &T, EnumerationLimits Limits)
      : T(T), Limits(Limits) {
    for (ThreadId Tid : T.entryPoints())
      ThreadTraces.emplace(Tid, Trace());
  }

  const Traceset &T;
  EnumerationLimits Limits;
  std::map<ThreadId, Trace> ThreadTraces;
  std::map<SymbolId, Value> Memory;
  std::map<SymbolId, std::pair<ThreadId, int>> LockDepth;
  std::set<StateKey> Seen;
  EnumerationStats Stats;

  bool enabled(ThreadId Tid, const Action &A) const {
    const Trace &Cur = ThreadTraces.at(Tid);
    if (Cur.empty() && (!A.isStart() || A.entry() != Tid))
      return false;
    if (A.isRead()) {
      auto It = Memory.find(A.location());
      Value Expected = It == Memory.end() ? DefaultValue : It->second;
      if (A.value() != Expected)
        return false;
    }
    if (A.isLock()) {
      auto It = LockDepth.find(A.monitor());
      if (It != LockDepth.end() && It->second.second > 0 &&
          It->second.first != Tid)
        return false;
    }
    return true;
  }

  StateKey key(std::vector<Event> Tail) const {
    StateKey K;
    for (const auto &[Tid, Tr] : ThreadTraces)
      K.ThreadTraces.emplace_back(Tid, Tr);
    for (const auto &[Loc, V] : Memory)
      K.Memory.emplace_back(Loc, V);
    for (const auto &[Mon, Slot] : LockDepth)
      if (Slot.second > 0)
        K.Locks.emplace_back(Mon, Slot);
    K.Tail = std::move(Tail);
    return K;
  }

  template <typename OnStep>
  void search(std::vector<Event> Tail, const OnStep &Step) {
    if (++Stats.Visited > Limits.MaxVisited) {
      Stats.truncate(TruncationReason::StateCap);
      return;
    }
    // Each memoised state retains a full StateKey; charge the shared
    // budget a rough per-entry footprint so memory caps bite where the
    // memory actually goes.
    if (Limits.Shared && !Limits.Shared->charge(/*Bytes=*/256)) {
      Stats.truncate(Limits.Shared->reason());
      return;
    }
    if (!Seen.insert(key(Tail)).second)
      return;
    for (const auto &[Tid, Cur] : ThreadTraces) {
      if (Cur.size() >= Limits.MaxEvents) {
        Stats.truncate(TruncationReason::DepthCap);
        continue;
      }
      for (const Action &A : T.successors(Cur)) {
        if (!enabled(Tid, A))
          continue;
        Event E{Tid, A};
        std::vector<Event> NextTail = Step(Tail, E);
        // Apply.
        ThreadTraces[Tid].push_back(A);
        std::optional<Value> OldMem;
        if (A.isWrite()) {
          auto It = Memory.find(A.location());
          if (It != Memory.end())
            OldMem = It->second;
          Memory[A.location()] = A.value();
        }
        std::optional<std::pair<ThreadId, int>> OldLock;
        if (A.isLock() || A.isUnlock()) {
          auto &Slot = LockDepth[A.monitor()];
          OldLock = Slot;
          if (A.isLock()) {
            Slot = {Tid, Slot.second + 1};
          } else {
            Slot = {Slot.first, Slot.second - 1};
          }
        }
        search(std::move(NextTail), Step);
        // Undo.
        if (OldLock)
          LockDepth[A.monitor()] = *OldLock;
        if (A.isWrite()) {
          if (OldMem)
            Memory[A.location()] = *OldMem;
          else
            Memory.erase(A.location());
        }
        Trace &C = ThreadTraces[Tid];
        C = C.prefix(C.size() - 1);
      }
    }
  }
};

} // namespace

std::set<Behaviour> tracesafe::collectBehaviours(const Traceset &T,
                                                 EnumerationLimits Limits,
                                                 EnumerationStats *Stats) {
  std::set<Behaviour> Result;
  Result.insert(Behaviour{});
  MemoSearch S(T, Limits);
  // Tail carries the behaviour so far, encoded as external events.
  S.search({}, [&](const std::vector<Event> &Tail, const Event &E) {
    std::vector<Event> Next = Tail;
    if (E.Act.isExternal()) {
      Next.push_back(E);
      Behaviour B;
      for (const Event &Ev : Next)
        B.push_back(Ev.Act.value());
      Result.insert(std::move(B));
    }
    return Next;
  });
  if (Stats)
    *Stats = S.Stats;
  return Result;
}

RaceReport tracesafe::findAdjacentRace(const Traceset &T,
                                       EnumerationLimits Limits) {
  RaceReport Report;
  // DFS (no memo shortcut for the witness path: we re-run a plain DFS, but
  // with a memoised feasibility filter keyed on (state, previous event); the
  // previous event is all the future needs to know to detect adjacency).
  MemoSearch S(T, Limits);
  // We detect the race inside the Step callback; to reconstruct a witness we
  // keep the current path separately.
  std::vector<Event> Path;
  bool Found = false;
  Interleaving Witness;

  // Plain recursive DFS with memoisation on (state, last event).
  std::function<void()> Dfs = [&]() {
    if (Found)
      return;
    if (++S.Stats.Visited > Limits.MaxVisited) {
      S.Stats.truncate(TruncationReason::StateCap);
      return;
    }
    if (Limits.Shared && !Limits.Shared->charge(/*Bytes=*/256)) {
      S.Stats.truncate(Limits.Shared->reason());
      return;
    }
    std::vector<Event> Tail;
    if (!Path.empty())
      Tail.push_back(Path.back());
    if (!S.Seen.insert(S.key(Tail)).second)
      return;
    for (const auto &[Tid, Cur] : S.ThreadTraces) {
      if (Found)
        return;
      if (Cur.size() >= Limits.MaxEvents) {
        S.Stats.truncate(TruncationReason::DepthCap);
        continue;
      }
      for (const Action &A : S.T.successors(Cur)) {
        if (Found)
          return;
        if (!S.enabled(Tid, A))
          continue;
        Event E{Tid, A};
        if (!Path.empty() && Path.back().Tid != Tid &&
            Path.back().Act.conflictsWith(A)) {
          Found = true;
          std::vector<Event> W = Path;
          W.push_back(E);
          Witness = Interleaving(std::move(W));
          return;
        }
        // Apply.
        S.ThreadTraces[Tid].push_back(A);
        std::optional<Value> OldMem;
        if (A.isWrite()) {
          auto It = S.Memory.find(A.location());
          if (It != S.Memory.end())
            OldMem = It->second;
          S.Memory[A.location()] = A.value();
        }
        std::optional<std::pair<ThreadId, int>> OldLock;
        if (A.isLock() || A.isUnlock()) {
          auto &Slot = S.LockDepth[A.monitor()];
          OldLock = Slot;
          Slot = A.isLock() ? std::make_pair(Tid, Slot.second + 1)
                            : std::make_pair(Slot.first, Slot.second - 1);
        }
        Path.push_back(E);
        Dfs();
        Path.pop_back();
        if (OldLock)
          S.LockDepth[A.monitor()] = *OldLock;
        if (A.isWrite()) {
          if (OldMem)
            S.Memory[A.location()] = *OldMem;
          else
            S.Memory.erase(A.location());
        }
        Trace &C = S.ThreadTraces[Tid];
        C = C.prefix(C.size() - 1);
      }
    }
  };
  Dfs();
  Report.HasRace = Found;
  Report.Witness = Witness;
  Report.Stats = S.Stats;
  return Report;
}

RaceReport tracesafe::findHappensBeforeRace(const Traceset &T,
                                            EnumerationLimits Limits) {
  RaceReport Report;
  Report.Stats = forEachMaximalExecution(
      T,
      [&](const Interleaving &I) {
        HappensBefore Hb(I);
        for (size_t A = 0; A < I.size(); ++A)
          for (size_t B = A + 1; B < I.size(); ++B) {
            if (I[A].Tid == I[B].Tid)
              continue;
            if (!I[A].Act.conflictsWith(I[B].Act))
              continue;
            if (!Hb.ordered(A, B) && !Hb.ordered(B, A)) {
              Report.HasRace = true;
              Report.Witness = I.prefix(B + 1);
              return false;
            }
          }
        return true;
      },
      Limits);
  return Report;
}

Verdict<Interleaving>
tracesafe::checkDataRaceFreedom(const Traceset &T, EnumerationLimits Limits) {
  RaceReport R = findAdjacentRace(T, Limits);
  if (R.HasRace)
    return Verdict<Interleaving>::refuted(R.Witness);
  if (R.Stats.Truncated)
    return Verdict<Interleaving>::unknown(R.Stats.Reason);
  return Verdict<Interleaving>::proved();
}

bool tracesafe::isDataRaceFree(const Traceset &T, EnumerationLimits Limits) {
  return checkDataRaceFreedom(T, Limits).isProved();
}
