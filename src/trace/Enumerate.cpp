#include "trace/Enumerate.h"

#include "support/ForkPolicy.h"
#include "support/Intern.h"
#include "support/ThreadPool.h"
#include "trace/ActionWord.h"
#include "trace/HappensBefore.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>

using namespace tracesafe;

//===----------------------------------------------------------------------===//
// Seed sequential engine (EnumerationLimits::ExhaustiveOracle).
//
// This is the original std::set-memoised exhaustive search, kept verbatim as
// a cross-check oracle for the parallel engine below. The equivalence tests
// assert verdict-identical results between the two on every program in the
// suite.
//===----------------------------------------------------------------------===//

namespace {

/// Shared DFS machinery over global traceset states.
class Enumerator {
public:
  Enumerator(const Traceset &T, EnumerationLimits Limits)
      : T(T), Limits(Limits) {
    for (ThreadId Tid : T.entryPoints())
      ThreadTraces.emplace(Tid, Trace());
  }

  /// An action of thread Tid is enabled in the current global state when
  /// the extended thread trace stays in T, reads see memory, locks respect
  /// mutual exclusion, and the thread's first action is its own start.
  bool enabled(ThreadId Tid, const Action &A) const {
    const Trace &Cur = ThreadTraces.at(Tid);
    if (Cur.empty() && (!A.isStart() || A.entry() != Tid))
      return false;
    if (A.isRead()) {
      auto It = Memory.find(A.location());
      Value Expected = It == Memory.end() ? DefaultValue : It->second;
      if (A.value() != Expected)
        return false;
    }
    if (A.isLock()) {
      auto It = LockDepth.find(A.monitor());
      if (It != LockDepth.end() && It->second.second > 0 &&
          It->second.first != Tid)
        return false;
    }
    return true;
  }

  /// All (Tid, Action) steps enabled now.
  std::vector<Event> enabledSteps() const {
    std::vector<Event> Out;
    for (const auto &[Tid, Cur] : ThreadTraces)
      for (const Action &A : T.successors(Cur))
        if (enabled(Tid, A))
          Out.push_back(Event{Tid, A});
    return Out;
  }

  void apply(const Event &E) {
    ThreadTraces[E.Tid].push_back(E.Act);
    if (E.Act.isWrite())
      MemoryLog.push_back({E.Act.location(), setMemory(E.Act.location(),
                                                       E.Act.value())});
    if (E.Act.isLock()) {
      auto &Slot = LockDepth[E.Act.monitor()];
      Slot.first = E.Tid;
      ++Slot.second;
    }
    if (E.Act.isUnlock())
      --LockDepth[E.Act.monitor()].second;
    Current.push_back(E);
  }

  void undo(const Event &E) {
    Current.pop_back();
    if (E.Act.isUnlock()) {
      auto &Slot = LockDepth[E.Act.monitor()];
      Slot.first = E.Tid; // Re-owner: the unlocker held it.
      ++Slot.second;
    }
    if (E.Act.isLock())
      --LockDepth[E.Act.monitor()].second;
    if (E.Act.isWrite()) {
      auto [Loc, Old] = MemoryLog.back();
      MemoryLog.pop_back();
      if (Old)
        Memory[Loc] = *Old;
      else
        Memory.erase(Loc);
    }
    // Pop the thread trace.
    Trace &Cur = ThreadTraces[E.Tid];
    Cur = Cur.prefix(Cur.size() - 1);
  }

  /// DFS visiting every execution prefix. Visit=false stops everything.
  bool dfs(const std::function<bool(const Interleaving &)> &Visit,
           bool MaximalOnly, EnumerationStats &Stats) {
    if (++Stats.Visited > Limits.MaxVisited) {
      Stats.truncate(TruncationReason::StateCap);
      return true;
    }
    if (Current.size() >= Limits.MaxEvents) {
      Stats.truncate(TruncationReason::DepthCap);
      return true;
    }
    if (Limits.Shared && !Limits.Shared->charge()) {
      Stats.truncate(Limits.Shared->reason());
      return true;
    }
    std::vector<Event> Steps = enabledSteps();
    if (!MaximalOnly && !Current.empty())
      if (!Visit(Current))
        return false;
    if (MaximalOnly && Steps.empty())
      if (!Visit(Current))
        return false;
    for (const Event &E : Steps) {
      apply(E);
      bool Continue = dfs(Visit, MaximalOnly, Stats);
      undo(E);
      if (!Continue)
        return false;
    }
    return true;
  }

  const Interleaving &current() const { return Current; }

private:
  std::optional<Value> setMemory(SymbolId Loc, Value V) {
    std::optional<Value> Old;
    auto It = Memory.find(Loc);
    if (It != Memory.end())
      Old = It->second;
    Memory[Loc] = V;
    return Old;
  }

  const Traceset &T;
  EnumerationLimits Limits;
  std::map<ThreadId, Trace> ThreadTraces;
  std::map<SymbolId, Value> Memory;
  std::vector<std::pair<SymbolId, std::optional<Value>>> MemoryLog;
  std::map<SymbolId, std::pair<ThreadId, int>> LockDepth;
  Interleaving Current;
};

/// Memoisation key for the oracle behaviour/race searches: the full global
/// state. Per-thread traces determine enabled continuations; memory and
/// locks determine enabledness; the tail component disambiguates what else
/// the future can depend on (behaviour so far, or the previous event for
/// the adjacent-race search).
struct StateKey {
  std::vector<std::pair<ThreadId, Trace>> ThreadTraces;
  std::vector<std::pair<SymbolId, Value>> Memory;
  std::vector<std::pair<SymbolId, std::pair<ThreadId, int>>> Locks;
  std::vector<Event> Tail;

  friend auto operator<=>(const StateKey &, const StateKey &) = default;
};

class MemoSearch {
public:
  MemoSearch(const Traceset &T, EnumerationLimits Limits)
      : T(T), Limits(Limits) {
    for (ThreadId Tid : T.entryPoints())
      ThreadTraces.emplace(Tid, Trace());
  }

  const Traceset &T;
  EnumerationLimits Limits;
  std::map<ThreadId, Trace> ThreadTraces;
  std::map<SymbolId, Value> Memory;
  std::map<SymbolId, std::pair<ThreadId, int>> LockDepth;
  std::set<StateKey> Seen;
  EnumerationStats Stats;

  bool enabled(ThreadId Tid, const Action &A) const {
    const Trace &Cur = ThreadTraces.at(Tid);
    if (Cur.empty() && (!A.isStart() || A.entry() != Tid))
      return false;
    if (A.isRead()) {
      auto It = Memory.find(A.location());
      Value Expected = It == Memory.end() ? DefaultValue : It->second;
      if (A.value() != Expected)
        return false;
    }
    if (A.isLock()) {
      auto It = LockDepth.find(A.monitor());
      if (It != LockDepth.end() && It->second.second > 0 &&
          It->second.first != Tid)
        return false;
    }
    return true;
  }

  StateKey key(std::vector<Event> Tail) const {
    StateKey K;
    for (const auto &[Tid, Tr] : ThreadTraces)
      K.ThreadTraces.emplace_back(Tid, Tr);
    for (const auto &[Loc, V] : Memory)
      K.Memory.emplace_back(Loc, V);
    for (const auto &[Mon, Slot] : LockDepth)
      if (Slot.second > 0)
        K.Locks.emplace_back(Mon, Slot);
    K.Tail = std::move(Tail);
    return K;
  }

  template <typename OnStep>
  void search(std::vector<Event> Tail, const OnStep &Step) {
    if (++Stats.Visited > Limits.MaxVisited) {
      Stats.truncate(TruncationReason::StateCap);
      return;
    }
    // Each memoised state retains a full StateKey; charge the shared
    // budget a rough per-entry footprint so memory caps bite where the
    // memory actually goes.
    if (Limits.Shared && !Limits.Shared->charge(/*Bytes=*/256)) {
      Stats.truncate(Limits.Shared->reason());
      return;
    }
    if (!Seen.insert(key(Tail)).second)
      return;
    for (const auto &[Tid, Cur] : ThreadTraces) {
      if (Cur.size() >= Limits.MaxEvents) {
        Stats.truncate(TruncationReason::DepthCap);
        continue;
      }
      for (const Action &A : T.successors(Cur)) {
        if (!enabled(Tid, A))
          continue;
        Event E{Tid, A};
        std::vector<Event> NextTail = Step(Tail, E);
        // Apply.
        ThreadTraces[Tid].push_back(A);
        std::optional<Value> OldMem;
        if (A.isWrite()) {
          auto It = Memory.find(A.location());
          if (It != Memory.end())
            OldMem = It->second;
          Memory[A.location()] = A.value();
        }
        std::optional<std::pair<ThreadId, int>> OldLock;
        if (A.isLock() || A.isUnlock()) {
          auto &Slot = LockDepth[A.monitor()];
          OldLock = Slot;
          if (A.isLock()) {
            Slot = {Tid, Slot.second + 1};
          } else {
            Slot = {Slot.first, Slot.second - 1};
          }
        }
        search(std::move(NextTail), Step);
        // Undo.
        if (OldLock)
          LockDepth[A.monitor()] = *OldLock;
        if (A.isWrite()) {
          if (OldMem)
            Memory[A.location()] = *OldMem;
          else
            Memory.erase(A.location());
        }
        Trace &C = ThreadTraces[Tid];
        C = C.prefix(C.size() - 1);
      }
    }
  }
};

std::set<Behaviour> oracleCollectBehaviours(const Traceset &T,
                                            EnumerationLimits Limits,
                                            EnumerationStats *Stats) {
  std::set<Behaviour> Result;
  Result.insert(Behaviour{});
  MemoSearch S(T, Limits);
  // Tail carries the behaviour so far, encoded as external events.
  S.search({}, [&](const std::vector<Event> &Tail, const Event &E) {
    std::vector<Event> Next = Tail;
    if (E.Act.isExternal()) {
      Next.push_back(E);
      Behaviour B;
      for (const Event &Ev : Next)
        B.push_back(Ev.Act.value());
      Result.insert(std::move(B));
    }
    return Next;
  });
  if (Stats)
    *Stats = S.Stats;
  return Result;
}

RaceReport oracleFindAdjacentRace(const Traceset &T,
                                  EnumerationLimits Limits) {
  RaceReport Report;
  // DFS (no memo shortcut for the witness path: we re-run a plain DFS, but
  // with a memoised feasibility filter keyed on (state, previous event); the
  // previous event is all the future needs to know to detect adjacency).
  MemoSearch S(T, Limits);
  // We detect the race inside the Step callback; to reconstruct a witness we
  // keep the current path separately.
  std::vector<Event> Path;
  bool Found = false;
  Interleaving Witness;

  // Plain recursive DFS with memoisation on (state, last event).
  std::function<void()> Dfs = [&]() {
    if (Found)
      return;
    if (++S.Stats.Visited > Limits.MaxVisited) {
      S.Stats.truncate(TruncationReason::StateCap);
      return;
    }
    if (Limits.Shared && !Limits.Shared->charge(/*Bytes=*/256)) {
      S.Stats.truncate(Limits.Shared->reason());
      return;
    }
    std::vector<Event> Tail;
    if (!Path.empty())
      Tail.push_back(Path.back());
    if (!S.Seen.insert(S.key(Tail)).second)
      return;
    for (const auto &[Tid, Cur] : S.ThreadTraces) {
      if (Found)
        return;
      if (Cur.size() >= Limits.MaxEvents) {
        S.Stats.truncate(TruncationReason::DepthCap);
        continue;
      }
      for (const Action &A : S.T.successors(Cur)) {
        if (Found)
          return;
        if (!S.enabled(Tid, A))
          continue;
        Event E{Tid, A};
        if (!Path.empty() && Path.back().Tid != Tid &&
            Path.back().Act.conflictsWith(A)) {
          Found = true;
          std::vector<Event> W = Path;
          W.push_back(E);
          Witness = Interleaving(std::move(W));
          return;
        }
        // Apply.
        S.ThreadTraces[Tid].push_back(A);
        std::optional<Value> OldMem;
        if (A.isWrite()) {
          auto It = S.Memory.find(A.location());
          if (It != S.Memory.end())
            OldMem = It->second;
          S.Memory[A.location()] = A.value();
        }
        std::optional<std::pair<ThreadId, int>> OldLock;
        if (A.isLock() || A.isUnlock()) {
          auto &Slot = S.LockDepth[A.monitor()];
          OldLock = Slot;
          Slot = A.isLock() ? std::make_pair(Tid, Slot.second + 1)
                            : std::make_pair(Slot.first, Slot.second - 1);
        }
        Path.push_back(E);
        Dfs();
        Path.pop_back();
        if (OldLock)
          S.LockDepth[A.monitor()] = *OldLock;
        if (A.isWrite()) {
          if (OldMem)
            S.Memory[A.location()] = *OldMem;
          else
            S.Memory.erase(A.location());
        }
        Trace &C = S.ThreadTraces[Tid];
        C = C.prefix(C.size() - 1);
      }
    }
  };
  Dfs();
  Report.HasRace = Found;
  Report.Witness = Witness;
  Report.Stats = S.Stats;
  return Report;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parallel engine: hash-consed interned states, sleep-set partial-order
// reduction, work-stealing frontier split.
//
// Every structure the search touches is encoded as a short span of uint64
// words and interned (InternPool): per-thread traces become trie nodes
// ([parent id, action word]) so a thread's trace id updates in O(1) per
// step; global states become [header, trace ids, memory, locks, tail]
// spans; enabled steps become event ids used in sleep-set signatures.
//
// Sleep sets (Godefroid): a child inherits sleep set
//   { b in Sleep u ExploredEarlierSiblings : independent(b, chosen) },
// and sleeping transitions are not explored — the sibling branch that
// explored them covers every trace starting with them. Combined with state
// memoisation this is only sound under the subset rule (SleepMemo): a
// revisit is pruned iff a recorded sleep set is a subset of the current
// one. Both queries below survive the reduction because their predicates
// are state-local and the reduced graph still visits every reachable
// state: every full execution has an equivalent explored linearisation,
// and equivalent executions end in the same state.
//
//  - Behaviours: external actions are pairwise dependent, so equivalent
//    executions have identical external sequences; recording the behaviour
//    on every explored external edge therefore records the behaviour of
//    every execution of the full graph.
//  - Races: the paper's adjacent-conflicting-pair definition is equivalent
//    to a state-local predicate — a race exists iff some reachable state s
//    enables a, with b a pending successor of another thread, conflicting
//    with a, such that a.b (or b.a) is executable from s. (If b is a read
//    disabled after a's write, then b was enabled at s itself and the pair
//    fires as b.a; writes are always enabled.) The predicate is evaluated
//    once per distinct interned state.
//
// Source sets (persistent sets): on top of sleep sets, both memoised
// queries restrict each expansion to ONE dependence-closed group of
// threads. A conservative future footprint — every location read, every
// location written, every monitor touched, and whether an external can be
// emitted by ANY continuation of a thread's trace — is memoised per
// interned trie node; threads whose footprints overlap (monitor overlap,
// write/write, write/read, or both-external) are grouped by union-find,
// and only the group with the fewest enabled transitions is expanded.
// Transitions of threads outside the chosen group are independent of —
// and can never be enabled or disabled by — every current AND future
// transition of the group, which is exactly the persistent-set condition,
// so every maximal execution of the full graph still has an explored
// representative and every behaviour is still recorded (externals are
// pairwise dependent, so all external-capable threads land in one group).
// Selection is a pure function of the interned state, keeping the
// memoisation sound.
//
// Why the restriction also preserves the race query, even though it does
// NOT visit every reachable state: the state graph is a finite DAG (each
// step extends a thread trace inside a prefix-closed set). Claim: if a
// race-firing state is reachable from s, the restricted search starting
// at s visits some race-firing state. Induction on the height of s. Let
// pi be a path from s to a state where checkRace fires, and G the group
// chosen at s. If pi is empty the predicate fires at s itself. If pi
// contains a step of a G-thread, commute the first such step t to the
// front — every earlier step belongs to a thread outside G and is
// independent of every (current and future) G-transition, so t·pi' is a
// valid same-length path and t is explored from s; induct on the child.
// If pi avoids G entirely, the racing accesses conflict, so their two
// threads share one dependence group h. When h = G, both racing threads
// sat still along pi and no pi-step (all outside G) can write a location
// any G-thread's future reads or touch its monitors — so the racing
// pair's enabledness and value conditions at pi's end held at s already,
// and checkRace fires at s itself. When h != G, pick any enabled t in G
// (the chosen group has an enabled transition by construction): t's
// footprint is disjoint from every pi-step's and from both racing
// threads', so t·pi is a valid path and still ends in a race-firing
// state, now below the explored child t(s); induct on its height.
// Sleep sets layer on top exactly as for behaviours (the predicate is
// state-local and evaluated before expansion). The ExhaustiveOracle
// equivalence matrix in test_parallel_enumerate keeps this honest.
//===----------------------------------------------------------------------===//

namespace {

// Forking is restricted to the shallow levels of a search — that is where
// the large subtrees live, and it bounds the per-transition NodeState
// copies on hosts where idle workers are always available (a pool wider
// than the machine), where an unconditional hasIdleWorker() gate would
// fork nearly every edge. The depth limit is adaptive (ForkPolicy): each
// query measures its own branching factor and retunes the limit so the
// fan-out within it is a small multiple of the pool width.

// The span tag constants (TagTrace/TagEvent/TagState) and the one-word
// action packing live in trace/ActionWord.h, shared with the TSO/PSO
// engine and the behaviour cache.

/// Mazurkiewicz independence for this semantics. Dependent pairs: same
/// thread (program order); two externals (behaviour order is observable);
/// same-location accesses with a write — at ANY volatility, because even a
/// volatile read's enabledness tests memory; same-monitor lock/unlock
/// (mutual exclusion and ownership). Everything else commutes and neither
/// side can disable the other.
bool independentEvents(const Event &A, const Event &B) {
  if (A.Tid == B.Tid)
    return false;
  const Action &X = A.Act;
  const Action &Y = B.Act;
  if (X.isExternal() && Y.isExternal())
    return false;
  if ((X.isLock() || X.isUnlock()) && (Y.isLock() || Y.isUnlock()) &&
      X.monitor() == Y.monitor())
    return false;
  if (X.isMemoryAccess() && Y.isMemoryAccess() &&
      X.location() == Y.location() && (X.isWrite() || Y.isWrite()))
    return false;
  return true;
}

/// A sleep-set element: the interned event id (signature order and
/// membership tests) plus the decoded event (independence checks).
struct SleepElem {
  uint32_t Id;
  Event Ev;
};

/// Mutable global search state. Copyable: handing a subtree to another
/// worker is one copy; inline recursion uses apply/undo instead.
struct NodeState {
  std::vector<Trace> Traces;      ///< per dense thread index
  std::vector<uint32_t> TraceIds; ///< interned trie node per thread
  std::map<SymbolId, Value> Memory;
  std::map<SymbolId, std::pair<ThreadId, int>> LockDepth;
  std::vector<Value> Tail;        ///< behaviour so far (behaviours mode)
  Interleaving Path;              ///< events from the root (race/visitor)
  std::vector<SleepElem> Sleep;   ///< sorted by Id
};

bool stepEnabled(const std::vector<ThreadId> &Tids, const NodeState &N,
                 size_t Ti, const Action &A) {
  const Trace &Cur = N.Traces[Ti];
  if (Cur.empty() && (!A.isStart() || A.entry() != Tids[Ti]))
    return false;
  if (A.isRead() && !A.isWildcard()) {
    auto It = N.Memory.find(A.location());
    Value Expected = It == N.Memory.end() ? DefaultValue : It->second;
    if (A.value() != Expected)
      return false;
  }
  if (A.isLock()) {
    auto It = N.LockDepth.find(A.monitor());
    if (It != N.LockDepth.end() && It->second.second > 0 &&
        It->second.first != Tids[Ti])
      return false;
  }
  return true;
}

struct StepUndo {
  uint32_t OldTraceId = 0;
  bool HadMem = false;
  Value OldMem = 0;
  std::pair<ThreadId, int> OldLock{0, 0};
  bool PushedTail = false;
  bool PushedPath = false;
};

void applyStep(NodeState &N, size_t Ti, const Event &Ev, InternPool *Structs,
               bool TrackTail, bool TrackPath, StepUndo &U) {
  const Action &A = Ev.Act;
  N.Traces[Ti].push_back(A);
  if (Structs) {
    U.OldTraceId = N.TraceIds[Ti];
    uint64_t W[2] = {TagTrace | N.TraceIds[Ti], actionWord(A)};
    N.TraceIds[Ti] = Structs->intern(W, 2).Id;
  }
  if (A.isWrite()) {
    auto It = N.Memory.find(A.location());
    if (It != N.Memory.end()) {
      U.HadMem = true;
      U.OldMem = It->second;
    }
    N.Memory[A.location()] = A.value();
  }
  if (A.isLock() || A.isUnlock()) {
    auto &Slot = N.LockDepth[A.monitor()];
    U.OldLock = Slot;
    Slot = A.isLock() ? std::make_pair(Ev.Tid, Slot.second + 1)
                      : std::make_pair(Slot.first, Slot.second - 1);
  }
  if (TrackTail && A.isExternal()) {
    N.Tail.push_back(A.value());
    U.PushedTail = true;
  }
  if (TrackPath) {
    N.Path.push_back(Ev);
    U.PushedPath = true;
  }
}

void undoStep(NodeState &N, size_t Ti, const Event &Ev, InternPool *Structs,
              const StepUndo &U) {
  const Action &A = Ev.Act;
  if (U.PushedPath)
    N.Path.pop_back();
  if (U.PushedTail)
    N.Tail.pop_back();
  if (A.isLock() || A.isUnlock())
    N.LockDepth[A.monitor()] = U.OldLock;
  if (A.isWrite()) {
    if (U.HadMem)
      N.Memory[A.location()] = U.OldMem;
    else
      N.Memory.erase(A.location());
  }
  if (Structs)
    N.TraceIds[Ti] = U.OldTraceId;
  N.Traces[Ti].pop_back();
}

bool sleepContains(const std::vector<SleepElem> &Sleep, uint32_t Id) {
  auto It = std::lower_bound(
      Sleep.begin(), Sleep.end(), Id,
      [](const SleepElem &S, uint32_t V) { return S.Id < V; });
  return It != Sleep.end() && It->Id == Id;
}

/// Conservative over-approximation of everything a thread can still do:
/// the union over every continuation of its trace inside the traceset.
/// Volatile accesses count as reads/writes too (their enabledness and
/// effects go through memory just like normal accesses).
struct Footprint {
  std::vector<SymbolId> Reads;    ///< sorted, deduped
  std::vector<SymbolId> Writes;   ///< sorted, deduped
  std::vector<SymbolId> Monitors; ///< sorted, deduped
  bool HasExternal = false;
};

/// Sorted-vector intersection test (linear merge).
bool overlaps(const std::vector<SymbolId> &A, const std::vector<SymbolId> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] < B[J])
      ++I;
    else if (B[J] < A[I])
      ++J;
    else
      return true;
  }
  return false;
}

/// Can ANY future transition of one thread depend on (or enable/disable)
/// ANY future transition of the other? Mirrors independentEvents over the
/// footprint over-approximation: both-external, same monitor, or a
/// same-location pair with a write.
bool footprintsDependent(const Footprint &X, const Footprint &Y) {
  if (X.HasExternal && Y.HasExternal)
    return true;
  if (overlaps(X.Monitors, Y.Monitors))
    return true;
  if (overlaps(X.Writes, Y.Writes))
    return true;
  if (overlaps(X.Writes, Y.Reads))
    return true;
  if (overlaps(X.Reads, Y.Writes))
    return true;
  return false;
}

/// Struct-of-arrays global state for the memoised engine. Memory and lock
/// state live in dense vectors indexed by the query's symbol layout
/// (every location/monitor the traceset can ever touch, collected from
/// the root footprint), so the inner step loop streams over contiguous
/// words instead of chasing std::map nodes, a worker handoff copies flat
/// arrays, and the state encoding is a fixed-shape span.
struct SoaState {
  std::vector<Trace> Traces;      ///< per dense thread index
  std::vector<uint32_t> TraceIds; ///< interned trie node per thread
  std::vector<Value> Mem;         ///< per dense location index
  std::vector<std::pair<ThreadId, int>> Locks; ///< per dense monitor index
  std::vector<Value> Tail;        ///< behaviour so far (behaviours mode)
  Interleaving Path;              ///< events from the root (race mode)
  std::vector<SleepElem> Sleep;   ///< sorted by Id
};

/// Lock-free cache keyed by interned trie id: a chunked arena of atomic
/// value pointers (chunk C holds 64<<C slots, so slots never move and 27
/// chunk pointers cover the whole id space). find() is two acquire loads;
/// publish() CAS-installs a heap value, and the loser of a compute race
/// discards its duplicate — results are identical either way. Replaces
/// the former mutex-sharded unordered_maps on the successor/footprint
/// hot path.
template <typename T> class IdTable {
public:
  IdTable() = default;
  IdTable(const IdTable &) = delete;
  IdTable &operator=(const IdTable &) = delete;
  ~IdTable() {
    for (unsigned C = 0; C < Chunks.size(); ++C) {
      std::atomic<T *> *Chunk = Chunks[C].load(std::memory_order_relaxed);
      if (!Chunk)
        continue;
      size_t Cap = size_t{64} << C;
      for (size_t I = 0; I < Cap; ++I)
        delete Chunk[I].load(std::memory_order_relaxed);
      delete[] Chunk;
    }
  }

  const T *find(uint32_t Id) const {
    unsigned C = chunkOf(Id);
    std::atomic<T *> *Chunk = Chunks[C].load(std::memory_order_acquire);
    if (!Chunk)
      return nullptr;
    return Chunk[Id - baseOf(C)].load(std::memory_order_acquire);
  }

  /// Installs \p Val for \p Id unless another thread already did; returns
  /// the winning value and whether this call inserted. Bytes of any chunk
  /// this call allocated are added to \p ChunkBytes.
  std::pair<const T *, bool> publish(uint32_t Id, std::unique_ptr<T> Val,
                                     uint64_t &ChunkBytes) {
    unsigned C = chunkOf(Id);
    std::atomic<T *> *Chunk = Chunks[C].load(std::memory_order_acquire);
    if (!Chunk) {
      size_t Cap = size_t{64} << C;
      auto *Fresh = new std::atomic<T *>[Cap];
      for (size_t I = 0; I < Cap; ++I)
        Fresh[I].store(nullptr, std::memory_order_relaxed);
      std::atomic<T *> *Expected = nullptr;
      if (Chunks[C].compare_exchange_strong(Expected, Fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        Chunk = Fresh;
        ChunkBytes += Cap * sizeof(std::atomic<T *>);
      } else {
        delete[] Fresh;
        Chunk = Expected;
      }
    }
    std::atomic<T *> &Slot = Chunk[Id - baseOf(C)];
    T *Expected = nullptr;
    T *Raw = Val.release();
    if (Slot.compare_exchange_strong(Expected, Raw,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
      return {Raw, true};
    delete Raw;
    return {Expected, false};
  }

private:
  static unsigned chunkOf(uint32_t Id) {
    return std::bit_width((Id >> 6) + 1u) - 1;
  }
  static uint32_t baseOf(unsigned C) { return (uint32_t{64} << C) - 64; }
  std::array<std::atomic<std::atomic<T *> *>, 27> Chunks{};
};

/// Per-task charging and scratch context, threaded down the recursion.
/// The two block-reserving scopes amortise the shared atomic traffic of
/// the hot loop (Budget::Scope keeps bit-exact cap/interrupt semantics);
/// the encode buffers are reused across every state a task visits.
struct TaskCtx {
  Budget::Scope Charge;
  CounterScope Visits;
  std::vector<uint64_t> Enc;    ///< state-encoding scratch
  std::vector<uint64_t> SigEnc; ///< sleep-signature scratch
  TaskCtx(Budget *Shared, std::atomic<uint64_t> &Counter)
      : Charge(Shared), Visits(Counter) {}
};

/// The memoised behaviour/race searches on the interned + sleep-set + (when
/// Workers != 1) work-stealing engine.
class ReducedQuery {
public:
  ReducedQuery(const Traceset &T, const EnumerationLimits &Limits,
               bool RaceMode)
      : T(T), Limits(Limits), RaceMode(RaceMode),
        Parallel(Limits.Workers != 1),
        Structs(Parallel ? 6 : 0, Limits.Shared),
        Sigs(Parallel ? 6 : 0, Limits.Shared),
        Forks(Limits.Workers ? Limits.Workers
                             : ThreadPool::defaultWorkerCount()) {
    if (Limits.SleepSets)
      Memo = std::make_unique<SleepMemo>(Parallel ? 6 : 0, Sigs,
                                         Limits.Shared);
    Tids = T.entryPoints();
    std::sort(Tids.begin(), Tids.end());
  }

  void run() {
    SoaState Root;
    Root.Traces.assign(Tids.size(), Trace());
    uint64_t EmptyWord = TagTrace;
    try {
      // The root-state intern is the engine's very first allocation; an
      // injected InternAlloc failure can land here, before any search
      // frame's containment is on the stack. The root footprint walk
      // below interns the whole trace trie, so it lives here too — it
      // both warms the successor/footprint caches and yields the dense
      // symbol layout (every location/monitor the traceset can reach).
      uint32_t RootId = Structs.intern(&EmptyWord, 1).Id;
      Root.TraceIds.assign(Tids.size(), RootId);
      const Footprint &RootF = footprintFor(RootId, Trace());
      LocIds = RootF.Reads;
      LocIds.insert(LocIds.end(), RootF.Writes.begin(), RootF.Writes.end());
      std::sort(LocIds.begin(), LocIds.end());
      LocIds.erase(std::unique(LocIds.begin(), LocIds.end()), LocIds.end());
      MonIds = RootF.Monitors;
    } catch (...) {
      engineFault();
      std::lock_guard<std::mutex> Lock(ResM);
      Stats.Visited = VisitedCount.load(std::memory_order_relaxed);
      return;
    }
    Root.Mem.assign(LocIds.size(), DefaultValue);
    Root.Locks.assign(MonIds.size(), {0, 0});
    if (!RaceMode)
      Behaviours.insert(Behaviour{});
    if (!Parallel) {
      // Exception containment, sequential engine: an allocation failure
      // (real or injected) inside the intern pools unwinds to here and
      // becomes a truncated result — partial behaviour sets / "no race
      // found so far" are exactly what Unknown(EngineFault) means, and
      // any witness already recorded stays definitive.
      try {
        TaskCtx Ctx(Limits.Shared, VisitedCount);
        search(Root, Ctx);
      } catch (...) {
        engineFault();
      }
    } else {
      if (Limits.Workers > 1)
        Owned = std::make_unique<ThreadPool>(Limits.Workers);
      Pool = Owned ? Owned.get() : &ThreadPool::shared();
      {
        ThreadPool::TaskGroup G(*Pool);
        Group = &G;
        auto R = std::make_shared<SoaState>(std::move(Root));
        G.spawn([this, R] {
          TaskCtx Ctx(Limits.Shared, VisitedCount);
          search(*R, Ctx);
        });
        G.wait();
        // Parallel engine: every search frame runs inside a pool task,
        // so a throwing frame is captured by the group (and the group
        // drained) instead of unwinding a worker. Surface it here.
        if (G.faulted()) {
          G.takeException();
          engineFault();
        }
      }
      Group = nullptr;
    }
    std::lock_guard<std::mutex> Lock(ResM);
    Stats.Visited = VisitedCount.load(std::memory_order_relaxed);
  }

  // Results (valid after run()).
  std::set<Behaviour> Behaviours;
  bool HasRace = false;
  Interleaving Witness;
  EnumerationStats Stats;

private:
  void truncate(TruncationReason R) {
    std::lock_guard<std::mutex> Lock(ResM);
    Stats.truncate(R);
  }

  /// Marks the query faulted: truncate with EngineFault and poison the
  /// shared budget so sibling engines of the same query unwind too — a
  /// result built on a faulted sub-search must never read as Proved.
  void engineFault() {
    truncate(TruncationReason::EngineFault);
    StopFlag.store(true, std::memory_order_relaxed);
    if (Limits.Shared)
      Limits.Shared->poison(TruncationReason::EngineFault);
  }

  /// Dense index of a location/monitor in the query's symbol layout. The
  /// layouts are tiny sorted vectors (every symbol the traceset can ever
  /// touch, from the root footprint), so a branchless binary search beats
  /// any map. Every action reachable by the search is covered.
  size_t locIndex(SymbolId L) const {
    return std::lower_bound(LocIds.begin(), LocIds.end(), L) -
           LocIds.begin();
  }
  size_t monIndex(SymbolId M) const {
    return std::lower_bound(MonIds.begin(), MonIds.end(), M) -
           MonIds.begin();
  }

  bool soaEnabled(const SoaState &N, size_t Ti, const Action &A) const {
    const Trace &Cur = N.Traces[Ti];
    if (Cur.empty() && (!A.isStart() || A.entry() != Tids[Ti]))
      return false;
    if (A.isRead() && !A.isWildcard() &&
        A.value() != N.Mem[locIndex(A.location())])
      return false;
    if (A.isLock()) {
      const auto &Slot = N.Locks[monIndex(A.monitor())];
      if (Slot.second > 0 && Slot.first != Tids[Ti])
        return false;
    }
    return true;
  }

  struct SoaUndo {
    uint32_t OldTraceId = 0;
    Value OldMem = 0;
    std::pair<ThreadId, int> OldLock{0, 0};
    bool PushedTail = false;
    bool PushedPath = false;
  };

  void applySoa(SoaState &N, size_t Ti, const Event &Ev, SoaUndo &U) {
    const Action &A = Ev.Act;
    N.Traces[Ti].push_back(A);
    U.OldTraceId = N.TraceIds[Ti];
    uint64_t W[2] = {TagTrace | N.TraceIds[Ti], actionWord(A)};
    N.TraceIds[Ti] = Structs.intern(W, 2).Id;
    if (A.isWrite()) {
      Value &Slot = N.Mem[locIndex(A.location())];
      U.OldMem = Slot;
      Slot = A.value();
    }
    if (A.isLock() || A.isUnlock()) {
      auto &Slot = N.Locks[monIndex(A.monitor())];
      U.OldLock = Slot;
      Slot = A.isLock() ? std::make_pair(Ev.Tid, Slot.second + 1)
                        : std::make_pair(Slot.first, Slot.second - 1);
    }
    if (!RaceMode && A.isExternal()) {
      N.Tail.push_back(A.value());
      U.PushedTail = true;
    }
    if (RaceMode) {
      N.Path.push_back(Ev);
      U.PushedPath = true;
    }
  }

  void undoSoa(SoaState &N, size_t Ti, const Event &Ev, const SoaUndo &U) {
    const Action &A = Ev.Act;
    if (U.PushedPath)
      N.Path.pop_back();
    if (U.PushedTail)
      N.Tail.pop_back();
    if (A.isLock() || A.isUnlock())
      N.Locks[monIndex(A.monitor())] = U.OldLock;
    if (A.isWrite())
      N.Mem[locIndex(A.location())] = U.OldMem;
    N.TraceIds[Ti] = U.OldTraceId;
    N.Traces[Ti].pop_back();
  }

  /// [TagState | tail length, trace ids, memory values (two per word,
  /// position-implicit locations), one word per monitor slot, tail*].
  /// The dense layout is fixed per query, so positions are canonical; a
  /// lock slot at depth 0 encodes as 0 regardless of its last owner
  /// (semantically identical states must encode identically).
  void encodeState(const SoaState &N, std::vector<uint64_t> &Out) const {
    Out.clear();
    Out.reserve(1 + N.TraceIds.size() + (N.Mem.size() + 1) / 2 +
                N.Locks.size() + N.Tail.size());
    Out.push_back(TagState | N.Tail.size());
    for (uint32_t Id : N.TraceIds)
      Out.push_back(Id);
    for (size_t I = 0; I < N.Mem.size(); I += 2) {
      uint64_t W = static_cast<uint32_t>(N.Mem[I]);
      if (I + 1 < N.Mem.size())
        W = (W << 32) | static_cast<uint32_t>(N.Mem[I + 1]);
      Out.push_back(W);
    }
    for (const auto &Slot : N.Locks)
      Out.push_back(Slot.second > 0
                        ? (static_cast<uint64_t>(Slot.first) << 32) |
                              static_cast<uint32_t>(Slot.second)
                        : 0);
    for (Value V : N.Tail)
      Out.push_back(static_cast<uint32_t>(V));
  }

  /// Successors of a thread trace, memoised by its interned trie id.
  /// Traceset::successors walks the underlying std::set with full trace
  /// comparisons — the dominant per-expansion cost — but many states share
  /// the same per-thread traces, so one walk per *distinct* trace serves
  /// every arrival. The IdTable makes the warm lookup two atomic loads;
  /// values never move once published.
  const std::vector<Action> &successorsFor(uint32_t Id, const Trace &Tr) {
    if (const std::vector<Action> *Hit = SuccCache.find(Id))
      return *Hit;
    auto Val = std::make_unique<std::vector<Action>>(T.successors(Tr));
    uint64_t ValBytes =
        Val->capacity() * sizeof(Action) + sizeof(void *) * 4;
    uint64_t ChunkBytes = 0;
    auto [Ptr, Inserted] = SuccCache.publish(Id, std::move(Val), ChunkBytes);
    if (Limits.Shared && (ChunkBytes || Inserted))
      Limits.Shared->chargeBytes(ChunkBytes + (Inserted ? ValBytes : 0));
    return *Ptr;
  }

  /// Future footprint of a thread trace, memoised by its interned trie id
  /// like successorsFor. Recursion is bounded by the (finite, prefix-
  /// closed) traceset depth, and each distinct trace node is computed
  /// once. Two arrivals may race to compute the same node; the first
  /// insert wins and the duplicate work is discarded — results are
  /// identical either way.
  const Footprint &footprintFor(uint32_t Id, const Trace &Tr) {
    if (const Footprint *Hit = FootCache.find(Id))
      return *Hit;
    Footprint F;
    Trace Child = Tr;
    for (const Action &A : successorsFor(Id, Tr)) {
      switch (A.kind()) {
      case ActionKind::Read:
        F.Reads.push_back(A.location());
        break;
      case ActionKind::Write:
        F.Writes.push_back(A.location());
        break;
      case ActionKind::Lock:
      case ActionKind::Unlock:
        F.Monitors.push_back(A.monitor());
        break;
      case ActionKind::External:
        F.HasExternal = true;
        break;
      case ActionKind::Start:
        break; // starts never interact across threads
      }
      uint64_t W[2] = {TagTrace | Id, actionWord(A)};
      uint32_t ChildId = Structs.intern(W, 2).Id;
      Child.push_back(A);
      const Footprint &CF = footprintFor(ChildId, Child);
      Child.pop_back();
      F.Reads.insert(F.Reads.end(), CF.Reads.begin(), CF.Reads.end());
      F.Writes.insert(F.Writes.end(), CF.Writes.begin(), CF.Writes.end());
      F.Monitors.insert(F.Monitors.end(), CF.Monitors.begin(),
                        CF.Monitors.end());
      F.HasExternal |= CF.HasExternal;
    }
    auto Canon = [](std::vector<SymbolId> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
      V.shrink_to_fit();
    };
    Canon(F.Reads);
    Canon(F.Writes);
    Canon(F.Monitors);
    uint64_t ValBytes =
        (F.Reads.size() + F.Writes.size() + F.Monitors.size()) *
            sizeof(SymbolId) +
        sizeof(Footprint) + sizeof(void *) * 4;
    uint64_t ChunkBytes = 0;
    auto [Ptr, Inserted] = FootCache.publish(
        Id, std::make_unique<Footprint>(std::move(F)), ChunkBytes);
    if (Limits.Shared && (ChunkBytes || Inserted))
      Limits.Shared->chargeBytes(ChunkBytes + (Inserted ? ValBytes : 0));
    return *Ptr;
  }

  /// Persistent-set restriction, shared by both queries: groups threads
  /// by future-footprint dependence (union-find) and, when more than one
  /// group has an enabled transition, keeps only the group with the
  /// fewest enabled transitions (ties to the lowest thread index). The
  /// result is a pure function of the interned state: footprints depend
  /// only on trie ids and enabledness only on the encoded state. See the
  /// section comment for why this preserves the race query's state-local
  /// predicate as well as the behaviour set.
  void restrictToSourceGroup(const SoaState &N,
                             const std::vector<const std::vector<Action> *>
                                 &Succ,
                             std::vector<char> &InGroup) {
    size_t NT = Tids.size();
    std::vector<unsigned> Enabled(NT, 0);
    for (size_t Ti = 0; Ti < NT; ++Ti)
      for (const Action &A : *Succ[Ti])
        if (soaEnabled(N, Ti, A))
          ++Enabled[Ti];
    std::vector<size_t> Parent(NT);
    for (size_t I = 0; I < NT; ++I)
      Parent[I] = I;
    auto Find = [&Parent](size_t X) {
      while (Parent[X] != X)
        X = Parent[X] = Parent[Parent[X]];
      return X;
    };
    for (size_t I = 0; I < NT; ++I)
      for (size_t J = I + 1; J < NT; ++J) {
        size_t RI = Find(I), RJ = Find(J);
        if (RI == RJ)
          continue;
        if (footprintsDependent(footprintFor(N.TraceIds[I], N.Traces[I]),
                                footprintFor(N.TraceIds[J], N.Traces[J])))
          Parent[RJ] = RI;
      }
    // Per-group enabled totals and lowest member (threads iterate in
    // ascending index order, so the first member seen is the minimum).
    std::vector<unsigned> GroupEnabled(NT, 0);
    std::vector<size_t> GroupMin(NT, NT);
    for (size_t Ti = 0; Ti < NT; ++Ti) {
      size_t R = Find(Ti);
      GroupEnabled[R] += Enabled[Ti];
      if (GroupMin[R] == NT)
        GroupMin[R] = Ti;
    }
    size_t Best = NT;
    for (size_t R = 0; R < NT; ++R) {
      if (Find(R) != R || GroupEnabled[R] == 0)
        continue;
      if (Best == NT || GroupEnabled[R] < GroupEnabled[Best] ||
          (GroupEnabled[R] == GroupEnabled[Best] &&
           GroupMin[R] < GroupMin[Best]))
        Best = R;
    }
    if (Best == NT)
      return; // nothing enabled anywhere: no restriction to make
    for (size_t Ti = 0; Ti < NT; ++Ti)
      InGroup[Ti] = Find(Ti) == Best;
  }

  /// State-local adjacent-race predicate (see file comment). Returns true
  /// (and records the witness, broadcasting stop) when a race fires at N.
  bool checkRace(const SoaState &N,
                 const std::vector<const std::vector<Action> *> &Succ) {
    size_t NT = Tids.size();
    for (size_t Ti = 0; Ti < NT; ++Ti) {
      for (const Action &A : *Succ[Ti]) {
        if (!A.isNormalAccess())
          continue; // only normal accesses conflict (§3)
        if (!soaEnabled(N, Ti, A))
          continue;
        for (size_t Tj = 0; Tj < NT; ++Tj) {
          if (Tj == Ti || N.Traces[Tj].empty())
            continue;
          for (const Action &B : *Succ[Tj]) {
            if (!A.conflictsWith(B))
              continue;
            Value MemNow = N.Mem[locIndex(B.location())];
            Value AfterA = A.isWrite() ? A.value() : MemNow;
            Event EvA{Tids[Ti], A};
            Event EvB{Tids[Tj], B};
            // b executable right after a: writes (and wildcard reads)
            // always, reads iff they see the post-a memory.
            if (B.isWrite() || B.isWildcard() || B.value() == AfterA)
              return raceFound(N, EvA, EvB);
            // b is a read disabled by a's write but enabled at N itself:
            // the pair fires in the order b.a instead (a is a write, so it
            // stays enabled after the read).
            if (B.value() == MemNow)
              return raceFound(N, EvB, EvA);
          }
        }
      }
    }
    return false;
  }

  bool raceFound(const SoaState &N, const Event &First,
                 const Event &Second) {
    std::lock_guard<std::mutex> Lock(ResM);
    if (!HasRace) {
      HasRace = true;
      Interleaving W = N.Path;
      W.push_back(First);
      W.push_back(Second);
      Witness = std::move(W);
    }
    StopFlag.store(true, std::memory_order_relaxed);
    return true;
  }

  void search(SoaState &N, TaskCtx &Ctx, unsigned Depth = 0) {
    if (StopFlag.load(std::memory_order_relaxed))
      return;
    uint64_t V = Ctx.Visits.next();
    if (V > Limits.MaxVisited) {
      truncate(TruncationReason::StateCap);
      return;
    }
    if (Limits.Shared && !Ctx.Charge.charge()) {
      truncate(Limits.Shared->reason());
      return;
    }
    // Intern the global state; prune revisits (subset rule under POR).
    encodeState(N, Ctx.Enc);
    InternPool::Result State = Structs.intern(Ctx.Enc.data(), Ctx.Enc.size());
    if (Memo) {
      Ctx.SigEnc.clear();
      for (const SleepElem &S : N.Sleep)
        Ctx.SigEnc.push_back(S.Id);
      InternPool::Result Sig =
          Sigs.intern(Ctx.SigEnc.data(), Ctx.SigEnc.size());
      if (!Memo->shouldExplore(State.Id, Sig.Id))
        return;
    } else if (!State.Inserted) {
      return;
    }
    // Successor actions per thread, shared by the race predicate and the
    // expansion. Threads at the depth cap are skipped and truncate.
    static const std::vector<Action> NoSucc;
    size_t NT = Tids.size();
    std::vector<const std::vector<Action> *> Succ(NT, &NoSucc);
    bool DepthHit = false;
    for (size_t Ti = 0; Ti < NT; ++Ti) {
      if (N.Traces[Ti].size() >= Limits.MaxEvents) {
        DepthHit = true;
        continue;
      }
      Succ[Ti] = &successorsFor(N.TraceIds[Ti], N.Traces[Ti]);
    }
    if (DepthHit)
      truncate(TruncationReason::DepthCap);
    if (RaceMode && checkRace(N, Succ))
      return;
    // Persistent-set restriction, both queries (a depth-capped thread
    // has an unexplorable future, so its footprint cannot vouch for it —
    // fall back to full expansion for this state).
    std::vector<char> InGroup(NT, 1);
    if (Limits.SourceSets && !DepthHit && NT > 1)
      restrictToSourceGroup(N, Succ, InGroup);
    // Expand in deterministic (thread, action) order.
    std::vector<SleepElem> Done; // earlier explored siblings
    unsigned Degree = 0;         // explored out-degree, for ForkPolicy
    for (size_t Ti = 0; Ti < NT; ++Ti) {
      if (!InGroup[Ti])
        continue;
      for (const Action &A : *Succ[Ti]) {
        if (StopFlag.load(std::memory_order_relaxed))
          return;
        if (!soaEnabled(N, Ti, A))
          continue;
        Event Ev{Tids[Ti], A};
        uint32_t EvId = 0;
        if (Memo) {
          uint64_t W[2] = {TagEvent | Tids[Ti], actionWord(A)};
          EvId = Structs.intern(W, 2).Id;
          // Asleep: the sibling branch that explored this event covers
          // every trace that starts with it here.
          if (sleepContains(N.Sleep, EvId))
            continue;
        }
        // Behaviours are recorded per explored edge, before any pruning of
        // the child (the seed engine does the same).
        if (!RaceMode && A.isExternal()) {
          Behaviour B = N.Tail;
          B.push_back(A.value());
          std::lock_guard<std::mutex> Lock(ResM);
          Behaviours.insert(std::move(B));
        }
        std::vector<SleepElem> ChildSleep;
        if (Memo) {
          for (const SleepElem &S : N.Sleep)
            if (independentEvents(S.Ev, Ev))
              ChildSleep.push_back(S);
          for (const SleepElem &S : Done)
            if (independentEvents(S.Ev, Ev))
              ChildSleep.push_back(S);
          std::sort(ChildSleep.begin(), ChildSleep.end(),
                    [](const SleepElem &X, const SleepElem &Y) {
                      return X.Id < Y.Id;
                    });
        }
        ++Degree;
        if (Group && Forks.shouldFork(*Pool, Depth)) {
          // Hand the subtree to an idle worker: one flat-array copy. The
          // spawned task charges through its own scopes.
          auto Child = std::make_shared<SoaState>(N);
          Child->Sleep = std::move(ChildSleep);
          SoaUndo U;
          applySoa(*Child, Ti, Ev, U);
          Group->spawn([this, Child, Depth] {
            TaskCtx ChildCtx(Limits.Shared, VisitedCount);
            search(*Child, ChildCtx, Depth + 1);
          });
        } else {
          SoaUndo U;
          applySoa(N, Ti, Ev, U);
          std::vector<SleepElem> Saved = std::move(N.Sleep);
          N.Sleep = std::move(ChildSleep);
          search(N, Ctx, Depth + 1);
          N.Sleep = std::move(Saved);
          undoSoa(N, Ti, Ev, U);
        }
        if (Memo)
          Done.push_back({EvId, Ev});
      }
    }
    if (Group)
      Forks.observe(Degree, *Pool);
  }

  const Traceset &T;
  EnumerationLimits Limits;
  bool RaceMode;
  bool Parallel;
  InternPool Structs; ///< trace trie nodes, events, states
  InternPool Sigs;    ///< sorted event-id sleep signatures
  IdTable<std::vector<Action>> SuccCache; ///< trie id -> successor actions
  IdTable<Footprint> FootCache;           ///< trie id -> future footprint
  std::vector<SymbolId> LocIds; ///< sorted distinct memory locations
  std::vector<SymbolId> MonIds; ///< sorted distinct monitors
  ForkPolicy Forks;                    ///< adaptive fork-depth controller
  std::unique_ptr<SleepMemo> Memo;
  std::vector<ThreadId> Tids;
  std::unique_ptr<ThreadPool> Owned;
  ThreadPool *Pool = nullptr;
  ThreadPool::TaskGroup *Group = nullptr;
  std::atomic<uint64_t> VisitedCount{0};
  std::atomic<bool> StopFlag{false};
  std::mutex ResM; ///< guards Behaviours, HasRace, Witness, Stats
};

/// Parallel visitor-based enumeration (forEach*Execution, Workers != 1).
/// No memoisation or reduction — every execution is visited, in
/// unspecified order; the visitor is serialized and Visit=false broadcasts
/// stop.
class VisitorSearch {
public:
  VisitorSearch(const Traceset &T, const EnumerationLimits &Limits,
                bool MaximalOnly,
                const std::function<bool(const Interleaving &)> &Visit)
      : T(T), Limits(Limits), MaximalOnly(MaximalOnly), Visit(Visit),
        Forks(Limits.Workers ? Limits.Workers
                             : ThreadPool::defaultWorkerCount()) {
    Tids = T.entryPoints();
    std::sort(Tids.begin(), Tids.end());
  }

  EnumerationStats run() {
    NodeState Root;
    Root.Traces.assign(Tids.size(), Trace());
    if (Limits.Workers > 1)
      Owned = std::make_unique<ThreadPool>(Limits.Workers);
    Pool = Owned ? Owned.get() : &ThreadPool::shared();
    {
      ThreadPool::TaskGroup G(*Pool);
      Group = &G;
      auto R = std::make_shared<NodeState>(std::move(Root));
      G.spawn([this, R] {
        TaskCtx Ctx(Limits.Shared, VisitedCount);
        search(*R, Ctx);
      });
      G.wait();
      // A throwing search frame is captured by the group and the rest of
      // the group drained; the visit sequence is incomplete, so the
      // result must read as truncated, never as an exhausted search.
      if (G.faulted()) {
        G.takeException();
        StopFlag.store(true, std::memory_order_relaxed);
        truncate(TruncationReason::EngineFault);
        if (Limits.Shared)
          Limits.Shared->poison(TruncationReason::EngineFault);
      }
    }
    Group = nullptr;
    std::lock_guard<std::mutex> Lock(StatsM);
    Stats.Visited = VisitedCount.load(std::memory_order_relaxed);
    return Stats;
  }

private:
  void truncate(TruncationReason R) {
    std::lock_guard<std::mutex> Lock(StatsM);
    Stats.truncate(R);
  }

  void search(NodeState &N, TaskCtx &Ctx, unsigned Depth = 0) {
    if (StopFlag.load(std::memory_order_relaxed))
      return;
    uint64_t V = Ctx.Visits.next();
    if (V > Limits.MaxVisited) {
      truncate(TruncationReason::StateCap);
      return;
    }
    if (N.Path.size() >= Limits.MaxEvents) {
      truncate(TruncationReason::DepthCap);
      return;
    }
    if (Limits.Shared && !Ctx.Charge.charge()) {
      truncate(Limits.Shared->reason());
      return;
    }
    std::vector<std::pair<size_t, Action>> Steps;
    for (size_t Ti = 0; Ti < Tids.size(); ++Ti)
      for (const Action &A : T.successors(N.Traces[Ti]))
        if (stepEnabled(Tids, N, Ti, A))
          Steps.emplace_back(Ti, A);
    if ((!MaximalOnly && !N.Path.empty()) ||
        (MaximalOnly && Steps.empty())) {
      std::lock_guard<std::mutex> Lock(VisitM);
      if (StopFlag.load(std::memory_order_relaxed))
        return;
      if (!Visit(N.Path)) {
        StopFlag.store(true, std::memory_order_relaxed);
        return;
      }
    }
    if (Group)
      Forks.observe(static_cast<unsigned>(Steps.size()), *Pool);
    for (const auto &[Ti, A] : Steps) {
      if (StopFlag.load(std::memory_order_relaxed))
        return;
      Event Ev{Tids[Ti], A};
      // Same adaptive shallow-fork gate as ReducedQuery::search.
      if (Group && Forks.shouldFork(*Pool, Depth)) {
        auto Child = std::make_shared<NodeState>(N);
        StepUndo U;
        applyStep(*Child, Ti, Ev, nullptr, false, true, U);
        Group->spawn([this, Child, Depth] {
          TaskCtx ChildCtx(Limits.Shared, VisitedCount);
          search(*Child, ChildCtx, Depth + 1);
        });
      } else {
        StepUndo U;
        applyStep(N, Ti, Ev, nullptr, false, true, U);
        search(N, Ctx, Depth + 1);
        undoStep(N, Ti, Ev, nullptr, U);
      }
    }
  }

  const Traceset &T;
  EnumerationLimits Limits;
  bool MaximalOnly;
  const std::function<bool(const Interleaving &)> &Visit;
  ForkPolicy Forks; ///< adaptive fork-depth controller
  std::vector<ThreadId> Tids;
  std::unique_ptr<ThreadPool> Owned;
  ThreadPool *Pool = nullptr;
  ThreadPool::TaskGroup *Group = nullptr;
  std::atomic<uint64_t> VisitedCount{0};
  std::atomic<bool> StopFlag{false};
  std::mutex VisitM;
  std::mutex StatsM;
  EnumerationStats Stats;
};

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points: dispatch between the engines.
//===----------------------------------------------------------------------===//

EnumerationStats tracesafe::forEachExecution(
    const Traceset &T, const std::function<bool(const Interleaving &)> &Visit,
    EnumerationLimits Limits) {
  if (Limits.Workers == 1 || Limits.ExhaustiveOracle) {
    EnumerationStats Stats;
    Enumerator E(T, Limits);
    E.dfs(Visit, /*MaximalOnly=*/false, Stats);
    return Stats;
  }
  return VisitorSearch(T, Limits, /*MaximalOnly=*/false, Visit).run();
}

EnumerationStats tracesafe::forEachMaximalExecution(
    const Traceset &T, const std::function<bool(const Interleaving &)> &Visit,
    EnumerationLimits Limits) {
  if (Limits.Workers == 1 || Limits.ExhaustiveOracle) {
    EnumerationStats Stats;
    Enumerator E(T, Limits);
    E.dfs(Visit, /*MaximalOnly=*/true, Stats);
    return Stats;
  }
  return VisitorSearch(T, Limits, /*MaximalOnly=*/true, Visit).run();
}

std::set<Behaviour> tracesafe::collectBehaviours(const Traceset &T,
                                                 EnumerationLimits Limits,
                                                 EnumerationStats *Stats) {
  if (Limits.ExhaustiveOracle)
    return oracleCollectBehaviours(T, Limits, Stats);
  ReducedQuery Q(T, Limits, /*RaceMode=*/false);
  Q.run();
  if (Stats)
    *Stats = Q.Stats;
  return std::move(Q.Behaviours);
}

RaceReport tracesafe::findAdjacentRace(const Traceset &T,
                                       EnumerationLimits Limits) {
  if (Limits.ExhaustiveOracle)
    return oracleFindAdjacentRace(T, Limits);
  ReducedQuery Q(T, Limits, /*RaceMode=*/true);
  Q.run();
  RaceReport Report;
  Report.HasRace = Q.HasRace;
  Report.Witness = Q.Witness;
  Report.Stats = Q.Stats;
  return Report;
}

RaceReport tracesafe::findHappensBeforeRace(const Traceset &T,
                                            EnumerationLimits Limits) {
  RaceReport Report;
  Report.Stats = forEachMaximalExecution(
      T,
      [&](const Interleaving &I) {
        HappensBefore Hb(I);
        for (size_t A = 0; A < I.size(); ++A)
          for (size_t B = A + 1; B < I.size(); ++B) {
            if (I[A].Tid == I[B].Tid)
              continue;
            if (!I[A].Act.conflictsWith(I[B].Act))
              continue;
            if (!Hb.ordered(A, B) && !Hb.ordered(B, A)) {
              Report.HasRace = true;
              Report.Witness = I.prefix(B + 1);
              return false;
            }
          }
        return true;
      },
      Limits);
  return Report;
}

Verdict<Interleaving>
tracesafe::checkDataRaceFreedom(const Traceset &T, EnumerationLimits Limits) {
  RaceReport R = findAdjacentRace(T, Limits);
  if (R.HasRace)
    return Verdict<Interleaving>::refuted(R.Witness);
  if (R.Stats.Truncated)
    return Verdict<Interleaving>::unknown(R.Stats.Reason);
  return Verdict<Interleaving>::proved();
}

bool tracesafe::isDataRaceFree(const Traceset &T, EnumerationLimits Limits) {
  return checkDataRaceFreedom(T, Limits).isProved();
}
