#include "trace/Traceset.h"

#include <algorithm>
#include <cassert>

using namespace tracesafe;

void Traceset::insert(const Trace &T) {
  assert(!T.hasWildcards() && "tracesets hold concrete traces");
  assert(T.isProperlyStarted() && "trace must begin with a start action");
  assert(T.isWellLocked() && "trace must be well locked");
  // Insert longest-first; if a prefix is already present all shorter ones
  // are too (closure invariant).
  for (size_t N = T.size(); N > 0; --N) {
    auto [It, Inserted] = Traces.insert(T.prefix(N));
    (void)It;
    if (!Inserted)
      return;
  }
}

void Traceset::merge(const Traceset &Other) {
  Traces.insert(Other.Traces.begin(), Other.Traces.end());
}

bool Traceset::belongsTo(const Trace &Wildcard) const {
  for (const Trace &Inst : Wildcard.instances(Domain))
    if (!contains(Inst))
      return false;
  return true;
}

std::vector<Action> Traceset::successors(const Trace &Prefix) const {
  std::vector<Action> Out;
  // Traces sharing Prefix form a contiguous range starting at
  // upper_bound(Prefix) (Prefix itself sorts immediately before its proper
  // extensions in lexicographic order).
  for (auto It = Traces.upper_bound(Prefix); It != Traces.end(); ++It) {
    if (!Prefix.isPrefixOf(*It))
      break;
    if (It->size() == Prefix.size())
      continue;
    const Action &Next = (*It)[Prefix.size()];
    if (Out.empty() || Out.back() != Next)
      Out.push_back(Next);
  }
  return Out;
}

bool Traceset::hasExtension(const Trace &Prefix) const {
  auto It = Traces.upper_bound(Prefix);
  return It != Traces.end() && Prefix.isPrefixOf(*It);
}

std::vector<ThreadId> Traceset::entryPoints() const {
  std::vector<ThreadId> Out;
  for (const Action &A : successors(Trace()))
    if (A.isStart())
      Out.push_back(A.entry());
  return Out;
}

bool Traceset::hasOriginFor(Value V) const {
  // Only maximal traces need checking: if a prefix is an origin for V, so is
  // every extension; checking all traces is still correct but slower.
  for (const Trace &T : Traces)
    if (T.isOriginFor(V))
      return true;
  return false;
}

bool Traceset::validate(std::string *Err) const {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (!Traces.count(Trace()))
    return Fail("traceset does not contain the empty trace");
  for (const Trace &T : Traces) {
    if (T.hasWildcards())
      return Fail("traceset contains a wildcard trace: " + T.str());
    if (!T.isProperlyStarted())
      return Fail("trace not properly started: " + T.str());
    if (!T.isWellLocked())
      return Fail("trace not well locked: " + T.str());
    if (T.size() > 0 && !Traces.count(T.prefix(T.size() - 1)))
      return Fail("traceset not prefix-closed at: " + T.str());
  }
  return true;
}

std::vector<Trace> Traceset::maximalTraces() const {
  std::vector<Trace> Out;
  for (const Trace &T : Traces)
    if (!hasExtension(T))
      Out.push_back(T);
  return Out;
}

size_t Traceset::maxTraceLength() const {
  size_t Max = 0;
  for (const Trace &T : Traces)
    Max = std::max(Max, T.size());
  return Max;
}

std::string Traceset::str() const {
  std::string Out = "{\n";
  for (const Trace &T : maximalTraces())
    Out += "  " + T.str() + "\n";
  Out += "}";
  return Out;
}
