#include "trace/Trace.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace tracesafe;

Trace Trace::concat(const Trace &Other) const {
  std::vector<Action> Out = Actions;
  Out.insert(Out.end(), Other.Actions.begin(), Other.Actions.end());
  return Trace(std::move(Out));
}

Trace Trace::prefix(size_t N) const {
  N = std::min(N, Actions.size());
  return Trace(std::vector<Action>(Actions.begin(), Actions.begin() + N));
}

bool Trace::isPrefixOf(const Trace &Other) const {
  if (size() > Other.size())
    return false;
  return std::equal(Actions.begin(), Actions.end(), Other.Actions.begin());
}

Trace Trace::restrictTo(const std::vector<size_t> &SortedIndices) const {
  std::vector<Action> Out;
  Out.reserve(SortedIndices.size());
  for (size_t I : SortedIndices) {
    assert(I < Actions.size() && "restrictTo index out of range");
    Out.push_back(Actions[I]);
  }
  return Trace(std::move(Out));
}

bool Trace::hasWildcards() const {
  for (const Action &A : Actions)
    if (A.isWildcard())
      return true;
  return false;
}

std::vector<size_t> Trace::wildcardIndices() const {
  std::vector<size_t> Out;
  for (size_t I = 0; I < Actions.size(); ++I)
    if (Actions[I].isWildcard())
      Out.push_back(I);
  return Out;
}

bool Trace::hasInstance(const Trace &Concrete) const {
  if (size() != Concrete.size())
    return false;
  for (size_t I = 0; I < size(); ++I)
    if (!Actions[I].matchesInstance(Concrete[I]))
      return false;
  return true;
}

std::vector<Trace> Trace::instances(const std::vector<Value> &Domain) const {
  std::vector<Trace> Result;
  std::vector<size_t> Wild = wildcardIndices();
  if (Wild.empty()) {
    Result.push_back(*this);
    return Result;
  }
  // Odometer over Domain^|Wild|.
  std::vector<size_t> Counter(Wild.size(), 0);
  for (;;) {
    std::vector<Action> Out = Actions;
    for (size_t K = 0; K < Wild.size(); ++K)
      Out[Wild[K]] = Actions[Wild[K]].instantiate(Domain[Counter[K]]);
    Result.push_back(Trace(std::move(Out)));
    size_t K = 0;
    while (K < Counter.size() && ++Counter[K] == Domain.size())
      Counter[K++] = 0;
    if (K == Counter.size())
      break;
  }
  return Result;
}

bool Trace::isProperlyStarted() const {
  if (Actions.empty())
    return true;
  if (!Actions.front().isStart())
    return false;
  for (size_t I = 1; I < Actions.size(); ++I)
    if (Actions[I].isStart())
      return false;
  return true;
}

bool Trace::isWellLocked() const {
  std::map<SymbolId, int> Depth;
  for (const Action &A : Actions) {
    if (A.isLock())
      ++Depth[A.monitor()];
    else if (A.isUnlock()) {
      if (--Depth[A.monitor()] < 0)
        return false;
    }
  }
  return true;
}

bool Trace::hasReleaseAcquirePairBetween(size_t Lo, size_t Hi) const {
  assert(Hi <= Actions.size() && "range out of bounds");
  // Find the earliest release strictly after Lo, then any acquire strictly
  // after it and strictly before Hi.
  for (size_t R = Lo + 1; R + 1 < Hi; ++R) {
    if (!Actions[R].isRelease())
      continue;
    for (size_t A = R + 1; A < Hi; ++A)
      if (Actions[A].isAcquire())
        return true;
    return false; // Later releases only shrink the acquire window.
  }
  return false;
}

bool Trace::isOriginFor(Value V) const {
  for (size_t I = 0; I < Actions.size(); ++I) {
    const Action &A = Actions[I];
    bool Produces = (A.isWrite() && A.value() == V) ||
                    (A.isExternal() && A.value() == V);
    if (!Produces)
      continue;
    bool PrecededByRead = false;
    for (size_t J = 0; J < I; ++J)
      if (Actions[J].isRead() && !Actions[J].isWildcard() &&
          Actions[J].value() == V) {
        PrecededByRead = true;
        break;
      }
    if (!PrecededByRead)
      return true;
  }
  return false;
}

std::string Trace::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Actions.size());
  for (const Action &A : Actions)
    Parts.push_back(A.str());
  return "[" + join(Parts, ", ") + "]";
}
