#include "trace/HappensBefore.h"

#include <map>

using namespace tracesafe;

bool HappensBefore::isReleaseAcquirePair(const Action &A, const Action &B) {
  if (A.isUnlock() && B.isLock())
    return A.monitor() == B.monitor();
  if (A.isWrite() && A.isVolatileAccess() && B.isRead() &&
      B.isVolatileAccess())
    return A.location() == B.location();
  return false;
}

bool HappensBefore::programOrdered(const Interleaving &I, size_t A, size_t B) {
  return A <= B && I[A].Tid == I[B].Tid;
}

bool HappensBefore::synchronisesWith(const Interleaving &I, size_t A,
                                     size_t B) {
  return A < B && isReleaseAcquirePair(I[A].Act, I[B].Act);
}

std::string HappensBefore::toDot(const Interleaving &I) {
  std::string Out = "digraph hb {\n  rankdir=TB;\n";
  for (size_t K = 0; K < I.size(); ++K)
    Out += "  n" + std::to_string(K) + " [label=\"" +
           std::to_string(I[K].Tid) + ": " + I[K].Act.str() + "\"];\n";
  // Covering program-order edges: each event to the thread's next event.
  std::map<ThreadId, size_t> LastOf;
  for (size_t K = 0; K < I.size(); ++K) {
    auto It = LastOf.find(I[K].Tid);
    if (It != LastOf.end())
      Out += "  n" + std::to_string(It->second) + " -> n" +
             std::to_string(K) + ";\n";
    LastOf[I[K].Tid] = K;
  }
  for (size_t A = 0; A < I.size(); ++A)
    for (size_t B = A + 1; B < I.size(); ++B)
      if (synchronisesWith(I, A, B))
        Out += "  n" + std::to_string(A) + " -> n" + std::to_string(B) +
               " [style=dashed, label=\"sw\"];\n";
  Out += "}\n";
  return Out;
}

HappensBefore::HappensBefore(const Interleaving &I) {
  size_t N = I.size();
  Reach.assign(N, std::vector<bool>(N, false));
  for (size_t A = 0; A < N; ++A)
    for (size_t B = A; B < N; ++B)
      if (programOrdered(I, A, B) || synchronisesWith(I, A, B))
        Reach[A][B] = true;
  // Transitive closure. Both base relations only relate i <= j, so a simple
  // forward dynamic-programming pass suffices: process targets in increasing
  // order and extend paths through intermediate nodes.
  for (size_t K = 0; K < N; ++K)
    for (size_t A = 0; A <= K; ++A) {
      if (!Reach[A][K])
        continue;
      for (size_t B = K; B < N; ++B)
        if (Reach[K][B])
          Reach[A][B] = true;
    }
}
