//===----------------------------------------------------------------------===//
///
/// \file
/// Word encodings shared by the interned search engines.
///
/// The parallel engines (SC traceset enumeration in trace/Enumerate.cpp,
/// the TSO/PSO store-buffer machines in tso/BufferedEngine.cpp) and the
/// cross-query behaviour cache all encode actions, events and states as
/// short spans of uint64 words interned in an InternPool. The tag
/// constants and the one-word action packing live here so every client
/// agrees on the encoding — a traceset fingerprinted by the cache must
/// hash the same action words the engines intern.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACE_ACTIONWORD_H
#define TRACESAFE_TRACE_ACTIONWORD_H

#include "trace/Action.h"

#include <cassert>
#include <cstdint>

namespace tracesafe {

/// Span kind tags (top bits of the first word) keep the trie/event/state
/// encodings from colliding inside a shared intern pool.
inline constexpr uint64_t TagTrace = 0x1ULL << 62;
inline constexpr uint64_t TagEvent = 0x2ULL << 62;
inline constexpr uint64_t TagState = 0x3ULL << 62;

/// Set in the first word of store-buffer *drain* events (tso/), which have
/// no Action of their own, so they can never collide with instruction
/// events of the same thread.
inline constexpr uint64_t DrainBit = 1ULL << 48;

/// One action packed into a word: kind | volatile | wildcard | id | value.
inline uint64_t actionWord(const Action &A) {
  uint64_t Id = 0;
  uint64_t Val = 0;
  switch (A.kind()) {
  case ActionKind::Start:
    Id = A.entry();
    break;
  case ActionKind::Read:
    Id = A.location();
    if (!A.isWildcard())
      Val = static_cast<uint32_t>(A.value());
    break;
  case ActionKind::Write:
    Id = A.location();
    Val = static_cast<uint32_t>(A.value());
    break;
  case ActionKind::Lock:
  case ActionKind::Unlock:
    Id = A.monitor();
    break;
  case ActionKind::External:
    Val = static_cast<uint32_t>(A.value());
    break;
  }
  assert(Id < (1ULL << 25) && "symbol id exceeds action-word encoding");
  return (static_cast<uint64_t>(A.kind()) << 59) |
         (static_cast<uint64_t>(A.isVolatileAccess()) << 58) |
         (static_cast<uint64_t>(A.isWildcard()) << 57) | (Id << 32) | Val;
}

} // namespace tracesafe

#endif // TRACESAFE_TRACE_ACTIONWORD_H
