//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive enumeration of the executions of a traceset (§3).
///
/// Executions are sequentially consistent interleavings of a traceset. The
/// enumerator does a DFS over global states: each step picks a thread whose
/// current trace can be extended inside the traceset by an action that is
/// enabled (reads must see the most recent write or the default value; locks
/// require that no other thread holds the monitor). Because tracesets are
/// prefix-closed and finite, the search is finite.
///
/// Two memoised derived queries are provided: the set of observable
/// behaviours, and adjacent-conflict data-race detection. Both are the
/// workhorses of the DRF-guarantee experiments. By default they run on
/// the parallel engine: hash-consed interned states, sleep-set
/// partial-order reduction, and a work-stealing frontier split across
/// EnumerationLimits::Workers threads with early-exit broadcast. The
/// seed's sequential exhaustive enumerator is retained behind
/// EnumerationLimits::ExhaustiveOracle as a cross-check oracle; verdicts
/// are identical by construction (see docs/PERFORMANCE.md for the
/// soundness argument).
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACE_ENUMERATE_H
#define TRACESAFE_TRACE_ENUMERATE_H

#include "support/Budget.h"
#include "trace/Interleaving.h"

#include <cstdint>
#include <functional>
#include <set>

namespace tracesafe {

/// Safety rails and engine selection for the searches. A truncated result
/// means the query is *unknown*, never silently wrong; callers (and all
/// tests) check the flag.
struct EnumerationLimits {
  /// Upper bound on interleaving length (tracesets generated from loops can
  /// be deep).
  size_t MaxEvents = 256;
  /// Upper bound on DFS node expansions across the whole query.
  uint64_t MaxVisited = 50'000'000;
  /// Optional shared query budget (deadline / visit / memory caps across
  /// every engine of one query). Non-owning; may be null.
  Budget *Shared = nullptr;
  /// Search workers: 1 = sequential in the calling thread; 0 = the shared
  /// work-stealing pool at its default width (TRACESAFE_WORKERS or
  /// hardware concurrency); N > 1 = exactly N-wide forking on the shared
  /// pool. Verdicts and behaviour sets are identical for every width.
  unsigned Workers = 1;
  /// Sleep-set partial-order reduction for collectBehaviours and
  /// findAdjacentRace. Sound for both queries (see docs/PERFORMANCE.md);
  /// the visitor-based enumerations never prune.
  bool SleepSets = true;
  /// Source-set (persistent-set) reduction layered on top of sleep sets:
  /// at each state, expansion is restricted to one dependence-closed group
  /// of threads whose *future* actions cannot interact with the other
  /// groups'. Applies to collectBehaviours and findAdjacentRace alike:
  /// although the race predicate is state-local and reduction skips
  /// states, every skipped state that would fire the predicate has a
  /// witness in the explored subtree — the racing pair's dependence group
  /// either is the chosen group (then the predicate already fires at the
  /// restriction point) or is disjoint from it (then the pair is still
  /// adjacent-enabled after the group's steps). See docs/PERFORMANCE.md
  /// and the proof comment in trace/Enumerate.cpp for the full argument.
  bool SourceSets = true;
  /// Run the seed's sequential std::set-memoised engine instead of the
  /// parallel interned one. Cross-check oracle: equivalence tests assert
  /// verdict-identical results between the two.
  bool ExhaustiveOracle = false;
};

/// Bookkeeping returned by every enumeration query.
struct EnumerationStats {
  uint64_t Visited = 0;
  bool Truncated = false;
  /// Why the search was truncated (None when !Truncated).
  TruncationReason Reason = TruncationReason::None;

  void truncate(TruncationReason R) {
    Truncated = true;
    Reason = mergeReason(Reason, R);
  }
};

/// Visits every execution of \p T in DFS order (each execution prefix is
/// itself an execution and is visited once per DFS path). Returning false
/// from \p Visit stops the search. No memoisation: intended for small
/// tracesets and for tests that need the raw execution stream.
EnumerationStats
forEachExecution(const Traceset &T,
                 const std::function<bool(const Interleaving &)> &Visit,
                 EnumerationLimits Limits = {});

/// Visits every *maximal* execution (one that no enabled action extends).
EnumerationStats
forEachMaximalExecution(const Traceset &T,
                        const std::function<bool(const Interleaving &)> &Visit,
                        EnumerationLimits Limits = {});

/// The set of behaviours of all executions of \p T. Prefix-closed by
/// construction (includes the empty behaviour). Memoised on global states,
/// so it is usually far cheaper than enumerating executions.
std::set<Behaviour> collectBehaviours(const Traceset &T,
                                      EnumerationLimits Limits = {},
                                      EnumerationStats *Stats = nullptr);

/// Result of a data-race search.
struct RaceReport {
  bool HasRace = false;
  /// A witness execution ending in the adjacent conflicting pair (valid only
  /// when HasRace).
  Interleaving Witness;
  EnumerationStats Stats;
};

/// §3 data race freedom, primary definition: searches all executions for two
/// adjacent conflicting actions of different threads.
RaceReport findAdjacentRace(const Traceset &T, EnumerationLimits Limits = {});

/// Alternative definition via happens-before: searches maximal executions
/// for a conflicting pair unordered by happens-before. The paper cites the
/// equivalence of the two definitions; tests assert it on every program in
/// the suite. In the HB witness the two conflicting actions are the last
/// pair checked, not necessarily adjacent.
RaceReport findHappensBeforeRace(const Traceset &T,
                                 EnumerationLimits Limits = {});

/// Tri-state DRF query: Proved (no adjacent race, exhaustive search),
/// Refuted (race found; the witness interleaving ends in the conflicting
/// pair), or Unknown (search truncated before an answer). A found race is
/// definitive even under truncation.
Verdict<Interleaving> checkDataRaceFreedom(const Traceset &T,
                                           EnumerationLimits Limits = {});

/// Convenience wrapper: true iff the traceset is *proved* race free. A
/// truncated search returns false (conservative "not proved"), never
/// asserts; callers that must distinguish Refuted from Unknown use
/// checkDataRaceFreedom.
bool isDataRaceFree(const Traceset &T, EnumerationLimits Limits = {});

} // namespace tracesafe

#endif // TRACESAFE_TRACE_ENUMERATE_H
