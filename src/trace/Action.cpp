#include "trace/Action.h"

using namespace tracesafe;

Action Action::mkStart(ThreadId Entry) {
  return Action(ActionKind::Start, static_cast<SymbolId>(Entry), 0,
                /*Volatile=*/false, /*Wildcard=*/false);
}

Action Action::mkRead(SymbolId Loc, Value V, bool Volatile) {
  return Action(ActionKind::Read, Loc, V, Volatile, /*Wildcard=*/false);
}

Action Action::mkWildcardRead(SymbolId Loc, bool Volatile) {
  return Action(ActionKind::Read, Loc, 0, Volatile, /*Wildcard=*/true);
}

Action Action::mkWrite(SymbolId Loc, Value V, bool Volatile) {
  return Action(ActionKind::Write, Loc, V, Volatile, /*Wildcard=*/false);
}

Action Action::mkLock(SymbolId Mon) {
  return Action(ActionKind::Lock, Mon, 0, /*Volatile=*/false,
                /*Wildcard=*/false);
}

Action Action::mkUnlock(SymbolId Mon) {
  return Action(ActionKind::Unlock, Mon, 0, /*Volatile=*/false,
                /*Wildcard=*/false);
}

Action Action::mkExternal(Value V) {
  return Action(ActionKind::External, 0, V, /*Volatile=*/false,
                /*Wildcard=*/false);
}

std::string Action::str() const {
  switch (Kind) {
  case ActionKind::Start:
    return "S(" + std::to_string(Id) + ")";
  case ActionKind::Read: {
    std::string K = Volatile ? "Rv" : "R";
    std::string V = Wildcard ? "*" : std::to_string(Val);
    return K + "[" + Symbol::name(Id) + "=" + V + "]";
  }
  case ActionKind::Write: {
    std::string K = Volatile ? "Wv" : "W";
    return K + "[" + Symbol::name(Id) + "=" + std::to_string(Val) + "]";
  }
  case ActionKind::Lock:
    return "L[" + Symbol::name(Id) + "]";
  case ActionKind::Unlock:
    return "U[" + Symbol::name(Id) + "]";
  case ActionKind::External:
    return "X(" + std::to_string(Val) + ")";
  }
  return "<invalid>";
}
