//===----------------------------------------------------------------------===//
///
/// \file
/// Interleavings and executions (§3).
///
/// An interleaving is a sequence of (thread id, action) pairs. An
/// interleaving of a traceset T additionally has each thread's projection in
/// T, consistent entry points, and respects mutual exclusion. A sequentially
/// consistent interleaving (every read sees the most recent write, or the
/// default value) of T is an *execution* of T.
///
/// Wildcard interleavings (used by the unelimination construction, §5) are
/// interleavings containing wildcard reads; their unique instance replaces
/// each wildcard with the most-recent-write value.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACE_INTERLEAVING_H
#define TRACESAFE_TRACE_INTERLEAVING_H

#include "trace/Traceset.h"

#include <compare>
#include <optional>
#include <string>
#include <vector>

namespace tracesafe {

/// One interleaving element: the paper's pair p = (tau, a) with projections
/// T(p) and A(p).
struct Event {
  ThreadId Tid;
  Action Act;

  friend auto operator<=>(const Event &, const Event &) = default;
};

/// Externally observable behaviour: the sequence of external-action values
/// of an interleaving.
using Behaviour = std::vector<Value>;

class Interleaving {
public:
  Interleaving() = default;
  explicit Interleaving(std::vector<Event> Events)
      : Events(std::move(Events)) {}

  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  const Event &operator[](size_t I) const { return Events[I]; }
  std::vector<Event>::const_iterator begin() const { return Events.begin(); }
  std::vector<Event>::const_iterator end() const { return Events.end(); }

  void push_back(const Event &E) { Events.push_back(E); }
  void pop_back() { Events.pop_back(); }

  Interleaving prefix(size_t N) const;

  /// The trace of thread \p Tid: [A(p) | p in I, T(p) = Tid].
  Trace traceOf(ThreadId Tid) const;

  /// All thread ids occurring in the interleaving.
  std::vector<ThreadId> threads() const;

  /// §3: every start action S(e) is performed by thread e, and it is that
  /// thread's first action.
  bool entryPointsConsistent() const;

  /// §3 lock validity: position i with A(Ii) = L[m] requires that every
  /// *other* thread has performed equally many locks and unlocks of m
  /// before i.
  bool respectsMutualExclusion() const;

  /// Index of the write seen by the read at position \p R: the latest
  /// earlier write to the same location. std::nullopt when the read sees
  /// the default value (no earlier write). Asserts that position R is a
  /// concrete read.
  std::optional<size_t> mostRecentWriteBefore(size_t R) const;

  /// §3: position \p I sees the most recent write (trivially true for
  /// non-reads; reads must return the latest write's value, or the default
  /// value when none exists). Wildcard reads never "see" anything and
  /// return true here (their instance fixes the value).
  bool seesMostRecentWrite(size_t I) const;

  /// §3: sequential consistency = every position sees the most recent write.
  bool isSequentiallyConsistent() const;

  /// Interleaving-of-T check: projections in T (for wildcard interleavings,
  /// belongs-to T), consistent entry points, mutual exclusion.
  bool isInterleavingOf(const Traceset &T) const;

  /// Execution = sequentially consistent interleaving of T.
  bool isExecutionOf(const Traceset &T) const;

  /// True iff some element is a wildcard read.
  bool hasWildcards() const;

  /// §4: the unique instance of a wildcard interleaving — each wildcard
  /// read replaced by the most recent write's value (or the default).
  Interleaving instance() const;

  /// §3 data race: two *adjacent* conflicting actions from different
  /// threads. Returns the index of the first element of the first such
  /// pair.
  std::optional<size_t> findAdjacentRace() const;

  /// Projection to external actions.
  Behaviour behaviour() const;

  std::string str() const;

  const std::vector<Event> &events() const { return Events; }

  friend auto operator<=>(const Interleaving &, const Interleaving &) =
      default;

private:
  std::vector<Event> Events;
};

} // namespace tracesafe

#endif // TRACESAFE_TRACE_INTERLEAVING_H
