//===----------------------------------------------------------------------===//
///
/// \file
/// Tracesets — programs as prefix-closed sets of thread traces (§3).
///
/// A traceset must be prefix-closed, well locked and properly started. The
/// class maintains prefix closure on insertion and exposes the queries the
/// rest of the library needs: membership, successor actions of a prefix
/// (used by the execution enumerator), "wildcard trace belongs-to T" (§4),
/// entry points, and value origins (§5).
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACE_TRACESET_H
#define TRACESAFE_TRACE_TRACESET_H

#include "trace/Trace.h"

#include <set>
#include <string>
#include <vector>

namespace tracesafe {

/// A prefix-closed set of (concrete) traces plus the value domain the set
/// was generated over. The domain is needed to decide "belongs-to" for
/// wildcard traces: a wildcard trace belongs-to T iff *all* of its instances
/// over the domain are in T.
class Traceset {
public:
  Traceset() = default;
  explicit Traceset(std::vector<Value> Domain) : Domain(std::move(Domain)) {}

  /// Inserts \p T together with all of its prefixes. \p T must be concrete
  /// (no wildcards), properly started and well locked.
  void insert(const Trace &T);

  /// Set-union with \p Other (prefix closure is preserved: a union of
  /// prefix-closed sets is prefix-closed). Used by the parallel explorer
  /// to combine per-thread tracesets; the domain is left unchanged.
  void merge(const Traceset &Other);

  /// Membership of a concrete trace.
  bool contains(const Trace &T) const { return Traces.count(T) != 0; }

  /// §4: a wildcard trace belongs-to T iff T contains all its instances
  /// over the value domain. Concrete traces degrade to contains().
  bool belongsTo(const Trace &Wildcard) const;

  /// All actions a such that Prefix ++ [a] is in the set. Deduplicated and
  /// sorted. Contiguous-range scan over the ordered set, so this costs
  /// O(log n + matches).
  std::vector<Action> successors(const Trace &Prefix) const;

  /// True iff some trace in the set strictly extends \p Prefix.
  bool hasExtension(const Trace &Prefix) const;

  /// Thread identifiers e with [S(e)] in the set.
  std::vector<ThreadId> entryPoints() const;

  /// §5: true iff some trace in the set is an origin for \p V.
  bool hasOriginFor(Value V) const;

  /// Structural validation (prefix closure is maintained by construction;
  /// this re-checks everything and reports the first violation).
  bool validate(std::string *Err = nullptr) const;

  const std::set<Trace> &traces() const { return Traces; }
  const std::vector<Value> &domain() const { return Domain; }
  void setDomain(std::vector<Value> D) { Domain = std::move(D); }

  size_t size() const { return Traces.size(); }

  /// Maximal traces (no strict extension in the set); handy for printing.
  std::vector<Trace> maximalTraces() const;

  /// Longest trace length in the set.
  size_t maxTraceLength() const;

  std::string str() const;

  friend bool operator==(const Traceset &A, const Traceset &B) {
    return A.Traces == B.Traces;
  }

private:
  std::set<Trace> Traces{Trace()}; ///< Always contains the empty trace.
  std::vector<Value> Domain{0, 1}; ///< Default domain {0,1}.
};

} // namespace tracesafe

#endif // TRACESAFE_TRACE_TRACESET_H
