#include "trace/Interleaving.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace tracesafe;

Interleaving Interleaving::prefix(size_t N) const {
  N = std::min(N, Events.size());
  return Interleaving(std::vector<Event>(Events.begin(), Events.begin() + N));
}

Trace Interleaving::traceOf(ThreadId Tid) const {
  Trace Out;
  for (const Event &E : Events)
    if (E.Tid == Tid)
      Out.push_back(E.Act);
  return Out;
}

std::vector<ThreadId> Interleaving::threads() const {
  std::vector<ThreadId> Out;
  for (const Event &E : Events)
    if (std::find(Out.begin(), Out.end(), E.Tid) == Out.end())
      Out.push_back(E.Tid);
  return Out;
}

bool Interleaving::entryPointsConsistent() const {
  std::map<ThreadId, bool> Started;
  for (const Event &E : Events) {
    if (E.Act.isStart()) {
      if (E.Act.entry() != E.Tid)
        return false;
      if (Started[E.Tid])
        return false;
      Started[E.Tid] = true;
    } else if (!Started[E.Tid]) {
      return false;
    }
  }
  return true;
}

bool Interleaving::respectsMutualExclusion() const {
  // Balance[{Tid, Mon}] = #locks - #unlocks so far.
  std::map<std::pair<ThreadId, SymbolId>, int> Balance;
  for (const Event &E : Events) {
    if (E.Act.isLock()) {
      SymbolId M = E.Act.monitor();
      for (const auto &[Key, Bal] : Balance)
        if (Key.second == M && Key.first != E.Tid && Bal != 0)
          return false;
      ++Balance[{E.Tid, M}];
    } else if (E.Act.isUnlock()) {
      --Balance[{E.Tid, E.Act.monitor()}];
    }
  }
  return true;
}

std::optional<size_t> Interleaving::mostRecentWriteBefore(size_t R) const {
  assert(R < Events.size() && Events[R].Act.isRead() &&
         "mostRecentWriteBefore requires a read position");
  SymbolId Loc = Events[R].Act.location();
  for (size_t I = R; I > 0; --I)
    if (Events[I - 1].Act.isWrite() && Events[I - 1].Act.location() == Loc)
      return I - 1;
  return std::nullopt;
}

bool Interleaving::seesMostRecentWrite(size_t I) const {
  const Action &A = Events[I].Act;
  if (!A.isRead() || A.isWildcard())
    return true;
  std::optional<size_t> W = mostRecentWriteBefore(I);
  if (W)
    return Events[*W].Act.value() == A.value();
  return A.value() == DefaultValue;
}

bool Interleaving::isSequentiallyConsistent() const {
  // Single left-to-right pass with current memory contents.
  std::map<SymbolId, Value> Mem;
  for (const Event &E : Events) {
    const Action &A = E.Act;
    if (A.isWrite()) {
      Mem[A.location()] = A.value();
    } else if (A.isRead() && !A.isWildcard()) {
      auto It = Mem.find(A.location());
      Value Expected = It == Mem.end() ? DefaultValue : It->second;
      if (A.value() != Expected)
        return false;
    }
  }
  return true;
}

bool Interleaving::isInterleavingOf(const Traceset &T) const {
  if (!entryPointsConsistent() || !respectsMutualExclusion())
    return false;
  for (ThreadId Tid : threads())
    if (!T.belongsTo(traceOf(Tid)))
      return false;
  return true;
}

bool Interleaving::isExecutionOf(const Traceset &T) const {
  return isSequentiallyConsistent() && isInterleavingOf(T);
}

bool Interleaving::hasWildcards() const {
  for (const Event &E : Events)
    if (E.Act.isWildcard())
      return true;
  return false;
}

Interleaving Interleaving::instance() const {
  std::map<SymbolId, Value> Mem;
  std::vector<Event> Out;
  Out.reserve(Events.size());
  for (const Event &E : Events) {
    Action A = E.Act;
    if (A.isWrite()) {
      Mem[A.location()] = A.value();
    } else if (A.isRead() && A.isWildcard()) {
      auto It = Mem.find(A.location());
      A = A.instantiate(It == Mem.end() ? DefaultValue : It->second);
    }
    Out.push_back(Event{E.Tid, A});
  }
  return Interleaving(std::move(Out));
}

std::optional<size_t> Interleaving::findAdjacentRace() const {
  for (size_t I = 0; I + 1 < Events.size(); ++I) {
    if (Events[I].Tid == Events[I + 1].Tid)
      continue;
    if (Events[I].Act.conflictsWith(Events[I + 1].Act))
      return I;
  }
  return std::nullopt;
}

Behaviour Interleaving::behaviour() const {
  Behaviour Out;
  for (const Event &E : Events)
    if (E.Act.isExternal())
      Out.push_back(E.Act.value());
  return Out;
}

std::string Interleaving::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Events.size());
  for (const Event &E : Events)
    Parts.push_back("(" + std::to_string(E.Tid) + "," + E.Act.str() + ")");
  return "[" + join(Parts, ", ") + "]";
}
