//===----------------------------------------------------------------------===//
///
/// \file
/// Memory actions — the alphabet of the trace semantics (paper §2, §3).
///
/// The paper's actions are: R[l=v] read, W[l=v] write, L[m] lock, U[m]
/// unlock, X(v) external (input/output), S(e) thread start with entry point
/// e. Wildcard traces additionally contain wildcard reads R[l=*] whose value
/// is irrelevant (§4, eliminations).
///
/// Volatility is a property of locations in a program; we record it on each
/// access so that classification of an action (acquire/release/normal) is a
/// local question, exactly as in the paper's terminology of §3:
///   - acquire  = lock or volatile read,
///   - release  = unlock or volatile write,
///   - synchronisation action = acquire or release,
///   - normal access = access to a non-volatile location.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACE_ACTION_H
#define TRACESAFE_TRACE_ACTION_H

#include "support/Symbol.h"

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

namespace tracesafe {

/// Values are the naturals in the paper; int is convenient and the library
/// only ever manufactures non-negative values.
using Value = int32_t;

/// Thread identifiers double as entry points (threads are static, §3).
using ThreadId = uint32_t;

/// Default value of every location (paper: all locations zero-initialised).
inline constexpr Value DefaultValue = 0;

/// The six action kinds of the paper plus nothing else; wildcardness is a
/// flag on reads, not a separate kind.
enum class ActionKind : uint8_t {
  Start,    ///< S(e) — first action of every thread.
  Read,     ///< R[l=v] or wildcard R[l=*].
  Write,    ///< W[l=v].
  Lock,     ///< L[m].
  Unlock,   ///< U[m].
  External, ///< X(v) — observable input/output.
};

/// A single memory action. Value-type, 16 bytes, totally ordered so traces
/// can live in ordered sets.
class Action {
public:
  /// S(\p Entry): thread start carrying its entry point.
  static Action mkStart(ThreadId Entry);
  /// R[\p Loc = \p V]; \p Volatile marks an access to a volatile location.
  static Action mkRead(SymbolId Loc, Value V, bool Volatile = false);
  /// R[\p Loc = *]: wildcard read used in wildcard traces (§4).
  static Action mkWildcardRead(SymbolId Loc, bool Volatile = false);
  /// W[\p Loc = \p V].
  static Action mkWrite(SymbolId Loc, Value V, bool Volatile = false);
  /// L[\p Mon].
  static Action mkLock(SymbolId Mon);
  /// U[\p Mon].
  static Action mkUnlock(SymbolId Mon);
  /// X(\p V).
  static Action mkExternal(Value V);

  ActionKind kind() const { return Kind; }

  /// Location of a read/write. Asserts isMemoryAccess().
  SymbolId location() const {
    assert(isMemoryAccess() && "location() on non-access");
    return Id;
  }

  /// Monitor of a lock/unlock. Asserts lock or unlock.
  SymbolId monitor() const {
    assert((Kind == ActionKind::Lock || Kind == ActionKind::Unlock) &&
           "monitor() on non-synchronisation action");
    return Id;
  }

  /// Entry point of a start action.
  ThreadId entry() const {
    assert(Kind == ActionKind::Start && "entry() on non-start action");
    return static_cast<ThreadId>(Id);
  }

  /// Value of a concrete read, a write, or an external action.
  Value value() const {
    assert((Kind == ActionKind::Write || Kind == ActionKind::External ||
            (Kind == ActionKind::Read && !Wildcard)) &&
           "value() on an action without a concrete value");
    return Val;
  }

  bool isWildcard() const { return Wildcard; }
  bool isVolatileAccess() const { return Volatile; }

  bool isStart() const { return Kind == ActionKind::Start; }
  bool isRead() const { return Kind == ActionKind::Read; }
  bool isWrite() const { return Kind == ActionKind::Write; }
  bool isLock() const { return Kind == ActionKind::Lock; }
  bool isUnlock() const { return Kind == ActionKind::Unlock; }
  bool isExternal() const { return Kind == ActionKind::External; }

  /// Memory access = read or write (to any location).
  bool isMemoryAccess() const { return isRead() || isWrite(); }
  /// Normal access = access to a non-volatile location.
  bool isNormalAccess() const { return isMemoryAccess() && !Volatile; }
  /// Acquire = lock or volatile read (§3).
  bool isAcquire() const { return isLock() || (isRead() && Volatile); }
  /// Release = unlock or volatile write (§3).
  bool isRelease() const { return isUnlock() || (isWrite() && Volatile); }
  /// Synchronisation action = acquire or release.
  bool isSynchronisation() const { return isAcquire() || isRelease(); }

  /// §3: two actions conflict iff they access the same *non-volatile*
  /// location and at least one is a write. Wildcard reads access their
  /// location like any read.
  bool conflictsWith(const Action &Other) const {
    if (!isNormalAccess() || !Other.isNormalAccess())
      return false;
    if (location() != Other.location())
      return false;
    return isWrite() || Other.isWrite();
  }

  /// Instance matching: a concrete action is an instance of this action if
  /// they are equal, or this is a wildcard read and the other is a concrete
  /// read of the same location with the same volatility.
  bool matchesInstance(const Action &Concrete) const {
    if (*this == Concrete)
      return true;
    return Wildcard && Concrete.isRead() && !Concrete.isWildcard() &&
           isRead() && Id == Concrete.Id && Volatile == Concrete.Volatile;
  }

  /// The concrete read obtained by plugging \p V into a wildcard read.
  Action instantiate(Value V) const {
    assert(Wildcard && "instantiate() on a non-wildcard action");
    return mkRead(Id, V, Volatile);
  }

  friend auto operator<=>(const Action &, const Action &) = default;

  /// Paper-style rendering: "R[x=1]", "W[y=0]", "Rv[v=*]", "L[m]", "U[m]",
  /// "X(1)", "S(0)". Volatile accesses get a 'v' suffix on the kind letter.
  std::string str() const;

private:
  Action(ActionKind K, SymbolId Id, Value V, bool Volatile, bool Wildcard)
      : Kind(K), Volatile(Volatile), Wildcard(Wildcard), Id(Id), Val(V) {}

  ActionKind Kind;
  bool Volatile;
  bool Wildcard;
  SymbolId Id;  ///< Location, monitor, or entry point depending on Kind.
  Value Val;    ///< Value for reads/writes/externals; 0 otherwise.
};

} // namespace tracesafe

#endif // TRACESAFE_TRACE_ACTION_H
