//===----------------------------------------------------------------------===//
///
/// \file
/// The happens-before partial order of an interleaving (§3).
///
/// Program order relates positions of the same thread; i synchronises-with j
/// when i < j and (A(Ii), A(Ij)) is a release-acquire pair: unlock/lock of
/// the same monitor, or volatile write/volatile read of the same location.
/// Happens-before is the transitive closure of their union. It is used for
/// the alternative data-race-freedom definition and for the internal
/// consistency checks of the transformation proofs.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_TRACE_HAPPENSBEFORE_H
#define TRACESAFE_TRACE_HAPPENSBEFORE_H

#include "trace/Interleaving.h"

#include <vector>

namespace tracesafe {

/// Reachability matrix of the happens-before order of one interleaving.
/// Quadratic in the interleaving length, which is fine for the exhaustively
/// enumerated executions this library works with.
class HappensBefore {
public:
  explicit HappensBefore(const Interleaving &I);

  /// i <=hb j (reflexive on equal indices by program order).
  bool ordered(size_t I, size_t J) const { return Reach[I][J]; }

  /// i <=po j: same thread and i <= j.
  static bool programOrdered(const Interleaving &I, size_t A, size_t B);

  /// i <sw j: release-acquire pair with i < j.
  static bool synchronisesWith(const Interleaving &I, size_t A, size_t B);

  /// §3: a and b form a release-acquire pair (a unlock of m / b lock of m,
  /// or a volatile write of l / b volatile read of l).
  static bool isReleaseAcquirePair(const Action &A, const Action &B);

  size_t size() const { return Reach.size(); }

  /// Graphviz dot rendering of the order's covering edges over \p I
  /// (program-order edges solid, synchronises-with edges dashed); handy
  /// for debugging race reports and for documentation.
  static std::string toDot(const Interleaving &I);

private:
  std::vector<std::vector<bool>> Reach;
};

} // namespace tracesafe

#endif // TRACESAFE_TRACE_HAPPENSBEFORE_H
