#include "verify/Theorems.h"

#include "lang/Printer.h"

using namespace tracesafe;

bool tracesafe::isEliminationRule(RuleKind Kind) {
  switch (Kind) {
  case RuleKind::ERaR:
  case RuleKind::ERaW:
  case RuleKind::EWaR:
  case RuleKind::EWbW:
  case RuleKind::EIr:
    return true;
  default:
    return false;
  }
}

bool TheoremCaseReport::truncatedAnywhere() const {
  if (Drf.Truncated || ThinAir.Truncated)
    return true;
  for (const StepVerification &S : Steps)
    if (S.Semantic == CheckVerdict::Unknown)
      return true;
  return false;
}

bool TheoremCaseReport::allHold() const {
  if (!Drf.holds())
    return false;
  if (!ThinAir.holds() && !ThinAir.Truncated)
    return false;
  if (truncatedAnywhere())
    return false;
  for (const StepVerification &S : Steps)
    if (S.Semantic != CheckVerdict::Holds)
      return false;
  return true;
}

std::string TheoremCaseReport::summary() const {
  std::string Out;
  Out += "DRF guarantee: ";
  Out += guaranteeOutcomeName(Drf.outcome());
  Out += Drf.OriginalDrf ? " (original DRF)" : " (original racy; vacuous)";
  Out += "\nthin-air (c=" + std::to_string(ThinAir.Constant) +
         "): " + guaranteeOutcomeName(ThinAir.outcome());
  for (const StepVerification &S : Steps)
    Out += "\nstep " + S.Site.str() + ": " + checkVerdictName(S.Semantic);
  if (truncatedAnywhere())
    Out += "\n(truncated somewhere: verdicts may be Unknown)";
  return Out;
}

TheoremCaseReport
tracesafe::checkTheoremsOnChain(const Program &Orig,
                                const TransformChain &Chain,
                                const TheoremCheckOptions &Options) {
  TheoremCaseReport Report;
  Report.Drf = checkDrfGuarantee(Orig, Chain.Result, Options.Exec);
  if (Options.CheckThinAir) {
    Value C = freshConstantFor(Orig);
    Report.ThinAir =
        checkThinAir(Orig, Chain.Result, C, Options.Exec, Options.Explore);
  } else {
    Report.ThinAir.OrigContainsConstant = true; // Vacuous.
  }
  if (!Options.VerifySemanticSteps)
    return Report;

  // Re-walk the chain, verifying each step at the traceset level. One
  // shared domain (from the original program) keeps the tracesets of all
  // chain members comparable.
  std::vector<Value> Domain = defaultDomainFor(Orig, 2);
  Program Cur = Orig;
  ExploreStats Stats;
  Traceset CurSet = programTraceset(Cur, Domain, Options.Explore, &Stats);
  for (const RewriteSite &Site : Chain.Steps) {
    Program Next = applyRewrite(Cur, Site);
    ExploreStats NextStats;
    Traceset NextSet =
        programTraceset(Next, Domain, Options.Explore, &NextStats);
    StepVerification Step;
    Step.Site = Site;
    if (Stats.Truncated || NextStats.Truncated) {
      Step.Semantic = CheckVerdict::Unknown;
    } else if (isEliminationRule(Site.Rule)) {
      Step.Semantic = checkElimination(CurSet, NextSet, Options.Elim).Verdict;
    } else {
      Step.Semantic = checkEliminationThenReordering(CurSet, NextSet,
                                                     Options.Elim,
                                                     Options.Reorder)
                          .Verdict;
    }
    Report.Steps.push_back(std::move(Step));
    Cur = std::move(Next);
    CurSet = std::move(NextSet);
    Stats = NextStats;
  }
  return Report;
}
