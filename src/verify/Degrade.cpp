#include "verify/Degrade.h"

#include "verify/BehaviourCache.h"

using namespace tracesafe;

std::string DegradeReport::str() const {
  if (!PrimaryFaulted)
    return "primary ok (" + std::to_string(PrimaryElapsedMs) + "ms/" +
           std::to_string(PrimaryVisited) + " states)";
  std::string Out = "primary " +
                    std::string(truncationReasonName(PrimaryReason)) +
                    " after " + std::to_string(PrimaryElapsedMs) + "ms/" +
                    std::to_string(PrimaryVisited) + " states";
  if (!FellBack)
    return Out + "; no fallback";
  Out += "; oracle fallback ";
  Out += FallbackReason == TruncationReason::None
             ? "answered"
             : std::string("truncated (") +
                   truncationReasonName(FallbackReason) + ")";
  Out += " in " + std::to_string(FallbackElapsedMs) + "ms/" +
         std::to_string(FallbackVisited) + " states";
  return Out;
}

BudgetSpec tracesafe::remainingBudget(const BudgetSpec &Spec,
                                      const Budget &Used) {
  BudgetSpec Out = Spec;
  if (Spec.DeadlineMs > 0) {
    int64_t Left = Spec.DeadlineMs - Used.elapsedMs();
    Out.DeadlineMs = Left > 0 ? Left : 1;
  }
  if (Spec.MaxVisited > 0) {
    uint64_t V = Used.visited();
    Out.MaxVisited = V < Spec.MaxVisited ? Spec.MaxVisited - V : 1;
  }
  return Out;
}

namespace {

/// Shared shape of both degraded queries: run Primary under Spec; iff it
/// reports Unknown(EngineFault), run Oracle under the remaining budget.
/// Primary/Oracle receive the limits to use and return the truncation
/// reason they ended with (None = completed).
template <typename PrimaryFn, typename OracleFn>
void degrade(const BudgetSpec &Spec, const CancelToken *Cancel,
             unsigned Workers, DegradeReport *Report,
             const PrimaryFn &Primary, const OracleFn &Oracle) {
  DegradeReport Rep;
  Budget First(Spec, Cancel);
  EnumerationLimits L;
  L.Shared = &First;
  L.Workers = Workers;
  TruncationReason R;
  // Both engines are belt-and-braces wrapped: the reduced engine contains
  // its own faults, but a throw from anywhere else on this path must
  // degrade, not propagate.
  try {
    R = Primary(L);
  } catch (...) {
    R = TruncationReason::EngineFault;
  }
  Rep.PrimaryReason = R;
  Rep.PrimaryVisited = First.visited();
  Rep.PrimaryElapsedMs = First.elapsedMs();
  Rep.PrimaryFaulted = R == TruncationReason::EngineFault;
  if (Rep.PrimaryFaulted) {
    Budget Second(remainingBudget(Spec, First), Cancel);
    EnumerationLimits OL;
    OL.Shared = &Second;
    OL.Workers = 1;
    OL.ExhaustiveOracle = true;
    Rep.FellBack = true;
    try {
      Rep.FallbackReason = Oracle(OL);
    } catch (...) {
      Rep.FallbackReason = TruncationReason::EngineFault;
    }
    Rep.FallbackVisited = Second.visited();
    Rep.FallbackElapsedMs = Second.elapsedMs();
  }
  if (Report)
    *Report = Rep;
}

} // namespace

Verdict<Interleaving>
tracesafe::degradedDataRaceFreedom(const Traceset &T, const BudgetSpec &Spec,
                                   DegradeReport *Report,
                                   const CancelToken *Cancel,
                                   unsigned Workers) {
  Verdict<Interleaving> V = Verdict<Interleaving>::unknown(
      TruncationReason::EngineFault);
  degrade(
      Spec, Cancel, Workers, Report,
      [&](const EnumerationLimits &L) {
        // Primary path goes through the cross-query verdict cache; a
        // warm hit replays the recorded cost against this query's
        // budget, so the verdict is byte-identical to recomputation.
        V = BehaviourCache::global().drfFor(T, L);
        return V.isUnknown() ? V.Reason : TruncationReason::None;
      },
      [&](const EnumerationLimits &L) {
        // Oracle fallback bypasses the cache: a fault in the primary
        // path must not recur here.
        V = checkDataRaceFreedom(T, L);
        return V.isUnknown() ? V.Reason : TruncationReason::None;
      });
  return V;
}

std::set<Behaviour> tracesafe::degradedCollectBehaviours(
    const Traceset &T, const BudgetSpec &Spec, EnumerationStats *Stats,
    DegradeReport *Report, const CancelToken *Cancel, unsigned Workers) {
  std::set<Behaviour> Out;
  EnumerationStats S;
  S.truncate(TruncationReason::EngineFault); // overwritten on any answer
  degrade(
      Spec, Cancel, Workers, Report,
      [&](const EnumerationLimits &L) {
        EnumerationStats Local;
        std::set<Behaviour> B = collectBehaviours(T, L, &Local);
        if (Local.Reason != TruncationReason::EngineFault) {
          // A faulted primary's set is partial *and untrusted*; discard it
          // so the fallback answers from scratch. Any other truncation is
          // an honest partial answer and is kept.
          Out = std::move(B);
          S = Local;
        }
        return Local.Truncated ? Local.Reason : TruncationReason::None;
      },
      [&](const EnumerationLimits &L) {
        // The oracle fallback re-enumerates tracesets the escalation
        // ladder has often enumerated before (same traceset, sequential
        // exhaustive engine); the cross-query cache answers those
        // repeats. Cost replay inside the cache keeps the remaining
        // budget's truncation behaviour identical to recomputation.
        EnumerationStats Local;
        Out = BehaviourCache::global().behavioursFor(T, L, &Local);
        S = Local;
        return Local.Truncated ? Local.Reason : TruncationReason::None;
      });
  if (Stats)
    *Stats = S;
  return Out;
}
