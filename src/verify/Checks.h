//===----------------------------------------------------------------------===//
///
/// \file
/// Program-level verification queries: behaviour inclusion, the DRF
/// guarantee, and the out-of-thin-air guarantee.
///
/// These are the observable statements of Theorems 1-5, phrased on concrete
/// programs: the original program's behaviours must contain the transformed
/// program's behaviours whenever the original is data race free; the
/// transformed program must stay data race free; and no transformation may
/// output a constant the original program cannot build.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_CHECKS_H
#define TRACESAFE_VERIFY_CHECKS_H

#include "lang/Explore.h"
#include "lang/ProgramExec.h"

#include <optional>
#include <string>

namespace tracesafe {

/// How a per-pair guarantee query resolved. Unlike a bare bool, this keeps
/// "the guarantee is refuted" (a definitive counterexample exists) apart
/// from "the budget ran out before an answer".
enum class GuaranteeOutcome : uint8_t {
  Holds,    ///< proved (or vacuous), searches exhaustive where they must be
  Violated, ///< definitive counterexample found
  Unknown,  ///< some search was truncated before an answer was reached
};

const char *guaranteeOutcomeName(GuaranteeOutcome O);

/// Comparison of the SC behaviour sets of two programs.
struct BehaviourComparison {
  bool Subset = false; ///< behaviours(Transformed) within behaviours(Orig).
  bool Equal = false;
  std::optional<Behaviour> NewBehaviour; ///< Witness when !Subset.
  bool Truncated = false;
  /// Truncation split by side: a "new" behaviour is only a definitive
  /// counterexample when the *original's* behaviour set was complete.
  bool OrigTruncated = false;
  bool TransformedTruncated = false;
  TruncationReason Reason = TruncationReason::None;
};

BehaviourComparison compareBehaviours(const Program &Orig,
                                      const Program &Transformed,
                                      ExecLimits Limits = {});

/// The statement of the DRF guarantee for one original/transformed pair.
struct DrfGuaranteeReport {
  bool OriginalDrf = false;
  bool TransformedDrf = false;
  bool BehavioursPreserved = false;
  std::optional<Behaviour> NewBehaviour;
  bool Truncated = false;
  /// Per-component truncation: found races and found new behaviours are
  /// definitive counterexamples even under truncation, while "no race
  /// found" and "subset held" are only trustworthy when the corresponding
  /// search was exhaustive.
  bool OriginalRaceTruncated = false;
  bool TransformedRaceTruncated = false;
  BehaviourComparison Comparison;
  TruncationReason Reason = TruncationReason::None;

  /// Vacuously Holds for provably racy originals (Theorems 1-4 say nothing
  /// about them); Violated only on a definitive counterexample; Unknown
  /// when a truncated search stands between us and either answer.
  GuaranteeOutcome outcome() const {
    if (!OriginalDrf)
      return GuaranteeOutcome::Holds; // Race witness: definitive, vacuous.
    if (OriginalRaceTruncated)
      return GuaranteeOutcome::Unknown; // "Original DRF" not actually proved.
    if (!TransformedDrf)
      return GuaranteeOutcome::Violated; // Race witness in transformed.
    if (!BehavioursPreserved && !Comparison.OrigTruncated)
      return GuaranteeOutcome::Violated; // NewBehaviour is definitive.
    if (Truncated)
      return GuaranteeOutcome::Unknown;
    return GuaranteeOutcome::Holds;
  }

  /// True iff the guarantee definitively holds (Unknown counts as "not
  /// shown to hold", exactly as the old truncation-is-failure behaviour).
  bool holds() const { return outcome() == GuaranteeOutcome::Holds; }
};

DrfGuaranteeReport checkDrfGuarantee(const Program &Orig,
                                     const Program &Transformed,
                                     ExecLimits Limits = {});

/// Can \p P output \p V in some SC execution? "Yes" is witness-based and
/// definitive; "no" is only exhaustive when \p Stats (if supplied) reports
/// no truncation.
bool programCanOutput(const Program &P, Value V, ExecLimits Limits = {},
                      ExecStats *Stats = nullptr);

/// The out-of-thin-air statement (Theorem 5 shape) for one pair: if the
/// original program does not contain constant \p C (and C != 0), the
/// transformed program must not output C. Also checks the semantic origin
/// property (Lemma 2/6): [[Transformed]] has no origin for C when
/// [[Orig]] has none.
struct ThinAirReport {
  Value Constant = 0;
  bool OrigContainsConstant = false;
  bool TransformedOutputs = false;
  bool OrigHasOrigin = false;
  bool TransformedHasOrigin = false;
  bool Truncated = false;
  /// Per-component truncation. "Outputs C" and "has an origin for C" are
  /// witness-based (definitive when true even under truncation); their
  /// negations need the corresponding exhaustive search.
  bool OutputSearchTruncated = false;
  bool OrigExploreTruncated = false;
  bool TransformedExploreTruncated = false;
  TruncationReason Reason = TruncationReason::None;

  GuaranteeOutcome outcome() const {
    if (OrigContainsConstant)
      return GuaranteeOutcome::Holds; // Vacuous: C occurs in the original.
    if (TransformedOutputs)
      return GuaranteeOutcome::Violated; // Output witness: definitive.
    if (OutputSearchTruncated)
      return GuaranteeOutcome::Unknown;
    if (OrigHasOrigin)
      return GuaranteeOutcome::Holds; // Origin witness in [[Orig]].
    if (OrigExploreTruncated)
      return GuaranteeOutcome::Unknown; // "No origin in Orig" unproven.
    if (TransformedHasOrigin)
      return GuaranteeOutcome::Violated; // Manufactured origin: definitive.
    if (TransformedExploreTruncated)
      return GuaranteeOutcome::Unknown;
    return GuaranteeOutcome::Holds;
  }

  bool holds() const { return outcome() == GuaranteeOutcome::Holds; }
};

ThinAirReport checkThinAir(const Program &Orig, const Program &Transformed,
                           Value C, ExecLimits Limits = {},
                           ExploreLimits TracesetLimits = {});

/// A fresh constant guaranteed not to occur in \p P (and nonzero).
Value freshConstantFor(const Program &P);

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_CHECKS_H
