//===----------------------------------------------------------------------===//
///
/// \file
/// Program-level verification queries: behaviour inclusion, the DRF
/// guarantee, and the out-of-thin-air guarantee.
///
/// These are the observable statements of Theorems 1-5, phrased on concrete
/// programs: the original program's behaviours must contain the transformed
/// program's behaviours whenever the original is data race free; the
/// transformed program must stay data race free; and no transformation may
/// output a constant the original program cannot build.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_CHECKS_H
#define TRACESAFE_VERIFY_CHECKS_H

#include "lang/Explore.h"
#include "lang/ProgramExec.h"

#include <optional>
#include <string>

namespace tracesafe {

/// Comparison of the SC behaviour sets of two programs.
struct BehaviourComparison {
  bool Subset = false; ///< behaviours(Transformed) within behaviours(Orig).
  bool Equal = false;
  std::optional<Behaviour> NewBehaviour; ///< Witness when !Subset.
  bool Truncated = false;
};

BehaviourComparison compareBehaviours(const Program &Orig,
                                      const Program &Transformed,
                                      ExecLimits Limits = {});

/// The statement of the DRF guarantee for one original/transformed pair.
struct DrfGuaranteeReport {
  bool OriginalDrf = false;
  bool TransformedDrf = false;
  bool BehavioursPreserved = false;
  std::optional<Behaviour> NewBehaviour;
  bool Truncated = false;

  /// Vacuously true for racy originals; otherwise requires DRF preservation
  /// and behaviour inclusion (Theorems 1-4).
  bool holds() const {
    if (Truncated)
      return false;
    if (!OriginalDrf)
      return true;
    return TransformedDrf && BehavioursPreserved;
  }
};

DrfGuaranteeReport checkDrfGuarantee(const Program &Orig,
                                     const Program &Transformed,
                                     ExecLimits Limits = {});

/// Can \p P output \p V in some SC execution?
bool programCanOutput(const Program &P, Value V, ExecLimits Limits = {});

/// The out-of-thin-air statement (Theorem 5 shape) for one pair: if the
/// original program does not contain constant \p C (and C != 0), the
/// transformed program must not output C. Also checks the semantic origin
/// property (Lemma 2/6): [[Transformed]] has no origin for C when
/// [[Orig]] has none.
struct ThinAirReport {
  Value Constant = 0;
  bool OrigContainsConstant = false;
  bool TransformedOutputs = false;
  bool OrigHasOrigin = false;
  bool TransformedHasOrigin = false;
  bool Truncated = false;

  bool holds() const {
    if (Truncated)
      return false;
    if (OrigContainsConstant)
      return true; // Vacuous.
    return !TransformedOutputs && (OrigHasOrigin || !TransformedHasOrigin);
  }
};

ThinAirReport checkThinAir(const Program &Orig, const Program &Transformed,
                           Value C, ExecLimits Limits = {},
                           ExploreLimits TracesetLimits = {});

/// A fresh constant guaranteed not to occur in \p P (and nonzero).
Value freshConstantFor(const Program &P);

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_CHECKS_H
