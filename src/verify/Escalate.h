//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptive budget escalation for verification queries.
///
/// Exhaustive guarantee checks either finish fast or blow up; there is no
/// useful middle. The escalation driver therefore runs a query under a
/// small budget first and, on Unknown, retries with geometrically larger
/// budgets up to a global ceiling. Every attempt is recorded so callers
/// can report partial results ("refuted nothing within 2M states / 4s")
/// instead of a bare timeout. Refuted and Proved answers stop the ladder
/// immediately — they are definitive at any budget.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_ESCALATE_H
#define TRACESAFE_VERIFY_ESCALATE_H

#include "support/Budget.h"
#include "verify/Checks.h"

#include <vector>

namespace tracesafe {

/// Escalation schedule: Initial, Initial*Growth, Initial*Growth^2, ...,
/// each clamped field-wise to Ceiling, for at most MaxAttempts attempts.
struct EscalationPolicy {
  BudgetSpec Initial{/*DeadlineMs=*/200, /*MaxVisited=*/100'000,
                     /*MaxMemoryBytes=*/64u << 20};
  unsigned Growth = 4;
  unsigned MaxAttempts = 4;
  BudgetSpec Ceiling{/*DeadlineMs=*/15'000, /*MaxVisited=*/20'000'000,
                     /*MaxMemoryBytes=*/512u << 20};
  /// Optional cooperative cancellation, wired into every attempt's Budget.
  /// Non-owning; may be null.
  const CancelToken *Cancel = nullptr;
};

/// What one rung of the ladder did.
struct EscalationAttempt {
  BudgetSpec Spec;                    ///< budget this attempt ran under
  uint64_t Visited = 0;               ///< states actually charged
  int64_t ElapsedMs = 0;              ///< wall clock actually spent
  VerdictKind Result = VerdictKind::Unknown;
  TruncationReason Reason = TruncationReason::None;
};

/// Final verdict plus the full attempt history (partial-result report).
template <typename T> struct Escalated {
  Verdict<T> Final;
  std::vector<EscalationAttempt> Attempts;

  /// Total wall clock across all attempts.
  int64_t totalElapsedMs() const {
    int64_t Out = 0;
    for (const EscalationAttempt &A : Attempts)
      Out += A.ElapsedMs;
    return Out;
  }
};

/// Runs \p Query under escalating budgets. \p Query receives a live Budget
/// (already wired to the attempt's spec) and returns a Verdict; it must
/// treat budget exhaustion as Unknown, which is exactly what the engine
/// layer produces when the budget is threaded through the limit structs.
template <typename T, typename QueryFn>
Escalated<T> escalate(const EscalationPolicy &Policy, const QueryFn &Query) {
  Escalated<T> Out;
  BudgetSpec Spec = Policy.Initial.scaled(1, Policy.Ceiling);
  for (unsigned Attempt = 0; Attempt < Policy.MaxAttempts; ++Attempt) {
    Budget B(Spec, Policy.Cancel);
    Verdict<T> V = Query(B);
    EscalationAttempt Rec;
    Rec.Spec = Spec;
    Rec.Visited = B.visited();
    Rec.ElapsedMs = B.elapsedMs();
    Rec.Result = V.Kind;
    Rec.Reason = V.Reason;
    Out.Attempts.push_back(Rec);
    Out.Final = std::move(V);
    if (!Out.Final.isUnknown())
      return Out;
    // Only budget-bound Unknowns escalate. A cancelled query must stay
    // cancelled (no sneaky retry after Ctrl-C), and a faulted query is
    // not budget-bound — a larger budget replays the same fault; the
    // degradation layer (Degrade.h) is the right recovery for it.
    if (Out.Final.Reason == TruncationReason::Cancelled ||
        Out.Final.Reason == TruncationReason::EngineFault)
      return Out;
    BudgetSpec Next = Spec.scaled(Policy.Growth, Policy.Ceiling);
    if (Next.DeadlineMs == Spec.DeadlineMs &&
        Next.MaxVisited == Spec.MaxVisited &&
        Next.MaxMemoryBytes == Spec.MaxMemoryBytes)
      break; // Already at the ceiling; a retry would just repeat the run.
    Spec = Next;
  }
  return Out;
}

/// DRF guarantee (Theorems 1-4 statement) under escalation. On Refuted the
/// witness is the full report (which of DRF preservation / behaviour
/// inclusion failed, with the counterexample behaviour).
Escalated<DrfGuaranteeReport>
escalateDrfGuarantee(const Program &Orig, const Program &Transformed,
                     const EscalationPolicy &Policy = {});

/// Out-of-thin-air guarantee (Theorem 5 statement) under escalation.
Escalated<ThinAirReport>
escalateThinAir(const Program &Orig, const Program &Transformed, Value C,
                const EscalationPolicy &Policy = {});

/// Program-level DRF query under escalation (witness: the racy
/// interleaving).
Escalated<Interleaving>
escalateProgramDrf(const Program &P, const EscalationPolicy &Policy = {});

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_ESCALATE_H
