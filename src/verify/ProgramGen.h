//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random program generator for the property-test harness.
///
/// Three disciplines:
///  - Racy: unconstrained shared accesses (exercises the vacuous branch of
///    the DRF guarantee and the thin-air guarantee, which holds for *all*
///    programs);
///  - LockDiscipline: every shared access happens inside a lock m / unlock
///    m region of the single global monitor, so the program is data race
///    free by construction (§3's "common way of ensuring data race
///    freedom");
///  - VolatileLocations: every shared location is volatile; races on
///    volatile locations do not count, so these programs are DRF too.
///
/// Generated programs are loop-free (ifs only) so exhaustive exploration is
/// exact; whiles are covered by handwritten tests.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_PROGRAMGEN_H
#define TRACESAFE_VERIFY_PROGRAMGEN_H

#include "lang/Ast.h"
#include "support/Rng.h"

namespace tracesafe {

enum class GenDiscipline : uint8_t {
  Racy,
  LockDiscipline,
  VolatileLocations,
  /// Per-location mix: each location is either volatile or lock-protected
  /// (under the single global monitor), chosen per program; still DRF by
  /// construction, but with realistically mixed synchronisation.
  Mixed,
};

struct GenOptions {
  GenDiscipline Discipline = GenDiscipline::Racy;
  unsigned Threads = 2;
  unsigned MinStmtsPerThread = 2;
  unsigned MaxStmtsPerThread = 6;
  unsigned Locations = 2;  ///< named x0, x1, ...
  unsigned Registers = 3;  ///< named r0, r1, ...
  Value MaxConst = 2;      ///< literals drawn from [0, MaxConst]
  bool AllowIf = true;
  bool AllowPrint = true;
  bool AllowInput = false; ///< Emit `input r;` statements among locals.
};

/// Generates one random program. Deterministic in \p R's seed.
Program generateProgram(Rng &R, const GenOptions &Options = {});

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_PROGRAMGEN_H
