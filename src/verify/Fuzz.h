//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing harness for the optimisation pipeline.
///
/// Drives seeded random programs (ProgramGen) through random chains of the
/// Fig 10/11 rewrite rules (opt/Pipeline) and checks the paper's
/// guarantees on each (original, transformed) pair:
///   - the DRF guarantee (DRF preservation + behaviour inclusion,
///     Theorems 1-4);
///   - the out-of-thin-air guarantee (Theorem 5).
/// Every query runs under an escalating budget, so pathological programs
/// degrade to counted Unknowns instead of hangs. A genuine guarantee
/// violation would be a counterexample to the paper (or a bug in this
/// implementation); the harness delta-debugs it to a minimal program and
/// writes a `.tsl` repro to disk.
///
/// For validating the harness itself, injection mode routes every Nth
/// program through one of the paper's deliberately *unsafe* passes
/// (cross-sync constant propagation, lock elision) so real failures exist
/// to find, minimise and write out.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_FUZZ_H
#define TRACESAFE_VERIFY_FUZZ_H

#include "verify/Escalate.h"
#include "verify/ProgramGen.h"
#include "verify/Shrink.h"

#include <string>
#include <vector>

namespace tracesafe {

struct FuzzOptions {
  uint64_t Seed = 1;
  /// Number of generated programs to drive (the run may stop earlier on
  /// DeadlineMs).
  uint64_t Programs = 500;
  /// Whole-run wall-clock cap in milliseconds (0 = none).
  int64_t DeadlineMs = 0;
  /// Base program shape; the harness varies discipline, thread count and
  /// input-statement use per iteration on top of this.
  GenOptions Gen;
  /// Maximum random rewrite-rule applications per chain.
  size_t MaxChainSteps = 4;
  /// Per-query budget ladder.
  EscalationPolicy Escalation;
  /// Check Theorem 5 (thin air) in addition to the DRF guarantee.
  bool CheckThinAir = true;
  /// Additionally chain the semantic checkers on every safe chain: each
  /// step must be a semantic elimination (Lemma 4) or a reordering of an
  /// elimination (Lemma 5) of the previous program's traceset.
  bool CheckSemanticSteps = false;
  /// Campaign workers: 1 = sequential; 0 = the shared work-stealing pool
  /// at its default width; N > 1 = exactly N. Programs are claimed by
  /// index and every per-program sub-seed depends only on (Seed, index),
  /// so the report is identical for every width (failures are sorted by
  /// program index).
  unsigned Jobs = 1;
  /// Route every InjectEvery-th program through an unsafe pass.
  bool InjectUnsafe = false;
  unsigned InjectEvery = 5;
  /// Directory for minimised `.tsl` repros ("" = do not write files).
  std::string ReproDir;
  /// Reduction limits for failure minimisation.
  ShrinkOptions Shrink{/*MaxRounds=*/32, /*MaxCandidates=*/1500,
                       /*DeadlineMs=*/10'000};
  /// Append-only checkpoint journal ("" = none). One record per finished
  /// program index, flushed as it completes, so a killed campaign loses at
  /// most the indices that were in flight. See docs/PERFORMANCE.md for the
  /// format.
  std::string CheckpointPath;
  /// Load CheckpointPath first and skip every index it records as done
  /// (their recorded results are merged instead). Ignored when the
  /// journal's header does not match (Seed, Programs) — a mismatched
  /// journal describes a different campaign and is discarded.
  bool Resume = false;
  /// Cooperative cancellation for the whole campaign (non-owning; may be
  /// null). Wired into every query budget, so a request unwinds in-flight
  /// searches within one budget check interval; an index whose run was cut
  /// by cancellation is discarded (not journaled), so a resumed campaign
  /// reproduces it exactly.
  const CancelToken *Cancel = nullptr;
};

/// One minimised guarantee violation.
struct FuzzFailure {
  uint64_t ProgramIndex = 0;  ///< which generated program
  std::string Property;       ///< "drf-guarantee" or "thin-air"
  bool Injected = false;      ///< produced by an unsafe pass on purpose
  std::string Detail;         ///< human-readable description
  std::string OriginalSource; ///< generated program
  std::string ReducedSource;  ///< minimised program (still failing)
  std::string ReproPath;      ///< written repro file ("" if not written)
  size_t OriginalStmts = 0;
  size_t ReducedStmts = 0;
  unsigned ShrinkRounds = 0;
  uint64_t ShrinkCandidates = 0;
  /// The minimised rewrite chain that still reproduces the failure on the
  /// reduced program ("" when the transform was not a rewrite chain, e.g.
  /// an injected unsafe pass). Steps joined by "; " in RewriteSite::str()
  /// form; also written as a `// chain:` line in the repro header.
  std::string ReducedChain;
  size_t ChainSteps = 0;        ///< chain length before minimisation
  size_t ReducedChainSteps = 0; ///< chain length after minimisation
};

struct FuzzReport {
  uint64_t ProgramsRun = 0;
  uint64_t ChecksRun = 0;
  uint64_t ProvedQueries = 0;
  /// Queries that stayed Unknown after full escalation.
  uint64_t UnknownQueries = 0;
  /// Queries that needed more than one budget rung.
  uint64_t EscalatedQueries = 0;
  uint64_t InjectedRuns = 0;
  /// Queries whose final answer was Unknown(EngineFault) — an engine
  /// threw (real or injected) and containment turned it into a verdict
  /// instead of a crash.
  uint64_t FaultedQueries = 0;
  /// Faulted queries that the sequential degraded retry then answered
  /// (Proved/Refuted, or an honest budget-bound Unknown).
  uint64_t DegradedQueries = 0;
  bool DeadlineHit = false;
  /// The campaign was cut short by cooperative cancellation; counters
  /// cover only the indices that completed beforehand.
  bool Cancelled = false;
  /// Indices loaded from a resume journal instead of being re-run.
  uint64_t SkippedFromCheckpoint = 0;
  /// Cross-query BehaviourCache traffic attributable to this run (deltas
  /// of the process-global counters). Volatile like ElapsedMs: a resumed
  /// campaign skips recomputation and a warm process changes the split,
  /// without affecting any verdict (the cache replays costs against the
  /// query budgets — see verify/BehaviourCache.h).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  int64_t ElapsedMs = 0;
  std::vector<FuzzFailure> Failures;

  /// Violations of a guarantee by a *safe* chain — a paper counterexample
  /// or an implementation bug; always zero in healthy runs.
  uint64_t uninjectedFailures() const;

  std::string summary() const;
  /// Machine-readable report (stable key order, no external deps). With
  /// \p IncludeVolatile false the wall-clock and campaign-lifecycle fields
  /// (elapsed_ms, cancelled, skipped_from_checkpoint) are omitted: that
  /// form is byte-identical between a fresh run and a kill/resume of the
  /// same campaign, which the resume tests assert.
  std::string toJson(bool IncludeVolatile = true) const;
};

FuzzReport runFuzz(const FuzzOptions &Options);

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_FUZZ_H
