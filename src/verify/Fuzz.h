//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing harness for the optimisation pipeline.
///
/// Drives seeded random programs (ProgramGen) through random chains of the
/// Fig 10/11 rewrite rules (opt/Pipeline) and checks the paper's
/// guarantees on each (original, transformed) pair:
///   - the DRF guarantee (DRF preservation + behaviour inclusion,
///     Theorems 1-4);
///   - the out-of-thin-air guarantee (Theorem 5).
/// Every query runs under an escalating budget, so pathological programs
/// degrade to counted Unknowns instead of hangs. A genuine guarantee
/// violation would be a counterexample to the paper (or a bug in this
/// implementation); the harness delta-debugs it to a minimal program and
/// writes a `.tsl` repro to disk.
///
/// For validating the harness itself, injection mode routes every Nth
/// program through one of the paper's deliberately *unsafe* passes
/// (cross-sync constant propagation, lock elision) so real failures exist
/// to find, minimise and write out.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_FUZZ_H
#define TRACESAFE_VERIFY_FUZZ_H

#include "verify/Escalate.h"
#include "verify/ProgramGen.h"
#include "verify/Shrink.h"

#include <string>
#include <vector>

namespace tracesafe {

struct FuzzOptions {
  uint64_t Seed = 1;
  /// Number of generated programs to drive (the run may stop earlier on
  /// DeadlineMs).
  uint64_t Programs = 500;
  /// Whole-run wall-clock cap in milliseconds (0 = none).
  int64_t DeadlineMs = 0;
  /// Base program shape; the harness varies discipline, thread count and
  /// input-statement use per iteration on top of this.
  GenOptions Gen;
  /// Maximum random rewrite-rule applications per chain.
  size_t MaxChainSteps = 4;
  /// Per-query budget ladder.
  EscalationPolicy Escalation;
  /// Check Theorem 5 (thin air) in addition to the DRF guarantee.
  bool CheckThinAir = true;
  /// Additionally chain the semantic checkers on every safe chain: each
  /// step must be a semantic elimination (Lemma 4) or a reordering of an
  /// elimination (Lemma 5) of the previous program's traceset.
  bool CheckSemanticSteps = false;
  /// Campaign workers: 1 = sequential; 0 = the shared work-stealing pool
  /// at its default width; N > 1 = exactly N. Programs are claimed by
  /// index and every per-program sub-seed depends only on (Seed, index),
  /// so the report is identical for every width (failures are sorted by
  /// program index).
  unsigned Jobs = 1;
  /// Route every InjectEvery-th program through an unsafe pass.
  bool InjectUnsafe = false;
  unsigned InjectEvery = 5;
  /// Directory for minimised `.tsl` repros ("" = do not write files).
  std::string ReproDir;
  /// Reduction limits for failure minimisation.
  ShrinkOptions Shrink{/*MaxRounds=*/32, /*MaxCandidates=*/1500,
                       /*DeadlineMs=*/10'000};
};

/// One minimised guarantee violation.
struct FuzzFailure {
  uint64_t ProgramIndex = 0;  ///< which generated program
  std::string Property;       ///< "drf-guarantee" or "thin-air"
  bool Injected = false;      ///< produced by an unsafe pass on purpose
  std::string Detail;         ///< human-readable description
  std::string OriginalSource; ///< generated program
  std::string ReducedSource;  ///< minimised program (still failing)
  std::string ReproPath;      ///< written repro file ("" if not written)
  size_t OriginalStmts = 0;
  size_t ReducedStmts = 0;
  unsigned ShrinkRounds = 0;
  uint64_t ShrinkCandidates = 0;
};

struct FuzzReport {
  uint64_t ProgramsRun = 0;
  uint64_t ChecksRun = 0;
  uint64_t ProvedQueries = 0;
  /// Queries that stayed Unknown after full escalation.
  uint64_t UnknownQueries = 0;
  /// Queries that needed more than one budget rung.
  uint64_t EscalatedQueries = 0;
  uint64_t InjectedRuns = 0;
  bool DeadlineHit = false;
  int64_t ElapsedMs = 0;
  std::vector<FuzzFailure> Failures;

  /// Violations of a guarantee by a *safe* chain — a paper counterexample
  /// or an implementation bug; always zero in healthy runs.
  uint64_t uninjectedFailures() const;

  std::string summary() const;
  /// Machine-readable report (stable key order, no external deps).
  std::string toJson() const;
};

FuzzReport runFuzz(const FuzzOptions &Options);

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_FUZZ_H
