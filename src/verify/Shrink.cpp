#include "verify/Shrink.h"

#include "opt/Rewrite.h"

#include <algorithm>
#include <chrono>

using namespace tracesafe;

namespace {

size_t countStmtList(const StmtList &L);

size_t countStmt(const Stmt &S) {
  switch (S.kind()) {
  case StmtKind::Block:
    return 1 + countStmtList(cast<BlockStmt>(S).body());
  case StmtKind::If: {
    const auto &I = cast<IfStmt>(S);
    return 1 + countStmt(I.thenStmt()) + countStmt(I.elseStmt());
  }
  case StmtKind::While:
    return 1 + countStmt(cast<WhileStmt>(S).body());
  default:
    return 1;
  }
}

size_t countStmtList(const StmtList &L) {
  size_t N = 0;
  for (const StmtPtr &S : L)
    N += countStmt(*S);
  return N;
}

/// Collects every integer-literal slot of \p S in a fixed traversal order.
void collectLiterals(const Stmt &S, std::vector<Value> &Out) {
  auto FromOperand = [&Out](const Operand &O) {
    if (O.IsImm)
      Out.push_back(O.Imm);
  };
  auto FromCond = [&](const Cond &C) {
    FromOperand(C.Lhs);
    FromOperand(C.Rhs);
  };
  switch (S.kind()) {
  case StmtKind::Assign:
    FromOperand(cast<AssignStmt>(S).src());
    break;
  case StmtKind::Store:
    FromOperand(cast<StoreStmt>(S).src());
    break;
  case StmtKind::Print:
    FromOperand(cast<PrintStmt>(S).src());
    break;
  case StmtKind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S).body())
      collectLiterals(*Sub, Out);
    break;
  case StmtKind::If: {
    const auto &I = cast<IfStmt>(S);
    FromCond(I.cond());
    collectLiterals(I.thenStmt(), Out);
    collectLiterals(I.elseStmt(), Out);
    break;
  }
  case StmtKind::While: {
    const auto &W = cast<WhileStmt>(S);
    FromCond(W.cond());
    collectLiterals(W.body(), Out);
    break;
  }
  default:
    break;
  }
}

/// Clones \p S with the literal at visit-order index \p Target (counted
/// through \p Counter, same order as collectLiterals) replaced by
/// \p NewVal.
StmtPtr rebuildWithLiteral(const Stmt &S, size_t Target, Value NewVal,
                           size_t &Counter) {
  auto Op = [&](const Operand &O) {
    if (!O.IsImm)
      return O;
    return Counter++ == Target ? Operand::imm(NewVal) : O;
  };
  auto CondOf = [&](const Cond &C) { return Cond{C.IsEq, Op(C.Lhs), Op(C.Rhs)}; };
  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto &A = cast<AssignStmt>(S);
    return std::make_unique<AssignStmt>(A.reg(), Op(A.src()));
  }
  case StmtKind::Store: {
    const auto &St = cast<StoreStmt>(S);
    return std::make_unique<StoreStmt>(St.loc(), Op(St.src()));
  }
  case StmtKind::Print:
    return std::make_unique<PrintStmt>(Op(cast<PrintStmt>(S).src()));
  case StmtKind::Block: {
    StmtList Body;
    for (const StmtPtr &Sub : cast<BlockStmt>(S).body())
      Body.push_back(rebuildWithLiteral(*Sub, Target, NewVal, Counter));
    return std::make_unique<BlockStmt>(std::move(Body));
  }
  case StmtKind::If: {
    const auto &I = cast<IfStmt>(S);
    Cond C = CondOf(I.cond());
    StmtPtr Then = rebuildWithLiteral(I.thenStmt(), Target, NewVal, Counter);
    StmtPtr Else = rebuildWithLiteral(I.elseStmt(), Target, NewVal, Counter);
    return std::make_unique<IfStmt>(C, std::move(Then), std::move(Else));
  }
  case StmtKind::While: {
    const auto &W = cast<WhileStmt>(S);
    Cond C = CondOf(W.cond());
    StmtPtr Body = rebuildWithLiteral(W.body(), Target, NewVal, Counter);
    return std::make_unique<WhileStmt>(C, std::move(Body));
  }
  default:
    return S.clone();
  }
}

Program dropThread(const Program &P, ThreadId Tid) {
  Program Out;
  for (ThreadId T = 0; T < P.threadCount(); ++T)
    if (T != Tid)
      Out.addThread(cloneList(P.thread(T)));
  for (SymbolId V : P.volatiles())
    Out.markVolatile(V);
  return Out;
}

} // namespace

size_t tracesafe::countStatements(const Program &P) {
  size_t N = 0;
  for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid)
    N += countStmtList(P.thread(Tid));
  return N;
}

std::vector<Program> tracesafe::shrinkCandidates(const Program &P) {
  std::vector<Program> Out;

  // 1. Drop a whole thread (most aggressive first).
  if (P.threadCount() > 1)
    for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid)
      Out.push_back(dropThread(P, Tid));

  // Addresses of every statement list (thread bodies + nested blocks).
  std::vector<ListPath> Paths;
  forEachList(P, [&](const ListPath &Path, const StmtList &) {
    Paths.push_back(Path);
  });

  // 2. Drop one statement.
  for (const ListPath &Path : Paths) {
    const StmtList &L = resolveList(P, Path);
    for (size_t I = 0; I < L.size(); ++I) {
      Program Q = P;
      StmtList &ML = resolveList(Q, Path);
      ML.erase(ML.begin() + static_cast<ptrdiff_t>(I));
      Out.push_back(std::move(Q));
    }
  }

  // 3. Structural simplification: if -> branch, while -> body, block ->
  //    spliced contents.
  for (const ListPath &Path : Paths) {
    const StmtList &L = resolveList(P, Path);
    for (size_t I = 0; I < L.size(); ++I) {
      const Stmt &S = *L[I];
      auto ReplaceWith = [&](StmtPtr New) {
        Program Q = P;
        resolveList(Q, Path)[I] = std::move(New);
        Out.push_back(std::move(Q));
      };
      switch (S.kind()) {
      case StmtKind::If: {
        const auto &If = cast<IfStmt>(S);
        ReplaceWith(If.thenStmt().clone());
        ReplaceWith(If.elseStmt().clone());
        break;
      }
      case StmtKind::While:
        ReplaceWith(cast<WhileStmt>(S).body().clone());
        break;
      case StmtKind::Block: {
        Program Q = P;
        StmtList &ML = resolveList(Q, Path);
        StmtList Body = std::move(static_cast<BlockStmt &>(*ML[I]).body());
        ML.erase(ML.begin() + static_cast<ptrdiff_t>(I));
        ML.insert(ML.begin() + static_cast<ptrdiff_t>(I),
                  std::make_move_iterator(Body.begin()),
                  std::make_move_iterator(Body.end()));
        Out.push_back(std::move(Q));
        break;
      }
      default:
        break;
      }
    }
  }

  // 4. Narrow literals toward zero (same statement count, simpler values).
  for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid) {
    const StmtList &Body = P.thread(Tid);
    for (size_t I = 0; I < Body.size(); ++I) {
      std::vector<Value> Lits;
      collectLiterals(*Body[I], Lits);
      for (size_t Slot = 0; Slot < Lits.size(); ++Slot) {
        Value V = Lits[Slot];
        if (V == 0)
          continue;
        std::vector<Value> Replacements{0};
        if (V > 1 || V < -1)
          Replacements.push_back(V / 2);
        for (Value NewVal : Replacements) {
          Program Q = P;
          size_t Counter = 0;
          Q.thread(Tid)[I] =
              rebuildWithLiteral(*Body[I], Slot, NewVal, Counter);
          Out.push_back(std::move(Q));
        }
      }
    }
  }

  return Out;
}

ShrinkResult tracesafe::shrinkProgram(const Program &P,
                                      const FailurePredicate &StillFails,
                                      const ShrinkOptions &Options) {
  ShrinkResult Res;
  Res.Reduced = P;
  auto Start = std::chrono::steady_clock::now();
  auto Expired = [&]() {
    if (Options.DeadlineMs <= 0)
      return false;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - Start)
               .count() >= Options.DeadlineMs;
  };

  bool Progress = true;
  while (Progress && Res.Rounds < Options.MaxRounds &&
         Res.CandidatesTried < Options.MaxCandidates && !Expired()) {
    Progress = false;
    ++Res.Rounds;
    for (Program &Cand : shrinkCandidates(Res.Reduced)) {
      if (Res.CandidatesTried >= Options.MaxCandidates || Expired())
        return Res;
      ++Res.CandidatesTried;
      if (!StillFails(Cand))
        continue;
      Res.Reduced = std::move(Cand);
      ++Res.CandidatesAccepted;
      Progress = true;
      break; // Restart the scan from the smaller program.
    }
  }
  Res.Converged = !Progress;
  return Res;
}

ChainShrinkResult
tracesafe::shrinkChain(const std::vector<RewriteSite> &Steps,
                       const ChainFailurePredicate &StillFails,
                       const ShrinkOptions &Options) {
  ChainShrinkResult Res;
  Res.Steps = Steps;
  auto Start = std::chrono::steady_clock::now();
  auto Expired = [&]() {
    if (Options.DeadlineMs <= 0)
      return false;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - Start)
               .count() >= Options.DeadlineMs;
  };
  auto Budgeted = [&]() {
    return Res.CandidatesTried < Options.MaxCandidates && !Expired();
  };

  if (Res.Steps.empty()) {
    Res.Converged = true;
    return Res;
  }

  // ddmin over the step list: try removing contiguous chunks, restarting
  // at the same granularity on success, halving it on a full failed pass.
  // At Chunk == 1 a full failed pass certifies 1-minimality.
  size_t Chunk = std::max<size_t>(Res.Steps.size() / 2, 1);
  while (Budgeted()) {
    bool Progress = false;
    for (size_t Begin = 0; Begin < Res.Steps.size() && Budgeted();) {
      size_t End = std::min(Begin + Chunk, Res.Steps.size());
      std::vector<RewriteSite> Cand;
      Cand.reserve(Res.Steps.size() - (End - Begin));
      Cand.insert(Cand.end(), Res.Steps.begin(),
                  Res.Steps.begin() + static_cast<ptrdiff_t>(Begin));
      Cand.insert(Cand.end(),
                  Res.Steps.begin() + static_cast<ptrdiff_t>(End),
                  Res.Steps.end());
      ++Res.CandidatesTried;
      if (StillFails(Cand)) {
        Res.Steps = std::move(Cand);
        Progress = true;
        // Re-scan from the same position: the list shifted left under us.
      } else {
        Begin = End;
      }
    }
    if (Res.Steps.empty()) {
      Res.Converged = true;
      return Res;
    }
    if (!Progress) {
      if (Chunk == 1) {
        Res.Converged = Budgeted();
        return Res;
      }
      Chunk = std::max<size_t>(Chunk / 2, 1);
    }
  }
  return Res;
}
