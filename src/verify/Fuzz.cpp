#include "verify/Fuzz.h"

#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "opt/Unsafe.h"
#include "support/ThreadPool.h"
#include "verify/Theorems.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <tuple>

using namespace tracesafe;

namespace {

/// SplitMix-style mixing so per-program sub-seeds are decorrelated.
uint64_t mixSeeds(uint64_t A, uint64_t B) {
  uint64_t Z = A + 0x9E3779B97F4A7C15ULL * (B + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// A deterministic transformation of a program: the same function is used
/// on the generated program and on every shrink candidate, so the failure
/// predicate stays meaningful as the program gets smaller.
using TransformFn = std::function<std::optional<Program>(const Program &)>;

std::optional<Program> applyFirstUnsafe(const Program &P) {
  // Prefer lock elision: on a lock-disciplined DRF program it reliably
  // manufactures a data race (a checkable Violated). Unsafe const-prop
  // only ever *removes* behaviours in this language, so behaviour
  // inclusion — a subset check — cannot catch it; it stays as the
  // fallback to keep the transform total on lock-free programs.
  std::vector<LockPair> Pairs = findLockPairs(P);
  if (!Pairs.empty())
    return elideLockPair(P, Pairs.front());
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  if (!Sites.empty())
    return applyUnsafeConstProp(P, Sites.front());
  return std::nullopt;
}

Program applySafeChain(const Program &P, uint64_t ChainSeed,
                       size_t MaxSteps) {
  Rng R(ChainSeed);
  return randomChain(P, RuleSet::all(), MaxSteps, R).Result;
}

std::string drfDetail(const DrfGuaranteeReport &R) {
  if (!R.TransformedDrf)
    return "transformation introduced a data race into a DRF program";
  if (!R.BehavioursPreserved)
    return "transformation introduced a new behaviour";
  return "DRF guarantee violated";
}

std::string thinAirDetail(const ThinAirReport &R) {
  if (R.TransformedOutputs)
    return "transformed program outputs the fresh constant " +
           std::to_string(R.Constant);
  return "transformed traceset has an out-of-thin-air origin for " +
         std::to_string(R.Constant);
}

/// Satellite check: re-walk a safe chain verifying Lemma 4/5 per step —
/// each successor traceset must be a semantic elimination (E rules) or a
/// reordering of an elimination (R rules) of its predecessor. Fails on the
/// first failing step; Unknown when any step was truncated.
CheckVerdict semanticChainVerdict(const Program &Orig,
                                  const TransformChain &Chain, Budget &B) {
  ExploreLimits Explore;
  Explore.Shared = &B;
  std::vector<Value> Domain = defaultDomainFor(Orig, 2);
  Program Cur = Orig;
  ExploreStats Stats;
  Traceset CurSet = programTraceset(Cur, Domain, Explore, &Stats);
  CheckVerdict Out = CheckVerdict::Holds;
  for (const RewriteSite &Site : Chain.Steps) {
    Program Next = applyRewrite(Cur, Site);
    ExploreStats NextStats;
    Traceset NextSet = programTraceset(Next, Domain, Explore, &NextStats);
    CheckVerdict V;
    if (Stats.Truncated || NextStats.Truncated)
      V = CheckVerdict::Unknown;
    else if (isEliminationRule(Site.Rule))
      V = checkElimination(CurSet, NextSet).Verdict;
    else
      V = checkEliminationThenReordering(CurSet, NextSet).Verdict;
    if (V == CheckVerdict::Fails)
      return CheckVerdict::Fails;
    if (V == CheckVerdict::Unknown)
      Out = CheckVerdict::Unknown;
    Cur = std::move(Next);
    CurSet = std::move(NextSet);
    Stats = NextStats;
  }
  return Out;
}

/// Definitive re-check of one property on a shrink candidate, under a
/// fixed one-shot budget. Unknown counts as "does not reproduce" so budget
/// noise cannot steer the reduction toward expensive programs. For the
/// semantic-step property the chain is regenerated from \p ChainSeed on
/// the candidate itself.
bool propertyViolated(const Program &Orig, const Program &Transformed,
                      const std::string &Property, const BudgetSpec &Spec,
                      uint64_t ChainSeed, size_t MaxChainSteps) {
  Budget B(Spec);
  if (Property == "semantic-step") {
    Rng R(ChainSeed);
    TransformChain C = randomChain(Orig, RuleSet::all(), MaxChainSteps, R);
    return semanticChainVerdict(Orig, C, B) == CheckVerdict::Fails;
  }
  ExecLimits Exec;
  Exec.Shared = &B;
  if (Property == "drf-guarantee")
    return checkDrfGuarantee(Orig, Transformed, Exec).outcome() ==
           GuaranteeOutcome::Violated;
  ExploreLimits Explore;
  Explore.Shared = &B;
  return checkThinAir(Orig, Transformed, freshConstantFor(Orig), Exec,
                      Explore)
             .outcome() == GuaranteeOutcome::Violated;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

uint64_t FuzzReport::uninjectedFailures() const {
  uint64_t N = 0;
  for (const FuzzFailure &F : Failures)
    if (!F.Injected)
      ++N;
  return N;
}

std::string FuzzReport::summary() const {
  std::string Out = "fuzz: " + std::to_string(ProgramsRun) + " programs, " +
                    std::to_string(ChecksRun) + " checks (" +
                    std::to_string(ProvedQueries) + " proved, " +
                    std::to_string(UnknownQueries) + " unknown, " +
                    std::to_string(EscalatedQueries) + " escalated), " +
                    std::to_string(Failures.size()) + " failures (" +
                    std::to_string(uninjectedFailures()) + " uninjected, " +
                    std::to_string(InjectedRuns) + " injected runs), " +
                    std::to_string(ElapsedMs) + "ms";
  if (DeadlineHit)
    Out += " [deadline hit]";
  return Out;
}

std::string FuzzReport::toJson() const {
  std::string Out = "{\n";
  auto Field = [&](const std::string &K, const std::string &V, bool Comma) {
    Out += "  \"" + K + "\": " + V + (Comma ? ",\n" : "\n");
  };
  Field("programs_run", std::to_string(ProgramsRun), true);
  Field("checks_run", std::to_string(ChecksRun), true);
  Field("proved", std::to_string(ProvedQueries), true);
  Field("unknown", std::to_string(UnknownQueries), true);
  Field("escalated", std::to_string(EscalatedQueries), true);
  Field("injected_runs", std::to_string(InjectedRuns), true);
  Field("uninjected_failures", std::to_string(uninjectedFailures()), true);
  Field("deadline_hit", DeadlineHit ? "true" : "false", true);
  Field("elapsed_ms", std::to_string(ElapsedMs), true);
  Out += "  \"failures\": [";
  for (size_t I = 0; I < Failures.size(); ++I) {
    const FuzzFailure &F = Failures[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"program_index\": " + std::to_string(F.ProgramIndex);
    Out += ", \"property\": \"" + jsonEscape(F.Property) + "\"";
    Out += ", \"injected\": " + std::string(F.Injected ? "true" : "false");
    Out += ", \"detail\": \"" + jsonEscape(F.Detail) + "\"";
    Out += ", \"original_stmts\": " + std::to_string(F.OriginalStmts);
    Out += ", \"reduced_stmts\": " + std::to_string(F.ReducedStmts);
    Out += ", \"shrink_rounds\": " + std::to_string(F.ShrinkRounds);
    Out += ", \"repro_path\": \"" + jsonEscape(F.ReproPath) + "\"";
    Out += ", \"reduced_source\": \"" + jsonEscape(F.ReducedSource) + "\"";
    Out += "}";
  }
  Out += Failures.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

FuzzReport tracesafe::runFuzz(const FuzzOptions &Options) {
  FuzzReport Report;
  auto Start = std::chrono::steady_clock::now();
  auto ElapsedMs = [&]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };

  // Budget for shrink-predicate re-checks: one mid-ladder rung.
  BudgetSpec ShrinkCheckSpec =
      Options.Escalation.Initial.scaled(Options.Escalation.Growth,
                                        Options.Escalation.Ceiling);

  auto Track = [](FuzzReport &R, VerdictKind Kind, size_t Attempts) {
    ++R.ChecksRun;
    if (Attempts > 1)
      ++R.EscalatedQueries;
    if (Kind == VerdictKind::Unknown)
      ++R.UnknownQueries;
    if (Kind == VerdictKind::Proved)
      ++R.ProvedQueries;
  };

  auto RecordFailure = [&](FuzzReport &Local, uint64_t Index,
                           const std::string &Property, bool Injected,
                           std::string Detail, const Program &Orig,
                           const TransformFn &Transform, uint64_t ChainSeed) {
    FuzzFailure F;
    F.ProgramIndex = Index;
    F.Property = Property;
    F.Injected = Injected;
    F.Detail = std::move(Detail);
    F.OriginalSource = printProgram(Orig);
    F.OriginalStmts = countStatements(Orig);

    FailurePredicate Pred = [&](const Program &Q) {
      if (Q.threadCount() == 0)
        return false;
      std::optional<Program> TQ = Transform(Q);
      if (!TQ)
        return false;
      return propertyViolated(Q, *TQ, Property, ShrinkCheckSpec, ChainSeed,
                              Options.MaxChainSteps);
    };
    ShrinkResult SR = shrinkProgram(Orig, Pred, Options.Shrink);
    F.ReducedSource = printProgram(SR.Reduced);
    F.ReducedStmts = countStatements(SR.Reduced);
    F.ShrinkRounds = SR.Rounds;
    F.ShrinkCandidates = SR.CandidatesTried;

    if (!Options.ReproDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Options.ReproDir, Ec);
      std::string Path = Options.ReproDir + "/repro_" +
                         std::to_string(Index) + "_" + Property + ".tsl";
      std::ofstream Os(Path);
      if (Os) {
        Os << "// tracesafe fuzz repro (minimised)\n"
           << "// property: " << Property << "\n"
           << "// run seed: " << Options.Seed
           << ", program index: " << Index << "\n"
           << "// injected unsafe pass: " << (F.Injected ? "yes" : "no")
           << "\n"
           << "// detail: " << F.Detail << "\n"
           << "// statements: " << F.OriginalStmts << " -> "
           << F.ReducedStmts << " in " << F.ShrinkRounds
           << " shrink rounds\n"
           << F.ReducedSource;
        F.ReproPath = Path;
      }
    }
    Local.Failures.push_back(std::move(F));
  };

  // One fuzz iteration, accumulating into \p Local. Everything here
  // depends only on (Options.Seed, I), so the campaign is deterministic
  // for any worker count.
  auto RunOne = [&](uint64_t I, FuzzReport &Local) {
    uint64_t SubSeed = mixSeeds(Options.Seed, I);
    Rng R(SubSeed);

    // Vary the program shape so one run sweeps all disciplines and a mix
    // of thread counts / input use.
    GenOptions G = Options.Gen;
    switch (I % 4) {
    case 0:
      G.Discipline = GenDiscipline::Racy;
      break;
    case 1:
      G.Discipline = GenDiscipline::LockDiscipline;
      break;
    case 2:
      G.Discipline = GenDiscipline::VolatileLocations;
      break;
    default:
      G.Discipline = GenDiscipline::Mixed;
      break;
    }
    if (I % 7 == 3)
      G.Threads = G.Threads < 3 ? G.Threads + 1 : G.Threads;
    G.AllowInput = I % 11 == 5;

    Program P = generateProgram(R, G);
    ++Local.ProgramsRun;

    bool Injected = false;
    TransformFn Transform;
    uint64_t ChainSeed = mixSeeds(SubSeed, 0x5eed);
    if (Options.InjectUnsafe && Options.InjectEvery &&
        I % Options.InjectEvery == 0 && applyFirstUnsafe(P)) {
      Injected = true;
      Transform = [](const Program &Q) { return applyFirstUnsafe(Q); };
    } else {
      size_t MaxSteps = Options.MaxChainSteps;
      Transform = [ChainSeed, MaxSteps](const Program &Q)
          -> std::optional<Program> {
        return applySafeChain(Q, ChainSeed, MaxSteps);
      };
    }
    if (Injected)
      ++Local.InjectedRuns;

    Program T = *Transform(P);

    Escalated<DrfGuaranteeReport> Drf =
        escalateDrfGuarantee(P, T, Options.Escalation);
    Track(Local, Drf.Final.Kind, Drf.Attempts.size());
    if (Drf.Final.isRefuted())
      RecordFailure(Local, I, "drf-guarantee", Injected,
                    drfDetail(*Drf.Final.Witness), P, Transform, ChainSeed);

    if (Options.CheckThinAir) {
      Value C = freshConstantFor(P);
      Escalated<ThinAirReport> Ta =
          escalateThinAir(P, T, C, Options.Escalation);
      Track(Local, Ta.Final.Kind, Ta.Attempts.size());
      if (Ta.Final.isRefuted())
        RecordFailure(Local, I, "thin-air", Injected,
                      thinAirDetail(*Ta.Final.Witness), P, Transform,
                      ChainSeed);
    }

    if (Options.CheckSemanticSteps && !Injected) {
      // Satellite: Lemma 4/5 on every step of the safe chain, under one
      // mid-ladder budget (step checks are cheap relative to the
      // guarantee queries; escalation would triple the traceset builds).
      Rng CR(ChainSeed);
      TransformChain Chain =
          randomChain(P, RuleSet::all(), Options.MaxChainSteps, CR);
      Budget B(ShrinkCheckSpec);
      CheckVerdict V = semanticChainVerdict(P, Chain, B);
      Track(Local,
            V == CheckVerdict::Holds    ? VerdictKind::Proved
            : V == CheckVerdict::Fails  ? VerdictKind::Refuted
                                        : VerdictKind::Unknown,
            1);
      if (V == CheckVerdict::Fails)
        RecordFailure(Local, I, "semantic-step", false,
                      "chain step is not a semantic elimination/reordering "
                      "of its predecessor",
                      P, Transform, ChainSeed);
    }
  };

  auto Merge = [](FuzzReport &Into, FuzzReport &&From) {
    Into.ProgramsRun += From.ProgramsRun;
    Into.ChecksRun += From.ChecksRun;
    Into.ProvedQueries += From.ProvedQueries;
    Into.UnknownQueries += From.UnknownQueries;
    Into.EscalatedQueries += From.EscalatedQueries;
    Into.InjectedRuns += From.InjectedRuns;
    for (FuzzFailure &F : From.Failures)
      Into.Failures.push_back(std::move(F));
  };

  if (Options.Jobs == 1) {
    for (uint64_t I = 0; I < Options.Programs; ++I) {
      if (Options.DeadlineMs > 0 && ElapsedMs() >= Options.DeadlineMs) {
        Report.DeadlineHit = true;
        break;
      }
      RunOne(I, Report);
    }
  } else {
    // Workers claim program indices from a shared counter; each keeps a
    // local report, merged (and failures sorted) afterwards, so the
    // output is independent of scheduling.
    unsigned Jobs = Options.Jobs == 0 ? ThreadPool::defaultWorkerCount()
                                      : Options.Jobs;
    if (Jobs > Options.Programs)
      Jobs = static_cast<unsigned>(Options.Programs ? Options.Programs : 1);
    std::unique_ptr<ThreadPool> Owned;
    ThreadPool *Pool = &ThreadPool::shared();
    if (Options.Jobs > 1) {
      Owned = std::make_unique<ThreadPool>(Jobs);
      Pool = Owned.get();
    }
    std::vector<FuzzReport> Locals(Jobs);
    std::atomic<uint64_t> Next{0};
    std::atomic<bool> DeadlineHit{false};
    {
      ThreadPool::TaskGroup G(*Pool);
      for (unsigned W = 0; W < Jobs; ++W)
        G.spawn([&, W] {
          for (;;) {
            uint64_t I = Next.fetch_add(1, std::memory_order_relaxed);
            if (I >= Options.Programs)
              return;
            if (Options.DeadlineMs > 0 &&
                ElapsedMs() >= Options.DeadlineMs) {
              DeadlineHit.store(true, std::memory_order_relaxed);
              return;
            }
            RunOne(I, Locals[W]);
          }
        });
    }
    for (FuzzReport &L : Locals)
      Merge(Report, std::move(L));
    Report.DeadlineHit = DeadlineHit.load(std::memory_order_relaxed);
    std::sort(Report.Failures.begin(), Report.Failures.end(),
              [](const FuzzFailure &A, const FuzzFailure &B) {
                return std::tie(A.ProgramIndex, A.Property) <
                       std::tie(B.ProgramIndex, B.Property);
              });
  }

  Report.ElapsedMs = ElapsedMs();
  return Report;
}
