#include "verify/Fuzz.h"

#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "opt/Unsafe.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace tracesafe;

namespace {

/// SplitMix-style mixing so per-program sub-seeds are decorrelated.
uint64_t mixSeeds(uint64_t A, uint64_t B) {
  uint64_t Z = A + 0x9E3779B97F4A7C15ULL * (B + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// A deterministic transformation of a program: the same function is used
/// on the generated program and on every shrink candidate, so the failure
/// predicate stays meaningful as the program gets smaller.
using TransformFn = std::function<std::optional<Program>(const Program &)>;

std::optional<Program> applyFirstUnsafe(const Program &P) {
  // Prefer lock elision: on a lock-disciplined DRF program it reliably
  // manufactures a data race (a checkable Violated). Unsafe const-prop
  // only ever *removes* behaviours in this language, so behaviour
  // inclusion — a subset check — cannot catch it; it stays as the
  // fallback to keep the transform total on lock-free programs.
  std::vector<LockPair> Pairs = findLockPairs(P);
  if (!Pairs.empty())
    return elideLockPair(P, Pairs.front());
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  if (!Sites.empty())
    return applyUnsafeConstProp(P, Sites.front());
  return std::nullopt;
}

Program applySafeChain(const Program &P, uint64_t ChainSeed,
                       size_t MaxSteps) {
  Rng R(ChainSeed);
  return randomChain(P, RuleSet::all(), MaxSteps, R).Result;
}

std::string drfDetail(const DrfGuaranteeReport &R) {
  if (!R.TransformedDrf)
    return "transformation introduced a data race into a DRF program";
  if (!R.BehavioursPreserved)
    return "transformation introduced a new behaviour";
  return "DRF guarantee violated";
}

std::string thinAirDetail(const ThinAirReport &R) {
  if (R.TransformedOutputs)
    return "transformed program outputs the fresh constant " +
           std::to_string(R.Constant);
  return "transformed traceset has an out-of-thin-air origin for " +
         std::to_string(R.Constant);
}

/// Definitive re-check of one property on a shrink candidate, under a
/// fixed one-shot budget. Unknown counts as "does not reproduce" so budget
/// noise cannot steer the reduction toward expensive programs.
bool propertyViolated(const Program &Orig, const Program &Transformed,
                      const std::string &Property, const BudgetSpec &Spec) {
  Budget B(Spec);
  ExecLimits Exec;
  Exec.Shared = &B;
  if (Property == "drf-guarantee")
    return checkDrfGuarantee(Orig, Transformed, Exec).outcome() ==
           GuaranteeOutcome::Violated;
  ExploreLimits Explore;
  Explore.Shared = &B;
  return checkThinAir(Orig, Transformed, freshConstantFor(Orig), Exec,
                      Explore)
             .outcome() == GuaranteeOutcome::Violated;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

uint64_t FuzzReport::uninjectedFailures() const {
  uint64_t N = 0;
  for (const FuzzFailure &F : Failures)
    if (!F.Injected)
      ++N;
  return N;
}

std::string FuzzReport::summary() const {
  std::string Out = "fuzz: " + std::to_string(ProgramsRun) + " programs, " +
                    std::to_string(ChecksRun) + " checks (" +
                    std::to_string(ProvedQueries) + " proved, " +
                    std::to_string(UnknownQueries) + " unknown, " +
                    std::to_string(EscalatedQueries) + " escalated), " +
                    std::to_string(Failures.size()) + " failures (" +
                    std::to_string(uninjectedFailures()) + " uninjected, " +
                    std::to_string(InjectedRuns) + " injected runs), " +
                    std::to_string(ElapsedMs) + "ms";
  if (DeadlineHit)
    Out += " [deadline hit]";
  return Out;
}

std::string FuzzReport::toJson() const {
  std::string Out = "{\n";
  auto Field = [&](const std::string &K, const std::string &V, bool Comma) {
    Out += "  \"" + K + "\": " + V + (Comma ? ",\n" : "\n");
  };
  Field("programs_run", std::to_string(ProgramsRun), true);
  Field("checks_run", std::to_string(ChecksRun), true);
  Field("proved", std::to_string(ProvedQueries), true);
  Field("unknown", std::to_string(UnknownQueries), true);
  Field("escalated", std::to_string(EscalatedQueries), true);
  Field("injected_runs", std::to_string(InjectedRuns), true);
  Field("uninjected_failures", std::to_string(uninjectedFailures()), true);
  Field("deadline_hit", DeadlineHit ? "true" : "false", true);
  Field("elapsed_ms", std::to_string(ElapsedMs), true);
  Out += "  \"failures\": [";
  for (size_t I = 0; I < Failures.size(); ++I) {
    const FuzzFailure &F = Failures[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"program_index\": " + std::to_string(F.ProgramIndex);
    Out += ", \"property\": \"" + jsonEscape(F.Property) + "\"";
    Out += ", \"injected\": " + std::string(F.Injected ? "true" : "false");
    Out += ", \"detail\": \"" + jsonEscape(F.Detail) + "\"";
    Out += ", \"original_stmts\": " + std::to_string(F.OriginalStmts);
    Out += ", \"reduced_stmts\": " + std::to_string(F.ReducedStmts);
    Out += ", \"shrink_rounds\": " + std::to_string(F.ShrinkRounds);
    Out += ", \"repro_path\": \"" + jsonEscape(F.ReproPath) + "\"";
    Out += ", \"reduced_source\": \"" + jsonEscape(F.ReducedSource) + "\"";
    Out += "}";
  }
  Out += Failures.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

FuzzReport tracesafe::runFuzz(const FuzzOptions &Options) {
  FuzzReport Report;
  auto Start = std::chrono::steady_clock::now();
  auto ElapsedMs = [&]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };

  // Budget for shrink-predicate re-checks: one mid-ladder rung.
  BudgetSpec ShrinkCheckSpec =
      Options.Escalation.Initial.scaled(Options.Escalation.Growth,
                                        Options.Escalation.Ceiling);

  auto Track = [&](VerdictKind Kind, size_t Attempts) {
    ++Report.ChecksRun;
    if (Attempts > 1)
      ++Report.EscalatedQueries;
    if (Kind == VerdictKind::Unknown)
      ++Report.UnknownQueries;
    if (Kind == VerdictKind::Proved)
      ++Report.ProvedQueries;
  };

  auto RecordFailure = [&](uint64_t Index, const std::string &Property,
                           bool Injected, std::string Detail,
                           const Program &Orig,
                           const TransformFn &Transform) {
    FuzzFailure F;
    F.ProgramIndex = Index;
    F.Property = Property;
    F.Injected = Injected;
    F.Detail = std::move(Detail);
    F.OriginalSource = printProgram(Orig);
    F.OriginalStmts = countStatements(Orig);

    FailurePredicate Pred = [&](const Program &Q) {
      if (Q.threadCount() == 0)
        return false;
      std::optional<Program> TQ = Transform(Q);
      if (!TQ)
        return false;
      return propertyViolated(Q, *TQ, Property, ShrinkCheckSpec);
    };
    ShrinkResult SR = shrinkProgram(Orig, Pred, Options.Shrink);
    F.ReducedSource = printProgram(SR.Reduced);
    F.ReducedStmts = countStatements(SR.Reduced);
    F.ShrinkRounds = SR.Rounds;
    F.ShrinkCandidates = SR.CandidatesTried;

    if (!Options.ReproDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Options.ReproDir, Ec);
      std::string Path = Options.ReproDir + "/repro_" +
                         std::to_string(Index) + "_" + Property + ".tsl";
      std::ofstream Os(Path);
      if (Os) {
        Os << "// tracesafe fuzz repro (minimised)\n"
           << "// property: " << Property << "\n"
           << "// run seed: " << Options.Seed
           << ", program index: " << Index << "\n"
           << "// injected unsafe pass: " << (F.Injected ? "yes" : "no")
           << "\n"
           << "// detail: " << F.Detail << "\n"
           << "// statements: " << F.OriginalStmts << " -> "
           << F.ReducedStmts << " in " << F.ShrinkRounds
           << " shrink rounds\n"
           << F.ReducedSource;
        F.ReproPath = Path;
      }
    }
    Report.Failures.push_back(std::move(F));
  };

  for (uint64_t I = 0; I < Options.Programs; ++I) {
    if (Options.DeadlineMs > 0 && ElapsedMs() >= Options.DeadlineMs) {
      Report.DeadlineHit = true;
      break;
    }
    uint64_t SubSeed = mixSeeds(Options.Seed, I);
    Rng R(SubSeed);

    // Vary the program shape so one run sweeps all disciplines and a mix
    // of thread counts / input use.
    GenOptions G = Options.Gen;
    switch (I % 4) {
    case 0:
      G.Discipline = GenDiscipline::Racy;
      break;
    case 1:
      G.Discipline = GenDiscipline::LockDiscipline;
      break;
    case 2:
      G.Discipline = GenDiscipline::VolatileLocations;
      break;
    default:
      G.Discipline = GenDiscipline::Mixed;
      break;
    }
    if (I % 7 == 3)
      G.Threads = G.Threads < 3 ? G.Threads + 1 : G.Threads;
    G.AllowInput = I % 11 == 5;

    Program P = generateProgram(R, G);
    ++Report.ProgramsRun;

    bool Injected = false;
    TransformFn Transform;
    if (Options.InjectUnsafe && Options.InjectEvery &&
        I % Options.InjectEvery == 0 && applyFirstUnsafe(P)) {
      Injected = true;
      Transform = [](const Program &Q) { return applyFirstUnsafe(Q); };
    } else {
      uint64_t ChainSeed = mixSeeds(SubSeed, 0x5eed);
      size_t MaxSteps = Options.MaxChainSteps;
      Transform = [ChainSeed, MaxSteps](const Program &Q)
          -> std::optional<Program> {
        return applySafeChain(Q, ChainSeed, MaxSteps);
      };
    }
    if (Injected)
      ++Report.InjectedRuns;

    Program T = *Transform(P);

    Escalated<DrfGuaranteeReport> Drf =
        escalateDrfGuarantee(P, T, Options.Escalation);
    Track(Drf.Final.Kind, Drf.Attempts.size());
    if (Drf.Final.isRefuted())
      RecordFailure(I, "drf-guarantee", Injected,
                    drfDetail(*Drf.Final.Witness), P, Transform);

    if (Options.CheckThinAir) {
      Value C = freshConstantFor(P);
      Escalated<ThinAirReport> Ta =
          escalateThinAir(P, T, C, Options.Escalation);
      Track(Ta.Final.Kind, Ta.Attempts.size());
      if (Ta.Final.isRefuted())
        RecordFailure(I, "thin-air", Injected, thinAirDetail(*Ta.Final.Witness),
                      P, Transform);
    }
  }

  Report.ElapsedMs = ElapsedMs();
  return Report;
}
