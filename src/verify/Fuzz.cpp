#include "verify/Fuzz.h"

#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "opt/Unsafe.h"
#include "support/ThreadPool.h"
#include "verify/BehaviourCache.h"
#include "verify/Theorems.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <tuple>

using namespace tracesafe;

namespace {

/// SplitMix-style mixing so per-program sub-seeds are decorrelated.
uint64_t mixSeeds(uint64_t A, uint64_t B) {
  uint64_t Z = A + 0x9E3779B97F4A7C15ULL * (B + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// A deterministic transformation of a program: the same function is used
/// on the generated program and on every shrink candidate, so the failure
/// predicate stays meaningful as the program gets smaller.
using TransformFn = std::function<std::optional<Program>(const Program &)>;

std::optional<Program> applyFirstUnsafe(const Program &P) {
  // Prefer lock elision: on a lock-disciplined DRF program it reliably
  // manufactures a data race (a checkable Violated). Unsafe const-prop
  // only ever *removes* behaviours in this language, so behaviour
  // inclusion — a subset check — cannot catch it; it stays as the
  // fallback to keep the transform total on lock-free programs.
  std::vector<LockPair> Pairs = findLockPairs(P);
  if (!Pairs.empty())
    return elideLockPair(P, Pairs.front());
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  if (!Sites.empty())
    return applyUnsafeConstProp(P, Sites.front());
  return std::nullopt;
}

Program applySafeChain(const Program &P, uint64_t ChainSeed,
                       size_t MaxSteps) {
  Rng R(ChainSeed);
  return randomChain(P, RuleSet::all(), MaxSteps, R).Result;
}

std::string drfDetail(const DrfGuaranteeReport &R) {
  if (!R.TransformedDrf)
    return "transformation introduced a data race into a DRF program";
  if (!R.BehavioursPreserved)
    return "transformation introduced a new behaviour";
  return "DRF guarantee violated";
}

std::string thinAirDetail(const ThinAirReport &R) {
  if (R.TransformedOutputs)
    return "transformed program outputs the fresh constant " +
           std::to_string(R.Constant);
  return "transformed traceset has an out-of-thin-air origin for " +
         std::to_string(R.Constant);
}

/// Satellite check: re-walk a safe chain verifying Lemma 4/5 per step —
/// each successor traceset must be a semantic elimination (E rules) or a
/// reordering of an elimination (R rules) of its predecessor. Fails on the
/// first failing step; Unknown when any step was truncated.
CheckVerdict semanticChainVerdict(const Program &Orig,
                                  const TransformChain &Chain, Budget &B) {
  ExploreLimits Explore;
  Explore.Shared = &B;
  std::vector<Value> Domain = defaultDomainFor(Orig, 2);
  Program Cur = Orig;
  ExploreStats Stats;
  // Tracesets come from the cross-query cache: chain walks revisit the
  // same intermediate programs constantly (every chain prefix, every
  // shrink candidate re-check), and the cache replays the recorded cost
  // against B so a hit truncates a tight budget exactly where
  // recomputation would.
  std::shared_ptr<const Traceset> CurSet =
      BehaviourCache::global().tracesetFor(Cur, Domain, Explore, &Stats);
  CheckVerdict Out = CheckVerdict::Holds;
  for (const RewriteSite &Site : Chain.Steps) {
    Program Next = applyRewrite(Cur, Site);
    ExploreStats NextStats;
    std::shared_ptr<const Traceset> NextSet =
        BehaviourCache::global().tracesetFor(Next, Domain, Explore,
                                             &NextStats);
    CheckVerdict V;
    if (Stats.Truncated || NextStats.Truncated)
      V = CheckVerdict::Unknown;
    else if (isEliminationRule(Site.Rule))
      V = checkElimination(*CurSet, *NextSet).Verdict;
    else
      V = checkEliminationThenReordering(*CurSet, *NextSet).Verdict;
    if (V == CheckVerdict::Fails)
      return CheckVerdict::Fails;
    if (V == CheckVerdict::Unknown)
      Out = CheckVerdict::Unknown;
    Cur = std::move(Next);
    CurSet = std::move(NextSet);
    Stats = NextStats;
  }
  return Out;
}

/// Definitive re-check of one property on a shrink candidate, under a
/// fixed one-shot budget. Unknown counts as "does not reproduce" so budget
/// noise cannot steer the reduction toward expensive programs. For the
/// semantic-step property the chain is regenerated from \p ChainSeed on
/// the candidate itself.
bool propertyViolated(const Program &Orig, const Program &Transformed,
                      const std::string &Property, const BudgetSpec &Spec,
                      uint64_t ChainSeed, size_t MaxChainSteps,
                      const CancelToken *Cancel) {
  Budget B(Spec, Cancel);
  if (Property == "semantic-step") {
    Rng R(ChainSeed);
    TransformChain C = randomChain(Orig, RuleSet::all(), MaxChainSteps, R);
    return semanticChainVerdict(Orig, C, B) == CheckVerdict::Fails;
  }
  ExecLimits Exec;
  Exec.Shared = &B;
  if (Property == "drf-guarantee")
    return checkDrfGuarantee(Orig, Transformed, Exec).outcome() ==
           GuaranteeOutcome::Violated;
  ExploreLimits Explore;
  Explore.Shared = &B;
  return checkThinAir(Orig, Transformed, freshConstantFor(Orig), Exec,
                      Explore)
             .outcome() == GuaranteeOutcome::Violated;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

//===--------------------------------------------------------------------===//
// Checkpoint journal.
//
// Append-only, line-oriented, one *record* per finished program index:
//   H \t 1 \t <seed> \t <programs>                 (file header, once)
//   S \t <idx> \t <checks> \t <proved> \t <unknown> \t <escalated>
//     \t <injected> \t <faulted> \t <degraded>
//   F \t <idx> \t ... one line per failure, strings escaped ...
//   D \t <idx>                                     (commit marker)
// A record only counts once its D line is on disk; a crash mid-record
// leaves a tail the loader discards, and the index is simply re-run on
// resume. Strings escape '\\', '\t', '\n' so the format stays line- and
// tab-splittable without a real parser.
//===--------------------------------------------------------------------===//

constexpr int JournalVersion = 1;

/// One finished program index's contribution to the campaign report.
/// RunOne accumulates into this, and exactly this is journaled, so a
/// resumed index merges identically to a re-run one.
struct IndexRecord {
  uint64_t Checks = 0;
  uint64_t Proved = 0;
  uint64_t Unknown = 0;
  uint64_t Escalated = 0;
  bool Injected = false;
  uint64_t Faulted = 0;
  uint64_t Degraded = 0;
  std::vector<FuzzFailure> Failures;
};

std::string escField(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescField(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 >= S.size()) {
      Out += S[I];
      continue;
    }
    switch (S[++I]) {
    case '\\':
      Out += '\\';
      break;
    case 't':
      Out += '\t';
      break;
    case 'n':
      Out += '\n';
      break;
    default: // Unknown escape: keep both chars (forward compatibility).
      Out += '\\';
      Out += S[I];
    }
  }
  return Out;
}

std::vector<std::string> splitTabs(const std::string &Line) {
  std::vector<std::string> Out;
  size_t Begin = 0;
  while (true) {
    size_t Tab = Line.find('\t', Begin);
    if (Tab == std::string::npos) {
      Out.push_back(Line.substr(Begin));
      return Out;
    }
    Out.push_back(Line.substr(Begin, Tab - Begin));
    Begin = Tab + 1;
  }
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End == S.c_str() + S.size();
}

void writeFailureLine(std::ostream &Os, uint64_t Idx, const FuzzFailure &F) {
  Os << "F\t" << Idx << '\t' << escField(F.Property) << '\t'
     << (F.Injected ? 1 : 0) << '\t' << F.OriginalStmts << '\t'
     << F.ReducedStmts << '\t' << F.ShrinkRounds << '\t'
     << F.ShrinkCandidates << '\t' << F.ChainSteps << '\t'
     << F.ReducedChainSteps << '\t' << escField(F.ReproPath) << '\t'
     << escField(F.Detail) << '\t' << escField(F.ReducedChain) << '\t'
     << escField(F.OriginalSource) << '\t' << escField(F.ReducedSource)
     << '\n';
}

bool parseFailureLine(const std::vector<std::string> &T, FuzzFailure &F) {
  if (T.size() != 15)
    return false;
  uint64_t N = 0;
  if (!parseU64(T[1], N))
    return false;
  F.ProgramIndex = N;
  F.Property = unescField(T[2]);
  F.Injected = T[3] == "1";
  if (!parseU64(T[4], N))
    return false;
  F.OriginalStmts = N;
  if (!parseU64(T[5], N))
    return false;
  F.ReducedStmts = N;
  if (!parseU64(T[6], N))
    return false;
  F.ShrinkRounds = static_cast<unsigned>(N);
  if (!parseU64(T[7], F.ShrinkCandidates))
    return false;
  if (!parseU64(T[8], N))
    return false;
  F.ChainSteps = N;
  if (!parseU64(T[9], N))
    return false;
  F.ReducedChainSteps = N;
  F.ReproPath = unescField(T[10]);
  F.Detail = unescField(T[11]);
  F.ReducedChain = unescField(T[12]);
  F.OriginalSource = unescField(T[13]);
  F.ReducedSource = unescField(T[14]);
  return true;
}

/// Serialised writer for the checkpoint journal. Each record is written
/// and flushed under one lock acquisition, so concurrent campaign workers
/// interleave whole records, never lines.
class Journal {
public:
  bool open(const std::string &Path, bool Append, uint64_t Seed,
            uint64_t Programs) {
    Os.open(Path, Append ? std::ios::app : std::ios::trunc);
    if (!Os)
      return false;
    if (!Append) {
      Os << "H\t" << JournalVersion << '\t' << Seed << '\t' << Programs
         << '\n';
      Os.flush();
    }
    return true;
  }

  bool active() const { return Os.is_open(); }

  void record(uint64_t Idx, const IndexRecord &R) {
    if (!Os.is_open())
      return;
    std::lock_guard<std::mutex> Lock(M);
    Os << "S\t" << Idx << '\t' << R.Checks << '\t' << R.Proved << '\t'
       << R.Unknown << '\t' << R.Escalated << '\t' << (R.Injected ? 1 : 0)
       << '\t' << R.Faulted << '\t' << R.Degraded << '\n';
    for (const FuzzFailure &F : R.Failures)
      writeFailureLine(Os, Idx, F);
    Os << "D\t" << Idx << '\n';
    Os.flush();
  }

private:
  std::mutex M;
  std::ofstream Os;
};

/// Loads every committed (D-terminated) record of \p Path. False when the
/// file is unreadable or its header does not describe the (Seed, Programs)
/// campaign — the caller then starts fresh. Tolerates a torn tail and
/// arbitrary garbage lines; an index recorded twice keeps the later
/// record.
bool loadJournal(const std::string &Path, uint64_t Seed, uint64_t Programs,
                 std::map<uint64_t, IndexRecord> &Out) {
  std::ifstream Is(Path);
  if (!Is)
    return false;
  std::string Line;
  if (!std::getline(Is, Line))
    return false;
  {
    std::vector<std::string> T = splitTabs(Line);
    uint64_t V = 0, S = 0, P = 0;
    if (T.size() != 4 || T[0] != "H" || !parseU64(T[1], V) ||
        !parseU64(T[2], S) || !parseU64(T[3], P) || V != JournalVersion ||
        S != Seed || P != Programs)
      return false;
  }
  std::map<uint64_t, IndexRecord> Pending;
  while (std::getline(Is, Line)) {
    std::vector<std::string> T = splitTabs(Line);
    if (T.size() < 2)
      continue;
    uint64_t Idx = 0;
    if (!parseU64(T[1], Idx) || Idx >= Programs)
      continue;
    if (T[0] == "S") {
      if (T.size() != 9)
        continue;
      IndexRecord R;
      uint64_t Inj = 0;
      if (!parseU64(T[2], R.Checks) || !parseU64(T[3], R.Proved) ||
          !parseU64(T[4], R.Unknown) || !parseU64(T[5], R.Escalated) ||
          !parseU64(T[6], Inj) || !parseU64(T[7], R.Faulted) ||
          !parseU64(T[8], R.Degraded))
        continue;
      R.Injected = Inj != 0;
      Pending[Idx] = std::move(R); // Restarts any earlier torn record.
    } else if (T[0] == "F") {
      auto It = Pending.find(Idx);
      FuzzFailure F;
      if (It != Pending.end() && parseFailureLine(T, F))
        It->second.Failures.push_back(std::move(F));
    } else if (T[0] == "D") {
      auto It = Pending.find(Idx);
      if (It != Pending.end()) {
        Out[Idx] = std::move(It->second);
        Pending.erase(It);
      }
    }
  }
  return true;
}

//===--------------------------------------------------------------------===//
// Coverage-guided seed scheduling.
//
// Program indices are grouped into epochs of SchedulerEpoch. Inside epoch
// 0 the generator discipline rotates uniformly (exactly the seed
// campaign's schedule); from epoch 1 on it is a seeded weighted pick,
// with each discipline bucket weighted by how "interesting" its programs
// of *earlier* epochs were (Unknowns, escalations, and uninjected repros
// score; proved-everywhere programs do not). The campaign loops place a
// completion barrier at every epoch boundary, so the weights for epoch k
// are a pure function of a deterministic record set — the report stays
// identical for every worker count, and a resumed campaign recomputes
// the same schedule from its journal.
//===--------------------------------------------------------------------===//

constexpr uint64_t SchedulerEpoch = 32;

constexpr std::array<GenDiscipline, 4> SchedulerBuckets = {
    GenDiscipline::Racy, GenDiscipline::LockDiscipline,
    GenDiscipline::VolatileLocations, GenDiscipline::Mixed};

class SeedScheduler {
public:
  explicit SeedScheduler(uint64_t Seed) : Seed(Seed) {}

  GenDiscipline disciplineFor(uint64_t I) {
    std::lock_guard<std::mutex> Lock(M);
    return SchedulerBuckets[bucketLocked(I)];
  }

  /// Folds a committed record into its index's bucket. Placeholder
  /// records (Checks == 0: the index faulted before running any check)
  /// are ignored — in the run that faulted they contributed nothing to
  /// the weights either, so ignoring them keeps a resumed campaign's
  /// schedule identical to the original's.
  void observe(uint64_t I, const IndexRecord &R) {
    if (R.Checks == 0)
      return;
    uint64_t Score = R.Unknown + R.Escalated;
    for (const FuzzFailure &F : R.Failures)
      if (!F.Injected)
        Score += 4;
    std::lock_guard<std::mutex> Lock(M);
    Observed[I] = Score;
  }

private:
  struct Bucket {
    uint64_t Runs = 0;
    uint64_t Score = 0;
  };

  unsigned bucketLocked(uint64_t I) {
    uint64_t E = I / SchedulerEpoch;
    if (E == 0)
      return static_cast<unsigned>(I % SchedulerBuckets.size());
    const std::array<uint64_t, 4> &W = weightsLocked(E);
    uint64_t Total = W[0] + W[1] + W[2] + W[3];
    uint64_t R = mixSeeds(Seed ^ 0x5EEDC0DEULL, I) % Total;
    for (unsigned B = 0; B + 1 < W.size(); ++B) {
      if (R < W[B])
        return B;
      R -= W[B];
    }
    return static_cast<unsigned>(W.size()) - 1;
  }

  /// Weights for epoch \p E (E >= 1), built lazily in epoch order:
  /// Weights[K] covers epoch K+1 and is computed by folding epoch K's
  /// observed records into the cumulative bucket aggregate. The fold
  /// calls bucketLocked for epoch-K indices, whose weights are already
  /// built (or epoch 0's rotation), so the recursion is well-founded.
  const std::array<uint64_t, 4> &weightsLocked(uint64_t E) {
    while (Weights.size() < E) {
      uint64_t Prev = Weights.size();
      uint64_t Begin = Prev * SchedulerEpoch;
      for (uint64_t I = Begin; I < Begin + SchedulerEpoch; ++I) {
        auto It = Observed.find(I);
        if (It == Observed.end())
          continue;
        Bucket &B = Agg[bucketLocked(I)];
        ++B.Runs;
        B.Score += It->second;
      }
      std::array<uint64_t, 4> W;
      for (unsigned B = 0; B < W.size(); ++B)
        W[B] = 1 + (Agg[B].Runs ? 16 * Agg[B].Score / Agg[B].Runs : 0);
      Weights.push_back(W);
    }
    return Weights[E - 1];
  }

  const uint64_t Seed;
  std::mutex M;
  std::map<uint64_t, uint64_t> Observed; ///< index -> interest score
  std::array<Bucket, 4> Agg;             ///< epochs folded so far
  std::vector<std::array<uint64_t, 4>> Weights;
};

void mergeIndex(FuzzReport &Into, const IndexRecord &R) {
  ++Into.ProgramsRun;
  Into.ChecksRun += R.Checks;
  Into.ProvedQueries += R.Proved;
  Into.UnknownQueries += R.Unknown;
  Into.EscalatedQueries += R.Escalated;
  Into.InjectedRuns += R.Injected ? 1 : 0;
  Into.FaultedQueries += R.Faulted;
  Into.DegradedQueries += R.Degraded;
  for (const FuzzFailure &F : R.Failures)
    Into.Failures.push_back(F);
}

} // namespace

uint64_t FuzzReport::uninjectedFailures() const {
  uint64_t N = 0;
  for (const FuzzFailure &F : Failures)
    if (!F.Injected)
      ++N;
  return N;
}

std::string FuzzReport::summary() const {
  std::string Out = "fuzz: " + std::to_string(ProgramsRun) + " programs, " +
                    std::to_string(ChecksRun) + " checks (" +
                    std::to_string(ProvedQueries) + " proved, " +
                    std::to_string(UnknownQueries) + " unknown, " +
                    std::to_string(EscalatedQueries) + " escalated), " +
                    std::to_string(Failures.size()) + " failures (" +
                    std::to_string(uninjectedFailures()) + " uninjected, " +
                    std::to_string(InjectedRuns) + " injected runs), " +
                    std::to_string(ElapsedMs) + "ms";
  if (FaultedQueries || DegradedQueries)
    Out += ", " + std::to_string(FaultedQueries) + " faulted/" +
           std::to_string(DegradedQueries) + " degraded";
  if (SkippedFromCheckpoint)
    Out += ", " + std::to_string(SkippedFromCheckpoint) + " resumed";
  if (CacheHits || CacheMisses)
    Out += ", " + std::to_string(CacheHits) + "/" +
           std::to_string(CacheHits + CacheMisses) + " cache hits";
  if (DeadlineHit)
    Out += " [deadline hit]";
  if (Cancelled)
    Out += " [cancelled]";
  return Out;
}

std::string FuzzReport::toJson(bool IncludeVolatile) const {
  std::string Out = "{\n";
  auto Field = [&](const std::string &K, const std::string &V, bool Comma) {
    Out += "  \"" + K + "\": " + V + (Comma ? ",\n" : "\n");
  };
  Field("programs_run", std::to_string(ProgramsRun), true);
  Field("checks_run", std::to_string(ChecksRun), true);
  Field("proved", std::to_string(ProvedQueries), true);
  Field("unknown", std::to_string(UnknownQueries), true);
  Field("escalated", std::to_string(EscalatedQueries), true);
  Field("injected_runs", std::to_string(InjectedRuns), true);
  Field("faulted", std::to_string(FaultedQueries), true);
  Field("degraded", std::to_string(DegradedQueries), true);
  Field("uninjected_failures", std::to_string(uninjectedFailures()), true);
  Field("deadline_hit", DeadlineHit ? "true" : "false", true);
  if (IncludeVolatile) {
    Field("cancelled", Cancelled ? "true" : "false", true);
    Field("skipped_from_checkpoint", std::to_string(SkippedFromCheckpoint),
          true);
    Field("behaviour_cache_hits", std::to_string(CacheHits), true);
    Field("behaviour_cache_misses", std::to_string(CacheMisses), true);
    Field("elapsed_ms", std::to_string(ElapsedMs), true);
  }
  Out += "  \"failures\": [";
  for (size_t I = 0; I < Failures.size(); ++I) {
    const FuzzFailure &F = Failures[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"program_index\": " + std::to_string(F.ProgramIndex);
    Out += ", \"property\": \"" + jsonEscape(F.Property) + "\"";
    Out += ", \"injected\": " + std::string(F.Injected ? "true" : "false");
    Out += ", \"detail\": \"" + jsonEscape(F.Detail) + "\"";
    Out += ", \"original_stmts\": " + std::to_string(F.OriginalStmts);
    Out += ", \"reduced_stmts\": " + std::to_string(F.ReducedStmts);
    Out += ", \"shrink_rounds\": " + std::to_string(F.ShrinkRounds);
    Out += ", \"chain_steps\": " + std::to_string(F.ChainSteps);
    Out += ", \"reduced_chain_steps\": " +
           std::to_string(F.ReducedChainSteps);
    Out += ", \"reduced_chain\": \"" + jsonEscape(F.ReducedChain) + "\"";
    Out += ", \"repro_path\": \"" + jsonEscape(F.ReproPath) + "\"";
    Out += ", \"reduced_source\": \"" + jsonEscape(F.ReducedSource) + "\"";
    Out += "}";
  }
  Out += Failures.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

FuzzReport tracesafe::runFuzz(const FuzzOptions &Options) {
  FuzzReport Report;
  auto Start = std::chrono::steady_clock::now();
  auto ElapsedMs = [&]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };
  auto CancelledNow = [&]() {
    return Options.Cancel && Options.Cancel->requested();
  };

  EscalationPolicy Esc = Options.Escalation;
  Esc.Cancel = Options.Cancel;

  SeedScheduler Sched(Options.Seed);
  BehaviourCache::CacheStats Cache0 = BehaviourCache::global().stats();

  // Budget for shrink-predicate re-checks: one mid-ladder rung.
  BudgetSpec ShrinkCheckSpec =
      Options.Escalation.Initial.scaled(Options.Escalation.Growth,
                                        Options.Escalation.Ceiling);

  auto Track = [](IndexRecord &R, VerdictKind Kind, size_t Attempts) {
    ++R.Checks;
    if (Attempts > 1)
      ++R.Escalated;
    if (Kind == VerdictKind::Unknown)
      ++R.Unknown;
    if (Kind == VerdictKind::Proved)
      ++R.Proved;
  };

  auto RecordFailure = [&](IndexRecord &Rec, uint64_t Index,
                           const std::string &Property, bool Injected,
                           std::string Detail, const Program &Orig,
                           const TransformFn &Transform, uint64_t ChainSeed) {
    FuzzFailure F;
    F.ProgramIndex = Index;
    F.Property = Property;
    F.Injected = Injected;
    F.Detail = std::move(Detail);
    F.OriginalSource = printProgram(Orig);
    F.OriginalStmts = countStatements(Orig);

    FailurePredicate Pred = [&](const Program &Q) {
      if (Q.threadCount() == 0)
        return false;
      std::optional<Program> TQ = Transform(Q);
      if (!TQ)
        return false;
      return propertyViolated(Q, *TQ, Property, ShrinkCheckSpec, ChainSeed,
                              Options.MaxChainSteps, Options.Cancel);
    };
    ShrinkResult SR = shrinkProgram(Orig, Pred, Options.Shrink);
    F.ReducedSource = printProgram(SR.Reduced);
    F.ReducedStmts = countStatements(SR.Reduced);
    F.ShrinkRounds = SR.Rounds;
    F.ShrinkCandidates = SR.CandidatesTried;

    if (!Injected) {
      // Satellite: minimise the rewrite chain too. The chain the failure
      // predicate used on the reduced program is regenerated from the
      // seed, then its step list is delta-debugged to a subsequence that
      // still reproduces when replayed with applyChain.
      Rng CR(ChainSeed);
      TransformChain Chain =
          randomChain(SR.Reduced, RuleSet::all(), Options.MaxChainSteps, CR);
      F.ChainSteps = Chain.Steps.size();
      ChainFailurePredicate CPred =
          [&](const std::vector<RewriteSite> &Steps) {
            std::optional<Program> TQ = applyChain(SR.Reduced, Steps);
            if (!TQ)
              return false;
            if (Property == "semantic-step") {
              Budget B(ShrinkCheckSpec, Options.Cancel);
              TransformChain C{std::move(*TQ), Steps};
              return semanticChainVerdict(SR.Reduced, C, B) ==
                     CheckVerdict::Fails;
            }
            return propertyViolated(SR.Reduced, *TQ, Property,
                                    ShrinkCheckSpec, ChainSeed,
                                    Options.MaxChainSteps, Options.Cancel);
          };
      std::vector<RewriteSite> Final = Chain.Steps;
      if (!Chain.Steps.empty() && CPred(Chain.Steps)) {
        ChainShrinkResult CS =
            shrinkChain(Chain.Steps, CPred, Options.Shrink);
        Final = CS.Steps;
      }
      F.ReducedChainSteps = Final.size();
      for (const RewriteSite &S : Final) {
        if (!F.ReducedChain.empty())
          F.ReducedChain += "; ";
        F.ReducedChain += S.str();
      }
    }

    if (!Options.ReproDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Options.ReproDir, Ec);
      std::string Path = Options.ReproDir + "/repro_" +
                         std::to_string(Index) + "_" + Property + ".tsl";
      std::ofstream Os(Path);
      if (Os) {
        Os << "// tracesafe fuzz repro (minimised)\n"
           << "// property: " << Property << "\n"
           << "// run seed: " << Options.Seed
           << ", program index: " << Index << "\n"
           << "// injected unsafe pass: " << (F.Injected ? "yes" : "no")
           << "\n"
           << "// detail: " << F.Detail << "\n"
           << "// statements: " << F.OriginalStmts << " -> "
           << F.ReducedStmts << " in " << F.ShrinkRounds
           << " shrink rounds\n";
        if (!F.Injected)
          Os << "// chain: " << F.ChainSteps << " -> "
             << F.ReducedChainSteps << " steps"
             << (F.ReducedChain.empty() ? "" : ": " + F.ReducedChain)
             << "\n";
        Os << F.ReducedSource;
        F.ReproPath = Path;
      }
    }
    Rec.Failures.push_back(std::move(F));
  };

  // One fuzz iteration, accumulating into \p Rec. Everything here depends
  // only on (Options.Seed, I), so the campaign is deterministic for any
  // worker count — and a resumed index's journaled record is identical to
  // a re-run one.
  auto RunOne = [&](uint64_t I, IndexRecord &Rec) {
    uint64_t SubSeed = mixSeeds(Options.Seed, I);
    Rng R(SubSeed);

    // Vary the program shape so one run sweeps all disciplines and a mix
    // of thread counts / input use. The discipline itself is coverage-
    // guided (SeedScheduler): epoch 0 rotates uniformly, later epochs
    // weight the buckets that produced Unknowns and repros.
    GenOptions G = Options.Gen;
    G.Discipline = Sched.disciplineFor(I);
    if (I % 7 == 3)
      G.Threads = G.Threads < 3 ? G.Threads + 1 : G.Threads;
    G.AllowInput = I % 11 == 5;

    Program P = generateProgram(R, G);

    bool Injected = false;
    TransformFn Transform;
    uint64_t ChainSeed = mixSeeds(SubSeed, 0x5eed);
    if (Options.InjectUnsafe && Options.InjectEvery &&
        I % Options.InjectEvery == 0 && applyFirstUnsafe(P)) {
      Injected = true;
      Transform = [](const Program &Q) { return applyFirstUnsafe(Q); };
    } else {
      size_t MaxSteps = Options.MaxChainSteps;
      Transform = [ChainSeed, MaxSteps](const Program &Q)
          -> std::optional<Program> {
        return applySafeChain(Q, ChainSeed, MaxSteps);
      };
    }
    Rec.Injected = Injected;

    Program T = *Transform(P);

    // Degraded retry for a faulted query: the armed fault trigger was
    // consumed by the failing attempt, so one sequential re-run under the
    // escalation ceiling (minus what the attempt spent) usually produces
    // a real answer. Only EngineFault retries — cancellation must win,
    // and budget exhaustion would exhaust the smaller budget faster.
    auto FaultedReason = [](TruncationReason R2) {
      return R2 == TruncationReason::EngineFault;
    };

    Escalated<DrfGuaranteeReport> Drf = escalateDrfGuarantee(P, T, Esc);
    if (Drf.Final.isUnknown() && FaultedReason(Drf.Final.Reason)) {
      ++Rec.Faulted;
      Budget B(Options.Escalation.Ceiling, Options.Cancel);
      ExecLimits E;
      E.Shared = &B;
      DrfGuaranteeReport R2 = checkDrfGuarantee(P, T, E);
      switch (R2.outcome()) {
      case GuaranteeOutcome::Holds:
        Drf.Final = Verdict<DrfGuaranteeReport>::proved();
        ++Rec.Degraded;
        break;
      case GuaranteeOutcome::Violated:
        Drf.Final = Verdict<DrfGuaranteeReport>::refuted(std::move(R2));
        ++Rec.Degraded;
        break;
      case GuaranteeOutcome::Unknown:
        if (!FaultedReason(R2.Reason))
          ++Rec.Degraded; // Honest budget-bound Unknown, not a re-fault.
        break;
      }
    }
    Track(Rec, Drf.Final.Kind, Drf.Attempts.size());
    if (Drf.Final.isRefuted())
      RecordFailure(Rec, I, "drf-guarantee", Injected,
                    drfDetail(*Drf.Final.Witness), P, Transform, ChainSeed);

    if (Options.CheckThinAir) {
      Value C = freshConstantFor(P);
      Escalated<ThinAirReport> Ta = escalateThinAir(P, T, C, Esc);
      if (Ta.Final.isUnknown() && FaultedReason(Ta.Final.Reason)) {
        ++Rec.Faulted;
        Budget B(Options.Escalation.Ceiling, Options.Cancel);
        ExecLimits E;
        E.Shared = &B;
        ExploreLimits X;
        X.Shared = &B;
        ThinAirReport R2 = checkThinAir(P, T, C, E, X);
        switch (R2.outcome()) {
        case GuaranteeOutcome::Holds:
          Ta.Final = Verdict<ThinAirReport>::proved();
          ++Rec.Degraded;
          break;
        case GuaranteeOutcome::Violated:
          Ta.Final = Verdict<ThinAirReport>::refuted(std::move(R2));
          ++Rec.Degraded;
          break;
        case GuaranteeOutcome::Unknown:
          if (!FaultedReason(R2.Reason))
            ++Rec.Degraded;
          break;
        }
      }
      Track(Rec, Ta.Final.Kind, Ta.Attempts.size());
      if (Ta.Final.isRefuted())
        RecordFailure(Rec, I, "thin-air", Injected,
                      thinAirDetail(*Ta.Final.Witness), P, Transform,
                      ChainSeed);
    }

    if (Options.CheckSemanticSteps && !Injected) {
      // Satellite: Lemma 4/5 on every step of the safe chain, under one
      // mid-ladder budget (step checks are cheap relative to the
      // guarantee queries; escalation would triple the traceset builds).
      Rng CR(ChainSeed);
      TransformChain Chain =
          randomChain(P, RuleSet::all(), Options.MaxChainSteps, CR);
      Budget B(ShrinkCheckSpec, Options.Cancel);
      CheckVerdict V = semanticChainVerdict(P, Chain, B);
      Track(Rec,
            V == CheckVerdict::Holds    ? VerdictKind::Proved
            : V == CheckVerdict::Fails  ? VerdictKind::Refuted
                                        : VerdictKind::Unknown,
            1);
      if (V == CheckVerdict::Fails)
        RecordFailure(Rec, I, "semantic-step", false,
                      "chain step is not a semantic elimination/reordering "
                      "of its predecessor",
                      P, Transform, ChainSeed);
    }
  };

  // Resume: merge the journaled records and mark their indices done.
  std::map<uint64_t, IndexRecord> Resumed;
  if (Options.Resume && !Options.CheckpointPath.empty())
    loadJournal(Options.CheckpointPath, Options.Seed, Options.Programs,
                Resumed);
  // Satellite: journal compaction. The journal is always rewritten fresh
  // — header first, then every resumed record re-recorded in index order
  // — instead of appending to the old file. A journal that has survived
  // several kill/resume cycles accumulates torn tails, superseded
  // duplicate records and garbage lines; compaction drops all of that.
  // Each record is flushed as it is rewritten, so a crash mid-compaction
  // still leaves a loadable (if shorter) journal.
  Journal J;
  if (!Options.CheckpointPath.empty()) {
    J.open(Options.CheckpointPath, /*Append=*/false, Options.Seed,
           Options.Programs);
    for (const auto &[Idx, R] : Resumed)
      J.record(Idx, R);
  }

  // Completion map: true once an index's record is merged (from the
  // journal or a finished run). Drives the post-loop sweep that re-runs
  // indices lost to a drained task group.
  std::unique_ptr<std::atomic<bool>[]> Completed(
      Options.Programs ? new std::atomic<bool>[Options.Programs]
                       : nullptr);
  for (uint64_t I = 0; I < Options.Programs; ++I)
    Completed[I].store(false, std::memory_order_relaxed);

  std::mutex ReportM; // guards Report during parallel merges
  for (auto &[Idx, R] : Resumed) {
    mergeIndex(Report, R);
    Sched.observe(Idx, R);
    ++Report.SkippedFromCheckpoint;
    Completed[Idx].store(true, std::memory_order_relaxed);
  }

  // Runs index I and commits it (merge + journal). An index interrupted
  // by cancellation is discarded instead — its results are cut-short
  // noise, and discarding is what lets a resumed campaign reproduce it
  // bit-for-bit. Returns false when RunOne threw (left uncommitted for
  // the sweep).
  auto RunCommit = [&](uint64_t I, FuzzReport &Into) {
    IndexRecord Rec;
    try {
      RunOne(I, Rec);
    } catch (...) {
      return false;
    }
    if (CancelledNow())
      return true; // Discarded; the cancellation check below ends the run.
    {
      std::lock_guard<std::mutex> Lock(ReportM);
      mergeIndex(Into, Rec);
    }
    Sched.observe(I, Rec);
    J.record(I, Rec);
    Completed[I].store(true, std::memory_order_relaxed);
    return true;
  };

  if (Options.Jobs == 1) {
    for (uint64_t I = 0; I < Options.Programs; ++I) {
      if (Completed[I].load(std::memory_order_relaxed))
        continue;
      if (CancelledNow()) {
        Report.Cancelled = true;
        break;
      }
      if (Options.DeadlineMs > 0 && ElapsedMs() >= Options.DeadlineMs) {
        Report.DeadlineHit = true;
        break;
      }
      RunCommit(I, Report);
    }
    Report.Cancelled = Report.Cancelled || CancelledNow();
  } else {
    // Workers claim program indices from a shared counter, one scheduler
    // epoch at a time: the task-group wait at each epoch boundary is the
    // completion barrier the coverage-guided scheduler relies on (the
    // weights for epoch k see all of epochs < k, for every worker
    // count). Merging is per-index under a lock and failures are sorted
    // afterwards, so the output is independent of scheduling.
    unsigned Jobs = Options.Jobs == 0 ? ThreadPool::defaultWorkerCount()
                                      : Options.Jobs;
    if (Jobs > Options.Programs)
      Jobs = static_cast<unsigned>(Options.Programs ? Options.Programs : 1);
    std::unique_ptr<ThreadPool> Owned;
    ThreadPool *Pool = &ThreadPool::shared();
    if (Options.Jobs > 1) {
      Owned = std::make_unique<ThreadPool>(Jobs);
      Pool = Owned.get();
    }
    std::atomic<bool> DeadlineHit{false};
    for (uint64_t Begin = 0; Begin < Options.Programs;
         Begin += SchedulerEpoch) {
      if (CancelledNow() || DeadlineHit.load(std::memory_order_relaxed))
        break;
      uint64_t End = std::min(Begin + SchedulerEpoch, Options.Programs);
      std::atomic<uint64_t> Next{Begin};
      ThreadPool::TaskGroup G(*Pool);
      unsigned Spawn = Jobs;
      if (Spawn > End - Begin)
        Spawn = static_cast<unsigned>(End - Begin);
      for (unsigned W = 0; W < Spawn; ++W)
        G.spawn([&] {
          for (;;) {
            uint64_t I = Next.fetch_add(1, std::memory_order_relaxed);
            if (I >= End)
              return;
            if (Completed[I].load(std::memory_order_relaxed))
              continue;
            if (CancelledNow())
              return;
            if (Options.DeadlineMs > 0 &&
                ElapsedMs() >= Options.DeadlineMs) {
              DeadlineHit.store(true, std::memory_order_relaxed);
              return;
            }
            RunCommit(I, Report);
          }
        });
      G.wait();
      if (G.faulted())
        G.takeException(); // Lost indices are re-run by the sweep below.
    }
    Report.DeadlineHit = DeadlineHit.load(std::memory_order_relaxed);
    Report.Cancelled = CancelledNow();
  }

  // Completion sweep: an injected task fault (or a drained group) can
  // leave claimed-but-unrun indices behind. Re-run them inline; an index
  // that *still* throws is committed as a faulted placeholder so the
  // campaign nevertheless completes. Deadline- or cancellation-ended
  // campaigns are genuinely partial and are left that way.
  if (!Report.DeadlineHit && !Report.Cancelled) {
    for (uint64_t I = 0; I < Options.Programs; ++I) {
      if (Completed[I].load(std::memory_order_relaxed))
        continue;
      if (CancelledNow()) {
        Report.Cancelled = true;
        break;
      }
      if (!RunCommit(I, Report)) {
        IndexRecord Placeholder;
        Placeholder.Faulted = 1;
        mergeIndex(Report, Placeholder);
        J.record(I, Placeholder);
        Completed[I].store(true, std::memory_order_relaxed);
      }
    }
  }

  std::sort(Report.Failures.begin(), Report.Failures.end(),
            [](const FuzzFailure &A, const FuzzFailure &B) {
              return std::tie(A.ProgramIndex, A.Property) <
                     std::tie(B.ProgramIndex, B.Property);
            });
  BehaviourCache::CacheStats Cache1 = BehaviourCache::global().stats();
  Report.CacheHits = Cache1.hits() - Cache0.hits();
  Report.CacheMisses = Cache1.misses() - Cache0.misses();
  Report.ElapsedMs = ElapsedMs();
  return Report;
}
