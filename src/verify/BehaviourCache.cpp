#include "verify/BehaviourCache.h"

#include "lang/Printer.h"
#include "support/Failure.h"
#include "trace/ActionWord.h"

using namespace tracesafe;

namespace {

void appendWord(std::string &K, uint64_t W) {
  for (int I = 0; I < 8; ++I)
    K.push_back(static_cast<char>((W >> (8 * I)) & 0xFF));
}

void appendDomain(std::string &K, const std::vector<Value> &Domain) {
  appendWord(K, Domain.size());
  for (Value V : Domain)
    appendWord(K, static_cast<uint64_t>(static_cast<int64_t>(V)));
}

/// Exact key: printed program + domain + the bounds that shape a complete
/// traceset. The printer is injective up to alpha-renaming the program
/// does not perform, so equal keys mean equal programs.
std::string tracesetKey(const Program &P, const std::vector<Value> &Domain,
                        const ExploreLimits &Limits) {
  std::string K = printProgram(P);
  K.push_back('\0');
  appendDomain(K, Domain);
  appendWord(K, Limits.MaxActions);
  appendWord(K, Limits.MaxSilentRun);
  return K;
}

/// Exact key: every trace serialised as its action words (the same
/// encoding the interned engines use, see trace/ActionWord.h), plus the
/// domain, the interleaving bound and the engine-selection flags.
std::string behaviourKey(const Traceset &T, const EnumerationLimits &Limits) {
  std::string K;
  K.reserve(T.size() * 24);
  for (const Trace &Tr : T.traces()) {
    appendWord(K, TagTrace | Tr.actions().size());
    for (const Action &A : Tr.actions())
      appendWord(K, actionWord(A));
  }
  appendDomain(K, T.domain());
  appendWord(K, Limits.MaxEvents);
  appendWord(K, (Limits.SleepSets ? 1ULL : 0) |
                    (Limits.SourceSets ? 2ULL : 0) |
                    (Limits.ExhaustiveOracle ? 4ULL : 0));
  return K;
}

uint64_t tracesetFootprint(const std::string &Key, const Traceset &T) {
  uint64_t B = Key.size() + sizeof(Traceset) + 64;
  for (const Trace &Tr : T.traces())
    B += Tr.actions().size() * sizeof(Action) + 48;
  return B;
}

uint64_t behaviourFootprint(const std::string &Key,
                            const std::set<Behaviour> &S) {
  uint64_t B = Key.size() + 64;
  for (const Behaviour &Beh : S)
    B += Beh.size() * sizeof(Value) + 48;
  return B;
}

/// Replays the recorded cost of a cached computation against the current
/// query's budget. Returns the truncation reason the replay ended with
/// (None = the budget absorbed the full cost). Warmth invariance: this is
/// what keeps a hit from being "free" under a visit or memory cap.
TruncationReason replayCost(Budget *Shared, uint64_t Visits,
                            uint64_t Bytes) {
  if (!Shared)
    return TruncationReason::None;
  if (Shared->chargeMany(Visits, Bytes))
    return TruncationReason::None;
  TruncationReason R = Shared->reason();
  return R == TruncationReason::None ? TruncationReason::StateCap : R;
}

} // namespace

void BehaviourCache::linkLocked(LruState &Lru, Family Kind,
                                const std::string &Key) {
  Probation.push_front(LruRef{Kind, &Key});
  Lru.It = Probation.begin();
  Lru.Protected_ = false;
}

void BehaviourCache::touchLocked(LruState &Lru, uint64_t Footprint) {
  if (Lru.Protected_) {
    Protected_.splice(Protected_.begin(), Protected_, Lru.It);
    return;
  }
  // First re-use: promote out of probation. Splicing keeps the iterator
  // valid and pointing at the same node.
  Protected_.splice(Protected_.begin(), Probation, Lru.It);
  Lru.Protected_ = true;
  ProtectedBytes += Footprint;
  // Keep the protected segment within its share of the cap by demoting
  // its coldest entries back to probation — demoted entries get another
  // probation pass rather than being evicted outright.
  const uint64_t ProtectedCap = MaxBytes - MaxBytes / 5;
  while (ProtectedBytes > ProtectedCap && Protected_.size() > 1) {
    const LruRef &Cold = Protected_.back();
    LruState *ColdLru = nullptr;
    uint64_t ColdBytes = 0;
    if (Cold.Kind == Family::Traceset) {
      auto It = Tracesets.find(*Cold.Key);
      ColdLru = &It->second.Lru;
      ColdBytes = It->second.Footprint;
    } else if (Cold.Kind == Family::Behaviour) {
      auto It = Behaviours.find(*Cold.Key);
      ColdLru = &It->second.Lru;
      ColdBytes = It->second.Footprint;
    } else {
      auto It = Drfs.find(*Cold.Key);
      ColdLru = &It->second.Lru;
      ColdBytes = It->second.Footprint;
    }
    Probation.splice(Probation.begin(), Protected_, ColdLru->It);
    ColdLru->Protected_ = false;
    ProtectedBytes -= ColdBytes;
  }
}

void BehaviourCache::evictLocked(const LruRef &Ref, bool FromProtected) {
  uint64_t Freed = 0;
  if (Ref.Kind == Family::Traceset) {
    auto It = Tracesets.find(*Ref.Key);
    if (It == Tracesets.end())
      return;
    Freed = It->second.Footprint;
    Tracesets.erase(It);
  } else if (Ref.Kind == Family::Behaviour) {
    auto It = Behaviours.find(*Ref.Key);
    if (It == Behaviours.end())
      return;
    Freed = It->second.Footprint;
    Behaviours.erase(It);
  } else {
    auto It = Drfs.find(*Ref.Key);
    if (It == Drfs.end())
      return;
    Freed = It->second.Footprint;
    Drfs.erase(It);
  }
  Counters.Bytes -= Freed;
  if (FromProtected)
    ProtectedBytes -= Freed;
  ++Counters.Evictions;
}

void BehaviourCache::reserveLocked(uint64_t Need) {
  // Probation tails go first: one-shot scan traffic washes out before any
  // re-used entry is touched. Protected tails only fall once probation is
  // empty.
  while (Counters.Bytes + Need > MaxBytes) {
    if (!Probation.empty()) {
      LruRef Victim = Probation.back();
      Probation.pop_back();
      evictLocked(Victim, /*FromProtected=*/false);
    } else if (!Protected_.empty()) {
      LruRef Victim = Protected_.back();
      Protected_.pop_back();
      evictLocked(Victim, /*FromProtected=*/true);
    } else {
      break;
    }
  }
}

std::shared_ptr<const Traceset>
BehaviourCache::tracesetFor(const Program &P,
                            const std::vector<Value> &Domain,
                            const ExploreLimits &Limits,
                            ExploreStats *Stats) {
  std::string Key = tracesetKey(P, Domain, Limits);

  // Lookup. An injected cache fault degrades to a miss: the result is
  // recomputed, never changed.
  try {
    faultThrowInjected(FaultSite::BehaviourCache);
    std::lock_guard<std::mutex> Lock(M);
    auto It = Tracesets.find(Key);
    if (It != Tracesets.end()) {
      ++Counters.TracesetHits;
      touchLocked(It->second.Lru, It->second.Footprint);
      const TracesetEntry &E = It->second;
      if (Stats)
        Stats->Visited += E.CostVisits;
      TruncationReason R =
          replayCost(Limits.Shared, E.CostVisits, E.CostBytes);
      if (R != TruncationReason::None && Stats)
        Stats->truncate(R);
      return E.Set;
    }
    ++Counters.TracesetMisses;
  } catch (const InjectedFault &) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Faults;
    ++Counters.TracesetMisses;
  }

  // Miss: compute under the caller's limits and budget. The budget delta
  // is the replay cost — at these call sites one budget serves one query
  // at a time, so the delta is exactly what this computation charged.
  Budget *Shared = Limits.Shared;
  uint64_t V0 = Shared ? Shared->visited() : 0;
  uint64_t B0 = Shared ? Shared->chargedBytes() : 0;
  ExploreStats Local;
  auto Set = std::make_shared<const Traceset>(
      programTraceset(P, Domain, Limits, &Local));
  if (Stats) {
    Stats->Visited += Local.Visited;
    if (Local.Truncated)
      Stats->truncate(Local.Reason);
  }

  // Only complete results are cacheable: a truncated set is an artefact
  // of this query's budget, not a property of the program.
  if (Local.Truncated || (Shared && Shared->exhausted()))
    return Set;

  TracesetEntry E;
  E.Set = Set;
  E.CostVisits = Shared ? Shared->visited() - V0 : Local.Visited;
  E.CostBytes = Shared ? Shared->chargedBytes() - B0 : 0;
  E.Footprint = tracesetFootprint(Key, *Set);
  try {
    faultThrowInjected(FaultSite::BehaviourCache);
    std::lock_guard<std::mutex> Lock(M);
    reserveLocked(E.Footprint);
    if (E.Footprint <= MaxBytes) {
      uint64_t F = E.Footprint;
      auto [Slot, Inserted] = Tracesets.emplace(std::move(Key), std::move(E));
      if (Inserted) {
        Counters.Bytes += F;
        linkLocked(Slot->second.Lru, Family::Traceset, Slot->first);
      }
    }
  } catch (const InjectedFault &) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Faults; // Skipped insert; the answer is unaffected.
  }
  return Set;
}

std::set<Behaviour>
BehaviourCache::behavioursFor(const Traceset &T,
                              const EnumerationLimits &Limits,
                              EnumerationStats *Stats) {
  std::string Key = behaviourKey(T, Limits);

  try {
    faultThrowInjected(FaultSite::BehaviourCache);
    std::lock_guard<std::mutex> Lock(M);
    auto It = Behaviours.find(Key);
    if (It != Behaviours.end()) {
      ++Counters.BehaviourHits;
      touchLocked(It->second.Lru, It->second.Footprint);
      const BehaviourEntry &E = It->second;
      if (Stats)
        Stats->Visited += E.CostVisits;
      TruncationReason R =
          replayCost(Limits.Shared, E.CostVisits, E.CostBytes);
      if (R != TruncationReason::None && Stats)
        Stats->truncate(R);
      return E.Set;
    }
    ++Counters.BehaviourMisses;
  } catch (const InjectedFault &) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Faults;
    ++Counters.BehaviourMisses;
  }

  Budget *Shared = Limits.Shared;
  uint64_t V0 = Shared ? Shared->visited() : 0;
  uint64_t B0 = Shared ? Shared->chargedBytes() : 0;
  EnumerationStats Local;
  std::set<Behaviour> Set = collectBehaviours(T, Limits, &Local);
  if (Stats) {
    Stats->Visited += Local.Visited;
    if (Local.Truncated)
      Stats->truncate(Local.Reason);
  }

  if (Local.Truncated || (Shared && Shared->exhausted()))
    return Set;

  BehaviourEntry E;
  E.Set = Set;
  E.CostVisits = Shared ? Shared->visited() - V0 : Local.Visited;
  E.CostBytes = Shared ? Shared->chargedBytes() - B0 : 0;
  E.Footprint = behaviourFootprint(Key, Set);
  try {
    faultThrowInjected(FaultSite::BehaviourCache);
    std::lock_guard<std::mutex> Lock(M);
    reserveLocked(E.Footprint);
    if (E.Footprint <= MaxBytes) {
      uint64_t F = E.Footprint;
      auto [Slot, Inserted] = Behaviours.emplace(std::move(Key), std::move(E));
      if (Inserted) {
        Counters.Bytes += F;
        linkLocked(Slot->second.Lru, Family::Behaviour, Slot->first);
      }
    }
  } catch (const InjectedFault &) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Faults;
  }
  return Set;
}

Verdict<Interleaving>
BehaviourCache::drfFor(const Traceset &T, const EnumerationLimits &Limits,
                       DrfModel Model) {
  std::string Key = behaviourKey(T, Limits);
  Key.push_back(static_cast<char>(Model));

  try {
    faultThrowInjected(FaultSite::BehaviourCache);
    std::lock_guard<std::mutex> Lock(M);
    auto It = Drfs.find(Key);
    if (It != Drfs.end()) {
      ++Counters.DrfHits;
      touchLocked(It->second.Lru, It->second.Footprint);
      const DrfEntry &E = It->second;
      TruncationReason R =
          replayCost(Limits.Shared, E.CostVisits, E.CostBytes);
      // A budget too small for the replay is a budget the cold search
      // would have exhausted before reaching its verdict (the recorded
      // cost is exactly the visits the verdict needed), so Unknown here
      // is the verdict recomputation would return.
      if (R != TruncationReason::None)
        return Verdict<Interleaving>::unknown(R);
      return E.Kind == VerdictKind::Proved
                 ? Verdict<Interleaving>::proved()
                 : Verdict<Interleaving>::refuted(E.Witness);
    }
    ++Counters.DrfMisses;
  } catch (const InjectedFault &) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Faults;
    ++Counters.DrfMisses;
  }

  Budget *Shared = Limits.Shared;
  uint64_t V0 = Shared ? Shared->visited() : 0;
  uint64_t B0 = Shared ? Shared->chargedBytes() : 0;
  RaceReport Rep = findAdjacentRace(T, Limits);
  Verdict<Interleaving> V =
      Rep.HasRace ? Verdict<Interleaving>::refuted(Rep.Witness)
      : Rep.Stats.Truncated
          ? Verdict<Interleaving>::unknown(Rep.Stats.Reason)
          : Verdict<Interleaving>::proved();

  // Only definitive verdicts from complete searches are cacheable; an
  // Unknown is an artefact of this query's budget, and a search that
  // exhausted the budget has no trustworthy cost to replay.
  if (V.isUnknown() || (Shared && Shared->exhausted()))
    return V;

  DrfEntry E;
  E.Kind = V.Kind;
  if (V.isRefuted())
    E.Witness = *V.Witness;
  E.CostVisits = Shared ? Shared->visited() - V0 : Rep.Stats.Visited;
  E.CostBytes = Shared ? Shared->chargedBytes() - B0 : 0;
  E.Footprint = Key.size() + E.Witness.size() * sizeof(Event) + 96;
  try {
    faultThrowInjected(FaultSite::BehaviourCache);
    std::lock_guard<std::mutex> Lock(M);
    reserveLocked(E.Footprint);
    if (E.Footprint <= MaxBytes) {
      uint64_t F = E.Footprint;
      auto [Slot, Inserted] = Drfs.emplace(std::move(Key), std::move(E));
      if (Inserted) {
        Counters.Bytes += F;
        linkLocked(Slot->second.Lru, Family::Drf, Slot->first);
      }
    }
  } catch (const InjectedFault &) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Faults;
  }
  return V;
}

BehaviourCache::CacheStats BehaviourCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters;
}

void BehaviourCache::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Tracesets.clear();
  Behaviours.clear();
  Drfs.clear();
  Probation.clear();
  Protected_.clear();
  ProtectedBytes = 0;
  Counters.Bytes = 0;
  ++Counters.Clears;
}

BehaviourCache &BehaviourCache::global() {
  static BehaviourCache Cache;
  return Cache;
}
