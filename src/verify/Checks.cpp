#include "verify/Checks.h"

#include <algorithm>

using namespace tracesafe;

const char *tracesafe::guaranteeOutcomeName(GuaranteeOutcome O) {
  switch (O) {
  case GuaranteeOutcome::Holds:
    return "holds";
  case GuaranteeOutcome::Violated:
    return "violated";
  case GuaranteeOutcome::Unknown:
    return "unknown";
  }
  return "invalid";
}

BehaviourComparison tracesafe::compareBehaviours(const Program &Orig,
                                                 const Program &Transformed,
                                                 ExecLimits Limits) {
  BehaviourComparison Out;
  // Both programs must face the same environment: pin the input domain to
  // the original's (a transformation may remove constants, which would
  // otherwise shrink the transformed program's default domain and mask or
  // manufacture behaviour differences).
  if (Limits.InputDomain.empty())
    Limits.InputDomain = defaultDomainFor(Orig);
  ExecStats SA, SB;
  std::set<Behaviour> A = programBehaviours(Orig, Limits, &SA);
  std::set<Behaviour> B = programBehaviours(Transformed, Limits, &SB);
  Out.OrigTruncated = SA.Truncated;
  Out.TransformedTruncated = SB.Truncated;
  Out.Truncated = SA.Truncated || SB.Truncated;
  Out.Reason = mergeReason(SA.Reason, SB.Reason);
  Out.Subset = true;
  for (const Behaviour &Beh : B) {
    if (A.count(Beh))
      continue;
    Out.Subset = false;
    Out.NewBehaviour = Beh;
    break;
  }
  Out.Equal = Out.Subset && A.size() == B.size();
  return Out;
}

DrfGuaranteeReport tracesafe::checkDrfGuarantee(const Program &Orig,
                                                const Program &Transformed,
                                                ExecLimits Limits) {
  DrfGuaranteeReport Out;
  if (Limits.InputDomain.empty())
    Limits.InputDomain = defaultDomainFor(Orig); // See compareBehaviours.
  ProgramRaceReport RO = findProgramRace(Orig, Limits);
  ProgramRaceReport RT = findProgramRace(Transformed, Limits);
  Out.OriginalDrf = !RO.HasRace;
  Out.TransformedDrf = !RT.HasRace;
  Out.OriginalRaceTruncated = RO.Stats.Truncated;
  Out.TransformedRaceTruncated = RT.Stats.Truncated;
  Out.Comparison = compareBehaviours(Orig, Transformed, Limits);
  Out.BehavioursPreserved = Out.Comparison.Subset;
  Out.NewBehaviour = Out.Comparison.NewBehaviour;
  Out.Truncated = RO.Stats.Truncated || RT.Stats.Truncated ||
                  Out.Comparison.Truncated;
  Out.Reason = mergeReason(mergeReason(RO.Stats.Reason, RT.Stats.Reason),
                           Out.Comparison.Reason);
  return Out;
}

bool tracesafe::programCanOutput(const Program &P, Value V, ExecLimits Limits,
                                 ExecStats *Stats) {
  for (const Behaviour &B : programBehaviours(P, Limits, Stats))
    if (std::find(B.begin(), B.end(), V) != B.end())
      return true;
  return false;
}

ThinAirReport tracesafe::checkThinAir(const Program &Orig,
                                      const Program &Transformed, Value C,
                                      ExecLimits Limits,
                                      ExploreLimits TracesetLimits) {
  ThinAirReport Out;
  Out.Constant = C;
  Out.OrigContainsConstant = Orig.containsConstant(C);
  if (Out.OrigContainsConstant)
    return Out;
  ExecStats OutputStats;
  Out.TransformedOutputs =
      programCanOutput(Transformed, C, Limits, &OutputStats);
  Out.OutputSearchTruncated = OutputStats.Truncated;
  // Semantic origin property (Lemma 2/6): explore tracesets over a domain
  // that includes C, so a "laundered" C (read then re-written) would show
  // up as a non-origin write while a manufactured C shows up as an origin.
  std::vector<Value> Domain = defaultDomainFor(Orig);
  if (std::find(Domain.begin(), Domain.end(), C) == Domain.end())
    Domain.push_back(C);
  ExploreStats SA, SB;
  Traceset TO = programTraceset(Orig, Domain, TracesetLimits, &SA);
  Traceset TT = programTraceset(Transformed, Domain, TracesetLimits, &SB);
  Out.OrigHasOrigin = TO.hasOriginFor(C);
  Out.TransformedHasOrigin = TT.hasOriginFor(C);
  Out.OrigExploreTruncated = SA.Truncated;
  Out.TransformedExploreTruncated = SB.Truncated;
  Out.Truncated = OutputStats.Truncated || SA.Truncated || SB.Truncated;
  Out.Reason = mergeReason(mergeReason(OutputStats.Reason, SA.Reason),
                           SB.Reason);
  return Out;
}

Value tracesafe::freshConstantFor(const Program &P) {
  Value C = 42;
  while (P.containsConstant(C) || C == DefaultValue)
    ++C;
  return C;
}
