#include "verify/ProgramGen.h"

#include <optional>

using namespace tracesafe;

namespace {

class Generator {
public:
  Generator(Rng &R, const GenOptions &O) : R(R), O(O) {}

  Program run() {
    Program P;
    if (O.Discipline == GenDiscipline::VolatileLocations)
      for (unsigned L = 0; L < O.Locations; ++L)
        P.markVolatile(locName(L));
    if (O.Discipline == GenDiscipline::Mixed)
      for (unsigned L = 0; L < O.Locations; ++L) {
        if (R.chance(1, 2))
          P.markVolatile(locName(L));
        else
          LockedLocs.insert(Symbol::intern(locName(L)));
      }
    Volatiles = &P.volatiles();
    for (unsigned T = 0; T < O.Threads; ++T) {
      StmtList Body;
      size_t N = static_cast<size_t>(
          R.range(O.MinStmtsPerThread, O.MaxStmtsPerThread));
      while (Body.size() < N)
        emitTopLevel(Body);
      P.addThread(std::move(Body));
    }
    return P;
  }

private:
  std::string locName(unsigned I) const { return "x" + std::to_string(I); }

  SymbolId randomLoc() {
    return Symbol::intern(locName(static_cast<unsigned>(R.below(O.Locations))));
  }
  SymbolId randomReg() {
    return Symbol::intern("r" +
                          std::to_string(R.below(O.Registers)));
  }
  SymbolId monitor() { return Symbol::intern("m"); }

  Operand randomOperand() {
    if (R.chance(1, 2))
      return Operand::imm(static_cast<Value>(R.range(0, O.MaxConst)));
    return Operand::reg(randomReg());
  }

  /// A register-only statement (always race-free).
  StmtPtr localStmt() {
    uint64_t Kinds = 2 + (O.AllowPrint ? 1 : 0) + (O.AllowInput ? 1 : 0);
    switch (R.below(Kinds)) {
    case 0:
      return std::make_unique<AssignStmt>(randomReg(), randomOperand());
    case 1:
      return std::make_unique<SkipStmt>();
    case 2:
      if (O.AllowPrint)
        return std::make_unique<PrintStmt>(randomOperand());
      [[fallthrough]];
    default:
      return std::make_unique<InputStmt>(randomReg());
    }
  }

  /// A shared-memory access (to \p Loc when given, else a random one).
  StmtPtr sharedStmt(std::optional<SymbolId> Loc = std::nullopt) {
    SymbolId L = Loc ? *Loc : randomLoc();
    if (R.chance(1, 2))
      return std::make_unique<LoadStmt>(randomReg(), L);
    return std::make_unique<StoreStmt>(L, randomOperand());
  }

  StmtPtr ifStmt(bool AllowShared) {
    Cond C = R.chance(1, 2)
                 ? Cond::eq(Operand::reg(randomReg()), randomOperand())
                 : Cond::ne(Operand::reg(randomReg()), randomOperand());
    auto Branch = [&]() {
      StmtList Body;
      size_t N = 1 + R.below(2);
      for (size_t I = 0; I < N; ++I)
        Body.push_back(AllowShared && R.chance(1, 2) ? sharedStmt()
                                                     : localStmt());
      return std::make_unique<BlockStmt>(std::move(Body));
    };
    return std::make_unique<IfStmt>(C, Branch(), Branch());
  }

  /// A volatile location of the program, if any (Mixed mode).
  std::optional<SymbolId> randomVolatileLoc() {
    if (Volatiles->empty())
      return std::nullopt;
    auto It = Volatiles->begin();
    std::advance(It, static_cast<long>(R.below(Volatiles->size())));
    return *It;
  }

  /// A lock-protected location of the program, if any (Mixed mode).
  std::optional<SymbolId> randomLockedLoc() {
    if (LockedLocs.empty())
      return std::nullopt;
    auto It = LockedLocs.begin();
    std::advance(It, static_cast<long>(R.below(LockedLocs.size())));
    return *It;
  }

  /// A `lock m; ...; unlock m;` section with 1-3 accesses to \p Loc (or
  /// random locations when nullopt).
  void emitCriticalSection(StmtList &Out, std::optional<SymbolId> Loc) {
    Out.push_back(std::make_unique<LockStmt>(monitor()));
    size_t N = 1 + R.below(3);
    for (size_t I = 0; I < N; ++I)
      Out.push_back(R.chance(3, 4) ? sharedStmt(Loc) : localStmt());
    Out.push_back(std::make_unique<UnlockStmt>(monitor()));
  }

  void emitTopLevel(StmtList &Out) {
    bool SharedAllowedAnywhere = O.Discipline == GenDiscipline::Racy ||
                                 O.Discipline ==
                                     GenDiscipline::VolatileLocations;
    uint64_t Kind = R.below(10);
    if (Kind < 3) {
      Out.push_back(localStmt());
      return;
    }
    if (Kind < 4 && O.AllowIf) {
      Out.push_back(ifStmt(SharedAllowedAnywhere));
      return;
    }
    if (SharedAllowedAnywhere) {
      Out.push_back(sharedStmt());
      return;
    }
    if (O.Discipline == GenDiscipline::Mixed) {
      // Volatile locations may be touched anywhere; lock-protected ones
      // only inside critical sections.
      std::optional<SymbolId> Vol = randomVolatileLoc();
      if (Vol && R.chance(1, 2)) {
        Out.push_back(sharedStmt(*Vol));
        return;
      }
      if (std::optional<SymbolId> Locked = randomLockedLoc()) {
        emitCriticalSection(Out, *Locked);
        return;
      }
      if (Vol) {
        Out.push_back(sharedStmt(*Vol));
        return;
      }
      Out.push_back(localStmt());
      return;
    }
    // Lock discipline: a critical section with 1-3 shared accesses (and
    // perhaps a local statement), under the single global monitor.
    emitCriticalSection(Out, std::nullopt);
  }

  Rng &R;
  const GenOptions &O;
  const std::set<SymbolId> *Volatiles = nullptr;
  std::set<SymbolId> LockedLocs;
};

} // namespace

Program tracesafe::generateProgram(Rng &R, const GenOptions &Options) {
  Generator G(R, Options);
  return G.run();
}
