#include "verify/Escalate.h"

using namespace tracesafe;

namespace {

/// Engine limits wired to one attempt's budget. The per-engine caps stay
/// at their (generous) defaults; the shared budget is what actually binds.
ExecLimits execLimitsFor(Budget &B) {
  ExecLimits L;
  L.Shared = &B;
  return L;
}

ExploreLimits exploreLimitsFor(Budget &B) {
  ExploreLimits L;
  L.Shared = &B;
  return L;
}

} // namespace

Escalated<DrfGuaranteeReport>
tracesafe::escalateDrfGuarantee(const Program &Orig,
                                const Program &Transformed,
                                const EscalationPolicy &Policy) {
  return escalate<DrfGuaranteeReport>(Policy, [&](Budget &B) {
    DrfGuaranteeReport R = checkDrfGuarantee(Orig, Transformed,
                                             execLimitsFor(B));
    switch (R.outcome()) {
    case GuaranteeOutcome::Holds:
      return Verdict<DrfGuaranteeReport>::proved();
    case GuaranteeOutcome::Violated:
      return Verdict<DrfGuaranteeReport>::refuted(std::move(R));
    case GuaranteeOutcome::Unknown:
      break;
    }
    return Verdict<DrfGuaranteeReport>::unknown(
        R.Reason == TruncationReason::None ? TruncationReason::StateCap
                                           : R.Reason);
  });
}

Escalated<ThinAirReport>
tracesafe::escalateThinAir(const Program &Orig, const Program &Transformed,
                           Value C, const EscalationPolicy &Policy) {
  return escalate<ThinAirReport>(Policy, [&](Budget &B) {
    ThinAirReport R = checkThinAir(Orig, Transformed, C, execLimitsFor(B),
                                   exploreLimitsFor(B));
    switch (R.outcome()) {
    case GuaranteeOutcome::Holds:
      return Verdict<ThinAirReport>::proved();
    case GuaranteeOutcome::Violated:
      return Verdict<ThinAirReport>::refuted(std::move(R));
    case GuaranteeOutcome::Unknown:
      break;
    }
    return Verdict<ThinAirReport>::unknown(
        R.Reason == TruncationReason::None ? TruncationReason::StateCap
                                           : R.Reason);
  });
}

Escalated<Interleaving>
tracesafe::escalateProgramDrf(const Program &P,
                              const EscalationPolicy &Policy) {
  return escalate<Interleaving>(
      Policy, [&](Budget &B) { return checkProgramDrf(P, execLimitsFor(B)); });
}
