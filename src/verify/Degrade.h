//===----------------------------------------------------------------------===//
///
/// \file
/// Graceful degradation: oracle fallback for faulted parallel queries.
///
/// The reduced parallel engine (interned states, sleep sets, work-stealing
/// pool) is the fast path, but it is also the only engine with enough
/// moving parts to fault: an allocation failure in an intern pool or a
/// throwing pool task surfaces, after containment, as Unknown(EngineFault).
/// That answer is sound but useless. The degradation layer turns it back
/// into a real answer when it can: re-run the query on the sequential
/// ExhaustiveOracle — the seed's std::set-memoised engine, which shares no
/// code with the faulting path — under whatever budget the primary attempt
/// left behind, and record the fallback in the report so a degraded result
/// is never mistaken for a first-try one.
///
/// Only EngineFault degrades. Cancellation must win immediately (no
/// sneaky retry after Ctrl-C) and budget exhaustion would exhaust the
/// smaller remaining budget even faster.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_DEGRADE_H
#define TRACESAFE_VERIFY_DEGRADE_H

#include "support/Budget.h"
#include "trace/Enumerate.h"

#include <set>
#include <string>

namespace tracesafe {

/// What one degraded query did: the primary attempt's outcome and, when it
/// faulted, the fallback's cost. str() renders the one-line form used in
/// fuzz reports ("primary engine-fault after 12ms/3400 states; oracle
/// fallback answered in 87ms/51200 states").
struct DegradeReport {
  bool PrimaryFaulted = false; ///< primary ended Unknown(EngineFault)
  bool FellBack = false;       ///< the oracle fallback ran
  TruncationReason PrimaryReason = TruncationReason::None;
  uint64_t PrimaryVisited = 0;
  int64_t PrimaryElapsedMs = 0;
  uint64_t FallbackVisited = 0;
  int64_t FallbackElapsedMs = 0;
  /// The fallback's final truncation reason (None when it completed).
  TruncationReason FallbackReason = TruncationReason::None;

  std::string str() const;
};

/// The budget left over after \p Used ran under \p Spec: remaining wall
/// clock and remaining visits, floored at 1 so the result stays *bounded*
/// (0 means unlimited in BudgetSpec). The memory cap carries over
/// unreduced — the faulted attempt's tables are freed before the fallback
/// starts, so its charge is not actually occupied.
BudgetSpec remainingBudget(const BudgetSpec &Spec, const Budget &Used);

/// DRF query with degradation: parallel reduced engine first, sequential
/// ExhaustiveOracle on EngineFault. \p Workers selects the primary
/// engine's width (0 = shared pool default). A found race is definitive
/// from either engine; Proved requires whichever engine answered to have
/// run exhaustively, as always.
Verdict<Interleaving>
degradedDataRaceFreedom(const Traceset &T, const BudgetSpec &Spec,
                        DegradeReport *Report = nullptr,
                        const CancelToken *Cancel = nullptr,
                        unsigned Workers = 0);

/// Behaviour collection with degradation, same contract. When the primary
/// faults, the returned set is the fallback's (a faulted primary's set is
/// partial and is discarded); \p Stats reports the answering engine's
/// stats.
std::set<Behaviour>
degradedCollectBehaviours(const Traceset &T, const BudgetSpec &Spec,
                          EnumerationStats *Stats = nullptr,
                          DegradeReport *Report = nullptr,
                          const CancelToken *Cancel = nullptr,
                          unsigned Workers = 0);

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_DEGRADE_H
