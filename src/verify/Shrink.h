//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging counterexample shrinker for programs.
///
/// Given a program that exhibits a failure (any caller-supplied predicate:
/// "the DRF guarantee check fails", "the parser crashes", ...) the shrinker
/// greedily searches for a smaller program that still exhibits it:
///  - drop a whole thread;
///  - drop a single statement (at any nesting depth);
///  - replace an if by one of its branches, a while by its body, a block
///    by its contents;
///  - narrow integer literals toward zero.
/// Each accepted candidate restarts the scan, so the result is a local
/// minimum: no single reduction step keeps the failure. The predicate is
/// consulted on structurally valid programs only; it should return true
/// iff the failure *definitively* reproduces (treat Unknown as false so
/// budget noise cannot steer the reduction).
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_SHRINK_H
#define TRACESAFE_VERIFY_SHRINK_H

#include "lang/Ast.h"
#include "opt/Rewrite.h"

#include <cstdint>
#include <functional>

namespace tracesafe {

/// Does a candidate program still exhibit the failure being minimised?
using FailurePredicate = std::function<bool(const Program &)>;

struct ShrinkOptions {
  /// Cap on accepted-reduction rounds (each round rescans all candidates).
  unsigned MaxRounds = 64;
  /// Cap on total predicate evaluations.
  uint64_t MaxCandidates = 5'000;
  /// Wall-clock cap for the whole reduction in milliseconds (0 = none).
  int64_t DeadlineMs = 0;
};

struct ShrinkResult {
  Program Reduced;
  unsigned Rounds = 0;
  uint64_t CandidatesTried = 0;
  uint64_t CandidatesAccepted = 0;
  /// True when the reduction reached a fixpoint (rather than a limit).
  bool Converged = false;
};

/// Number of statements in \p P, counting nested ones (size measure used
/// by the shrinker and its tests).
size_t countStatements(const Program &P);

/// All single-step reductions of \p P, each strictly simpler (fewer
/// statements, or equal statements with smaller literals). Exposed for
/// tests; shrinkProgram drives these to a fixpoint.
std::vector<Program> shrinkCandidates(const Program &P);

/// Greedy delta-debugging: requires StillFails(P) (asserted in tests, not
/// here — a false start just returns P unchanged with zero rounds).
ShrinkResult shrinkProgram(const Program &P,
                           const FailurePredicate &StillFails,
                           const ShrinkOptions &Options = {});

/// Does a candidate step subsequence (to be applied to the fixed original
/// program by the caller) still exhibit the failure? Like
/// FailurePredicate, Unknown must be reported as false.
using ChainFailurePredicate =
    std::function<bool(const std::vector<RewriteSite> &)>;

struct ChainShrinkResult {
  std::vector<RewriteSite> Steps; ///< minimised subsequence
  uint64_t CandidatesTried = 0;
  /// True when the result is 1-minimal: removing any single remaining
  /// step loses the failure (rather than a limit being hit).
  bool Converged = false;
};

/// Delta-debugs a rewrite chain's step list: ddmin-style removal of
/// contiguous chunks, halving the chunk size down to single steps, keeping
/// every subsequence for which \p StillFails holds. Order is preserved —
/// sites are positional, so the predicate is expected to replay the steps
/// with applyChain and treat a dangling site as "does not reproduce".
/// Only MaxCandidates and DeadlineMs of \p Options apply.
ChainShrinkResult shrinkChain(const std::vector<RewriteSite> &Steps,
                              const ChainFailurePredicate &StillFails,
                              const ShrinkOptions &Options = {});

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_SHRINK_H
