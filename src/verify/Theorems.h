//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end theorem harness: Theorems 1-5 as machine-checked properties
/// of concrete (program, transformation-chain) instances.
///
/// For a chain P_0 -> ... -> P_n of syntactic rule applications:
///  - Lemma 4 / Lemma 5 per step: [[P_{k+1}]] is a semantic elimination of
///    [[P_k]] (E rules) or a reordering of an elimination of [[P_k]]
///    (R rules);
///  - Theorems 1-4 end to end: if P_0 is data race free, then P_n is data
///    race free and behaviours(P_n) within behaviours(P_0);
///  - Theorem 5: for a fresh constant c (not contained in P_0, nonzero),
///    P_n cannot output c, and [[P_n]] has no origin for c.
///
/// A failing instance would be a counterexample to the paper; the tests and
/// the E12 bench run this over program families and seeded random programs.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_THEOREMS_H
#define TRACESAFE_VERIFY_THEOREMS_H

#include "opt/Pipeline.h"
#include "semantics/Reordering.h"
#include "verify/Checks.h"

namespace tracesafe {

struct TheoremCheckOptions {
  ExecLimits Exec;
  ExploreLimits Explore;
  EliminationSearchLimits Elim;
  ReorderingSearchLimits Reorder;
  /// Verify Lemma 4/5 for every step (traceset-level; the expensive part).
  bool VerifySemanticSteps = true;
  /// Verify Theorem 5 with a fresh constant.
  bool CheckThinAir = true;

  /// Points every engine limit at \p B so the whole battery runs under one
  /// shared budget (deadline, visit cap, memory cap). \p B must outlive
  /// every query made with these options.
  void attachBudget(Budget &B) {
    Exec.Shared = &B;
    Explore.Shared = &B;
  }
};

/// Verdict for one chain step's semantic verification.
struct StepVerification {
  RewriteSite Site;
  CheckVerdict Semantic = CheckVerdict::Unknown;
};

struct TheoremCaseReport {
  DrfGuaranteeReport Drf;
  ThinAirReport ThinAir;
  std::vector<StepVerification> Steps;

  bool truncatedAnywhere() const;
  /// All applicable guarantees hold (truncation counts as failure so tests
  /// notice under-provisioned limits).
  bool allHold() const;
  std::string summary() const;
};

/// Runs the full battery on \p Orig and \p Chain (which must start at
/// \p Orig).
TheoremCaseReport checkTheoremsOnChain(const Program &Orig,
                                       const TransformChain &Chain,
                                       const TheoremCheckOptions &Options = {});

/// True iff \p Kind is one of the Fig 10 elimination rules.
bool isEliminationRule(RuleKind Kind);

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_THEOREMS_H
