//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-query behaviour cache (process-global, budget-aware).
///
/// The fuzz campaign recomputes the same tracesets and behaviour sets many
/// times over: the semantic chain checker rebuilds [[P]] for every chain
/// prefix, the shrink predicate rebuilds it for every candidate, and the
/// degraded oracle fallback re-enumerates behaviours the escalation ladder
/// already enumerated. This cache memoises both results across queries,
/// keyed on exact serialisations (printed program text / action words via
/// trace/ActionWord.h) plus the semantically relevant limit fields — no
/// hashing shortcuts, so a hit can never be a collision.
///
/// Two invariants keep the cache transparent:
///
///  - *Warmth invariance.* Only complete (untruncated) results are cached,
///    and a hit replays the recorded visit/byte cost of the original
///    computation against the current query's Budget via
///    Budget::chargeMany. A tight budget is therefore exhausted by a hit
///    exactly where recomputation would have exhausted it, so cache
///    warmth never flips a verdict that depends on visit or memory caps.
///
///  - *Fault transparency.* Lookup and insert probe
///    FaultSite::BehaviourCache; an injected fault degrades the operation
///    to a miss (recompute) or a skipped insert, never to a changed
///    answer. See docs/ROBUSTNESS.md.
///
/// The cache owns bounded memory that is deliberately *not* charged to
/// any query budget: it is process infrastructure, like the thread pool,
/// not part of a query's footprint. Overflow is handled by segmented LRU
/// eviction (probation for entries seen once, protected for re-used
/// ones): a long-lived daemon keeps its warm set while one-shot scans
/// wash through probation, instead of periodically dropping everything.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_VERIFY_BEHAVIOURCACHE_H
#define TRACESAFE_VERIFY_BEHAVIOURCACHE_H

#include "lang/Explore.h"
#include "trace/Enumerate.h"

#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

namespace tracesafe {

class BehaviourCache {
public:
  /// Monotonic counters (snapshot under the cache lock). Hit/miss pairs
  /// are per family; Faults counts injected cache faults degraded to
  /// recomputation; Evictions counts single entries dropped by the
  /// segmented LRU on overflow; Clears counts explicit clear() calls.
  struct CacheStats {
    uint64_t TracesetHits = 0;
    uint64_t TracesetMisses = 0;
    uint64_t BehaviourHits = 0;
    uint64_t BehaviourMisses = 0;
    uint64_t DrfHits = 0;
    uint64_t DrfMisses = 0;
    uint64_t Faults = 0;
    uint64_t Evictions = 0;
    uint64_t Clears = 0;
    uint64_t Bytes = 0; ///< approximate current footprint

    uint64_t hits() const { return TracesetHits + BehaviourHits + DrfHits; }
    uint64_t misses() const {
      return TracesetMisses + BehaviourMisses + DrfMisses;
    }
  };

  /// Memory model a cached DRF verdict was computed under. The race query
  /// currently runs on SC tracesets only; the byte lives in the key so
  /// the SC-to-TSO portability work (ROADMAP item 3) can put per-model
  /// race verdicts in the same family without a verdict ever leaking
  /// across models.
  enum class DrfModel : uint8_t { Sc = 0, Tso = 1, Pso = 2 };

  explicit BehaviourCache(uint64_t MaxBytes = 64ULL << 20)
      : MaxBytes(MaxBytes ? MaxBytes : 1) {}

  BehaviourCache(const BehaviourCache &) = delete;
  BehaviourCache &operator=(const BehaviourCache &) = delete;

  /// Cached programTraceset. The key covers the printed program, the
  /// domain, and the bounds that shape a *complete* traceset (MaxActions,
  /// MaxSilentRun); MaxStates and Workers are excluded — a result that
  /// completed under some state cap and width is the full set under every
  /// other. Returns a shared pointer so chain checkers can hold several
  /// tracesets without copying. On a hit with an exhausted-by-replay
  /// budget the complete cached set is still returned, with \p Stats
  /// marked truncated by the budget's reason — content-wise a superset of
  /// what recomputation would have produced, verdict-wise identical
  /// (truncated means Unknown downstream either way).
  std::shared_ptr<const Traceset>
  tracesetFor(const Program &P, const std::vector<Value> &Domain,
              const ExploreLimits &Limits, ExploreStats *Stats = nullptr);

  /// Cached collectBehaviours. Keyed on the action-word serialisation of
  /// the traceset, its domain, MaxEvents, and the engine-selection flags
  /// (SleepSets, SourceSets, ExhaustiveOracle). The flags cannot change a
  /// complete result — the equivalence tests assert exactly that — but
  /// they stay in the key defensively, so a reduction bug could never
  /// leak across engines through the cache.
  std::set<Behaviour> behavioursFor(const Traceset &T,
                                    const EnumerationLimits &Limits,
                                    EnumerationStats *Stats = nullptr);

  /// Cached checkDataRaceFreedom, keyed like behavioursFor plus the
  /// model byte. Only definitive verdicts from complete searches are
  /// cached (Unknown is an artefact of this query's budget). A hit
  /// replays the recorded cost; if the replay exhausts the budget the
  /// call returns Unknown with the budget's reason — byte-identical to
  /// recomputation, because the recorded cost is exactly the visits the
  /// search needed to reach its verdict (a race search stops at the
  /// witness), so a budget too small for the replay is a budget under
  /// which the cold search would have been truncated first too.
  Verdict<Interleaving> drfFor(const Traceset &T,
                               const EnumerationLimits &Limits,
                               DrfModel Model = DrfModel::Sc);

  CacheStats stats() const;

  /// Drops every entry (counters are kept; Clears is incremented).
  void clear();

  /// The process-global instance used by the fuzz harness and the
  /// degraded-query fallbacks. Tests wanting isolation construct their
  /// own.
  static BehaviourCache &global();

private:
  /// Which family an LRU node belongs to (the families share the
  /// recency lists so eviction pressure is global, like the byte cap).
  enum class Family : uint8_t { Traceset, Behaviour, Drf };

  /// A node of the segmented LRU lists: enough to find (and erase) the
  /// owning map entry. Map key storage is stable under rehash, so the
  /// pointer stays valid for the entry's lifetime.
  struct LruRef {
    Family Kind;
    const std::string *Key;
  };
  using LruList = std::list<LruRef>;

  /// Recency bookkeeping shared by both entry kinds.
  struct LruState {
    LruList::iterator It;
    bool Protected_ = false; ///< which segment It points into
  };

  struct TracesetEntry {
    std::shared_ptr<const Traceset> Set;
    uint64_t CostVisits = 0; ///< visits the computing query charged
    uint64_t CostBytes = 0;  ///< bytes the computing query charged
    uint64_t Footprint = 0;  ///< approximate bytes this entry occupies
    LruState Lru;
  };
  struct BehaviourEntry {
    std::set<Behaviour> Set;
    uint64_t CostVisits = 0;
    uint64_t CostBytes = 0;
    uint64_t Footprint = 0;
    LruState Lru;
  };
  struct DrfEntry {
    VerdictKind Kind = VerdictKind::Proved; ///< never Unknown
    Interleaving Witness;                   ///< populated when Refuted
    uint64_t CostVisits = 0;
    uint64_t CostBytes = 0;
    uint64_t Footprint = 0;
    LruState Lru;
  };

  /// Moves a just-hit entry to the front of the protected segment,
  /// demoting protected tails back to probation if the segment outgrows
  /// its share of the byte cap. Call with the lock held.
  void touchLocked(LruState &Lru, uint64_t Footprint);

  /// Links a freshly inserted entry at the front of probation. Call with
  /// the lock held.
  void linkLocked(LruState &Lru, Family Kind, const std::string &Key);

  /// Evicts probation (then protected) tails until \p Need more bytes fit
  /// under the cap or the cache is empty. Call with the lock held.
  void reserveLocked(uint64_t Need);

  /// Erases the entry behind \p Ref from its map, adjusting the byte and
  /// segment accounting. Call with the lock held.
  void evictLocked(const LruRef &Ref, bool FromProtected);

  const uint64_t MaxBytes;
  mutable std::mutex M;
  std::unordered_map<std::string, TracesetEntry> Tracesets;
  std::unordered_map<std::string, BehaviourEntry> Behaviours;
  std::unordered_map<std::string, DrfEntry> Drfs;
  /// Segmented LRU: entries enter Probation (front = most recent) and are
  /// promoted to Protected on their first hit. Eviction drains probation
  /// tails first, so scan traffic cannot flush the re-used warm set.
  LruList Probation;
  LruList Protected_;
  uint64_t ProtectedBytes = 0;
  CacheStats Counters;
};

} // namespace tracesafe

#endif // TRACESAFE_VERIFY_BEHAVIOURCACHE_H
