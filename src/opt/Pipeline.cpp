#include "opt/Pipeline.h"

using namespace tracesafe;

TransformChain tracesafe::randomChain(const Program &P, const RuleSet &Rules,
                                      size_t MaxSteps, Rng &R) {
  TransformChain Chain;
  Chain.Result = P;
  for (size_t Step = 0; Step < MaxSteps; ++Step) {
    std::vector<RewriteSite> Sites = findRewriteSites(Chain.Result, Rules);
    if (Sites.empty())
      break;
    const RewriteSite &Site = Sites[R.below(Sites.size())];
    Chain.Result = applyRewrite(Chain.Result, Site);
    Chain.Steps.push_back(Site);
  }
  return Chain;
}

TransformChain tracesafe::greedyChain(const Program &P, const RuleSet &Rules,
                                      size_t MaxSteps) {
  TransformChain Chain;
  Chain.Result = P;
  for (size_t Step = 0; Step < MaxSteps; ++Step) {
    std::vector<RewriteSite> Sites = findRewriteSites(Chain.Result, Rules);
    if (Sites.empty())
      break;
    Chain.Result = applyRewrite(Chain.Result, Sites.front());
    Chain.Steps.push_back(Sites.front());
  }
  return Chain;
}
