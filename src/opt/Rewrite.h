//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic transformation engine (paper §6.1, Figs 9-11).
///
/// Fig 9's transformation template says: a base rule may be applied at any
/// position inside any statement context. We realise this as an enumerator
/// of *rewrite sites* — (rule, statement-list path, indices) triples — plus
/// a pure applier that clones the program and rewrites one site.
///
/// The base rules:
///   Fig 10 eliminations: E-RAR, E-RAW, E-WAR, E-WBW, E-IR. These are "gap"
///   rules: they relate two statements i < j in the same list with every
///   intervening statement sync-free and not mentioning the relevant names
///   (the paper's S with r1, r2, x not in fv(S)).
///   Fig 11 reorderings: R-RR, R-WW, R-WR, R-RW, R-WL, R-RL, R-UW, R-UR,
///   R-XR, R-XW. These swap two adjacent statements.
///   Extensions (off by default, see DESIGN.md): R-RX and R-WX, the safe
///   reverse directions of the external-action reorderings.
///
/// Statement lists live in thread bodies and inside BlockStmt bodies; if
/// and while children are traversed through blocks. A ListPath addresses
/// one such list.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_OPT_REWRITE_H
#define TRACESAFE_OPT_REWRITE_H

#include "lang/Ast.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace tracesafe {

/// The syntactic base rules.
enum class RuleKind : uint8_t {
  // Fig 10 (eliminations).
  ERaR, ///< r1:=x; S; r2:=x   ->  r1:=x; S; r2:=r1
  ERaW, ///< x:=r1; S; r2:=x   ->  x:=r1; S; r2:=r1
  EWaR, ///< r:=x;  S; x:=r    ->  r:=x;  S
  EWbW, ///< x:=r1; S; x:=r2   ->  S; x:=r2
  EIr,  ///< r:=x;  r:=i       ->  r:=i
  // Fig 11 (reorderings), all adjacent swaps.
  RRR, ///< r1:=x; r2:=y  ->  r2:=y; r1:=x    (r1 != r2, x not volatile)
  RWW, ///< x:=r1; y:=r2  ->  y:=r2; x:=r1    (x != y, y not volatile)
  RWR, ///< x:=r1; r2:=y  ->  r2:=y; x:=r1    (r1 != r2, x != y, not both
       ///<                                    volatile)
  RRW, ///< r1:=x; y:=r2  ->  y:=r2; r1:=x    (r1 != r2, x != y, both
       ///<                                    non-volatile)
  RWL, ///< x:=r; lock m    ->  lock m; x:=r    (x not volatile)
  RRL, ///< r:=x; lock m    ->  lock m; r:=x    (x not volatile)
  RUW, ///< unlock m; x:=r  ->  x:=r; unlock m  (x not volatile)
  RUR, ///< unlock m; r:=x  ->  r:=x; unlock m  (x not volatile)
  RXR, ///< print r1; r2:=x ->  r2:=x; print r1 (r1 != r2, x not volatile)
  RXW, ///< print r1; x:=r2 ->  x:=r2; print r1 (x not volatile)
  // Extensions (not in the paper's figure; safe by the same predicate).
  RRX, ///< r2:=x; print r1 ->  print r1; r2:=x (r1 != r2, x not volatile)
  RWX, ///< x:=r2; print r1 ->  print r1; x:=r2 (x not volatile)
};

/// Printable rule name ("E-RAR", "R-WL", ...).
std::string ruleName(RuleKind K);

/// Which rules the site enumerator considers.
struct RuleSet {
  bool Eliminations = true;
  bool Reorderings = true;
  bool Extensions = false;

  bool enabled(RuleKind K) const;

  static RuleSet all() { return RuleSet{}; }
  static RuleSet eliminationsOnly() { return RuleSet{true, false, false}; }
  static RuleSet reorderingsOnly() { return RuleSet{false, true, false}; }
  static RuleSet withExtensions() { return RuleSet{true, true, true}; }
};

/// How a path descends from a statement into a child statement list.
enum class PathSel : uint8_t {
  BlockBody, ///< the statement is a BlockStmt; descend into its body
  ThenBody,  ///< IfStmt; then-branch must be a BlockStmt
  ElseBody,  ///< IfStmt; else-branch must be a BlockStmt
  WhileBody, ///< WhileStmt; body must be a BlockStmt
};

/// Address of a statement list: a thread body followed by descent steps.
struct ListPath {
  ThreadId Tid = 0;
  std::vector<std::pair<size_t, PathSel>> Steps;

  friend auto operator<=>(const ListPath &, const ListPath &) = default;
};

/// Resolves \p Path inside \p P; asserts the path is valid.
StmtList &resolveList(Program &P, const ListPath &Path);
const StmtList &resolveList(const Program &P, const ListPath &Path);

/// Invokes \p Fn on every statement list in \p P (thread bodies and all
/// nested blocks, including blocks inside if/while).
void forEachList(const Program &P,
                 const std::function<void(const ListPath &, const StmtList &)>
                     &Fn);

/// One applicable transformation: \p Rule at positions \p I (< \p J for gap
/// rules; J = I+1 for adjacent rules) of the list at \p Path.
struct RewriteSite {
  RuleKind Rule;
  ListPath Path;
  size_t I = 0;
  size_t J = 0;

  std::string str() const;
};

/// Enumerates every applicable rewrite site of \p P under \p Rules, in a
/// deterministic order.
std::vector<RewriteSite> findRewriteSites(const Program &P,
                                          const RuleSet &Rules = {});

/// Applies one site, returning the transformed program (the input is not
/// modified). Asserts that the site actually matches.
Program applyRewrite(const Program &P, const RewriteSite &Site);

/// Does \p Site apply to \p P? Unlike applyRewrite's assert this is a
/// total check: an unresolvable path, an out-of-range index, wrong index
/// shape for the rule, or a failing rule matcher all return false. Chain
/// minimisation uses it to re-validate step subsequences against reduced
/// programs, where sites recorded on the full program routinely dangle.
bool siteApplies(const Program &P, const RewriteSite &Site);

/// Applies \p Steps in order; nullopt as soon as a step no longer applies
/// (sites are positional, so dropping an earlier step can invalidate a
/// later one). The chain shrinker's replay primitive.
std::optional<Program> applyChain(const Program &P,
                                  const std::vector<RewriteSite> &Steps);

} // namespace tracesafe

#endif // TRACESAFE_OPT_REWRITE_H
