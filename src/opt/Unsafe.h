//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberately *unsafe* transformations the paper uses as counterexamples.
///
/// - introduceRead: Fig 3(b)'s irrelevant read introduction. Inserting
///   `r := x` never changes behaviours of the program it is applied to on a
///   sequentially consistent machine, but it is NOT a semantic elimination
///   or reordering — and the paper's §2.1 shows why it must not be: a
///   subsequent perfectly legal redundant-read elimination can then produce
///   new behaviours for a data-race-free program.
///
/// - unsafeConstantPropagation: the §1 introduction example (gcc 4.1.2 on
///   x86). Propagates a constant store forward into later loads of the same
///   location in the same thread, *ignoring* the sync-free side condition
///   of E-RAW and descending into nested blocks. Sound for sequential code;
///   unsound under the DRF guarantee when synchronisation intervenes.
///
/// Both return the transformed program; the verification harness
/// demonstrates the failures.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_OPT_UNSAFE_H
#define TRACESAFE_OPT_UNSAFE_H

#include "opt/Rewrite.h"

#include <optional>

namespace tracesafe {

/// Inserts `Reg := Loc` at position \p Index of the list at \p Path.
/// \p Reg should be otherwise unused (the read is "irrelevant").
Program introduceRead(const Program &P, const ListPath &Path, size_t Index,
                      SymbolId Reg, SymbolId Loc);

/// A constant-propagation opportunity: a store of a literal at (Path, I)
/// and a later load of the same location — possibly nested inside a block,
/// if or while under the same list — to be replaced by a constant
/// assignment. The propagation deliberately skips the sync-free and
/// fv checks of E-RAW.
struct ConstPropSite {
  ListPath StorePath;
  size_t StoreIndex = 0;
  ListPath LoadPath; ///< List containing the load (may be deeper).
  size_t LoadIndex = 0;

  std::string str() const;
};

/// All unsafe constant-propagation opportunities in \p P.
std::vector<ConstPropSite> findUnsafeConstProp(const Program &P);

/// Applies one opportunity: the load `r := x` becomes `r := c`.
Program applyUnsafeConstProp(const Program &P, const ConstPropSite &Site);

/// A lock/unlock pair of the same monitor in one statement list (the lock
/// at index I, the matching unlock at index J > I, with balanced nesting
/// in between).
struct LockPair {
  ListPath Path;
  size_t LockIndex = 0;
  size_t UnlockIndex = 0;
};

/// Finds the top-level lock/unlock pairs of \p P.
std::vector<LockPair> findLockPairs(const Program &P);

/// *Unsafe* lock elision: deletes the pair. Sequentially sound; under the
/// DRF guarantee it is not — a lock is an acquire, and Definition 1 makes
/// acquires non-eliminable, precisely because removing the pair can
/// introduce data races into race-free programs.
Program elideLockPair(const Program &P, const LockPair &Pair);

} // namespace tracesafe

#endif // TRACESAFE_OPT_UNSAFE_H
