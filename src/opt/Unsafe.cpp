#include "opt/Unsafe.h"

#include <cassert>

using namespace tracesafe;

Program tracesafe::introduceRead(const Program &P, const ListPath &Path,
                                 size_t Index, SymbolId Reg, SymbolId Loc) {
  Program Out = P;
  StmtList &L = resolveList(Out, Path);
  assert(Index <= L.size() && "insertion point out of range");
  L.insert(L.begin() + static_cast<ptrdiff_t>(Index),
           std::make_unique<LoadStmt>(Reg, Loc));
  return Out;
}

std::string ConstPropSite::str() const {
  return "const-prop store@[" + std::to_string(StoreIndex) + "] -> load@[" +
         std::to_string(LoadIndex) + "]";
}

namespace {

/// Does \p S contain (at any depth) a store to \p Loc?
bool containsStoreTo(const Stmt &S, SymbolId Loc) {
  switch (S.kind()) {
  case StmtKind::Store:
    return cast<StoreStmt>(S).loc() == Loc;
  case StmtKind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S).body())
      if (containsStoreTo(*Sub, Loc))
        return true;
    return false;
  case StmtKind::If:
    return containsStoreTo(cast<IfStmt>(S).thenStmt(), Loc) ||
           containsStoreTo(cast<IfStmt>(S).elseStmt(), Loc);
  case StmtKind::While:
    return containsStoreTo(cast<WhileStmt>(S).body(), Loc);
  default:
    return false;
  }
}

/// Scans \p L from \p From for loads of \p Loc reachable before any other
/// store to Loc (sequentially conservative, like a compiler's forward
/// constant propagation). Returns true if scanning of the *enclosing* list
/// must stop (a store to Loc may have executed).
bool scanForLoads(const StmtList &L, size_t From, SymbolId Loc,
                  const ListPath &Path, std::vector<ConstPropSite> &Out,
                  const ListPath &StorePath, size_t StoreIndex) {
  for (size_t K = From; K < L.size(); ++K) {
    const Stmt &S = *L[K];
    switch (S.kind()) {
    case StmtKind::Load:
      if (cast<LoadStmt>(S).loc() == Loc) {
        ConstPropSite Site;
        Site.StorePath = StorePath;
        Site.StoreIndex = StoreIndex;
        Site.LoadPath = Path;
        Site.LoadIndex = K;
        Out.push_back(std::move(Site));
      }
      break;
    case StmtKind::Store:
      if (cast<StoreStmt>(S).loc() == Loc)
        return true;
      break;
    case StmtKind::Block: {
      ListPath Sub = Path;
      Sub.Steps.emplace_back(K, PathSel::BlockBody);
      if (scanForLoads(cast<BlockStmt>(S).body(), 0, Loc, Sub, Out, StorePath,
                       StoreIndex))
        return true;
      break;
    }
    case StmtKind::If: {
      const auto &If = cast<IfStmt>(S);
      bool Stop = false;
      if (const auto *B = dyn_cast<BlockStmt>(&If.thenStmt())) {
        ListPath Sub = Path;
        Sub.Steps.emplace_back(K, PathSel::ThenBody);
        Stop |= scanForLoads(B->body(), 0, Loc, Sub, Out, StorePath,
                             StoreIndex);
      } else {
        Stop |= containsStoreTo(If.thenStmt(), Loc);
      }
      if (const auto *B = dyn_cast<BlockStmt>(&If.elseStmt())) {
        ListPath Sub = Path;
        Sub.Steps.emplace_back(K, PathSel::ElseBody);
        Stop |= scanForLoads(B->body(), 0, Loc, Sub, Out, StorePath,
                             StoreIndex);
      } else {
        Stop |= containsStoreTo(If.elseStmt(), Loc);
      }
      if (Stop)
        return true;
      break;
    }
    case StmtKind::While: {
      const auto &W = cast<WhileStmt>(S);
      // A store anywhere in the body could execute before a body load on a
      // later iteration; only propagate into store-free bodies.
      if (containsStoreTo(W.body(), Loc))
        return true;
      if (const auto *B = dyn_cast<BlockStmt>(&W.body())) {
        ListPath Sub = Path;
        Sub.Steps.emplace_back(K, PathSel::WhileBody);
        scanForLoads(B->body(), 0, Loc, Sub, Out, StorePath, StoreIndex);
      }
      break;
    }
    default:
      break;
    }
  }
  return false;
}

} // namespace

std::vector<ConstPropSite> tracesafe::findUnsafeConstProp(const Program &P) {
  std::vector<ConstPropSite> Out;
  forEachList(P, [&](const ListPath &Path, const StmtList &L) {
    for (size_t I = 0; I < L.size(); ++I) {
      const auto *St = dyn_cast<StoreStmt>(L[I].get());
      if (!St || !St->src().IsImm)
        continue;
      scanForLoads(L, I + 1, St->loc(), Path, Out, Path, I);
    }
  });
  return Out;
}

std::vector<LockPair> tracesafe::findLockPairs(const Program &P) {
  std::vector<LockPair> Out;
  forEachList(P, [&](const ListPath &Path, const StmtList &L) {
    for (size_t I = 0; I < L.size(); ++I) {
      const auto *Lock = dyn_cast<LockStmt>(L[I].get());
      if (!Lock)
        continue;
      int Depth = 1;
      for (size_t J = I + 1; J < L.size(); ++J) {
        if (const auto *L2 = dyn_cast<LockStmt>(L[J].get());
            L2 && L2->monitor() == Lock->monitor())
          ++Depth;
        const auto *U = dyn_cast<UnlockStmt>(L[J].get());
        if (U && U->monitor() == Lock->monitor() && --Depth == 0) {
          LockPair Pair;
          Pair.Path = Path;
          Pair.LockIndex = I;
          Pair.UnlockIndex = J;
          Out.push_back(std::move(Pair));
          break;
        }
      }
    }
  });
  return Out;
}

Program tracesafe::elideLockPair(const Program &P, const LockPair &Pair) {
  Program Out = P;
  StmtList &L = resolveList(Out, Pair.Path);
  assert(Pair.LockIndex < Pair.UnlockIndex && Pair.UnlockIndex < L.size() &&
         isa<LockStmt>(*L[Pair.LockIndex]) &&
         isa<UnlockStmt>(*L[Pair.UnlockIndex]) && "not a lock/unlock pair");
  // Erase the later index first so the earlier one stays valid.
  L.erase(L.begin() + static_cast<ptrdiff_t>(Pair.UnlockIndex));
  L.erase(L.begin() + static_cast<ptrdiff_t>(Pair.LockIndex));
  return Out;
}

Program tracesafe::applyUnsafeConstProp(const Program &P,
                                        const ConstPropSite &Site) {
  Program Out = P;
  const StmtList &StoreL = resolveList(Out, Site.StorePath);
  const auto &St = cast<StoreStmt>(*StoreL[Site.StoreIndex]);
  assert(St.src().IsImm && "constant propagation needs a literal store");
  Value C = St.src().Imm;
  SymbolId Loc = St.loc();
  StmtList &LoadL = resolveList(Out, Site.LoadPath);
  const auto &Ld = cast<LoadStmt>(*LoadL[Site.LoadIndex]);
  assert(Ld.loc() == Loc && "const-prop site location mismatch");
  (void)Loc;
  LoadL[Site.LoadIndex] =
      std::make_unique<AssignStmt>(Ld.reg(), Operand::imm(C));
  return Out;
}
