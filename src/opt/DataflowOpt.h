//===----------------------------------------------------------------------===//
///
/// \file
/// A dataflow-analysis-based optimiser in the style of a real compiler —
/// the §2.1 claim made concrete: "the semantic elimination transformation
/// is general enough to cover optimisations that eliminate memory accesses
/// based on data-flow analyses, i.e., common subexpression elimination,
/// constant propagation".
///
/// Two passes per statement list:
///
///  - forward *available-value* analysis: after `x := ri` or `r := x` the
///    location x is known to hold ri (resp. r); a later load of x is
///    forwarded to a register copy or constant. Facts are killed exactly
///    by the Fig 10 side conditions — a statement that is not sync-free,
///    or that mentions the fact's location or register, invalidates it —
///    so every forwarding is an instance of E-RAR/E-RAW and the result is
///    certifiable by the semantic elimination checker;
///
///  - backward *dead-store* elimination: a store overwritten before any
///    intervening access/synchronisation (E-WBW), or writing back a value
///    just read (E-WAR), is deleted under the same side conditions.
///
/// The pass iterates to a fixpoint. runDataflowOpt(P) is behaviourally a
/// restriction of greedyChain(P, eliminationsOnly()) but runs in one sweep
/// per iteration instead of re-scanning all site pairs; the E9 bench
/// compares the two.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_OPT_DATAFLOWOPT_H
#define TRACESAFE_OPT_DATAFLOWOPT_H

#include "lang/Ast.h"

namespace tracesafe {

struct DataflowOptReport {
  size_t LoadsForwarded = 0;  ///< E-RAR/E-RAW instances applied.
  size_t StoresRemoved = 0;   ///< E-WBW/E-WAR instances applied.
  size_t DeadReadsRemoved = 0; ///< E-IR instances applied.
  size_t Iterations = 0;

  size_t total() const {
    return LoadsForwarded + StoresRemoved + DeadReadsRemoved;
  }
};

/// Runs the optimiser to a fixpoint; returns the transformed program.
///
/// When \p ChainOut is non-null it receives the audit trail: a snapshot of
/// the program after every individual rewrite, starting with the input.
/// Adjacent snapshots are single Definition-1 eliminations; the *whole*
/// pass generally is not one (eliminations do not compose into a single
/// elimination — e.g. E-WBW exposing an E-WAR leaves the write-back with
/// no Definition-1 justification in the original trace), which is exactly
/// why the paper states its main theorem over finite chains. Certify with
/// checkChain over the snapshots.
Program runDataflowOpt(const Program &P, DataflowOptReport *Report = nullptr,
                       std::vector<Program> *ChainOut = nullptr);

} // namespace tracesafe

#endif // TRACESAFE_OPT_DATAFLOWOPT_H
