//===----------------------------------------------------------------------===//
///
/// \file
/// Composition of syntactic transformations.
///
/// Theorems 3/4 are closed under composition (a finite chain of programs
/// with adjacent members related by a rule application). The pipeline
/// helpers build such chains: all single-step successors, greedy fixpoint
/// application, and seeded random chains for the property-test harness.
///
//===----------------------------------------------------------------------===//

#ifndef TRACESAFE_OPT_PIPELINE_H
#define TRACESAFE_OPT_PIPELINE_H

#include "opt/Rewrite.h"
#include "support/Rng.h"

namespace tracesafe {

/// A chain P_0 -> P_1 -> ... -> P_n of rule applications.
struct TransformChain {
  Program Result;                 ///< P_n.
  std::vector<RewriteSite> Steps; ///< The applied sites, in order.
};

/// Applies up to \p MaxSteps randomly chosen applicable rewrites.
TransformChain randomChain(const Program &P, const RuleSet &Rules,
                           size_t MaxSteps, Rng &R);

/// Applies rewrites greedily (always the first applicable site) until no
/// rule applies or \p MaxSteps is reached. Deterministic.
TransformChain greedyChain(const Program &P, const RuleSet &Rules,
                           size_t MaxSteps = 64);

} // namespace tracesafe

#endif // TRACESAFE_OPT_PIPELINE_H
