#include "opt/DataflowOpt.h"

#include <functional>
#include <map>

using namespace tracesafe;

namespace {

/// The per-list optimiser. Facts map a non-volatile location to an operand
/// (register or literal) known to hold its current value. Fact lifetime
/// follows Definition 1's conditions semantically, with one conservative
/// extra: any synchronisation kills all facts (Definition 1 would allow
/// surviving a lone acquire — see Fig 3 — but we stay on the
/// unquestionably-implemented side of the paper).
class ListOptimiser {
public:
  ListOptimiser(const std::set<SymbolId> &Volatiles, DataflowOptReport &Report,
                const std::function<void()> &OnChange)
      : Volatiles(Volatiles), Report(Report), OnChange(OnChange) {}

  bool run(StmtList &L) {
    bool Changed = false;
    Changed |= forwardValues(L);
    Changed |= removeOverwrittenStores(L);
    Changed |= removeWriteBacks(L);
    Changed |= removeDeadReads(L);
    // Recurse into nested lists.
    for (StmtPtr &S : L)
      Changed |= runNested(*S);
    return Changed;
  }

private:
  bool isVolatile(SymbolId Loc) const { return Volatiles.count(Loc) != 0; }

  bool runNested(Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Block:
      return run(static_cast<BlockStmt &>(S).body());
    case StmtKind::If: {
      auto &If = static_cast<IfStmt &>(S);
      bool Changed = runNested(If.thenStmt());
      Changed |= runNested(If.elseStmt());
      return Changed;
    }
    case StmtKind::While:
      return runNested(static_cast<WhileStmt &>(S).body());
    default:
      return false;
    }
  }

  /// Kills every fact whose operand is register \p Reg.
  void killRegister(std::map<SymbolId, Operand> &Avail, SymbolId Reg) {
    for (auto It = Avail.begin(); It != Avail.end();)
      if (!It->second.IsImm && It->second.Reg == Reg)
        It = Avail.erase(It);
      else
        ++It;
  }

  /// Forward available-value pass: E-RAR / E-RAW instances.
  bool forwardValues(StmtList &L) {
    bool Changed = false;
    std::map<SymbolId, Operand> Avail;
    for (StmtPtr &S : L) {
      switch (S->kind()) {
      case StmtKind::Load: {
        const auto &Load = cast<LoadStmt>(*S);
        if (isVolatile(Load.loc())) {
          Avail.clear(); // Acquire.
          break;
        }
        killRegister(Avail, Load.reg());
        auto It = Avail.find(Load.loc());
        if (It != Avail.end() &&
            (It->second.IsImm || It->second.Reg != Load.reg())) {
          S = std::make_unique<AssignStmt>(Load.reg(), It->second);
          ++Report.LoadsForwarded;
          OnChange();
          Changed = true;
        } else {
          Avail[Load.loc()] = Operand::reg(Load.reg());
        }
        break;
      }
      case StmtKind::Store: {
        const auto &Store = cast<StoreStmt>(*S);
        if (isVolatile(Store.loc())) {
          Avail.clear(); // Release.
          break;
        }
        Avail[Store.loc()] = Store.src();
        break;
      }
      case StmtKind::Assign:
        killRegister(Avail, cast<AssignStmt>(*S).reg());
        break;
      case StmtKind::Input:
        killRegister(Avail, cast<InputStmt>(*S).reg());
        break;
      case StmtKind::Lock:
      case StmtKind::Unlock:
        Avail.clear();
        break;
      case StmtKind::Skip:
      case StmtKind::Print:
        break; // Neither writes memory nor registers.
      case StmtKind::Block:
      case StmtKind::If:
      case StmtKind::While: {
        // Nested control flow: keep only facts the statement cannot
        // disturb.
        if (!S->isSyncFree(Volatiles)) {
          Avail.clear();
          break;
        }
        std::set<SymbolId> Regs, Locs, Mons;
        S->collectSymbols(Regs, Locs, Mons);
        for (auto It = Avail.begin(); It != Avail.end();) {
          bool Clobbered = Locs.count(It->first) ||
                           (!It->second.IsImm && Regs.count(It->second.Reg));
          It = Clobbered ? Avail.erase(It) : std::next(It);
        }
        break;
      }
      }
    }
    return Changed;
  }

  /// Statements at (I, J) exclusive are sync-free and do not access \p Loc.
  bool cleanGap(const StmtList &L, size_t I, size_t J, SymbolId Loc) const {
    for (size_t K = I + 1; K < J; ++K) {
      if (!L[K]->isSyncFree(Volatiles))
        return false;
      std::set<SymbolId> Regs, Locs, Mons;
      L[K]->collectSymbols(Regs, Locs, Mons);
      if (Locs.count(Loc))
        return false;
    }
    return true;
  }

  /// E-WBW: a store overwritten by a later store with a clean gap.
  bool removeOverwrittenStores(StmtList &L) {
    for (size_t I = 0; I < L.size(); ++I) {
      const auto *Store = dyn_cast<StoreStmt>(L[I].get());
      if (!Store || isVolatile(Store->loc()))
        continue;
      for (size_t J = I + 1; J < L.size(); ++J) {
        const auto *Later = dyn_cast<StoreStmt>(L[J].get());
        if (Later && Later->loc() == Store->loc() &&
            cleanGap(L, I, J, Store->loc())) {
          L.erase(L.begin() + static_cast<ptrdiff_t>(I));
          ++Report.StoresRemoved;
          OnChange();
          return true; // Indices shifted; the fixpoint loop re-runs us.
        }
        // Any statement that breaks the gap also ends the scan.
        if (J + 1 < L.size() && !cleanGap(L, I, J + 1, Store->loc()))
          break;
      }
    }
    return false;
  }

  /// E-WAR: `r := x; ...; x := r` with a clean gap also avoiding r.
  bool removeWriteBacks(StmtList &L) {
    for (size_t I = 0; I < L.size(); ++I) {
      const auto *Load = dyn_cast<LoadStmt>(L[I].get());
      if (!Load || isVolatile(Load->loc()))
        continue;
      for (size_t J = I + 1; J < L.size(); ++J) {
        const auto *Store = dyn_cast<StoreStmt>(L[J].get());
        if (Store && Store->loc() == Load->loc() && !Store->src().IsImm &&
            Store->src().Reg == Load->reg() &&
            cleanGap(L, I, J, Load->loc()) &&
            !anyMentions(L, I + 1, J, Load->reg())) {
          L.erase(L.begin() + static_cast<ptrdiff_t>(J));
          ++Report.StoresRemoved;
          OnChange();
          return true;
        }
        if (!cleanGap(L, I, J + 1, Load->loc()) ||
            anyMentions(L, I + 1, J + 1, Load->reg()))
          break;
      }
    }
    return false;
  }

  bool anyMentions(const StmtList &L, size_t Begin, size_t End,
                   SymbolId Sym) const {
    for (size_t K = Begin; K < End; ++K)
      if (L[K]->mentionsAny({Sym}))
        return true;
    return false;
  }

  /// E-IR: `r := x; r := i`.
  bool removeDeadReads(StmtList &L) {
    for (size_t I = 0; I + 1 < L.size(); ++I) {
      const auto *Load = dyn_cast<LoadStmt>(L[I].get());
      const auto *Assign = dyn_cast<AssignStmt>(L[I + 1].get());
      if (Load && Assign && !isVolatile(Load->loc()) &&
          Assign->reg() == Load->reg() && Assign->src().IsImm) {
        L.erase(L.begin() + static_cast<ptrdiff_t>(I));
        ++Report.DeadReadsRemoved;
        OnChange();
        return true;
      }
    }
    return false;
  }

  const std::set<SymbolId> &Volatiles;
  DataflowOptReport &Report;
  const std::function<void()> &OnChange;
};

} // namespace

Program tracesafe::runDataflowOpt(const Program &P,
                                  DataflowOptReport *Report,
                                  std::vector<Program> *ChainOut) {
  Program Out = P;
  if (ChainOut) {
    ChainOut->clear();
    ChainOut->push_back(P);
  }
  DataflowOptReport Local;
  std::function<void()> OnChange = [&]() {
    if (ChainOut)
      ChainOut->push_back(Out);
  };
  ListOptimiser Opt(Out.volatiles(), Local, OnChange);
  bool Changed = true;
  while (Changed && Local.Iterations < 64) {
    ++Local.Iterations;
    Changed = false;
    for (ThreadId Tid = 0; Tid < Out.threadCount(); ++Tid)
      Changed |= Opt.run(Out.thread(Tid));
  }
  if (Report)
    *Report = Local;
  return Out;
}
