#include "opt/Rewrite.h"

#include <cassert>
#include <optional>

using namespace tracesafe;

std::string tracesafe::ruleName(RuleKind K) {
  switch (K) {
  case RuleKind::ERaR:
    return "E-RAR";
  case RuleKind::ERaW:
    return "E-RAW";
  case RuleKind::EWaR:
    return "E-WAR";
  case RuleKind::EWbW:
    return "E-WBW";
  case RuleKind::EIr:
    return "E-IR";
  case RuleKind::RRR:
    return "R-RR";
  case RuleKind::RWW:
    return "R-WW";
  case RuleKind::RWR:
    return "R-WR";
  case RuleKind::RRW:
    return "R-RW";
  case RuleKind::RWL:
    return "R-WL";
  case RuleKind::RRL:
    return "R-RL";
  case RuleKind::RUW:
    return "R-UW";
  case RuleKind::RUR:
    return "R-UR";
  case RuleKind::RXR:
    return "R-XR";
  case RuleKind::RXW:
    return "R-XW";
  case RuleKind::RRX:
    return "R-RX";
  case RuleKind::RWX:
    return "R-WX";
  }
  return "<invalid>";
}

bool RuleSet::enabled(RuleKind K) const {
  switch (K) {
  case RuleKind::ERaR:
  case RuleKind::ERaW:
  case RuleKind::EWaR:
  case RuleKind::EWbW:
  case RuleKind::EIr:
    return Eliminations;
  case RuleKind::RRR:
  case RuleKind::RWW:
  case RuleKind::RWR:
  case RuleKind::RRW:
  case RuleKind::RWL:
  case RuleKind::RRL:
  case RuleKind::RUW:
  case RuleKind::RUR:
  case RuleKind::RXR:
  case RuleKind::RXW:
    return Reorderings;
  case RuleKind::RRX:
  case RuleKind::RWX:
    return Extensions;
  }
  return false;
}

StmtList &tracesafe::resolveList(Program &P, const ListPath &Path) {
  StmtList *Cur = &P.thread(Path.Tid);
  for (const auto &[Idx, Sel] : Path.Steps) {
    assert(Idx < Cur->size() && "path index out of range");
    Stmt &S = *(*Cur)[Idx];
    switch (Sel) {
    case PathSel::BlockBody:
      Cur = &static_cast<BlockStmt &>(S).body();
      break;
    case PathSel::ThenBody:
      Cur = &static_cast<BlockStmt &>(static_cast<IfStmt &>(S).thenStmt())
                 .body();
      break;
    case PathSel::ElseBody:
      Cur = &static_cast<BlockStmt &>(static_cast<IfStmt &>(S).elseStmt())
                 .body();
      break;
    case PathSel::WhileBody:
      Cur = &static_cast<BlockStmt &>(static_cast<WhileStmt &>(S).body())
                 .body();
      break;
    }
  }
  return *Cur;
}

const StmtList &tracesafe::resolveList(const Program &P,
                                       const ListPath &Path) {
  return resolveList(const_cast<Program &>(P), Path);
}

namespace {

void walkLists(
    const StmtList &L, ListPath Path,
    const std::function<void(const ListPath &, const StmtList &)> &Fn) {
  Fn(Path, L);
  for (size_t K = 0; K < L.size(); ++K) {
    const Stmt &S = *L[K];
    auto Descend = [&](PathSel Sel, const Stmt &Child) {
      if (const auto *B = dyn_cast<BlockStmt>(&Child)) {
        ListPath Sub = Path;
        Sub.Steps.emplace_back(K, Sel);
        walkLists(B->body(), std::move(Sub), Fn);
      }
    };
    if (isa<BlockStmt>(S))
      Descend(PathSel::BlockBody, S);
    if (const auto *If = dyn_cast<IfStmt>(&S)) {
      Descend(PathSel::ThenBody, If->thenStmt());
      Descend(PathSel::ElseBody, If->elseStmt());
    }
    if (const auto *W = dyn_cast<WhileStmt>(&S))
      Descend(PathSel::WhileBody, W->body());
  }
}

} // namespace

void tracesafe::forEachList(
    const Program &P,
    const std::function<void(const ListPath &, const StmtList &)> &Fn) {
  for (ThreadId Tid = 0; Tid < P.threadCount(); ++Tid) {
    ListPath Path;
    Path.Tid = Tid;
    walkLists(P.thread(Tid), Path, Fn);
  }
}

std::string RewriteSite::str() const {
  std::string Out = ruleName(Rule) + " @ thread " + std::to_string(Path.Tid);
  for (const auto &[Idx, Sel] : Path.Steps) {
    (void)Sel;
    Out += "/" + std::to_string(Idx);
  }
  Out += " [" + std::to_string(I) + "," + std::to_string(J) + "]";
  return Out;
}

namespace {

/// Registers of an operand (empty for immediates).
void addOperandRegs(const Operand &O, std::set<SymbolId> &Out) {
  if (!O.IsImm)
    Out.insert(O.Reg);
}

/// The Fig 10 side condition on the intervening S: every statement strictly
/// between \p I and \p J is sync-free and mentions none of \p Avoid.
bool gapOk(const Program &P, const StmtList &L, size_t I, size_t J,
           const std::set<SymbolId> &Avoid) {
  for (size_t K = I + 1; K < J; ++K) {
    if (!L[K]->isSyncFree(P.volatiles()))
      return false;
    if (L[K]->mentionsAny(Avoid))
      return false;
  }
  return true;
}

bool matchERaR(const Program &P, const StmtList &L, size_t I, size_t J) {
  const auto *A = dyn_cast<LoadStmt>(L[I].get());
  const auto *B = dyn_cast<LoadStmt>(L[J].get());
  if (!A || !B || A->loc() != B->loc() || P.isVolatile(A->loc()))
    return false;
  return gapOk(P, L, I, J, {A->reg(), B->reg(), A->loc()});
}

bool matchERaW(const Program &P, const StmtList &L, size_t I, size_t J) {
  const auto *A = dyn_cast<StoreStmt>(L[I].get());
  const auto *B = dyn_cast<LoadStmt>(L[J].get());
  if (!A || !B || A->loc() != B->loc() || P.isVolatile(A->loc()))
    return false;
  std::set<SymbolId> Avoid{A->loc(), B->reg()};
  addOperandRegs(A->src(), Avoid);
  return gapOk(P, L, I, J, Avoid);
}

bool matchEWaR(const Program &P, const StmtList &L, size_t I, size_t J) {
  const auto *A = dyn_cast<LoadStmt>(L[I].get());
  const auto *B = dyn_cast<StoreStmt>(L[J].get());
  if (!A || !B || A->loc() != B->loc() || P.isVolatile(A->loc()))
    return false;
  if (B->src().IsImm || B->src().Reg != A->reg())
    return false; // The store must write back the very register read.
  return gapOk(P, L, I, J, {A->reg(), A->loc()});
}

bool matchEWbW(const Program &P, const StmtList &L, size_t I, size_t J) {
  const auto *A = dyn_cast<StoreStmt>(L[I].get());
  const auto *B = dyn_cast<StoreStmt>(L[J].get());
  if (!A || !B || A->loc() != B->loc() || P.isVolatile(A->loc()))
    return false;
  std::set<SymbolId> Avoid{A->loc()};
  addOperandRegs(A->src(), Avoid);
  addOperandRegs(B->src(), Avoid);
  return gapOk(P, L, I, J, Avoid);
}

bool matchEIr(const Program &P, const StmtList &L, size_t I, size_t J) {
  if (J != I + 1)
    return false;
  const auto *A = dyn_cast<LoadStmt>(L[I].get());
  const auto *B = dyn_cast<AssignStmt>(L[J].get());
  if (!A || !B || P.isVolatile(A->loc()))
    return false;
  // r := x; r := i  (the paper's rule has a literal on the right).
  return B->reg() == A->reg() && B->src().IsImm;
}

/// External-action statement classification for the X-rules: prints read
/// one optional register, inputs write one.
struct ExternalShape {
  bool IsExternal = false;
  std::optional<SymbolId> ReadsReg;
  std::optional<SymbolId> WritesReg;
};

ExternalShape externalShape(const Stmt *S) {
  ExternalShape Out;
  if (const auto *Pr = dyn_cast<PrintStmt>(S)) {
    Out.IsExternal = true;
    if (!Pr->src().IsImm)
      Out.ReadsReg = Pr->src().Reg;
  } else if (const auto *In = dyn_cast<InputStmt>(S)) {
    Out.IsExternal = true;
    Out.WritesReg = In->reg();
  }
  return Out;
}

/// Adjacent reordering matchers. I, J = I+1.
bool matchAdjacentReorder(const Program &P, const StmtList &L, RuleKind K,
                          size_t I) {
  const Stmt *A = L[I].get();
  const Stmt *B = L[I + 1].get();
  auto Vol = [&P](SymbolId Loc) { return P.isVolatile(Loc); };
  switch (K) {
  case RuleKind::RRR: {
    const auto *RA = dyn_cast<LoadStmt>(A);
    const auto *RB = dyn_cast<LoadStmt>(B);
    return RA && RB && RA->reg() != RB->reg() && !Vol(RA->loc());
  }
  case RuleKind::RWW: {
    const auto *WA = dyn_cast<StoreStmt>(A);
    const auto *WB = dyn_cast<StoreStmt>(B);
    return WA && WB && WA->loc() != WB->loc() && !Vol(WB->loc());
  }
  case RuleKind::RWR: {
    const auto *WA = dyn_cast<StoreStmt>(A);
    const auto *RB = dyn_cast<LoadStmt>(B);
    if (!WA || !RB || WA->loc() == RB->loc())
      return false;
    if (!WA->src().IsImm && WA->src().Reg == RB->reg())
      return false; // r1 != r2.
    return !(Vol(WA->loc()) && Vol(RB->loc()));
  }
  case RuleKind::RRW: {
    const auto *RA = dyn_cast<LoadStmt>(A);
    const auto *WB = dyn_cast<StoreStmt>(B);
    if (!RA || !WB || RA->loc() == WB->loc())
      return false;
    if (!WB->src().IsImm && WB->src().Reg == RA->reg())
      return false; // r1 != r2.
    return !Vol(RA->loc()) && !Vol(WB->loc());
  }
  case RuleKind::RWL: {
    const auto *WA = dyn_cast<StoreStmt>(A);
    return WA && isa<LockStmt>(*B) && !Vol(WA->loc());
  }
  case RuleKind::RRL: {
    const auto *RA = dyn_cast<LoadStmt>(A);
    return RA && isa<LockStmt>(*B) && !Vol(RA->loc());
  }
  case RuleKind::RUW: {
    const auto *WB = dyn_cast<StoreStmt>(B);
    return isa<UnlockStmt>(*A) && WB && !Vol(WB->loc());
  }
  case RuleKind::RUR: {
    const auto *RB = dyn_cast<LoadStmt>(B);
    return isa<UnlockStmt>(*A) && RB && !Vol(RB->loc());
  }
  case RuleKind::RXR: {
    ExternalShape XA = externalShape(A);
    const auto *RB = dyn_cast<LoadStmt>(B);
    if (!XA.IsExternal || !RB || Vol(RB->loc()))
      return false;
    // r1 != r2: the printed/input register must not be the loaded one.
    if (XA.ReadsReg && *XA.ReadsReg == RB->reg())
      return false;
    if (XA.WritesReg && *XA.WritesReg == RB->reg())
      return false;
    return true;
  }
  case RuleKind::RXW: {
    ExternalShape XA = externalShape(A);
    const auto *WB = dyn_cast<StoreStmt>(B);
    if (!XA.IsExternal || !WB || Vol(WB->loc()))
      return false;
    // An input may not feed the store it crosses.
    if (XA.WritesReg && !WB->src().IsImm && WB->src().Reg == *XA.WritesReg)
      return false;
    return true;
  }
  case RuleKind::RRX: {
    const auto *RA = dyn_cast<LoadStmt>(A);
    ExternalShape XB = externalShape(B);
    if (!RA || !XB.IsExternal || Vol(RA->loc()))
      return false;
    if (XB.ReadsReg && *XB.ReadsReg == RA->reg())
      return false;
    if (XB.WritesReg && *XB.WritesReg == RA->reg())
      return false;
    return true;
  }
  case RuleKind::RWX: {
    const auto *WA = dyn_cast<StoreStmt>(A);
    ExternalShape XB = externalShape(B);
    if (!WA || !XB.IsExternal || Vol(WA->loc()))
      return false;
    if (XB.WritesReg && !WA->src().IsImm && WA->src().Reg == *XB.WritesReg)
      return false;
    return true;
  }
  default:
    return false;
  }
}

bool isGapRule(RuleKind K) {
  return K == RuleKind::ERaR || K == RuleKind::ERaW || K == RuleKind::EWaR ||
         K == RuleKind::EWbW;
}

bool matchesSite(const Program &P, const StmtList &L, RuleKind K, size_t I,
                 size_t J) {
  switch (K) {
  case RuleKind::ERaR:
    return matchERaR(P, L, I, J);
  case RuleKind::ERaW:
    return matchERaW(P, L, I, J);
  case RuleKind::EWaR:
    return matchEWaR(P, L, I, J);
  case RuleKind::EWbW:
    return matchEWbW(P, L, I, J);
  case RuleKind::EIr:
    return matchEIr(P, L, I, J);
  default:
    return J == I + 1 && matchAdjacentReorder(P, L, K, I);
  }
}

constexpr RuleKind AllRules[] = {
    RuleKind::ERaR, RuleKind::ERaW, RuleKind::EWaR, RuleKind::EWbW,
    RuleKind::EIr,  RuleKind::RRR,  RuleKind::RWW,  RuleKind::RWR,
    RuleKind::RRW,  RuleKind::RWL,  RuleKind::RRL,  RuleKind::RUW,
    RuleKind::RUR,  RuleKind::RXR,  RuleKind::RXW,  RuleKind::RRX,
    RuleKind::RWX};

} // namespace

std::vector<RewriteSite> tracesafe::findRewriteSites(const Program &P,
                                                     const RuleSet &Rules) {
  std::vector<RewriteSite> Sites;
  forEachList(P, [&](const ListPath &Path, const StmtList &L) {
    for (RuleKind K : AllRules) {
      if (!Rules.enabled(K))
        continue;
      if (isGapRule(K)) {
        for (size_t I = 0; I < L.size(); ++I)
          for (size_t J = I + 1; J < L.size(); ++J)
            if (matchesSite(P, L, K, I, J))
              Sites.push_back(RewriteSite{K, Path, I, J});
      } else {
        for (size_t I = 0; I + 1 < L.size(); ++I)
          if (matchesSite(P, L, K, I, I + 1))
            Sites.push_back(RewriteSite{K, Path, I, I + 1});
      }
    }
  });
  return Sites;
}

Program tracesafe::applyRewrite(const Program &P, const RewriteSite &Site) {
  Program Out = P;
  StmtList &L = resolveList(Out, Site.Path);
  assert(Site.I < L.size() && Site.J < L.size() &&
         matchesSite(Out, L, Site.Rule, Site.I, Site.J) &&
         "rewrite site does not match");
  switch (Site.Rule) {
  case RuleKind::ERaR: {
    const auto &A = cast<LoadStmt>(*L[Site.I]);
    const auto &B = cast<LoadStmt>(*L[Site.J]);
    L[Site.J] = std::make_unique<AssignStmt>(B.reg(), Operand::reg(A.reg()));
    break;
  }
  case RuleKind::ERaW: {
    const auto &A = cast<StoreStmt>(*L[Site.I]);
    const auto &B = cast<LoadStmt>(*L[Site.J]);
    L[Site.J] = std::make_unique<AssignStmt>(B.reg(), A.src());
    break;
  }
  case RuleKind::EWaR:
    L.erase(L.begin() + static_cast<ptrdiff_t>(Site.J));
    break;
  case RuleKind::EWbW:
  case RuleKind::EIr:
    L.erase(L.begin() + static_cast<ptrdiff_t>(Site.I));
    break;
  default:
    std::swap(L[Site.I], L[Site.J]);
    break;
  }
  return Out;
}

namespace {

/// Non-asserting resolveList: nullptr when the path does not exist in \p P
/// (reduced programs routinely lose the thread or block a recorded site
/// pointed into).
const StmtList *tryResolveList(const Program &P, const ListPath &Path) {
  if (Path.Tid >= P.threadCount())
    return nullptr;
  const StmtList *Cur = &P.thread(Path.Tid);
  for (const auto &[Idx, Sel] : Path.Steps) {
    if (Idx >= Cur->size())
      return nullptr;
    const Stmt &S = *(*Cur)[Idx];
    const BlockStmt *B = nullptr;
    switch (Sel) {
    case PathSel::BlockBody:
      B = dyn_cast<BlockStmt>(&S);
      break;
    case PathSel::ThenBody:
      if (const auto *If = dyn_cast<IfStmt>(&S))
        B = dyn_cast<BlockStmt>(&If->thenStmt());
      break;
    case PathSel::ElseBody:
      if (const auto *If = dyn_cast<IfStmt>(&S))
        B = dyn_cast<BlockStmt>(&If->elseStmt());
      break;
    case PathSel::WhileBody:
      if (const auto *W = dyn_cast<WhileStmt>(&S))
        B = dyn_cast<BlockStmt>(&W->body());
      break;
    }
    if (!B)
      return nullptr;
    Cur = &B->body();
  }
  return Cur;
}

} // namespace

bool tracesafe::siteApplies(const Program &P, const RewriteSite &Site) {
  const StmtList *L = tryResolveList(P, Site.Path);
  if (!L || Site.I >= L->size() || Site.J >= L->size())
    return false;
  bool ShapeOk = isGapRule(Site.Rule) ? Site.I < Site.J
                                      : Site.J == Site.I + 1;
  return ShapeOk && matchesSite(P, *L, Site.Rule, Site.I, Site.J);
}

std::optional<Program> tracesafe::applyChain(
    const Program &P, const std::vector<RewriteSite> &Steps) {
  Program Cur = P;
  for (const RewriteSite &S : Steps) {
    if (!siteApplies(Cur, S))
      return std::nullopt;
    Cur = applyRewrite(Cur, S);
  }
  return Cur;
}
