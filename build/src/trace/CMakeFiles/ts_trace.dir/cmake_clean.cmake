file(REMOVE_RECURSE
  "CMakeFiles/ts_trace.dir/Action.cpp.o"
  "CMakeFiles/ts_trace.dir/Action.cpp.o.d"
  "CMakeFiles/ts_trace.dir/Enumerate.cpp.o"
  "CMakeFiles/ts_trace.dir/Enumerate.cpp.o.d"
  "CMakeFiles/ts_trace.dir/HappensBefore.cpp.o"
  "CMakeFiles/ts_trace.dir/HappensBefore.cpp.o.d"
  "CMakeFiles/ts_trace.dir/Interleaving.cpp.o"
  "CMakeFiles/ts_trace.dir/Interleaving.cpp.o.d"
  "CMakeFiles/ts_trace.dir/Trace.cpp.o"
  "CMakeFiles/ts_trace.dir/Trace.cpp.o.d"
  "CMakeFiles/ts_trace.dir/Traceset.cpp.o"
  "CMakeFiles/ts_trace.dir/Traceset.cpp.o.d"
  "libts_trace.a"
  "libts_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
