file(REMOVE_RECURSE
  "libts_trace.a"
)
