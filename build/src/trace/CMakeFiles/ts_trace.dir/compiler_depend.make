# Empty compiler generated dependencies file for ts_trace.
# This may be replaced when dependencies are built.
