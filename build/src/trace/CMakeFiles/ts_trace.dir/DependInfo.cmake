
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/Action.cpp" "src/trace/CMakeFiles/ts_trace.dir/Action.cpp.o" "gcc" "src/trace/CMakeFiles/ts_trace.dir/Action.cpp.o.d"
  "/root/repo/src/trace/Enumerate.cpp" "src/trace/CMakeFiles/ts_trace.dir/Enumerate.cpp.o" "gcc" "src/trace/CMakeFiles/ts_trace.dir/Enumerate.cpp.o.d"
  "/root/repo/src/trace/HappensBefore.cpp" "src/trace/CMakeFiles/ts_trace.dir/HappensBefore.cpp.o" "gcc" "src/trace/CMakeFiles/ts_trace.dir/HappensBefore.cpp.o.d"
  "/root/repo/src/trace/Interleaving.cpp" "src/trace/CMakeFiles/ts_trace.dir/Interleaving.cpp.o" "gcc" "src/trace/CMakeFiles/ts_trace.dir/Interleaving.cpp.o.d"
  "/root/repo/src/trace/Trace.cpp" "src/trace/CMakeFiles/ts_trace.dir/Trace.cpp.o" "gcc" "src/trace/CMakeFiles/ts_trace.dir/Trace.cpp.o.d"
  "/root/repo/src/trace/Traceset.cpp" "src/trace/CMakeFiles/ts_trace.dir/Traceset.cpp.o" "gcc" "src/trace/CMakeFiles/ts_trace.dir/Traceset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
