file(REMOVE_RECURSE
  "CMakeFiles/ts_verify.dir/Checks.cpp.o"
  "CMakeFiles/ts_verify.dir/Checks.cpp.o.d"
  "CMakeFiles/ts_verify.dir/ProgramGen.cpp.o"
  "CMakeFiles/ts_verify.dir/ProgramGen.cpp.o.d"
  "CMakeFiles/ts_verify.dir/Theorems.cpp.o"
  "CMakeFiles/ts_verify.dir/Theorems.cpp.o.d"
  "libts_verify.a"
  "libts_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
