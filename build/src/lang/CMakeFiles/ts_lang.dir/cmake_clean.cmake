file(REMOVE_RECURSE
  "CMakeFiles/ts_lang.dir/Ast.cpp.o"
  "CMakeFiles/ts_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/ts_lang.dir/Explore.cpp.o"
  "CMakeFiles/ts_lang.dir/Explore.cpp.o.d"
  "CMakeFiles/ts_lang.dir/Lexer.cpp.o"
  "CMakeFiles/ts_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/ts_lang.dir/Parser.cpp.o"
  "CMakeFiles/ts_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/ts_lang.dir/Printer.cpp.o"
  "CMakeFiles/ts_lang.dir/Printer.cpp.o.d"
  "CMakeFiles/ts_lang.dir/ProgramExec.cpp.o"
  "CMakeFiles/ts_lang.dir/ProgramExec.cpp.o.d"
  "CMakeFiles/ts_lang.dir/SmallStep.cpp.o"
  "CMakeFiles/ts_lang.dir/SmallStep.cpp.o.d"
  "libts_lang.a"
  "libts_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
