file(REMOVE_RECURSE
  "CMakeFiles/ts_semantics.dir/Composition.cpp.o"
  "CMakeFiles/ts_semantics.dir/Composition.cpp.o.d"
  "CMakeFiles/ts_semantics.dir/Eliminable.cpp.o"
  "CMakeFiles/ts_semantics.dir/Eliminable.cpp.o.d"
  "CMakeFiles/ts_semantics.dir/Elimination.cpp.o"
  "CMakeFiles/ts_semantics.dir/Elimination.cpp.o.d"
  "CMakeFiles/ts_semantics.dir/Reorderable.cpp.o"
  "CMakeFiles/ts_semantics.dir/Reorderable.cpp.o.d"
  "CMakeFiles/ts_semantics.dir/Reordering.cpp.o"
  "CMakeFiles/ts_semantics.dir/Reordering.cpp.o.d"
  "CMakeFiles/ts_semantics.dir/Unelimination.cpp.o"
  "CMakeFiles/ts_semantics.dir/Unelimination.cpp.o.d"
  "CMakeFiles/ts_semantics.dir/Unordering.cpp.o"
  "CMakeFiles/ts_semantics.dir/Unordering.cpp.o.d"
  "libts_semantics.a"
  "libts_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
