file(REMOVE_RECURSE
  "libts_semantics.a"
)
