
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/Composition.cpp" "src/semantics/CMakeFiles/ts_semantics.dir/Composition.cpp.o" "gcc" "src/semantics/CMakeFiles/ts_semantics.dir/Composition.cpp.o.d"
  "/root/repo/src/semantics/Eliminable.cpp" "src/semantics/CMakeFiles/ts_semantics.dir/Eliminable.cpp.o" "gcc" "src/semantics/CMakeFiles/ts_semantics.dir/Eliminable.cpp.o.d"
  "/root/repo/src/semantics/Elimination.cpp" "src/semantics/CMakeFiles/ts_semantics.dir/Elimination.cpp.o" "gcc" "src/semantics/CMakeFiles/ts_semantics.dir/Elimination.cpp.o.d"
  "/root/repo/src/semantics/Reorderable.cpp" "src/semantics/CMakeFiles/ts_semantics.dir/Reorderable.cpp.o" "gcc" "src/semantics/CMakeFiles/ts_semantics.dir/Reorderable.cpp.o.d"
  "/root/repo/src/semantics/Reordering.cpp" "src/semantics/CMakeFiles/ts_semantics.dir/Reordering.cpp.o" "gcc" "src/semantics/CMakeFiles/ts_semantics.dir/Reordering.cpp.o.d"
  "/root/repo/src/semantics/Unelimination.cpp" "src/semantics/CMakeFiles/ts_semantics.dir/Unelimination.cpp.o" "gcc" "src/semantics/CMakeFiles/ts_semantics.dir/Unelimination.cpp.o.d"
  "/root/repo/src/semantics/Unordering.cpp" "src/semantics/CMakeFiles/ts_semantics.dir/Unordering.cpp.o" "gcc" "src/semantics/CMakeFiles/ts_semantics.dir/Unordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ts_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
