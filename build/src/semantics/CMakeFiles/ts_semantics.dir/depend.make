# Empty dependencies file for ts_semantics.
# This may be replaced when dependencies are built.
