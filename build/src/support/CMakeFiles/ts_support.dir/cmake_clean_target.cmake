file(REMOVE_RECURSE
  "libts_support.a"
)
