file(REMOVE_RECURSE
  "CMakeFiles/ts_support.dir/Format.cpp.o"
  "CMakeFiles/ts_support.dir/Format.cpp.o.d"
  "CMakeFiles/ts_support.dir/Permutation.cpp.o"
  "CMakeFiles/ts_support.dir/Permutation.cpp.o.d"
  "CMakeFiles/ts_support.dir/Rng.cpp.o"
  "CMakeFiles/ts_support.dir/Rng.cpp.o.d"
  "CMakeFiles/ts_support.dir/Symbol.cpp.o"
  "CMakeFiles/ts_support.dir/Symbol.cpp.o.d"
  "libts_support.a"
  "libts_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
