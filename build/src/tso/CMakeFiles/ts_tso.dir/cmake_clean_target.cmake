file(REMOVE_RECURSE
  "libts_tso.a"
)
