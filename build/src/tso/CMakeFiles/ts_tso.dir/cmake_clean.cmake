file(REMOVE_RECURSE
  "CMakeFiles/ts_tso.dir/Litmus.cpp.o"
  "CMakeFiles/ts_tso.dir/Litmus.cpp.o.d"
  "CMakeFiles/ts_tso.dir/PsoMachine.cpp.o"
  "CMakeFiles/ts_tso.dir/PsoMachine.cpp.o.d"
  "CMakeFiles/ts_tso.dir/TsoExplain.cpp.o"
  "CMakeFiles/ts_tso.dir/TsoExplain.cpp.o.d"
  "CMakeFiles/ts_tso.dir/TsoMachine.cpp.o"
  "CMakeFiles/ts_tso.dir/TsoMachine.cpp.o.d"
  "libts_tso.a"
  "libts_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
