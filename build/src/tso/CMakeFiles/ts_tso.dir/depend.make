# Empty dependencies file for ts_tso.
# This may be replaced when dependencies are built.
