# Empty dependencies file for ts_opt.
# This may be replaced when dependencies are built.
