
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/DataflowOpt.cpp" "src/opt/CMakeFiles/ts_opt.dir/DataflowOpt.cpp.o" "gcc" "src/opt/CMakeFiles/ts_opt.dir/DataflowOpt.cpp.o.d"
  "/root/repo/src/opt/Pipeline.cpp" "src/opt/CMakeFiles/ts_opt.dir/Pipeline.cpp.o" "gcc" "src/opt/CMakeFiles/ts_opt.dir/Pipeline.cpp.o.d"
  "/root/repo/src/opt/Rewrite.cpp" "src/opt/CMakeFiles/ts_opt.dir/Rewrite.cpp.o" "gcc" "src/opt/CMakeFiles/ts_opt.dir/Rewrite.cpp.o.d"
  "/root/repo/src/opt/Unsafe.cpp" "src/opt/CMakeFiles/ts_opt.dir/Unsafe.cpp.o" "gcc" "src/opt/CMakeFiles/ts_opt.dir/Unsafe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/ts_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ts_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
