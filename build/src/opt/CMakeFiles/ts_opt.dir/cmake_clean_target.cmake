file(REMOVE_RECURSE
  "libts_opt.a"
)
