file(REMOVE_RECURSE
  "CMakeFiles/ts_opt.dir/DataflowOpt.cpp.o"
  "CMakeFiles/ts_opt.dir/DataflowOpt.cpp.o.d"
  "CMakeFiles/ts_opt.dir/Pipeline.cpp.o"
  "CMakeFiles/ts_opt.dir/Pipeline.cpp.o.d"
  "CMakeFiles/ts_opt.dir/Rewrite.cpp.o"
  "CMakeFiles/ts_opt.dir/Rewrite.cpp.o.d"
  "CMakeFiles/ts_opt.dir/Unsafe.cpp.o"
  "CMakeFiles/ts_opt.dir/Unsafe.cpp.o.d"
  "libts_opt.a"
  "libts_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
