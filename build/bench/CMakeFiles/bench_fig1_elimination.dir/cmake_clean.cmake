file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_elimination.dir/bench_fig1_elimination.cpp.o"
  "CMakeFiles/bench_fig1_elimination.dir/bench_fig1_elimination.cpp.o.d"
  "bench_fig1_elimination"
  "bench_fig1_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
