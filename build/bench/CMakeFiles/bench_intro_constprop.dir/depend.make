# Empty dependencies file for bench_intro_constprop.
# This may be replaced when dependencies are built.
