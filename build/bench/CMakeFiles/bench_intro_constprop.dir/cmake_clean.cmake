file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_constprop.dir/bench_intro_constprop.cpp.o"
  "CMakeFiles/bench_intro_constprop.dir/bench_intro_constprop.cpp.o.d"
  "bench_intro_constprop"
  "bench_intro_constprop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_constprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
