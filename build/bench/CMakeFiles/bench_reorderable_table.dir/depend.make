# Empty dependencies file for bench_reorderable_table.
# This may be replaced when dependencies are built.
