file(REMOVE_RECURSE
  "CMakeFiles/bench_reorderable_table.dir/bench_reorderable_table.cpp.o"
  "CMakeFiles/bench_reorderable_table.dir/bench_reorderable_table.cpp.o.d"
  "bench_reorderable_table"
  "bench_reorderable_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorderable_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
