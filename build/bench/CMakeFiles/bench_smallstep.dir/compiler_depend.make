# Empty compiler generated dependencies file for bench_smallstep.
# This may be replaced when dependencies are built.
