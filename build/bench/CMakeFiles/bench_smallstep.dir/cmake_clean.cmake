file(REMOVE_RECURSE
  "CMakeFiles/bench_smallstep.dir/bench_smallstep.cpp.o"
  "CMakeFiles/bench_smallstep.dir/bench_smallstep.cpp.o.d"
  "bench_smallstep"
  "bench_smallstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
