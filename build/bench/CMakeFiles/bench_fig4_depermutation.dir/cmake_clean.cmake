file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_depermutation.dir/bench_fig4_depermutation.cpp.o"
  "CMakeFiles/bench_fig4_depermutation.dir/bench_fig4_depermutation.cpp.o.d"
  "bench_fig4_depermutation"
  "bench_fig4_depermutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_depermutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
