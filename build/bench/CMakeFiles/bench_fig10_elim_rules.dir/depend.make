# Empty dependencies file for bench_fig10_elim_rules.
# This may be replaced when dependencies are built.
