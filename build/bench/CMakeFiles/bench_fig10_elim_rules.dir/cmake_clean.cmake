file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_elim_rules.dir/bench_fig10_elim_rules.cpp.o"
  "CMakeFiles/bench_fig10_elim_rules.dir/bench_fig10_elim_rules.cpp.o.d"
  "bench_fig10_elim_rules"
  "bench_fig10_elim_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_elim_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
