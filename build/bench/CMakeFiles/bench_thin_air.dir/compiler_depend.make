# Empty compiler generated dependencies file for bench_thin_air.
# This may be replaced when dependencies are built.
