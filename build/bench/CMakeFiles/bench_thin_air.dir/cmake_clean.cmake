file(REMOVE_RECURSE
  "CMakeFiles/bench_thin_air.dir/bench_thin_air.cpp.o"
  "CMakeFiles/bench_thin_air.dir/bench_thin_air.cpp.o.d"
  "bench_thin_air"
  "bench_thin_air.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thin_air.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
