# Empty compiler generated dependencies file for bench_fig2_reordering.
# This may be replaced when dependencies are built.
