file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_reordering.dir/bench_fig2_reordering.cpp.o"
  "CMakeFiles/bench_fig2_reordering.dir/bench_fig2_reordering.cpp.o.d"
  "bench_fig2_reordering"
  "bench_fig2_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
