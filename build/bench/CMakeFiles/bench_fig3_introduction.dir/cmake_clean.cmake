file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_introduction.dir/bench_fig3_introduction.cpp.o"
  "CMakeFiles/bench_fig3_introduction.dir/bench_fig3_introduction.cpp.o.d"
  "bench_fig3_introduction"
  "bench_fig3_introduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_introduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
