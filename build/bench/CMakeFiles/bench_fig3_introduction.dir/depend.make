# Empty dependencies file for bench_fig3_introduction.
# This may be replaced when dependencies are built.
