# Empty compiler generated dependencies file for bench_unelimination.
# This may be replaced when dependencies are built.
