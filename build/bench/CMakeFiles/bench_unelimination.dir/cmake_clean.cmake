file(REMOVE_RECURSE
  "CMakeFiles/bench_unelimination.dir/bench_unelimination.cpp.o"
  "CMakeFiles/bench_unelimination.dir/bench_unelimination.cpp.o.d"
  "bench_unelimination"
  "bench_unelimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unelimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
