file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_reorder_rules.dir/bench_fig11_reorder_rules.cpp.o"
  "CMakeFiles/bench_fig11_reorder_rules.dir/bench_fig11_reorder_rules.cpp.o.d"
  "bench_fig11_reorder_rules"
  "bench_fig11_reorder_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_reorder_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
