# Empty dependencies file for bench_fig11_reorder_rules.
# This may be replaced when dependencies are built.
