# Empty compiler generated dependencies file for test_interleaving.
# This may be replaced when dependencies are built.
