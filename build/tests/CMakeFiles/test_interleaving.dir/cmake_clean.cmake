file(REMOVE_RECURSE
  "CMakeFiles/test_interleaving.dir/test_interleaving.cpp.o"
  "CMakeFiles/test_interleaving.dir/test_interleaving.cpp.o.d"
  "test_interleaving"
  "test_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
