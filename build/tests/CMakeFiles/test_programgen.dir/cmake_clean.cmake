file(REMOVE_RECURSE
  "CMakeFiles/test_programgen.dir/test_programgen.cpp.o"
  "CMakeFiles/test_programgen.dir/test_programgen.cpp.o.d"
  "test_programgen"
  "test_programgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_programgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
