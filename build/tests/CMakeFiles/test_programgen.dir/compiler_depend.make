# Empty compiler generated dependencies file for test_programgen.
# This may be replaced when dependencies are built.
