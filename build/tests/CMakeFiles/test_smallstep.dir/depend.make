# Empty dependencies file for test_smallstep.
# This may be replaced when dependencies are built.
