file(REMOVE_RECURSE
  "CMakeFiles/test_smallstep.dir/test_smallstep.cpp.o"
  "CMakeFiles/test_smallstep.dir/test_smallstep.cpp.o.d"
  "test_smallstep"
  "test_smallstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smallstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
