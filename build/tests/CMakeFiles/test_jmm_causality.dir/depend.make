# Empty dependencies file for test_jmm_causality.
# This may be replaced when dependencies are built.
