file(REMOVE_RECURSE
  "CMakeFiles/test_jmm_causality.dir/test_jmm_causality.cpp.o"
  "CMakeFiles/test_jmm_causality.dir/test_jmm_causality.cpp.o.d"
  "test_jmm_causality"
  "test_jmm_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jmm_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
