file(REMOVE_RECURSE
  "CMakeFiles/test_unelimination.dir/test_unelimination.cpp.o"
  "CMakeFiles/test_unelimination.dir/test_unelimination.cpp.o.d"
  "test_unelimination"
  "test_unelimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unelimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
