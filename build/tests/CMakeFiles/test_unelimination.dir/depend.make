# Empty dependencies file for test_unelimination.
# This may be replaced when dependencies are built.
