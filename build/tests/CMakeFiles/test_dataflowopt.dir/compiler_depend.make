# Empty compiler generated dependencies file for test_dataflowopt.
# This may be replaced when dependencies are built.
