file(REMOVE_RECURSE
  "CMakeFiles/test_dataflowopt.dir/test_dataflowopt.cpp.o"
  "CMakeFiles/test_dataflowopt.dir/test_dataflowopt.cpp.o.d"
  "test_dataflowopt"
  "test_dataflowopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflowopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
