# Empty dependencies file for test_traceset.
# This may be replaced when dependencies are built.
