file(REMOVE_RECURSE
  "CMakeFiles/test_traceset.dir/test_traceset.cpp.o"
  "CMakeFiles/test_traceset.dir/test_traceset.cpp.o.d"
  "test_traceset"
  "test_traceset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traceset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
