# Empty compiler generated dependencies file for test_programexec.
# This may be replaced when dependencies are built.
