file(REMOVE_RECURSE
  "CMakeFiles/test_programexec.dir/test_programexec.cpp.o"
  "CMakeFiles/test_programexec.dir/test_programexec.cpp.o.d"
  "test_programexec"
  "test_programexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_programexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
