file(REMOVE_RECURSE
  "CMakeFiles/test_composition.dir/test_composition.cpp.o"
  "CMakeFiles/test_composition.dir/test_composition.cpp.o.d"
  "test_composition"
  "test_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
