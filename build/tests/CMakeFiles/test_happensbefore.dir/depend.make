# Empty dependencies file for test_happensbefore.
# This may be replaced when dependencies are built.
