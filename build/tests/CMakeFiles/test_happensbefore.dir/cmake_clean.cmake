file(REMOVE_RECURSE
  "CMakeFiles/test_happensbefore.dir/test_happensbefore.cpp.o"
  "CMakeFiles/test_happensbefore.dir/test_happensbefore.cpp.o.d"
  "test_happensbefore"
  "test_happensbefore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_happensbefore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
