# Empty dependencies file for test_enumerate.
# This may be replaced when dependencies are built.
