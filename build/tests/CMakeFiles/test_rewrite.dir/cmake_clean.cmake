file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite.dir/test_rewrite.cpp.o"
  "CMakeFiles/test_rewrite.dir/test_rewrite.cpp.o.d"
  "test_rewrite"
  "test_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
