# Empty dependencies file for test_reorderable.
# This may be replaced when dependencies are built.
