file(REMOVE_RECURSE
  "CMakeFiles/test_reorderable.dir/test_reorderable.cpp.o"
  "CMakeFiles/test_reorderable.dir/test_reorderable.cpp.o.d"
  "test_reorderable"
  "test_reorderable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reorderable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
