file(REMOVE_RECURSE
  "CMakeFiles/test_checks.dir/test_checks.cpp.o"
  "CMakeFiles/test_checks.dir/test_checks.cpp.o.d"
  "test_checks"
  "test_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
