file(REMOVE_RECURSE
  "CMakeFiles/test_eliminable.dir/test_eliminable.cpp.o"
  "CMakeFiles/test_eliminable.dir/test_eliminable.cpp.o.d"
  "test_eliminable"
  "test_eliminable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eliminable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
