# Empty compiler generated dependencies file for test_eliminable.
# This may be replaced when dependencies are built.
