file(REMOVE_RECURSE
  "CMakeFiles/test_unsafe.dir/test_unsafe.cpp.o"
  "CMakeFiles/test_unsafe.dir/test_unsafe.cpp.o.d"
  "test_unsafe"
  "test_unsafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unsafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
