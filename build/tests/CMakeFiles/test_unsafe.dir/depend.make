# Empty dependencies file for test_unsafe.
# This may be replaced when dependencies are built.
