file(REMOVE_RECURSE
  "CMakeFiles/test_semantic_soundness.dir/test_semantic_soundness.cpp.o"
  "CMakeFiles/test_semantic_soundness.dir/test_semantic_soundness.cpp.o.d"
  "test_semantic_soundness"
  "test_semantic_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantic_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
