
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/test_trace.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/ts_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/tso/CMakeFiles/ts_tso.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ts_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/ts_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ts_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ts_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
