# Empty dependencies file for test_unordering.
# This may be replaced when dependencies are built.
