file(REMOVE_RECURSE
  "CMakeFiles/test_unordering.dir/test_unordering.cpp.o"
  "CMakeFiles/test_unordering.dir/test_unordering.cpp.o.d"
  "test_unordering"
  "test_unordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
