file(REMOVE_RECURSE
  "CMakeFiles/test_limitations.dir/test_limitations.cpp.o"
  "CMakeFiles/test_limitations.dir/test_limitations.cpp.o.d"
  "test_limitations"
  "test_limitations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_limitations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
