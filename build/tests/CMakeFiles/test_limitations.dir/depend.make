# Empty dependencies file for test_limitations.
# This may be replaced when dependencies are built.
