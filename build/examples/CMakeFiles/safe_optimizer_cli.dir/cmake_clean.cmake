file(REMOVE_RECURSE
  "CMakeFiles/safe_optimizer_cli.dir/safe_optimizer_cli.cpp.o"
  "CMakeFiles/safe_optimizer_cli.dir/safe_optimizer_cli.cpp.o.d"
  "safe_optimizer_cli"
  "safe_optimizer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_optimizer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
