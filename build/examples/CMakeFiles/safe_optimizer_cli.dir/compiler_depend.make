# Empty compiler generated dependencies file for safe_optimizer_cli.
# This may be replaced when dependencies are built.
