file(REMOVE_RECURSE
  "CMakeFiles/tso_litmus.dir/tso_litmus.cpp.o"
  "CMakeFiles/tso_litmus.dir/tso_litmus.cpp.o.d"
  "tso_litmus"
  "tso_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tso_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
