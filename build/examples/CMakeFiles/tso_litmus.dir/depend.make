# Empty dependencies file for tso_litmus.
# This may be replaced when dependencies are built.
