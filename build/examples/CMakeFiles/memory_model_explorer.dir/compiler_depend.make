# Empty compiler generated dependencies file for memory_model_explorer.
# This may be replaced when dependencies are built.
