file(REMOVE_RECURSE
  "CMakeFiles/memory_model_explorer.dir/memory_model_explorer.cpp.o"
  "CMakeFiles/memory_model_explorer.dir/memory_model_explorer.cpp.o.d"
  "memory_model_explorer"
  "memory_model_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_model_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
