file(REMOVE_RECURSE
  "CMakeFiles/verify_optimisation.dir/verify_optimisation.cpp.o"
  "CMakeFiles/verify_optimisation.dir/verify_optimisation.cpp.o.d"
  "verify_optimisation"
  "verify_optimisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_optimisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
