# Empty compiler generated dependencies file for verify_optimisation.
# This may be replaced when dependencies are built.
