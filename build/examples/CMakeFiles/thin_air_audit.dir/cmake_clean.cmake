file(REMOVE_RECURSE
  "CMakeFiles/thin_air_audit.dir/thin_air_audit.cpp.o"
  "CMakeFiles/thin_air_audit.dir/thin_air_audit.cpp.o.d"
  "thin_air_audit"
  "thin_air_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thin_air_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
