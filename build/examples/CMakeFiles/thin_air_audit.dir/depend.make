# Empty dependencies file for thin_air_audit.
# This may be replaced when dependencies are built.
