file(REMOVE_RECURSE
  "CMakeFiles/read_introduction_pitfall.dir/read_introduction_pitfall.cpp.o"
  "CMakeFiles/read_introduction_pitfall.dir/read_introduction_pitfall.cpp.o.d"
  "read_introduction_pitfall"
  "read_introduction_pitfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_introduction_pitfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
