# Empty dependencies file for read_introduction_pitfall.
# This may be replaced when dependencies are built.
