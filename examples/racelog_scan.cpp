//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming race-detection CLI over TSRL binary event logs.
///
/// Two modes:
///  - generator: `--gen racefree|mixed|lockheavy --out FILE` writes a
///    seeded synthetic log (racelog/Synth.h) for benchmarking or as scan
///    input;
///  - scanner: positional FILE arguments are scanned with the streaming
///    happens-before detector (racelog/Detect.h) under the usual budget
///    flags. A torn or truncated tail demotes a race-free verdict to
///    undecided; races found are definitive either way.
///
/// With no arguments a small self-contained demo runs: a mixed synthetic
/// log is generated in memory, scanned with both the epoch engine and the
/// full-vector-clock oracle, and the agreeing reports are printed.
///
/// Exit codes:
///   0    all scanned logs race-free (or generator/demo ran clean)
///   1    at least one scanned log contains races
///   2    usage error, unreadable file, or unusable log header
///   130  cancelled by SIGINT/SIGTERM
///
/// Examples:
///   racelog_scan --gen mixed --events 1000000 --out /tmp/mixed.tsrl
///   racelog_scan --shards 8 --jobs 4 /tmp/mixed.tsrl
///   racelog_scan --oracle --max-visited 100000 /tmp/mixed.tsrl
///
//===----------------------------------------------------------------------===//

#include "racelog/Detect.h"
#include "racelog/Synth.h"
#include "support/Failure.h"
#include "support/Signal.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace tracesafe;
using namespace tracesafe::racelog;

namespace {

/// Requested by SIGINT/SIGTERM (via support/Signal), read by every scan
/// budget.
CancelToken GCancel;

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [LOG.tsrl...]\n"
      "scan options:\n"
      "  --shards N          address shards (power of two, default 1)\n"
      "  --jobs N            detect workers: 1 sequential (default),\n"
      "                      anything else = shard tasks on the shared pool\n"
      "  --oracle            full-vector-clock engine instead of epochs\n"
      "  --window N          pipeline window in events (default 65536)\n"
      "  --max-races N       cap on reported races (default 64)\n"
      "  --deadline-ms N     wall-clock budget for each scan\n"
      "  --max-visited N     event budget for each scan\n"
      "  --max-memory-mb N   state-memory budget for each scan\n"
      "  --fault-seed N      run under a random fault plan (robustness\n"
      "                      demo: injected faults surface as undecided)\n"
      "generator options:\n"
      "  --gen KIND          write a synthetic log instead of scanning;\n"
      "                      KIND is racefree, mixed (racy) or lockheavy\n"
      "  --out FILE          output path (required with --gen)\n"
      "  --events N          approximate event count (default 1048576)\n"
      "  --threads N         generator threads (default 8)\n"
      "  --locations N       distinct data addresses (default 16384)\n"
      "  --seed N            generator seed (default 1)\n",
      Argv0);
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!In.good() && !In.eof())
    return std::nullopt;
  return Buf.str();
}

void printReport(const char *Name, const RaceLogReport &R) {
  const char *V = R.verdict() == VerdictKind::Refuted  ? "RACY"
                  : R.verdict() == VerdictKind::Proved ? "race-free"
                                                       : "undecided";
  std::printf("%-24s %-10s %s\n", Name, V, R.str().c_str());
}

/// The no-argument demo: generate a small mixed log in memory and show
/// the epoch engine and the oracle agreeing on it.
int runDemo() {
  SynthOptions SO;
  SO.Events = 200'000;
  SO.Threads = 4;
  SO.Locations = 1 << 10;
  std::string Log = makeMixedLog(SO);
  std::printf("demo: synthetic mixed log, %zu bytes\n", Log.size());

  RaceLogOptions Epoch;
  Epoch.Shards = 4;
  RaceLogReport RE = scanRaceLog(Log, Epoch);
  printReport("epoch engine (4 shards)", RE);
  if (signalled())
    return ExitInterrupted;

  RaceLogOptions Oracle;
  Oracle.Epochs = false;
  RaceLogReport RO = scanRaceLog(Log, Oracle);
  printReport("full-clock oracle", RO);
  if (signalled())
    return ExitInterrupted;

  if (RE.verdict() != RO.verdict() ||
      RE.Stats.RacyLocations != RO.Stats.RacyLocations) {
    std::fprintf(stderr, "error: engines disagree\n");
    return 1;
  }
  std::printf("engines agree: %llu racy locations\n",
              static_cast<unsigned long long>(RE.Stats.RacyLocations));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  installCancelOnSignal(GCancel);

  std::string GenKind, OutPath;
  SynthOptions SO;
  RaceLogOptions RO;
  BudgetSpec Spec;
  uint64_t FaultSeed = 0;
  bool HaveFaultSeed = false;
  std::vector<std::string> Files;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", A.c_str());
        return nullptr;
      }
      return argv[++I];
    };
    auto needUnsigned = [&](uint64_t &Out) {
      const char *V = needValue();
      if (!V || !parseUnsigned(V, Out)) {
        if (V)
          std::fprintf(stderr, "error: bad value for %s: %s\n", A.c_str(), V);
        return false;
      }
      return true;
    };
    uint64_t U = 0;
    if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else if (A == "--gen") {
      const char *V = needValue();
      if (!V)
        return 2;
      GenKind = V;
    } else if (A == "--out") {
      const char *V = needValue();
      if (!V)
        return 2;
      OutPath = V;
    } else if (A == "--events") {
      if (!needUnsigned(SO.Events))
        return 2;
    } else if (A == "--threads") {
      if (!needUnsigned(U))
        return 2;
      SO.Threads = static_cast<uint32_t>(U);
    } else if (A == "--locations") {
      if (!needUnsigned(U))
        return 2;
      SO.Locations = static_cast<uint32_t>(U);
    } else if (A == "--seed") {
      if (!needUnsigned(SO.Seed))
        return 2;
    } else if (A == "--shards") {
      if (!needUnsigned(U))
        return 2;
      RO.Shards = static_cast<unsigned>(U);
    } else if (A == "--jobs") {
      if (!needUnsigned(U))
        return 2;
      RO.Workers = static_cast<unsigned>(U);
    } else if (A == "--oracle") {
      RO.Epochs = false;
    } else if (A == "--window") {
      if (!needUnsigned(U))
        return 2;
      RO.WindowEvents = static_cast<size_t>(U);
    } else if (A == "--max-races") {
      if (!needUnsigned(U))
        return 2;
      RO.MaxRaces = static_cast<size_t>(U);
    } else if (A == "--deadline-ms") {
      if (!needUnsigned(U))
        return 2;
      Spec.DeadlineMs = static_cast<int64_t>(U);
    } else if (A == "--max-visited") {
      if (!needUnsigned(Spec.MaxVisited))
        return 2;
    } else if (A == "--max-memory-mb") {
      if (!needUnsigned(U))
        return 2;
      Spec.MaxMemoryBytes = U << 20;
    } else if (A == "--fault-seed") {
      if (!needUnsigned(FaultSeed))
        return 2;
      HaveFaultSeed = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", A.c_str());
      usage(argv[0]);
      return 2;
    } else {
      Files.push_back(A);
    }
  }

  // Generator mode.
  if (!GenKind.empty()) {
    if (OutPath.empty()) {
      std::fprintf(stderr, "error: --gen needs --out FILE\n");
      return 2;
    }
    std::string Log;
    if (GenKind == "racefree")
      Log = makeRaceFreeLog(SO);
    else if (GenKind == "mixed" || GenKind == "racy")
      Log = makeMixedLog(SO);
    else if (GenKind == "lockheavy")
      Log = makeLockHeavyLog(SO);
    else {
      std::fprintf(stderr, "error: unknown --gen kind: %s\n",
                   GenKind.c_str());
      return 2;
    }
    std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
    Out.write(Log.data(), static_cast<std::streamsize>(Log.size()));
    if (!Out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
      return 2;
    }
    std::printf("wrote %s: %s, %zu bytes\n", OutPath.c_str(),
                GenKind.c_str(), Log.size());
    return signalled() ? ExitInterrupted : 0;
  }

  if (Files.empty())
    return runDemo();

  FaultPlan Plan;
  std::optional<FaultPlan::Scope> PlanScope;
  if (HaveFaultSeed) {
    Plan.randomize(FaultSeed);
    PlanScope.emplace(Plan);
  }

  bool AnyRaces = false;
  for (const std::string &Path : Files) {
    std::optional<std::string> Bytes = readFile(Path);
    if (!Bytes) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return 2;
    }
    // Each scan gets a fresh budget so one huge log cannot starve the
    // rest of the batch; the cancel token is shared.
    Budget B(Spec, &GCancel);
    RaceLogOptions O = RO;
    O.Shared = &B;
    RaceLogReport R = scanRaceLog(*Bytes, O);
    if (signalled())
      return ExitInterrupted;
    if (!R.FormatOk) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                   R.FormatError.c_str());
      return 2;
    }
    printReport(Path.c_str(), R);
    AnyRaces |= !R.Races.empty();
  }
  return AnyRaces ? 1 : 0;
}
