//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario: the Fig 3 pitfall. A loop-hoisting-style pass introduces an
/// irrelevant read; a later (individually sound!) redundant-read
/// elimination reuses it across a lock acquire; the combination makes a
/// data-race-free program print two zeros on a sequentially consistent
/// machine. The checkers pinpoint the unsound step.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "opt/Unsafe.h"
#include "semantics/Reordering.h"
#include "verify/Checks.h"
#include "support/Signal.h"

#include <cstdio>

using namespace tracesafe;

namespace {

const char *StageA = R"(
thread { lock m; x := 1; r3 := y; print r3; unlock m; }
thread { lock m; y := 1; r4 := x; print r4; unlock m; }
)";

const char *StageC = R"(
thread { r1 := y; lock m; x := 1; print r1; unlock m; }
thread { r2 := x; lock m; y := 1; print r2; unlock m; }
)";

bool canPrintTwoZeros(const Program &P) {
  return programBehaviours(P).count(Behaviour{0, 0}) != 0;
}

const char *verdictOf(const Traceset &From, const Traceset &To) {
  TransformCheckResult E = checkElimination(From, To);
  if (E.Verdict == CheckVerdict::Holds)
    return "elimination: holds";
  TransformCheckResult R = checkEliminationThenReordering(From, To);
  if (R.Verdict == CheckVerdict::Holds)
    return "elimination+reordering: holds";
  return "NOT a safe transformation";
}

} // namespace

int main() {
  static CancelToken Stop;
  installCancelOnSignal(Stop);
  Program A = parseOrDie(StageA);
  std::printf("stage (a): lock-protected exchange\n%s\n",
              printProgram(A).c_str());
  std::printf("  DRF: %s; can print (0,0): %s\n\n",
              isProgramDrf(A) ? "yes" : "no",
              canPrintTwoZeros(A) ? "yes" : "no");

  // Stage (b): the pass introduces reads of y and x before the critical
  // sections (what a hoisting pass does to reads it wants to reuse).
  ListPath T0, T1;
  T0.Tid = 0;
  T1.Tid = 1;
  Program B = introduceRead(A, T0, 0, Symbol::intern("r1"),
                            Symbol::intern("y"));
  B = introduceRead(B, T1, 0, Symbol::intern("r2"), Symbol::intern("x"));
  std::printf("stage (b): after irrelevant read introduction\n%s\n",
              printProgram(B).c_str());
  std::printf("  DRF: %s (the introduced reads race with the locked "
              "writes)\n",
              isProgramDrf(B) ? "yes" : "no");

  std::vector<Value> Domain = defaultDomainFor(A, 2);
  Traceset TA = programTraceset(A, Domain);
  Traceset TB = programTraceset(B, Domain);
  std::printf("  (a) -> (b): %s\n\n", verdictOf(TA, TB));

  // Stage (c): redundant read elimination across the acquire (legal by
  // Definition 1: a lone acquire is not a release-acquire pair).
  Program C = parseOrDie(StageC);
  std::printf("stage (c): after redundant read elimination\n%s\n",
              printProgram(C).c_str());
  Traceset TC = programTraceset(C, Domain);
  std::printf("  (b) -> (c): %s\n", verdictOf(TB, TC));
  std::printf("  can print (0,0): %s  <- new behaviour for a DRF program!\n",
              canPrintTwoZeros(C) ? "yes" : "no");
  std::printf("\nconclusion: the unsound step is the read *introduction*;\n"
              "every elimination/reordering after it is individually safe.\n");
  return signalled() ? ExitInterrupted : 0;
}
