//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-model explorer: given a program (file argument, or a built-in
/// store-buffering demo), enumerate and diff its behaviours under
/// sequential consistency, TSO and PSO, report data race freedom, and —
/// when relaxed behaviours exist — show which safe transformation chain
/// explains each one (the §8 methodology as an interactive tool).
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "tso/PsoMachine.h"
#include "tso/TsoExplain.h"
#include "support/Signal.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace tracesafe;

namespace {

const char *Demo = R"(
// Dekker-style mutual exclusion attempt (store buffering).
thread { x := 1; r1 := y; print r1; }
thread { y := 1; r2 := x; print r2; }
)";

std::string renderBehaviour(const Behaviour &B) {
  std::string Out = "[";
  for (size_t I = 0; I < B.size(); ++I)
    Out += (I ? "," : "") + std::to_string(B[I]);
  return Out + "]";
}

/// Maximal behaviours only (the set is prefix-closed; the frontier is what
/// a user wants to read).
std::vector<Behaviour> frontier(const std::set<Behaviour> &Bs) {
  std::vector<Behaviour> Out;
  for (const Behaviour &B : Bs) {
    bool HasExtension = false;
    for (const Behaviour &C : Bs)
      if (C.size() == B.size() + 1 &&
          std::equal(B.begin(), B.end(), C.begin()))
        HasExtension = true;
    if (!HasExtension)
      Out.push_back(B);
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  static CancelToken Stop;
  installCancelOnSignal(Stop);
  std::string Source = Demo;
  std::string Name = "<builtin demo>";
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    Name = argv[1];
  }
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s: %s\n", Name.c_str(),
                 Parsed.Error.c_str());
    return 1;
  }
  Program P = std::move(*Parsed.Prog);
  std::printf("== program (%s) ==\n%s\n", Name.c_str(),
              printProgram(P).c_str());
  std::printf("data race freedom: %s\n\n",
              isProgramDrf(P) ? "DRF" : "RACY");

  std::set<Behaviour> Sc = programBehaviours(P);
  std::set<Behaviour> Tso = tsoBehaviours(P);
  std::set<Behaviour> Pso = psoBehaviours(P);

  std::printf("== maximal behaviours ==\n");
  std::printf("%-16s %-5s %-5s %-5s\n", "behaviour", "SC", "TSO", "PSO");
  for (const Behaviour &B : frontier(Pso))
    std::printf("%-16s %-5s %-5s %-5s\n", renderBehaviour(B).c_str(),
                Sc.count(B) ? "yes" : "-", Tso.count(B) ? "yes" : "-",
                Pso.count(B) ? "yes" : "-");

  // Explain the relaxed behaviours via safe transformations.
  std::set<Behaviour> Relaxed;
  for (const Behaviour &B : Pso)
    if (!Sc.count(B))
      Relaxed.insert(B);
  if (Relaxed.empty()) {
    std::printf("\nno relaxed behaviours: the program is observationally "
                "SC on both machines.\n");
    return 0;
  }
  std::printf("\n== explaining %zu relaxed behaviour(s) by safe "
              "transformations ==\n",
              Relaxed.size());
  bool Truncated = false;
  size_t Programs = 0;
  std::set<Behaviour> Union =
      reachableScBehaviours(P, 3, {}, {}, &Truncated, &Programs);
  size_t Explained = 0;
  for (const Behaviour &B : Relaxed)
    Explained += Union.count(B);
  std::printf("explored %zu transformed programs (depth <= 3): "
              "%zu/%zu relaxed behaviours explained%s\n",
              Programs, Explained, Relaxed.size(),
              Truncated ? " (truncated!)" : "");
  if (signalled())
    return ExitInterrupted;
  return Explained == Relaxed.size() && !Truncated ? 0 : 1;
}
