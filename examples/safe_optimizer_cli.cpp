//===----------------------------------------------------------------------===//
///
/// \file
/// A small certified-optimiser command-line tool: reads a program in the
/// paper's language, greedily applies the Fig 10/11 rules, and *verifies
/// every step semantically* (Lemma 4/5) plus the end-to-end DRF and
/// thin-air guarantees before printing the optimised program.
///
/// Usage:
///   safe_optimizer_cli [file]            # default: a built-in demo
///   safe_optimizer_cli --rules=elim|reorder|all [--max-steps=N] [file]
///   safe_optimizer_cli --server=SOCKET [file]   # certify via tracesafed
///
/// With --server the end-to-end DRF and thin-air guarantees are checked by
/// a tracesafed daemon (warm caches, admission control, retry/backoff on
/// restarts) instead of in-process; the transformation chain itself is
/// still computed locally. Exit code 0 iff every verification passed; 130
/// when interrupted.
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "support/Signal.h"
#include "verify/Theorems.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace tracesafe;

namespace {

const char *DemoProgram = R"(
// Built-in demo: a lock-protected producer with redundant accesses.
thread {
  lock m;
  buf := 1;
  r1 := buf;
  r2 := buf;
  print r2;
  buf := r2;
  unlock m;
}
thread {
  lock m;
  r3 := buf;
  print r3;
  unlock m;
}
)";

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--rules=elim|reorder|all] [--max-steps=N] "
               "[--server=SOCKET] [file]\n",
               Argv0);
}

/// Remote certification: the guarantees a daemon can check (Theorems 1-5
/// end to end on the chain's endpoints). Step-wise semantic checks stay
/// local-only; with --server they are skipped, which the output says.
int certifyRemote(const std::string &Socket, const Program &P,
                  const Program &Result) {
  daemon::ClientOptions CO;
  CO.SocketPath = Socket;
  CO.Name = "safe-optimizer-" + std::to_string(::getpid());
  daemon::DaemonClient Client(CO);

  daemon::QueryRequest Drf;
  Drf.Kind = daemon::QueryKind::DrfGuarantee;
  Drf.Program = printProgram(P);
  Drf.Transformed = printProgram(Result);
  daemon::QueryRequest Thin = Drf;
  Thin.Kind = daemon::QueryKind::ThinAir;

  std::vector<daemon::QueryResponse> V;
  try {
    V = Client.callBatch({Drf, Thin});
  } catch (const daemon::ProtocolError &E) {
    std::fprintf(stderr, "remote certification failed: %s\n", E.what());
    return signalled() ? ExitInterrupted : 1;
  }
  std::printf("DRF guarantee (remote):      %s\n", V[0].str().c_str());
  std::printf("thin-air guarantee (remote): %s\n", V[1].str().c_str());
  bool Ok = V[0].Status == daemon::ResponseStatus::Ok &&
            V[1].Status == daemon::ResponseStatus::Ok &&
            V[0].Kind == VerdictKind::Proved &&
            V[1].Kind == VerdictKind::Proved;
  std::printf("verdict: %s\n", Ok ? "CERTIFIED (remote)" : "NOT certified");
  if (signalled())
    return ExitInterrupted;
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  RuleSet Rules = RuleSet::all();
  size_t MaxSteps = 16;
  std::string Source = DemoProgram;
  std::string SourceName = "<builtin demo>";
  std::string ServerSocket;

  static CancelToken Stop;
  installCancelOnSignal(Stop);

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--server=", 9) == 0) {
      ServerSocket = Arg + 9;
    } else if (std::strncmp(Arg, "--rules=", 8) == 0) {
      std::string Mode = Arg + 8;
      if (Mode == "elim")
        Rules = RuleSet::eliminationsOnly();
      else if (Mode == "reorder")
        Rules = RuleSet::reorderingsOnly();
      else if (Mode == "all")
        Rules = RuleSet::all();
      else {
        usage(argv[0]);
        return 1;
      }
    } else if (std::strncmp(Arg, "--max-steps=", 12) == 0) {
      MaxSteps = static_cast<size_t>(std::atoi(Arg + 12));
    } else if (Arg[0] == '-') {
      usage(argv[0]);
      return 1;
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Arg);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      SourceName = Arg;
    }
  }

  ParseResult Parsed = parseProgram(Source);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s: %s\n", SourceName.c_str(),
                 Parsed.Error.c_str());
    return 1;
  }
  Program P = std::move(*Parsed.Prog);
  std::printf("== input (%s) ==\n%s\n", SourceName.c_str(),
              printProgram(P).c_str());

  TransformChain Chain = greedyChain(P, Rules, MaxSteps);
  if (Chain.Steps.empty()) {
    std::printf("no applicable transformations.\n");
    return 0;
  }
  std::printf("== applied %zu transformation(s) ==\n", Chain.Steps.size());
  for (const RewriteSite &S : Chain.Steps)
    std::printf("  %s\n", S.str().c_str());
  std::printf("\n== optimised program ==\n%s\n",
              printProgram(Chain.Result).c_str());

  std::printf("== certification ==\n");
  if (!ServerSocket.empty())
    return certifyRemote(ServerSocket, P, Chain.Result);
  TheoremCaseReport Report = checkTheoremsOnChain(P, Chain);
  std::printf("%s\n", Report.summary().c_str());
  std::printf("verdict: %s\n",
              Report.allHold() ? "CERTIFIED" : "NOT certified");
  if (signalled())
    return ExitInterrupted;
  return Report.allHold() ? 0 : 1;
}
