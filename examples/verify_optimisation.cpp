//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario: a compiler writer wants to know whether a hand-written
/// transformation of a concurrent program is DRF-sound. This reproduces
/// the paper's Fig 1 (elimination) and Fig 2 (reordering) end to end:
/// both transformations change the behaviours of these *racy* programs —
/// yet both are certified safe, because the DRF guarantee only constrains
/// race-free programs and the semantic checkers accept them.
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/ProgramExec.h"
#include "lang/Printer.h"
#include "semantics/Reordering.h"
#include "support/Signal.h"
#include "verify/Checks.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include <unistd.h>

using namespace tracesafe;

namespace {

/// Non-null in --server mode: the DRF-guarantee leg of each scenario is
/// answered by a tracesafed daemon instead of in-process (the behaviour
/// diff and semantic checks stay local — they are the demo).
std::unique_ptr<daemon::DaemonClient> GRemote;

void printBehaviourDiff(const Program &O, const Program &T) {
  std::set<Behaviour> BO = programBehaviours(O);
  std::set<Behaviour> BT = programBehaviours(T);
  for (const Behaviour &B : BT) {
    if (BO.count(B))
      continue;
    std::printf("  new behaviour: [");
    for (size_t I = 0; I < B.size(); ++I)
      std::printf("%s%d", I ? ", " : "", B[I]);
    std::printf("]\n");
  }
}

void analyse(const char *Title, const char *Orig, const char *Transformed,
             bool Reordering) {
  std::printf("==== %s ====\n", Title);
  Program O = parseOrDie(Orig);
  Program T = parseOrDie(Transformed);
  std::printf("original is %s\n", isProgramDrf(O) ? "DRF" : "racy");
  printBehaviourDiff(O, T);

  std::vector<Value> Domain = defaultDomainFor(O, 3);
  Traceset TO = programTraceset(O, Domain);
  Traceset TT = programTraceset(T, Domain);
  TransformCheckResult R =
      Reordering ? checkEliminationThenReordering(TO, TT)
                 : checkElimination(TO, TT);
  std::printf("semantic %s check: %s\n", Reordering ? "reordering"
                                                    : "elimination",
              checkVerdictName(R.Verdict).c_str());
  if (GRemote) {
    daemon::QueryRequest Q;
    Q.Kind = daemon::QueryKind::DrfGuarantee;
    Q.Program = printProgram(O);
    Q.Transformed = printProgram(T);
    std::printf("DRF guarantee (remote): %s\n\n",
                GRemote->call(Q).str().c_str());
    return;
  }
  DrfGuaranteeReport G = checkDrfGuarantee(O, T);
  std::printf("DRF guarantee: %s%s\n\n", G.holds() ? "holds" : "VIOLATED",
              G.OriginalDrf ? "" : " (vacuously: original has races)");
}

} // namespace

int main(int argc, char **argv) {
  static CancelToken Stop;
  installCancelOnSignal(Stop);
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--server") == 0 && I + 1 < argc) {
      daemon::ClientOptions CO;
      CO.SocketPath = argv[++I];
      CO.Name = "verify-optimisation-" + std::to_string(::getpid());
      GRemote = std::make_unique<daemon::DaemonClient>(std::move(CO));
    } else {
      std::fprintf(stderr, "usage: %s [--server SOCKET]\n", argv[0]);
      return 2;
    }
  }
  analyse("Fig 1: overwritten write + redundant read elimination",
          R"(
thread { x := 2; y := 1; x := 1; }
thread { r1 := y; print r1; r1 := x; r2 := x; print r2; }
)",
          R"(
thread { y := 1; x := 1; }
thread { r1 := y; print r1; r1 := x; r2 := r1; print r2; }
)",
          /*Reordering=*/false);

  analyse("Fig 2: read-write reordering (needs the wildcard-read trick)",
          R"(
thread { r1 := x; y := r1; }
thread { r2 := y; x := 1; print r2; }
)",
          R"(
thread { r1 := x; y := r1; }
thread { x := 1; r2 := y; print r2; }
)",
          /*Reordering=*/true);
  return signalled() ? ExitInterrupted : 0;
}
