//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario: the §8 conclusion — explaining the TSO memory model with the
/// paper's transformations. Runs the litmus battery on the SC interpreter
/// and the store-buffer machine, then shows that every TSO-only behaviour
/// is an SC behaviour of a program reachable via safe transformations
/// (W->R reordering + read-after-write elimination).
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "tso/Litmus.h"
#include "tso/TsoExplain.h"
#include "support/Signal.h"

#include <cstdio>

using namespace tracesafe;

int main() {
  static CancelToken Stop;
  installCancelOnSignal(Stop);
  std::printf("%-8s | %-28s | %-3s | %-3s | %s\n", "test", "asked outcome",
              "SC", "TSO", "explained by transformations?");
  std::printf("---------+------------------------------+-----+-----+----"
              "---------------------------\n");
  bool AllOk = true;
  for (const LitmusTest &T : litmusTests()) {
    Program P = parseOrDie(T.Source);
    std::set<Behaviour> Sc = programBehaviours(P);
    std::set<Behaviour> Tso = tsoBehaviours(P);
    bool ScHas = T.observedIn(Sc);
    bool TsoHas = T.observedIn(Tso);
    TsoExplainResult E = explainTsoByTransformations(P, /*MaxDepth=*/3);
    std::string Outcome;
    for (const Behaviour &B : T.AskedOutcomes) {
      Outcome += Outcome.empty() ? "[" : " or [";
      for (size_t I = 0; I < B.size(); ++I)
        Outcome += (I ? "," : "") + std::to_string(B[I]);
      Outcome += "]";
    }
    std::printf("%-8s | %-28s | %-3s | %-3s | %s (%zu programs, %zu TSO "
                "behaviours)\n",
                T.Name.c_str(), Outcome.c_str(), ScHas ? "yes" : "no",
                TsoHas ? "yes" : "no", E.Explained ? "yes" : "NO",
                E.ProgramsExplored, E.TsoBehaviours);
    AllOk &= ScHas == T.ScAllows && TsoHas == T.TsoAllows && E.Explained;
  }
  std::printf("\n%s\n", AllOk ? "all litmus outcomes match the models and "
                                "are explained by the transformations"
                              : "MISMATCH — see table");
  if (signalled())
    return ExitInterrupted;
  return AllOk ? 0 : 1;
}
