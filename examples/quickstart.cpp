//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: parse a concurrent program, explore its behaviours, check
/// data race freedom, apply one compiler optimisation, and verify the
/// optimisation against the paper's DRF guarantee.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgramExec.h"
#include "opt/Pipeline.h"
#include "semantics/Elimination.h"
#include "verify/Checks.h"
#include "support/Signal.h"

#include <cstdio>

using namespace tracesafe;

int main() {
  static CancelToken Stop;
  installCancelOnSignal(Stop);
  // A lock-protected producer/consumer: data race free by construction.
  Program P = parseOrDie(R"(
thread {
  lock m;
  counter := 1;
  r1 := counter;
  r2 := counter;
  print r2;
  unlock m;
}
thread {
  lock m;
  r3 := counter;
  counter := r3;
  print r3;
  unlock m;
}
)");

  std::printf("== program ==\n%s\n", printProgram(P).c_str());

  // 1. Sequentially consistent behaviours (exhaustive).
  std::printf("== SC behaviours ==\n");
  for (const Behaviour &B : programBehaviours(P)) {
    std::printf("  [");
    for (size_t I = 0; I < B.size(); ++I)
      std::printf("%s%d", I ? ", " : "", B[I]);
    std::printf("]\n");
  }

  // 2. Data race freedom.
  std::printf("== data race freedom ==\n  %s\n",
              isProgramDrf(P) ? "data race free" : "RACY");

  // 3. Apply the compiler: greedy application of the paper's Fig 10/11
  // rules (here E-RAW turns r1/r2 into constant copies and E-WAR kills the
  // redundant write-back).
  TransformChain Chain = greedyChain(P, RuleSet::all(), /*MaxSteps=*/4);
  std::printf("== applied rules ==\n");
  for (const RewriteSite &S : Chain.Steps)
    std::printf("  %s\n", S.str().c_str());
  std::printf("== optimised program ==\n%s\n",
              printProgram(Chain.Result).c_str());

  // 4. Verify the DRF guarantee end to end.
  DrfGuaranteeReport R = checkDrfGuarantee(P, Chain.Result);
  std::printf("== DRF guarantee ==\n"
              "  original DRF:          %s\n"
              "  transformed DRF:       %s\n"
              "  behaviours preserved:  %s\n"
              "  guarantee:             %s\n",
              R.OriginalDrf ? "yes" : "no", R.TransformedDrf ? "yes" : "no",
              R.BehavioursPreserved ? "yes" : "no",
              R.holds() ? "HOLDS" : "VIOLATED");

  // 5. And at the semantic level: the optimised traceset is an elimination
  // of the original traceset (Theorem 3's premise).
  std::vector<Value> Domain = defaultDomainFor(P, 2);
  Traceset Orig = programTraceset(P, Domain);
  Traceset Opt = programTraceset(Chain.Result, Domain);
  TransformCheckResult E = checkElimination(Orig, Opt);
  std::printf("== semantic elimination check ==\n  verdict: %s\n",
              checkVerdictName(E.Verdict).c_str());
  if (signalled())
    return ExitInterrupted;
  return E.Verdict == CheckVerdict::Holds && R.holds() ? 0 : 1;
}
