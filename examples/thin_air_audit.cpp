//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario: a security audit in the style of §5's out-of-thin-air
/// guarantee. The sandbox cares that a *racy* plugin can never output a
/// capability token (the constant 42) it does not possess — no matter
/// which safe compiler optimisations are applied. We fuzz transformation
/// chains and audit each result.
///
//===----------------------------------------------------------------------===//

#include "lang/Explore.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "verify/Checks.h"
#include "support/Signal.h"

#include <cstdio>

using namespace tracesafe;

int main() {
  static CancelToken Stop;
  installCancelOnSignal(Stop);
  // The paper's §5 example: a racy exchange with copy-through-memory; 42
  // appears nowhere and cannot be built (the language has no arithmetic).
  Program P = parseOrDie(R"(
thread { r2 := y; x := r2; print r2; }
thread { r1 := x; y := r1; }
)");
  std::printf("program under audit:\n%s\n", printProgram(P).c_str());
  std::printf("racy: %s (the guarantee must hold anyway)\n\n",
              isProgramDrf(P) ? "no" : "yes");

  const Value Token = 42;
  size_t Chains = 0, Violations = 0;
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    Rng R(Seed);
    TransformChain Chain = randomChain(P, RuleSet::withExtensions(),
                                       /*MaxSteps=*/4, R);
    ++Chains;
    ThinAirReport Rep = checkThinAir(P, Chain.Result, Token);
    if (!Rep.holds()) {
      ++Violations;
      std::printf("VIOLATION after chain of %zu steps:\n%s\n",
                  Chain.Steps.size(), printProgram(Chain.Result).c_str());
    }
  }
  std::printf("audited %zu random transformation chains: %zu violations\n",
              Chains, Violations);

  // Contrast: a program that *does* contain the token is (rightly) outside
  // the guarantee.
  Program Leaky = parseOrDie("thread { r1 := 42; print r1; }");
  ThinAirReport Rep = checkThinAir(Leaky, Leaky, Token);
  std::printf("control (program containing 42): guarantee %s\n",
              Rep.OrigContainsConstant ? "vacuous, as expected"
                                       : "unexpectedly applicable");
  if (signalled())
    return ExitInterrupted;
  return Violations == 0 ? 0 : 1;
}
