//===----------------------------------------------------------------------===//
///
/// \file
/// tracesafed — the long-lived verification daemon.
///
/// Serves DRF / behaviour / guarantee queries over a unix-domain socket,
/// keeping the process-global caches warm across clients. See
/// docs/PROTOCOL.md for the wire format and docs/ROBUSTNESS.md for the
/// admission/containment/durability contract.
///
/// Usage:
///   tracesafed --socket /tmp/ts.sock [--journal ts.journal] [--resume]
///              [--queue-cap N] [--per-client-cap N] [--workers N]
///              [--quota-deadline-ms N] [--quota-visited N]
///              [--quota-mem-mb N] [--fault-seed N] [--verbose]
///
/// Exit codes:
///   0    clean shutdown (never happens without a Stop source today)
///   1    fatal startup error (socket, journal)
///   2    usage error
///   130  SIGINT/SIGTERM — journal flushed, in-flight queries cancelled
///        (their records stay orphaned, so --resume recomputes them)
///
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"
#include "support/Failure.h"
#include "support/Signal.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

using namespace tracesafe;
using namespace tracesafe::daemon;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [options]\n"
      "  --socket PATH          unix-domain socket to listen on\n"
      "  --journal PATH         crash-recovery journal (A/V records)\n"
      "  --resume               replay the journal before serving\n"
      "  --queue-cap N          global in-flight cap (default 64)\n"
      "  --per-client-cap N     per-client cap (default: fair share)\n"
      "  --workers N            query workers (default: shared pool)\n"
      "  --quota-deadline-ms N  per-query deadline ceiling (0 = none)\n"
      "  --quota-visited N      per-query visit ceiling (0 = none)\n"
      "  --quota-mem-mb N       per-query memory ceiling (0 = none)\n"
      "  --fault-seed N         arm a random daemon fault plan (tests)\n"
      "  --verbose              log lifecycle events to stderr\n",
      Argv0);
}

bool parseU64Arg(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End != S && *End == '\0';
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  uint64_t FaultSeed = 0;
  bool HaveFaultSeed = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 >= Argc || !parseU64Arg(Argv[++I], Out)) {
        std::fprintf(stderr, "%s: %s needs a numeric argument\n", Argv[0],
                     Arg.c_str());
        return false;
      }
      return true;
    };
    auto NextPath = [&](std::string &Out) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: %s needs a path\n", Argv[0], Arg.c_str());
        return false;
      }
      Out = Argv[++I];
      return true;
    };
    uint64_t N = 0;
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (Arg == "--socket") {
      if (!NextPath(Opts.SocketPath))
        return 2;
    } else if (Arg == "--journal") {
      if (!NextPath(Opts.JournalPath))
        return 2;
    } else if (Arg == "--resume") {
      Opts.Resume = true;
    } else if (Arg == "--queue-cap") {
      if (!NextValue(N) || N == 0)
        return 2;
      Opts.QueueCap = static_cast<unsigned>(N);
    } else if (Arg == "--per-client-cap") {
      if (!NextValue(N))
        return 2;
      Opts.PerClientCap = static_cast<unsigned>(N);
    } else if (Arg == "--workers") {
      if (!NextValue(N))
        return 2;
      Opts.Workers = static_cast<unsigned>(N);
    } else if (Arg == "--quota-deadline-ms") {
      if (!NextValue(N))
        return 2;
      Opts.QuotaCeiling.DeadlineMs = static_cast<int64_t>(N);
    } else if (Arg == "--quota-visited") {
      if (!NextValue(Opts.QuotaCeiling.MaxVisited))
        return 2;
    } else if (Arg == "--quota-mem-mb") {
      if (!NextValue(N))
        return 2;
      Opts.QuotaCeiling.MaxMemoryBytes = N << 20;
    } else if (Arg == "--fault-seed") {
      if (!NextValue(FaultSeed))
        return 2;
      HaveFaultSeed = true;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", Argv[0], Arg.c_str());
      usage(Argv[0]);
      return 2;
    }
  }
  if (Opts.SocketPath.empty()) {
    usage(Argv[0]);
    return 2;
  }

  static CancelToken Stop;
  installCancelOnSignal(Stop);
  Opts.Stop = &Stop;

  FaultPlan Plan;
  std::optional<FaultPlan::Scope> Armed;
  if (HaveFaultSeed) {
    Plan.randomizeDaemon(FaultSeed);
    std::fprintf(stderr, "[tracesafed] fault plan: %s\n",
                 Plan.describe().c_str());
    Armed.emplace(Plan);
  }

  ServerStats Stats;
  int Rc = runServer(Opts, &Stats);
  Armed.reset();
  if (Opts.Verbose)
    std::fprintf(stderr,
                 "[tracesafed] conns=%llu admitted=%llu completed=%llu "
                 "overloaded=%llu replayed=%llu resumed=%llu degraded=%llu "
                 "proto-errors=%llu accept-faults=%llu\n",
                 static_cast<unsigned long long>(Stats.Connections),
                 static_cast<unsigned long long>(Stats.Admitted),
                 static_cast<unsigned long long>(Stats.Completed),
                 static_cast<unsigned long long>(Stats.Overloaded),
                 static_cast<unsigned long long>(Stats.Replayed),
                 static_cast<unsigned long long>(Stats.Resumed),
                 static_cast<unsigned long long>(Stats.Degraded),
                 static_cast<unsigned long long>(Stats.ProtoErrors),
                 static_cast<unsigned long long>(Stats.AcceptFaults));
  if (signalled())
    return ExitInterrupted;
  return Rc;
}
