//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing CLI for the optimisation pipeline.
///
/// Generates seeded random programs, pushes each through a random chain of
/// the paper's Fig 10/11 rewrite rules, and checks the DRF guarantee
/// (Theorems 1-4) and the out-of-thin-air guarantee (Theorem 5) on every
/// original/transformed pair under escalating budgets. Guarantee
/// violations are delta-debugged to a minimal program and written as
/// standalone `.tsl` repro files.
///
/// SIGINT/SIGTERM request cooperative cancellation: in-flight queries
/// unwind within one budget check interval, the partial summary is still
/// printed (and the JSON report written), and the process exits 130.
/// With --checkpoint the campaign journals every finished program index,
/// so --resume continues a killed campaign and produces the same report
/// as an uninterrupted run.
///
/// Exit codes:
///   0    clean run (no uninjected violations; with --expect-failures, at
///        least one injected failure was found and minimised; with
///        --chaos, the self-check passed)
///   1    violations found (or none found under --expect-failures, or a
///        --chaos self-check assertion failed)
///   2    usage error
///   130  cancelled by SIGINT/SIGTERM
///
/// Examples:
///   fuzz_harness --programs 500 --deadline-ms 30000 --seed 7
///   fuzz_harness --inject --expect-failures --repro-dir /tmp/repros
///   fuzz_harness --checkpoint run.journal --json report.json
///   fuzz_harness --resume run.journal --json report.json
///   fuzz_harness --chaos --programs 40 --seed 3
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "opt/Unsafe.h"
#include "support/Failure.h"
#include "support/Signal.h"
#include "verify/Fuzz.h"
#include "verify/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

using namespace tracesafe;

namespace {

/// Requested by SIGINT/SIGTERM (via support/Signal), read by every query
/// budget.
CancelToken GCancel;

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed N            base RNG seed (default 1)\n"
      "  --programs N        programs to generate (default 500)\n"
      "  --deadline-ms N     whole-run wall-clock cap (default none)\n"
      "  --json PATH         write a JSON report to PATH\n"
      "  --repro-dir DIR     write minimised .tsl repros to DIR\n"
      "  --server SOCKET     run the campaign as a thin client of a\n"
      "                      tracesafed daemon listening on SOCKET\n"
      "  --checkpoint PATH   journal finished indices to PATH\n"
      "  --resume PATH       continue a campaign from its journal (implies\n"
      "                      --checkpoint PATH)\n"
      "  --chaos             robustness self-check: run the campaign under\n"
      "                      a random fault plan, cancel it mid-flight,\n"
      "                      resume it, and assert the merged result is\n"
      "                      complete and sound\n"
      "  --chaos-rounds N    run N --chaos rounds with derived fault-plan\n"
      "                      seeds and print one aggregated report\n"
      "                      (implies --chaos)\n"
      "  --inject            route every Nth program through an unsafe pass\n"
      "  --inject-every N    injection period (default 5, implies --inject)\n"
      "  --expect-failures   exit 0 iff at least one failure was found and\n"
      "                      minimised (for harness self-tests)\n"
      "  --no-thin-air       skip the Theorem 5 check\n"
      "  --semantic          also verify every safe-chain step with the\n"
      "                      Lemma 4/5 semantic checkers\n"
      "  --jobs N            campaign workers: 1 sequential (default),\n"
      "                      0 = shared pool width, N > 1 = exactly N\n"
      "  --threads N         generated threads per program (default 2)\n"
      "  --max-stmts N       max statements per generated thread (default 6)\n"
      "  --chain-steps N     max rewrite-rule applications (default 4)\n"
      "  --query-deadline-ms N  initial per-query budget deadline\n"
      "  --verbose           print every failure as it is found\n",
      Argv0);
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// The same transform the fuzzer's injection mode uses (lock elision
/// preferred, unsafe const-prop fallback) — re-applied by the chaos
/// oracle check below to re-verify recorded failures from scratch.
std::optional<Program> firstUnsafe(const Program &P) {
  std::vector<LockPair> Pairs = findLockPairs(P);
  if (!Pairs.empty())
    return elideLockPair(P, Pairs.front());
  std::vector<ConstPropSite> Sites = findUnsafeConstProp(P);
  if (!Sites.empty())
    return applyUnsafeConstProp(P, Sites.front());
  return std::nullopt;
}

void printFailures(const FuzzReport &Report, bool Verbose) {
  for (const FuzzFailure &F : Report.Failures) {
    if (!Verbose && F.Injected)
      continue;
    std::printf("%s failure (program %llu%s): %s\n"
                "  minimised %zu -> %zu statements%s%s\n",
                F.Property.c_str(),
                static_cast<unsigned long long>(F.ProgramIndex),
                F.Injected ? ", injected" : "", F.Detail.c_str(),
                F.OriginalStmts, F.ReducedStmts,
                F.ReproPath.empty() ? "" : ", repro: ",
                F.ReproPath.c_str());
    if (!Verbose || F.ReducedChain.empty())
      continue;
    std::printf("  chain %zu -> %zu steps: %s\n", F.ChainSteps,
                F.ReducedChainSteps, F.ReducedChain.c_str());
  }
}

/// --chaos: end-to-end robustness self-check. Arms a random fault plan
/// (allocation failures, throwing and stalling pool tasks, spurious budget
/// faults), runs the campaign with a watchdog that requests cancellation
/// mid-flight (simulating a kill), then resumes from the journal — and
/// asserts that the merged campaign (a) completed every program, (b) never
/// fabricated an uninjected violation, and (c) every injected DRF failure
/// it minimised re-verifies from its repro source with faults disarmed.
int runChaos(FuzzOptions Options, uint64_t Seed,
             uint64_t *FaultsFired = nullptr) {
  Options.InjectUnsafe = true;
  if (Options.Jobs <= 1)
    Options.Jobs = 2; // Fault the pool path, not just in-query budgets.
  std::string Journal =
      (std::filesystem::temp_directory_path() /
       ("tracesafe_chaos_" + std::to_string(Seed) + "_" +
        std::to_string(::getpid()) + ".journal"))
          .string();
  Options.CheckpointPath = Journal;

  FaultPlan Plan;
  Plan.randomize(Seed);
  std::printf("chaos: %s\n", Plan.describe().c_str());

  FuzzReport Final;
  {
    FaultPlan::Scope Armed(Plan);

    // Phase 1: cancel mid-campaign, as an operator's Ctrl-C (or a crash
    // right after the last journal flush) would.
    CancelToken MidRun;
    std::thread Watchdog([&MidRun] {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      MidRun.request();
    });
    Options.Cancel = &MidRun;
    Options.Resume = false;
    FuzzReport First = runFuzz(Options);
    Watchdog.join();
    std::printf("chaos: phase 1 %s\n", First.summary().c_str());

    if (GCancel.requested()) {
      std::remove(Journal.c_str());
      return 130;
    }

    // Phase 2: resume what survives in the journal. If phase 1 finished
    // before the watchdog fired, this just replays the journal.
    Options.Cancel = &GCancel;
    Options.Resume = true;
    Final = runFuzz(Options);
    std::printf("chaos: phase 2 %s\n", Final.summary().c_str());
    std::printf("chaos: faults fired: %llu\n",
                static_cast<unsigned long long>(Plan.totalFired()));
  }
  if (FaultsFired)
    *FaultsFired = Plan.totalFired();
  std::remove(Journal.c_str());
  if (GCancel.requested())
    return 130;

  int Bad = 0;
  auto Check = [&](bool Ok, const char *What) {
    if (!Ok) {
      std::fprintf(stderr, "chaos: FAILED: %s\n", What);
      ++Bad;
    }
  };
  Check(Final.ProgramsRun == Options.Programs,
        "campaign did not complete every program");
  Check(!Final.Cancelled && !Final.DeadlineHit,
        "resumed campaign ended early");
  Check(Final.uninjectedFailures() == 0,
        "fault containment fabricated an uninjected violation");

  // Oracle agreement, faults now disarmed: every minimised injected DRF
  // failure must re-verify from its recorded source under a generous
  // sequential budget.
  BudgetSpec Generous{/*DeadlineMs=*/10'000, /*MaxVisited=*/5'000'000,
                      /*MaxMemoryBytes=*/256u << 20};
  for (const FuzzFailure &F : Final.Failures) {
    if (!F.Injected || F.Property != "drf-guarantee")
      continue;
    ParseResult PR = parseProgram(F.ReducedSource);
    if (!PR) {
      Check(false, "recorded repro does not parse");
      continue;
    }
    std::optional<Program> T = firstUnsafe(*PR.Prog);
    if (!T) {
      Check(false, "unsafe pass no longer applies to recorded repro");
      continue;
    }
    Budget B(Generous);
    ExecLimits Limits;
    Limits.Shared = &B;
    Check(checkDrfGuarantee(*PR.Prog, *T, Limits).outcome() ==
              GuaranteeOutcome::Violated,
          "minimised injected failure does not re-verify");
  }

  if (Bad == 0)
    std::printf("chaos: OK (%llu programs, %llu failures re-verified)\n",
                static_cast<unsigned long long>(Final.ProgramsRun),
                static_cast<unsigned long long>(Final.Failures.size()));
  return Bad == 0 ? 0 : 1;
}

/// --server: the campaign's generate-and-check loop as a thin client of a
/// tracesafed daemon. Programs and transforms are produced locally (the
/// daemon is a verification service, not a fuzzer); every guarantee query
/// ships over the socket and retries through the client library's
/// backoff, so a daemon restart mid-campaign only delays the batch.
int runRemote(const FuzzOptions &Options, const std::string &Socket,
              bool Verbose) {
  daemon::ClientOptions CO;
  CO.SocketPath = Socket;
  CO.Name = "fuzz-harness-" + std::to_string(::getpid());
  daemon::DaemonClient Client(CO);

  Rng R(Options.Seed);
  std::vector<daemon::QueryRequest> Batch;
  std::vector<bool> IsInjected;
  std::vector<uint64_t> Origin;
  for (uint64_t I = 0; I < Options.Programs; ++I) {
    if (GCancel.requested())
      return ExitInterrupted;
    Program P = generateProgram(R, Options.Gen);
    bool Injected = false;
    std::optional<Program> T;
    if (Options.InjectUnsafe && Options.InjectEvery &&
        I % Options.InjectEvery == 0) {
      T = firstUnsafe(P);
      Injected = T.has_value();
    }
    if (!T)
      T = greedyChain(P, RuleSet::all(), Options.MaxChainSteps).Result;

    daemon::QueryRequest Q;
    Q.Kind = daemon::QueryKind::DrfGuarantee;
    Q.Program = printProgram(P);
    Q.Transformed = printProgram(*T);
    Batch.push_back(Q);
    IsInjected.push_back(Injected);
    Origin.push_back(I);
    if (Options.CheckThinAir) {
      Q.Kind = daemon::QueryKind::ThinAir;
      Batch.push_back(Q);
      IsInjected.push_back(Injected);
      Origin.push_back(I);
    }
  }

  std::vector<daemon::QueryResponse> Verdicts;
  try {
    Verdicts = Client.callBatch(Batch);
  } catch (const daemon::ProtocolError &E) {
    std::fprintf(stderr, "remote campaign failed: %s\n", E.what());
    return GCancel.requested() ? ExitInterrupted : 1;
  }

  uint64_t Violations = 0, InjectedCaught = 0, Unknowns = 0, Degraded = 0;
  for (size_t I = 0; I < Verdicts.size(); ++I) {
    const daemon::QueryResponse &V = Verdicts[I];
    if (V.Degraded)
      ++Degraded;
    if (V.Status != daemon::ResponseStatus::Ok ||
        V.Kind == VerdictKind::Unknown) {
      ++Unknowns;
      continue;
    }
    if (V.Kind != VerdictKind::Refuted)
      continue;
    if (IsInjected[I]) {
      ++InjectedCaught;
      continue;
    }
    ++Violations;
    std::fprintf(stderr, "remote: program %llu violated a guarantee: %s\n",
                 static_cast<unsigned long long>(Origin[I]),
                 V.str().c_str());
  }
  if (Verbose)
    for (size_t I = 0; I < Verdicts.size(); ++I)
      std::printf("remote: #%llu %s\n",
                  static_cast<unsigned long long>(Origin[I]),
                  Verdicts[I].str().c_str());
  const daemon::DaemonClient::Stats &CS = Client.stats();
  std::printf("remote campaign: %llu programs, %zu queries, "
              "%llu violations, %llu injected caught, %llu unknown, "
              "%llu degraded (connects=%llu retries=%llu "
              "transport-errors=%llu)\n",
              static_cast<unsigned long long>(Options.Programs),
              Batch.size(), static_cast<unsigned long long>(Violations),
              static_cast<unsigned long long>(InjectedCaught),
              static_cast<unsigned long long>(Unknowns),
              static_cast<unsigned long long>(Degraded),
              static_cast<unsigned long long>(CS.Connects),
              static_cast<unsigned long long>(CS.Retries),
              static_cast<unsigned long long>(CS.TransportErrors));
  if (GCancel.requested())
    return ExitInterrupted;
  return Violations == 0 ? 0 : 1;
}

/// SplitMix64 for deriving decorrelated per-round fault seeds.
uint64_t mixSeed(uint64_t Z) {
  Z += 0x9E3779B97F4A7C15ULL;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// --chaos-rounds N: sweep N chaos self-checks over derived fault-plan
/// seeds (the campaign seed stays fixed, so every round shakes the same
/// workload with a different failure schedule) and aggregate one report.
/// Exit 0 iff every round passed; 130 as soon as the operator cancels.
int runChaosRounds(const FuzzOptions &Base, uint64_t Seed,
                   uint64_t Rounds) {
  uint64_t Passed = 0, Failed = 0, Faults = 0;
  for (uint64_t R = 0; R < Rounds; ++R) {
    uint64_t FaultSeed = mixSeed(Seed + R);
    std::printf("chaos: === round %llu/%llu (fault seed %llu) ===\n",
                static_cast<unsigned long long>(R + 1),
                static_cast<unsigned long long>(Rounds),
                static_cast<unsigned long long>(FaultSeed));
    uint64_t Fired = 0;
    int Rc = runChaos(Base, FaultSeed, &Fired);
    if (Rc == 130)
      return 130;
    Faults += Fired;
    ++(Rc == 0 ? Passed : Failed);
  }
  std::printf("chaos: sweep %llu rounds: %llu passed, %llu failed, "
              "%llu faults fired\n",
              static_cast<unsigned long long>(Rounds),
              static_cast<unsigned long long>(Passed),
              static_cast<unsigned long long>(Failed),
              static_cast<unsigned long long>(Faults));
  return Failed == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Options;
  std::string JsonPath;
  std::string ServerSocket;
  bool ExpectFailures = false;
  bool Verbose = false;
  bool Chaos = false;
  uint64_t ChaosRounds = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 >= Argc || !parseUnsigned(Argv[++I], Out)) {
        std::fprintf(stderr, "%s: %s needs a numeric argument\n", Argv[0],
                     Arg.c_str());
        return false;
      }
      return true;
    };
    auto NextPath = [&](std::string &Out) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: %s needs a path\n", Argv[0], Arg.c_str());
        return false;
      }
      Out = Argv[++I];
      return true;
    };
    uint64_t N = 0;
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (Arg == "--seed") {
      if (!NextValue(Options.Seed))
        return 2;
    } else if (Arg == "--programs") {
      if (!NextValue(Options.Programs))
        return 2;
    } else if (Arg == "--deadline-ms") {
      if (!NextValue(N))
        return 2;
      Options.DeadlineMs = static_cast<int64_t>(N);
    } else if (Arg == "--json") {
      if (!NextPath(JsonPath))
        return 2;
    } else if (Arg == "--repro-dir") {
      if (!NextPath(Options.ReproDir))
        return 2;
    } else if (Arg == "--server") {
      if (!NextPath(ServerSocket))
        return 2;
    } else if (Arg == "--checkpoint") {
      if (!NextPath(Options.CheckpointPath))
        return 2;
    } else if (Arg == "--resume") {
      if (!NextPath(Options.CheckpointPath))
        return 2;
      Options.Resume = true;
    } else if (Arg == "--chaos") {
      Chaos = true;
    } else if (Arg == "--chaos-rounds") {
      if (!NextValue(ChaosRounds) || ChaosRounds == 0)
        return 2;
      Chaos = true;
    } else if (Arg == "--inject") {
      Options.InjectUnsafe = true;
    } else if (Arg == "--inject-every") {
      if (!NextValue(N))
        return 2;
      Options.InjectUnsafe = true;
      Options.InjectEvery = static_cast<unsigned>(N);
    } else if (Arg == "--expect-failures") {
      ExpectFailures = true;
    } else if (Arg == "--no-thin-air") {
      Options.CheckThinAir = false;
    } else if (Arg == "--semantic") {
      Options.CheckSemanticSteps = true;
    } else if (Arg == "--jobs") {
      if (!NextValue(N))
        return 2;
      Options.Jobs = static_cast<unsigned>(N);
    } else if (Arg == "--threads") {
      if (!NextValue(N))
        return 2;
      Options.Gen.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--max-stmts") {
      if (!NextValue(N))
        return 2;
      Options.Gen.MaxStmtsPerThread = static_cast<unsigned>(N);
    } else if (Arg == "--chain-steps") {
      if (!NextValue(N))
        return 2;
      Options.MaxChainSteps = N;
    } else if (Arg == "--query-deadline-ms") {
      if (!NextValue(N))
        return 2;
      Options.Escalation.Initial.DeadlineMs = static_cast<int64_t>(N);
    } else if (Arg == "--verbose") {
      Verbose = true;
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", Argv[0], Arg.c_str());
      usage(Argv[0]);
      return 2;
    }
  }

  installCancelOnSignal(GCancel);

  if (!ServerSocket.empty())
    return runRemote(Options, ServerSocket, Verbose);

  if (Chaos)
    return ChaosRounds > 1
               ? runChaosRounds(Options, Options.Seed, ChaosRounds)
               : runChaos(Options, Options.Seed);

  Options.Cancel = &GCancel;
  FuzzReport Report = runFuzz(Options);

  std::printf("%s\n", Report.summary().c_str());
  printFailures(Report, Verbose);

  if (!JsonPath.empty()) {
    std::ofstream Os(JsonPath);
    if (!Os) {
      std::fprintf(stderr, "%s: cannot write %s\n", Argv[0],
                   JsonPath.c_str());
      return 2;
    }
    Os << Report.toJson();
  }

  if (Report.Cancelled)
    return 130;

  if (ExpectFailures) {
    // Harness self-test mode: the run is a success iff the pipeline found
    // at least one failure AND produced a minimised repro for it.
    for (const FuzzFailure &F : Report.Failures)
      if (F.ReducedStmts > 0 && F.ReducedStmts <= F.OriginalStmts)
        return 0;
    std::fprintf(stderr, "expected failures, found none\n");
    return 1;
  }
  return Report.uninjectedFailures() == 0 ? 0 : 1;
}
