//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing CLI for the optimisation pipeline.
///
/// Generates seeded random programs, pushes each through a random chain of
/// the paper's Fig 10/11 rewrite rules, and checks the DRF guarantee
/// (Theorems 1-4) and the out-of-thin-air guarantee (Theorem 5) on every
/// original/transformed pair under escalating budgets. Guarantee
/// violations are delta-debugged to a minimal program and written as
/// standalone `.tsl` repro files.
///
/// Exit codes:
///   0  clean run (no uninjected violations; with --expect-failures, at
///      least one injected failure was found and minimised)
///   1  violations found (or none found under --expect-failures)
///   2  usage error
///
/// Examples:
///   fuzz_harness --programs 500 --deadline-ms 30000 --seed 7
///   fuzz_harness --inject --expect-failures --repro-dir /tmp/repros
///   fuzz_harness --json report.json --no-thin-air
///
//===----------------------------------------------------------------------===//

#include "verify/Fuzz.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace tracesafe;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed N            base RNG seed (default 1)\n"
      "  --programs N        programs to generate (default 500)\n"
      "  --deadline-ms N     whole-run wall-clock cap (default none)\n"
      "  --json PATH         write a JSON report to PATH\n"
      "  --repro-dir DIR     write minimised .tsl repros to DIR\n"
      "  --inject            route every Nth program through an unsafe pass\n"
      "  --inject-every N    injection period (default 5, implies --inject)\n"
      "  --expect-failures   exit 0 iff at least one failure was found and\n"
      "                      minimised (for harness self-tests)\n"
      "  --no-thin-air       skip the Theorem 5 check\n"
      "  --semantic          also verify every safe-chain step with the\n"
      "                      Lemma 4/5 semantic checkers\n"
      "  --jobs N            campaign workers: 1 sequential (default),\n"
      "                      0 = shared pool width, N > 1 = exactly N\n"
      "  --threads N         generated threads per program (default 2)\n"
      "  --max-stmts N       max statements per generated thread (default 6)\n"
      "  --chain-steps N     max rewrite-rule applications (default 4)\n"
      "  --query-deadline-ms N  initial per-query budget deadline\n"
      "  --verbose           print every failure as it is found\n",
      Argv0);
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Options;
  std::string JsonPath;
  bool ExpectFailures = false;
  bool Verbose = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](uint64_t &Out) {
      if (I + 1 >= Argc || !parseUnsigned(Argv[++I], Out)) {
        std::fprintf(stderr, "%s: %s needs a numeric argument\n", Argv[0],
                     Arg.c_str());
        return false;
      }
      return true;
    };
    uint64_t N = 0;
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (Arg == "--seed") {
      if (!NextValue(Options.Seed))
        return 2;
    } else if (Arg == "--programs") {
      if (!NextValue(Options.Programs))
        return 2;
    } else if (Arg == "--deadline-ms") {
      if (!NextValue(N))
        return 2;
      Options.DeadlineMs = static_cast<int64_t>(N);
    } else if (Arg == "--json") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: --json needs a path\n", Argv[0]);
        return 2;
      }
      JsonPath = Argv[++I];
    } else if (Arg == "--repro-dir") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: --repro-dir needs a path\n", Argv[0]);
        return 2;
      }
      Options.ReproDir = Argv[++I];
    } else if (Arg == "--inject") {
      Options.InjectUnsafe = true;
    } else if (Arg == "--inject-every") {
      if (!NextValue(N))
        return 2;
      Options.InjectUnsafe = true;
      Options.InjectEvery = static_cast<unsigned>(N);
    } else if (Arg == "--expect-failures") {
      ExpectFailures = true;
    } else if (Arg == "--no-thin-air") {
      Options.CheckThinAir = false;
    } else if (Arg == "--semantic") {
      Options.CheckSemanticSteps = true;
    } else if (Arg == "--jobs") {
      if (!NextValue(N))
        return 2;
      Options.Jobs = static_cast<unsigned>(N);
    } else if (Arg == "--threads") {
      if (!NextValue(N))
        return 2;
      Options.Gen.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--max-stmts") {
      if (!NextValue(N))
        return 2;
      Options.Gen.MaxStmtsPerThread = static_cast<unsigned>(N);
    } else if (Arg == "--chain-steps") {
      if (!NextValue(N))
        return 2;
      Options.MaxChainSteps = N;
    } else if (Arg == "--query-deadline-ms") {
      if (!NextValue(N))
        return 2;
      Options.Escalation.Initial.DeadlineMs = static_cast<int64_t>(N);
    } else if (Arg == "--verbose") {
      Verbose = true;
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", Argv[0], Arg.c_str());
      usage(Argv[0]);
      return 2;
    }
  }

  FuzzReport Report = runFuzz(Options);

  std::printf("%s\n", Report.summary().c_str());
  for (const FuzzFailure &F : Report.Failures) {
    if (!Verbose && F.Injected)
      continue;
    std::printf("%s failure (program %llu%s): %s\n"
                "  minimised %zu -> %zu statements%s%s\n",
                F.Property.c_str(),
                static_cast<unsigned long long>(F.ProgramIndex),
                F.Injected ? ", injected" : "", F.Detail.c_str(),
                F.OriginalStmts, F.ReducedStmts,
                F.ReproPath.empty() ? "" : ", repro: ",
                F.ReproPath.c_str());
  }

  if (!JsonPath.empty()) {
    std::ofstream Os(JsonPath);
    if (!Os) {
      std::fprintf(stderr, "%s: cannot write %s\n", Argv[0],
                   JsonPath.c_str());
      return 2;
    }
    Os << Report.toJson();
  }

  if (ExpectFailures) {
    // Harness self-test mode: the run is a success iff the pipeline found
    // at least one failure AND produced a minimised repro for it.
    for (const FuzzFailure &F : Report.Failures)
      if (F.ReducedStmts > 0 && F.ReducedStmts <= F.OriginalStmts)
        return 0;
    std::fprintf(stderr, "expected failures, found none\n");
    return 1;
  }
  return Report.uninjectedFailures() == 0 ? 0 : 1;
}
