//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for Definition 1 — the eight cases of eliminable indices —
/// with a positive and negative battery per case, plus the paper's worked
/// example trace.
///
//===----------------------------------------------------------------------===//

#include "semantics/Eliminable.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

SymbolId X() { return Symbol::intern("x"); }
SymbolId Y() { return Symbol::intern("y"); }
SymbolId V() { return Symbol::intern("v"); }
SymbolId M() { return Symbol::intern("m"); }

bool hasKind(const Trace &T, size_t I, EliminableKind K) {
  for (EliminableKind Got : eliminableKinds(T, I))
    if (Got == K)
      return true;
  return false;
}

// --- Case 1: redundant read after read -----------------------------------

TEST(Eliminable, ReadAfterRead) {
  Trace T{Action::mkStart(0), Action::mkRead(X(), 1), Action::mkExternal(0),
          Action::mkRead(X(), 1)};
  EXPECT_TRUE(hasKind(T, 3, EliminableKind::RedundantReadAfterRead));
}

TEST(Eliminable, ReadAfterReadNeedsSameValue) {
  Trace T{Action::mkStart(0), Action::mkRead(X(), 1),
          Action::mkRead(X(), 2)};
  EXPECT_FALSE(hasKind(T, 2, EliminableKind::RedundantReadAfterRead));
}

TEST(Eliminable, ReadAfterReadBlockedByInterveningWrite) {
  Trace T{Action::mkStart(0), Action::mkRead(X(), 1),
          Action::mkWrite(X(), 1), Action::mkRead(X(), 1)};
  EXPECT_FALSE(hasKind(T, 3, EliminableKind::RedundantReadAfterRead));
  // (It is instead a redundant read after *write*.)
  EXPECT_TRUE(hasKind(T, 3, EliminableKind::RedundantReadAfterWrite));
}

TEST(Eliminable, ReadAfterReadBlockedByReleaseAcquirePair) {
  Trace T{Action::mkStart(0), Action::mkRead(X(), 1), Action::mkUnlock(M()),
          Action::mkLock(M()), Action::mkRead(X(), 1)};
  EXPECT_FALSE(hasKind(T, 4, EliminableKind::RedundantReadAfterRead));
}

TEST(Eliminable, ReadAfterReadSurvivesLoneAcquire) {
  // Fig 3's key subtlety: a lock alone is not a release-acquire pair.
  Trace T{Action::mkStart(0), Action::mkRead(Y(), 0), Action::mkLock(M()),
          Action::mkWrite(X(), 1), Action::mkRead(Y(), 0)};
  EXPECT_TRUE(hasKind(T, 4, EliminableKind::RedundantReadAfterRead));
}

TEST(Eliminable, VolatileReadsAreNeverEliminable) {
  Trace T{Action::mkStart(0), Action::mkRead(V(), 1, true),
          Action::mkRead(V(), 1, true)};
  EXPECT_FALSE(isEliminable(T, 2));
}

// --- Case 2: redundant read after write ----------------------------------

TEST(Eliminable, ReadAfterWrite) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 3),
          Action::mkRead(X(), 3)};
  EXPECT_TRUE(hasKind(T, 2, EliminableKind::RedundantReadAfterWrite));
}

TEST(Eliminable, ReadAfterWriteNeedsMatchingValue) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 3),
          Action::mkRead(X(), 4)};
  EXPECT_FALSE(isEliminable(T, 2));
}

// --- Case 3: irrelevant read ----------------------------------------------

TEST(Eliminable, IrrelevantRead) {
  Trace T{Action::mkStart(0), Action::mkWildcardRead(X())};
  EXPECT_TRUE(hasKind(T, 1, EliminableKind::IrrelevantRead));
  // Concrete reads are not irrelevant.
  Trace T2{Action::mkStart(0), Action::mkRead(X(), 0)};
  EXPECT_FALSE(hasKind(T2, 1, EliminableKind::IrrelevantRead));
}

// --- Case 4: redundant write after read ----------------------------------

TEST(Eliminable, WriteAfterRead) {
  Trace T{Action::mkStart(0), Action::mkRead(X(), 2), Action::mkExternal(0),
          Action::mkWrite(X(), 2)};
  EXPECT_TRUE(hasKind(T, 3, EliminableKind::RedundantWriteAfterRead));
}

TEST(Eliminable, WriteAfterReadBlockedByAnyAccess) {
  // An intervening access to x blocks case 4 against the earlier read (the
  // condition is "no *other access*", stronger than cases 1/2).
  Trace T{Action::mkStart(0), Action::mkRead(X(), 2), Action::mkWrite(X(), 1),
          Action::mkWrite(X(), 2)};
  EXPECT_FALSE(hasKind(T, 3, EliminableKind::RedundantWriteAfterRead));
  // A closer justifier with nothing in between re-enables it.
  Trace T2{Action::mkStart(0), Action::mkRead(X(), 2), Action::mkRead(X(), 2),
           Action::mkWrite(X(), 2)};
  EXPECT_TRUE(hasKind(T2, 3, EliminableKind::RedundantWriteAfterRead));
}

// --- Case 5: overwritten write --------------------------------------------

TEST(Eliminable, OverwrittenWrite) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1), Action::mkExternal(0),
          Action::mkWrite(X(), 2)};
  EXPECT_TRUE(hasKind(T, 1, EliminableKind::OverwrittenWrite));
  // The overwriting (later) write is not itself overwritten.
  EXPECT_FALSE(hasKind(T, 3, EliminableKind::OverwrittenWrite));
}

TEST(Eliminable, OverwrittenWriteBlockedByReadBetween) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1), Action::mkRead(X(), 1),
          Action::mkWrite(X(), 2)};
  EXPECT_FALSE(hasKind(T, 1, EliminableKind::OverwrittenWrite));
}

TEST(Eliminable, OverwrittenWriteBlockedByReleaseAcquirePair) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1), Action::mkUnlock(M()),
          Action::mkLock(M()), Action::mkWrite(X(), 2)};
  EXPECT_FALSE(hasKind(T, 1, EliminableKind::OverwrittenWrite));
}

// --- Case 6: redundant last write ------------------------------------------

TEST(Eliminable, RedundantLastWrite) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1), Action::mkRead(Y(), 0)};
  EXPECT_TRUE(hasKind(T, 1, EliminableKind::RedundantLastWrite));
}

TEST(Eliminable, LastWriteBlockedByLaterRelease) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1),
          Action::mkUnlock(M())};
  EXPECT_FALSE(hasKind(T, 1, EliminableKind::RedundantLastWrite));
}

TEST(Eliminable, LastWriteBlockedByLaterSameLocationAccess) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1),
          Action::mkRead(X(), 1)};
  EXPECT_FALSE(hasKind(T, 1, EliminableKind::RedundantLastWrite));
}

// --- Cases 7 and 8: redundant release / external ---------------------------

TEST(Eliminable, RedundantRelease) {
  Trace T{Action::mkStart(0), Action::mkLock(M()), Action::mkUnlock(M()),
          Action::mkWrite(X(), 1)};
  EXPECT_TRUE(hasKind(T, 2, EliminableKind::RedundantRelease));
  // Volatile writes are releases too.
  Trace T2{Action::mkStart(0), Action::mkWrite(V(), 1, true),
           Action::mkRead(X(), 0)};
  EXPECT_TRUE(hasKind(T2, 1, EliminableKind::RedundantRelease));
}

TEST(Eliminable, ReleaseBlockedByLaterSyncOrExternal) {
  Trace T{Action::mkStart(0), Action::mkLock(M()), Action::mkUnlock(M()),
          Action::mkExternal(1)};
  EXPECT_FALSE(hasKind(T, 2, EliminableKind::RedundantRelease));
  Trace T2{Action::mkStart(0), Action::mkLock(M()), Action::mkUnlock(M()),
           Action::mkLock(M())};
  EXPECT_FALSE(hasKind(T2, 2, EliminableKind::RedundantRelease));
}

TEST(Eliminable, RedundantExternal) {
  Trace T{Action::mkStart(0), Action::mkExternal(1), Action::mkRead(X(), 0)};
  EXPECT_TRUE(hasKind(T, 1, EliminableKind::RedundantExternal));
  Trace T2{Action::mkStart(0), Action::mkExternal(1), Action::mkExternal(2)};
  EXPECT_FALSE(hasKind(T2, 1, EliminableKind::RedundantExternal));
  EXPECT_TRUE(hasKind(T2, 2, EliminableKind::RedundantExternal));
}

// --- Acquires and starts are never eliminable ------------------------------

TEST(Eliminable, AcquiresAndStartsNever) {
  Trace T{Action::mkStart(0), Action::mkLock(M()),
          Action::mkRead(V(), 0, true)};
  EXPECT_FALSE(isEliminable(T, 0));
  EXPECT_FALSE(isEliminable(T, 1));
  EXPECT_FALSE(isEliminable(T, 2));
}

// --- The paper's worked example (§4) ----------------------------------------

TEST(Eliminable, PaperWorkedExample) {
  // [S(0), W[x=1], R[y=*], R[x=1], X(1), L[m], W[x=2], W[x=1], U[m]]:
  // indices 2, 3 and 6 are eliminable (and only those).
  Trace T{Action::mkStart(0),       Action::mkWrite(X(), 1),
          Action::mkWildcardRead(Y()), Action::mkRead(X(), 1),
          Action::mkExternal(1),    Action::mkLock(M()),
          Action::mkWrite(X(), 2),  Action::mkWrite(X(), 1),
          Action::mkUnlock(M())};
  // The paper's prose lists indices 2, 3 and 6 (the ones its example
  // elimination drops). By the letter of Definition 1 the trailing unlock
  // at index 8 is additionally a redundant release (case 7: no later
  // synchronisation or external action), so it is eliminable too.
  std::set<size_t> Expected = {2, 3, 6, 8};
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(isEliminable(T, I), Expected.count(I) != 0)
        << "index " << I << " of " << T.str();
  EXPECT_TRUE(hasKind(T, 2, EliminableKind::IrrelevantRead));
  EXPECT_TRUE(hasKind(T, 3, EliminableKind::RedundantReadAfterWrite));
  EXPECT_TRUE(hasKind(T, 6, EliminableKind::OverwrittenWrite));
  EXPECT_TRUE(hasKind(T, 8, EliminableKind::RedundantRelease));
}

// --- Proper eliminability (§6.1) ---------------------------------------------

TEST(Eliminable, ProperExcludesLastActionCases) {
  Trace T{Action::mkStart(0), Action::mkWrite(X(), 1), Action::mkRead(Y(), 0)};
  EXPECT_TRUE(isEliminable(T, 1)); // Redundant last write (case 6).
  EXPECT_FALSE(isProperlyEliminable(T, 1));
  Trace T2{Action::mkStart(0), Action::mkWrite(X(), 3),
           Action::mkRead(X(), 3)};
  EXPECT_TRUE(isProperlyEliminable(T2, 2)); // Case 2 is proper.
}

TEST(Eliminable, KindNamesAreHuman) {
  EXPECT_EQ(eliminableKindName(EliminableKind::IrrelevantRead),
            "irrelevant read");
  EXPECT_EQ(eliminableKindName(EliminableKind::OverwrittenWrite),
            "overwritten write");
}

} // namespace
