//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the small-step semantics, one per Fig 7 rule: REGS,
/// READ, WRITE, LOCK, ULK, E-ULK, EXT, COND-T/F, LOOP-T/F, BLOCK/SEQ, plus
/// the silent closure.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/SmallStep.h"

#include <gtest/gtest.h>

using namespace tracesafe;

namespace {

/// Steps the single-thread program \p Source once from its initial state.
std::vector<Step> firstSteps(const std::string &Source, const Program *&Out) {
  static std::vector<Program> Keep; // Keep ASTs alive for Cont pointers.
  Keep.push_back(parseOrDie(Source));
  Out = &Keep.back();
  LangContext Ctx(Keep.back(), {0, 1, 2});
  return possibleSteps(initialThreadState(Keep.back(), 0), Ctx);
}

TEST(SmallStep, RegsRuleIsSilent) {
  const Program *P;
  std::vector<Step> S = firstSteps("thread { r1 := 5; }", P);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_FALSE(S[0].Act.has_value());
  EXPECT_EQ(S[0].Next.Regs.at(Symbol::intern("r1")), 5);
}

TEST(SmallStep, ReadRuleBranchesOverTheDomain) {
  const Program *P;
  std::vector<Step> S = firstSteps("thread { r1 := x; }", P);
  ASSERT_EQ(S.size(), 3u); // One per domain value.
  std::set<Value> Seen;
  for (const Step &St : S) {
    ASSERT_TRUE(St.Act && St.Act->isRead());
    Seen.insert(St.Act->value());
    EXPECT_EQ(St.Next.Regs.at(Symbol::intern("r1")), St.Act->value());
  }
  EXPECT_EQ(Seen, (std::set<Value>{0, 1, 2}));
}

TEST(SmallStep, WriteRuleEmitsTheRegisterValue) {
  const Program *P;
  std::vector<Step> S = firstSteps("thread { x := 7; }", P);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(*S[0].Act, Action::mkWrite(Symbol::intern("x"), 7));
}

TEST(SmallStep, VolatileAccessesAreMarked) {
  Program P = parseOrDie("volatile v; thread { v := 1; r1 := v; }");
  LangContext Ctx(P, {0});
  std::vector<Step> S = possibleSteps(initialThreadState(P, 0), Ctx);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_TRUE(S[0].Act->isVolatileAccess());
  EXPECT_TRUE(S[0].Act->isRelease());
}

TEST(SmallStep, LockIncrementsNesting) {
  const Program *P;
  std::vector<Step> S = firstSteps("thread { lock m; }", P);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_TRUE(S[0].Act->isLock());
  EXPECT_EQ(S[0].Next.Mon.at(Symbol::intern("m")), 1);
}

TEST(SmallStep, UnlockOfHeldMonitorEmits) {
  Program P = parseOrDie("thread { lock m; unlock m; }");
  LangContext Ctx(P, {0});
  ThreadState S0 = initialThreadState(P, 0);
  ThreadState S1 = possibleSteps(S0, Ctx)[0].Next;
  std::vector<Step> S = possibleSteps(S1, Ctx);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_TRUE(S[0].Act->isUnlock());
  EXPECT_TRUE(S[0].Next.Mon.empty()); // Zero entries are erased.
}

TEST(SmallStep, EUlkRuleIsSilentForUnheldMonitor) {
  const Program *P;
  std::vector<Step> S = firstSteps("thread { unlock m; }", P);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_FALSE(S[0].Act.has_value()); // E-ULK.
}

TEST(SmallStep, ExtRuleEmitsRegisterContent) {
  Program P = parseOrDie("thread { r1 := 4; print r1; }");
  LangContext Ctx(P, {0});
  ThreadState S = possibleSteps(initialThreadState(P, 0), Ctx)[0].Next;
  std::vector<Step> S2 = possibleSteps(S, Ctx);
  ASSERT_EQ(S2.size(), 1u);
  EXPECT_EQ(*S2[0].Act, Action::mkExternal(4));
}

TEST(SmallStep, CondRulesPickTheRightBranch) {
  Program P = parseOrDie(
      "thread { if (r1 == 0) { print 1; } else { print 2; } }");
  LangContext Ctx(P, {0});
  // Registers default to 0, so the condition is true.
  ThreadState S = possibleSteps(initialThreadState(P, 0), Ctx)[0].Next;
  // Unfold the block, then print.
  while (!S.done()) {
    std::vector<Step> Steps = possibleSteps(S, Ctx);
    ASSERT_EQ(Steps.size(), 1u);
    if (Steps[0].Act) {
      EXPECT_EQ(*Steps[0].Act, Action::mkExternal(1));
      return;
    }
    S = Steps[0].Next;
  }
  FAIL() << "never reached the print";
}

TEST(SmallStep, LoopRulesUnfoldAndExit) {
  Program P = parseOrDie("thread { while (r1 == 0) { r1 := 1; } print 9; }");
  LangContext Ctx(P, {0});
  ThreadState S = initialThreadState(P, 0);
  size_t Silent = 0;
  for (;;) {
    ASSERT_LT(Silent, 50u) << "loop failed to terminate";
    std::vector<Step> Steps = possibleSteps(S, Ctx);
    ASSERT_EQ(Steps.size(), 1u);
    if (Steps[0].Act) {
      EXPECT_EQ(*Steps[0].Act, Action::mkExternal(9));
      return; // One iteration ran (r1 := 1), then the loop exited.
    }
    ++Silent;
    S = Steps[0].Next;
  }
}

TEST(SmallStep, EvalOperandAndCond) {
  ThreadState S;
  S.Regs[Symbol::intern("r1")] = 3;
  EXPECT_EQ(evalOperand(S, Operand::imm(7)), 7);
  EXPECT_EQ(evalOperand(S, Operand::reg("r1")), 3);
  EXPECT_EQ(evalOperand(S, Operand::reg("r9")), DefaultValue);
  EXPECT_TRUE(evalCond(S, Cond::eq(Operand::reg("r1"), Operand::imm(3))));
  EXPECT_FALSE(evalCond(S, Cond::ne(Operand::reg("r1"), Operand::imm(3))));
}

TEST(SmallStep, SilentClosureStopsAtActions) {
  Program P = parseOrDie(
      "thread { r1 := 1; r2 := r1; skip; x := r2; }");
  LangContext Ctx(P, {0});
  bool Trunc = false;
  ThreadState S =
      silentClosure(initialThreadState(P, 0), Ctx, 100, &Trunc);
  EXPECT_FALSE(Trunc);
  std::vector<Step> Steps = possibleStepsWithMemory(
      S, Ctx, [](SymbolId) { return DefaultValue; });
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_EQ(*Steps[0].Act, Action::mkWrite(Symbol::intern("x"), 1));
}

TEST(SmallStep, SilentClosureTruncatesInfiniteSilentLoops) {
  Program P = parseOrDie("thread { while (0 == 0) { skip; } }");
  LangContext Ctx(P, {0});
  bool Trunc = false;
  silentClosure(initialThreadState(P, 0), Ctx, 64, &Trunc);
  EXPECT_TRUE(Trunc);
}

TEST(SmallStep, TerminatedThreadHasNoSteps) {
  Program P = parseOrDie("thread { skip; }");
  LangContext Ctx(P, {0});
  ThreadState S = possibleSteps(initialThreadState(P, 0), Ctx)[0].Next;
  EXPECT_TRUE(S.done());
  EXPECT_TRUE(possibleSteps(S, Ctx).empty());
}

} // namespace
