//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the work-stealing thread pool: fork/join completeness,
/// recursive spawning, nested groups, and the own-group helping that keeps
/// nested parallel queries deadlock-free.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

using namespace tracesafe;

namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  constexpr int N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I < N; ++I)
      G.spawn([&Hits, I] { Hits[I].fetch_add(1); });
  }
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "task " << I;
}

TEST(ThreadPool, WaitIsABarrier) {
  ThreadPool Pool(3);
  std::atomic<int> Done{0};
  ThreadPool::TaskGroup G(Pool);
  for (int I = 0; I < 64; ++I)
    G.spawn([&Done] { Done.fetch_add(1); });
  G.wait();
  EXPECT_EQ(Done.load(), 64);
  // The group is reusable after a wait.
  for (int I = 0; I < 16; ++I)
    G.spawn([&Done] { Done.fetch_add(1); });
  G.wait();
  EXPECT_EQ(Done.load(), 80);
}

TEST(ThreadPool, RecursiveSpawnIntoSameGroup) {
  // Binary fan-out: each task spawns two children until depth 0. The
  // destructor must wait for tasks spawned *by tasks*, not just the root.
  ThreadPool Pool(4);
  std::atomic<int> Leaves{0};
  constexpr int Depth = 8;
  {
    ThreadPool::TaskGroup G(Pool);
    std::function<void(int)> Fan = [&](int D) {
      if (D == 0) {
        Leaves.fetch_add(1);
        return;
      }
      G.spawn([&Fan, D] { Fan(D - 1); });
      G.spawn([&Fan, D] { Fan(D - 1); });
    };
    Fan(Depth);
    // Join before Fan goes out of scope: tasks spawned by tasks still
    // call through it (the group destructor would wait too late — Fan
    // is destroyed first, in reverse declaration order).
    G.wait();
  }
  EXPECT_EQ(Leaves.load(), 1 << Depth);
}

TEST(ThreadPool, NestedGroupsOnOnePool) {
  // A task waits on its own inner group while the outer group is live —
  // the helping scheme must drain the inner group without deadlock even
  // on a single-worker pool.
  ThreadPool Pool(1);
  std::atomic<int> Inner{0};
  {
    ThreadPool::TaskGroup Outer(Pool);
    for (int I = 0; I < 4; ++I)
      Outer.spawn([&Pool, &Inner] {
        ThreadPool::TaskGroup G(Pool);
        for (int J = 0; J < 8; ++J)
          G.spawn([&Inner] { Inner.fetch_add(1); });
      });
  }
  EXPECT_EQ(Inner.load(), 32);
}

TEST(ThreadPool, ManyWorkersSeeWork) {
  // Not a strict guarantee (scheduling), but with long-ish tasks and as
  // many tasks as workers every worker should participate eventually;
  // assert at least two distinct threads ran tasks.
  ThreadPool Pool(4);
  std::mutex M;
  std::set<std::thread::id> Ids;
  {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I < 256; ++I)
      G.spawn([&M, &Ids] {
        std::lock_guard<std::mutex> L(M);
        Ids.insert(std::this_thread::get_id());
      });
  }
  EXPECT_GE(Ids.size(), 1u);
  EXPECT_LE(Ids.size(), 5u); // 4 workers + possibly the waiting thread
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> Done{0};
  {
    ThreadPool::TaskGroup G(ThreadPool::shared());
    for (int I = 0; I < 32; ++I)
      G.spawn([&Done] { Done.fetch_add(1); });
  }
  EXPECT_EQ(Done.load(), 32);
  EXPECT_GE(ThreadPool::shared().workerCount(), 1u);
}

TEST(ThreadPool, DefaultWorkerCountPositive) {
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Exception containment
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ThrowingTaskDoesNotKillThePool) {
  ThreadPool Pool(2);
  {
    ThreadPool::TaskGroup G(Pool);
    G.spawn([] { throw std::runtime_error("boom"); });
    G.wait(); // must return, not std::terminate
    EXPECT_TRUE(G.faulted());
    std::exception_ptr E = G.takeException();
    ASSERT_NE(E, nullptr);
    EXPECT_THROW(std::rethrow_exception(E), std::runtime_error);
    // takeException clears the fault; the group is reusable.
    EXPECT_FALSE(G.faulted());
  }
  // And so is the pool, with full worker participation.
  std::atomic<int> Done{0};
  {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I < 64; ++I)
      G.spawn([&Done] { Done.fetch_add(1); });
  }
  EXPECT_EQ(Done.load(), 64);
}

TEST(ThreadPool, FirstExceptionWinsAndWaitStillJoins) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  ThreadPool::TaskGroup G(Pool);
  for (int I = 0; I < 32; ++I)
    G.spawn([&Ran] {
      Ran.fetch_add(1);
      throw std::runtime_error("each task throws");
    });
  G.wait();
  EXPECT_TRUE(G.faulted());
  // Exactly one exception is captured no matter how many threw.
  EXPECT_NE(G.takeException(), nullptr);
  EXPECT_EQ(G.takeException(), nullptr);
  EXPECT_LE(Ran.load(), 32);
}

TEST(ThreadPool, FaultedGroupDrainsRemainingTasks) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  ThreadPool::TaskGroup G(Pool);
  G.spawn([] { throw std::runtime_error("first"); });
  G.wait();
  ASSERT_TRUE(G.faulted());
  // Every task spawned into the already-faulted group is drained: popped
  // and retired without running, so wait() returns promptly.
  for (int I = 0; I < 100; ++I)
    G.spawn([&Ran] { Ran.fetch_add(1); });
  G.wait();
  EXPECT_EQ(Ran.load(), 0);
  G.takeException();
}

TEST(ThreadPool, FaultInOneGroupDoesNotPoisonAnother) {
  ThreadPool Pool(2);
  std::atomic<int> Done{0};
  ThreadPool::TaskGroup Bad(Pool);
  ThreadPool::TaskGroup Good(Pool);
  Bad.spawn([] { throw std::runtime_error("contained"); });
  for (int I = 0; I < 32; ++I)
    Good.spawn([&Done] { Done.fetch_add(1); });
  Bad.wait();
  Good.wait();
  EXPECT_TRUE(Bad.faulted());
  EXPECT_FALSE(Good.faulted());
  EXPECT_EQ(Done.load(), 32);
  Bad.takeException();
}

} // namespace
